// miniAMR-like mesh refinement: the medium/large-allreduce workload of
// Figure 11b-c. Compares the refinement time of the three library
// configurations on the Omni-Path clusters.
package main

import (
	"fmt"
	"log"

	"dpml"
)

func refineTime(cluster *dpml.Cluster, lib dpml.Library) (dpml.Duration, error) {
	eng, err := dpml.NewSystem(cluster, 8, 16)
	if err != nil {
		return 0, err
	}
	res, err := dpml.RunMiniAMR(eng, dpml.MiniAMRConfig{
		BlocksPerRank: 32,
		BlockBytes:    4096,
		Steps:         3,
		Library:       lib,
	})
	if err != nil {
		return 0, err
	}
	return res.RefineTime, nil
}

func main() {
	for _, cluster := range []*dpml.Cluster{dpml.ClusterC(), dpml.ClusterD()} {
		fmt.Printf("miniAMR-like refinement, 8 nodes x 16 ppn on %s:\n", cluster.Name)
		var mv2 dpml.Duration
		for _, lib := range dpml.Libraries() {
			t, err := refineTime(cluster, lib)
			if err != nil {
				log.Fatal(err)
			}
			if lib == dpml.LibMVAPICH2 {
				mv2 = t
			}
			fmt.Printf("  %-10s %12v", lib, t)
			if lib != dpml.LibMVAPICH2 && t > 0 {
				fmt.Printf("  (%.0f%% faster than MVAPICH2)", 100*(float64(mv2)/float64(t)-1))
			}
			fmt.Println()
		}
	}
}
