// Quickstart: build a simulated cluster, run one DPML allreduce with
// real data, verify the result, and compare against the single-leader
// baseline.
package main

import (
	"fmt"
	"log"

	"dpml"
)

func main() {
	// 4 nodes x 8 processes on the paper's Xeon+InfiniBand cluster B.
	eng, err := dpml.NewSystem(dpml.ClusterB(), 4, 8)
	if err != nil {
		log.Fatal(err)
	}
	procs := eng.W.Job.NumProcs()

	const count = 1 << 16 // 64K float64 elements = 512 KB
	var dpmlTime, hostTime dpml.Duration

	err = eng.W.Run(func(r *dpml.Rank) error {
		v := dpml.NewVector(dpml.Float64, count)
		for i := 0; i < count; i++ {
			v.Set(i, float64(r.Rank()+1))
		}

		// The paper's multi-leader design with 8 leaders per node.
		start := r.Now()
		if err := eng.Allreduce(r, dpml.DPML(8), dpml.Sum, v); err != nil {
			return err
		}
		if r.Rank() == 0 {
			dpmlTime = r.Now().Sub(start)
		}

		// Verify: every element is sum(1..procs).
		want := float64(procs * (procs + 1) / 2)
		for i := 0; i < count; i++ {
			if v.At(i) != want { //dpml:allow floateq -- oracle: integer-valued sum is exact in float64
				return fmt.Errorf("rank %d: element %d = %v, want %v", r.Rank(), i, v.At(i), want)
			}
		}

		// The traditional single-leader hierarchy on the same input.
		v.Fill(float64(r.Rank() + 1))
		r.Barrier(eng.W.CommWorld())
		start = r.Now()
		if err := eng.Allreduce(r, dpml.HostBased(), dpml.Sum, v); err != nil {
			return err
		}
		if r.Rank() == 0 {
			hostTime = r.Now().Sub(start)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("allreduce of %d KB across %d procs (%s)\n", count*8/1024, procs, eng.W.Job.Cluster.Name)
	fmt.Printf("  single-leader (MVAPICH2-style): %v\n", hostTime)
	fmt.Printf("  DPML, 8 leaders per node:       %v\n", dpmlTime)
	fmt.Printf("  speedup: %.2fx\n", float64(hostTime)/float64(dpmlTime))
	fmt.Println("result verified on every rank")
}
