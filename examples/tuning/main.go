// Tuning: empirically sweep DPML configurations per message size — the
// process Section 6.4 describes ("we performed empirical evaluation of
// different configurations on the four clusters and chose the best
// configuration for each message size") — and print the winner map next
// to the static tuned table and the cost model's prediction.
package main

import (
	"fmt"
	"log"
	"os"

	"dpml"
)

func main() {
	cluster := dpml.ClusterC()
	const nodes, ppn = 8, 16
	res, err := dpml.TuneDPML(cluster, nodes, ppn,
		[]int{1, 2, 4, 8, 16},
		[]int{64, 1 << 10, 8 << 10, 64 << 10, 512 << 10},
		3, 1, 0) // jobs=0: fan candidate sweeps across all cores
	if err != nil {
		log.Fatal(err)
	}
	res.Table.Render(os.Stdout)
	fmt.Println("\nwinner: measured optimum; table: the shipped tuning table; model: Eq. 7's argmin")
}
