// Deep-learning gradient averaging: the workload the paper's
// introduction motivates for medium/large allreduce ("many applications
// in newer fields such as deep learning extensively use medium and large
// message reductions").
//
// The example runs synchronous data-parallel training steps on a KNL +
// Omni-Path system and shows two effects: (1) the proposed DPML hybrid
// cuts gradient-averaging time against the MVAPICH2-style baseline, and
// (2) bucketing small tensors into larger messages moves them out of the
// latency-bound zone — message-size engineering straight out of the
// paper's Figure 1 analysis.
package main

import (
	"fmt"
	"log"

	"dpml"
)

func run(lib dpml.Library, bucketBytes int) dpml.DNNResult {
	eng, err := dpml.NewSystem(dpml.ClusterD(), 8, 16)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dpml.RunDNN(eng, dpml.DNNConfig{
		Layers:      dpml.ResNet50ish(),
		Steps:       2,
		BucketBytes: bucketBytes,
		Library:     lib,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	layers := dpml.ResNet50ish()
	var bytes int
	for _, l := range layers {
		bytes += l.Elems * 4
	}
	fmt.Printf("model: %.1f MB of gradients across %d tensors; 8 nodes x 16 ppn (KNL + Omni-Path)\n\n",
		float64(bytes)/(1<<20), len(layers))

	fmt.Println("library comparison (per-layer allreduce, no bucketing):")
	var mv2 dpml.Duration
	for _, lib := range dpml.Libraries() {
		res := run(lib, 0)
		if lib == dpml.LibMVAPICH2 {
			mv2 = res.CommTime
		}
		fmt.Printf("  %-10s step %10v  gradient-averaging %10v (%.2fx vs MVAPICH2)\n",
			lib, res.StepTime, res.CommTime, float64(mv2)/float64(res.CommTime))
	}

	fmt.Println("\nbucketing sweep (proposed library):")
	for _, b := range []int{0, 256 << 10, 1 << 20, 4 << 20} {
		res := run(dpml.LibProposed, b)
		label := "per-layer"
		if b > 0 {
			label = fmt.Sprintf("%d KB buckets", b>>10)
		}
		fmt.Printf("  %-16s %3d allreduces/step, gradient-averaging %10v\n",
			label, res.Allreduces, res.CommTime)
	}
}
