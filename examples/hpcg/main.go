// HPCG-like conjugate gradient: the DDOT-dominated workload of Figure
// 11a. Runs a real (converging) CG solve on cluster A and reports the
// DDOT time under the host-based and SHArP-accelerated designs.
package main

import (
	"fmt"
	"log"

	"dpml"
)

func run(spec dpml.Spec) (dpml.HPCGResult, error) {
	eng, err := dpml.NewSystem(dpml.ClusterA(), 4, 14)
	if err != nil {
		return dpml.HPCGResult{}, err
	}
	return dpml.RunHPCG(eng, dpml.HPCGConfig{
		Nx: 16, Ny: 16, Nz: 8,
		Iterations: 25,
		Real:       true,
		Spec:       spec,
	})
}

func main() {
	designs := []struct {
		name string
		spec dpml.Spec
	}{
		{"host-based", dpml.HostBased()},
		{"SHArP node-leader", dpml.Spec{Design: dpml.DesignSharpNode}},
		{"SHArP socket-leader", dpml.Spec{Design: dpml.DesignSharpSocket}},
	}
	fmt.Println("HPCG-like CG, 4 nodes x 14 ppn on cluster A (Xeon + IB + SHArP), 25 iterations")
	var base dpml.Duration
	for i, d := range designs {
		res, err := run(d.spec)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res.DDOTTime
		}
		fmt.Printf("  %-20s DDOT %10v  total %10v  residual drop %.1e  (DDOT %.0f%% of host-based)\n",
			d.name, res.DDOTTime, res.TotalTime, res.ResidualDrop,
			100*float64(res.DDOTTime)/float64(base))
	}
	fmt.Println("the solver converges identically under every design; only the DDOT time moves")
}
