// Package dpml is the public API of the DPML reproduction: a simulated
// MPI runtime plus the paper's Data Partitioning-based Multi-Leader
// allreduce designs, baselines, cost model, applications, and benchmark
// harness.
//
// The typical flow is:
//
//	cluster := dpml.ClusterB().WithNodes(8)
//	eng, err := dpml.NewSystem(cluster, 8, 16)   // 8 nodes x 16 ppn
//	err = eng.W.Run(func(r *dpml.Rank) error {
//	    v := dpml.NewVector(dpml.Float64, 1024)
//	    // ... fill v ...
//	    return eng.Allreduce(r, dpml.DPML(8), dpml.Sum, v)
//	})
//
// Everything runs in deterministic virtual time: identical inputs give
// identical latencies, and the reduction arithmetic is really performed
// (use NewPhantom for timing-only sweeps at scale).
package dpml

import (
	"dpml/internal/bench"
	"dpml/internal/core"
	"dpml/internal/costmodel"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/topology"
	"dpml/internal/trace"
)

// Re-exported core types. These are aliases: values flow freely between
// the public API and the internal packages.
type (
	// Cluster describes a machine (nodes, sockets, fabric profile).
	Cluster = topology.Cluster
	// Job is a cluster plus a (nodes, ppn) process layout.
	Job = topology.Job
	// Placement locates one rank on the hardware.
	Placement = topology.Placement
	// World is one simulated job: fabric plus ranks.
	World = mpi.World
	// WorldConfig adjusts runtime behaviour (eager threshold).
	WorldConfig = mpi.Config
	// Rank is one MPI process.
	Rank = mpi.Rank
	// Comm is a communicator.
	Comm = mpi.Comm
	// Request tracks a non-blocking operation.
	Request = mpi.Request
	// Vector is a typed message buffer (real or phantom).
	Vector = mpi.Vector
	// Op is a reduction operation.
	Op = mpi.Op
	// Datatype selects the element type of a Vector.
	Datatype = mpi.Datatype
	// Algorithm names a flat allreduce algorithm.
	Algorithm = mpi.Algorithm
	// Engine provides the paper's allreduce designs on one World.
	Engine = core.Engine
	// Spec selects a design configuration.
	Spec = core.Spec
	// Design names an allreduce strategy.
	Design = core.Design
	// Library names a tuned baseline selector.
	Library = core.Library
	// PhaseTimes is a per-phase timing breakdown of one DPML allreduce
	// (from Engine.AllreduceProfiled).
	PhaseTimes = core.PhaseTimes
	// NBHandle tracks a non-blocking allreduce (from Engine.IAllreduce).
	NBHandle = core.NBHandle
	// CostParams is Section 5's analytic model.
	CostParams = costmodel.Params
	// Table is a reproduced figure.
	Table = bench.Table
	// Series is one curve of a Table.
	Series = bench.Series
	// Point is one measurement of a Series.
	Point = bench.Point
	// BenchOptions scales a figure run.
	BenchOptions = bench.Options
	// MBWConfig describes a multi-pair throughput measurement.
	MBWConfig = bench.MBWConfig
	// SpecChooser picks a Spec per message size.
	SpecChooser = bench.SpecChooser
	// Time is an instant of virtual time (integer nanoseconds).
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
)

// Datatypes.
const (
	Float32 = mpi.Float32
	Float64 = mpi.Float64
	Int32   = mpi.Int32
	Int64   = mpi.Int64
)

// Predefined reduction operations.
var (
	Sum  = mpi.Sum
	Prod = mpi.Prod
	Max  = mpi.Max
	Min  = mpi.Min
)

// NewUserOp builds a user-defined float64 reduction.
var NewUserOp = mpi.NewUserOp

// Flat allreduce algorithms.
const (
	AlgRecursiveDoubling = mpi.AlgRecursiveDoubling
	AlgRing              = mpi.AlgRing
	AlgRabenseifner      = mpi.AlgRabenseifner
	AlgReduceBcast       = mpi.AlgReduceBcast
)

// Designs.
const (
	DesignFlat          = core.DesignFlat
	DesignDPML          = core.DesignDPML
	DesignDPMLPipelined = core.DesignDPMLPipelined
	DesignSharpNode     = core.DesignSharpNode
	DesignSharpSocket   = core.DesignSharpSocket
)

// Baseline libraries.
const (
	LibMVAPICH2 = core.LibMVAPICH2
	LibIntelMPI = core.LibIntelMPI
	LibProposed = core.LibProposed
)

// Cluster constructors for the paper's four evaluation platforms.
var (
	// ClusterA: 40 Haswell nodes, InfiniBand EDR with SHArP.
	ClusterA = topology.ClusterA
	// ClusterB: 648 Broadwell nodes, InfiniBand EDR.
	ClusterB = topology.ClusterB
	// ClusterC: 752 Haswell nodes, Omni-Path.
	ClusterC = topology.ClusterC
	// ClusterD: 508 KNL nodes, Omni-Path.
	ClusterD = topology.ClusterD
	// ClusterByName maps "A".."D" to a cluster.
	ClusterByName = topology.ByName
	// Clusters returns all four paper clusters.
	Clusters = topology.All
)

// Job and world construction.
var (
	// NewJob validates a (cluster, nodes, ppn) layout.
	NewJob = topology.NewJob
	// NewWorld builds the simulated job.
	NewWorld = mpi.NewWorld
	// NewEngine prepares the DPML designs for a world.
	NewEngine = core.NewEngine
)

// Spec constructors.
var (
	// DPML configures the multi-leader design with l leaders.
	DPML = core.DPML
	// DPMLPipelined adds k-way pipelining to the inter-node phase.
	DPMLPipelined = core.DPMLPipelined
	// HostBased is the traditional single-leader hierarchy.
	HostBased = core.HostBased
	// Flat runs one flat algorithm on the world communicator.
	Flat = core.Flat
	// BestLeaders is the tuned per-size leader count (Section 6.4).
	BestLeaders = core.BestLeaders
	// Libraries lists the comparable baselines.
	Libraries = core.Libraries
)

// Vector constructors.
var (
	// NewVector allocates a real (zeroed) vector.
	NewVector = mpi.NewVector
	// NewPhantom builds a size-only vector for timing sweeps.
	NewPhantom = mpi.NewPhantom
	// BlockPartition splits n elements into p near-equal blocks.
	BlockPartition = mpi.BlockPartition
)

// Benchmark harness.
var (
	// Figure regenerates one of the paper's figures.
	Figure = bench.Figure
	// FigureIDs lists the reproducible figures.
	FigureIDs = bench.FigureIDs
	// AllFigures regenerates everything.
	AllFigures = bench.AllFigures
	// AllreduceLatency is the osu_allreduce-style measurement loop.
	AllreduceLatency = bench.AllreduceLatency
	// MultiPairThroughput is the osu_mbw_mr-style measurement loop.
	MultiPairThroughput = bench.MultiPairThroughput
	// FixedSpec adapts a constant Spec to a SpecChooser.
	FixedSpec = bench.FixedSpec
	// LibrarySpec adapts a library decision table to a SpecChooser.
	LibrarySpec = bench.LibrarySpec
	// TuneDPML runs the Section 6.4 empirical tuning sweep.
	TuneDPML = bench.TuneDPML
)

// TuneResult is the outcome of a TuneDPML sweep.
type TuneResult = bench.TuneResult

// CostModelFor derives Section 5's model coefficients from a cluster.
var CostModelFor = costmodel.FromCluster

// NewSystem builds a job, world, and engine in one call: the common
// entry point for applications.
func NewSystem(cluster *Cluster, nodes, ppn int) (*Engine, error) {
	job, err := NewJob(cluster, nodes, ppn)
	if err != nil {
		return nil, err
	}
	return NewEngine(NewWorld(job, WorldConfig{})), nil
}

// Tracing. WorldConfig.Trace takes a *TraceRecorder; the aliases make the
// recorder fully usable through the public API.
type (
	// TraceRecorder accumulates simulation events (see WorldConfig.Trace).
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded operation.
	TraceEvent = trace.Event
	// TraceKind classifies a TraceEvent.
	TraceKind = trace.Kind
)

// Trace event kinds.
const (
	TraceSend       = trace.KindSend
	TraceRecv       = trace.KindRecv
	TraceShmCopy    = trace.KindShmCopy
	TraceCompute    = trace.KindCompute
	TraceCollective = trace.KindCollective
)

// NewTraceRecorder returns a recorder keeping at most limit events
// (0 = unlimited).
var NewTraceRecorder = trace.New
