package dpml_test

import (
	"fmt"
	"log"

	"dpml"
)

// Example runs one verified DPML allreduce on a simulated cluster.
func Example() {
	eng, err := dpml.NewSystem(dpml.ClusterB(), 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	err = eng.W.Run(func(r *dpml.Rank) error {
		v := dpml.NewVector(dpml.Float64, 4)
		v.Fill(float64(r.Rank() + 1))
		if err := eng.Allreduce(r, dpml.DPML(4), dpml.Sum, v); err != nil {
			return err
		}
		if r.Rank() == 0 {
			fmt.Printf("sum over 8 ranks: %v\n", v.At(0))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: sum over 8 ranks: 36
}

// ExampleEngine_AllreduceProfiled breaks one DPML allreduce into the
// paper's four phases.
func ExampleEngine_AllreduceProfiled() {
	eng, err := dpml.NewSystem(dpml.ClusterB(), 4, 8)
	if err != nil {
		log.Fatal(err)
	}
	err = eng.W.Run(func(r *dpml.Rank) error {
		v := dpml.NewPhantom(dpml.Float32, 1<<17)
		pt, err := eng.AllreduceProfiled(r, dpml.DPML(8), dpml.Sum, v)
		if err != nil {
			return err
		}
		if r.Rank() == 0 {
			fmt.Printf("phases ordered: %v\n",
				pt.Copy > 0 && pt.Reduce > 0 && pt.Inter > 0 && pt.Bcast > 0)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output: phases ordered: true
}

// ExampleCostParams evaluates the paper's Eq. 7 for a job shape.
func ExampleCostParams() {
	p := dpml.CostModelFor(dpml.ClusterB()).With(448, 16, 16, 512<<10)
	fmt.Printf("16 leaders beat flat RD: %v\n", p.DPML() < p.RecursiveDoubling())
	// Output: 16 leaders beat flat RD: true
}
