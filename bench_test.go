package dpml

import (
	"fmt"
	"testing"
)

// Benchmarks, one per reproduced figure/table, plus ablation benches for
// the design choices DESIGN.md calls out. All run at "quick" scale so the
// full `go test -bench=.` sweep completes in minutes; use cmd/dpml-bench
// without -quick for the paper-scale job shapes.

func benchFigure(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := Figure(id, BenchOptions{Quick: true, Iters: 2, Warmup: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Series) == 0 {
			b.Fatal("empty table")
		}
	}
}

// Figure 1: communication characteristics (relative multi-pair throughput).
func BenchmarkFigure1a(b *testing.B) { benchFigure(b, "fig1a") }
func BenchmarkFigure1b(b *testing.B) { benchFigure(b, "fig1b") }
func BenchmarkFigure1c(b *testing.B) { benchFigure(b, "fig1c") }
func BenchmarkFigure1d(b *testing.B) { benchFigure(b, "fig1d") }

// Figures 4-7: leader-count sweeps on the four clusters.
func BenchmarkFigure4(b *testing.B) { benchFigure(b, "fig4") }
func BenchmarkFigure5(b *testing.B) { benchFigure(b, "fig5") }
func BenchmarkFigure6(b *testing.B) { benchFigure(b, "fig6") }
func BenchmarkFigure7(b *testing.B) { benchFigure(b, "fig7") }

// Figure 8: SHArP node-leader vs socket-leader vs host-based.
func BenchmarkFigure8a(b *testing.B) { benchFigure(b, "fig8a") }
func BenchmarkFigure8b(b *testing.B) { benchFigure(b, "fig8b") }
func BenchmarkFigure8c(b *testing.B) { benchFigure(b, "fig8c") }

// Figures 9-10: comparison against tuned library baselines.
func BenchmarkFigure9a(b *testing.B) { benchFigure(b, "fig9a") }
func BenchmarkFigure9b(b *testing.B) { benchFigure(b, "fig9b") }
func BenchmarkFigure9c(b *testing.B) { benchFigure(b, "fig9c") }
func BenchmarkFigure9d(b *testing.B) { benchFigure(b, "fig9d") }
func BenchmarkFigure10(b *testing.B) { benchFigure(b, "fig10") }

// Figure 11: application kernels.
func BenchmarkFigure11a(b *testing.B) { benchFigure(b, "fig11a") }
func BenchmarkFigure11b(b *testing.B) { benchFigure(b, "fig11b") }
func BenchmarkFigure11c(b *testing.B) { benchFigure(b, "fig11c") }

// Section 5: analytic model vs simulation.
func BenchmarkModelTable(b *testing.B) { benchFigure(b, "model") }

// --- Ablation benches ---

// benchLatency reports the simulated allreduce latency (us) as a custom
// metric while measuring harness wall cost.
func benchLatency(b *testing.B, cl *Cluster, nodes, ppn int, spec Spec, bytes int) {
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		lat, err := AllreduceLatency(cl, nodes, ppn, FixedSpec(spec), []int{bytes}, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = lat[0].Micros()
	}
	b.ReportMetric(last, "virtual-us/op")
}

// Leader-count ablation (the central design knob, Figures 4-7).
func BenchmarkAblationLeaders(b *testing.B) {
	for _, l := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			benchLatency(b, ClusterB(), 8, 16, DPML(l), 512<<10)
		})
	}
}

// Pipeline-depth ablation (Section 4.2 / Eq. 5 trade-off).
func BenchmarkAblationPipelineDepth(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchLatency(b, ClusterC(), 8, 16, DPMLPipelined(16, k), 4<<20)
		})
	}
}

// Flat algorithm ablation (the inter-leader building blocks).
func BenchmarkAblationFlatAlgorithms(b *testing.B) {
	for _, alg := range []Algorithm{AlgRecursiveDoubling, AlgRing, AlgRabenseifner, AlgReduceBcast} {
		b.Run(string(alg), func(b *testing.B) {
			benchLatency(b, ClusterB(), 8, 4, Flat(alg), 64<<10)
		})
	}
}

// SHArP design ablation (Section 4.3).
func BenchmarkAblationSharpDesigns(b *testing.B) {
	specs := map[string]Spec{
		"host-based":    HostBased(),
		"node-leader":   {Design: DesignSharpNode},
		"socket-leader": {Design: DesignSharpSocket},
	}
	for name, spec := range specs {
		spec := spec
		b.Run(name, func(b *testing.B) {
			benchLatency(b, ClusterA(), 8, 28, spec, 256)
		})
	}
}

// Cross-cluster ablation: the proposed hybrid on each architecture.
func BenchmarkAblationClusters(b *testing.B) {
	for _, cl := range Clusters() {
		cl := cl
		b.Run(cl.Name, func(b *testing.B) {
			b.ReportAllocs()
			var last float64
			for i := 0; i < b.N; i++ {
				lat, err := AllreduceLatency(cl, 8, 16, LibrarySpec(LibProposed), []int{64 << 10}, 2, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = lat[0].Micros()
			}
			b.ReportMetric(last, "virtual-us/op")
		})
	}
}

// Simulator-core microbenchmarks: how fast the harness itself is.
func BenchmarkSimulatorAllreduceEvents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, err := NewSystem(ClusterB(), 4, 8)
		if err != nil {
			b.Fatal(err)
		}
		err = eng.W.Run(func(r *Rank) error {
			v := NewPhantom(Float32, 1<<14)
			return eng.Allreduce(r, DPML(8), Sum, v)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
