package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"dpml/internal/topology"
)

// hand-checkable parameters: a=2us, b=1ns/B, a'=0.1us, b'=0.25ns/B,
// c=0.5ns/B.
func testParams() Params {
	return Params{
		A: 2e-6, B: 1e-9, APrime: 1e-7, BPrime: 0.25e-9, C: 0.5e-9, K: 1,
	}
}

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))+1e-15
}

func TestEq1RecursiveDoubling(t *testing.T) {
	p := testParams().With(16, 16, 1, 1000)
	// lg 16 = 4; per round: 2e-6 + 1000*1e-9 + 1000*0.5e-9 = 3.5e-6.
	if got := p.RecursiveDoubling(); !almost(got, 4*3.5e-6) {
		t.Fatalf("Eq1 = %g, want %g", got, 4*3.5e-6)
	}
	// p=1: zero rounds.
	if got := testParams().With(1, 1, 1, 1000).RecursiveDoubling(); got != 0 {
		t.Fatalf("Eq1 with p=1 = %g", got)
	}
	// Non-power-of-two p uses ceil.
	p5 := testParams().With(5, 5, 1, 0)
	if got := p5.RecursiveDoubling(); !almost(got, 3*2e-6) {
		t.Fatalf("Eq1 p=5 = %g, want %g (ceil lg 5 = 3)", got, 3*2e-6)
	}
}

func TestEq2CopyPhase(t *testing.T) {
	p := testParams().With(32, 2, 4, 8000)
	// l*(a' + b'*n/l) = 4*1e-7 + 0.25e-9*8000 = 4e-7 + 2e-6.
	if got := p.CopyPhase(); !almost(got, 4e-7+2e-6) {
		t.Fatalf("Eq2 = %g", got)
	}
	if p.BcastPhase() != p.CopyPhase() {
		t.Fatal("Eq6 must equal Eq2")
	}
}

func TestEq3ComputePhase(t *testing.T) {
	p := testParams().With(32, 2, 4, 8000)
	// (p/(h*l) - 1)*n*c = (32/8 - 1)*8000*0.5e-9 = 3*4e-6 = 1.2e-5.
	if got := p.ComputePhase(); !almost(got, 1.2e-5) {
		t.Fatalf("Eq3 = %g", got)
	}
	// Leaders == ppn: the published formula goes to zero.
	pFull := testParams().With(32, 2, 16, 8000)
	if got := pFull.ComputePhase(); got != 0 {
		t.Fatalf("Eq3 with l=ppn = %g, want 0", got)
	}
}

func TestEq4CommPhase(t *testing.T) {
	p := testParams().With(32, 2, 4, 8000)
	// lg 2 = 1; a + nb/l + nc/l = 2e-6 + 2e-6 + 1e-6 = 5e-6.
	if got := p.CommPhase(); !almost(got, 5e-6) {
		t.Fatalf("Eq4 = %g", got)
	}
}

func TestEq5Pipelined(t *testing.T) {
	p := testParams().With(32, 2, 4, 8000)
	p.K = 4
	// a*k + nb/l + nc/l = 8e-6 + 2e-6 + 1e-6 = 1.1e-5.
	if got := p.CommPhasePipelined(); !almost(got, 1.1e-5) {
		t.Fatalf("Eq5 = %g", got)
	}
	// K=1 reduces to Eq 4.
	p.K = 1
	if !almost(p.CommPhasePipelined(), p.CommPhase()) {
		t.Fatal("Eq5 with k=1 must equal Eq4")
	}
}

func TestEq7Total(t *testing.T) {
	p := testParams().With(32, 2, 4, 8000)
	want := p.CopyPhase() + p.ComputePhase() + p.CommPhase() + p.BcastPhase()
	if got := p.DPML(); !almost(got, want) {
		t.Fatalf("Eq7 = %g, want %g", got, want)
	}
	br := p.PhaseBreakdown()
	if !almost(br[0]+br[1]+br[2]+br[3], want) {
		t.Fatal("phase breakdown does not sum to Eq7")
	}
}

func TestValidate(t *testing.T) {
	good := testParams().With(32, 2, 4, 8000)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		testParams().With(0, 1, 1, 10),
		testParams().With(4, 3, 1, 10), // p not divisible by h
		testParams().With(8, 2, 5, 10), // l > ppn
		testParams().With(8, 2, 1, -1), // negative n
		{P: 2, H: 1, L: 1, N: 1, A: -1, K: 1},
		func() Params { p := testParams().With(2, 1, 1, 1); p.K = 0; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
}

func TestModelPredictsMultiLeaderWinsLarge(t *testing.T) {
	// For large n the model must prefer many leaders; for tiny n, one.
	p := FromCluster(topology.ClusterB())
	large := p.With(448, 16, 1, 512<<10)
	if l := large.OptimalLeaders(); l < 8 {
		t.Fatalf("optimal leaders at 512KB = %d, want >= 8", l)
	}
	small := p.With(448, 16, 1, 4)
	if l := small.OptimalLeaders(); l > 2 {
		t.Fatalf("optimal leaders at 4B = %d, want <= 2", l)
	}
}

func TestModelDPMLBeatsFlatRDLarge(t *testing.T) {
	// Section 5.3: for medium and large messages on many-core nodes the
	// hierarchical multi-leader design must beat flat recursive doubling.
	p := FromCluster(topology.ClusterC()).With(1792, 64, 16, 512<<10)
	if p.DPML() >= p.RecursiveDoubling() {
		t.Fatalf("model: DPML (%g) not better than flat RD (%g)", p.DPML(), p.RecursiveDoubling())
	}
}

func TestModelCommSteps(t *testing.T) {
	// Section 5.3: steps reduced from lg p to lg h. With compute and
	// byte costs zeroed, the comm phase must be exactly lg h * a.
	p := Params{A: 1e-6, K: 1}.With(1024, 32, 4, 0)
	if got := p.CommPhase(); !almost(got, 5e-6) {
		t.Fatalf("comm steps = %g, want 5us (lg 32 = 5)", got)
	}
}

func TestFromClusterCoefficients(t *testing.T) {
	for _, cl := range topology.All() {
		p := FromCluster(cl)
		if p.A <= 0 || p.B <= 0 || p.APrime <= 0 || p.BPrime <= 0 || p.C <= 0 {
			t.Errorf("%s: non-positive coefficients %+v", cl.Name, p)
		}
		// Section 5.3's premise: a' << a and b' << b... b' < b holds for
		// per-flow caps below memory copy rate only on IB; check a' < a
		// universally and b' <= b where the paper's reasoning needs it.
		if p.APrime >= p.A {
			t.Errorf("%s: a' (%g) must be far below a (%g)", cl.Name, p.APrime, p.A)
		}
	}
}

func TestOptimalLeadersMonotoneInSize(t *testing.T) {
	f := func(seed uint8) bool {
		p := FromCluster(topology.ClusterB())
		prev := 0
		for _, n := range []int{16, 1 << 10, 16 << 10, 256 << 10, 4 << 20} {
			l := p.With(448, 16, 1, n).OptimalLeaders()
			if l < prev {
				return false
			}
			prev = l
		}
		_ = seed
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1}); err != nil {
		t.Fatal(err)
	}
}
