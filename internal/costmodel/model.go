// Package costmodel implements the analytic model of Section 5: the cost
// of allreduce designs in terms of per-message startup (a), per-byte
// transfer (b), shared-memory startup and per-byte costs (a', b'), and
// per-byte reduction compute (c) — Table 1's notation. The model is used
// to sanity-check the simulator, to predict the optimal leader count, and
// to regenerate the paper's equations as a comparison table.
package costmodel

import (
	"fmt"
	"math"

	"dpml/internal/topology"
)

// Params carries Table 1's symbols. Times are in seconds, sizes in bytes.
type Params struct {
	P int // number of MPI processes
	H int // number of nodes
	L int // number of leader processes per node
	N int // input vector size in bytes

	A      float64 // startup time per inter-node message
	B      float64 // transfer time per byte, inter-node
	APrime float64 // startup time per shared-memory copy
	BPrime float64 // transfer time per byte, shared memory
	C      float64 // computation cost of one reduction per byte

	K int // sub-partitions used by DPML-Pipelined (and dual-root segments)

	// Extension-family parameters (beyond Table 1).
	G     int     // group size for the generalized allreduce (0 = unused)
	S     int     // predicted straggler count for the PAP designs
	Delta float64 // predicted arrival spread in seconds (latest minus earliest)
}

// FromCluster derives a, b, a', b', c from a cluster's fabric profile.
func FromCluster(c *topology.Cluster) Params {
	return Params{
		A:      (c.Net.SenderOverhead + c.Net.WireLatency + c.Net.ReceiverOverhead).Seconds(),
		B:      1 / c.Net.PerFlowCap,
		APrime: c.Mem.CopyStartup.Seconds(),
		BPrime: 1 / c.Mem.CopyRate,
		C:      1 / c.CPU.ReduceRate,
		K:      1,
	}
}

// With returns a copy of p with the job shape filled in.
func (p Params) With(procs, nodes, leaders, bytes int) Params {
	p.P, p.H, p.L, p.N = procs, nodes, leaders, bytes
	return p
}

// Validate reports the first inconsistency in the parameters.
func (p Params) Validate() error {
	switch {
	case p.P <= 0 || p.H <= 0 || p.L <= 0:
		return fmt.Errorf("costmodel: P=%d H=%d L=%d must be positive", p.P, p.H, p.L)
	case p.N < 0:
		return fmt.Errorf("costmodel: N=%d must be non-negative", p.N)
	case p.P%p.H != 0:
		return fmt.Errorf("costmodel: P=%d not divisible by H=%d", p.P, p.H)
	case p.L > p.P/p.H:
		return fmt.Errorf("costmodel: L=%d exceeds ppn=%d", p.L, p.P/p.H)
	case p.A < 0 || p.B < 0 || p.APrime < 0 || p.BPrime < 0 || p.C < 0:
		return fmt.Errorf("costmodel: negative cost coefficients")
	case p.K < 1:
		return fmt.Errorf("costmodel: K=%d must be >= 1", p.K)
	case p.G < 0 || p.G > p.P:
		return fmt.Errorf("costmodel: G=%d out of range [0,%d]", p.G, p.P)
	case p.S < 0 || p.S >= p.P:
		return fmt.Errorf("costmodel: S=%d out of range [0,%d)", p.S, p.P)
	case p.Delta < 0:
		return fmt.Errorf("costmodel: Delta=%g must be non-negative", p.Delta)
	}
	return nil
}

// lg2ceil returns ceil(lg x) for x >= 1.
func lg2ceil(x int) float64 {
	if x <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(x)))
}

// RecursiveDoubling is Eq. 1: the cost of a flat power-of-two recursive
// doubling allreduce, ceil(lg p) * (a + n*b + n*c).
func (p Params) RecursiveDoubling() float64 {
	n := float64(p.N)
	return lg2ceil(p.P) * (p.A + n*p.B + n*p.C)
}

// CopyPhase is Eq. 2 (and Eq. 6): every process copies l partitions of
// n/l bytes through shared memory: l * (a' + b' * n/l).
func (p Params) CopyPhase() float64 {
	n := float64(p.N)
	l := float64(p.L)
	return l*p.APrime + p.BPrime*n
}

// ComputePhase is Eq. 3 as published: (p/(h*l) - 1) * n * c.
func (p Params) ComputePhase() float64 {
	n := float64(p.N)
	f := float64(p.P)/(float64(p.H)*float64(p.L)) - 1
	if f < 0 {
		f = 0
	}
	return f * n * p.C
}

// CommPhase is Eq. 4: the inter-node allreduce by leaders,
// ceil(lg h) * (a + n*b/l + n*c/l).
func (p Params) CommPhase() float64 {
	n := float64(p.N)
	l := float64(p.L)
	return lg2ceil(p.H) * (p.A + n*p.B/l + n*p.C/l)
}

// CommPhasePipelined is Eq. 5: with k sub-partitions the startup term
// multiplies by k while the transfer and compute terms are unchanged:
// ceil(lg h) * (a*k + n*b/l + n*c/l).
func (p Params) CommPhasePipelined() float64 {
	n := float64(p.N)
	l := float64(p.L)
	return lg2ceil(p.H) * (p.A*float64(p.K) + n*p.B/l + n*p.C/l)
}

// BcastPhase is Eq. 6, identical in form to Eq. 2.
func (p Params) BcastPhase() float64 { return p.CopyPhase() }

// DPML is Eq. 7: the total cost of the four-phase algorithm,
// 2*l*(a' + b'*n/l) + (p/(h*l)-1)*n*c + ceil(lg h)*(a + n*b/l + n*c/l).
func (p Params) DPML() float64 {
	return p.CopyPhase() + p.ComputePhase() + p.CommPhase() + p.BcastPhase()
}

// DPMLPipelined is Eq. 7 with Eq. 5 substituted for the comm phase.
func (p Params) DPMLPipelined() float64 {
	return p.CopyPhase() + p.ComputePhase() + p.CommPhasePipelined() + p.BcastPhase()
}

// OptimalLeaders returns the leader count 1 <= l <= ppn minimizing Eq. 7
// (ties go to the smaller l, since fewer leaders means fewer shm
// startups).
func (p Params) OptimalLeaders() int {
	ppn := p.P / p.H
	best, bestT := 1, math.Inf(1)
	for l := 1; l <= ppn; l++ {
		t := p.With(p.P, p.H, l, p.N).DPML()
		if t < bestT {
			best, bestT = l, t
		}
	}
	return best
}

// PhaseBreakdown returns the four phase costs of Eq. 7 in order (copy,
// compute, comm, bcast), for reporting.
func (p Params) PhaseBreakdown() [4]float64 {
	return [4]float64{p.CopyPhase(), p.ComputePhase(), p.CommPhase(), p.BcastPhase()}
}

// Extension families (Section "related designs"): analytic estimates in
// the same a/b/c vocabulary for the three design families implemented
// alongside DPML. These are planning aids — each models its family's
// critical path under the same simplifications Eqs. 1-7 make (uniform
// links, no congestion), so they rank designs rather than predict exact
// latencies.

// DualRoot models Träff's doubly-pipelined dual-root binary tree: each
// half of the vector (n/2 bytes) flows up a depth-ceil(lg p) binary tree
// in K pipelined blocks and back down, the two trees running
// concurrently on disjoint halves. The pipeline fills in depth + K - 1
// steps each way; each step moves one block of n/(2K) bytes and folds it
// once:
//
//	2 * (ceil(lg p) + K - 1) * (a + n/(2K) * (b + c))
func (p Params) DualRoot() float64 {
	n := float64(p.N)
	k := float64(p.K)
	block := n / (2 * k)
	steps := lg2ceil(p.P) + k - 1
	return 2 * steps * (p.A + block*(p.B+p.C))
}

// GenAll models Kolmakov/Zhang's generalized allreduce with group size
// g: a ring allreduce inside each group of g, recursive doubling across
// the p/g group leaders, and a binomial broadcast back into the groups.
// g = 1 degenerates to flat recursive doubling and g = p to a flat
// ring, matching the implementation's special cases.
func (p Params) GenAll() float64 {
	g := p.G
	if g <= 0 {
		g = 1
	}
	n := float64(p.N)
	if g == 1 {
		return p.RecursiveDoubling()
	}
	gf := float64(g)
	ring := 2*(gf-1)*p.A + 2*(gf-1)/gf*n*(p.B+p.C)
	if g >= p.P {
		return ring
	}
	groups := (p.P + g - 1) / g
	rd := lg2ceil(groups) * (p.A + n*p.B + n*p.C)
	bcast := lg2ceil(g) * (p.A + n*p.B)
	return ring + rd + bcast
}

// PAPSorted models Proficz's sorted linear tree under an arrival spread
// Delta: the first p-2 chain hops overlap the stragglers' delays, so
// the critical path is the spread (or the chain, whichever is longer)
// plus the final hop and the broadcast from the last arriver.
func (p Params) PAPSorted() float64 {
	n := float64(p.N)
	hop := p.A + n*(p.B+p.C)
	chain := float64(p.P-2) * hop
	if chain < 0 {
		chain = 0
	}
	overlap := math.Max(p.Delta, chain)
	return overlap + hop + lg2ceil(p.P)*(p.A+n*p.B)
}

// PAPRing models the parallel-ring variant: the p-S on-time ranks run a
// ring allreduce overlapping the spread, the S stragglers' vectors are
// folded in by the earliest rank as they arrive, and a broadcast
// finishes. With S = 0 and Delta = 0 this is a flat ring.
func (p Params) PAPRing() float64 {
	early := p.P - p.S
	if early < 1 {
		early = 1
	}
	n := float64(p.N)
	ef := float64(early)
	ring := 2*(ef-1)*p.A + 2*(ef-1)/ef*n*(p.B+p.C)
	fold := float64(p.S) * (p.A + n*(p.B+p.C))
	total := math.Max(p.Delta, ring) + fold
	if p.S > 0 || p.Delta > 0 {
		total += lg2ceil(p.P) * (p.A + n*p.B)
	}
	return total
}
