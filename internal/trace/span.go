package trace

import (
	"fmt"
	"io"
	"sort"

	"dpml/internal/sim"
)

// Canonical phase names used by the core designs. The paper's argument is
// a where-does-the-time-go argument, so the phases mirror its
// decomposition: the shared-memory gather (Phase 1), the intra-node
// reduction (Phase 2), the inter-leader exchange (Phase 3), the
// shared-memory broadcast (Phase 4), plus the SHArP offload, the flat
// single-algorithm exchange, and the degraded-mode fallback.
const (
	PhaseCopy     = "copy-in"
	PhaseReduce   = "intra-reduce"
	PhaseInter    = "inter-leader"
	PhaseSharp    = "sharp-offload"
	PhaseBcast    = "bcast-out"
	PhaseFlat     = "flat-exchange"
	PhaseFallback = "fallback"
	// Phases of the extension design families: the dual-root pipelined
	// tree's upward reduction and downward broadcast sweeps, the
	// generalized (grouped) allreduce's single exchange, and the
	// process-arrival-pattern-aware reorderings.
	PhaseTreeReduce = "tree-reduce"
	PhaseTreeBcast  = "tree-bcast"
	PhaseGroup      = "group-exchange"
	PhasePAP        = "pap-exchange"
)

// phaseOrder ranks the canonical phases for reports; unknown phases sort
// after them, alphabetically.
var phaseOrder = map[string]int{
	PhaseCopy:       0,
	PhaseReduce:     1,
	PhaseInter:      2,
	PhaseSharp:      3,
	PhaseBcast:      4,
	PhaseFlat:       5,
	PhaseFallback:   6,
	PhaseTreeReduce: 7,
	PhaseTreeBcast:  8,
	PhaseGroup:      9,
	PhasePAP:        10,
}

func phaseLess(a, b string) bool {
	ai, aok := phaseOrder[a]
	bi, bok := phaseOrder[b]
	switch {
	case aok && bok:
		return ai < bi
	case aok:
		return true
	case bok:
		return false
	}
	return a < b
}

// Span is one open phase (or collective) on one rank. Spans are created
// with BeginSpan/BeginCollective and turned into a recorded Event by End.
// While a span is open, every event Add records on its rank is stamped
// with the innermost open phase name, which is how leaf events (sends,
// copies, compute) get attributed to the DPML phase they ran in.
//
// A nil *Span (returned by a nil or missing Recorder) ignores End, so
// call sites need no guards — the instrumentation is bit-transparent when
// recording is off.
type Span struct {
	rec   *Recorder
	rank  int
	kind  Kind
	label string
	start sim.Time
	bytes int
}

// BeginSpan opens a phase span on rank. Spans on one rank must strictly
// nest (End in reverse Begin order); the simulation runs each rank
// sequentially, so that is the natural shape. Nil recorders return nil.
func (t *Recorder) BeginSpan(rank int, phase string, now sim.Time) *Span {
	return t.begin(rank, KindPhase, phase, 0, now)
}

// BeginCollective opens the root span of one collective operation on
// rank: End records a KindCollective event, and the phases opened inside
// it decompose it. Label should identify the operation (the Spec string).
func (t *Recorder) BeginCollective(rank int, label string, bytes int, now sim.Time) *Span {
	return t.begin(rank, KindCollective, label, bytes, now)
}

func (t *Recorder) begin(rank int, kind Kind, label string, bytes int, now sim.Time) *Span {
	if t == nil {
		return nil
	}
	if rank < 0 {
		panic(fmt.Sprintf("trace: BeginSpan on rank %d", rank))
	}
	for rank >= len(t.open) {
		t.open = append(t.open, nil)
	}
	s := &Span{rec: t, rank: rank, kind: kind, label: label, start: now, bytes: bytes}
	t.open[rank] = append(t.open[rank], s)
	return s
}

// currentPhase returns the innermost open phase-kind span's label on
// rank, or "" when the rank is outside any phase (possibly inside a bare
// collective span).
func (t *Recorder) currentPhase(rank int) string {
	if t == nil || rank < 0 || rank >= len(t.open) {
		return ""
	}
	stack := t.open[rank]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].kind == KindPhase {
			return stack[i].label
		}
	}
	return ""
}

// End closes the span at the given instant and records it as an Event
// (stamped with the enclosing phase, like any other event). Spans must be
// ended in reverse Begin order per rank. Nil spans ignore End.
func (s *Span) End(now sim.Time) {
	if s == nil {
		return
	}
	t := s.rec
	stack := t.open[s.rank]
	if len(stack) == 0 || stack[len(stack)-1] != s {
		panic(fmt.Sprintf("trace: span %q on rank %d ended out of order", s.label, s.rank))
	}
	t.open[s.rank] = stack[:len(stack)-1]
	t.Add(Event{
		Rank: s.rank, Kind: s.kind, Label: s.label,
		Start: s.start, End: now, Bytes: s.bytes,
	})
}

// SetBytes sets the byte count the span's event will carry.
func (s *Span) SetBytes(b int) {
	if s != nil {
		s.bytes = b
	}
}

// PhaseStat summarizes one phase across all ranks and operations.
type PhaseStat struct {
	Phase string
	Count int          // span instances
	Busy  sim.Duration // summed span durations across ranks
	Ranks int          // distinct ranks that ran the phase
}

// PhaseStats aggregates the recorded phase spans, in canonical phase
// order (copy-in, intra-reduce, inter-leader, sharp-offload, bcast-out,
// flat-exchange, fallback, then any custom phases alphabetically).
func (t *Recorder) PhaseStats() []PhaseStat {
	acc := map[string]*PhaseStat{}
	ranks := map[string]map[int]bool{}
	for _, e := range t.Events() {
		if e.Kind != KindPhase {
			continue
		}
		s, ok := acc[e.Label]
		if !ok {
			s = &PhaseStat{Phase: e.Label}
			acc[e.Label] = s
			ranks[e.Label] = map[int]bool{}
		}
		s.Count++
		s.Busy += e.Duration()
		ranks[e.Label][e.Rank] = true
	}
	out := make([]PhaseStat, 0, len(acc))
	for name, s := range acc {
		s.Ranks = len(ranks[name])
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return phaseLess(out[i].Phase, out[j].Phase) })
	return out
}

// CollectiveTotal returns the summed duration of all recorded collective
// spans across ranks — the denominator of the per-phase breakdown.
func (t *Recorder) CollectiveTotal() sim.Duration {
	var total sim.Duration
	for _, e := range t.Events() {
		if e.Kind == KindCollective {
			total += e.Duration()
		}
	}
	return total
}

// WritePhaseReport renders the per-phase time attribution the paper
// reasons with: for each phase, total busy time across ranks, its share
// of all phase time, and mean time per span instance. The trailing
// coverage line reports how much of the collective total the top-level
// phases account for — 100.0% when the phases tile every collective
// exactly (the recorded invariant for all built-in designs).
func (t *Recorder) WritePhaseReport(w io.Writer) {
	stats := t.PhaseStats()
	var phaseTotal sim.Duration
	for _, s := range stats {
		phaseTotal += s.Busy
	}
	collTotal := t.CollectiveTotal()
	fmt.Fprintf(w, "phase breakdown: %d phase spans over %d phases\n", countSpans(stats), len(stats))
	fmt.Fprintf(w, "  %-14s %8s %14s %14s %7s\n", "phase", "count", "busy", "mean/span", "share")
	for _, s := range stats {
		share := 0.0
		if phaseTotal > 0 {
			share = 100 * float64(s.Busy) / float64(phaseTotal)
		}
		mean := sim.Duration(0)
		if s.Count > 0 {
			mean = s.Busy / sim.Duration(s.Count)
		}
		fmt.Fprintf(w, "  %-14s %8d %14v %14v %6.1f%%\n", s.Phase, s.Count, s.Busy, mean, share)
	}
	if collTotal > 0 {
		fmt.Fprintf(w, "  collective total %v across ranks; phase coverage %.1f%%\n",
			collTotal, 100*float64(phaseTotal)/float64(collTotal))
	}
}

func countSpans(stats []PhaseStat) int {
	n := 0
	for _, s := range stats {
		n += s.Count
	}
	return n
}

// ArrivalStats summarizes process-arrival-pattern skew across the
// recorded collectives (Proficz's imbalanced-arrival observable): for
// each operation, the spread between the first and last rank to enter it,
// and the imbalance factor — spread divided by the operation's mean
// duration. A factor near 0 means ranks arrived together; a factor near 1
// means the arrival skew is as large as the operation itself.
type ArrivalStats struct {
	Ops           int          // collective operations observed on every rank
	MaxSpread     sim.Duration // worst first-to-last arrival spread
	MeanSpread    sim.Duration
	MaxImbalance  float64
	MeanImbalance float64
}

// CollectiveArrivals groups the recorded collective spans by per-rank
// occurrence order (the i-th collective on every rank is one operation —
// collectives are called in the same order by all ranks) and measures the
// arrival skew of each operation.
func (t *Recorder) CollectiveArrivals() ArrivalStats {
	perRank := map[int][]Event{}
	for _, e := range t.Events() {
		if e.Kind == KindCollective {
			perRank[e.Rank] = append(perRank[e.Rank], e)
		}
	}
	var st ArrivalStats
	if len(perRank) == 0 {
		return st
	}
	ops := -1
	for _, evs := range perRank {
		if ops < 0 || len(evs) < ops {
			ops = len(evs)
		}
	}
	var spreadSum sim.Duration
	var imbSum float64
	for op := 0; op < ops; op++ {
		first, last := sim.Time(0), sim.Time(0)
		var durSum sim.Duration
		n := 0
		for _, evs := range perRank {
			e := evs[op]
			if n == 0 || e.Start < first {
				first = e.Start
			}
			if n == 0 || e.Start > last {
				last = e.Start
			}
			durSum += e.Duration()
			n++
		}
		spread := last.Sub(first)
		mean := durSum / sim.Duration(n)
		imb := 0.0
		if mean > 0 {
			imb = float64(spread) / float64(mean)
		}
		spreadSum += spread
		imbSum += imb
		if spread > st.MaxSpread {
			st.MaxSpread = spread
		}
		if imb > st.MaxImbalance {
			st.MaxImbalance = imb
		}
	}
	st.Ops = ops
	if ops > 0 {
		st.MeanSpread = spreadSum / sim.Duration(ops)
		st.MeanImbalance = imbSum / float64(ops)
	}
	return st
}
