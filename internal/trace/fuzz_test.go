package trace

import (
	"encoding/csv"
	"strings"
	"testing"

	"dpml/internal/sim"
)

// FuzzCommMatrixLabel drives arbitrary send labels through CommMatrix:
// whatever the label, the matrix must stay within bounds and count bytes
// only for well-formed "->N" labels with in-range destinations.
func FuzzCommMatrixLabel(f *testing.F) {
	f.Add("->1", 64)
	f.Add("->0", 1)
	f.Add("-> 1", 8)
	f.Add("->-3", 8)
	f.Add("->999999999999999999999", 16)
	f.Add("<-1", 4)
	f.Add("", 2)
	f.Add("->1extra", 32)
	f.Add("-\x00>1", 5)
	f.Fuzz(func(t *testing.T, label string, bytes int) {
		if bytes < 0 {
			bytes = -bytes
		}
		if bytes < 0 { // -MinInt overflows back to negative
			bytes = 0
		}
		r := New(0)
		r.Add(Event{Rank: 0, Kind: KindSend, Label: label, Bytes: bytes})
		const n = 4
		m := r.CommMatrix(n)
		if len(m) != n {
			t.Fatalf("matrix rows = %d", len(m))
		}
		var total int64
		for _, row := range m {
			if len(row) != n {
				t.Fatalf("matrix cols = %d", len(row))
			}
			for _, v := range row {
				if v < 0 {
					t.Fatalf("negative cell %d for label %q", v, label)
				}
				total += v
			}
		}
		if total != 0 && total != int64(bytes) {
			t.Fatalf("label %q counted %d bytes, event had %d", label, total, bytes)
		}
	})
}

// FuzzWriteCSVRoundTrip feeds arbitrary label/phase strings through the
// CSV exporter and a standard reader: the export must always parse, with
// every field intact.
func FuzzWriteCSVRoundTrip(f *testing.F) {
	f.Add("plain", "copy-in")
	f.Add("a,b", "x\"y")
	f.Add("line\nbreak", "cr\rhere")
	f.Add(`"`, "")
	f.Add(",,,", "\n\n")
	f.Fuzz(func(t *testing.T, label, phase string) {
		// encoding/csv normalizes \r\n to \n inside quoted fields (RFC
		// 4180 says bare CR is not part of the grammar), so skip inputs a
		// compliant reader cannot represent losslessly.
		if strings.Contains(label, "\r") || strings.Contains(phase, "\r") {
			t.Skip("CR normalization is reader-defined")
		}
		r := New(0)
		r.Add(Event{Rank: 1, Kind: KindRecv, Label: label, Phase: phase,
			Start: 5, End: 9, Bytes: 42})
		var b strings.Builder
		if err := r.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
		if err != nil {
			t.Fatalf("unreadable CSV for label %q phase %q: %v", label, phase, err)
		}
		if len(rows) != 2 {
			t.Fatalf("got %d rows", len(rows))
		}
		if rows[1][2] != label || rows[1][3] != phase {
			t.Fatalf("round trip: label %q -> %q, phase %q -> %q",
				label, rows[1][2], phase, rows[1][3])
		}
	})
}

// FuzzSpanStamping interleaves span begins/ends driven by fuzz bytes:
// the recorder must never corrupt its stacks, and events must never be
// stamped with a phase that was not open.
func FuzzSpanStamping(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 2, 0})
	f.Add([]byte{0, 0, 0, 1, 1, 1})
	f.Fuzz(func(t *testing.T, prog []byte) {
		r := New(0)
		var stacks [2][]*Span
		now := sim.Time(0)
		for _, b := range prog {
			rank := int(b>>1) & 1
			now += 10
			if b&1 == 0 {
				sp := r.BeginSpan(rank, "p", now)
				stacks[rank] = append(stacks[rank], sp)
			} else if n := len(stacks[rank]); n > 0 {
				stacks[rank][n-1].End(now)
				stacks[rank] = stacks[rank][:n-1]
			}
			r.Add(Event{Rank: rank, Kind: KindCompute, Start: now, End: now})
		}
		for _, e := range r.Events() {
			if e.Kind == KindCompute && e.Phase != "" && e.Phase != "p" {
				t.Fatalf("impossible phase stamp %q", e.Phase)
			}
		}
	})
}
