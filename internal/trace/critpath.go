package trace

import (
	"fmt"
	"io"
	"sort"

	"dpml/internal/sim"
)

// Critical-path analysis over the recorded event DAG.
//
// The dependency structure is implicit in the trace: leaf events on one
// rank are ordered by program order (the simulation runs each rank as a
// sequential process), and a recv depends on its matched send. Sends and
// recvs are paired FIFO per (src, dst) — the runtime labels them "->dst"
// and "<-src", and the simulated channels deliver in order, so the i-th
// send from A to B matches the i-th recv on B from A.
//
// Every event is recorded when it completes, and a recv cannot complete
// before its matched send, so both edge families point from a lower
// record index to a higher one. That makes reverse record order a
// reverse-topological order of the DAG, which the slack pass exploits.

// CritStep is one event on the critical path, walking backward from the
// completion-determining event. Wait is the idle gap the path spent
// before this event started (blocked on a predecessor); Busy is the part
// of the path's timeline this event itself accounts for.
type CritStep struct {
	Event Event
	Wait  sim.Duration
	Busy  sim.Duration
}

// PhaseSlack summarizes one phase's contribution to (and distance from)
// the critical path.
type PhaseSlack struct {
	Phase string
	Busy  sim.Duration // busy time on the critical path attributed to this phase
	Wait  sim.Duration // wait time on the critical path entering events of this phase
	Slack sim.Duration // minimum slack over ALL events of the phase (0 = on the path)
	Count int          // events of this phase on the critical path
}

// CritPath is the result of CriticalPath: the completion-determining
// chain (in forward time order) and the per-phase attribution.
type CritPath struct {
	Steps  []CritStep
	Total  sim.Duration // makespan: latest event end over the trace
	Phases []PhaseSlack // canonical phase order; "" phase rendered as "(none)"
}

type critEvent struct {
	Event
	rank int
	peer int  // message peer, when send/recv
	msg  bool // labeled send/recv with a parseable peer
}

// CriticalPath extracts the completion-determining chain from the
// recorded leaf events (container spans — collectives and phases — are
// skipped; they aggregate leaves, they don't add dependencies). The walk
// starts at the last event to finish and repeatedly steps to the
// predecessor that finished last: the previous event on the same rank,
// or, for a recv, its matched send. A PERT-style backward pass then
// computes every event's slack — how much later it could have finished
// without moving the makespan — and each phase reports the minimum slack
// over its events: a phase with zero slack gates completion.
func (t *Recorder) CriticalPath() CritPath {
	var evs []critEvent
	for _, e := range t.Events() {
		switch e.Kind {
		case KindCollective, KindPhase, KindFallback:
			continue
		}
		ce := critEvent{Event: e, rank: e.Rank, peer: -1}
		var peer int
		switch e.Kind {
		case KindSend:
			if _, err := fmt.Sscanf(e.Label, "->%d", &peer); err == nil {
				ce.peer, ce.msg = peer, true
			}
		case KindRecv:
			if _, err := fmt.Sscanf(e.Label, "<-%d", &peer); err == nil {
				ce.peer, ce.msg = peer, true
			}
		}
		evs = append(evs, ce)
	}
	var cp CritPath
	if len(evs) == 0 {
		return cp
	}

	// Per-rank program order and FIFO message matching, both in record
	// order (= completion order).
	prevOnRank := make([]int, len(evs)) // index of previous leaf on same rank, -1
	nextOnRank := make([]int, len(evs))
	lastOnRank := map[int]int{}
	type chanKey struct{ src, dst int }
	pendingSends := map[chanKey][]int{}
	match := make([]int, len(evs)) // recv -> its send, send -> its recv, else -1
	for i := range match {
		match[i] = -1
	}
	for i, e := range evs {
		if j, ok := lastOnRank[e.rank]; ok {
			prevOnRank[i] = j
			nextOnRank[j] = i
		} else {
			prevOnRank[i] = -1
		}
		nextOnRank[i] = -1
		lastOnRank[e.rank] = i
		if !e.msg {
			continue
		}
		switch e.Kind {
		case KindSend:
			k := chanKey{e.rank, e.peer}
			pendingSends[k] = append(pendingSends[k], i)
		case KindRecv:
			k := chanKey{e.peer, e.rank}
			if q := pendingSends[k]; len(q) > 0 {
				match[i], match[q[0]] = q[0], i
				pendingSends[k] = q[1:]
			}
		}
	}

	// Terminal: the last event to finish (ties broken toward the later
	// record, which finished "most recently").
	term := 0
	for i, e := range evs {
		if e.End >= evs[term].End {
			term = i
		}
	}
	makespan := evs[term].End

	// Backward greedy walk: always follow the predecessor that finished
	// last — the one the current event was actually waiting on.
	var chain []int
	for cur := term; cur >= 0; {
		chain = append(chain, cur)
		pred := prevOnRank[cur]
		if evs[cur].Kind == KindRecv && match[cur] >= 0 {
			if pred < 0 || evs[match[cur]].End > evs[pred].End {
				pred = match[cur]
			}
		}
		cur = pred
	}
	// Reverse into forward time order and split each step's timeline
	// segment into wait (idle before start) and busy.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	segStart := sim.Time(0)
	for _, idx := range chain {
		e := evs[idx]
		wait := sim.Duration(0)
		if e.Start > segStart {
			wait = e.Start.Sub(segStart)
		}
		busyFrom := e.Start
		if segStart > busyFrom {
			busyFrom = segStart
		}
		cp.Steps = append(cp.Steps, CritStep{Event: e.Event, Wait: wait, Busy: e.End.Sub(busyFrom)})
		segStart = e.End
	}
	cp.Total = makespan.Sub(0)

	// Slack: latest finish LF(e) = min over successors of when e must be
	// done for them to still make their own LF. Reverse record order is
	// reverse-topological (see package comment), so one pass suffices.
	lf := make([]sim.Time, len(evs))
	for i := range lf {
		lf[i] = makespan
	}
	for i := len(evs) - 1; i >= 0; i-- {
		if n := nextOnRank[i]; n >= 0 {
			// Program order: the next event on the rank occupies
			// [max(its Start, e.End), its End]; e must finish dur(n)
			// before LF(n).
			if v := lf[n] - sim.Time(evs[n].Duration()); v < lf[i] {
				lf[i] = v
			}
		}
		if evs[i].Kind == KindSend && match[i] >= 0 {
			// Message edge: the matched recv finished (recv.End - send.End)
			// after this send; delaying the send delays the recv in kind.
			r := match[i]
			if v := lf[r] - (evs[r].End - evs[i].End); v < lf[i] {
				lf[i] = v
			}
		}
	}

	// Per-phase attribution: busy/wait from the path, slack from all events.
	acc := map[string]*PhaseSlack{}
	get := func(phase string) *PhaseSlack {
		s, ok := acc[phase]
		if !ok {
			s = &PhaseSlack{Phase: phase, Slack: -1}
			acc[phase] = s
		}
		return s
	}
	for _, st := range cp.Steps {
		s := get(st.Event.Phase)
		s.Busy += st.Busy
		s.Wait += st.Wait
		s.Count++
	}
	for i, e := range evs {
		s := get(e.Phase)
		slack := lf[i].Sub(e.End)
		if s.Slack < 0 || slack < s.Slack {
			s.Slack = slack
		}
	}
	for _, s := range acc {
		if s.Slack < 0 {
			s.Slack = 0
		}
		cp.Phases = append(cp.Phases, *s)
	}
	sort.Slice(cp.Phases, func(i, j int) bool { return phaseLess(cp.Phases[i].Phase, cp.Phases[j].Phase) })
	return cp
}

// Write renders the critical path: the per-phase attribution table and
// the tail of the chain (the steps closest to completion, where the
// final latency is decided).
func (cp CritPath) Write(w io.Writer) {
	fmt.Fprintf(w, "critical path: %d steps, makespan %v\n", len(cp.Steps), cp.Total)
	var busy, wait sim.Duration
	for _, st := range cp.Steps {
		busy += st.Busy
		wait += st.Wait
	}
	fmt.Fprintf(w, "  path busy %v, path wait %v\n", busy, wait)
	fmt.Fprintf(w, "  %-14s %8s %14s %14s %14s\n", "phase", "steps", "path busy", "path wait", "min slack")
	for _, p := range cp.Phases {
		name := p.Phase
		if name == "" {
			name = "(none)"
		}
		fmt.Fprintf(w, "  %-14s %8d %14v %14v %14v\n", name, p.Count, p.Busy, p.Wait, p.Slack)
	}
	const tail = 12
	start := len(cp.Steps) - tail
	if start < 0 {
		start = 0
	}
	if start > 0 {
		fmt.Fprintf(w, "  ... %d earlier steps elided ...\n", start)
	}
	for _, st := range cp.Steps[start:] {
		e := st.Event
		phase := e.Phase
		if phase == "" {
			phase = "-"
		}
		fmt.Fprintf(w, "  rank %-5d %-8s %-16s phase=%-14s wait=%-12v busy=%v\n",
			e.Rank, e.Kind, e.Label, phase, st.Wait, st.Busy)
	}
}
