package trace

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chromeDoc mirrors the Chrome trace_event JSON array format for
// structural validation.
type chromeDoc struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Ph   string          `json:"ph"`
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Args json.RawMessage `json:"args"`
}

func TestChromeExportStructure(t *testing.T) {
	r := buildSpanTrace()
	var b strings.Builder
	// One rank per node, so pids differ per tid.
	if err := r.WriteChrome(&b, func(rank int) int { return rank }); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var meta, complete int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Dur < 0 || e.Ts < 0 {
				t.Errorf("negative ts/dur: %+v", e)
			}
			if e.Pid != e.Tid {
				t.Errorf("pid %d != tid %d under identity nodeOf", e.Pid, e.Tid)
			}
		default:
			t.Errorf("unexpected ph %q", e.Ph)
		}
	}
	// 2 process_name + 2 thread_name; every recorded event becomes one X.
	if meta != 4 {
		t.Errorf("metadata events = %d, want 4", meta)
	}
	if complete != r.Len() {
		t.Errorf("complete events = %d, want %d", complete, r.Len())
	}
}

func TestChromeTimesAreExact(t *testing.T) {
	// 1234 ns must render as 1.234 us with no float rounding.
	r := New(0)
	r.Add(Event{Rank: 0, Kind: KindCompute, Start: 1234, End: 2468})
	var b strings.Builder
	if err := r.WriteChrome(&b, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"ts":1.234`) || !strings.Contains(out, `"dur":1.234`) {
		t.Fatalf("timestamps not exact:\n%s", out)
	}
}

func TestMicros(t *testing.T) {
	cases := []struct {
		ns   int64
		want string
	}{
		{0, "0"}, {1000, "1"}, {1234, "1.234"}, {1230, "1.23"},
		{999, "0.999"}, {1, "0.001"}, {-1500, "-1.5"},
	}
	for _, c := range cases {
		if got := micros(c.ns); got != c.want {
			t.Errorf("micros(%d) = %q, want %q", c.ns, got, c.want)
		}
	}
}

// golden compares got against testdata/<name>.golden, rewriting the file
// under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestChromeGolden(t *testing.T) {
	var b strings.Builder
	if err := buildSpanTrace().WriteChrome(&b, func(rank int) int { return rank }); err != nil {
		t.Fatal(err)
	}
	golden(t, "chrome", b.String())
}

func TestPhaseReportGolden(t *testing.T) {
	var b strings.Builder
	buildSpanTrace().WritePhaseReport(&b)
	golden(t, "phases", b.String())
}
