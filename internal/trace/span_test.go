package trace

import (
	"strings"
	"testing"

	"dpml/internal/sim"
)

// buildSpanTrace assembles a small two-rank trace through the span API:
// one collective per rank decomposed into copy-in / inter-leader /
// bcast-out, with leaf events inside the phases. Used by the span,
// report, and golden tests.
func buildSpanTrace() *Recorder {
	r := New(0)
	for rank := 0; rank < 2; rank++ {
		base := sim.Time(rank * 50) // rank 1 arrives late: arrival skew
		peer := "1"
		if rank == 1 {
			peer = "0"
		}
		c := r.BeginCollective(rank, "dpml(l=2)", 1024, base)
		p := r.BeginSpan(rank, PhaseCopy, base)
		r.Add(Event{Rank: rank, Kind: KindShmCopy, Label: "intra-socket",
			Start: base, End: base + 100, Bytes: 512})
		p.End(base + 100)
		p = r.BeginSpan(rank, PhaseInter, base+100)
		r.Add(Event{Rank: rank, Kind: KindSend, Label: "->" + peer,
			Start: base + 100, End: base + 300, Bytes: 512})
		r.Add(Event{Rank: rank, Kind: KindRecv, Label: "<-" + peer,
			Start: base + 300, End: base + 600, Bytes: 512})
		p.End(base + 600)
		p = r.BeginSpan(rank, PhaseBcast, base+600)
		r.Add(Event{Rank: rank, Kind: KindShmCopy, Label: "cross-socket",
			Start: base + 600, End: base + 700, Bytes: 512})
		p.End(base + 700)
		c.End(base + 700)
	}
	return r
}

func TestSpanStampsPhases(t *testing.T) {
	r := buildSpanTrace()
	var leaves, phases, colls int
	for _, e := range r.Events() {
		switch e.Kind {
		case KindPhase:
			phases++
			if e.Phase != "" {
				t.Errorf("top-level phase %q stamped with parent %q", e.Label, e.Phase)
			}
		case KindCollective:
			colls++
		default:
			leaves++
			if e.Phase == "" {
				t.Errorf("leaf %s %q not stamped with a phase", e.Kind, e.Label)
			}
		}
	}
	if leaves != 8 || phases != 6 || colls != 2 {
		t.Fatalf("leaves/phases/colls = %d/%d/%d, want 8/6/2", leaves, phases, colls)
	}
	// Spot-check attribution: sends happened inside the inter phase.
	for _, e := range r.Events() {
		if e.Kind == KindSend && e.Phase != PhaseInter {
			t.Errorf("send stamped %q, want %q", e.Phase, PhaseInter)
		}
		if e.Kind == KindShmCopy && e.Phase != PhaseCopy && e.Phase != PhaseBcast {
			t.Errorf("shmcopy stamped %q", e.Phase)
		}
	}
}

func TestSpanNesting(t *testing.T) {
	r := New(0)
	outer := r.BeginSpan(0, "outer", 0)
	inner := r.BeginSpan(0, "inner", 10)
	if got := r.currentPhase(0); got != "inner" {
		t.Fatalf("currentPhase = %q, want inner", got)
	}
	inner.End(20)
	if got := r.currentPhase(0); got != "outer" {
		t.Fatalf("currentPhase after pop = %q, want outer", got)
	}
	outer.End(30)
	if got := r.currentPhase(0); got != "" {
		t.Fatalf("currentPhase after all pops = %q", got)
	}
	// The inner phase event is stamped with its parent.
	evs := r.Events()
	if len(evs) != 2 || evs[0].Label != "inner" || evs[0].Phase != "outer" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[1].Label != "outer" || evs[1].Phase != "" {
		t.Fatalf("outer event = %+v", evs[1])
	}
}

func TestSpanOutOfOrderEndPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order span end accepted")
		}
	}()
	r := New(0)
	outer := r.BeginSpan(0, "outer", 0)
	r.BeginSpan(0, "inner", 10)
	outer.End(20)
}

func TestNilRecorderSpansAreSafe(t *testing.T) {
	var r *Recorder
	sp := r.BeginSpan(3, PhaseCopy, 100)
	if sp != nil {
		t.Fatal("nil recorder returned a span")
	}
	sp.End(200) // must not panic
	sp.SetBytes(5)
	coll := r.BeginCollective(0, "x", 1, 0)
	coll.End(10)
	if r.Len() != 0 {
		t.Fatal("nil recorder recorded")
	}
	if got := r.PhaseStats(); len(got) != 0 {
		t.Fatalf("nil PhaseStats = %v", got)
	}
	if ar := r.CollectiveArrivals(); ar.Ops != 0 {
		t.Fatalf("nil arrivals = %+v", ar)
	}
	if cp := r.CriticalPath(); len(cp.Steps) != 0 {
		t.Fatalf("nil critical path = %+v", cp)
	}
}

func TestPhaseStatsAndTotals(t *testing.T) {
	r := buildSpanTrace()
	stats := r.PhaseStats()
	if len(stats) != 3 {
		t.Fatalf("got %d phases: %+v", len(stats), stats)
	}
	// Canonical order: copy-in, inter-leader, bcast-out.
	wantOrder := []string{PhaseCopy, PhaseInter, PhaseBcast}
	var phaseTotal sim.Duration
	for i, s := range stats {
		if s.Phase != wantOrder[i] {
			t.Errorf("phase[%d] = %q, want %q", i, s.Phase, wantOrder[i])
		}
		if s.Count != 2 || s.Ranks != 2 {
			t.Errorf("phase %q count/ranks = %d/%d, want 2/2", s.Phase, s.Count, s.Ranks)
		}
		phaseTotal += s.Busy
	}
	// Property: per-phase durations sum to the recorded collective total.
	if coll := r.CollectiveTotal(); phaseTotal != coll {
		t.Fatalf("phase total %v != collective total %v", phaseTotal, coll)
	}
}

func TestCollectiveArrivals(t *testing.T) {
	r := buildSpanTrace()
	ar := r.CollectiveArrivals()
	if ar.Ops != 1 {
		t.Fatalf("Ops = %d, want 1", ar.Ops)
	}
	// Rank 1 entered 50ns after rank 0; each op lasts 700ns.
	if ar.MaxSpread != 50 || ar.MeanSpread != 50 {
		t.Fatalf("spread = %v/%v, want 50/50", ar.MaxSpread, ar.MeanSpread)
	}
	want := 50.0 / 700.0
	if diff := ar.MaxImbalance - want; diff < -1e-12 || diff > 1e-12 {
		t.Fatalf("imbalance = %g, want %g", ar.MaxImbalance, want)
	}
}

func TestPhaseReportMentionsCoverage(t *testing.T) {
	r := buildSpanTrace()
	var b strings.Builder
	r.WritePhaseReport(&b)
	out := b.String()
	for _, want := range []string{PhaseCopy, PhaseInter, PhaseBcast, "phase coverage 100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
