// Package trace records what the simulated job did: typed, timestamped
// events (messages, shared-memory copies, compute, collectives) that can
// be summarized per rank or per kind, exported as CSV, or rendered as a
// compact text profile. Recording is optional and adds no cost to the
// simulation's virtual time.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dpml/internal/sim"
)

// Kind classifies an event.
type Kind string

// Event kinds recorded by the runtime.
const (
	KindSend       Kind = "send"
	KindRecv       Kind = "recv"
	KindShmCopy    Kind = "shmcopy"
	KindCompute    Kind = "compute"
	KindCollective Kind = "coll"
	// KindFallback marks a degraded-mode switch: a design abandoned its
	// preferred path mid-run (e.g. SHArP offload offline) and completed
	// the operation another way. Label names the path taken.
	KindFallback Kind = "fallback"
	// KindPhase is a span event: one named phase of a collective on one
	// rank (see Recorder.BeginSpan). Label is the phase name; Phase is the
	// enclosing phase, if any. Phase events contain the leaf events
	// recorded while they were open, so they nest in time.
	KindPhase Kind = "phase"
)

// Event is one recorded operation.
type Event struct {
	Rank  int
	Kind  Kind
	Label string // free-form: peer, spec, phase
	// Phase is the innermost open phase span on the event's rank at
	// recording time ("" outside any phase). Stamped automatically by Add,
	// which is how every leaf event gets attributed to the DPML phase it
	// ran in without call sites knowing about phases.
	Phase string
	Start sim.Time
	End   sim.Time
	Bytes int
}

// Duration returns End - Start.
func (e Event) Duration() sim.Duration { return e.End.Sub(e.Start) }

// Recorder accumulates events into per-rank buffers. The zero value
// records nothing; create one with New. Add and the span methods are
// called from the recorded rank's simulation context: under a sharded
// kernel different ranks record concurrently, which is race-free because
// each rank only ever touches its own buffer and stack — provided the
// slices are pre-sized with Reserve (the MPI world does this), so no
// append ever grows the outer slices.
type Recorder struct {
	perRank [][]Event
	limit   int
	open    [][]*Span // per-rank stack of open spans (see span.go)

	// merged caches the canonical global ordering (see Events),
	// invalidated by length.
	merged    []Event
	mergedLen int
}

// New returns a Recorder that keeps at most limit events per rank
// (0 = unlimited). Hitting the cap stops recording on that rank rather
// than evicting, so prefixes stay intact for inspection.
func New(limit int) *Recorder {
	return &Recorder{limit: limit}
}

// Reserve pre-sizes the recorder for ranks. Required before recording
// from a sharded simulation (so concurrent ranks never grow the shared
// outer slices); optional otherwise.
func (t *Recorder) Reserve(ranks int) {
	if t == nil {
		return
	}
	for len(t.perRank) < ranks {
		t.perRank = append(t.perRank, nil)
	}
	for len(t.open) < ranks {
		t.open = append(t.open, nil)
	}
}

// Add records one event. Nil receivers and full recorders ignore it, so
// call sites need no guards.
func (t *Recorder) Add(e Event) {
	if t == nil {
		return
	}
	if e.Rank < 0 {
		panic(fmt.Sprintf("trace: event on rank %d", e.Rank))
	}
	for e.Rank >= len(t.perRank) {
		t.perRank = append(t.perRank, nil)
	}
	if t.limit > 0 && len(t.perRank[e.Rank]) >= t.limit {
		return
	}
	if e.End < e.Start {
		panic(fmt.Sprintf("trace: event ends before it starts: %+v", e))
	}
	if e.Phase == "" {
		e.Phase = t.currentPhase(e.Rank)
	}
	t.perRank[e.Rank] = append(t.perRank[e.Rank], e)
}

// Len returns the number of recorded events.
func (t *Recorder) Len() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, evs := range t.perRank {
		n += len(evs)
	}
	return n
}

// Events returns the recorded events in the canonical global order:
// by completion time, ties broken by rank, then per-rank recording
// order. Each rank records its own events in nondecreasing End order
// (events are added when they finish), so this order is well defined —
// and, unlike raw recording order, it is identical for every shard
// count, because it depends only on virtual timestamps and ranks, not on
// which kernel interleaving produced them.
func (t *Recorder) Events() []Event {
	if t == nil {
		return nil
	}
	n := t.Len()
	if t.merged != nil && t.mergedLen == n {
		return t.merged
	}
	out := make([]Event, 0, n)
	for _, evs := range t.perRank {
		out = append(out, evs...)
	}
	// Stable sort of the rank-major concatenation: ties on End keep
	// (rank, per-rank recording order), the canonical tiebreak.
	sort.SliceStable(out, func(i, j int) bool { return out[i].End < out[j].End })
	t.merged, t.mergedLen = out, n
	return out
}

// KindStats summarizes one event kind.
type KindStats struct {
	Kind  Kind
	Count int
	Bytes int64
	Busy  sim.Duration // summed durations across ranks
}

// ByKind aggregates counts, bytes, and busy time per kind, sorted by
// kind name.
func (t *Recorder) ByKind() []KindStats {
	acc := map[Kind]*KindStats{}
	for _, e := range t.Events() {
		s, ok := acc[e.Kind]
		if !ok {
			s = &KindStats{Kind: e.Kind}
			acc[e.Kind] = s
		}
		s.Count++
		s.Bytes += int64(e.Bytes)
		s.Busy += e.Duration()
	}
	out := make([]KindStats, 0, len(acc))
	for _, s := range acc {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// RankBusy returns each rank's total busy time in the given kinds (all
// kinds when none given), indexed by rank (length = max rank + 1).
func (t *Recorder) RankBusy(kinds ...Kind) []sim.Duration {
	want := map[Kind]bool{}
	for _, k := range kinds {
		want[k] = true
	}
	var out []sim.Duration
	for _, e := range t.Events() {
		if len(want) > 0 && !want[e.Kind] {
			continue
		}
		for e.Rank >= len(out) {
			out = append(out, 0)
		}
		out[e.Rank] += e.Duration()
	}
	return out
}

// CommMatrix returns bytes sent between ranks: m[src][dst]. Only KindSend
// events with a "->N" label are counted.
func (t *Recorder) CommMatrix(n int) [][]int64 {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
	}
	for _, e := range t.Events() {
		if e.Kind != KindSend {
			continue
		}
		var dst int
		if _, err := fmt.Sscanf(e.Label, "->%d", &dst); err != nil {
			continue
		}
		if e.Rank < n && dst >= 0 && dst < n {
			m[e.Rank][dst] += int64(e.Bytes)
		}
	}
	return m
}

// csvField quotes a free-form field per RFC 4180: fields containing
// commas, quotes, or line breaks are wrapped in double quotes with inner
// quotes doubled, so any label round-trips through a standard CSV reader.
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// WriteCSV exports the events as CSV (rank, kind, label, phase, start_ns,
// end_ns, bytes). Labels and phases are RFC 4180-quoted, so embedded
// commas, quotes, and newlines survive a round trip through encoding/csv.
func (t *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "rank,kind,label,phase,start_ns,end_ns,bytes"); err != nil {
		return err
	}
	for _, e := range t.Events() {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%d,%d,%d\n",
			e.Rank, csvField(string(e.Kind)), csvField(e.Label), csvField(e.Phase),
			int64(e.Start), int64(e.End), e.Bytes); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a human-readable profile: per-kind totals and the
// busiest ranks.
func (t *Recorder) Summary(w io.Writer) {
	fmt.Fprintf(w, "trace: %d events\n", t.Len())
	for _, s := range t.ByKind() {
		fmt.Fprintf(w, "  %-8s count=%-8d bytes=%-12d busy=%v\n", s.Kind, s.Count, s.Bytes, s.Busy)
	}
	busy := t.RankBusy()
	if len(busy) == 0 {
		return
	}
	max, argmax := sim.Duration(-1), 0
	var total sim.Duration
	for r, d := range busy {
		total += d
		if d > max {
			max, argmax = d, r
		}
	}
	fmt.Fprintf(w, "  busiest rank: %d (%v); mean busy: %v\n",
		argmax, max, total/sim.Duration(len(busy)))
}
