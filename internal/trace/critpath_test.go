package trace

import (
	"strings"
	"testing"
)

// buildCritTrace hand-builds a three-rank trace with a known critical
// path. Events are added in completion order, as the runtime does.
//
//	rank 0: compute [0,100]   send->1 [100,200]   recv<-1 [200,410]
//	rank 1: compute [0,300]   recv<-0 [300,310]   send->0 [310,400]
//	rank 2: compute [0,50]    (idle after — pure slack)
//
// The makespan (410) is decided by rank 1's slow compute: the chain is
// r1.compute -> r1.recv -> r1.send -> r0.recv.
func buildCritTrace() *Recorder {
	r := New(0)
	r.Add(Event{Rank: 2, Kind: KindCompute, Phase: PhaseReduce, Start: 0, End: 50})
	r.Add(Event{Rank: 0, Kind: KindCompute, Phase: PhaseReduce, Start: 0, End: 100})
	r.Add(Event{Rank: 0, Kind: KindSend, Label: "->1", Phase: PhaseInter, Start: 100, End: 200, Bytes: 64})
	r.Add(Event{Rank: 1, Kind: KindCompute, Phase: PhaseReduce, Start: 0, End: 300})
	r.Add(Event{Rank: 1, Kind: KindRecv, Label: "<-0", Phase: PhaseInter, Start: 300, End: 310, Bytes: 64})
	r.Add(Event{Rank: 1, Kind: KindSend, Label: "->0", Phase: PhaseInter, Start: 310, End: 400, Bytes: 64})
	r.Add(Event{Rank: 0, Kind: KindRecv, Label: "<-1", Phase: PhaseInter, Start: 200, End: 410, Bytes: 64})
	return r
}

func TestCriticalPathChain(t *testing.T) {
	cp := buildCritTrace().CriticalPath()
	if cp.Total != 410 {
		t.Fatalf("Total = %v, want 410", cp.Total)
	}
	type step struct {
		rank int
		kind Kind
	}
	want := []step{{1, KindCompute}, {1, KindRecv}, {1, KindSend}, {0, KindRecv}}
	if len(cp.Steps) != len(want) {
		t.Fatalf("got %d steps: %+v", len(cp.Steps), cp.Steps)
	}
	var busy, wait int64
	for i, st := range cp.Steps {
		if st.Event.Rank != want[i].rank || st.Event.Kind != want[i].kind {
			t.Errorf("step %d = rank %d %s, want rank %d %s",
				i, st.Event.Rank, st.Event.Kind, want[i].rank, want[i].kind)
		}
		busy += int64(st.Busy)
		wait += int64(st.Wait)
	}
	// The path tiles the makespan: busy + wait == total.
	if busy+wait != int64(cp.Total) {
		t.Fatalf("busy %d + wait %d != total %v", busy, wait, cp.Total)
	}
	// This chain has no idle gaps: each step starts when its predecessor
	// ends (r0.recv started at 200 but only progressed once r1.send
	// finished, which the wait/busy split charges as busy-after-pred).
	if wait != 0 {
		t.Fatalf("wait = %d, want 0", wait)
	}
}

func TestCriticalPathSlack(t *testing.T) {
	cp := buildCritTrace().CriticalPath()
	slack := map[string]PhaseSlack{}
	for _, p := range cp.Phases {
		slack[p.Phase] = p
	}
	// The inter phase contains the zero-slack message chain.
	if s := slack[PhaseInter]; s.Slack != 0 {
		t.Fatalf("inter slack = %v, want 0", s.Slack)
	}
	// The reduce phase contains rank 1's gating compute (slack 0), so its
	// min is 0 even though rank 2's compute has 360 of slack.
	if s := slack[PhaseReduce]; s.Slack != 0 {
		t.Fatalf("reduce slack = %v, want 0", s.Slack)
	}
	// Rank 2's compute must NOT be on the path.
	for _, st := range cp.Steps {
		if st.Event.Rank == 2 {
			t.Fatal("idle rank 2 appeared on the critical path")
		}
	}
}

func TestCriticalPathSlackIsolatedEvent(t *testing.T) {
	// An event with no successors gets slack = makespan - its end.
	r := New(0)
	r.Add(Event{Rank: 0, Kind: KindCompute, Phase: "a", Start: 0, End: 50})
	r.Add(Event{Rank: 1, Kind: KindCompute, Phase: "b", Start: 0, End: 400})
	cp := r.CriticalPath()
	var got PhaseSlack
	for _, p := range cp.Phases {
		if p.Phase == "a" {
			got = p
		}
	}
	if got.Slack != 350 {
		t.Fatalf("slack = %v, want 350", got.Slack)
	}
}

func TestCriticalPathSkipsContainers(t *testing.T) {
	// Collective/phase spans aggregate leaves; they must not appear as
	// path steps themselves.
	cp := buildSpanTrace().CriticalPath()
	for _, st := range cp.Steps {
		if st.Event.Kind == KindPhase || st.Event.Kind == KindCollective {
			t.Fatalf("container %s on the path", st.Event.Kind)
		}
	}
	if len(cp.Steps) == 0 {
		t.Fatal("empty path")
	}
}

func TestCriticalPathWrite(t *testing.T) {
	var b strings.Builder
	buildCritTrace().CriticalPath().Write(&b)
	out := b.String()
	for _, want := range []string{"critical path: 4 steps", "makespan 0.410us", PhaseInter, "min slack"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCriticalPathEmptyTrace(t *testing.T) {
	cp := New(0).CriticalPath()
	if len(cp.Steps) != 0 || cp.Total != 0 {
		t.Fatalf("empty trace path = %+v", cp)
	}
	var b strings.Builder
	cp.Write(&b) // must not panic
}
