package trace

import (
	"strings"
	"testing"

	"dpml/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	r := New(0)
	r.Add(Event{Rank: 0, Kind: KindSend, Label: "->1", Start: 0, End: 100, Bytes: 64})
	r.Add(Event{Rank: 1, Kind: KindRecv, Label: "<-0", Start: 0, End: 150, Bytes: 64})
	r.Add(Event{Rank: 0, Kind: KindCompute, Start: 100, End: 300, Bytes: 1024})
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	stats := r.ByKind()
	if len(stats) != 3 {
		t.Fatalf("ByKind returned %d kinds", len(stats))
	}
	// Sorted by kind: coll < compute < recv < send.
	if stats[0].Kind != KindCompute || stats[1].Kind != KindRecv || stats[2].Kind != KindSend {
		t.Fatalf("kind order %v", stats)
	}
	if stats[0].Busy != 200 || stats[0].Bytes != 1024 {
		t.Fatalf("compute stats %+v", stats[0])
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Add(Event{Rank: 0, Kind: KindSend})
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder recorded something")
	}
	if len(r.ByKind()) != 0 || len(r.RankBusy()) != 0 {
		t.Fatal("nil recorder summarized something")
	}
}

func TestRecorderLimit(t *testing.T) {
	// The limit is per rank: rank 0's third event is dropped while
	// rank 1 keeps recording.
	r := New(2)
	for i := 0; i < 3; i++ {
		r.Add(Event{Rank: 0, Kind: KindSend, End: sim.Time(i)})
	}
	r.Add(Event{Rank: 1, Kind: KindSend})
	if r.Len() != 3 {
		t.Fatalf("limit ignored: %d events", r.Len())
	}
	evs := r.Events()
	if evs[0].Rank != 0 || evs[1].Rank != 1 || evs[2].Rank != 0 {
		t.Fatalf("limit must keep each rank's prefix: %+v", evs)
	}
}

func TestEventsCanonicalOrder(t *testing.T) {
	// Events merge by (End, rank, per-rank recording order) regardless
	// of the order ranks recorded them in.
	r := New(0)
	r.Add(Event{Rank: 1, Kind: KindSend, End: 50})
	r.Add(Event{Rank: 0, Kind: KindSend, End: 10})
	r.Add(Event{Rank: 1, Kind: KindSend, End: 50})
	r.Add(Event{Rank: 0, Kind: KindSend, End: 50})
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	evs := r.Events()
	want := []struct {
		rank int
		end  sim.Time
	}{{0, 10}, {0, 50}, {1, 50}, {1, 50}}
	for i, w := range want {
		if evs[i].Rank != w.rank || evs[i].End != w.end {
			t.Fatalf("event %d = rank %d end %v, want rank %d end %v",
				i, evs[i].Rank, evs[i].End, w.rank, w.end)
		}
	}
}

func TestBackwardsEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("event ending before start accepted")
		}
	}()
	New(0).Add(Event{Start: 10, End: 5})
}

func TestRankBusyFiltering(t *testing.T) {
	r := New(0)
	r.Add(Event{Rank: 0, Kind: KindSend, Start: 0, End: 10})
	r.Add(Event{Rank: 0, Kind: KindCompute, Start: 10, End: 40})
	r.Add(Event{Rank: 2, Kind: KindCompute, Start: 0, End: 5})
	all := r.RankBusy()
	if len(all) != 3 || all[0] != 40 || all[1] != 0 || all[2] != 5 {
		t.Fatalf("RankBusy = %v", all)
	}
	onlyCompute := r.RankBusy(KindCompute)
	if onlyCompute[0] != 30 || onlyCompute[2] != 5 {
		t.Fatalf("filtered RankBusy = %v", onlyCompute)
	}
}

func TestCommMatrix(t *testing.T) {
	r := New(0)
	r.Add(Event{Rank: 0, Kind: KindSend, Label: "->1", Bytes: 100})
	r.Add(Event{Rank: 0, Kind: KindSend, Label: "->1", Bytes: 50})
	r.Add(Event{Rank: 1, Kind: KindSend, Label: "->0", Bytes: 7})
	r.Add(Event{Rank: 1, Kind: KindRecv, Label: "<-0", Bytes: 999}) // ignored
	m := r.CommMatrix(2)
	if m[0][1] != 150 || m[1][0] != 7 || m[0][0] != 0 {
		t.Fatalf("CommMatrix = %v", m)
	}
}

func TestCSVAndSummary(t *testing.T) {
	r := New(0)
	r.Add(Event{Rank: 0, Kind: KindSend, Label: "a,b", Start: 1, End: 2, Bytes: 3})
	var csv strings.Builder
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	if !strings.Contains(out, "rank,kind,label,phase,start_ns,end_ns,bytes") ||
		!strings.Contains(out, `0,send,"a,b",,1,2,3`) {
		t.Fatalf("csv:\n%s", out)
	}
	var sum strings.Builder
	r.Summary(&sum)
	if !strings.Contains(sum.String(), "1 events") || !strings.Contains(sum.String(), "send") {
		t.Fatalf("summary:\n%s", sum.String())
	}
}

func TestEventDuration(t *testing.T) {
	e := Event{Start: sim.Time(100), End: sim.Time(350)}
	if e.Duration() != 250 {
		t.Fatalf("Duration = %v", e.Duration())
	}
}
