package trace

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"dpml/internal/sim"
)

// TestWriteCSVRoundTrip drives labels containing every CSV metacharacter
// through WriteCSV and back through a standard RFC 4180 reader: each
// field must survive byte for byte. This is the regression test for the
// old exporter, which replaced commas with semicolons and let quotes and
// newlines corrupt the row structure.
func TestWriteCSVRoundTrip(t *testing.T) {
	labels := []string{
		"plain",
		"with,comma",
		`with"quote`,
		"with\nnewline",
		"with\rcr",
		`everything,"at
once"`,
		"",
	}
	r := New(0)
	for i, l := range labels {
		r.Add(Event{
			Rank: i, Kind: KindSend, Label: l, Phase: l,
			Start: sim.Time(i), End: sim.Time(i + 10), Bytes: i * 3,
		})
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV unreadable: %v\n%s", err, b.String())
	}
	if len(rows) != len(labels)+1 {
		t.Fatalf("got %d rows, want %d", len(rows), len(labels)+1)
	}
	header := strings.Join(rows[0], ",")
	if header != "rank,kind,label,phase,start_ns,end_ns,bytes" {
		t.Fatalf("header = %q", header)
	}
	for i, l := range labels {
		row := rows[i+1]
		if row[2] != l || row[3] != l {
			t.Errorf("row %d label/phase = %q/%q, want %q", i, row[2], row[3], l)
		}
		if rank, _ := strconv.Atoi(row[0]); rank != i {
			t.Errorf("row %d rank = %q", i, row[0])
		}
		if bytes, _ := strconv.Atoi(row[6]); bytes != i*3 {
			t.Errorf("row %d bytes = %q", i, row[6])
		}
	}
}
