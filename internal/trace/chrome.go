package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteChrome exports the trace in the Chrome trace_event JSON format
// (the "JSON Array Format" with complete "X" events), loadable in
// Perfetto or chrome://tracing. Ranks map to threads (tid) and nodes to
// processes (pid) via nodeOf; a nil nodeOf puts every rank in process 0.
// Timestamps are microseconds (float, so nanosecond precision survives).
//
// Container spans (collectives and phases) and leaf events all become
// duration events on the rank's track; the viewer nests them by time,
// which reproduces the span hierarchy because spans strictly nest.
// Output is deterministic: metadata first (sorted by rank), then events
// in record order.
func (t *Recorder) WriteChrome(w io.Writer, nodeOf func(rank int) int) error {
	if nodeOf == nil {
		nodeOf = func(int) int { return 0 }
	}
	bw := &errWriter{w: w}
	bw.str(`{"displayTimeUnit":"ns","traceEvents":[`)

	// Metadata: name each process (node) and thread (rank) once.
	ranks := map[int]bool{}
	for _, e := range t.Events() {
		ranks[e.Rank] = true
	}
	sorted := make([]int, 0, len(ranks))
	for r := range ranks {
		sorted = append(sorted, r)
	}
	sort.Ints(sorted)
	first := true
	nodesNamed := map[int]bool{}
	for _, r := range sorted {
		node := nodeOf(r)
		if !nodesNamed[node] {
			nodesNamed[node] = true
			bw.sep(&first)
			bw.str(fmt.Sprintf(
				`{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":"node %d"}}`,
				node, node))
		}
		bw.sep(&first)
		bw.str(fmt.Sprintf(
			`{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":"rank %d"}}`,
			node, r, r))
	}

	for _, e := range t.Events() {
		name := string(e.Kind)
		switch e.Kind {
		case KindPhase, KindCollective, KindFallback:
			name = e.Label
		}
		bw.sep(&first)
		bw.str(fmt.Sprintf(
			`{"ph":"X","name":%s,"cat":%s,"pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"label":%s,"phase":%s,"bytes":%d}}`,
			jsonString(name), jsonString(string(e.Kind)),
			nodeOf(e.Rank), e.Rank,
			micros(int64(e.Start)), micros(int64(e.Duration())),
			jsonString(e.Label), jsonString(e.Phase), e.Bytes))
	}
	bw.str("]}\n")
	return bw.err
}

// micros renders a nanosecond count as a decimal microsecond literal with
// no floating-point rounding: 1234 ns -> "1.234".
func micros(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	whole, frac := ns/1000, ns%1000
	if frac == 0 {
		return fmt.Sprintf("%s%d", neg, whole)
	}
	s := fmt.Sprintf("%s%d.%03d", neg, whole, frac)
	return strings.TrimRight(s, "0")
}

// jsonString quotes s as a JSON string literal.
func jsonString(s string) string {
	return strconv.Quote(s)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (b *errWriter) str(s string) {
	if b.err == nil {
		_, b.err = io.WriteString(b.w, s)
	}
}

func (b *errWriter) sep(first *bool) {
	if *first {
		*first = false
		return
	}
	b.str(",\n")
}
