package topology

import "fmt"

// Job describes one run: a cluster, how many of its nodes participate,
// and how many MPI processes run per node (block placement, like the
// paper's full-subscription experiments).
type Job struct {
	Cluster   *Cluster
	NodesUsed int
	PPN       int
}

// NewJob validates and builds a job description.
func NewJob(c *Cluster, nodes, ppn int) (*Job, error) {
	if c == nil {
		return nil, fmt.Errorf("topology: nil cluster")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if nodes <= 0 || nodes > c.Nodes {
		return nil, fmt.Errorf("topology: job wants %d nodes, cluster %s has %d", nodes, c.Name, c.Nodes)
	}
	if ppn <= 0 || ppn > c.CoresPerNode() {
		return nil, fmt.Errorf("topology: job wants ppn=%d, cluster %s has %d cores/node", ppn, c.Name, c.CoresPerNode())
	}
	return &Job{Cluster: c, NodesUsed: nodes, PPN: ppn}, nil
}

// MustJob is NewJob that panics on error; for tests and fixed benchmarks.
func MustJob(c *Cluster, nodes, ppn int) *Job {
	j, err := NewJob(c, nodes, ppn)
	if err != nil {
		panic(err)
	}
	return j
}

// NumProcs returns the world size.
func (j *Job) NumProcs() int { return j.NodesUsed * j.PPN }

func (j *Job) String() string {
	return fmt.Sprintf("%s: %d nodes x %d ppn = %d procs", j.Cluster.Name, j.NodesUsed, j.PPN, j.NumProcs())
}

// Placement locates one rank on the hardware.
type Placement struct {
	Node      int // node index in [0, NodesUsed)
	LocalRank int // rank within the node in [0, PPN)
	Socket    int // socket index in [0, Sockets)
	HCA       int // nearest HCA index in [0, HCAs)
}

// Place maps a global rank to hardware using block ("bunch") placement:
// consecutive ranks fill a node before spilling to the next, and within a
// node consecutive local ranks fill socket 0 before socket 1, matching
// MVAPICH2's default CPU mapping. The nearest HCA is the one attached to
// the rank's socket (round-robin when sockets outnumber HCAs).
func (j *Job) Place(rank int) Placement {
	if rank < 0 || rank >= j.NumProcs() {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", rank, j.NumProcs()))
	}
	c := j.Cluster
	local := rank % j.PPN
	// Split the node's ppn across sockets as evenly as possible, earlier
	// sockets getting the remainder (block distribution).
	per := j.PPN / c.Sockets
	rem := j.PPN % c.Sockets
	socket, acc := 0, 0
	for s := 0; s < c.Sockets; s++ {
		n := per
		if s < rem {
			n++
		}
		if local < acc+n {
			socket = s
			break
		}
		acc += n
	}
	return Placement{
		Node:      rank / j.PPN,
		LocalRank: local,
		Socket:    socket,
		HCA:       socket % c.HCAs,
	}
}

// RanksOnNode returns the global ranks placed on the given node, in local
// rank order.
func (j *Job) RanksOnNode(node int) []int {
	if node < 0 || node >= j.NodesUsed {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", node, j.NodesUsed))
	}
	out := make([]int, j.PPN)
	for i := range out {
		out[i] = node*j.PPN + i
	}
	return out
}

// SameNode reports whether two ranks share a node.
func (j *Job) SameNode(a, b int) bool { return a/j.PPN == b/j.PPN }

// SameSocket reports whether two ranks share both node and socket.
func (j *Job) SameSocket(a, b int) bool {
	if !j.SameNode(a, b) {
		return false
	}
	return j.Place(a).Socket == j.Place(b).Socket
}
