package topology

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperClustersValidate(t *testing.T) {
	for _, c := range All() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestPaperClusterShapes(t *testing.T) {
	a, b, c, d := ClusterA(), ClusterB(), ClusterC(), ClusterD()
	if a.CoresPerNode() != 28 || b.CoresPerNode() != 28 || c.CoresPerNode() != 28 {
		t.Error("Xeon clusters must have 28 cores/node (2x14)")
	}
	if d.CoresPerNode() != 64 {
		t.Errorf("KNL cluster has %d cores/node, want 64", d.CoresPerNode())
	}
	if !a.Sharp.Available {
		t.Error("cluster A must support SHArP")
	}
	for _, cl := range []*Cluster{b, c, d} {
		if cl.Sharp.Available {
			t.Errorf("%s must not support SHArP", cl.Name)
		}
	}
	if a.Nodes != 40 || b.Nodes != 648 || c.Nodes != 752 || d.Nodes != 508 {
		t.Error("node counts do not match Section 6.1")
	}
	if d.Net.Oversubscription != 1.25 {
		t.Errorf("cluster D oversubscription %v, want 1.25 (5/4)", d.Net.Oversubscription)
	}
	// Interconnect character: IB must gain from concurrency at large
	// sizes (per-flow cap well below link); Omni-Path must not.
	if a.Net.PerFlowCap > a.Net.LinkBandwidth/4 {
		t.Error("IB per-flow cap too close to link bandwidth; Fig 1b shape breaks")
	}
	if c.Net.PerFlowCap < c.Net.LinkBandwidth/2 {
		t.Error("Omni-Path per-flow cap too low; Fig 1c Zone C shape breaks")
	}
	// KNL must have noticeably slower cores and higher overheads.
	if d.CPU.ReduceRate >= c.CPU.ReduceRate/2 {
		t.Error("KNL cores should be well below half Xeon reduce rate")
	}
	if d.Net.SenderOverhead <= c.Net.SenderOverhead {
		t.Error("KNL per-message overhead must exceed Xeon's")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"A", "B", "C", "D"} {
		c := ByName(name)
		if c == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		if !strings.HasPrefix(c.Name, name+"-") {
			t.Errorf("ByName(%q) returned %s", name, c.Name)
		}
	}
	if ByName("Z") != nil || ByName("a") != nil {
		t.Error("unknown names must return nil")
	}
}

func TestWithNodes(t *testing.T) {
	a := ClusterA()
	sub := a.WithNodes(16)
	if sub.Nodes != 16 {
		t.Fatalf("WithNodes gave %d nodes", sub.Nodes)
	}
	if a.Nodes != 40 {
		t.Fatal("WithNodes mutated the original")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WithNodes beyond cluster size must panic")
		}
	}()
	a.WithNodes(41)
}

func TestValidateCatchesBadClusters(t *testing.T) {
	bad := []func(*Cluster){
		func(c *Cluster) { c.Name = "" },
		func(c *Cluster) { c.Nodes = 0 },
		func(c *Cluster) { c.Sockets = -1 },
		func(c *Cluster) { c.CoresPerSocket = 0 },
		func(c *Cluster) { c.HCAs = 0 },
		func(c *Cluster) { c.Net.LinkBandwidth = 0 },
		func(c *Cluster) { c.Net.PerFlowCap = -1 },
		func(c *Cluster) { c.Net.EagerThreshold = -1 },
		func(c *Cluster) { c.Mem.CopyRate = 0 },
		func(c *Cluster) { c.Mem.AggregateBW = 0 },
		func(c *Cluster) { c.CPU.ReduceRate = 0 },
		func(c *Cluster) { c.Sharp.Radix = 1 },
		func(c *Cluster) { c.Sharp.MaxOutstanding = 0 },
		func(c *Cluster) { c.Sharp.MaxGroups = 0 },
		func(c *Cluster) { c.Sharp.SwitchReduceRate = 0 },
	}
	for i, mutate := range bad {
		c := ClusterA() // has SHArP, so SHArP mutations are exercised
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a broken cluster", i)
		}
	}
}

func TestJobValidation(t *testing.T) {
	c := ClusterA()
	if _, err := NewJob(nil, 1, 1); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := NewJob(c, 0, 1); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := NewJob(c, 41, 1); err == nil {
		t.Error("too many nodes accepted")
	}
	if _, err := NewJob(c, 1, 0); err == nil {
		t.Error("ppn=0 accepted")
	}
	if _, err := NewJob(c, 1, 29); err == nil {
		t.Error("ppn beyond cores accepted")
	}
	j, err := NewJob(c, 16, 28)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumProcs() != 448 {
		t.Fatalf("NumProcs = %d, want 448 (paper Fig 4)", j.NumProcs())
	}
}

func TestPlacementBlockMapping(t *testing.T) {
	j := MustJob(ClusterA(), 4, 28)
	// Rank 0: node 0, local 0, socket 0. Rank 27: node 0, local 27,
	// socket 1. Rank 28: node 1.
	p := j.Place(0)
	if p.Node != 0 || p.LocalRank != 0 || p.Socket != 0 {
		t.Errorf("rank 0 placed %+v", p)
	}
	p = j.Place(13)
	if p.Socket != 0 {
		t.Errorf("rank 13 on socket %d, want 0 (14 per socket)", p.Socket)
	}
	p = j.Place(14)
	if p.Socket != 1 {
		t.Errorf("rank 14 on socket %d, want 1", p.Socket)
	}
	p = j.Place(27)
	if p.Node != 0 || p.Socket != 1 {
		t.Errorf("rank 27 placed %+v", p)
	}
	p = j.Place(28)
	if p.Node != 1 || p.LocalRank != 0 || p.Socket != 0 {
		t.Errorf("rank 28 placed %+v", p)
	}
}

func TestPlacementOddPPN(t *testing.T) {
	// ppn=7 over 2 sockets: socket 0 gets 4 (remainder), socket 1 gets 3.
	j := MustJob(ClusterA(), 2, 7)
	wantSocket := []int{0, 0, 0, 0, 1, 1, 1}
	for local, want := range wantSocket {
		if got := j.Place(local).Socket; got != want {
			t.Errorf("local rank %d on socket %d, want %d", local, got, want)
		}
	}
}

func TestPlacementSingleSocketKNL(t *testing.T) {
	j := MustJob(ClusterD(), 2, 64)
	for r := 0; r < j.NumProcs(); r++ {
		if s := j.Place(r).Socket; s != 0 {
			t.Fatalf("KNL rank %d on socket %d, want 0", r, s)
		}
	}
}

func TestRanksOnNodeAndSameNode(t *testing.T) {
	j := MustJob(ClusterB(), 3, 4)
	got := j.RanksOnNode(1)
	want := []int{4, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RanksOnNode(1) = %v, want %v", got, want)
		}
	}
	if !j.SameNode(4, 7) || j.SameNode(3, 4) {
		t.Error("SameNode misclassifies")
	}
	if !j.SameSocket(0, 1) {
		t.Error("ranks 0,1 share socket 0")
	}
	if j.SameSocket(0, 4) {
		t.Error("ranks on different nodes cannot share a socket")
	}
}

func TestSameSocketCrossSocket(t *testing.T) {
	j := MustJob(ClusterA(), 1, 28)
	if j.SameSocket(0, 14) {
		t.Error("ranks 0 and 14 are on different sockets at ppn=28")
	}
	if !j.SameSocket(14, 27) {
		t.Error("ranks 14 and 27 both sit on socket 1")
	}
}

func TestPlacementProperties(t *testing.T) {
	// Property: every rank places onto valid coordinates, placements
	// partition evenly per node, and sockets are monotone in local rank.
	f := func(nodesSeed, ppnSeed uint8) bool {
		c := ClusterC()
		nodes := 1 + int(nodesSeed)%8
		ppn := 1 + int(ppnSeed)%c.CoresPerNode()
		j := MustJob(c, nodes, ppn)
		prevSocket := -1
		for r := 0; r < j.NumProcs(); r++ {
			p := j.Place(r)
			if p.Node != r/ppn || p.LocalRank != r%ppn {
				return false
			}
			if p.Socket < 0 || p.Socket >= c.Sockets {
				return false
			}
			if p.HCA < 0 || p.HCA >= c.HCAs {
				return false
			}
			if p.LocalRank == 0 {
				prevSocket = 0
			}
			if p.Socket < prevSocket {
				return false // sockets must be non-decreasing within node
			}
			prevSocket = p.Socket
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceOutOfRangePanics(t *testing.T) {
	j := MustJob(ClusterA(), 1, 4)
	for _, r := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Place(%d) did not panic", r)
				}
			}()
			j.Place(r)
		}()
	}
}
