// Package topology describes the simulated HPC systems: node and socket
// structure, CPU and memory characteristics, and interconnect profiles.
// The four constructors ClusterA..ClusterD mirror the four evaluation
// platforms of the paper (Section 6.1). Parameter values are calibrated so
// the fabric model reproduces the communication trends of Figure 1, not
// the authors' absolute microseconds; see DESIGN.md for the rationale.
package topology

import (
	"fmt"

	"dpml/internal/sim"
)

// Cluster is a static description of a machine. It is pure data: the
// fabric and MPI layers interpret it.
type Cluster struct {
	Name string
	// Nodes is the number of compute nodes available.
	Nodes int
	// Sockets is the number of CPU sockets per node.
	Sockets int
	// CoresPerSocket is the number of usable cores per socket.
	CoresPerSocket int
	// HCAs is the number of host channel adapters (NICs) per node.
	// Multi-HCA nodes allow HCA-aware leader placement.
	HCAs int

	Net   NetProfile
	Mem   MemProfile
	CPU   CPUProfile
	Sharp SharpProfile
}

// CoresPerNode returns Sockets*CoresPerSocket.
func (c *Cluster) CoresPerNode() int { return c.Sockets * c.CoresPerSocket }

// Validate checks internal consistency and returns a descriptive error
// for the first problem found.
func (c *Cluster) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("topology: cluster has no name")
	case c.Nodes <= 0:
		return fmt.Errorf("topology: %s: Nodes = %d, want > 0", c.Name, c.Nodes)
	case c.Sockets <= 0:
		return fmt.Errorf("topology: %s: Sockets = %d, want > 0", c.Name, c.Sockets)
	case c.CoresPerSocket <= 0:
		return fmt.Errorf("topology: %s: CoresPerSocket = %d, want > 0", c.Name, c.CoresPerSocket)
	case c.HCAs <= 0:
		return fmt.Errorf("topology: %s: HCAs = %d, want > 0", c.Name, c.HCAs)
	case c.Net.LinkBandwidth <= 0:
		return fmt.Errorf("topology: %s: LinkBandwidth must be positive", c.Name)
	case c.Net.PerFlowCap <= 0:
		return fmt.Errorf("topology: %s: PerFlowCap must be positive", c.Name)
	case c.Net.EagerThreshold < 0:
		return fmt.Errorf("topology: %s: EagerThreshold must be >= 0", c.Name)
	case c.Net.LeafRadix < 0:
		return fmt.Errorf("topology: %s: LeafRadix must be >= 0", c.Name)
	case c.Mem.CopyRate <= 0 || c.Mem.CrossSocketRate <= 0 || c.Mem.AggregateBW <= 0:
		return fmt.Errorf("topology: %s: memory rates must be positive", c.Name)
	case c.CPU.ReduceRate <= 0:
		return fmt.Errorf("topology: %s: ReduceRate must be positive", c.Name)
	}
	if c.Sharp.Available {
		switch {
		case c.Sharp.Radix < 2:
			return fmt.Errorf("topology: %s: SHArP radix %d, want >= 2", c.Name, c.Sharp.Radix)
		case c.Sharp.SwitchReduceRate <= 0:
			return fmt.Errorf("topology: %s: SHArP SwitchReduceRate must be positive", c.Name)
		case c.Sharp.MaxOutstanding <= 0:
			return fmt.Errorf("topology: %s: SHArP MaxOutstanding must be positive", c.Name)
		case c.Sharp.MaxGroups <= 0:
			return fmt.Errorf("topology: %s: SHArP MaxGroups must be positive", c.Name)
		}
	}
	return nil
}

// WithNodes returns a copy of the cluster restricted to n nodes, e.g. to
// run a 16-node job on cluster A. It panics if n exceeds the cluster size.
func (c *Cluster) WithNodes(n int) *Cluster {
	if n <= 0 || n > c.Nodes {
		panic(fmt.Sprintf("topology: WithNodes(%d) on %s with %d nodes", n, c.Name, c.Nodes))
	}
	cc := *c
	cc.Nodes = n
	return &cc
}

// WithHCAs returns a copy of the cluster with n host channel adapters per
// node (e.g. a dual-rail variant of cluster B). Ranks attach to the HCA
// of their socket (HCA-aware placement, Section 4.3: "each leader
// communicates through its closest HCA").
func (c *Cluster) WithHCAs(n int) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("topology: WithHCAs(%d)", n))
	}
	cc := *c
	cc.HCAs = n
	cc.Name = fmt.Sprintf("%s-%dhca", c.Name, n)
	return &cc
}

func (c *Cluster) String() string {
	return fmt.Sprintf("%s (%d nodes x %ds x %dc)", c.Name, c.Nodes, c.Sockets, c.CoresPerSocket)
}

// Calibrated interconnect profiles. The shapes these must reproduce:
//
//   - InfiniBand EDR (Fig 1b): per-flow cap well below link capacity, so
//     relative throughput keeps scaling with pairs at every message size;
//     hardware offload keeps per-message CPU overheads low.
//   - Omni-Path (Fig 1c): very high message rate and low small-message
//     overhead (Zone A scales with pairs), but a single PSM stream can
//     nearly saturate the link, so large messages see no concurrency
//     benefit (Zone C flat at 1).
//   - KNL + Omni-Path (Fig 1d): same fabric driven by ~3x slower cores,
//     so per-message overheads triple and per-flow rates drop.

func infinibandEDR() NetProfile {
	return NetProfile{
		LinkBandwidth:    12.0e9, // ~100 Gb/s
		PerFlowCap:       1.1e9,  // per-QP effective rate in mbw pattern
		SenderOverhead:   400 * sim.Nanosecond,
		ReceiverOverhead: 300 * sim.Nanosecond,
		WireLatency:      900 * sim.Nanosecond,
		MsgGap:           7 * sim.Nanosecond, // ~150 M msg/s NIC rate
		EagerThreshold:   16 << 10,
		Oversubscription: 1,
		LeafRadix:        16, // matches the SHArP aggregation radix
	}
}

func omniPath100() NetProfile {
	return NetProfile{
		LinkBandwidth:    12.3e9, // 100 Gb/s
		PerFlowCap:       10.5e9, // one PSM stream nearly fills the link
		SenderOverhead:   650 * sim.Nanosecond,
		ReceiverOverhead: 450 * sim.Nanosecond,
		WireLatency:      1000 * sim.Nanosecond,
		MsgGap:           6 * sim.Nanosecond,
		EagerThreshold:   8 << 10,
		Oversubscription: 1,
		LeafRadix:        16, // 48-port leaf switches, 16 node-facing in the 2:1 split
	}
}

func omniPathKNL() NetProfile {
	p := omniPath100()
	p.SenderOverhead = 1900 * sim.Nanosecond // slow cores drive PSM
	p.ReceiverOverhead = 1300 * sim.Nanosecond
	p.PerFlowCap = 5.5e9
	p.Oversubscription = 1.25 // 5/4 fat-tree oversubscription
	return p
}

func xeonMemory() MemProfile {
	return MemProfile{
		CopyRate:         4.0e9,
		CrossSocketRate:  2.4e9,
		AggregateBW:      68e9,
		CopyStartup:      180 * sim.Nanosecond,
		CrossSocketExtra: 320 * sim.Nanosecond,
		FlagSync:         80 * sim.Nanosecond,
		FlagSyncCross:    170 * sim.Nanosecond,
	}
}

func knlMemory() MemProfile {
	return MemProfile{
		CopyRate:         1.6e9, // slow single-thread copies
		CrossSocketRate:  1.6e9, // single socket: no QPI penalty
		AggregateBW:      85e9,  // MCDRAM in cache mode
		CopyStartup:      420 * sim.Nanosecond,
		CrossSocketExtra: 0,
		FlagSync:         150 * sim.Nanosecond, // slow cores poll slowly
		FlagSyncCross:    150 * sim.Nanosecond, // single socket
	}
}

func sharpSwitchless() SharpProfile { return SharpProfile{} }

func sharpEDR() SharpProfile {
	return SharpProfile{
		Available:        true,
		Radix:            16,
		OpOverhead:       1900 * sim.Nanosecond,
		HopLatency:       300 * sim.Nanosecond,
		SwitchReduceRate: 0.13e9,
		MaxPayload:       8 << 10,
		MaxOutstanding:   2,
		MaxGroups:        8,
	}
}

// ClusterA is the paper's cluster A: 40 Haswell nodes (2 x 14 cores at
// 2.4 GHz), InfiniBand EDR with SHArP support.
func ClusterA() *Cluster {
	return &Cluster{
		Name:           "A-Xeon-IB-SHArP",
		Nodes:          40,
		Sockets:        2,
		CoresPerSocket: 14,
		HCAs:           1,
		Net:            infinibandEDR(),
		Mem:            xeonMemory(),
		CPU:            CPUProfile{ReduceRate: 5.0e9},
		Sharp:          sharpEDR(),
	}
}

// ClusterB is the paper's cluster B: 648 Broadwell nodes (2 x 14 cores at
// 2.4 GHz), InfiniBand EDR, no SHArP.
func ClusterB() *Cluster {
	return &Cluster{
		Name:           "B-Xeon-IB",
		Nodes:          648,
		Sockets:        2,
		CoresPerSocket: 14,
		HCAs:           1,
		Net:            infinibandEDR(),
		Mem:            xeonMemory(),
		CPU:            CPUProfile{ReduceRate: 5.2e9},
		Sharp:          sharpSwitchless(),
	}
}

// ClusterC is the paper's cluster C: 752 Haswell nodes (2 x 14 cores at
// 2.3 GHz), Intel Omni-Path.
func ClusterC() *Cluster {
	return &Cluster{
		Name:           "C-Xeon-OmniPath",
		Nodes:          752,
		Sockets:        2,
		CoresPerSocket: 14,
		HCAs:           1,
		Net:            omniPath100(),
		Mem:            xeonMemory(),
		CPU:            CPUProfile{ReduceRate: 4.8e9},
		Sharp:          sharpSwitchless(),
	}
}

// ClusterD is the paper's cluster D: 508 KNL nodes (68 cores, capped at
// 64 usable), Intel Omni-Path with 5/4 oversubscription.
func ClusterD() *Cluster {
	return &Cluster{
		Name:           "D-KNL-OmniPath",
		Nodes:          508,
		Sockets:        1,
		CoresPerSocket: 64,
		HCAs:           1,
		Net:            omniPathKNL(),
		Mem:            knlMemory(),
		CPU:            CPUProfile{ReduceRate: 1.5e9},
		Sharp:          sharpSwitchless(),
	}
}

// ClusterE is an extrapolated exascale system the paper could never
// measure: 4096 Xeon nodes (2 x 14 cores) on InfiniBand EDR behind a
// 2:1-oversubscribed fat tree of 32-port leaf switches. At 28 ppn a
// full-system job is 114,688 ranks — the 100k+-rank regime the sharded
// kernel and the partitioned fabric exist for. Calibration reuses the
// cluster-B interconnect and memory profiles; only the tree shape is new.
func ClusterE() *Cluster {
	net := infinibandEDR()
	net.Oversubscription = 2 // tapered core: half the leaf uplink capacity
	net.LeafRadix = 32
	return &Cluster{
		Name:           "E-Xeon-IB-exa",
		Nodes:          4096,
		Sockets:        2,
		CoresPerSocket: 14,
		HCAs:           1,
		Net:            net,
		Mem:            xeonMemory(),
		CPU:            CPUProfile{ReduceRate: 5.2e9},
		Sharp:          sharpSwitchless(),
	}
}

// ByName returns the cluster with the given short name ("A".."E", case
// sensitive), or nil if unknown. "E" is the extrapolated exascale system,
// not one of the paper's platforms.
func ByName(name string) *Cluster {
	switch name {
	case "A":
		return ClusterA()
	case "B":
		return ClusterB()
	case "C":
		return ClusterC()
	case "D":
		return ClusterD()
	case "E":
		return ClusterE()
	}
	return nil
}

// All returns the four paper clusters in order.
func All() []*Cluster {
	return []*Cluster{ClusterA(), ClusterB(), ClusterC(), ClusterD()}
}
