package topology

// SubtreeMap is the canonical partition of a job's nodes into leaf-switch
// subtrees. It is pure topology: derived only from the node count and the
// cluster's leaf radix, never from any execution knob (shard or netshard
// counts), so every run of the same job sees the same partition — the
// fabric layer relies on this to keep its arithmetic, and therefore every
// simulated outcome, independent of how many workers compute it.
type SubtreeMap struct {
	// Count is the number of subtrees (>= 1).
	Count int
	// Of maps node id -> subtree id. Subtree ids are dense, ordered by
	// first node: nodes [0,radix) are subtree 0, [radix,2*radix) are
	// subtree 1, and so on — matching block placement (Job.Place), where
	// consecutive nodes land under the same leaf switch.
	Of []int32
}

// Size returns the number of nodes in subtree s.
func (m *SubtreeMap) Size(s int) int {
	n := 0
	for _, id := range m.Of {
		if int(id) == s {
			n++
		}
	}
	return n
}

// LeafSubtrees builds the canonical contiguous partition of nodes across
// leaf switches of radix leafRadix. A non-positive radix (topology
// unknown) or a radix >= nodes yields a single subtree.
func LeafSubtrees(nodes, leafRadix int) *SubtreeMap {
	if nodes < 1 {
		nodes = 1
	}
	of := make([]int32, nodes)
	if leafRadix <= 0 || leafRadix >= nodes {
		return &SubtreeMap{Count: 1, Of: of}
	}
	count := (nodes + leafRadix - 1) / leafRadix
	for n := 0; n < nodes; n++ {
		of[n] = int32(n / leafRadix)
	}
	return &SubtreeMap{Count: count, Of: of}
}

// Subtrees returns the canonical leaf-switch partition of this cluster's
// nodes (after any WithNodes restriction).
func (c *Cluster) Subtrees() *SubtreeMap {
	return LeafSubtrees(c.Nodes, c.Net.LeafRadix)
}
