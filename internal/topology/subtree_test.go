package topology

import (
	"testing"
	"testing/quick"
)

func TestLeafSubtreesShapes(t *testing.T) {
	cases := []struct {
		nodes, radix, count int
	}{
		{1, 16, 1},
		{16, 16, 1}, // radix >= nodes: single subtree
		{17, 16, 2}, // one full leaf plus a remainder
		{40, 16, 3}, // cluster A full
		{160, 16, 10},
		{4096, 32, 128}, // cluster E full
		{8, 0, 1},       // topology unknown
		{8, -3, 1},      // defensive: negative radix
	}
	for _, tc := range cases {
		m := LeafSubtrees(tc.nodes, tc.radix)
		if m.Count != tc.count {
			t.Errorf("LeafSubtrees(%d, %d).Count = %d, want %d", tc.nodes, tc.radix, m.Count, tc.count)
		}
		if len(m.Of) != tc.nodes {
			t.Errorf("LeafSubtrees(%d, %d): len(Of) = %d", tc.nodes, tc.radix, len(m.Of))
		}
	}
}

func TestLeafSubtreesProperties(t *testing.T) {
	// Properties: ids are dense and non-decreasing (contiguous blocks),
	// block sizes are exactly radix except possibly the last, and the
	// partition is a pure function of (nodes, radix).
	f := func(nodesSeed, radixSeed uint16) bool {
		nodes := 1 + int(nodesSeed)%5000
		radix := int(radixSeed) % 70 // includes 0: single subtree
		m := LeafSubtrees(nodes, radix)
		if m.Count < 1 || len(m.Of) != nodes {
			return false
		}
		prev := int32(0)
		for n, id := range m.Of {
			if id < prev || id > prev+1 || int(id) >= m.Count {
				return false
			}
			if radix > 0 && radix < nodes && int(id) != n/radix {
				return false
			}
			prev = id
		}
		if int(prev) != m.Count-1 {
			return false // ids must be dense up to Count
		}
		// Every subtree except the last holds exactly radix nodes.
		if radix > 0 && radix < nodes {
			for s := 0; s < m.Count-1; s++ {
				if m.Size(s) != radix {
					return false
				}
			}
			last := m.Size(m.Count - 1)
			if last < 1 || last > radix {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterSubtreesAndExa(t *testing.T) {
	e := ClusterE()
	if err := e.Validate(); err != nil {
		t.Fatalf("cluster E: %v", err)
	}
	if got := e.Nodes * e.CoresPerNode(); got != 114688 {
		t.Fatalf("cluster E full-system ranks = %d, want 114688 (the 100k+ regime)", got)
	}
	if e.Net.Oversubscription <= 1 {
		t.Error("cluster E must model an oversubscribed core")
	}
	m := e.Subtrees()
	if m.Count != 128 {
		t.Errorf("cluster E subtrees = %d, want 128 (4096/32)", m.Count)
	}
	if ByName("E") == nil {
		t.Error(`ByName("E") = nil`)
	}
	// The paper clusters keep their leaf radix: cluster A's 40 nodes hang
	// off three 16-port leaves.
	if got := ClusterA().Subtrees().Count; got != 3 {
		t.Errorf("cluster A subtrees = %d, want 3", got)
	}
	// WithNodes restrictions repartition: a 16-node job on A is one leaf.
	if got := ClusterA().WithNodes(16).Subtrees().Count; got != 1 {
		t.Errorf("16-node cluster A subtrees = %d, want 1", got)
	}
}
