package topology

import "dpml/internal/sim"

// NetProfile captures the inter-node interconnect characteristics the
// flow-level fabric model needs. The parameters correspond to the fixed
// costs and rate limits discussed in Section 3 of the paper: per-message
// CPU overheads dominate small transfers (Zone A), per-flow and per-link
// rate caps dominate large ones (Zone C).
type NetProfile struct {
	// LinkBandwidth is the capacity of one NIC direction in bytes/sec.
	// Concurrent flows through the same NIC share it max-min fairly.
	LinkBandwidth float64
	// PerFlowCap is the maximum rate a single flow can sustain in
	// bytes/sec, modelling per-QP/PSM-stream processing limits. When
	// PerFlowCap ≈ LinkBandwidth one pair saturates the link (Omni-Path
	// large messages, Fig 1c); when PerFlowCap ≪ LinkBandwidth added
	// concurrency keeps helping (InfiniBand, Fig 1b).
	PerFlowCap float64
	// SenderOverhead is the CPU time the sending process spends per
	// message (building descriptors, PSM onload work, ...).
	SenderOverhead sim.Duration
	// ReceiverOverhead is the CPU time the receiving process spends per
	// message before the payload is usable.
	ReceiverOverhead sim.Duration
	// WireLatency is the one-way propagation plus switching latency.
	// It lower-bounds every cross-node interaction, so the sharded
	// kernel's lookahead never exceeds it.
	//
	//dpml:minlookahead
	WireLatency sim.Duration
	// MsgGap is the minimum spacing between message injections at one
	// NIC (the inverse of the NIC message rate).
	MsgGap sim.Duration
	// EagerThreshold is the message size in bytes up to which the eager
	// protocol is used; larger messages use rendezvous and pay an extra
	// handshake round-trip before the payload moves.
	EagerThreshold int
	// Oversubscription is the fat-tree core oversubscription factor
	// (≥ 1); the aggregate core capacity is the sum of node uplinks
	// divided by this factor. 0 means "no modelled core bottleneck".
	Oversubscription float64
	// LeafRadix is the number of node-facing ports on one leaf (edge)
	// switch of the fat tree. Nodes are cabled to leaf switches in
	// contiguous blocks of this size, so it determines the canonical
	// subtree partition used by the fabric layer: flows between nodes
	// under the same leaf never cross the core, and the oversubscribed
	// core capacity (when Oversubscription > 1) is split into one
	// uplink/downlink pair per subtree. 0 means "topology unknown":
	// the whole job is treated as a single subtree.
	LeafRadix int
}

// MemProfile captures the intra-node shared-memory channel. The paper's
// cost model calls these a' (CopyStartup) and b' (1/CopyRate).
type MemProfile struct {
	// CopyRate is the streaming rate of one process copying through
	// shared memory within a socket, bytes/sec.
	CopyRate float64
	// CrossSocketRate is the per-flow rate when source and destination
	// ranks sit on different sockets (QPI/UPI hop).
	CrossSocketRate float64
	// AggregateBW is the node memory bandwidth shared by all concurrent
	// copies, bytes/sec. Fig 1a's near-linear pair scaling requires
	// AggregateBW ≫ CopyRate.
	AggregateBW float64
	// CopyStartup is the fixed cost per shared-memory copy (a').
	CopyStartup sim.Duration
	// CrossSocketExtra is additional fixed latency for cross-socket
	// copies; the SHArP socket-leader design exists to avoid it.
	CrossSocketExtra sim.Duration
	// FlagSync is the leader-side synchronization cost per contributor
	// when gathering through shared memory (polling the ready flag and
	// pulling the cache line). Cross-socket contributors cost
	// FlagSyncCross instead; "both the gather and broadcast phases
	// suffer from this bottleneck" is Section 4.3's motivation for
	// socket-level leaders.
	FlagSync sim.Duration
	// FlagSyncCross is FlagSync for a contributor on another socket.
	FlagSyncCross sim.Duration
}

// CPUProfile captures per-core compute capability for reduction kernels.
type CPUProfile struct {
	// ReduceRate is the rate at which one core streams a two-operand
	// reduction, in bytes of input reduced per second (the paper's 1/c).
	ReduceRate float64
}

// SharpProfile models the SHArP in-network aggregation tree available on
// Mellanox fabrics (cluster A only).
type SharpProfile struct {
	// Available reports whether the fabric supports SHArP at all.
	Available bool
	// Radix is the fan-in of each aggregation switch; the tree depth for
	// h participating nodes is ceil(log_Radix(h)), minimum 1.
	Radix int
	// OpOverhead is the fixed per-operation cost (HCA doorbell, driver,
	// completion handling) independent of tree depth; dominant for small
	// trees, which is why SHArP latency is nearly flat in node count.
	OpOverhead sim.Duration
	// HopLatency is the per-level latency of the aggregation tree, paid
	// once going up and once coming down.
	HopLatency sim.Duration
	// SwitchReduceRate is the per-switch streaming reduction rate in
	// bytes/sec; it is deliberately modest, which is why SHArP loses to
	// host-based algorithms beyond a few KB (Fig 8).
	SwitchReduceRate float64
	// MaxPayload is the largest message (bytes) an operation may carry;
	// larger reductions must fall back to host algorithms.
	MaxPayload int
	// MaxOutstanding bounds concurrent SHArP operations per tree; the
	// paper notes SHArP "can support only a small number of concurrent
	// operations", which rules out using every DPML leader.
	MaxOutstanding int
	// MaxGroups bounds the number of SHArP communicators (groups) that
	// can exist simultaneously.
	MaxGroups int
}
