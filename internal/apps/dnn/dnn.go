// Package dnn implements a synchronous data-parallel training step with
// the communication signature the paper's introduction motivates: "many
// applications in newer fields such as deep learning extensively use
// medium and large message reductions". Each step runs per-layer backprop
// compute and averages gradients with allreduce; a bucketing knob merges
// small layer gradients into larger messages — moving them from the
// latency-bound zone into the range where DPML's multi-leader design
// pays — which is exactly the kind of message-size engineering the
// paper's Figure 1 analysis informs.
package dnn

import (
	"fmt"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/sim"
)

// Layer describes one parameter tensor.
type Layer struct {
	Name  string
	Elems int // float32 gradient elements
}

// ResNet50ish returns a layer mix with the size spread of a mid-size CNN:
// many small bias/norm tensors, several medium convolutions, a few large
// fully connected blocks.
func ResNet50ish() []Layer {
	var layers []Layer
	for i := 0; i < 16; i++ {
		layers = append(layers, Layer{Name: fmt.Sprintf("bn%d", i), Elems: 512})
	}
	for i := 0; i < 8; i++ {
		layers = append(layers, Layer{Name: fmt.Sprintf("conv%d", i), Elems: 64 << 10})
	}
	layers = append(layers,
		Layer{Name: "fc1", Elems: 2 << 20},
		Layer{Name: "fc2", Elems: 1 << 20},
	)
	return layers
}

// Config sizes one training run.
type Config struct {
	Layers []Layer
	Steps  int
	// BucketBytes merges consecutive layers' gradients into buckets of
	// at least this many bytes before the allreduce (0 = one allreduce
	// per layer, like naive gradient averaging).
	BucketBytes int
	// Library selects the allreduce configurations.
	Library core.Library
	// ComputePerElem is the simulated backprop cost per gradient
	// element in bytes-equivalent compute (default 8).
	ComputePerElem int
}

// Result summarizes one run (rank 0's view).
type Result struct {
	StepTime   sim.Duration // average per step
	CommTime   sim.Duration // allreduce portion per step
	Allreduces int          // per step
	Steps      int
}

func (c Config) validate() error {
	if len(c.Layers) == 0 {
		return fmt.Errorf("dnn: no layers")
	}
	for _, l := range c.Layers {
		if l.Elems <= 0 {
			return fmt.Errorf("dnn: layer %q has %d elements", l.Name, l.Elems)
		}
	}
	if c.Steps <= 0 {
		return fmt.Errorf("dnn: %d steps", c.Steps)
	}
	if c.BucketBytes < 0 {
		return fmt.Errorf("dnn: negative bucket size")
	}
	return nil
}

// buckets groups consecutive layers into allreduce payloads of at least
// BucketBytes (the last bucket may be smaller).
func (c Config) buckets() []int {
	var out []int
	cur := 0
	for _, l := range c.Layers {
		cur += l.Elems
		if c.BucketBytes == 0 || cur*4 >= c.BucketBytes {
			out = append(out, cur)
			cur = 0
		}
	}
	if cur > 0 {
		out = append(out, cur)
	}
	return out
}

// Run executes the training kernel on the engine's world (it calls
// World.Run).
func Run(e *core.Engine, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.ComputePerElem <= 0 {
		cfg.ComputePerElem = 8
	}
	buckets := cfg.buckets()
	var res Result
	err := e.W.Run(func(r *mpi.Rank) error {
		grads := make([]*mpi.Vector, len(buckets))
		for i, n := range buckets {
			grads[i] = mpi.NewPhantom(mpi.Float32, n)
		}
		r.Barrier(e.W.CommWorld())
		start := r.Now()
		var comm sim.Duration
		for s := 0; s < cfg.Steps; s++ {
			// Backprop compute for the whole model.
			for _, l := range cfg.Layers {
				r.Compute(l.Elems * cfg.ComputePerElem)
			}
			// Gradient averaging, bucket by bucket.
			for _, g := range grads {
				t0 := r.Now()
				if err := e.LibraryAllreduce(r, cfg.Library, mpi.Sum, g); err != nil {
					return err
				}
				comm += r.Now().Sub(t0)
			}
		}
		if r.Rank() == 0 {
			res = Result{
				StepTime:   r.Now().Sub(start) / sim.Duration(cfg.Steps),
				CommTime:   comm / sim.Duration(cfg.Steps),
				Allreduces: len(buckets),
				Steps:      cfg.Steps,
			}
		}
		return nil
	})
	return res, err
}
