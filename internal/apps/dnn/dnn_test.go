package dnn

import (
	"testing"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/topology"
)

func engineOn(t *testing.T, nodes, ppn int) *core.Engine {
	t.Helper()
	job, err := topology.NewJob(topology.ClusterC(), nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(mpi.NewWorld(job, mpi.Config{}))
}

func TestBucketsGrouping(t *testing.T) {
	cfg := Config{
		Layers: []Layer{{"a", 100}, {"b", 100}, {"c", 1000}, {"d", 50}},
	}
	// No bucketing: one payload per layer.
	if got := cfg.buckets(); len(got) != 4 {
		t.Fatalf("unbucketed: %v", got)
	}
	// 800-byte buckets (200 float32): a+b merge, c alone, d trails.
	cfg.BucketBytes = 800
	got := cfg.buckets()
	want := []int{200, 1000, 50}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	// Total elements conserved.
	sum := 0
	for _, b := range got {
		sum += b
	}
	if sum != 1250 {
		t.Fatalf("bucket elements %d, want 1250", sum)
	}
}

func TestRunValidation(t *testing.T) {
	e := engineOn(t, 1, 1)
	bad := []Config{
		{Steps: 1},
		{Layers: []Layer{{"x", 0}}, Steps: 1},
		{Layers: []Layer{{"x", 1}}, Steps: 0},
		{Layers: []Layer{{"x", 1}}, Steps: 1, BucketBytes: -1},
	}
	for i, cfg := range bad {
		cfg.Library = core.LibProposed
		if _, err := Run(e, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTrainingStepRuns(t *testing.T) {
	e := engineOn(t, 2, 4)
	res, err := Run(e, Config{
		Layers:  ResNet50ish(),
		Steps:   2,
		Library: core.LibProposed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StepTime <= 0 || res.CommTime <= 0 || res.CommTime >= res.StepTime {
		t.Fatalf("timing inconsistent: %+v", res)
	}
	if res.Allreduces != len(ResNet50ish()) {
		t.Fatalf("allreduces = %d, want one per layer", res.Allreduces)
	}
}

func TestBucketingReducesCommTime(t *testing.T) {
	// A model dominated by tiny tensors: naive gradient averaging pays
	// per-message latency 64 times; bucketing merges them into a few
	// bandwidth-zone messages.
	var layers []Layer
	for i := 0; i < 64; i++ {
		layers = append(layers, Layer{Name: "bn", Elems: 512}) // 2 KB each
	}
	run := func(bucketBytes int) Result {
		e := engineOn(t, 4, 8)
		res, err := Run(e, Config{
			Layers:      layers,
			Steps:       2,
			BucketBytes: bucketBytes,
			Library:     core.LibProposed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	naive := run(0)
	bucketed := run(64 << 10)
	if bucketed.Allreduces >= naive.Allreduces/4 {
		t.Fatalf("bucketing did not merge payloads: %d vs %d",
			bucketed.Allreduces, naive.Allreduces)
	}
	if float64(bucketed.CommTime) > 0.7*float64(naive.CommTime) {
		t.Fatalf("bucketed comm (%v) not clearly faster than naive (%v)",
			bucketed.CommTime, naive.CommTime)
	}
}

func TestProposedBeatsMVAPICH2OnTraining(t *testing.T) {
	run := func(lib core.Library) Result {
		e := engineOn(t, 4, 8)
		res, err := Run(e, Config{
			Layers:      ResNet50ish(),
			Steps:       2,
			BucketBytes: 1 << 20,
			Library:     lib,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mv2 := run(core.LibMVAPICH2)
	prop := run(core.LibProposed)
	if prop.CommTime >= mv2.CommTime {
		t.Fatalf("proposed comm (%v) not faster than MVAPICH2 (%v)",
			prop.CommTime, mv2.CommTime)
	}
}
