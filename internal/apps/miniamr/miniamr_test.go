package miniamr

import (
	"testing"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/topology"
)

func engineOn(t *testing.T, cl *topology.Cluster, nodes, ppn int) *core.Engine {
	t.Helper()
	job, err := topology.NewJob(cl, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(mpi.NewWorld(job, mpi.Config{}))
}

func TestRefinementHistogramCorrect(t *testing.T) {
	// Real mode: the deterministic criterion flags every third global
	// block id (shifted per step); verify the aggregated count.
	e := engineOn(t, topology.ClusterC(), 2, 3)
	p := e.W.Job.NumProcs()
	cfg := Config{BlocksPerRank: 4, BlockBytes: 1024, Steps: 3, Real: true, Library: core.LibMVAPICH2}
	res, err := Run(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for step := 0; step < cfg.Steps; step++ {
		for id := 0; id < cfg.BlocksPerRank*p; id++ {
			if (id+step)%3 == 0 {
				want++
			}
		}
	}
	if res.RefinedBlocks != want {
		t.Fatalf("refined %d blocks, want %d", res.RefinedBlocks, want)
	}
}

func TestAllLibrariesRun(t *testing.T) {
	for _, lib := range core.Libraries() {
		e := engineOn(t, topology.ClusterC(), 2, 4)
		res, err := Run(e, Config{BlocksPerRank: 2, BlockBytes: 512, Steps: 2, Library: lib})
		if err != nil {
			t.Fatalf("%s: %v", lib, err)
		}
		if res.RefineTime <= 0 {
			t.Fatalf("%s: no time elapsed", lib)
		}
	}
}

func TestProposedBeatsMVAPICH2AtScale(t *testing.T) {
	// Figure 11b-c's claim: the proposed design reduces the refinement
	// time relative to MVAPICH2 (medium/large allreduces benefit from
	// DPML).
	run := func(lib core.Library) sim.Duration {
		e := engineOn(t, topology.ClusterC(), 4, 16)
		res, err := Run(e, Config{BlocksPerRank: 64, BlockBytes: 4096, Steps: 2, Library: lib})
		if err != nil {
			t.Fatal(err)
		}
		return res.RefineTime
	}
	mv2 := run(core.LibMVAPICH2)
	prop := run(core.LibProposed)
	if prop >= mv2 {
		t.Fatalf("proposed (%v) not faster than MVAPICH2 (%v)", prop, mv2)
	}
}

func TestConfigValidation(t *testing.T) {
	e := engineOn(t, topology.ClusterC(), 1, 1)
	bad := []Config{
		{BlocksPerRank: 0, BlockBytes: 1, Steps: 1},
		{BlocksPerRank: 1, BlockBytes: 0, Steps: 1},
		{BlocksPerRank: 1, BlockBytes: 1, Steps: 0},
	}
	for i, cfg := range bad {
		cfg.Library = core.LibMVAPICH2
		if _, err := Run(e, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPhantomAndRealSameTiming(t *testing.T) {
	timing := func(real bool) sim.Duration {
		e := engineOn(t, topology.ClusterC(), 2, 2)
		res, err := Run(e, Config{BlocksPerRank: 8, BlockBytes: 256, Steps: 2, Real: real, Library: core.LibIntelMPI})
		if err != nil {
			t.Fatal(err)
		}
		return res.RefineTime
	}
	if r, p := timing(true), timing(false); r != p {
		t.Fatalf("real %v != phantom %v", r, p)
	}
}
