// Package miniamr implements a kernel with the communication signature of
// the miniAMR proxy application's mesh-refinement phase, the workload of
// Figure 11b-c: each refinement step evaluates per-block criteria
// (compute), performs a global allreduce over the per-block refinement
// histogram — a message whose size grows with the number of processes —
// and a small control allreduce for the load-balancing decision. With the
// paper's settings (refinement every step) this phase dominates the
// application, so the refinement time is the reported metric.
package miniamr

import (
	"fmt"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/sim"
)

// Config sizes one run.
type Config struct {
	// BlocksPerRank is the number of mesh blocks each rank owns; the
	// refinement histogram has BlocksPerRank*NumProcs entries, which is
	// what makes miniAMR's allreduces "relatively large" at scale.
	BlocksPerRank int
	// BlockBytes is the per-block field size the criteria evaluation
	// touches.
	BlockBytes int
	// Steps is the number of refinement steps (the paper sets the
	// refinement frequency so this dominates >98% of runtime).
	Steps int
	// Real carries actual data through the reductions.
	Real bool
	// Library picks the allreduce configuration per message size, the
	// quantity Figure 11b-c varies.
	Library core.Library
}

// Result summarizes one run (rank 0's view).
type Result struct {
	// RefineTime is the total virtual time of the refinement loop — the
	// metric of Figure 11b-c.
	RefineTime sim.Duration
	// RefinedBlocks is the global number of blocks flagged for
	// refinement over the run (Real mode; sanity check).
	RefinedBlocks int64
	Steps         int
}

func (c Config) validate() error {
	switch {
	case c.BlocksPerRank <= 0:
		return fmt.Errorf("miniamr: BlocksPerRank = %d", c.BlocksPerRank)
	case c.BlockBytes <= 0:
		return fmt.Errorf("miniamr: BlockBytes = %d", c.BlockBytes)
	case c.Steps <= 0:
		return fmt.Errorf("miniamr: Steps = %d", c.Steps)
	}
	return nil
}

// Run executes the refinement kernel on the engine's world (it calls
// World.Run).
func Run(e *core.Engine, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	var res Result
	err := e.W.Run(func(r *mpi.Rank) error {
		out, err := run(e, r, cfg)
		if err != nil {
			return err
		}
		if r.Rank() == 0 {
			res = out
		}
		return nil
	})
	return res, err
}

func run(e *core.Engine, r *mpi.Rank, cfg Config) (Result, error) {
	p := e.W.Job.NumProcs()
	globalBlocks := cfg.BlocksPerRank * p
	me := r.Rank()

	mkHist := func() *mpi.Vector {
		if cfg.Real {
			return mpi.NewVector(mpi.Int64, globalBlocks)
		}
		return mpi.NewPhantom(mpi.Int64, globalBlocks)
	}
	start := r.Now()
	var refined int64
	for step := 0; step < cfg.Steps; step++ {
		// Criteria evaluation over the local blocks' fields.
		r.Compute(cfg.BlocksPerRank * cfg.BlockBytes)

		// Global refinement histogram: each rank contributes flags for
		// its own blocks; the allreduce gives everyone the full map.
		hist := mkHist()
		if cfg.Real {
			for b := 0; b < cfg.BlocksPerRank; b++ {
				// Deterministic pseudo-criterion: refine block when its
				// id clashes with the step.
				if (me*cfg.BlocksPerRank+b+step)%3 == 0 {
					hist.Set(me*cfg.BlocksPerRank+b, 1)
				}
			}
		}
		if err := e.LibraryAllreduce(r, cfg.Library, mpi.Sum, hist); err != nil {
			return Result{}, err
		}
		if cfg.Real {
			for i := 0; i < globalBlocks; i++ {
				refined += int64(hist.At(i))
			}
		}

		// Small control allreduce: global imbalance metric.
		ctl := mpi.NewPhantom(mpi.Float64, 1)
		if cfg.Real {
			ctl = mpi.NewVector(mpi.Float64, 1)
			ctl.Set(0, float64(cfg.BlocksPerRank))
		}
		if err := e.LibraryAllreduce(r, cfg.Library, mpi.Max, ctl); err != nil {
			return Result{}, err
		}

		// Apply the refinement locally.
		r.Compute(cfg.BlocksPerRank * cfg.BlockBytes / 4)
	}
	return Result{
		RefineTime:    r.Now().Sub(start),
		RefinedBlocks: refined,
		Steps:         cfg.Steps,
	}, nil
}
