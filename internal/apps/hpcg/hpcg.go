// Package hpcg implements a distributed conjugate-gradient kernel with
// the communication signature of the HPCG benchmark: per-iteration DDOT
// global reductions (8-byte MPI_Allreduce, the operation Figure 11a
// times) plus nearest-neighbour halo exchanges for the sparse
// matrix-vector product. The solver runs a 7-point 3D Laplacian,
// partitioned in planes along Z, and — in Real mode — actually converges,
// which is how the tests validate it.
package hpcg

import (
	"fmt"
	"math"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/sim"
)

// Config sizes one run.
type Config struct {
	// Nx, Ny, Nz are the local grid dimensions per rank (weak scaling,
	// like HPCG's --nx/--ny/--nz).
	Nx, Ny, Nz int
	// Iterations is the number of CG iterations to run.
	Iterations int
	// Real carries actual float64 data so the solver genuinely
	// converges; with Real=false buffers are phantom and only costs are
	// simulated (for large-scale benchmarking).
	Real bool
	// Spec is the allreduce design used for DDOT (the quantity the
	// paper varies in Figure 11a).
	Spec core.Spec
}

// Result summarizes one run (rank 0's deterministic view).
type Result struct {
	// DDOTTime is the total virtual time rank 0 spent in DDOT
	// allreduces — the metric of Figure 11a.
	DDOTTime sim.Duration
	// TotalTime is the virtual time of the whole solve.
	TotalTime sim.Duration
	// Iterations echoes the configured iteration count.
	Iterations int
	// ResidualDrop is initial/final residual norm (Real mode only;
	// otherwise 0). A converging CG yields a value well above 1.
	ResidualDrop float64
}

func (c Config) validate(e *core.Engine) error {
	if c.Nx <= 0 || c.Ny <= 0 || c.Nz <= 0 {
		return fmt.Errorf("hpcg: grid %dx%dx%d must be positive", c.Nx, c.Ny, c.Nz)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("hpcg: %d iterations", c.Iterations)
	}
	return e.Validate(c.Spec)
}

// Run executes the CG kernel on the engine's world. It must be the only
// workload in the world (it calls World.Run).
func Run(e *core.Engine, cfg Config) (Result, error) {
	if err := cfg.validate(e); err != nil {
		return Result{}, err
	}
	var res Result
	err := e.W.Run(func(r *mpi.Rank) error {
		s := newSolver(e, r, cfg)
		out, err := s.solve()
		if err != nil {
			return err
		}
		if r.Rank() == 0 {
			res = out
		}
		return nil
	})
	return res, err
}

type solver struct {
	e   *core.Engine
	r   *mpi.Rank
	cfg Config

	n     int // local points
	plane int // points per z-plane

	// Local fields (nil in phantom mode).
	x, b, rr, p, ap []float64
	haloLo, haloHi  []float64

	ddotTime sim.Duration
}

func newSolver(e *core.Engine, r *mpi.Rank, cfg Config) *solver {
	s := &solver{
		e: e, r: r, cfg: cfg,
		n:     cfg.Nx * cfg.Ny * cfg.Nz,
		plane: cfg.Nx * cfg.Ny,
	}
	if cfg.Real {
		s.x = make([]float64, s.n)
		s.b = make([]float64, s.n)
		s.rr = make([]float64, s.n)
		s.p = make([]float64, s.n)
		s.ap = make([]float64, s.n)
		s.haloLo = make([]float64, s.plane)
		s.haloHi = make([]float64, s.plane)
		for i := range s.b {
			s.b[i] = 1
		}
	}
	return s
}

// ddot computes the global dot product of two local fields: local
// multiply-add compute plus one 8-byte allreduce with the configured
// design. Like HPCG's DDOT timer, the measured time covers the whole
// routine (local dot + global reduction), which is why the relative
// benefit of a faster allreduce shrinks as local work grows.
func (s *solver) ddot(a, b []float64) (float64, error) {
	start := s.r.Now()
	s.r.Compute(s.n * 16) // read two streams
	local := 0.0
	if s.cfg.Real {
		for i := range a {
			local += a[i] * b[i]
		}
	}
	var v *mpi.Vector
	if s.cfg.Real {
		v = mpi.NewVector(mpi.Float64, 1)
		v.Set(0, local)
	} else {
		v = mpi.NewPhantom(mpi.Float64, 1)
	}
	if err := s.e.Allreduce(s.r, s.cfg.Spec, mpi.Sum, v); err != nil {
		return 0, err
	}
	s.ddotTime += s.r.Now().Sub(start)
	return v.At(0), nil
}

// haloExchange swaps boundary planes of field with the z-neighbours.
func (s *solver) haloExchange(field []float64) {
	r := s.r
	w := s.e.W
	c := w.CommWorld()
	me := r.Rank()
	p := c.Size()
	mk := func(src []float64) *mpi.Vector {
		if !s.cfg.Real {
			return mpi.NewPhantom(mpi.Float64, s.plane)
		}
		v := mpi.NewVector(mpi.Float64, s.plane)
		copy(v.Float64s(), src)
		return v
	}
	var loOut, hiOut []float64
	if s.cfg.Real {
		loOut = field[:s.plane]
		hiOut = field[s.n-s.plane:]
	}
	var reqs []*mpi.Request
	var loIn, hiIn *mpi.Vector
	if me > 0 {
		loIn = mk(nil)
		reqs = append(reqs, r.Irecv(c, me-1, 1, loIn))
		reqs = append(reqs, r.Isend(c, me-1, 2, mk(loOut)))
	}
	if me < p-1 {
		hiIn = mk(nil)
		reqs = append(reqs, r.Irecv(c, me+1, 2, hiIn))
		reqs = append(reqs, r.Isend(c, me+1, 1, mk(hiOut)))
	}
	r.WaitAll(reqs...)
	if s.cfg.Real {
		if loIn != nil {
			copy(s.haloLo, loIn.Float64s())
		} else {
			for i := range s.haloLo {
				s.haloLo[i] = 0
			}
		}
		if hiIn != nil {
			copy(s.haloHi, hiIn.Float64s())
		} else {
			for i := range s.haloHi {
				s.haloHi[i] = 0
			}
		}
	}
}

// spmv computes out = A*in for the 7-point Laplacian with Dirichlet
// boundaries, charging stencil compute.
func (s *solver) spmv(out, in []float64) {
	s.haloExchange(in)
	s.r.Compute(s.n * 8 * 7 / 2) // 7-point stencil traffic
	if !s.cfg.Real {
		return
	}
	nx, ny, nz := s.cfg.Nx, s.cfg.Ny, s.cfg.Nz
	at := func(f []float64, ix, iy, iz int) float64 {
		if ix < 0 || ix >= nx || iy < 0 || iy >= ny {
			return 0
		}
		switch {
		case iz < 0:
			return s.haloLo[iy*nx+ix]
		case iz >= nz:
			return s.haloHi[iy*nx+ix]
		default:
			return f[(iz*ny+iy)*nx+ix]
		}
	}
	// Global Dirichlet boundary in z at the world edges is handled by
	// the halo being zero there.
	for iz := 0; iz < nz; iz++ {
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				v := 6*at(in, ix, iy, iz) -
					at(in, ix-1, iy, iz) - at(in, ix+1, iy, iz) -
					at(in, ix, iy-1, iz) - at(in, ix, iy+1, iz) -
					at(in, ix, iy, iz-1) - at(in, ix, iy, iz+1)
				out[(iz*ny+iy)*nx+ix] = v
			}
		}
	}
}

// axpy: y += alpha*x, with compute charge.
func (s *solver) axpy(y, x []float64, alpha float64) {
	s.r.Compute(s.n * 16)
	if s.cfg.Real {
		for i := range y {
			y[i] += alpha * x[i]
		}
	}
}

func (s *solver) solve() (Result, error) {
	r := s.r
	start := r.Now()

	// r = b - A*x (x = 0), p = r.
	if s.cfg.Real {
		copy(s.rr, s.b)
		copy(s.p, s.rr)
	}
	rho, err := s.ddot(s.rr, s.rr)
	if err != nil {
		return Result{}, err
	}
	rho0 := rho
	for it := 0; it < s.cfg.Iterations; it++ {
		s.spmv(s.ap, s.p)
		pap, err := s.ddot(s.p, s.ap)
		if err != nil {
			return Result{}, err
		}
		alpha := 0.0
		if s.cfg.Real && pap != 0 { //dpml:allow floateq -- division guard: only exact zero divides badly
			alpha = rho / pap
		}
		s.axpy(s.x, s.p, alpha)
		s.axpy(s.rr, s.ap, -alpha)
		rhoNew, err := s.ddot(s.rr, s.rr)
		if err != nil {
			return Result{}, err
		}
		beta := 0.0
		if s.cfg.Real && rho != 0 { //dpml:allow floateq -- division guard: only exact zero divides badly
			beta = rhoNew / rho
		}
		rho = rhoNew
		// p = r + beta*p.
		s.r.Compute(s.n * 16)
		if s.cfg.Real {
			for i := range s.p {
				s.p[i] = s.rr[i] + beta*s.p[i]
			}
		}
	}
	out := Result{
		DDOTTime:   s.ddotTime,
		TotalTime:  r.Now().Sub(start),
		Iterations: s.cfg.Iterations,
	}
	if s.cfg.Real && rho > 0 {
		out.ResidualDrop = math.Sqrt(rho0 / rho)
	}
	return out, nil
}
