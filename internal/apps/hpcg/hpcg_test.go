package hpcg

import (
	"testing"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/topology"
)

func engineOn(t *testing.T, cl *topology.Cluster, nodes, ppn int) *core.Engine {
	t.Helper()
	job, err := topology.NewJob(cl, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(mpi.NewWorld(job, mpi.Config{}))
}

func TestCGConverges(t *testing.T) {
	e := engineOn(t, topology.ClusterA(), 2, 2)
	res, err := Run(e, Config{
		Nx: 8, Ny: 8, Nz: 4, Iterations: 30, Real: true,
		Spec: core.HostBased(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResidualDrop < 100 {
		t.Fatalf("CG barely converged: residual drop %.2f", res.ResidualDrop)
	}
	if res.DDOTTime <= 0 || res.TotalTime <= res.DDOTTime {
		t.Fatalf("timing inconsistent: ddot %v, total %v", res.DDOTTime, res.TotalTime)
	}
}

func TestCGConvergesUnderEveryDesign(t *testing.T) {
	specs := []core.Spec{
		core.HostBased(),
		core.DPML(2),
		{Design: core.DesignSharpNode},
		{Design: core.DesignSharpSocket},
		core.Flat(mpi.AlgRecursiveDoubling),
	}
	var drops []float64
	for _, s := range specs {
		e := engineOn(t, topology.ClusterA(), 2, 4)
		res, err := Run(e, Config{Nx: 6, Ny: 6, Nz: 3, Iterations: 25, Real: true, Spec: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.ResidualDrop < 50 {
			t.Fatalf("%v: residual drop %.2f", s, res.ResidualDrop)
		}
		drops = append(drops, res.ResidualDrop)
	}
	// All designs compute the same reduction: convergence identical.
	for i := 1; i < len(drops); i++ {
		if diff := drops[i]/drops[0] - 1; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("designs disagree on numerics: %v", drops)
		}
	}
}

func TestPhantomModeMatchesTimingShape(t *testing.T) {
	// Phantom and real runs must take identical virtual time (data
	// content cannot influence the schedule of a fixed iteration count).
	timing := func(real bool) Result {
		e := engineOn(t, topology.ClusterA(), 2, 2)
		res, err := Run(e, Config{Nx: 8, Ny: 8, Nz: 4, Iterations: 10, Real: real, Spec: core.HostBased()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r, p := timing(true), timing(false)
	if r.DDOTTime != p.DDOTTime || r.TotalTime != p.TotalTime {
		t.Fatalf("real (%v/%v) vs phantom (%v/%v) timing mismatch",
			r.DDOTTime, r.TotalTime, p.DDOTTime, p.TotalTime)
	}
}

func TestSharpImprovesDDOT(t *testing.T) {
	// Figure 11a: SHArP designs beat the host-based scheme on DDOT time
	// (8-byte allreduces).
	run := func(s core.Spec) Result {
		e := engineOn(t, topology.ClusterA(), 4, 7)
		res, err := Run(e, Config{Nx: 4, Ny: 4, Nz: 2, Iterations: 15, Spec: s})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	host := run(core.HostBased())
	sharp := run(core.Spec{Design: core.DesignSharpSocket})
	if sharp.DDOTTime >= host.DDOTTime {
		t.Fatalf("SHArP DDOT (%v) not faster than host-based (%v)", sharp.DDOTTime, host.DDOTTime)
	}
}

func TestConfigValidation(t *testing.T) {
	e := engineOn(t, topology.ClusterA(), 1, 1)
	bad := []Config{
		{Nx: 0, Ny: 1, Nz: 1, Iterations: 1, Spec: core.HostBased()},
		{Nx: 1, Ny: 1, Nz: 1, Iterations: 0, Spec: core.HostBased()},
		{Nx: 1, Ny: 1, Nz: 1, Iterations: 1, Spec: core.DPML(99)},
	}
	for i, cfg := range bad {
		if _, err := Run(e, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
