package core

import (
	"dpml/internal/fabric"
	"dpml/internal/mpi"
	"dpml/internal/trace"
)

// sharpAllreduce implements the two SHArP designs of Section 4.3.
//
// Node-leader (socketLevel=false): every local rank copies its full input
// to the node leader (local rank 0) through shared memory — ranks on the
// other socket pay the cross-socket penalty on both the gather and the
// broadcast; the leader performs ppn-1 reductions, hands the partial
// result to the switch tree, and broadcasts the result back.
//
// Socket-leader (socketLevel=true): one leader per socket gathers only
// its socket's ranks (no cross-socket copies), and all socket leaders of
// all nodes participate in one SHArP operation.
//
// Payloads beyond the fabric's SHArP limit fall back to the host-based
// single-leader hierarchy, as production implementations do.
func (e *Engine) sharpAllreduce(r *mpi.Rank, op *mpi.Op, vec *mpi.Vector, socketLevel bool) {
	group, host := e.sharpNode, e.sharpNodeHost
	if socketLevel {
		group, host = e.sharpSocket, e.sharpSocketHost
	}
	if vec.Bytes() > e.W.Sharp.MaxPayload() {
		e.dpml(r, op, vec, 1, 1, "")
		return
	}

	job := e.W.Job
	pl := r.Place()
	ppn := job.PPN
	rec := e.W.Tracer()

	if ppn == 1 {
		// The designs coincide: the single local rank is the leader.
		sp := rec.BeginSpan(r.Rank(), trace.PhaseSharp, r.Now())
		e.sharpOp(r, group, host, op, vec)
		sp.End(r.Now())
		return
	}

	leader := 0
	want := ppn
	if socketLevel {
		leader = e.socketLeader[pl.LocalRank]
		want = e.socketSize[leader]
	}

	seq := e.nextSeq(r)
	rg := e.regions[pl.Node]

	// Gather: full input to this rank's leader. Leader indices in the
	// region are local rank numbers, so segments never collide.
	sp := rec.BeginSpan(r.Rank(), trace.PhaseCopy, r.Now())
	cross := pl.Socket != e.leaderSocket[leader]
	r.MemCopy(cross, vec.Bytes())
	rg.Put(seq, ppn, leader, pl.LocalRank, vec.Clone())
	sp.End(r.Now())

	if pl.LocalRank == leader {
		sp = rec.BeginSpan(r.Rank(), trace.PhaseReduce, r.Now())
		slots := rg.GatherWait(r.Proc(), seq, ppn, leader, want)
		e.gatherSync(r, leader, socketLevel)
		var acc *mpi.Vector
		for _, s := range slots {
			if s == nil {
				continue
			}
			if acc == nil {
				acc = s.Clone()
				continue
			}
			r.Reduce(op, acc, s)
		}
		sp.End(r.Now())
		sp = rec.BeginSpan(r.Rank(), trace.PhaseSharp, r.Now())
		e.sharpOp(r, group, host, op, acc)
		rg.Publish(seq, ppn, leader, acc)
		sp.End(r.Now())
	}

	// Broadcast: copy the result back from this rank's leader.
	sp = rec.BeginSpan(r.Rank(), trace.PhaseBcast, r.Now())
	res := rg.ResultWait(r.Proc(), seq, ppn, leader)
	r.MemCopy(cross, res.Bytes())
	vec.CopyFrom(res)
	rg.DoneCopy(seq)
	sp.End(r.Now())
}

// sharpOp runs one in-network reduction for this leader, folding real
// payloads through the switch model's data path. If the offload is
// offline (fault injection), every leader of the failed operation sees
// the same ErrSharpOffline — the verdict is made once, by the operation's
// last arriver — and they complete the inter-node reduction with a
// host-based algorithm over the matching leader communicator instead,
// recording the degradation in the trace.
func (e *Engine) sharpOp(r *mpi.Rank, group *fabric.SharpGroup, host *mpi.Comm, op *mpi.Op, vec *mpi.Vector) {
	var contrib any
	var combine func(a, b any) any
	if !vec.Phantom() {
		contrib = vec.Clone()
		combine = func(a, b any) any {
			av, bv := a.(*mpi.Vector), b.(*mpi.Vector)
			op.Apply(av, bv)
			return av
		}
	}
	res, err := group.Allreduce(r.Proc(), vec.Bytes(), contrib, combine)
	if err == fabric.ErrSharpOffline {
		alg := autoAlg(vec.Bytes())
		start := r.Now()
		if host.Size() > 1 {
			r.Allreduce(host, alg, op, vec)
		}
		e.W.Tracer().Add(trace.Event{
			Rank: r.Rank(), Kind: trace.KindFallback, Label: "sharp->host(" + string(alg) + ")",
			Start: start, End: r.Now(), Bytes: vec.Bytes(),
		})
		return
	}
	if err != nil {
		// The payload was validated against MaxPayload by the caller;
		// remaining errors indicate inconsistent collective calls.
		panic(err)
	}
	if res != nil {
		vec.CopyFrom(res.(*mpi.Vector))
	}
}
