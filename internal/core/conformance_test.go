package core

import (
	"fmt"
	"testing"

	"dpml/internal/faults"
	"dpml/internal/mpi"
	"dpml/internal/topology"
)

// The design-conformance matrix: every design x every datatype x
// {sum, max, min} x awkward (non-power-of-two) counts and shapes, checked
// element-wise against a serial reduction oracle. This is the VSS-style
// guarantee (Hovland, "Verifying the Correctness of AllReduce Algorithms
// in MPICH"): the designs must be demonstrably correct everywhere, not
// just fast on the benchmarked shapes.
//
// Buffers are rank-seeded with small integers (|v| <= 8), so every
// reduction is exact in all four datatypes regardless of combining order
// (sums stay far below float32's 2^24 exact-integer range), and the
// oracle can demand bit equality.

// conformanceDesigns returns the full design list for a SHArP-capable
// cluster, labeled for subtest names.
func conformanceDesigns() []struct {
	name string
	spec Spec
} {
	return []struct {
		name string
		spec Spec
	}{
		{"flat", Flat(mpi.AlgRecursiveDoubling)},
		{"host-based", DPML(1)},
		{"dpml-3", DPML(3)},
		{"dpml-pipe-2x3", DPMLPipelined(2, 3)},
		{"sharp-node", Spec{Design: DesignSharpNode}},
		{"sharp-socket", Spec{Design: DesignSharpSocket}},
		// Extension families: segment/group parameters deliberately do
		// not divide the test counts or shapes evenly.
		{"dualroot-s3", DualRoot(3)},
		{"dualroot-auto", DualRoot(0)},
		{"genall-g4", GenAll(4)},
		{"pap-sorted", PAPSorted()},
		{"pap-ring", PAPRing()},
	}
}

// conformanceOps is the op subset whose kernels all four datatypes
// implement exactly.
func conformanceOps() []*mpi.Op { return []*mpi.Op{mpi.Sum, mpi.Max, mpi.Min} }

func conformanceDtypes() []struct {
	name  string
	dtype mpi.Datatype
} {
	return []struct {
		name  string
		dtype mpi.Datatype
	}{
		{"f32", mpi.Float32}, {"f64", mpi.Float64},
		{"i32", mpi.Int32}, {"i64", mpi.Int64},
	}
}

// seedValue is the rank-seeded pattern: element i on rank k. Values lie
// in [-8, 8], keeping every op exact in every datatype.
func seedValue(k, i int) float64 { return float64((k*31+i*7)%17 - 8) }

// runConformance performs one allreduce on the given engine and verifies
// every rank's result element-wise against the serial oracle.
func runConformance(t *testing.T, e *Engine, s Spec, op *mpi.Op, dt mpi.Datatype, count int) {
	t.Helper()
	p := e.W.Job.NumProcs()
	// Serial oracle: fold the rank buffers in rank order with the same
	// op kernels the designs use.
	oracle := mpi.NewVector(dt, count)
	for i := 0; i < count; i++ {
		oracle.Set(i, seedValue(0, i))
	}
	tmp := mpi.NewVector(dt, count)
	for k := 1; k < p; k++ {
		for i := 0; i < count; i++ {
			tmp.Set(i, seedValue(k, i))
		}
		op.Apply(oracle, tmp)
	}
	err := e.W.Run(func(r *mpi.Rank) error {
		v := mpi.NewVector(dt, count)
		for i := 0; i < count; i++ {
			v.Set(i, seedValue(r.Rank(), i))
		}
		if err := e.Allreduce(r, s, op, v); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			if v.At(i) != oracle.At(i) {
				t.Errorf("rank %d elem %d: got %v want %v", r.Rank(), i, v.At(i), oracle.At(i))
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConformanceMatrix(t *testing.T) {
	// 3 nodes x 5 ppn: non-power-of-two in both dimensions, on the
	// SHArP-capable cluster so the offload designs run their real path.
	cl := topology.ClusterA()
	const nodes, ppn = 3, 5
	for _, d := range conformanceDesigns() {
		for _, dt := range conformanceDtypes() {
			for _, op := range conformanceOps() {
				for _, count := range []int{1, 61} {
					name := fmt.Sprintf("%s/%s/%s/n%d", d.name, dt.name, op.Name(), count)
					t.Run(name, func(t *testing.T) {
						e := buildEngine(t, cl, nodes, ppn)
						runConformance(t, e, d.spec, op, dt.dtype, count)
					})
				}
			}
		}
	}
}

func TestConformanceOddShape(t *testing.T) {
	// A second awkward shape (2 nodes x 7 ppn) and a larger odd count,
	// on the design subset with distinct communication structure.
	cl := topology.ClusterA()
	for _, d := range conformanceDesigns() {
		for _, dt := range conformanceDtypes() {
			t.Run(d.name+"/"+dt.name, func(t *testing.T) {
				e := buildEngine(t, cl, 2, 7)
				runConformance(t, e, d.spec, mpi.Sum, dt.dtype, 255)
			})
		}
	}
}

// TestConformanceUnderFaults reruns the matrix (one count, all designs x
// dtypes x ops) with a fault plan installed: stragglers, degraded links,
// and throttled NICs reshape the timing, and SHArP outages force the
// offload designs through their host fallback — none of which may change
// a single result bit.
func TestConformanceUnderFaults(t *testing.T) {
	cl := topology.ClusterA()
	const nodes, ppn = 3, 5
	spec, err := faults.ParseSpec("all@0.7")
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 7
	plan := spec.Instantiate(faults.Shape{Ranks: nodes * ppn, Nodes: nodes, HCAs: cl.HCAs})
	job, err := topology.NewJob(cl, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(faults.Shape{Ranks: nodes * ppn, Nodes: nodes, HCAs: cl.HCAs}); err != nil {
		t.Fatal(err)
	}
	for _, d := range conformanceDesigns() {
		for _, dt := range conformanceDtypes() {
			for _, op := range conformanceOps() {
				name := fmt.Sprintf("%s/%s/%s", d.name, dt.name, op.Name())
				t.Run(name, func(t *testing.T) {
					e := NewEngine(mpi.NewWorld(job, mpi.Config{Faults: plan}))
					runConformance(t, e, d.spec, op, dt.dtype, 61)
				})
			}
		}
	}
}
