package core

import (
	"fmt"
	"testing"

	"dpml/internal/faults"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/topology"
	"dpml/internal/trace"
)

// Arrival-pattern property tests for the Proficz designs: under a
// predicted-imbalanced arrival pattern the arrival-aware algorithms must
// finish no later than the symmetric ring baseline, and their reordered
// reductions must stay bit-identical to the rank-order oracle at every
// (shards, netshards) combination.

// papPlan instantiates a seeded high-intensity straggler plan on the
// 4x4 cluster-A shape the schedule explorer uses.
func papPlan(t *testing.T, seed uint64) *faults.Plan {
	t.Helper()
	spec, err := faults.ParseSpec("straggler@0.8")
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = seed
	sh := faults.Shape{Ranks: 16, Nodes: 4, HCAs: topology.ClusterA().HCAs}
	plan := spec.Instantiate(sh)
	if err := plan.Validate(sh); err != nil {
		t.Fatal(err)
	}
	return plan
}

// papArrivalDelays scales the plan's per-rank lateness scores into
// arrival offsets with a 2ms spread — large against the transfer times
// of a 2KB allreduce, putting the run squarely in the high-imbalance
// regime the PAP designs target.
func papArrivalDelays(e *Engine) []sim.Duration {
	_, score := e.arrivalOrder()
	maxScore := 0.0
	for _, s := range score {
		if s > maxScore {
			maxScore = s
		}
	}
	delays := make([]sim.Duration, len(score))
	if maxScore == 0 {
		return delays
	}
	for k, s := range score {
		delays[k] = sim.Duration(s / maxScore * 2e6) // ns
	}
	return delays
}

// papElapsed runs one allreduce under the plan with plan-predicted
// arrival offsets, verifies every rank against the rank-order oracle,
// and returns the completion time and max arrival spread from the
// metrics registry.
func papElapsed(t *testing.T, plan *faults.Plan, s Spec) (elapsed, spread float64) {
	t.Helper()
	// 2KB: the latency-bound sizes the arrival-aware designs target (a
	// bandwidth-optimal ring still wins the post-arrival tail once the
	// payload is large — that is papAwareSpec's size switch).
	const count = 256
	job, err := topology.NewJob(topology.ClusterA(), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(mpi.NewWorld(job, mpi.Config{Faults: plan, Trace: trace.New(0)}))
	delays := papArrivalDelays(e)

	oracle := mpi.NewVector(mpi.Float64, count)
	for i := 0; i < count; i++ {
		oracle.Set(i, seedValue(0, i))
	}
	tmp := mpi.NewVector(mpi.Float64, count)
	for k := 1; k < 16; k++ {
		for i := 0; i < count; i++ {
			tmp.Set(i, seedValue(k, i))
		}
		mpi.Sum.Apply(oracle, tmp)
	}
	err = e.W.Run(func(r *mpi.Rank) error {
		r.Proc().Sleep(delays[r.Rank()])
		v := mpi.NewVector(mpi.Float64, count)
		for i := 0; i < count; i++ {
			v.Set(i, seedValue(r.Rank(), i))
		}
		if err := e.Allreduce(r, s, mpi.Sum, v); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			if v.At(i) != oracle.At(i) {
				return fmt.Errorf("rank %d elem %d: got %v want %v", r.Rank(), i, v.At(i), oracle.At(i))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := e.W.Metrics()
	el, ok := m.Get("sim.elapsed")
	if !ok {
		t.Fatal("sim.elapsed missing from metrics registry")
	}
	sp, _ := m.Get("coll.arrival_spread.max")
	return el, sp
}

// TestPAPCompletionUnderImbalance: for several seeded straggler plans,
// the arrival-aware designs must complete no later than the flat ring
// on the same plan and arrival offsets — the overlap of early-rank work
// with straggler delay is the whole point of the family.
func TestPAPCompletionUnderImbalance(t *testing.T) {
	for _, seed := range []uint64{1, 2, 7} {
		plan := papPlan(t, seed)
		if len(plan.Stragglers) == 0 {
			t.Fatalf("seed %d: plan has no stragglers", seed)
		}
		ring, ringSpread := papElapsed(t, plan, Flat(mpi.AlgRing))
		// The scenario must actually be imbalanced: the collective spans
		// must see an arrival spread on the order of the injected 2ms.
		if ringSpread < 1e6 {
			t.Fatalf("seed %d: ring arrival spread %.0fns, want >= 1ms — scenario not imbalanced", seed, ringSpread)
		}
		for _, d := range []struct {
			name string
			spec Spec
		}{
			{"pap-sorted", PAPSorted()},
			{"pap-ring", PAPRing()},
		} {
			got, _ := papElapsed(t, plan, d.spec)
			if got > ring {
				t.Errorf("seed %d: %s completed at %.0fns, later than ring baseline %.0fns", seed, d.name, got, ring)
			}
		}
	}
}

// TestPAPShardInvariance: the reordered PAP reductions must produce
// results bit-identical to the rank-order oracle at every (shards,
// netshards) combination — the reordering is a pure function of the
// shared fault plan, never of the kernel partitioning.
func TestPAPShardInvariance(t *testing.T) {
	plan := papPlan(t, 7)
	combos := []struct{ shards, netShards int }{
		{1, 1}, {2, 1}, {1, 2}, {2, 2}, {4, 2},
	}
	for _, d := range []struct {
		name string
		spec Spec
	}{
		{"pap-sorted", PAPSorted()},
		{"pap-ring", PAPRing()},
	} {
		for _, c := range combos {
			t.Run(fmt.Sprintf("%s/shards%d-net%d", d.name, c.shards, c.netShards), func(t *testing.T) {
				job, err := topology.NewJob(topology.ClusterA(), 4, 4)
				if err != nil {
					t.Fatal(err)
				}
				e := NewEngine(mpi.NewWorld(job, mpi.Config{
					Faults: plan, Shards: c.shards, NetShards: c.netShards,
				}))
				runConformance(t, e, d.spec, mpi.Sum, mpi.Float64, 255)
			})
		}
	}
}
