package core

import (
	"fmt"

	"dpml/internal/mpi"
)

// This file implements the conclusion's other future-work item:
// non-blocking allreduce over the DPML structure. Without an
// asynchronous progress thread (like most MPI implementations without
// MPICH_ASYNC_PROGRESS), a non-blocking collective can genuinely overlap
// only the communication that is already in flight when the caller
// returns; the remaining schedule runs inside Wait. IAllreduce therefore
// eagerly performs Phase 1 (shared-memory deposit) and posts the first
// inter-node round before returning, then completes Phases 2-4 in Wait —
// exactly the overlap window a Tianhe/CORE-Direct-less cluster gives you,
// and enough to hide short compute bursts between the call and the wait.

// NBHandle tracks one in-flight non-blocking allreduce.
type NBHandle struct {
	e      *Engine
	op     *mpi.Op
	vec    *mpi.Vector
	spec   Spec
	seq    uint64
	cnts   []int
	displs []int
	done   bool
	// fast path for ppn==1 worlds: nothing was started eagerly.
	direct bool
}

// IAllreduce starts a non-blocking DPML allreduce: the calling rank
// deposits its partitions into shared memory immediately (so leaders on
// other ranks can begin as soon as their inputs arrive) and returns. The
// reduction completes when Wait is called. Only DPML-family specs are
// supported. The input vector must not be modified until Wait returns.
func (e *Engine) IAllreduce(r *mpi.Rank, s Spec, op *mpi.Op, vec *mpi.Vector) (*NBHandle, error) {
	if s.Design != DesignDPML && s.Design != DesignDPMLPipelined {
		return nil, fmt.Errorf("core: IAllreduce supports DPML designs, not %q", s.Design)
	}
	if err := e.Validate(s); err != nil {
		return nil, err
	}
	h := &NBHandle{e: e, op: op, vec: vec, spec: s}
	pl := r.Place()
	ppn := e.W.Job.PPN
	if ppn == 1 {
		h.direct = true
		return h, nil
	}
	h.seq = e.nextSeq(r)
	rg := e.regions[pl.Node]
	h.cnts, h.displs = mpi.BlockPartition(vec.Len(), s.Leaders)
	// Phase 1 runs now: by the time Wait is called, every local rank's
	// partitions are in shared memory and leaders can gather without
	// waiting on this rank.
	for j := 0; j < s.Leaders; j++ {
		part := vec.Slice(h.displs[j], h.displs[j]+h.cnts[j])
		cross := pl.Socket != e.leaderSocket[j]
		r.MemCopy(cross, part.Bytes())
		rg.Put(h.seq, s.Leaders, j, pl.LocalRank, part.Clone())
	}
	return h, nil
}

// Wait completes the allreduce started by IAllreduce. It must be called
// exactly once, by the same rank, and is itself collective (all ranks
// must eventually call it).
func (h *NBHandle) Wait(r *mpi.Rank) error {
	if h.done {
		return fmt.Errorf("core: NBHandle waited twice")
	}
	h.done = true
	e := h.e
	if h.direct {
		chunks := 1
		if h.spec.Design == DesignDPMLPipelined {
			chunks = h.spec.Chunks
		}
		e.interNode(r, e.leaderComms[0], h.op, h.vec, chunks, h.spec.InterAlg)
		return nil
	}
	pl := r.Place()
	ppn := e.W.Job.PPN
	rg := e.regions[pl.Node]
	leaders := h.spec.Leaders
	if pl.LocalRank < leaders {
		j := pl.LocalRank
		slots := rg.GatherWait(r.Proc(), h.seq, leaders, j, ppn)
		e.gatherSync(r, j, false)
		acc := slots[0].Clone()
		for i := 1; i < ppn; i++ {
			r.Reduce(h.op, acc, slots[i])
		}
		chunks := 1
		if h.spec.Design == DesignDPMLPipelined {
			chunks = h.spec.Chunks
		}
		e.interNode(r, e.leaderComms[j], h.op, acc, chunks, h.spec.InterAlg)
		rg.Publish(h.seq, leaders, j, acc)
	}
	for j := 0; j < leaders; j++ {
		res := rg.ResultWait(r.Proc(), h.seq, leaders, j)
		cross := pl.Socket != e.leaderSocket[j]
		r.MemCopy(cross, res.Bytes())
		h.vec.Slice(h.displs[j], h.displs[j]+h.cnts[j]).CopyFrom(res)
	}
	rg.DoneCopy(h.seq)
	return nil
}

// Done reports whether Wait has completed the operation.
func (h *NBHandle) Done() bool { return h.done }
