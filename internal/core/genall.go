package core

import "dpml/internal/mpi"

// genAll implements the generalized allreduce of Kolmakov/Zhang
// (arXiv:2004.09362), parameterized by group size g: the p ranks form
// ceil(p/g) contiguous groups; each group ring-allreduces its members'
// vectors, the group leaders (first rank of each group) run a recursive-
// doubling allreduce over the group partials, and each leader broadcasts
// the final vector back into its group. The parameter interpolates
// between the two classic extremes exactly: g=1 makes every rank a
// leader (pure recursive doubling over p), g=p makes one group (pure
// ring over p, with no leader exchange or broadcast).
func (e *Engine) genAll(r *mpi.Rank, op *mpi.Op, vec *mpi.Vector, g int) {
	w := e.W
	c := w.CommWorld()
	me := c.RankOf(r)
	p := c.Size()
	if p == 1 {
		return
	}
	if g <= 0 {
		g = autoGroupSize(p, vec.Bytes())
	}
	if g > p {
		g = p
	}

	if g == p {
		// Single group: the intra-group ring already is the allreduce.
		r.Allreduce(c, mpi.AlgRing, op, vec)
		return
	}
	if g == 1 {
		// Singleton groups: only the leader exchange remains.
		r.Allreduce(c, mpi.AlgRecursiveDoubling, op, vec)
		return
	}

	groups := (p + g - 1) / g
	gi := me / g
	lo := gi * g
	hi := lo + g
	if hi > p {
		hi = p
	}
	groupRanks := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		groupRanks = append(groupRanks, c.Global(i))
	}
	gc := w.InternComm(groupRanks)

	// Phase A: intra-group ring allreduce — every member ends with the
	// group partial.
	if gc.Size() > 1 {
		r.Allreduce(gc, mpi.AlgRing, op, vec)
	}

	// Phase B: recursive doubling across the group leaders.
	if me == lo {
		leaders := make([]int, groups)
		for i := range leaders {
			leaders[i] = c.Global(i * g)
		}
		lc := w.InternComm(leaders)
		r.Allreduce(lc, mpi.AlgRecursiveDoubling, op, vec)
	}

	// Phase C: binomial broadcast of the final vector inside each group.
	if gc.Size() > 1 {
		r.Bcast(gc, 0, vec)
	}
}

// autoGroupSize picks g when the spec leaves it 0: small messages lean
// toward the recursive-doubling extreme (fewer, latency-bound rounds),
// large ones toward the ring extreme (bandwidth-optimal), and the
// middle takes balanced ~sqrt(p) groups.
func autoGroupSize(p, bytes int) int {
	switch {
	case bytes <= 4<<10:
		return 1
	case bytes >= 256<<10:
		return p
	}
	g := 1
	for g*g < p {
		g++
	}
	return g
}
