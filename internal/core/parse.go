package core

import (
	"fmt"
	"strconv"
	"strings"

	"dpml/internal/mpi"
)

// ParseDesign resolves a CLI design name, including parameterized forms,
// into a Spec. Recognized shapes:
//
//	flat, flat:<alg>                  flat algorithm on the world comm
//	host-based                        single-leader hierarchy
//	dpml-<l>                          multi-leader with l leaders
//	dpml-pipe-<l>x<k>                 pipelined with l leaders, k chunks
//	sharp-node, sharp-socket          SHArP offload designs
//	dualroot, dualroot-s<n>           dual-root tree, n segments per half
//	genall, genall-g<n>               generalized allreduce, group size n
//	pap-sorted, pap-ring              arrival-pattern-aware designs
//
// Parameters are validated for range here (non-negative, within the
// same bounds Engine.Validate enforces shape-independently); shape-
// dependent checks (leaders vs ppn, groups vs procs) remain Validate's.
func ParseDesign(name string) (Spec, error) {
	switch name {
	case "flat":
		return Flat(mpi.AlgRecursiveDoubling), nil
	case "host-based":
		return HostBased(), nil
	case "sharp-node":
		return Spec{Design: DesignSharpNode}, nil
	case "sharp-socket":
		return Spec{Design: DesignSharpSocket}, nil
	case "dualroot":
		return DualRoot(0), nil
	case "genall":
		return GenAll(0), nil
	case "pap-sorted":
		return PAPSorted(), nil
	case "pap-ring":
		return PAPRing(), nil
	}
	if alg, ok := strings.CutPrefix(name, "flat:"); ok {
		for _, a := range mpi.FlatAlgorithms() {
			if string(a) == alg {
				return Flat(a), nil
			}
		}
		return Spec{}, fmt.Errorf("core: unknown flat algorithm %q in design %q", alg, name)
	}
	if rest, ok := strings.CutPrefix(name, "dpml-pipe-"); ok {
		lStr, kStr, ok := strings.Cut(rest, "x")
		if !ok {
			return Spec{}, fmt.Errorf("core: design %q: want dpml-pipe-<l>x<k>", name)
		}
		l, err := parseParam(name, "leaders", lStr, 1, 1<<20)
		if err != nil {
			return Spec{}, err
		}
		k, err := parseParam(name, "chunks", kStr, 1, 1024)
		if err != nil {
			return Spec{}, err
		}
		return DPMLPipelined(l, k), nil
	}
	if rest, ok := strings.CutPrefix(name, "dpml-"); ok {
		l, err := parseParam(name, "leaders", rest, 1, 1<<20)
		if err != nil {
			return Spec{}, err
		}
		return DPML(l), nil
	}
	if rest, ok := strings.CutPrefix(name, "dualroot-"); ok {
		rest = strings.TrimPrefix(rest, "s")
		s, err := parseParam(name, "segments", rest, 1, 1024)
		if err != nil {
			return Spec{}, err
		}
		return DualRoot(s), nil
	}
	if rest, ok := strings.CutPrefix(name, "genall-"); ok {
		rest = strings.TrimPrefix(rest, "g")
		g, err := parseParam(name, "group size", rest, 1, 1<<20)
		if err != nil {
			return Spec{}, err
		}
		return GenAll(g), nil
	}
	return Spec{}, fmt.Errorf("core: unknown design %q", name)
}

// parseParam parses one decimal design parameter and range-checks it.
func parseParam(design, what, s string, lo, hi int) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("core: design %q: bad %s %q", design, what, s)
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("core: design %q: %s %d out of range [%d,%d]", design, what, v, lo, hi)
	}
	return v, nil
}
