package core

import (
	"math/rand"
	"testing"

	"dpml/internal/faults"
	"dpml/internal/mpi"
	"dpml/internal/topology"
	"dpml/internal/trace"
)

// runDesign executes one allreduce per rank with the given per-rank
// inputs on a fresh world and returns each rank's result vector.
func runDesign(t *testing.T, cfg mpi.Config, nodes, ppn int, s Spec, in [][]float64) [][]float64 {
	t.Helper()
	job, err := topology.NewJob(topology.ClusterA(), nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(mpi.NewWorld(job, cfg))
	out := make([][]float64, len(in))
	err = e.W.Run(func(r *mpi.Rank) error {
		v := mpi.NewVector(mpi.Float64, len(in[r.Rank()]))
		copy(v.Float64s(), in[r.Rank()])
		if err := e.Allreduce(r, s, mpi.Sum, v); err != nil {
			return err
		}
		out[r.Rank()] = append([]float64(nil), v.Float64s()...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func randomInputs(p, count int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([][]float64, p)
	for k := range in {
		in[k] = make([]float64, count)
		for i := range in[k] {
			in[k][i] = float64(rng.Intn(512) - 256)
		}
	}
	return in
}

// TestSharpOutageFallsBackToHost: with the offload offline for the whole
// run, both SHArP designs must complete with results identical to
// DesignDPML on the same inputs, and the degradation must be visible in
// the trace.
func TestSharpOutageFallsBackToHost(t *testing.T) {
	const nodes, ppn, count = 4, 4, 128
	in := randomInputs(nodes*ppn, count, 21)
	outage := &faults.Plan{Sharp: []faults.SharpOutage{{Start: 0}}}
	want := runDesign(t, mpi.Config{}, nodes, ppn, HostBased(), in)
	for _, design := range []Design{DesignSharpNode, DesignSharpSocket} {
		rec := trace.New(0)
		got := runDesign(t, mpi.Config{Faults: outage, Trace: rec}, nodes, ppn, Spec{Design: design}, in)
		for rank := range got {
			for i := range got[rank] {
				if got[rank][i] != want[rank][i] {
					t.Fatalf("%s under outage: rank %d elem %d: got %v, DPML gives %v",
						design, rank, i, got[rank][i], want[rank][i])
				}
			}
		}
		fallbacks := 0
		for _, ev := range rec.Events() {
			if ev.Kind == trace.KindFallback {
				fallbacks++
				if ev.Label != "sharp->host(recursive-doubling)" {
					t.Fatalf("%s: fallback label %q", design, ev.Label)
				}
			}
		}
		if fallbacks == 0 {
			t.Fatalf("%s: no fallback events in trace", design)
		}
	}
}

// TestSharpMidRunOutageAndRecovery: the offload fails between the first
// and second collective and recovers before the third. The middle
// operation must complete correctly via the host fallback; the outer two
// must use the switch tree.
func TestSharpMidRunOutageAndRecovery(t *testing.T) {
	const nodes, ppn, count = 4, 4, 64
	p := nodes * ppn
	job, err := topology.NewJob(topology.ClusterA(), nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(0)
	e := NewEngine(mpi.NewWorld(job, mpi.Config{Trace: rec}))
	in := randomInputs(p, count, 22)
	want := make([][3]float64, count)
	for i := 0; i < count; i++ {
		for k := 0; k < p; k++ {
			want[i][0] += in[k][i]
		}
		want[i][1] = 2 * want[i][0]
		want[i][2] = 3 * want[i][0]
	}
	spec := Spec{Design: DesignSharpNode}
	err = e.W.Run(func(r *mpi.Rank) error {
		world := e.W.CommWorld()
		for step := 0; step < 3; step++ {
			v := mpi.NewVector(mpi.Float64, count)
			for i := 0; i < count; i++ {
				v.Set(i, float64(step+1)*in[r.Rank()][i])
			}
			if err := e.Allreduce(r, spec, mpi.Sum, v); err != nil {
				return err
			}
			for i := 0; i < count; i++ {
				if v.At(i) != want[i][step] {
					t.Errorf("step %d rank %d elem %d: got %v want %v",
						step, r.Rank(), i, v.At(i), want[i][step])
					return nil
				}
			}
			r.Barrier(world)
			if r.Rank() == 0 {
				// Toggled before anyone can leave the barrier, so the next
				// operation's last arriver sees the new state.
				e.W.Sharp.SetFailed(step == 0)
			}
			r.Barrier(world)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ops := e.sharpNode.Stats.Ops; ops != 2 {
		t.Fatalf("switch-tree ops = %d, want 2 (steps 0 and 2)", ops)
	}
	fallbacks := 0
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindFallback {
			fallbacks++
		}
	}
	if fallbacks != nodes {
		t.Fatalf("fallback events = %d, want one per node leader (%d)", fallbacks, nodes)
	}
}
