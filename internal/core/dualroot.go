package core

import (
	"dpml/internal/mpi"
	"dpml/internal/trace"
)

// dualRoot implements Träff's doubly-pipelined dual-root reduction-to-all
// (arXiv:2109.12626) on the world communicator: the vector is split into
// two halves, each reduced up its own binary tree — tree 0 is the heap
// tree rooted at rank 0, tree 1 its mirror rooted at rank p-1, so every
// rank's degree across both trees stays balanced — and broadcast back
// down the same tree. Each half is further split into `segments`
// pipelined blocks; a root starts broadcasting block s as soon as it is
// reduced, while blocks s+1.. are still flowing upward, which is what
// makes the scheme "doubly" pipelined: both halves and both directions
// are active at once.
//
// Every receive (upward from children, downward from the parent) is
// pre-posted non-blocking and every send is non-blocking, so no rank
// ever blocks on a peer's posting order — the design is trivially
// deadlock-free, and the blocks of both trees genuinely overlap in
// flight. Reductions still fold in fixed (segment, tree, child) order,
// so results are schedule-independent.
//
// Downward receives land in the same views the upward pass reduced
// into: safe, because a block's downward message is causally after the
// root reduced it, which is after this rank's last write to the view.
func (e *Engine) dualRoot(r *mpi.Rank, op *mpi.Op, vec *mpi.Vector, segments int) {
	c := e.W.CommWorld()
	me := c.RankOf(r)
	p := c.Size()
	rec := e.W.Tracer()
	if p == 1 {
		// Still record the canonical phase pair so the tiling invariant
		// sees the same shape at every scale.
		sp := rec.BeginSpan(r.Rank(), trace.PhaseTreeReduce, r.Now())
		sp.End(r.Now())
		sp = rec.BeginSpan(r.Rank(), trace.PhaseTreeBcast, r.Now())
		sp.End(r.Now())
		return
	}
	base := c.CollTagBase(r)

	// Halves: tree 0 reduces [0, mid), tree 1 reduces [mid, n). A
	// too-short vector runs single-tree (half 1 empty).
	n := vec.Len()
	mid := (n + 1) / 2
	halves := [2]*mpi.Vector{vec.Slice(0, mid), vec.Slice(mid, n)}
	trees := 2
	if halves[1].Len() == 0 {
		trees = 1
	}

	segs := dualRootSegments(segments, halves[0].Bytes(), halves[0].Len())

	// Per-tree topology. Tree 0 is the array heap: parent(i) = (i-1)/2,
	// children 2i+1, 2i+2. Tree 1 relabels rank i as p-1-i, mirroring
	// the heap so the leaves of one tree are interior in the other.
	type treeTopo struct {
		parent   int // global comm rank of the parent (-1 at the root)
		children []int
	}
	topo := make([]treeTopo, trees)
	for t := 0; t < trees; t++ {
		rel := me
		if t == 1 {
			rel = p - 1 - me
		}
		unrel := func(i int) int {
			if t == 1 {
				return p - 1 - i
			}
			return i
		}
		tt := treeTopo{parent: -1}
		if rel > 0 {
			tt.parent = unrel((rel - 1) / 2)
		}
		for _, ch := range []int{2*rel + 1, 2*rel + 2} {
			if ch < p {
				tt.children = append(tt.children, unrel(ch))
			}
		}
		topo[t] = tt
	}

	// Per-(tree, segment) views. Tag layout: two tags per (segment,
	// tree) step — up and down — inside the collective's window; segs
	// is clamped far below the window size.
	segViews := make([][]*mpi.Vector, trees)
	for t := 0; t < trees; t++ {
		cnts, displs := mpi.BlockPartition(halves[t].Len(), segs)
		segViews[t] = make([]*mpi.Vector, segs)
		for s := 0; s < segs; s++ {
			segViews[t][s] = halves[t].Slice(displs[s], displs[s]+cnts[s])
		}
	}
	upTag := func(t, s int) int { return base + (s*2+t)*2 }
	downTag := func(t, s int) int { return base + (s*2+t)*2 + 1 }

	// Pre-post every receive: upward blocks from each child into
	// per-(tree, segment, child) buffers, downward blocks from the
	// parent straight into the final views.
	upRecv := make([][][]*mpi.Request, trees)
	upBuf := make([][][]*mpi.Vector, trees)
	downRecv := make([][]*mpi.Request, trees)
	for t := 0; t < trees; t++ {
		upRecv[t] = make([][]*mpi.Request, segs)
		upBuf[t] = make([][]*mpi.Vector, segs)
		downRecv[t] = make([]*mpi.Request, segs)
		for s := 0; s < segs; s++ {
			view := segViews[t][s]
			if view.Len() == 0 {
				continue
			}
			upRecv[t][s] = make([]*mpi.Request, len(topo[t].children))
			upBuf[t][s] = make([]*mpi.Vector, len(topo[t].children))
			for ci, ch := range topo[t].children {
				buf := view.Clone()
				upBuf[t][s][ci] = buf
				upRecv[t][s][ci] = r.Irecv(c, ch, upTag(t, s), buf)
			}
			if topo[t].parent >= 0 {
				downRecv[t][s] = r.Irecv(c, topo[t].parent, downTag(t, s), view)
			}
		}
	}

	// Upward sweep: fold each block toward its root in fixed
	// lexicographic (segment, tree) order; sends are non-blocking, so
	// later blocks' receives overlap earlier blocks' transfers. Roots
	// launch a block's downward broadcast the moment it completes.
	sp := rec.BeginSpan(r.Rank(), trace.PhaseTreeReduce, r.Now())
	var sends []*mpi.Request
	for s := 0; s < segs; s++ {
		for t := 0; t < trees; t++ {
			view := segViews[t][s]
			if view.Len() == 0 {
				continue
			}
			for ci := range topo[t].children {
				r.Wait(upRecv[t][s][ci])
				r.Reduce(op, view, upBuf[t][s][ci])
			}
			if topo[t].parent >= 0 {
				sends = append(sends, r.Isend(c, topo[t].parent, upTag(t, s), view))
			} else {
				for _, ch := range topo[t].children {
					sends = append(sends, r.Isend(c, ch, downTag(t, s), view))
				}
			}
		}
	}
	sp.End(r.Now())

	// Downward sweep: wait for each finished block from the parent and
	// forward it to the children.
	sp = rec.BeginSpan(r.Rank(), trace.PhaseTreeBcast, r.Now())
	for s := 0; s < segs; s++ {
		for t := 0; t < trees; t++ {
			if segViews[t][s].Len() == 0 || topo[t].parent < 0 {
				continue
			}
			r.Wait(downRecv[t][s])
			for _, ch := range topo[t].children {
				sends = append(sends, r.Isend(c, ch, downTag(t, s), segViews[t][s]))
			}
		}
	}
	r.WaitAll(sends...)
	sp.End(r.Now())
}

// dualRootSegments picks the pipelining depth for one half: explicit
// when requested, otherwise deep enough that each block sits near the
// eager/small-message regime (one block per 8KB), like pipelined.go's
// size-driven chunking. Always clamped to [1, halfLen] so no block
// degenerates to zero elements.
func dualRootSegments(requested, halfBytes, halfLen int) int {
	s := requested
	if s <= 0 {
		s = halfBytes / (8 << 10)
		if s > 64 {
			s = 64
		}
	}
	if s > halfLen {
		s = halfLen
	}
	if s < 1 {
		s = 1
	}
	return s
}
