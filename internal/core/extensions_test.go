package core

import (
	"math/rand"
	"testing"

	"dpml/internal/mpi"
	"dpml/internal/topology"
)

func TestDPMLReduceCorrect(t *testing.T) {
	for _, tc := range []struct {
		nodes, ppn, leaders, count, root int
	}{
		{3, 4, 2, 100, 0},
		{4, 4, 4, 257, 7},  // root mid-node
		{2, 8, 8, 64, 15},  // root last rank
		{5, 3, 3, 999, 11}, // non-power-of-two nodes
		{1, 6, 2, 50, 3},   // single node
		{4, 1, 1, 33, 2},   // single process per node
	} {
		e := buildEngine(t, topology.ClusterB(), tc.nodes, tc.ppn)
		p := e.W.Job.NumProcs()
		rng := rand.New(rand.NewSource(int64(tc.count)))
		in := make([][]float64, p)
		want := make([]float64, tc.count)
		for k := range in {
			in[k] = make([]float64, tc.count)
			for i := range in[k] {
				in[k][i] = float64(rng.Intn(100))
				want[i] += in[k][i]
			}
		}
		err := e.W.Run(func(r *mpi.Rank) error {
			v := mpi.NewVector(mpi.Float64, tc.count)
			copy(v.Float64s(), in[r.Rank()])
			if err := e.Reduce(r, DPML(tc.leaders), mpi.Sum, tc.root, v); err != nil {
				return err
			}
			if r.Rank() == tc.root {
				for i := 0; i < tc.count; i++ {
					if v.At(i) != want[i] {
						t.Errorf("%+v: root elem %d = %v, want %v", tc, i, v.At(i), want[i])
						return nil
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
	}
}

func TestDPMLBcastCorrect(t *testing.T) {
	for _, tc := range []struct {
		nodes, ppn, leaders, count, root int
	}{
		{3, 4, 2, 100, 0},
		{4, 4, 4, 257, 6},
		{2, 8, 4, 65, 9},
		{5, 3, 3, 999, 14},
		{1, 6, 3, 50, 5},
		{4, 1, 1, 33, 3},
	} {
		e := buildEngine(t, topology.ClusterB(), tc.nodes, tc.ppn)
		err := e.W.Run(func(r *mpi.Rank) error {
			v := mpi.NewVector(mpi.Float64, tc.count)
			if r.Rank() == tc.root {
				for i := 0; i < tc.count; i++ {
					v.Set(i, float64(1000+i))
				}
			}
			if err := e.Bcast(r, DPML(tc.leaders), tc.root, v); err != nil {
				return err
			}
			for i := 0; i < tc.count; i++ {
				if v.At(i) != float64(1000+i) {
					t.Errorf("%+v: rank %d elem %d = %v", tc, r.Rank(), i, v.At(i))
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
	}
}

func TestReduceBcastValidation(t *testing.T) {
	e := buildEngine(t, topology.ClusterB(), 2, 4)
	err := e.W.Run(func(r *mpi.Rank) error {
		v := mpi.NewVector(mpi.Float64, 4)
		if err := e.Reduce(r, Flat(mpi.AlgRing), mpi.Sum, 0, v); err == nil {
			t.Error("Reduce accepted a flat spec")
		}
		if err := e.Reduce(r, DPML(99), mpi.Sum, 0, v); err == nil {
			t.Error("Reduce accepted bad leaders")
		}
		if err := e.Reduce(r, DPML(1), mpi.Sum, 99, v); err == nil {
			t.Error("Reduce accepted bad root")
		}
		if err := e.Bcast(r, Flat(mpi.AlgRing), 0, v); err == nil {
			t.Error("Bcast accepted a flat spec")
		}
		if err := e.Bcast(r, DPML(1), -1, v); err == nil {
			t.Error("Bcast accepted bad root")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultiLeaderReduceBeatsSingleLeader(t *testing.T) {
	// The DPML structure must speed up plain Reduce too: leaders share
	// the intra-node reduction and run concurrent inter-node trees.
	timeOf := func(l int) int64 {
		e := buildEngine(t, topology.ClusterB(), 4, 16)
		var out int64
		err := e.W.Run(func(r *mpi.Rank) error {
			v := mpi.NewPhantom(mpi.Float32, 1<<17) // 512 KB
			r.Barrier(e.W.CommWorld())
			start := r.Now()
			if err := e.Reduce(r, DPML(l), mpi.Sum, 0, v); err != nil {
				return err
			}
			r.Barrier(e.W.CommWorld())
			if r.Rank() == 0 {
				out = int64(r.Now().Sub(start))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	one, sixteen := timeOf(1), timeOf(16)
	if sixteen >= one {
		t.Fatalf("16-leader reduce (%d) not faster than 1-leader (%d) at 512KB", sixteen, one)
	}
}

func TestMultiLeaderBcastBeatsSingleLeader(t *testing.T) {
	// The Phase-4 claim applied standalone: concurrent per-leader
	// broadcasts beat the single-leader version for large payloads.
	timeOf := func(l int) int64 {
		e := buildEngine(t, topology.ClusterB(), 4, 16)
		var out int64
		err := e.W.Run(func(r *mpi.Rank) error {
			v := mpi.NewPhantom(mpi.Float32, 1<<18) // 1 MB
			r.Barrier(e.W.CommWorld())
			start := r.Now()
			if err := e.Bcast(r, DPML(l), 0, v); err != nil {
				return err
			}
			r.Barrier(e.W.CommWorld())
			if r.Rank() == 0 {
				out = int64(r.Now().Sub(start))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	one, sixteen := timeOf(1), timeOf(16)
	if sixteen >= one {
		t.Fatalf("16-leader bcast (%d) not faster than 1-leader (%d) at 1MB", sixteen, one)
	}
}

func TestAllreduceProfiled(t *testing.T) {
	e := buildEngine(t, topology.ClusterB(), 4, 8)
	err := e.W.Run(func(r *mpi.Rank) error {
		v := mpi.NewPhantom(mpi.Float32, 1<<16)
		pt, err := e.AllreduceProfiled(r, DPML(4), mpi.Sum, v)
		if err != nil {
			return err
		}
		if pt.Copy <= 0 || pt.Bcast <= 0 {
			t.Errorf("rank %d: copy/bcast phases empty: %+v", r.Rank(), pt)
		}
		if r.Place().LocalRank < 4 {
			if pt.Reduce <= 0 || pt.Inter <= 0 {
				t.Errorf("leader %d: reduce/inter phases empty: %+v", r.Rank(), pt)
			}
		} else if pt.Reduce != 0 || pt.Inter != 0 {
			t.Errorf("non-leader %d: unexpected leader phases: %+v", r.Rank(), pt)
		}
		if pt.Total() <= 0 {
			t.Error("total must be positive")
		}
		// Profiling must not break the result.
		real := mpi.NewVector(mpi.Float64, 8)
		real.Fill(1)
		if _, err := e.AllreduceProfiled(r, DPML(2), mpi.Sum, real); err != nil {
			return err
		}
		if real.At(0) != float64(e.W.Job.NumProcs()) {
			t.Errorf("profiled allreduce wrong: %v", real.At(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Bad specs rejected.
	e2 := buildEngine(t, topology.ClusterB(), 2, 2)
	err = e2.W.Run(func(r *mpi.Rank) error {
		if _, err := e2.AllreduceProfiled(r, Flat(mpi.AlgRing), mpi.Sum, mpi.NewPhantom(mpi.Float32, 4)); err == nil {
			t.Error("profiling accepted a flat spec")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
