package core

import (
	"testing"

	"dpml/internal/mpi"
)

// FuzzParseDesign drives arbitrary design names through ParseDesign. The
// parser must never panic; on acceptance the spec's parameters must lie
// inside the ranges the parser promises (the shape-independent half of
// Engine.Validate's contract), and parameterized specs must carry the
// design their name requested.
func FuzzParseDesign(f *testing.F) {
	f.Add("")
	f.Add("flat")
	f.Add("flat:ring")
	f.Add("flat:nope")
	f.Add("host-based")
	f.Add("dpml-8")
	f.Add("dpml-0")
	f.Add("dpml--3")
	f.Add("dpml-pipe-4x8")
	f.Add("dpml-pipe-4x")
	f.Add("dpml-pipe-x8")
	f.Add("sharp-node")
	f.Add("sharp-socket")
	f.Add("dualroot")
	f.Add("dualroot-s3")
	f.Add("dualroot-s0")
	f.Add("dualroot-s99999")
	f.Add("dualroot-s-1")
	f.Add("dualroot-sX")
	f.Add("genall")
	f.Add("genall-g4")
	f.Add("genall-g0")
	f.Add("genall-g1048577")
	f.Add("pap-sorted")
	f.Add("pap-ring")
	f.Add("pap-")
	f.Add("dualroot-s3x4")
	f.Fuzz(func(t *testing.T, name string) {
		spec, err := ParseDesign(name)
		if err != nil {
			return
		}
		switch spec.Design {
		case DesignFlat:
			known := false
			for _, a := range mpi.FlatAlgorithms() {
				if spec.FlatAlg == a {
					known = true
				}
			}
			if !known {
				t.Fatalf("accepted %q with unknown flat algorithm %q", name, spec.FlatAlg)
			}
		case DesignDPML:
			if spec.Leaders < 1 || spec.Leaders > 1<<20 {
				t.Fatalf("accepted %q with leaders %d out of range", name, spec.Leaders)
			}
		case DesignDPMLPipelined:
			if spec.Leaders < 1 || spec.Leaders > 1<<20 {
				t.Fatalf("accepted %q with leaders %d out of range", name, spec.Leaders)
			}
			if spec.Chunks < 1 || spec.Chunks > 1024 {
				t.Fatalf("accepted %q with chunks %d out of range", name, spec.Chunks)
			}
		case DesignSharpNode, DesignSharpSocket, DesignPAPSorted, DesignPAPRing:
			// No parameters.
		case DesignDualRoot:
			if spec.Segments < 0 || spec.Segments > 1024 {
				t.Fatalf("accepted %q with segments %d out of range", name, spec.Segments)
			}
			if name != "dualroot" && spec.Segments == 0 {
				t.Fatalf("accepted parameterized %q but spec has auto segments", name)
			}
		case DesignGenAll:
			if spec.Groups < 0 || spec.Groups > 1<<20 {
				t.Fatalf("accepted %q with group size %d out of range", name, spec.Groups)
			}
			if name != "genall" && spec.Groups == 0 {
				t.Fatalf("accepted parameterized %q but spec has auto group size", name)
			}
		default:
			t.Fatalf("accepted %q with unknown design %q", name, spec.Design)
		}
	})
}
