package core

import (
	"fmt"

	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/trace"
)

// This file implements the paper's stated future work ("we would like to
// explore the possibilities of exploiting DPML approach for other
// blocking and non-blocking collectives as well"): data-partitioned
// multi-leader Reduce and Bcast, plus a phase-profiled Allreduce used by
// the model-validation experiments.

// Reduce performs an MPI_Reduce with the DPML structure: partitions are
// gathered and combined by the node's leaders (Phases 1-2), each leader
// runs an inter-node reduction rooted at root's node (Phase 3), and on
// the root node the fully reduced partitions are copied into root's
// buffer (Phase 4). Only DPML-family specs are supported; on return only
// root's vec holds the result.
func (e *Engine) Reduce(r *mpi.Rank, s Spec, op *mpi.Op, root int, vec *mpi.Vector) error {
	if s.Design != DesignDPML && s.Design != DesignDPMLPipelined {
		return fmt.Errorf("core: Reduce supports DPML designs, not %q", s.Design)
	}
	if err := e.Validate(s); err != nil {
		return err
	}
	if root < 0 || root >= e.W.Job.NumProcs() {
		return fmt.Errorf("core: Reduce root %d out of range", root)
	}
	job := e.W.Job
	pl := r.Place()
	ppn := job.PPN
	leaders := s.Leaders
	rootNode := job.Place(root).Node
	rec := e.W.Tracer()
	coll := rec.BeginCollective(r.Rank(), "reduce:"+s.String(), vec.Bytes(), r.Now())
	defer func() { coll.End(r.Now()) }()

	if ppn == 1 {
		sp := rec.BeginSpan(r.Rank(), trace.PhaseInter, r.Now())
		r.ReduceColl(e.leaderComms[0], rootNode, op, vec)
		sp.End(r.Now())
		return nil
	}

	seq := e.nextSeq(r)
	rg := e.regions[pl.Node]
	cnts, displs := mpi.BlockPartition(vec.Len(), leaders)

	// Phases 1-2: identical to allreduce.
	sp := rec.BeginSpan(r.Rank(), trace.PhaseCopy, r.Now())
	for j := 0; j < leaders; j++ {
		part := vec.Slice(displs[j], displs[j]+cnts[j])
		cross := pl.Socket != e.leaderSocket[j]
		r.MemCopy(cross, part.Bytes())
		rg.Put(seq, leaders, j, pl.LocalRank, part.Clone())
	}
	sp.End(r.Now())
	if pl.LocalRank < leaders {
		j := pl.LocalRank
		sp = rec.BeginSpan(r.Rank(), trace.PhaseReduce, r.Now())
		slots := rg.GatherWait(r.Proc(), seq, leaders, j, ppn)
		e.gatherSync(r, j, false)
		acc := slots[0].Clone()
		for i := 1; i < ppn; i++ {
			r.Reduce(op, acc, slots[i])
		}
		sp.End(r.Now())
		// Phase 3: inter-node reduce rooted at root's node.
		sp = rec.BeginSpan(r.Rank(), trace.PhaseInter, r.Now())
		r.ReduceColl(e.leaderComms[j], rootNode, op, acc)
		if pl.Node == rootNode {
			rg.Publish(seq, leaders, j, acc)
		}
		sp.End(r.Now())
	}
	// Phase 4: only root copies the result out; everyone releases the
	// operation.
	sp = rec.BeginSpan(r.Rank(), trace.PhaseBcast, r.Now())
	if r.Rank() == root {
		for j := 0; j < leaders; j++ {
			res := rg.ResultWait(r.Proc(), seq, leaders, j)
			cross := pl.Socket != e.leaderSocket[j]
			r.MemCopy(cross, res.Bytes())
			vec.Slice(displs[j], displs[j]+cnts[j]).CopyFrom(res)
		}
	}
	rg.DoneCopy(seq)
	sp.End(r.Now())
	return nil
}

// Bcast broadcasts root's vec with the DPML structure run in reverse:
// root scatters its partitions to the local leaders through shared
// memory, each leader broadcasts its partition to the same-index leaders
// of other nodes concurrently, and every rank copies the partitions out
// — the "direct shared memory copy ... reduces the number of steps from
// ceil(lg ppn) to number of leaders" observation of Phase 4, applied as a
// standalone collective.
func (e *Engine) Bcast(r *mpi.Rank, s Spec, root int, vec *mpi.Vector) error {
	if s.Design != DesignDPML && s.Design != DesignDPMLPipelined {
		return fmt.Errorf("core: Bcast supports DPML designs, not %q", s.Design)
	}
	if err := e.Validate(s); err != nil {
		return err
	}
	if root < 0 || root >= e.W.Job.NumProcs() {
		return fmt.Errorf("core: Bcast root %d out of range", root)
	}
	job := e.W.Job
	pl := r.Place()
	ppn := job.PPN
	leaders := s.Leaders
	rootPl := job.Place(root)
	rec := e.W.Tracer()
	coll := rec.BeginCollective(r.Rank(), "bcast:"+s.String(), vec.Bytes(), r.Now())
	defer func() { coll.End(r.Now()) }()

	if ppn == 1 {
		sp := rec.BeginSpan(r.Rank(), trace.PhaseInter, r.Now())
		r.Bcast(e.leaderComms[0], rootPl.Node, vec)
		sp.End(r.Now())
		return nil
	}

	seq := e.nextSeq(r)
	rg := e.regions[pl.Node]
	cnts, displs := mpi.BlockPartition(vec.Len(), leaders)

	// Root scatters its partitions into shared memory.
	if r.Rank() == root {
		sp := rec.BeginSpan(r.Rank(), trace.PhaseCopy, r.Now())
		for j := 0; j < leaders; j++ {
			part := vec.Slice(displs[j], displs[j]+cnts[j])
			cross := pl.Socket != e.leaderSocket[j]
			r.MemCopy(cross, part.Bytes())
			rg.Put(seq, leaders, j, pl.LocalRank, part.Clone())
		}
		sp.End(r.Now())
	}
	if pl.LocalRank < leaders {
		j := pl.LocalRank
		sp := rec.BeginSpan(r.Rank(), trace.PhaseInter, r.Now())
		var part *mpi.Vector
		if pl.Node == rootPl.Node {
			slots := rg.GatherWait(r.Proc(), seq, leaders, j, 1)
			part = slots[rootPl.LocalRank].Clone()
		} else {
			part = vec.Slice(displs[j], displs[j]+cnts[j]).Clone()
		}
		// Concurrent inter-node broadcasts, one per leader.
		r.Bcast(e.leaderComms[j], rootPl.Node, part)
		rg.Publish(seq, leaders, j, part)
		sp.End(r.Now())
	}
	sp := rec.BeginSpan(r.Rank(), trace.PhaseBcast, r.Now())
	for j := 0; j < leaders; j++ {
		res := rg.ResultWait(r.Proc(), seq, leaders, j)
		cross := pl.Socket != e.leaderSocket[j]
		r.MemCopy(cross, res.Bytes())
		vec.Slice(displs[j], displs[j]+cnts[j]).CopyFrom(res)
	}
	rg.DoneCopy(seq)
	sp.End(r.Now())
	return nil
}

// PhaseTimes is the calling rank's time spent in each DPML phase of one
// profiled allreduce. Non-leader ranks report zero Reduce/Inter time and
// their Bcast time includes waiting for the leaders.
type PhaseTimes struct {
	Copy   sim.Duration // Phase 1: local copy to shared memory
	Reduce sim.Duration // Phase 2: intra-node reduction (leaders)
	Inter  sim.Duration // Phase 3: inter-node allreduce (leaders)
	Bcast  sim.Duration // Phase 4: local copy to individual processes
}

// Total returns the sum of the phases.
func (t PhaseTimes) Total() sim.Duration { return t.Copy + t.Reduce + t.Inter + t.Bcast }

// AllreduceProfiled runs one DPML allreduce and reports this rank's
// per-phase times, for comparison against the Section 5 model's Eq. 2-6
// terms.
func (e *Engine) AllreduceProfiled(r *mpi.Rank, s Spec, op *mpi.Op, vec *mpi.Vector) (PhaseTimes, error) {
	if s.Design != DesignDPML && s.Design != DesignDPMLPipelined {
		return PhaseTimes{}, fmt.Errorf("core: profiling supports DPML designs, not %q", s.Design)
	}
	if err := e.Validate(s); err != nil {
		return PhaseTimes{}, err
	}
	chunks := 1
	if s.Design == DesignDPMLPipelined {
		chunks = s.Chunks
	}
	var pt PhaseTimes
	e.dpmlInstrumented(r, op, vec, s.Leaders, chunks, s.InterAlg, &pt)
	return pt, nil
}
