package core

import (
	"dpml/internal/mpi"
	"dpml/internal/trace"
)

// dpml runs the four-phase Data Partitioning-based Multi-Leader allreduce
// of Section 4.1 (chunks > 1 switches Phase 3 to the pipelined variant of
// Section 4.2):
//
//  1. Local copy to shared memory: every local rank splits its input into
//     l partitions and copies partition j into leader j's segment.
//  2. Intra-node reduction by leaders: leader j reduces the ppn gathered
//     copies of partition j (ppn-1 reductions of n/l bytes).
//  3. Inter-node allreduce by leaders: leader j allreduces its partially
//     reduced partition with the same-index leaders of the other nodes —
//     l concurrent inter-node collectives on n/l bytes each.
//  4. Local copy to individual processes: every local rank copies the l
//     fully reduced partitions back out of shared memory.
func (e *Engine) dpml(r *mpi.Rank, op *mpi.Op, vec *mpi.Vector, leaders, chunks int, interAlg mpi.Algorithm) {
	e.dpmlInstrumented(r, op, vec, leaders, chunks, interAlg, nil)
}

// dpmlInstrumented is dpml with optional per-phase timing (pt may be
// nil). Phase boundaries are measured on the calling rank; leaders'
// Phase 2 includes the wait for the slowest local contributor, and Phase
// 4 includes the wait for the leaders' results — the same accounting a
// profiled MPI implementation would report.
func (e *Engine) dpmlInstrumented(r *mpi.Rank, op *mpi.Op, vec *mpi.Vector, leaders, chunks int, interAlg mpi.Algorithm, pt *PhaseTimes) {
	job := e.W.Job
	pl := r.Place()
	ppn := job.PPN
	rec := e.W.Tracer()

	if ppn == 1 {
		// Single process per node: the shared-memory phases are
		// identity operations; go straight to the inter-node phase.
		start := r.Now()
		sp := rec.BeginSpan(r.Rank(), trace.PhaseInter, start)
		e.interNode(r, e.leaderComms[0], op, vec, chunks, interAlg)
		sp.End(r.Now())
		if pt != nil {
			pt.Inter += r.Now().Sub(start)
		}
		return
	}

	seq := e.nextSeq(r)
	rg := e.regions[pl.Node]
	cnts, displs := mpi.BlockPartition(vec.Len(), leaders)

	// Phase 1: concurrent gather of partitions into leader segments.
	start := r.Now()
	sp := rec.BeginSpan(r.Rank(), trace.PhaseCopy, start)
	for j := 0; j < leaders; j++ {
		part := vec.Slice(displs[j], displs[j]+cnts[j])
		cross := pl.Socket != e.leaderSocket[j]
		r.MemCopy(cross, part.Bytes())
		rg.Put(seq, leaders, j, pl.LocalRank, part.Clone())
	}
	sp.End(r.Now())
	if pt != nil {
		pt.Copy += r.Now().Sub(start)
	}

	if pl.LocalRank < leaders {
		j := pl.LocalRank
		// Phase 2: reduce the gathered partitions.
		start = r.Now()
		sp = rec.BeginSpan(r.Rank(), trace.PhaseReduce, start)
		slots := rg.GatherWait(r.Proc(), seq, leaders, j, ppn)
		e.gatherSync(r, j, false)
		acc := slots[0].Clone()
		for i := 1; i < ppn; i++ {
			r.Reduce(op, acc, slots[i])
		}
		sp.End(r.Now())
		if pt != nil {
			pt.Reduce += r.Now().Sub(start)
		}
		// Phase 3: inter-node allreduce with same-index leaders.
		start = r.Now()
		sp = rec.BeginSpan(r.Rank(), trace.PhaseInter, start)
		e.interNode(r, e.leaderComms[j], op, acc, chunks, interAlg)
		if pt != nil {
			pt.Inter += r.Now().Sub(start)
		}
		rg.Publish(seq, leaders, j, acc)
		sp.End(r.Now())
	}

	// Phase 4: concurrent broadcast of the reduced partitions.
	start = r.Now()
	sp = rec.BeginSpan(r.Rank(), trace.PhaseBcast, start)
	for j := 0; j < leaders; j++ {
		res := rg.ResultWait(r.Proc(), seq, leaders, j)
		cross := pl.Socket != e.leaderSocket[j]
		r.MemCopy(cross, res.Bytes())
		vec.Slice(displs[j], displs[j]+cnts[j]).CopyFrom(res)
	}
	rg.DoneCopy(seq)
	sp.End(r.Now())
	if pt != nil {
		pt.Bcast += r.Now().Sub(start)
	}
}

// interNode runs Phase 3 on the leader communicator: a library-chosen
// flat algorithm, or the pipelined non-blocking variant when chunks > 1.
func (e *Engine) interNode(r *mpi.Rank, c *mpi.Comm, op *mpi.Op, vec *mpi.Vector, chunks int, interAlg mpi.Algorithm) {
	if c.Size() == 1 {
		return
	}
	if chunks > 1 {
		e.pipelinedAllreduce(r, c, op, vec, chunks)
		return
	}
	alg := interAlg
	if alg == "" {
		alg = autoAlg(vec.Bytes())
	}
	r.Allreduce(c, alg, op, vec)
}
