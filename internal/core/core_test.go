package core

import (
	"math/rand"
	"testing"

	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/topology"
)

// buildEngine creates a world + engine on a trimmed cluster.
func buildEngine(t *testing.T, cl *topology.Cluster, nodes, ppn int) *Engine {
	t.Helper()
	job, err := topology.NewJob(cl, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(mpi.NewWorld(job, mpi.Config{}))
}

// verifySpec runs one allreduce with random inputs and checks every rank
// against the sequential reduction.
func verifySpec(t *testing.T, cl *topology.Cluster, nodes, ppn int, s Spec, count int, seed int64) {
	t.Helper()
	e := buildEngine(t, cl, nodes, ppn)
	p := e.W.Job.NumProcs()
	rng := rand.New(rand.NewSource(seed))
	in := make([][]float64, p)
	want := make([]float64, count)
	for k := range in {
		in[k] = make([]float64, count)
		for i := range in[k] {
			in[k][i] = float64(rng.Intn(512) - 256)
			want[i] += in[k][i]
		}
	}
	err := e.W.Run(func(r *mpi.Rank) error {
		v := mpi.NewVector(mpi.Float64, count)
		copy(v.Float64s(), in[r.Rank()])
		if err := e.Allreduce(r, s, mpi.Sum, v); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			if v.At(i) != want[i] {
				t.Errorf("%v on %s %dx%d n=%d: rank %d elem %d: got %v want %v",
					s, cl.Name, nodes, ppn, count, r.Rank(), i, v.At(i), want[i])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%v on %s %dx%d: %v", s, cl.Name, nodes, ppn, err)
	}
}

func TestDPMLCorrectAcrossLeaderCounts(t *testing.T) {
	for _, l := range []int{1, 2, 3, 4, 7} {
		for _, count := range []int{1, 5, 64, 999} {
			verifySpec(t, topology.ClusterB(), 4, 7, DPML(l), count, int64(l*100+count))
		}
	}
}

func TestDPMLCorrectOnAllClusters(t *testing.T) {
	for _, cl := range topology.All() {
		ppn := 4
		verifySpec(t, cl, 3, ppn, DPML(2), 257, 42)
	}
}

func TestDPMLNonPowerOfTwoNodes(t *testing.T) {
	// 5 nodes exercises the fold path in the inter-leader allreduce.
	verifySpec(t, topology.ClusterB(), 5, 4, DPML(4), 123, 7)
	verifySpec(t, topology.ClusterB(), 7, 3, DPML(2), 55, 8)
}

func TestDPMLSingleNode(t *testing.T) {
	// h=1: inter-node phase degenerates; shm phases must still reduce.
	verifySpec(t, topology.ClusterB(), 1, 8, DPML(4), 100, 9)
}

func TestDPMLSingleProcessPerNode(t *testing.T) {
	verifySpec(t, topology.ClusterB(), 4, 1, DPML(1), 64, 10)
}

func TestDPMLLeadersExceedingElements(t *testing.T) {
	// n < l: some leaders own empty partitions.
	verifySpec(t, topology.ClusterB(), 2, 8, DPML(8), 3, 11)
}

func TestDPMLExplicitInterAlg(t *testing.T) {
	for _, alg := range mpi.FlatAlgorithms() {
		s := Spec{Design: DesignDPML, Leaders: 2, InterAlg: alg}
		verifySpec(t, topology.ClusterB(), 4, 4, s, 77, 12)
	}
}

func TestPipelinedCorrect(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8} {
		verifySpec(t, topology.ClusterC(), 4, 4, DPMLPipelined(2, k), 513, int64(13+k))
	}
	// Non-power-of-two node count with pipelining.
	verifySpec(t, topology.ClusterC(), 5, 4, DPMLPipelined(4, 4), 999, 14)
	// Chunks exceeding elements.
	verifySpec(t, topology.ClusterC(), 2, 2, DPMLPipelined(1, 16), 5, 15)
}

func TestFlatDesign(t *testing.T) {
	for _, alg := range mpi.FlatAlgorithms() {
		verifySpec(t, topology.ClusterB(), 3, 2, Flat(alg), 100, 16)
	}
}

func TestSharpDesignsCorrect(t *testing.T) {
	for _, s := range []Spec{{Design: DesignSharpNode}, {Design: DesignSharpSocket}} {
		for _, shape := range []struct{ nodes, ppn int }{{2, 1}, {4, 4}, {3, 7}, {4, 28}} {
			verifySpec(t, topology.ClusterA(), shape.nodes, shape.ppn, s, 128, 17)
		}
	}
}

func TestSharpFallsBackBeyondPayloadLimit(t *testing.T) {
	// 1M floats far exceeds MaxPayload; must still produce the right
	// answer via the host-based fallback.
	verifySpec(t, topology.ClusterA(), 2, 4, Spec{Design: DesignSharpNode}, 64<<10, 18)
}

func TestSharpUnavailableRejected(t *testing.T) {
	e := buildEngine(t, topology.ClusterC(), 2, 2)
	if err := e.Validate(Spec{Design: DesignSharpNode}); err == nil {
		t.Fatal("SHArP design accepted on Omni-Path cluster")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	e := buildEngine(t, topology.ClusterA(), 2, 4)
	bad := []Spec{
		{Design: "nope"},
		{Design: DesignDPML, Leaders: 0},
		{Design: DesignDPML, Leaders: 5}, // > ppn
		{Design: DesignDPMLPipelined, Leaders: 2, Chunks: 0},
		{Design: DesignDPMLPipelined, Leaders: 2, Chunks: 5000},
		{Design: DesignFlat, FlatAlg: "bogus"},
	}
	for _, s := range bad {
		if err := e.Validate(s); err == nil {
			t.Errorf("Validate accepted %+v", s)
		}
	}
	good := []Spec{
		HostBased(),
		DPML(4),
		DPMLPipelined(2, 8),
		Flat(mpi.AlgRing),
		{Design: DesignSharpNode},
		{Design: DesignSharpSocket},
	}
	for _, s := range good {
		if err := e.Validate(s); err != nil {
			t.Errorf("Validate rejected %+v: %v", s, err)
		}
	}
}

func TestEngineSocketLayout(t *testing.T) {
	e := buildEngine(t, topology.ClusterA(), 2, 28)
	leaders := e.SocketLeaders()
	if len(leaders) != 2 || leaders[0] != 0 || leaders[1] != 14 {
		t.Fatalf("socket leaders = %v, want [0 14]", leaders)
	}
	eKNL := buildEngine(t, topology.ClusterD(), 2, 16)
	if l := eKNL.SocketLeaders(); len(l) != 1 || l[0] != 0 {
		t.Fatalf("KNL socket leaders = %v, want [0]", l)
	}
}

// latencyOf measures the average per-iteration virtual time of iters
// allreduces under a spec.
func latencyOf(t *testing.T, cl *topology.Cluster, nodes, ppn int, s Spec, bytes, iters int) sim.Duration {
	t.Helper()
	job, err := topology.NewJob(cl, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(mpi.NewWorld(job, mpi.Config{}))
	count := bytes / 4
	var elapsed sim.Duration
	err = e.W.Run(func(r *mpi.Rank) error {
		v := mpi.NewPhantom(mpi.Float32, count)
		// Warmup.
		if err := e.Allreduce(r, s, mpi.Sum, v); err != nil {
			return err
		}
		r.Barrier(e.W.CommWorld())
		start := r.Now()
		for i := 0; i < iters; i++ {
			if err := e.Allreduce(r, s, mpi.Sum, v); err != nil {
				return err
			}
		}
		r.Barrier(e.W.CommWorld())
		if r.Rank() == 0 {
			elapsed = r.Now().Sub(start) / sim.Duration(iters)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return elapsed
}

func TestMoreLeadersWinAtLargeMessages(t *testing.T) {
	// The central claim (Figs 4-7): at 512KB, 16 leaders should be
	// several times faster than 1 leader.
	for _, cl := range []*topology.Cluster{topology.ClusterB(), topology.ClusterC()} {
		t1 := latencyOf(t, cl, 8, 16, DPML(1), 512<<10, 3)
		t16 := latencyOf(t, cl, 8, 16, DPML(16), 512<<10, 3)
		speedup := float64(t1) / float64(t16)
		if speedup < 2 {
			t.Errorf("%s: 16-leader speedup at 512KB = %.2fx, want > 2x", cl.Name, speedup)
		}
	}
}

func TestOneLeaderFineAtSmallMessages(t *testing.T) {
	// At 64B, extra leaders must not help much (paper: "sometimes causes
	// slight degradation").
	cl := topology.ClusterB()
	t1 := latencyOf(t, cl, 4, 16, DPML(1), 64, 3)
	t16 := latencyOf(t, cl, 4, 16, DPML(16), 64, 3)
	if float64(t1)/float64(t16) > 1.5 {
		t.Errorf("16 leaders 'win' %.2fx at 64B; should be near or below 1x",
			float64(t1)/float64(t16))
	}
}

func TestSharpBeatsHostAtSmallLosesAtLarge(t *testing.T) {
	cl := topology.ClusterA()
	// ppn=1, 16 nodes, tiny message: SHArP should win clearly (Fig 8).
	host := latencyOf(t, cl, 16, 1, HostBased(), 8, 5)
	sharp := latencyOf(t, cl, 16, 1, Spec{Design: DesignSharpNode}, 8, 5)
	if sharp >= host {
		t.Errorf("SHArP (%v) not faster than host-based (%v) at 8B ppn=1", sharp, host)
	}
	// 4KB: host-based should win (Fig 8 crossover).
	host4k := latencyOf(t, cl, 16, 1, HostBased(), 4<<10, 5)
	sharp4k := latencyOf(t, cl, 16, 1, Spec{Design: DesignSharpNode}, 4<<10, 5)
	if sharp4k <= host4k {
		t.Errorf("SHArP (%v) still faster than host-based (%v) at 4KB", sharp4k, host4k)
	}
}

func TestSocketLeaderBeatsNodeLeaderAtFullSubscription(t *testing.T) {
	cl := topology.ClusterA()
	node := latencyOf(t, cl, 8, 28, Spec{Design: DesignSharpNode}, 256, 3)
	socket := latencyOf(t, cl, 8, 28, Spec{Design: DesignSharpSocket}, 256, 3)
	if socket >= node {
		t.Errorf("socket-leader (%v) not faster than node-leader (%v) at ppn=28", socket, node)
	}
}

func TestLibrarySelectorsRun(t *testing.T) {
	for _, lib := range Libraries() {
		e := buildEngine(t, topology.ClusterA(), 4, 8)
		err := e.W.Run(func(r *mpi.Rank) error {
			for _, count := range []int{4, 1 << 10, 64 << 10} {
				v := mpi.NewVector(mpi.Float32, count)
				v.Fill(1)
				if err := e.LibraryAllreduce(r, lib, mpi.Sum, v); err != nil {
					return err
				}
				if v.At(0) != float64(e.W.Job.NumProcs()) {
					t.Errorf("%s at %d floats: got %v, want %d",
						lib, count, v.At(0), e.W.Job.NumProcs())
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", lib, err)
		}
	}
}

func TestBestLeadersMonotoneAndBounded(t *testing.T) {
	for _, name := range []string{"A-Xeon-IB-SHArP", "C-Xeon-OmniPath"} {
		prev := 0
		for _, bytes := range []int{4, 512, 2 << 10, 8 << 10, 32 << 10, 256 << 10, 1 << 20} {
			l := BestLeaders(name, 28, bytes)
			if l < 1 || l > 28 {
				t.Fatalf("%s %dB: leaders %d out of range", name, bytes, l)
			}
			if l < prev {
				t.Fatalf("%s: leader count decreased from %d to %d at %dB", name, prev, l, bytes)
			}
			prev = l
		}
	}
	if l := BestLeaders("D-KNL-OmniPath", 4, 1<<20); l > 4 {
		t.Fatal("BestLeaders must respect ppn cap")
	}
}

func TestSpecString(t *testing.T) {
	cases := map[string]Spec{
		"dpml(l=4)":          DPML(4),
		"dpml-pipe(l=2,k=8)": DPMLPipelined(2, 8),
		"flat(ring)":         Flat(mpi.AlgRing),
		"sharp-node-leader":  {Design: DesignSharpNode},
	}
	for want, s := range cases {
		if s.String() != want {
			t.Errorf("String() = %q, want %q", s.String(), want)
		}
	}
}

func TestProposedSpecShape(t *testing.T) {
	eA := buildEngine(t, topology.ClusterA(), 8, 28)
	if s := eA.ProposedSpec(256); s.Design != DesignSharpSocket {
		t.Errorf("cluster A 256B: %v, want SHArP socket-leader", s)
	}
	if s := eA.ProposedSpec(512 << 10); s.Design != DesignDPML && s.Design != DesignDPMLPipelined {
		t.Errorf("cluster A 512KB: %v, want DPML", s)
	}
	eC := buildEngine(t, topology.ClusterC(), 8, 28)
	if s := eC.ProposedSpec(256); s.Design == DesignSharpSocket || s.Design == DesignSharpNode {
		t.Errorf("cluster C cannot use SHArP, got %v", s)
	}
	if s := eC.ProposedSpec(8 << 20); s.Design != DesignDPMLPipelined {
		t.Errorf("cluster C 8MB: %v, want pipelined", s)
	}
}

func TestDeterministicEndToEnd(t *testing.T) {
	run := func() sim.Duration {
		return latencyOf(t, topology.ClusterC(), 4, 8, DPMLPipelined(4, 4), 1<<20, 2)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestLibraryAllreduceUnknownName(t *testing.T) {
	e := buildEngine(t, topology.ClusterB(), 2, 2)
	err := e.W.Run(func(r *mpi.Rank) error {
		if err := e.LibraryAllreduce(r, Library("nope"), mpi.Sum, mpi.NewPhantom(mpi.Float32, 4)); err == nil {
			t.Error("unknown library accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
