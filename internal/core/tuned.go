package core

import (
	"fmt"

	"dpml/internal/mpi"
)

// Library identifies a tuned baseline selector emulating a production MPI
// library's allreduce decision table (Section 6.4 compares against these).
type Library string

// Baseline libraries.
const (
	// LibMVAPICH2 emulates MVAPICH2-2.2: a shared-memory single-leader
	// hierarchy for small and medium messages (Section 2.1's default
	// design), switching to a flat bandwidth-optimal algorithm for large
	// ones.
	LibMVAPICH2 Library = "mvapich2"
	// LibIntelMPI emulates Intel MPI 2017: flat recursive doubling at
	// the smallest sizes, then a single-leader hierarchy, then flat
	// Rabenseifner/ring with a lower switch point, which makes it
	// stronger than MVAPICH2 at large message sizes (as the paper's
	// Figures 9-10 show).
	LibIntelMPI Library = "intelmpi"
	// LibProposed is the paper's design: the per-size best DPML /
	// DPML-Pipelined / SHArP configuration (the hybrid of Section 4).
	LibProposed Library = "proposed"
	// LibPAPAware extends the proposed selector with the related-work
	// families: under a predicted-imbalanced arrival pattern it picks
	// the arrival-aware designs (sorted linear tree for latency-bound
	// sizes, early-ring beyond), and on a balanced fabric it falls back
	// to the proposed hybrid. Kept out of Libraries() so the committed
	// baseline figures stay byte-identical; the grand-prix figure and
	// ExtendedLibraries callers opt in.
	LibPAPAware Library = "pap-aware"
)

// Libraries returns the comparable baselines in presentation order.
func Libraries() []Library { return []Library{LibMVAPICH2, LibIntelMPI, LibProposed} }

// ExtendedLibraries returns the baselines plus the extension selectors
// that know about the related-work design families.
func ExtendedLibraries() []Library { return append(Libraries(), LibPAPAware) }

// SpecFor returns the allreduce configuration the library would choose
// for a message of the given size on this engine's job.
func (e *Engine) SpecFor(lib Library, bytes int) Spec {
	switch lib {
	case LibMVAPICH2:
		return e.mvapich2Spec(bytes)
	case LibIntelMPI:
		return e.intelMPISpec(bytes)
	case LibProposed:
		return e.ProposedSpec(bytes)
	case LibPAPAware:
		return e.papAwareSpec(bytes)
	}
	panic(fmt.Sprintf("core: unknown library %q", lib))
}

// LibraryAllreduce performs one allreduce the way the given library
// would. Unknown library names are reported as errors (SpecFor panics,
// since it is only reachable with validated names).
func (e *Engine) LibraryAllreduce(r *mpi.Rank, lib Library, op *mpi.Op, vec *mpi.Vector) error {
	known := false
	for _, l := range ExtendedLibraries() {
		if l == lib {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("core: unknown library %q (known: %v)", lib, Libraries())
	}
	return e.Allreduce(r, e.SpecFor(lib, vec.Bytes()), op, vec)
}

func (e *Engine) mvapich2Spec(bytes int) Spec {
	// MVAPICH2-2.2's shared-memory design (Section 2.1): one leader per
	// node aggregates through shm, the leaders run the size-appropriate
	// inter-node algorithm, and the result is broadcast through shm.
	// Keeping the single-leader hierarchy at every size is exactly the
	// behaviour the paper's Figures 4-7 improve on: the leader's
	// serialized ppn-1 reductions dominate at large sizes.
	if bytes <= 16<<10 {
		return Spec{Design: DesignDPML, Leaders: 1}
	}
	return Spec{Design: DesignDPML, Leaders: 1, InterAlg: mpi.AlgRabenseifner}
}

func (e *Engine) intelMPISpec(bytes int) Spec {
	// Intel MPI 2017's defaults: a shared-memory hierarchy only at the
	// smallest sizes, then flat bandwidth-optimal algorithms (recursive
	// halving/doubling). Keeping every rank in the inter-node algorithm
	// distributes the reduction compute across all cores, which is why
	// this baseline beats MVAPICH2's single-leader hierarchy at large
	// sizes (Figures 9c, 9d, 10) while still losing to DPML's concurrent
	// leader transfers.
	switch {
	case bytes <= 4<<10:
		return Spec{Design: DesignDPML, Leaders: 1}
	case bytes <= 32<<10:
		return Spec{Design: DesignFlat, FlatAlg: mpi.AlgRecursiveDoubling}
	default:
		return Spec{Design: DesignFlat, FlatAlg: mpi.AlgRabenseifner}
	}
}

// ProposedSpec is the paper's hybrid selector: SHArP for small messages
// when the fabric supports it, DPML with a size- and architecture-
// dependent leader count for medium and large messages, and pipelining
// when the per-leader partition would still sit in the bandwidth-bound
// zone (Section 4.2's very-large-message case).
func (e *Engine) ProposedSpec(bytes int) Spec {
	ppn := e.W.Job.PPN
	if e.SharpAvailable() && bytes <= e.W.Sharp.MaxPayload()/4 {
		if ppn <= 2 {
			return Spec{Design: DesignSharpNode}
		}
		return Spec{Design: DesignSharpSocket}
	}
	l := BestLeaders(e.W.Job.Cluster.Name, ppn, bytes)
	if l <= 1 && bytes <= 1<<10 {
		return Spec{Design: DesignDPML, Leaders: 1}
	}
	// Pipeline when each leader's partition is still deep in Zone C.
	perLeader := bytes / l
	if perLeader >= 256<<10 {
		k := perLeader / (64 << 10)
		if k > 16 {
			k = 16
		}
		if k > 1 {
			return Spec{Design: DesignDPMLPipelined, Leaders: l, Chunks: k}
		}
	}
	return Spec{Design: DesignDPML, Leaders: l}
}

// papAwareSpec selects for a predicted arrival pattern: when the
// installed fault plan marks stragglers, symmetric designs serialize
// behind the latest arriver, so the selector switches to the
// arrival-aware families — the sorted linear tree while the payload is
// latency-bound, the early-ring variant beyond, where the overlapped
// ring bandwidth matters. Balanced fabrics see the proposed hybrid
// unchanged.
func (e *Engine) papAwareSpec(bytes int) Spec {
	if plan := e.W.FaultPlan(); plan != nil && len(plan.Stragglers) > 0 {
		if bytes <= 4<<10 {
			return PAPSorted()
		}
		return PAPRing()
	}
	return e.ProposedSpec(bytes)
}

// BestLeaders returns the empirically tuned DPML leader count for a
// cluster, ppn, and message size — the per-size winner map produced by
// the Section 6.4 tuning sweep (examples/tuning regenerates it): one
// leader at small sizes (parallelizing tiny reductions does not pay),
// growing leader counts through the transition zone, and 16 leaders
// (capped by ppn) for Zone-C messages. The cluster name is accepted so
// per-architecture tables can diverge; the calibrated simulator's winner
// map happens to coincide across fabrics.
func BestLeaders(clusterName string, ppn, bytes int) int {
	_ = clusterName
	capPPN := func(l int) int {
		if l > ppn {
			return ppn
		}
		return l
	}
	switch {
	case bytes <= 256:
		return 1
	case bytes <= 2<<10:
		return capPPN(4)
	case bytes <= 16<<10:
		return capPPN(8)
	default:
		return capPPN(16)
	}
}
