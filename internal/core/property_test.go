package core

import (
	"testing"
	"testing/quick"

	"dpml/internal/mpi"
	"dpml/internal/topology"
)

// TestAllreducePropertyRandomConfigs is the package's property-based
// check: for randomized job shapes, designs, and payload sizes, every
// rank's allreduce result equals the sequential reduction.
func TestAllreducePropertyRandomConfigs(t *testing.T) {
	clusters := []*topology.Cluster{topology.ClusterA(), topology.ClusterB(), topology.ClusterC(), topology.ClusterD()}
	f := func(clSeed, nodeSeed, ppnSeed, designSeed, countSeed uint8) bool {
		cl := clusters[int(clSeed)%len(clusters)]
		nodes := 1 + int(nodeSeed)%5
		ppn := 1 + int(ppnSeed)%6
		count := 1 + int(countSeed)%300
		var spec Spec
		switch designSeed % 5 {
		case 0:
			spec = DPML(1 + int(designSeed/5)%ppn)
		case 1:
			spec = DPMLPipelined(1+int(designSeed/5)%ppn, 1+int(designSeed)%6)
		case 2:
			spec = Flat(mpi.FlatAlgorithms()[int(designSeed/5)%4])
		case 3:
			if !cl.Sharp.Available {
				spec = HostBased()
			} else {
				spec = Spec{Design: DesignSharpNode}
			}
		default:
			if !cl.Sharp.Available {
				spec = DPML(ppn)
			} else {
				spec = Spec{Design: DesignSharpSocket}
			}
		}

		job, err := topology.NewJob(cl, nodes, ppn)
		if err != nil {
			return false
		}
		e := NewEngine(mpi.NewWorld(job, mpi.Config{}))
		p := job.NumProcs()
		want := make([]float64, count)
		in := make([][]float64, p)
		seedVal := int(clSeed)*7 + int(countSeed)
		for k := range in {
			in[k] = make([]float64, count)
			for i := range in[k] {
				in[k][i] = float64((k*31+i*17+seedVal)%201 - 100)
				want[i] += in[k][i]
			}
		}
		ok := true
		err = e.W.Run(func(r *mpi.Rank) error {
			v := mpi.NewVector(mpi.Float64, count)
			copy(v.Float64s(), in[r.Rank()])
			if err := e.Allreduce(r, spec, mpi.Sum, v); err != nil {
				return err
			}
			for i := 0; i < count; i++ {
				if v.At(i) != want[i] {
					ok = false
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Logf("config %s on %s %dx%d n=%d: %v", spec, cl.Name, nodes, ppn, count, err)
			return false
		}
		if !ok {
			t.Logf("wrong result: %s on %s %dx%d n=%d", spec, cl.Name, nodes, ppn, count)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestReducePropertyRandomConfigs does the same for the DPML Reduce
// extension with randomized roots.
func TestReducePropertyRandomConfigs(t *testing.T) {
	f := func(nodeSeed, ppnSeed, leaderSeed, rootSeed, countSeed uint8) bool {
		nodes := 1 + int(nodeSeed)%5
		ppn := 1 + int(ppnSeed)%6
		leaders := 1 + int(leaderSeed)%ppn
		count := 1 + int(countSeed)%200
		job, err := topology.NewJob(topology.ClusterB(), nodes, ppn)
		if err != nil {
			return false
		}
		p := job.NumProcs()
		root := int(rootSeed) % p
		e := NewEngine(mpi.NewWorld(job, mpi.Config{}))
		want := make([]float64, count)
		in := make([][]float64, p)
		for k := range in {
			in[k] = make([]float64, count)
			for i := range in[k] {
				in[k][i] = float64((k*13 + i*7) % 97)
				want[i] += in[k][i]
			}
		}
		ok := true
		err = e.W.Run(func(r *mpi.Rank) error {
			v := mpi.NewVector(mpi.Float64, count)
			copy(v.Float64s(), in[r.Rank()])
			if err := e.Reduce(r, DPML(leaders), mpi.Sum, root, v); err != nil {
				return err
			}
			if r.Rank() == root {
				for i := 0; i < count; i++ {
					if v.At(i) != want[i] {
						ok = false
						return nil
					}
				}
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
