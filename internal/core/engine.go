// Package core implements the paper's contribution: the Data
// Partitioning-based Multi-Leader (DPML) allreduce, its pipelined variant
// for very large messages, the SHArP-accelerated node-leader and
// socket-leader designs, the tuned library baselines (MVAPICH2, Intel
// MPI) used for comparison, and the hybrid per-message-size selector.
package core

import (
	"fmt"

	"dpml/internal/fabric"
	"dpml/internal/mpi"
	"dpml/internal/shmseg"
	"dpml/internal/sim"
	"dpml/internal/trace"
)

// Design names one allreduce strategy.
type Design string

// Available designs.
const (
	// DesignFlat runs a single flat algorithm on the world communicator.
	DesignFlat Design = "flat"
	// DesignDPML is the paper's Data Partitioning-based Multi-Leader
	// allreduce (Section 4.1): Spec.Leaders leaders per node share the
	// intra-node reduction and drive concurrent inter-node allreduces on
	// data partitions.
	DesignDPML Design = "dpml"
	// DesignDPMLPipelined additionally splits each leader's partition
	// into Spec.Chunks sub-partitions reduced by interleaved
	// non-blocking inter-node allreduces (Section 4.2).
	DesignDPMLPipelined Design = "dpml-pipelined"
	// DesignSharpNode offloads the inter-node reduction to the SHArP
	// switch tree with one leader per node (Section 4.3).
	DesignSharpNode Design = "sharp-node-leader"
	// DesignSharpSocket uses one SHArP leader per socket, avoiding
	// cross-socket gather/broadcast traffic (Section 4.3).
	DesignSharpSocket Design = "sharp-socket-leader"
)

// Spec fully describes one allreduce configuration.
type Spec struct {
	Design Design
	// Leaders is the DPML leader count per node (1..ppn). Leaders == 1
	// reproduces the traditional single-leader hierarchical design that
	// MVAPICH2-style libraries use.
	Leaders int
	// Chunks is the pipelining depth k for DesignDPMLPipelined.
	Chunks int
	// InterAlg is the flat algorithm for the inter-leader phase ("" =
	// choose by message size, like the host MPI library would).
	InterAlg mpi.Algorithm
	// FlatAlg is the algorithm for DesignFlat ("" = recursive doubling).
	FlatAlg mpi.Algorithm
}

func (s Spec) String() string {
	switch s.Design {
	case DesignDPML:
		return fmt.Sprintf("dpml(l=%d)", s.Leaders)
	case DesignDPMLPipelined:
		return fmt.Sprintf("dpml-pipe(l=%d,k=%d)", s.Leaders, s.Chunks)
	case DesignFlat:
		alg := s.FlatAlg
		if alg == "" {
			alg = mpi.AlgRecursiveDoubling
		}
		return fmt.Sprintf("flat(%s)", alg)
	default:
		return string(s.Design)
	}
}

// HostBased is the traditional single-leader hierarchical design
// ("host-based scheme" in the paper's SHArP comparison): DPML with one
// leader.
func HostBased() Spec { return Spec{Design: DesignDPML, Leaders: 1} }

// DPML returns a Spec for the multi-leader design with l leaders.
func DPML(l int) Spec { return Spec{Design: DesignDPML, Leaders: l} }

// DPMLPipelined returns a Spec for the pipelined design with l leaders
// and k sub-partitions per leader.
func DPMLPipelined(l, k int) Spec {
	return Spec{Design: DesignDPMLPipelined, Leaders: l, Chunks: k}
}

// Flat returns a Spec running alg on the world communicator.
func Flat(alg mpi.Algorithm) Spec { return Spec{Design: DesignFlat, FlatAlg: alg} }

// Engine holds the per-job state the designs need: the shared-memory
// regions, the per-leader-index communicators, and the SHArP groups.
// Build it once per World, before World.Run.
type Engine struct {
	W *mpi.World

	regions      []*shmseg.Region // per node
	leaderComms  []*mpi.Comm      // per local rank index
	leaderSocket []int            // socket of local rank j (uniform across nodes)
	socketLeader []int            // per local rank: its socket's leader local index
	socketSize   []int            // per socket-leader local index: ranks on that socket
	seq          []uint64         // per global rank: shm operation sequence

	sharpNode   *fabric.SharpGroup // one leader per node
	sharpSocket *fabric.SharpGroup // one leader per socket per node

	// Host-based fallback communicators, spanning exactly the members of
	// the matching SHArP group: when the offload goes offline mid-run
	// (fault injection), the leaders complete the inter-node reduction
	// with a host algorithm over these instead (see sharpOp).
	sharpNodeHost   *mpi.Comm
	sharpSocketHost *mpi.Comm
}

// NewEngine prepares DPML state for the world.
func NewEngine(w *mpi.World) *Engine {
	job := w.Job
	e := &Engine{W: w, seq: make([]uint64, job.NumProcs())}
	e.regions = make([]*shmseg.Region, job.NodesUsed)
	for i := range e.regions {
		e.regions[i] = shmseg.NewRegion(job.PPN)
	}
	e.leaderComms = make([]*mpi.Comm, job.PPN)
	for j := range e.leaderComms {
		e.leaderComms[j] = w.LeaderComm(j)
	}
	// Socket layout is uniform across nodes; read it off node 0.
	e.leaderSocket = make([]int, job.PPN)
	e.socketLeader = make([]int, job.PPN)
	firstOfSocket := map[int]int{}
	for local := 0; local < job.PPN; local++ {
		s := job.Place(local).Socket
		e.leaderSocket[local] = s
		if _, ok := firstOfSocket[s]; !ok {
			firstOfSocket[s] = local
		}
		e.socketLeader[local] = firstOfSocket[s]
	}
	e.socketSize = make([]int, job.PPN)
	for local := 0; local < job.PPN; local++ {
		e.socketSize[e.socketLeader[local]]++
	}
	if w.Sharp != nil {
		if g, err := w.Sharp.NewGroup(job.NodesUsed, 1); err == nil {
			e.sharpNode = g
			e.sharpNodeHost = e.leaderComms[0]
		}
		if g, err := w.Sharp.NewGroup(job.NodesUsed, len(firstOfSocket)); err == nil {
			e.sharpSocket = g
			// All socket leaders of all nodes, node-major: the same set
			// that joins each sharpSocket operation.
			var socketLeaders []int
			for node := 0; node < job.NodesUsed; node++ {
				for local := 0; local < job.PPN; local++ {
					if e.socketLeader[local] == local {
						socketLeaders = append(socketLeaders, node*job.PPN+local)
					}
				}
			}
			e.sharpSocketHost = w.NewComm(socketLeaders)
		}
	}
	return e
}

// SharpAvailable reports whether SHArP designs can run on this world.
func (e *Engine) SharpAvailable() bool { return e.sharpNode != nil }

// SocketLeaders returns the local rank indices acting as socket leaders,
// in socket order.
func (e *Engine) SocketLeaders() []int {
	var out []int
	for local := 0; local < e.W.Job.PPN; local++ {
		if e.socketLeader[local] == local {
			out = append(out, local)
		}
	}
	return out
}

// Validate reports whether the spec can run on this engine's world.
func (e *Engine) Validate(s Spec) error {
	ppn := e.W.Job.PPN
	switch s.Design {
	case DesignFlat:
		if s.FlatAlg != "" {
			found := false
			for _, a := range mpi.FlatAlgorithms() {
				if a == s.FlatAlg {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("core: unknown flat algorithm %q", s.FlatAlg)
			}
		}
	case DesignDPML:
		if s.Leaders < 1 || s.Leaders > ppn {
			return fmt.Errorf("core: %d leaders with ppn=%d", s.Leaders, ppn)
		}
	case DesignDPMLPipelined:
		if s.Leaders < 1 || s.Leaders > ppn {
			return fmt.Errorf("core: %d leaders with ppn=%d", s.Leaders, ppn)
		}
		if s.Chunks < 1 || s.Chunks > 1024 {
			return fmt.Errorf("core: pipeline depth %d out of range [1,1024]", s.Chunks)
		}
	case DesignSharpNode, DesignSharpSocket:
		if !e.SharpAvailable() {
			return fmt.Errorf("core: %s requires SHArP, unavailable on %s",
				s.Design, e.W.Job.Cluster.Name)
		}
	default:
		return fmt.Errorf("core: unknown design %q", s.Design)
	}
	return nil
}

// Allreduce performs one allreduce of vec (in place, every rank) with the
// given design. All ranks must call it collectively with the same spec.
func (e *Engine) Allreduce(r *mpi.Rank, s Spec, op *mpi.Op, vec *mpi.Vector) error {
	if err := e.Validate(s); err != nil {
		return err
	}
	rec := e.W.Tracer()
	coll := rec.BeginCollective(r.Rank(), s.String(), vec.Bytes(), r.Now())
	defer func() { coll.End(r.Now()) }()
	switch s.Design {
	case DesignFlat:
		alg := s.FlatAlg
		if alg == "" {
			alg = mpi.AlgRecursiveDoubling
		}
		sp := rec.BeginSpan(r.Rank(), trace.PhaseFlat, r.Now())
		r.Allreduce(e.W.CommWorld(), alg, op, vec)
		sp.End(r.Now())
	case DesignDPML:
		e.dpml(r, op, vec, s.Leaders, 1, s.InterAlg)
	case DesignDPMLPipelined:
		e.dpml(r, op, vec, s.Leaders, s.Chunks, s.InterAlg)
	case DesignSharpNode:
		e.sharpAllreduce(r, op, vec, false)
	case DesignSharpSocket:
		e.sharpAllreduce(r, op, vec, true)
	}
	return nil
}

// autoAlg mirrors a production library's dynamic choice for the
// inter-leader allreduce: latency-optimal recursive doubling for small
// payloads, bandwidth-optimal Rabenseifner beyond.
func autoAlg(bytes int) mpi.Algorithm {
	if bytes <= 4096 {
		return mpi.AlgRecursiveDoubling
	}
	return mpi.AlgRabenseifner
}

// nextSeq advances this rank's shm-region operation sequence.
func (e *Engine) nextSeq(r *mpi.Rank) uint64 {
	s := e.seq[r.Rank()]
	e.seq[r.Rank()]++
	return s
}

// gatherSync charges the leader-side synchronization cost of collecting
// contributions through shared memory: one flag poll per contributor,
// dearer when the contributor sits on the other socket. This per-rank
// serial cost at the leader is the intra-node bottleneck that motivates
// socket-level leaders (Section 4.3).
func (e *Engine) gatherSync(r *mpi.Rank, leaderLocal int, sameSocketOnly bool) {
	mem := e.W.Job.Cluster.Mem
	ls := e.leaderSocket[leaderLocal]
	var d sim.Duration
	for local := 0; local < e.W.Job.PPN; local++ {
		if local == leaderLocal {
			continue
		}
		if e.leaderSocket[local] == ls {
			d += mem.FlagSync
		} else if !sameSocketOnly {
			d += mem.FlagSyncCross
		}
	}
	if d > 0 {
		r.Proc().Sleep(d)
	}
}
