// Package core implements the paper's contribution: the Data
// Partitioning-based Multi-Leader (DPML) allreduce, its pipelined variant
// for very large messages, the SHArP-accelerated node-leader and
// socket-leader designs, the tuned library baselines (MVAPICH2, Intel
// MPI) used for comparison, and the hybrid per-message-size selector.
package core

import (
	"fmt"

	"dpml/internal/fabric"
	"dpml/internal/mpi"
	"dpml/internal/shmseg"
	"dpml/internal/sim"
	"dpml/internal/trace"
)

// Design names one allreduce strategy.
type Design string

// Available designs.
const (
	// DesignFlat runs a single flat algorithm on the world communicator.
	DesignFlat Design = "flat"
	// DesignDPML is the paper's Data Partitioning-based Multi-Leader
	// allreduce (Section 4.1): Spec.Leaders leaders per node share the
	// intra-node reduction and drive concurrent inter-node allreduces on
	// data partitions.
	DesignDPML Design = "dpml"
	// DesignDPMLPipelined additionally splits each leader's partition
	// into Spec.Chunks sub-partitions reduced by interleaved
	// non-blocking inter-node allreduces (Section 4.2).
	DesignDPMLPipelined Design = "dpml-pipelined"
	// DesignSharpNode offloads the inter-node reduction to the SHArP
	// switch tree with one leader per node (Section 4.3).
	DesignSharpNode Design = "sharp-node-leader"
	// DesignSharpSocket uses one SHArP leader per socket, avoiding
	// cross-socket gather/broadcast traffic (Section 4.3).
	DesignSharpSocket Design = "sharp-socket-leader"
	// DesignDualRoot is Träff's doubly-pipelined reduction-to-all: two
	// mirrored binary trees with roots at the first and last rank, each
	// reducing one half of the vector in Spec.Segments pipelined blocks
	// and broadcasting it back down while later blocks still flow up.
	DesignDualRoot Design = "dualroot"
	// DesignGenAll is the generalized (grouped) allreduce: contiguous
	// groups of Spec.Groups ranks ring-allreduce locally, group leaders
	// recursive-double across groups, and the result is broadcast within
	// each group. Groups=1 degenerates to flat recursive doubling,
	// Groups=p to a flat ring.
	DesignGenAll Design = "genall"
	// DesignPAPSorted is Proficz's sorted linear tree: the reduction
	// chain follows the predicted process-arrival order (earliest rank
	// first), overlapping the chain with the stragglers' delays, then
	// broadcasts from the last arriver.
	DesignPAPSorted Design = "pap-sorted"
	// DesignPAPRing runs the ring among the predicted-early ranks while
	// the stragglers are still delayed, folds the late contributions in
	// at the earliest rank, and broadcasts the final result.
	DesignPAPRing Design = "pap-ring"
)

// Spec fully describes one allreduce configuration.
type Spec struct {
	Design Design
	// Leaders is the DPML leader count per node (1..ppn). Leaders == 1
	// reproduces the traditional single-leader hierarchical design that
	// MVAPICH2-style libraries use.
	Leaders int
	// Chunks is the pipelining depth k for DesignDPMLPipelined.
	Chunks int
	// InterAlg is the flat algorithm for the inter-leader phase ("" =
	// choose by message size, like the host MPI library would).
	InterAlg mpi.Algorithm
	// FlatAlg is the algorithm for DesignFlat ("" = recursive doubling).
	FlatAlg mpi.Algorithm
	// Segments is the per-half pipelining block count for
	// DesignDualRoot (0 = choose by message size, like Chunks-style
	// pipelining; clamped to the data length).
	Segments int
	// Groups is the group size g for DesignGenAll (0 = choose by
	// message size and job shape; clamped to [1, NumProcs]).
	Groups int
}

func (s Spec) String() string {
	switch s.Design {
	case DesignDPML:
		return fmt.Sprintf("dpml(l=%d)", s.Leaders)
	case DesignDPMLPipelined:
		return fmt.Sprintf("dpml-pipe(l=%d,k=%d)", s.Leaders, s.Chunks)
	case DesignFlat:
		alg := s.FlatAlg
		if alg == "" {
			alg = mpi.AlgRecursiveDoubling
		}
		return fmt.Sprintf("flat(%s)", alg)
	case DesignDualRoot:
		return fmt.Sprintf("dualroot(s=%d)", s.Segments)
	case DesignGenAll:
		return fmt.Sprintf("genall(g=%d)", s.Groups)
	default:
		return string(s.Design)
	}
}

// HostBased is the traditional single-leader hierarchical design
// ("host-based scheme" in the paper's SHArP comparison): DPML with one
// leader.
func HostBased() Spec { return Spec{Design: DesignDPML, Leaders: 1} }

// DPML returns a Spec for the multi-leader design with l leaders.
func DPML(l int) Spec { return Spec{Design: DesignDPML, Leaders: l} }

// DPMLPipelined returns a Spec for the pipelined design with l leaders
// and k sub-partitions per leader.
func DPMLPipelined(l, k int) Spec {
	return Spec{Design: DesignDPMLPipelined, Leaders: l, Chunks: k}
}

// Flat returns a Spec running alg on the world communicator.
func Flat(alg mpi.Algorithm) Spec { return Spec{Design: DesignFlat, FlatAlg: alg} }

// DualRoot returns a Spec for the dual-root doubly-pipelined tree with
// segments pipelining blocks per half (0 = size-adaptive).
func DualRoot(segments int) Spec { return Spec{Design: DesignDualRoot, Segments: segments} }

// GenAll returns a Spec for the generalized allreduce with groups of g
// ranks (0 = shape-adaptive).
func GenAll(g int) Spec { return Spec{Design: DesignGenAll, Groups: g} }

// PAPSorted returns a Spec for the arrival-sorted linear-tree allreduce.
func PAPSorted() Spec { return Spec{Design: DesignPAPSorted} }

// PAPRing returns a Spec for the arrival-aware early-ring allreduce.
func PAPRing() Spec { return Spec{Design: DesignPAPRing} }

// Engine holds the per-job state the designs need: the shared-memory
// regions, the per-leader-index communicators, and the SHArP groups.
// Build it once per World, before World.Run.
type Engine struct {
	W *mpi.World

	regions      []*shmseg.Region // per node
	leaderComms  []*mpi.Comm      // per local rank index
	leaderSocket []int            // socket of local rank j (uniform across nodes)
	socketLeader []int            // per local rank: its socket's leader local index
	socketSize   []int            // per socket-leader local index: ranks on that socket
	seq          []uint64         // per global rank: shm operation sequence

	sharpNode   *fabric.SharpGroup // one leader per node
	sharpSocket *fabric.SharpGroup // one leader per socket per node

	// Host-based fallback communicators, spanning exactly the members of
	// the matching SHArP group: when the offload goes offline mid-run
	// (fault injection), the leaders complete the inter-node reduction
	// with a host algorithm over these instead (see sharpOp).
	sharpNodeHost   *mpi.Comm
	sharpSocketHost *mpi.Comm
}

// NewEngine prepares DPML state for the world.
func NewEngine(w *mpi.World) *Engine {
	job := w.Job
	e := &Engine{W: w, seq: make([]uint64, job.NumProcs())}
	e.regions = make([]*shmseg.Region, job.NodesUsed)
	for i := range e.regions {
		e.regions[i] = shmseg.NewRegion(job.PPN)
	}
	e.leaderComms = make([]*mpi.Comm, job.PPN)
	for j := range e.leaderComms {
		e.leaderComms[j] = w.LeaderComm(j)
	}
	// Socket layout is uniform across nodes; read it off node 0.
	e.leaderSocket = make([]int, job.PPN)
	e.socketLeader = make([]int, job.PPN)
	firstOfSocket := map[int]int{}
	for local := 0; local < job.PPN; local++ {
		s := job.Place(local).Socket
		e.leaderSocket[local] = s
		if _, ok := firstOfSocket[s]; !ok {
			firstOfSocket[s] = local
		}
		e.socketLeader[local] = firstOfSocket[s]
	}
	e.socketSize = make([]int, job.PPN)
	for local := 0; local < job.PPN; local++ {
		e.socketSize[e.socketLeader[local]]++
	}
	if w.Sharp != nil {
		if g, err := w.Sharp.NewGroup(job.NodesUsed, 1); err == nil {
			e.sharpNode = g
			e.sharpNodeHost = e.leaderComms[0]
		}
		if g, err := w.Sharp.NewGroup(job.NodesUsed, len(firstOfSocket)); err == nil {
			e.sharpSocket = g
			// All socket leaders of all nodes, node-major: the same set
			// that joins each sharpSocket operation.
			var socketLeaders []int
			for node := 0; node < job.NodesUsed; node++ {
				for local := 0; local < job.PPN; local++ {
					if e.socketLeader[local] == local {
						socketLeaders = append(socketLeaders, node*job.PPN+local)
					}
				}
			}
			e.sharpSocketHost = w.NewComm(socketLeaders)
		}
	}
	return e
}

// SharpAvailable reports whether SHArP designs can run on this world.
func (e *Engine) SharpAvailable() bool { return e.sharpNode != nil }

// SocketLeaders returns the local rank indices acting as socket leaders,
// in socket order.
func (e *Engine) SocketLeaders() []int {
	var out []int
	for local := 0; local < e.W.Job.PPN; local++ {
		if e.socketLeader[local] == local {
			out = append(out, local)
		}
	}
	return out
}

// Validate reports whether the spec can run on this engine's world.
func (e *Engine) Validate(s Spec) error {
	ppn := e.W.Job.PPN
	switch s.Design {
	case DesignFlat:
		if s.FlatAlg != "" {
			found := false
			for _, a := range mpi.FlatAlgorithms() {
				if a == s.FlatAlg {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("core: unknown flat algorithm %q", s.FlatAlg)
			}
		}
	case DesignDPML:
		if s.Leaders < 1 || s.Leaders > ppn {
			return fmt.Errorf("core: %d leaders with ppn=%d", s.Leaders, ppn)
		}
	case DesignDPMLPipelined:
		if s.Leaders < 1 || s.Leaders > ppn {
			return fmt.Errorf("core: %d leaders with ppn=%d", s.Leaders, ppn)
		}
		if s.Chunks < 1 || s.Chunks > 1024 {
			return fmt.Errorf("core: pipeline depth %d out of range [1,1024]", s.Chunks)
		}
	case DesignSharpNode, DesignSharpSocket:
		if !e.SharpAvailable() {
			return fmt.Errorf("core: %s requires SHArP, unavailable on %s",
				s.Design, e.W.Job.Cluster.Name)
		}
	case DesignDualRoot:
		if s.Segments < 0 || s.Segments > 1024 {
			return fmt.Errorf("core: dualroot segments %d out of range [0,1024]", s.Segments)
		}
	case DesignGenAll:
		if s.Groups < 0 || s.Groups > e.W.Job.NumProcs() {
			return fmt.Errorf("core: genall group size %d out of range [0,%d]",
				s.Groups, e.W.Job.NumProcs())
		}
	case DesignPAPSorted, DesignPAPRing:
		// No parameters: the arrival schedule derives from the installed
		// fault plan (healthy fabrics degenerate to rank order).
	default:
		return fmt.Errorf("core: unknown design %q", s.Design)
	}
	return nil
}

// Allreduce performs one allreduce of vec (in place, every rank) with the
// given design. All ranks must call it collectively with the same spec.
func (e *Engine) Allreduce(r *mpi.Rank, s Spec, op *mpi.Op, vec *mpi.Vector) error {
	if err := e.Validate(s); err != nil {
		return err
	}
	rec := e.W.Tracer()
	coll := rec.BeginCollective(r.Rank(), s.String(), vec.Bytes(), r.Now())
	defer func() { coll.End(r.Now()) }()
	switch s.Design {
	case DesignFlat:
		alg := s.FlatAlg
		if alg == "" {
			alg = mpi.AlgRecursiveDoubling
		}
		sp := rec.BeginSpan(r.Rank(), trace.PhaseFlat, r.Now())
		r.Allreduce(e.W.CommWorld(), alg, op, vec)
		sp.End(r.Now())
	case DesignDPML:
		e.dpml(r, op, vec, s.Leaders, 1, s.InterAlg)
	case DesignDPMLPipelined:
		e.dpml(r, op, vec, s.Leaders, s.Chunks, s.InterAlg)
	case DesignSharpNode:
		e.sharpAllreduce(r, op, vec, false)
	case DesignSharpSocket:
		e.sharpAllreduce(r, op, vec, true)
	case DesignDualRoot:
		e.dualRoot(r, op, vec, s.Segments)
	case DesignGenAll:
		sp := rec.BeginSpan(r.Rank(), trace.PhaseGroup, r.Now())
		e.genAll(r, op, vec, s.Groups)
		sp.End(r.Now())
	case DesignPAPSorted:
		sp := rec.BeginSpan(r.Rank(), trace.PhasePAP, r.Now())
		e.papSorted(r, op, vec)
		sp.End(r.Now())
	case DesignPAPRing:
		sp := rec.BeginSpan(r.Rank(), trace.PhasePAP, r.Now())
		e.papRing(r, op, vec)
		sp.End(r.Now())
	}
	return nil
}

// autoAlg mirrors a production library's dynamic choice for the
// inter-leader allreduce: latency-optimal recursive doubling for small
// payloads, bandwidth-optimal Rabenseifner beyond.
func autoAlg(bytes int) mpi.Algorithm {
	if bytes <= 4096 {
		return mpi.AlgRecursiveDoubling
	}
	return mpi.AlgRabenseifner
}

// nextSeq advances this rank's shm-region operation sequence.
func (e *Engine) nextSeq(r *mpi.Rank) uint64 {
	s := e.seq[r.Rank()]
	e.seq[r.Rank()]++
	return s
}

// gatherSync charges the leader-side synchronization cost of collecting
// contributions through shared memory: one flag poll per contributor,
// dearer when the contributor sits on the other socket. This per-rank
// serial cost at the leader is the intra-node bottleneck that motivates
// socket-level leaders (Section 4.3).
func (e *Engine) gatherSync(r *mpi.Rank, leaderLocal int, sameSocketOnly bool) {
	mem := e.W.Job.Cluster.Mem
	ls := e.leaderSocket[leaderLocal]
	var d sim.Duration
	for local := 0; local < e.W.Job.PPN; local++ {
		if local == leaderLocal {
			continue
		}
		if e.leaderSocket[local] == ls {
			d += mem.FlagSync
		} else if !sameSocketOnly {
			d += mem.FlagSyncCross
		}
	}
	if d > 0 {
		r.Proc().Sleep(d)
	}
}
