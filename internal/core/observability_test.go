package core

import (
	"encoding/json"
	"strings"
	"testing"

	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/topology"
	"dpml/internal/trace"
)

// tracedEngine builds an engine with an unlimited trace recorder.
func tracedEngine(t *testing.T, cl *topology.Cluster, nodes, ppn int) (*Engine, *trace.Recorder) {
	t.Helper()
	job, err := topology.NewJob(cl, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(0)
	return NewEngine(mpi.NewWorld(job, mpi.Config{Trace: rec})), rec
}

// runTraced performs iters allreduces of count float64 elements under the
// given spec and returns the trace.
func runTraced(t *testing.T, s Spec, nodes, ppn, count, iters int) *trace.Recorder {
	t.Helper()
	e, rec := tracedEngine(t, topology.ClusterA(), nodes, ppn)
	err := e.W.Run(func(r *mpi.Rank) error {
		for it := 0; it < iters; it++ {
			v := mpi.NewVector(mpi.Float64, count)
			for i := 0; i < count; i++ {
				v.Set(i, float64(r.Rank()+i+it))
			}
			if err := e.Allreduce(r, s, mpi.Sum, v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestPhasesTileCollectives is the tentpole property: on every rank, the
// recorded phase spans exactly tile the collective spans, so per-phase
// durations sum to the total allreduce time — the breakdown accounts for
// 100% of the operation with nothing double-counted or missed.
func TestPhasesTileCollectives(t *testing.T) {
	specs := []Spec{
		Flat(mpi.AlgRecursiveDoubling),
		DPML(1),
		DPML(3),
		DPMLPipelined(2, 3),
		{Design: DesignSharpNode},
		{Design: DesignSharpSocket},
	}
	for _, s := range specs {
		t.Run(s.String(), func(t *testing.T) {
			rec := runTraced(t, s, 3, 5, 200, 2)
			phase := map[int]sim.Duration{}
			coll := map[int]sim.Duration{}
			for _, e := range rec.Events() {
				switch e.Kind {
				case trace.KindPhase:
					phase[e.Rank] += e.Duration()
				case trace.KindCollective:
					coll[e.Rank] += e.Duration()
				}
			}
			if len(coll) != 15 {
				t.Fatalf("collective spans on %d ranks, want 15", len(coll))
			}
			for rank, total := range coll {
				if phase[rank] != total {
					t.Errorf("rank %d: phases sum to %v, collective total %v", rank, phase[rank], total)
				}
			}
		})
	}
}

// TestPhasesTileUnderSharpFallback repeats the tiling property with the
// sharp designs forced through their host fallback and through the
// oversize-payload dpml path: degraded modes must stay fully attributed.
func TestPhasesTileUnderSharpFallback(t *testing.T) {
	e, rec := tracedEngine(t, topology.ClusterA(), 2, 4)
	max := e.W.Sharp.MaxPayload()
	err := e.W.Run(func(r *mpi.Rank) error {
		// Oversize payload: sharp design degrades to single-leader dpml.
		v := mpi.NewVector(mpi.Float64, max/8+8)
		return e.Allreduce(r, Spec{Design: DesignSharpNode}, mpi.Sum, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	phase := map[int]sim.Duration{}
	coll := map[int]sim.Duration{}
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KindPhase:
			phase[ev.Rank] += ev.Duration()
		case trace.KindCollective:
			coll[ev.Rank] += ev.Duration()
		}
	}
	for rank, total := range coll {
		if phase[rank] != total {
			t.Errorf("rank %d: phases sum to %v, collective total %v", rank, phase[rank], total)
		}
	}
}

// TestReduceBcastPhasesTile extends the tiling property to the DPML
// Reduce and Bcast collectives.
func TestReduceBcastPhasesTile(t *testing.T) {
	e, rec := tracedEngine(t, topology.ClusterA(), 3, 4)
	err := e.W.Run(func(r *mpi.Rank) error {
		v := mpi.NewVector(mpi.Float64, 100)
		v.Fill(float64(r.Rank()))
		if err := e.Reduce(r, DPML(2), mpi.Sum, 5, v); err != nil {
			return err
		}
		return e.Bcast(r, DPML(2), 5, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	phase := map[int]sim.Duration{}
	coll := map[int]sim.Duration{}
	colls := 0
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KindPhase:
			phase[ev.Rank] += ev.Duration()
		case trace.KindCollective:
			coll[ev.Rank] += ev.Duration()
			colls++
		}
	}
	if colls != 24 { // 12 ranks x (reduce + bcast)
		t.Fatalf("collective spans = %d, want 24", colls)
	}
	for rank, total := range coll {
		if phase[rank] != total {
			t.Errorf("rank %d: phases sum to %v, collective total %v", rank, phase[rank], total)
		}
	}
}

// TestLeafEventsCarryPhases checks the automatic stamping: every leaf
// event recorded during a DPML allreduce lands in one of the canonical
// phases.
func TestLeafEventsCarryPhases(t *testing.T) {
	rec := runTraced(t, DPML(2), 2, 4, 300, 1)
	valid := map[string]bool{
		trace.PhaseCopy: true, trace.PhaseReduce: true,
		trace.PhaseInter: true, trace.PhaseBcast: true,
	}
	leaves := 0
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindPhase, trace.KindCollective:
			continue
		}
		leaves++
		if !valid[e.Phase] {
			t.Errorf("leaf %s %q stamped with phase %q", e.Kind, e.Label, e.Phase)
		}
	}
	if leaves == 0 {
		t.Fatal("no leaf events recorded")
	}
}

// TestCriticalPathOnRealRun sanity-checks the extraction on a real DPML
// trace: the path tiles the makespan, ends at the last event, and at
// least one phase has zero slack (something must gate completion).
func TestCriticalPathOnRealRun(t *testing.T) {
	rec := runTraced(t, DPML(3), 3, 5, 400, 1)
	cp := rec.CriticalPath()
	if len(cp.Steps) == 0 {
		t.Fatal("empty critical path")
	}
	var busy, wait sim.Duration
	for _, st := range cp.Steps {
		busy += st.Busy
		wait += st.Wait
	}
	if busy+wait != cp.Total {
		t.Fatalf("path busy %v + wait %v != makespan %v", busy, wait, cp.Total)
	}
	var last sim.Time
	for _, e := range rec.Events() {
		if e.End > last {
			last = e.End
		}
	}
	if cp.Total != last.Sub(0) {
		t.Fatalf("makespan %v != last event end %v", cp.Total, last)
	}
	zeroSlack := false
	for _, p := range cp.Phases {
		if p.Slack < 0 {
			t.Errorf("phase %q has negative slack %v", p.Phase, p.Slack)
		}
		if p.Slack == 0 {
			zeroSlack = true
		}
	}
	if !zeroSlack {
		t.Error("no phase gates completion (all slack positive)")
	}
}

// TestChromeExportOnRealRun validates the Perfetto export structurally on
// a real trace: valid JSON, pids reflecting node placement, one complete
// event per recorded event.
func TestChromeExportOnRealRun(t *testing.T) {
	e, rec := tracedEngine(t, topology.ClusterA(), 3, 4)
	err := e.W.Run(func(r *mpi.Rank) error {
		v := mpi.NewVector(mpi.Float64, 128)
		return e.Allreduce(r, DPML(2), mpi.Sum, v)
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rec.WriteChrome(&b, func(rank int) int { return e.W.Job.Place(rank).Node }); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Pid int    `json:"pid"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	complete := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		complete++
		if want := e.W.Job.Place(ev.Tid).Node; ev.Pid != want {
			t.Errorf("rank %d exported under pid %d, want node %d", ev.Tid, ev.Pid, want)
		}
	}
	if complete != rec.Len() {
		t.Fatalf("complete events = %d, recorded = %d", complete, rec.Len())
	}
}

// TestMetricsRegistryOnRealRun checks the registry snapshot: the
// simulator, fabric, and arrival counters must be present and plausible
// after an inter-node collective.
func TestMetricsRegistryOnRealRun(t *testing.T) {
	e, rec := tracedEngine(t, topology.ClusterA(), 3, 4)
	err := e.W.Run(func(r *mpi.Rank) error {
		for it := 0; it < 3; it++ {
			v := mpi.NewVector(mpi.Float64, 256)
			if err := e.Allreduce(r, DPML(2), mpi.Sum, v); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := e.W.Metrics()
	positive := []string{
		"sim.events", "sim.context_switches", "sim.heap_high_water",
		"sim.elapsed", "flows.started", "net.messages", "net.bytes",
		"nic.injected", "mem.copies", "mem.bytes", "link.total_busy",
		"link.max_utilization",
	}
	for _, name := range positive {
		v, ok := m.Get(name)
		if !ok {
			t.Errorf("metric %q missing", name)
		} else if v <= 0 {
			t.Errorf("metric %q = %g, want > 0", name, v)
		}
	}
	if ops, _ := m.Get("coll.ops"); ops != 3 {
		t.Errorf("coll.ops = %g, want 3", ops)
	}
	if got, _ := m.Get("job.procs"); got != 12 {
		t.Errorf("job.procs = %g, want 12", got)
	}
	// Flows must balance, and the trace recorder must agree on ops.
	started, _ := m.Get("flows.started")
	completed, _ := m.Get("flows.completed")
	if started != completed {
		t.Errorf("flows started %g != completed %g after run", started, completed)
	}
	if ar := rec.CollectiveArrivals(); ar.Ops != 3 {
		t.Errorf("arrivals ops = %d, want 3", ar.Ops)
	}
	var b strings.Builder
	m.WriteText(&b)
	if !strings.Contains(b.String(), "sim.events") {
		t.Error("WriteText missing sim.events")
	}
}
