package core

import (
	"testing"

	"dpml/internal/mpi"
	"dpml/internal/topology"
)

// The paper's multi-HCA observation (Section 4.3): HCA-aware leader
// placement lets leaders on different sockets drive different rails.
// A dual-HCA node doubles the NIC-link capacity available to DPML's
// concurrent leaders, so large-message allreduce must get faster.

func TestDualHCAAcceleratesInterNodePhase(t *testing.T) {
	// With 16 leaders on one NIC the link (12 GB/s / 16 = 0.75 GB/s per
	// leader) binds; on two rails each leader's own pipe (1.1 GB/s)
	// binds instead, so Phase 3 must get ~1.4x faster. End-to-end time
	// moves less because the shm copy phases are HCA-independent.
	interOf := func(hcas int) int64 {
		cl := topology.ClusterB().WithHCAs(hcas)
		e := buildEngine(t, cl, 4, 16)
		var out int64
		err := e.W.Run(func(r *mpi.Rank) error {
			v := mpi.NewPhantom(mpi.Float32, 1<<20) // 4 MB
			pt, err := e.AllreduceProfiled(r, DPML(16), mpi.Sum, v)
			if err != nil {
				return err
			}
			if r.Rank() == 0 {
				out = int64(pt.Inter)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	one, two := interOf(1), interOf(2)
	if float64(two) > 0.85*float64(one) {
		t.Fatalf("dual-HCA inter phase (%d) not visibly faster than single (%d)", two, one)
	}
}

func TestHCAPlacementIsSocketAware(t *testing.T) {
	cl := topology.ClusterB().WithHCAs(2)
	job := topology.MustJob(cl, 1, 28)
	for local := 0; local < 28; local++ {
		p := job.Place(local)
		if p.HCA != p.Socket {
			t.Fatalf("local rank %d: socket %d attached to HCA %d", local, p.Socket, p.HCA)
		}
	}
}

func TestWithHCAsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithHCAs(0) accepted")
		}
	}()
	topology.ClusterB().WithHCAs(0)
}

func TestDualHCACorrectness(t *testing.T) {
	verifySpec(t, topology.ClusterB().WithHCAs(2), 3, 8, DPML(4), 257, 77)
}
