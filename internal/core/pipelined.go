package core

import "dpml/internal/mpi"

// pipelinedAllreduce implements the DPML-Pipelined inter-node phase
// (Section 4.2): the leader's partially reduced partition is split into k
// sub-partitions whose allreduces run as interleaved non-blocking state
// machines, followed by a waitall. Each sub-allreduce uses Rabenseifner's
// algorithm (recursive-halving reduce-scatter + recursive-doubling
// allgather), the same bandwidth-optimal scheme the blocking phase picks
// for these sizes, so pipelining adds only the k-fold startup cost of
// Eq. 5 while the interleaving overlaps one chunk's reduction compute
// with the other chunks' transfers.
func (e *Engine) pipelinedAllreduce(r *mpi.Rank, c *mpi.Comm, op *mpi.Op, vec *mpi.Vector, k int) {
	p := c.Size()
	if p == 1 {
		return
	}
	if k > vec.Len() && vec.Len() > 0 {
		k = vec.Len() // no point in zero-length chunks beyond the data
	}
	if k < 1 {
		k = 1
	}
	base := c.CollTagBase(r)
	pof2 := mpi.LargestPow2(p)
	rem := p - pof2

	// Non-power-of-two groups fold pairwise first (whole partition, one
	// message); the pipelined rounds then run on the power-of-two group.
	newRank := r.FoldIn(c, op, vec, rem, base)
	if newRank >= 0 && pof2 > 1 {
		rounds := 0
		for m := 1; m < pof2; m <<= 1 {
			rounds++
		}
		// Keep the whole tag layout inside the collective's tag window:
		// 2*rounds exchange rounds, k sub-channels, plus the fold tags.
		if maxK := (mpi.FoldOutTag - 2) / (2*rounds + 1); k > maxK {
			k = maxK
		}
		e.runPipelinedRab(r, c, op, vec, k, base, pof2, rem, newRank, rounds)
	}
	r.FoldOut(c, vec, rem, base)
}

// exchange is one recorded recursive-halving step, replayed in reverse
// for the allgather phase.
type exchange struct {
	dst                          int
	sentLo, sentHi, kepLo, kepHi int
}

// chunkState is one sub-partition's Rabenseifner state machine.
type chunkState struct {
	view   *mpi.Vector
	tmp    *mpi.Vector
	cnts   []int
	displs []int
	lo, hi int
	steps  []exchange
	mask   int // halving progress
	agIdx  int // allgather progress (index into steps, descending)
	phase  int // 0 = reduce-scatter, 1 = allgather, 2 = done
	round  int // global round number for tag layout
	send   *mpi.Request
	recv   *mpi.Request
}

func (e *Engine) runPipelinedRab(r *mpi.Rank, c *mpi.Comm, op *mpi.Op, vec *mpi.Vector, k, base, pof2, rem, newRank, rounds int) {
	cnts, displs := mpi.BlockPartition(vec.Len(), k)
	chunks := make([]*chunkState, k)

	blockView := func(v *mpi.Vector, ch *chunkState, lo, hi int) *mpi.Vector {
		if lo == hi {
			return v.Slice(ch.displs[lo], ch.displs[lo])
		}
		return v.Slice(ch.displs[lo], ch.displs[hi-1]+ch.cnts[hi-1])
	}

	// Tag layout: 1 + round*k + chunkIndex (0 is the fold tag).
	post := func(ci int) {
		ch := chunks[ci]
		tag := base + 1 + ch.round*k + ci
		switch ch.phase {
		case 0: // recursive halving
			newDst := newRank ^ ch.mask
			dst := mpi.FoldRank(newDst, rem)
			mid := (ch.lo + ch.hi) / 2
			var st exchange
			st.dst = dst
			if newRank < newDst {
				st.sentLo, st.sentHi, st.kepLo, st.kepHi = mid, ch.hi, ch.lo, mid
			} else {
				st.sentLo, st.sentHi, st.kepLo, st.kepHi = ch.lo, mid, mid, ch.hi
			}
			ch.steps = append(ch.steps, st)
			ch.recv = r.Irecv(c, dst, tag, blockView(ch.tmp, ch, st.kepLo, st.kepHi))
			ch.send = r.Isend(c, dst, tag, blockView(ch.view, ch, st.sentLo, st.sentHi))
		case 1: // allgather: undo the halvings in reverse
			st := ch.steps[ch.agIdx]
			ch.recv = r.Irecv(c, st.dst, tag, blockView(ch.view, ch, st.sentLo, st.sentHi))
			ch.send = r.Isend(c, st.dst, tag, blockView(ch.view, ch, st.kepLo, st.kepHi))
		}
	}

	// advance moves a chunk whose round's send and recv both finished to
	// its next round; the reduction compute here overlaps with the other
	// chunks' in-flight messages.
	advance := func(ci int) {
		ch := chunks[ci]
		switch ch.phase {
		case 0:
			st := ch.steps[len(ch.steps)-1]
			r.Reduce(op, blockView(ch.view, ch, st.kepLo, st.kepHi), blockView(ch.tmp, ch, st.kepLo, st.kepHi))
			ch.lo, ch.hi = st.kepLo, st.kepHi
			ch.mask <<= 1
			ch.round++
			if ch.mask < pof2 {
				post(ci)
				return
			}
			ch.phase = 1
			ch.agIdx = len(ch.steps) - 1
			if ch.agIdx < 0 {
				ch.phase = 2
				return
			}
			post(ci)
		case 1:
			ch.agIdx--
			ch.round++
			if ch.agIdx >= 0 {
				post(ci)
				return
			}
			ch.phase = 2
		}
	}

	done := 0
	for ci := 0; ci < k; ci++ {
		view := vec.Slice(displs[ci], displs[ci]+cnts[ci])
		ch := &chunkState{view: view, tmp: view.Clone(), mask: 1, phase: 0}
		ch.cnts, ch.displs = mpi.BlockPartition(view.Len(), pof2)
		ch.lo, ch.hi = 0, pof2
		chunks[ci] = ch
		post(ci)
	}
	pending := make([]*mpi.Request, 0, 2*k)
	for done < k {
		progressed := false
		for ci, ch := range chunks {
			if ch.phase == 2 {
				continue
			}
			if ch.send == nil || !ch.send.Done() || !ch.recv.Done() {
				continue
			}
			ch.send, ch.recv = nil, nil
			advance(ci)
			progressed = true
			if ch.phase == 2 {
				done++
			}
		}
		if done == k {
			break
		}
		if progressed {
			continue // re-scan: reductions may have unblocked others
		}
		pending = pending[:0]
		for _, ch := range chunks {
			if ch.phase == 2 || ch.send == nil {
				continue
			}
			if !ch.send.Done() {
				pending = append(pending, ch.send)
			}
			if !ch.recv.Done() {
				pending = append(pending, ch.recv)
			}
		}
		r.WaitAny(pending)
	}
}
