package core

import (
	"testing"

	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/topology"
)

func TestIAllreduceCorrect(t *testing.T) {
	for _, tc := range []struct{ nodes, ppn, leaders, count int }{
		{3, 4, 2, 100},
		{4, 8, 8, 257},
		{2, 1, 1, 64}, // ppn==1 direct path
		{5, 3, 3, 999},
	} {
		e := buildEngine(t, topology.ClusterB(), tc.nodes, tc.ppn)
		p := e.W.Job.NumProcs()
		err := e.W.Run(func(r *mpi.Rank) error {
			v := mpi.NewVector(mpi.Float64, tc.count)
			v.Fill(float64(r.Rank() + 1))
			h, err := e.IAllreduce(r, DPML(tc.leaders), mpi.Sum, v)
			if err != nil {
				return err
			}
			// Overlap window: unrelated compute between start and wait.
			r.Compute(64 << 10)
			if h.Done() {
				t.Error("handle done before Wait")
			}
			if err := h.Wait(r); err != nil {
				return err
			}
			if !h.Done() {
				t.Error("handle not done after Wait")
			}
			want := float64(p * (p + 1) / 2)
			for i := 0; i < tc.count; i++ {
				if v.At(i) != want {
					t.Errorf("%+v: rank %d elem %d = %v, want %v", tc, r.Rank(), i, v.At(i), want)
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
	}
}

func TestIAllreduceOverlapsCompute(t *testing.T) {
	// Interleaving independent compute between IAllreduce and Wait must
	// be cheaper than blocking-allreduce-then-compute, because Phase 1's
	// shared-memory deposits of OTHER ranks proceed during this rank's
	// compute (the leaders start gathering earlier).
	const computeBytes = 2 << 20
	run := func(nonblocking bool) sim.Duration {
		e := buildEngine(t, topology.ClusterB(), 4, 16)
		var out sim.Duration
		err := e.W.Run(func(r *mpi.Rank) error {
			v := mpi.NewPhantom(mpi.Float32, 1<<18) // 1 MB
			r.Barrier(e.W.CommWorld())
			start := r.Now()
			if nonblocking {
				h, err := e.IAllreduce(r, DPML(16), mpi.Sum, v)
				if err != nil {
					return err
				}
				r.Compute(computeBytes)
				if err := h.Wait(r); err != nil {
					return err
				}
			} else {
				if err := e.Allreduce(r, DPML(16), mpi.Sum, v); err != nil {
					return err
				}
				r.Compute(computeBytes)
			}
			r.Barrier(e.W.CommWorld())
			if r.Rank() == 0 {
				out = r.Now().Sub(start)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	blocking, nb := run(false), run(true)
	if nb >= blocking {
		t.Fatalf("non-blocking (%v) not faster than blocking+compute (%v)", nb, blocking)
	}
}

func TestIAllreduceValidation(t *testing.T) {
	e := buildEngine(t, topology.ClusterB(), 2, 2)
	err := e.W.Run(func(r *mpi.Rank) error {
		if _, err := e.IAllreduce(r, Flat(mpi.AlgRing), mpi.Sum, mpi.NewPhantom(mpi.Float32, 4)); err == nil {
			t.Error("flat spec accepted")
		}
		if _, err := e.IAllreduce(r, DPML(99), mpi.Sum, mpi.NewPhantom(mpi.Float32, 4)); err == nil {
			t.Error("bad leaders accepted")
		}
		// Double Wait rejected.
		v := mpi.NewPhantom(mpi.Float32, 16)
		h, err := e.IAllreduce(r, DPML(2), mpi.Sum, v)
		if err != nil {
			return err
		}
		if err := h.Wait(r); err != nil {
			return err
		}
		if err := h.Wait(r); err == nil {
			t.Error("second Wait accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIAllreducePipelinedSpec(t *testing.T) {
	e := buildEngine(t, topology.ClusterC(), 4, 4)
	p := e.W.Job.NumProcs()
	err := e.W.Run(func(r *mpi.Rank) error {
		v := mpi.NewVector(mpi.Float64, 500)
		v.Fill(1)
		h, err := e.IAllreduce(r, DPMLPipelined(4, 4), mpi.Sum, v)
		if err != nil {
			return err
		}
		if err := h.Wait(r); err != nil {
			return err
		}
		if v.At(499) != float64(p) {
			t.Errorf("got %v, want %d", v.At(499), p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
