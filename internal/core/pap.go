package core

import (
	"sort"

	"dpml/internal/mpi"
)

// Proficz's process-arrival-pattern-aware allreduce algorithms
// (arXiv:1804.05349). Production collectives assume all ranks enter the
// operation together; under imbalanced arrival (stragglers) that
// assumption costs dearly, because symmetric algorithms serialize every
// rank behind the latest arriver. These designs instead read a
// per-rank arrival prediction — here, the installed fault plan's
// straggler windows, a deterministic oracle identical on every rank —
// and reorder the reduction so the work of the early ranks overlaps
// with the stragglers' delays.

// arrivalOrder returns the global ranks sorted by predicted arrival
// (earliest first, rank id breaking ties) plus each rank's lateness
// score. The score for a rank sums (Factor-1)-weighted straggler
// windows from the fault plan; open-ended windows (End == 0) count with
// unit duration so permanent stragglers sort after windowed ones of
// equal factor. A healthy fabric yields all-zero scores and rank order.
func (e *Engine) arrivalOrder() (order []int, score []float64) {
	p := e.W.Job.NumProcs()
	score = make([]float64, p)
	if plan := e.W.FaultPlan(); plan != nil {
		for _, s := range plan.Stragglers {
			if s.Rank < 0 || s.Rank >= p {
				continue
			}
			dur := 1.0
			if s.End > s.Start {
				dur = float64(s.End.Sub(s.Start)) / 1e9
			}
			score[s.Rank] += (s.Factor - 1) * dur
		}
	}
	order = make([]int, p)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := score[order[a]], score[order[b]]
		if sa < sb {
			return true
		}
		if sb < sa {
			return false
		}
		return order[a] < order[b]
	})
	return order, score
}

// papBlocks picks the chain pipelining depth: enough blocks that
// several hops are in flight at once, never more than the vector has
// elements, and small enough that per-block tags stay far inside the
// collective tag window.
func papBlocks(n int) int {
	b := 8
	if b > n {
		b = n
	}
	if b < 1 {
		b = 1
	}
	return b
}

// papSorted is the sorted linear tree: a chain reduction in predicted
// arrival order — each rank receives the running partial from its
// predecessor, folds in its own vector, and forwards — so the first
// p-2 hops complete while the latest arriver is still delayed, leaving
// only one hop plus the broadcast on its critical path. The chain is
// pipelined: the vector is split into blocks, each forwarded with a
// non-blocking send as soon as it is folded, so successive hops overlap
// block-wise instead of serializing the whole vector per hop (Proficz
// pipelines the linear tree the same way). The broadcast runs over the
// arrival-ordered communicator rooted at the last arriver. Chain order
// differs from rank order, which is safe here because every predefined
// op is associative and commutative (and the verification data is
// exact under any combining order).
func (e *Engine) papSorted(r *mpi.Rank, op *mpi.Op, vec *mpi.Vector) {
	w := e.W
	order, _ := e.arrivalOrder()
	p := len(order)
	if p == 1 {
		return
	}
	pc := w.InternComm(order) // comm rank = arrival position
	me := pc.RankOf(r)
	base := pc.CollTagBase(r)

	blocks := papBlocks(vec.Len())
	cnts, displs := mpi.BlockPartition(vec.Len(), blocks)
	views := make([]*mpi.Vector, blocks)
	recvs := make([]*mpi.Request, blocks)
	bufs := make([]*mpi.Vector, blocks)
	for b := 0; b < blocks; b++ {
		views[b] = vec.Slice(displs[b], displs[b]+cnts[b])
		if me > 0 {
			bufs[b] = views[b].Clone()
			recvs[b] = r.Irecv(pc, me-1, wrapTagPAP(base, b), bufs[b])
		}
	}
	var sends []*mpi.Request
	for b := 0; b < blocks; b++ {
		if me > 0 {
			r.Wait(recvs[b])
			r.Reduce(op, views[b], bufs[b])
		}
		if me < p-1 {
			sends = append(sends, r.Isend(pc, me+1, wrapTagPAP(base, b), views[b]))
		}
	}
	r.WaitAll(sends...)
	// The latest arriver holds the total; broadcast consumes its own
	// tag window on the same communicator.
	r.Bcast(pc, p-1, vec)
}

// papRing is the parallel-ring variant: the predicted-on-time ranks run
// a bandwidth-optimal ring allreduce immediately (overlapping with the
// stragglers' delays), each straggler sends its vector to the earliest
// rank as it arrives, and the earliest rank folds the late
// contributions in and broadcasts the final result to everyone over
// the arrival-ordered communicator. The earliest rank pre-posts all
// straggler receives before entering the ring, so late arrivals
// transfer concurrently with the ring; the folds still run in fixed
// arrival order, keeping results schedule-independent. With no
// predicted stragglers the early set is everyone and the design
// degenerates to a flat ring.
func (e *Engine) papRing(r *mpi.Rank, op *mpi.Op, vec *mpi.Vector) {
	w := e.W
	order, score := e.arrivalOrder()
	p := len(order)
	if p == 1 {
		return
	}

	// Early set: zero-score ranks, in arrival (= rank) order. If the
	// plan marks everyone late, fall back to treating all as early.
	// Scores are sums of (Factor-1)*dur terms with Factor >= 1, so a
	// punctual rank is exactly one whose score is not positive.
	cut := 0
	for cut < p && !(score[order[cut]] > 0) {
		cut++
	}
	if cut == 0 {
		cut = p
	}
	early := order[:cut]

	pc := w.InternComm(order)
	me := pc.RankOf(r)
	base := pc.CollTagBase(r)

	var sends []*mpi.Request
	if me < cut {
		var recvs []*mpi.Request
		var bufs []*mpi.Vector
		if me == 0 {
			for i := cut; i < p; i++ {
				buf := vec.Clone()
				bufs = append(bufs, buf)
				recvs = append(recvs, r.Irecv(pc, i, wrapTagPAP(base, i), buf))
			}
		}
		// Early ranks: ring among themselves while the stragglers are
		// still delayed.
		ec := w.InternComm(early)
		if ec.Size() > 1 {
			r.Allreduce(ec, mpi.AlgRing, op, vec)
		}
		// Earliest rank: fold in the stragglers' contributions in
		// predicted arrival order.
		for i, req := range recvs {
			r.Wait(req)
			r.Reduce(op, vec, bufs[i])
		}
	} else {
		// A straggler's send is consumed by the earliest rank before it
		// roots the broadcast, so the request is guaranteed complete by
		// the time the broadcast reaches back here; collect it and
		// settle after.
		sends = append(sends, r.Isend(pc, 0, wrapTagPAP(base, me), vec))
	}

	// With no stragglers the ring already delivered the result to every
	// rank and the broadcast would only add latency; every rank computed
	// the same cut, so all agree on whether it runs.
	if cut < p {
		r.Bcast(pc, 0, vec)
	}
	r.WaitAll(sends...)
}

// wrapTagPAP keeps per-hop tags inside the collective's tag window,
// mirroring the internal wrapTag of the flat algorithms.
func wrapTagPAP(base, hop int) int {
	return base + hop%(mpi.FoldOutTag-1)
}
