package mpi

import (
	"fmt"
	"strings"

	"dpml/internal/faults"
	"dpml/internal/sim"
)

// stragWin is one precompiled straggler window for a rank: while the
// clock is inside [start, end) the rank's compute and per-message CPU
// overheads stretch by factor.
type stragWin struct {
	start  sim.Time
	end    sim.Time // 0 = forever
	factor float64
}

// installFaults compiles the plan into the world: straggler windows
// become a per-rank lookup table consulted on the perturbed hot paths,
// while link, NIC, and SHArP windows become ordinary kernel events at
// their boundaries (capacities are restored to the values captured here,
// so windows on the same component must not overlap — the generator
// produces disjoint ones). Runs once, before the simulation starts; with
// no plan nothing is installed and the event stream is untouched.
func (w *World) installFaults(p *faults.Plan) {
	sh := faults.Shape{Ranks: len(w.ranks), Nodes: w.Job.NodesUsed, HCAs: w.Job.Cluster.HCAs}
	if err := p.Validate(sh); err != nil {
		panic(err)
	}
	if len(p.Stragglers) > 0 {
		w.strag = make([][]stragWin, len(w.ranks))
		for _, s := range p.Stragglers {
			w.strag[s.Rank] = append(w.strag[s.Rank], stragWin{s.Start, s.End, s.Factor})
		}
	}
	// Window-boundary events are installed on the LP owning the state
	// they mutate: link capacities and the SHArP flag are fabric state on
	// the network LP; NIC injector throttles are node-local state on the
	// throttled node's LP. AtOn keys pre-run events by the target LP, so
	// the installed event stream is identical under every shard count.
	netK := w.coord.NetKernel()
	netLP := netK.NetLP()
	for _, lf := range p.Links {
		lf := lf
		up, down := w.Net.HCALinks(lf.Node, lf.HCA)
		upBase, downBase := up.Capacity(), down.Capacity()
		netK.AtOn(netLP, lf.Start, func() {
			w.Flows.SetLinkCapacity(up, upBase*lf.Factor)
			w.Flows.SetLinkCapacity(down, downBase*lf.Factor)
		})
		if lf.End != 0 {
			netK.AtOn(netLP, lf.End, func() {
				w.Flows.SetLinkCapacity(up, upBase)
				w.Flows.SetLinkCapacity(down, downBase)
			})
		}
	}
	for _, nt := range p.NICs {
		nt := nt
		nk := w.coord.KernelFor(nt.Node)
		nk.AtOn(nt.Node, nt.Start, func() { w.Net.SetInjectScale(nt.Node, nt.HCA, nt.Factor) })
		if nt.End != 0 {
			nk.AtOn(nt.Node, nt.End, func() { w.Net.SetInjectScale(nt.Node, nt.HCA, 1) })
		}
	}
	if w.Sharp != nil {
		for _, o := range p.Sharp {
			o := o
			netK.AtOn(netLP, o.Start, func() { w.Sharp.SetFailed(true) })
			if o.End != 0 {
				netK.AtOn(netLP, o.End, func() { w.Sharp.SetFailed(false) })
			}
		}
	}
}

// stretch scales a CPU-side duration by the rank's straggler factor in
// force right now (the largest of its active windows), reading the clock
// of the rank's own kernel — stretch is only ever called in the rank's
// node context. Without straggler faults it returns d unchanged after a
// single nil check — this sits on the send/receive/compute hot paths and
// must cost nothing when off.
func (w *World) stretch(rk *Rank, d sim.Duration) sim.Duration {
	if w.strag == nil || d <= 0 {
		return d
	}
	f := 1.0
	now := rk.k.Now()
	for _, win := range w.strag[rk.rank] {
		if now >= win.start && (win.end == 0 || now < win.end) && win.factor > f {
			f = win.factor
		}
	}
	if f == 1 { //dpml:allow floateq -- 1.0 is an exact sentinel, never computed
		return d
	}
	return sim.Duration(float64(d) * f)
}

// diagnostics dumps each rank's pending message-matching state for
// deadlock and watchdog reports: how many receives it has posted without
// a matching message and how many messages arrived unexpected. Ranks with
// nothing pending are skipped; the dump is capped so a wedged 10k-rank
// job stays readable.
func (w *World) diagnostics() string {
	const maxLines = 16
	var b strings.Builder
	b.WriteString("pending requests:")
	lines, more := 0, 0
	for _, rk := range w.ranks {
		posted, unexpected := 0, 0
		for _, q := range rk.posted {
			posted += len(q)
		}
		for _, q := range rk.unexpected {
			unexpected += len(q)
		}
		if posted == 0 && unexpected == 0 {
			continue
		}
		if lines == maxLines {
			more++
			continue
		}
		lines++
		fmt.Fprintf(&b, "\n  rank%d: %d posted recvs, %d unexpected msgs", rk.rank, posted, unexpected)
	}
	if more > 0 {
		fmt.Fprintf(&b, "\n  (+%d more ranks)", more)
	}
	if lines == 0 {
		b.WriteString(" none")
	}
	return b.String()
}
