package mpi

import (
	"errors"
	"strings"
	"testing"

	"dpml/internal/faults"
	"dpml/internal/sim"
	"dpml/internal/topology"
)

// pingPongEnd runs a fixed eager ping-pong workload and returns the
// virtual end time.
func pingPongEnd(t *testing.T, cfg Config) sim.Time {
	t.Helper()
	w := smallWorld(t, topology.ClusterB(), 2, 1, cfg)
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Float64, 16)
		for i := 0; i < 10; i++ {
			if r.Rank() == 0 {
				r.Send(c, 1, i, v)
				r.Recv(c, 1, 100+i, v)
			} else {
				r.Recv(c, 0, i, v)
				r.Send(c, 0, 100+i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.Now()
}

// TestFaultsDisabledBitTransparent: nil and empty plans leave the run —
// end time and event count — identical to a config with no fault layer
// at all.
func TestFaultsDisabledBitTransparent(t *testing.T) {
	type obs struct {
		end    sim.Time
		events uint64
	}
	run := func(cfg Config) obs {
		w := smallWorld(t, topology.ClusterB(), 2, 2, cfg)
		err := w.Run(func(r *Rank) error {
			v := NewVector(Float64, 1024)
			v.Fill(float64(r.Rank()))
			r.Allreduce(w.CommWorld(), AlgRecursiveDoubling, Sum, v)
			r.Compute(4096)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return obs{w.Now(), w.SimStats().Events}
	}
	base := run(Config{})
	if got := run(Config{Faults: nil}); got != base {
		t.Fatalf("nil plan perturbed the run: %+v vs %+v", got, base)
	}
	if got := run(Config{Faults: &faults.Plan{}}); got != base {
		t.Fatalf("empty plan perturbed the run: %+v vs %+v", got, base)
	}
}

// TestStragglerStretchesCompute: a factor-4 straggler window makes a
// pure-compute rank take exactly 4x as long.
func TestStragglerStretchesCompute(t *testing.T) {
	end := func(p *faults.Plan) sim.Time {
		w := smallWorld(t, topology.ClusterB(), 1, 1, Config{Faults: p})
		// Chunked: the factor is sampled at each operation's start, so a
		// window boundary lands between chunks.
		if err := w.Run(func(r *Rank) error {
			for i := 0; i < 16; i++ {
				r.Compute(1 << 16)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return w.Now()
	}
	healthy := end(nil)
	slowed := end(&faults.Plan{Stragglers: []faults.Straggler{{Rank: 0, Factor: 4}}})
	if slowed != sim.Time(4*sim.Duration(healthy)) {
		t.Fatalf("straggler compute end %v, want 4x healthy %v", slowed, healthy)
	}
	// A window that closes before the work ends stretches only part of it.
	half := end(&faults.Plan{Stragglers: []faults.Straggler{
		{Rank: 0, Factor: 4, End: sim.Time(sim.Duration(healthy) / 2)},
	}})
	if half <= healthy || half >= slowed {
		t.Fatalf("bounded window end %v, want between %v and %v", half, healthy, slowed)
	}
}

// TestStragglerSlowsMessaging: the same ping-pong with a straggling rank
// finishes later (per-message CPU overheads stretch).
func TestStragglerSlowsMessaging(t *testing.T) {
	healthy := pingPongEnd(t, Config{})
	slowed := pingPongEnd(t, Config{Faults: &faults.Plan{
		Stragglers: []faults.Straggler{{Rank: 1, Factor: 8}},
	}})
	if slowed <= healthy {
		t.Fatalf("straggler run %v not slower than healthy %v", slowed, healthy)
	}
}

// TestLinkFaultSlowsTransfer: degrading the sender's uplink stretches a
// large rendezvous transfer already modelled by the flow net.
func TestLinkFaultSlowsTransfer(t *testing.T) {
	end := func(p *faults.Plan) sim.Time {
		w := smallWorld(t, topology.ClusterB(), 2, 1, Config{Faults: p})
		err := w.Run(func(r *Rank) error {
			v := NewVector(Float64, 1<<20)
			if r.Rank() == 0 {
				r.Send(w.CommWorld(), 1, 0, v)
			} else {
				r.Recv(w.CommWorld(), 0, 0, v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Now()
	}
	healthy := end(nil)
	// 5% of ClusterB's 12 GB/s link sits well below the 1.1 GB/s per-flow
	// cap, so the degraded link becomes the path bottleneck.
	degraded := end(&faults.Plan{Links: []faults.LinkFault{{Node: 0, HCA: 0, Factor: 0.05}}})
	if degraded <= healthy {
		t.Fatalf("degraded-link run %v not slower than healthy %v", degraded, healthy)
	}
}

// TestNICThrottleSlowsInjection: throttling node 0's HCA stretches an
// eager message burst.
func TestNICThrottleSlowsInjection(t *testing.T) {
	end := func(p *faults.Plan) sim.Time {
		w := smallWorld(t, topology.ClusterB(), 2, 1, Config{Faults: p})
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			v := NewVector(Float64, 16)
			if r.Rank() == 0 {
				reqs := make([]*Request, 32)
				for i := range reqs {
					reqs[i] = r.Isend(c, 1, i, v)
				}
				r.WaitAll(reqs...)
			} else {
				for i := 0; i < 32; i++ {
					r.Recv(c, 0, i, NewVector(Float64, 16))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Now()
	}
	healthy := end(nil)
	// The scaled gap must exceed the 400ns sender overhead before the
	// injector ever backs up: 200 x 7ns = 1.4us per message.
	throttled := end(&faults.Plan{NICs: []faults.NICThrottle{{Node: 0, HCA: 0, Factor: 200}}})
	if throttled <= healthy {
		t.Fatalf("throttled run %v not slower than healthy %v", throttled, healthy)
	}
}

// TestSharpOutagePlanIgnoredWithoutSharp: a plan with SHArP outages on a
// fabric without SHArP installs cleanly and the run completes.
func TestSharpOutagePlanIgnoredWithoutSharp(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{
		Faults: &faults.Plan{Sharp: []faults.SharpOutage{{Start: 0}}},
	})
	if w.Sharp != nil {
		t.Fatal("ClusterB grew SHArP support")
	}
	if err := w.Run(func(r *Rank) error { r.Compute(64); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestInvalidPlanPanics: NewWorld rejects a plan that does not fit the
// job shape.
func TestInvalidPlanPanics(t *testing.T) {
	job, err := topology.NewJob(topology.ClusterB(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range straggler rank accepted")
		}
	}()
	NewWorld(job, Config{Faults: &faults.Plan{
		Stragglers: []faults.Straggler{{Rank: 99, Factor: 2}},
	}})
}

// TestWatchdogNamesStuckRanks: two ranks posting receives that can never
// match, plus a third rank that keeps virtual time ticking so the
// kernel's global deadlock detection can never fire. The watchdog must
// convert the wedge into a diagnostic error naming the actual stuck
// ranks and their pending requests.
func TestWatchdogNamesStuckRanks(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 3, 1, Config{Watchdog: sim.Millisecond})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		switch r.Rank() {
		case 0:
			r.Recv(c, 1, 9, NewVector(Float64, 4)) // rank 1 never sends
		case 1:
			r.Recv(c, 0, 9, NewVector(Float64, 4)) // rank 0 never sends
		default:
			for { // live events forever: no global deadlock
				r.Proc().Sleep(sim.Microsecond)
			}
		}
		return nil
	})
	var wd *sim.WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("got %v, want WatchdogError", err)
	}
	msg := err.Error()
	for _, want := range []string{"rank0", "rank1", "posted recvs", "pending requests"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("watchdog report missing %q:\n%s", want, msg)
		}
	}
	if wd.Deadline != sim.Time(sim.Millisecond) {
		t.Fatalf("deadline %v, want 1ms", wd.Deadline)
	}
}
