package mpi

import (
	"fmt"
	"sort"
)

// Comm is a communicator: an ordered group of global ranks. Comm rank i is
// the i-th entry of the group. Communicators are immutable; build them
// with World.NewComm or the splitting helpers.
//
//dpml:owner shared
type Comm struct {
	w     *World
	id    int
	ranks []int       // comm rank -> global rank
	index map[int]int // global rank -> comm rank
	seq   []uint32    // per comm-rank collective sequence number
}

// NewComm builds a communicator from global ranks (in comm-rank order).
// Ranks must be distinct and valid. Safe to call during the run from any
// rank (id allocation is locked); ids are unique but carry no meaning
// beyond matching, so their allocation order cannot affect results.
func (w *World) NewComm(ranks []int) *Comm {
	if len(ranks) == 0 {
		panic("mpi: empty communicator")
	}
	w.mu.Lock()
	id := w.nextCID
	w.nextCID++
	w.mu.Unlock()
	c := &Comm{
		w:     w,
		id:    id,
		ranks: append([]int(nil), ranks...),
		index: make(map[int]int, len(ranks)),
		seq:   make([]uint32, len(ranks)),
	}
	for i, g := range c.ranks {
		if g < 0 || g >= len(w.ranks) {
			panic(fmt.Sprintf("mpi: communicator rank %d out of range", g))
		}
		if _, dup := c.index[g]; dup {
			panic(fmt.Sprintf("mpi: duplicate rank %d in communicator", g))
		}
		c.index[g] = i
	}
	return c
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return len(c.ranks) }

// Global returns the global rank of comm rank i.
func (c *Comm) Global(i int) int { return c.ranks[i] }

// RankOf returns r's comm rank, or -1 if r is not a member.
func (c *Comm) RankOf(r *Rank) int {
	if i, ok := c.index[r.rank]; ok {
		return i
	}
	return -1
}

// Contains reports whether the global rank is a member.
func (c *Comm) Contains(global int) bool {
	_, ok := c.index[global]
	return ok
}

// mustRank returns r's comm rank, panicking when r is not a member —
// collective calls on a communicator one is not part of are programming
// errors.
func (c *Comm) mustRank(r *Rank) int {
	i := c.RankOf(r)
	if i < 0 {
		panic(fmt.Sprintf("mpi: rank %d is not in communicator %d", r.rank, c.id))
	}
	return i
}

// Collective tag management: each collective invocation on a communicator
// consumes one sequence number per participating rank. Because every rank
// calls the same collectives in the same order (MPI semantics), the
// per-rank counters stay in lockstep and the derived tag space never
// collides between consecutive operations, even with messages in flight.
const (
	// userTagLimit is the largest tag application point-to-point
	// messages may use; collectives tag above it.
	userTagLimit = 1 << 20
	// collSlots is how many distinct tags one collective invocation may
	// use internally (rounds x sub-channels). Algorithms whose round
	// count can exceed it (ring, pairwise exchange on very large
	// communicators) wrap their round tags with wrapTag.
	collSlots = 1 << 14
	// collWindow bounds how many consecutive collectives can have
	// messages in flight simultaneously before tags wrap.
	collWindow = 1 << 10
)

// CollTagBase allocates the tag window for the calling rank's next
// collective on this communicator. Built-in collectives call it once per
// invocation; exported so algorithm extensions can claim a window of
// their own (the window spans collSlots tags).
func (c *Comm) CollTagBase(r *Rank) int {
	i := c.mustRank(r)
	s := c.seq[i]
	c.seq[i]++
	return userTagLimit + int(s%collWindow)*collSlots
}

// SplitByNode partitions the world communicator into one communicator per
// node, returning them indexed by node. Within each, comm rank order
// follows local rank order (the "shared memory communicator" of
// Section 2.1).
func (w *World) SplitByNode() []*Comm {
	out := make([]*Comm, w.Job.NodesUsed)
	for n := range out {
		out[n] = w.NewComm(w.Job.RanksOnNode(n))
	}
	return out
}

// LeaderComm builds the communicator of the local-rank-localIdx process of
// every node (the "leader communicator" containing one same-index leader
// per node).
func (w *World) LeaderComm(localIdx int) *Comm {
	if localIdx < 0 || localIdx >= w.Job.PPN {
		panic(fmt.Sprintf("mpi: leader index %d out of range [0,%d)", localIdx, w.Job.PPN))
	}
	ranks := make([]int, w.Job.NodesUsed)
	for n := range ranks {
		ranks[n] = n*w.Job.PPN + localIdx
	}
	return w.NewComm(ranks)
}

// InternComm returns the shared communicator for the given global-rank
// group (in comm-rank order). Unlike NewComm, every rank deriving the
// same group gets the *same* Comm object, so their messages match —
// the seam algorithm extensions (grouped and arrival-ordered designs)
// use to build sub-communicators mid-run without a collective exchange.
// All members must derive the group from collectively consistent state.
func (w *World) InternComm(ranks []int) *Comm { return w.internComm(ranks) }

// internComm returns the communicator for the given global-rank group,
// creating it on first use. Interning guarantees that every rank
// deriving the same group (e.g. through Split) shares one communicator
// object, so their messages match.
func (w *World) internComm(ranks []int) *Comm {
	key := fmt.Sprint(ranks)
	w.mu.Lock()
	if w.commCache == nil {
		w.commCache = make(map[string]*Comm)
	}
	if c, ok := w.commCache[key]; ok {
		w.mu.Unlock()
		return c
	}
	w.mu.Unlock()
	// NewComm takes the lock itself; build outside it, then publish (the
	// first of two racing builders wins, so every member still shares one
	// object — they derive identical groups, hence identical keys).
	c := w.NewComm(ranks)
	w.mu.Lock()
	if prior, ok := w.commCache[key]; ok {
		c = prior
	} else {
		w.commCache[key] = c
	}
	w.mu.Unlock()
	return c
}

// Split partitions the communicator like MPI_Comm_split: every member
// calls it with its own color and key; ranks sharing a color form a new
// communicator ordered by (key, parent comm rank). The exchange of
// (color, key) pairs is a real allgather over the parent communicator
// (as in MPI implementations), so Split has collective cost. A negative
// color (MPI_UNDEFINED) yields nil.
func (c *Comm) Split(r *Rank, color, key int) *Comm {
	c.mustRank(r)
	p := c.Size()
	mine := NewVector(Int64, 2)
	mine.Set(0, float64(color))
	mine.Set(1, float64(key))
	all := NewVector(Int64, 2*p)
	r.Allgather(c, mine, all)
	if color < 0 {
		return nil
	}
	type member struct{ key, commRank int }
	var group []member
	for i := 0; i < p; i++ {
		if int(all.At(2*i)) == color {
			group = append(group, member{int(all.At(2*i + 1)), i})
		}
	}
	sort.Slice(group, func(a, b int) bool {
		if group[a].key != group[b].key {
			return group[a].key < group[b].key
		}
		return group[a].commRank < group[b].commRank
	})
	ranks := make([]int, len(group))
	for i, m := range group {
		ranks[i] = c.Global(m.commRank)
	}
	return c.w.internComm(ranks)
}
