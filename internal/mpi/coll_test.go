package mpi

import (
	"fmt"
	"testing"

	"dpml/internal/sim"
	"dpml/internal/topology"
)

func TestBarrierSynchronizes(t *testing.T) {
	for _, procs := range []struct{ nodes, ppn int }{{1, 1}, {2, 2}, {3, 3}, {4, 7}} {
		w := smallWorld(t, topology.ClusterB(), procs.nodes, procs.ppn, Config{})
		n := w.Job.NumProcs()
		after := make([]sim.Time, n)
		err := w.Run(func(r *Rank) error {
			// Stagger arrivals; everyone must leave at or after the last
			// arrival.
			r.Proc().Sleep(sim.Duration(r.Rank()) * 10 * sim.Microsecond)
			r.Barrier(w.CommWorld())
			after[r.Rank()] = r.Now()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		lastArrival := sim.Time(sim.Duration(n-1) * 10 * sim.Microsecond)
		for i, ts := range after {
			if ts < lastArrival {
				t.Fatalf("%d procs: rank %d left barrier at %v before last arrival %v",
					n, i, ts, lastArrival)
			}
		}
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	for _, root := range []int{0, 1, 5} {
		w := smallWorld(t, topology.ClusterB(), 3, 2, Config{})
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			v := NewVector(Float64, 64)
			if c.RankOf(r) == root {
				v.Fill(42)
			}
			r.Bcast(c, root, v)
			if v.At(63) != 42 {
				t.Errorf("root %d: rank %d got %v", root, r.Rank(), v.At(63))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBcastBadRootPanics(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("Bcast with bad root did not panic")
			}
		}()
		r.Bcast(w.CommWorld(), 7, NewVector(Float64, 1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 3, Config{})
	const root = 2
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Int64, 4)
		v.Fill(float64(r.Rank()))
		out := NewVector(Int64, 4*c.Size())
		r.Gather(c, root, v, out)
		if c.RankOf(r) == root {
			for i := 0; i < c.Size(); i++ {
				if out.At(i*4+3) != float64(i) {
					t.Errorf("gather block %d = %v", i, out.At(i*4+3))
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, size := range []struct{ nodes, ppn int }{{1, 1}, {2, 1}, {3, 2}, {2, 4}} {
		w := smallWorld(t, topology.ClusterB(), size.nodes, size.ppn, Config{})
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			v := NewVector(Float64, 3)
			v.Fill(float64(r.Rank() + 1))
			out := NewVector(Float64, 3*c.Size())
			r.Allgather(c, v, out)
			for i := 0; i < c.Size(); i++ {
				if out.At(i*3) != float64(i+1) {
					t.Errorf("p=%d: allgather block %d = %v, want %d",
						c.Size(), i, out.At(i*3), i+1)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReduceScatterBlock(t *testing.T) {
	for _, size := range []struct{ nodes, ppn int }{{2, 1}, {2, 2}, {5, 1}} {
		w := smallWorld(t, topology.ClusterB(), size.nodes, size.ppn, Config{})
		p := w.Job.NumProcs()
		const bl = 4
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			in := NewVector(Int64, p*bl)
			for i := 0; i < in.Len(); i++ {
				in.Set(i, float64((r.Rank()+1)*(i+1)))
			}
			out := NewVector(Int64, bl)
			r.ReduceScatterBlock(c, Sum, in, out)
			me := c.RankOf(r)
			// Expected: sum over ranks k of (k+1)*(me*bl+j+1).
			sumRanks := p * (p + 1) / 2
			for j := 0; j < bl; j++ {
				want := float64(sumRanks * (me*bl + j + 1))
				if out.At(j) != want {
					t.Errorf("p=%d rank %d elem %d: got %v want %v", p, me, j, out.At(j), want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSplitByNodeAndLeaderComm(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 3, 4, Config{})
	nodeComms := w.SplitByNode()
	if len(nodeComms) != 3 {
		t.Fatalf("got %d node comms", len(nodeComms))
	}
	for n, c := range nodeComms {
		if c.Size() != 4 {
			t.Fatalf("node comm %d size %d", n, c.Size())
		}
		for i := 0; i < 4; i++ {
			if c.Global(i) != n*4+i {
				t.Fatalf("node comm %d rank %d = global %d", n, i, c.Global(i))
			}
		}
	}
	lc := w.LeaderComm(2)
	if lc.Size() != 3 {
		t.Fatalf("leader comm size %d", lc.Size())
	}
	for n := 0; n < 3; n++ {
		if lc.Global(n) != n*4+2 {
			t.Fatalf("leader comm node %d = global %d", n, lc.Global(n))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LeaderComm(ppn) must panic")
		}
	}()
	w.LeaderComm(4)
}

func TestCommValidation(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 2, Config{})
	cases := []func(){
		func() { w.NewComm(nil) },
		func() { w.NewComm([]int{0, 0}) },
		func() { w.NewComm([]int{0, 99}) },
		func() { w.NewComm([]int{-1}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
	c := w.NewComm([]int{3, 1})
	if c.Global(0) != 3 || c.Global(1) != 1 {
		t.Fatal("comm rank order not preserved")
	}
	if !c.Contains(1) || c.Contains(0) {
		t.Fatal("Contains wrong")
	}
	if c.RankOf(w.Rank(1)) != 1 || c.RankOf(w.Rank(0)) != -1 {
		t.Fatal("RankOf wrong")
	}
}

func TestCollectiveOnSubcommunicator(t *testing.T) {
	// Only members participate; non-members do unrelated work.
	w := smallWorld(t, topology.ClusterB(), 2, 2, Config{})
	sub := w.NewComm([]int{1, 3})
	err := w.Run(func(r *Rank) error {
		if sub.RankOf(r) < 0 {
			return nil
		}
		v := NewVector(Int64, 8)
		v.Fill(float64(r.Rank()))
		r.Allreduce(sub, AlgRecursiveDoubling, Sum, v)
		if v.At(0) != 4 { // 1 + 3
			t.Errorf("subcomm allreduce got %v, want 4", v.At(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyBackToBackCollectivesTagSafety(t *testing.T) {
	// More consecutive collectives than the tag window would naively
	// allow; sequence-number recycling must stay correct.
	w := smallWorld(t, topology.ClusterB(), 2, 2, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		for iter := 0; iter < 50; iter++ {
			v := NewVector(Int64, 16)
			v.Fill(float64(r.Rank() + iter))
			r.Allreduce(c, AlgRecursiveDoubling, Sum, v)
			want := float64(4*iter + 6) // sum of (rank+iter) over ranks 0..3
			if v.At(0) != want {
				return fmt.Errorf("iter %d: got %v, want %v", iter, v.At(0), want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	for _, shape := range []struct{ nodes, ppn int }{{2, 1}, {2, 2}, {3, 2}, {5, 1}} {
		w := smallWorld(t, topology.ClusterB(), shape.nodes, shape.ppn, Config{})
		p := w.Job.NumProcs()
		const bl = 3
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			me := c.RankOf(r)
			in := NewVector(Int64, p*bl)
			for dst := 0; dst < p; dst++ {
				for j := 0; j < bl; j++ {
					in.Set(dst*bl+j, float64(1000*me+10*dst+j))
				}
			}
			out := NewVector(Int64, p*bl)
			r.Alltoall(c, in, out)
			for src := 0; src < p; src++ {
				for j := 0; j < bl; j++ {
					want := float64(1000*src + 10*me + j)
					if out.At(src*bl+j) != want {
						t.Errorf("p=%d rank %d block %d elem %d: got %v want %v",
							p, me, src, j, out.At(src*bl+j), want)
						return nil
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAlltoallShapePanics(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("bad Alltoall shape accepted")
			}
		}()
		r.Alltoall(w.CommWorld(), NewVector(Int64, 3), NewVector(Int64, 3))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSplit(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 3, 2, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		me := c.RankOf(r)
		// Even/odd split, reverse-rank key ordering.
		sub := c.Split(r, me%2, -me)
		if sub == nil {
			t.Errorf("rank %d got nil comm", me)
			return nil
		}
		if sub.Size() != 3 {
			t.Errorf("rank %d: sub size %d, want 3", me, sub.Size())
		}
		// Reverse key order: highest parent rank first.
		want := []int{4, 2, 0}
		if me%2 == 1 {
			want = []int{5, 3, 1}
		}
		for i, g := range want {
			if sub.Global(i) != g {
				t.Errorf("rank %d: sub[%d] = %d, want %d", me, i, sub.Global(i), g)
			}
		}
		// The sub-communicator must actually work for collectives:
		// interning means all members share one comm object.
		v := NewVector(Int64, 1)
		v.Fill(float64(me))
		r.Allreduce(sub, AlgRecursiveDoubling, Sum, v)
		wantSum := 0.0
		for _, g := range want {
			wantSum += float64(g)
		}
		if v.At(0) != wantSum {
			t.Errorf("rank %d: allreduce on split = %v, want %v", me, v.At(0), wantSum)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommSplitUndefinedColor(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 2, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		me := c.RankOf(r)
		color := 0
		if me == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub := c.Split(r, color, me)
		if me == 3 {
			if sub != nil {
				t.Error("undefined color must yield nil")
			}
			return nil
		}
		if sub == nil || sub.Size() != 3 {
			t.Errorf("rank %d: bad sub comm", me)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
