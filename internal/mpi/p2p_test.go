package mpi

import (
	"testing"

	"dpml/internal/sim"
	"dpml/internal/topology"
)

// smallWorld builds a world on a trimmed cluster for pt2pt tests.
func smallWorld(t *testing.T, cluster *topology.Cluster, nodes, ppn int, cfg Config) *World {
	t.Helper()
	job, err := topology.NewJob(cluster, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return NewWorld(job, cfg)
}

func TestSendRecvInterNodeEager(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	var got float64
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Float64, 16)
		if r.Rank() == 0 {
			v.Fill(3.5)
			r.Send(c, 1, 7, v)
		} else {
			r.Recv(c, 0, 7, v)
			got = v.At(15)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.5 {
		t.Fatalf("received %v, want 3.5", got)
	}
	// Latency sanity: at least overhead + wire, far less than a second.
	net := w.Job.Cluster.Net
	min := net.SenderOverhead + net.WireLatency + net.ReceiverOverhead
	if sim.Duration(w.Now()) < min {
		t.Fatalf("eager latency %v below floor %v", w.Now(), min)
	}
}

func TestSendRecvInterNodeRendezvous(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	const n = 1 << 20 // 8 MB of float64 >> eager threshold
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Float64, n)
		if r.Rank() == 0 {
			v.Fill(1)
			r.Send(c, 1, 0, v)
		} else {
			r.Recv(c, 0, 0, v)
			if v.At(n-1) != 1 {
				t.Error("payload corrupted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rendezvous must include handshake RTT plus the flow time.
	net := w.Job.Cluster.Net
	flowTime := sim.TransferTime(8*n, net.PerFlowCap)
	min := net.SenderOverhead + 2*net.WireLatency + flowTime
	if sim.Duration(w.Now()) < min {
		t.Fatalf("rendezvous latency %v below floor %v", w.Now(), min)
	}
}

func TestRendezvousSlowerThanEagerForSameBytes(t *testing.T) {
	// Force the same message through both protocols via the threshold
	// override: rendezvous must pay the extra handshake.
	run := func(threshold int) sim.Time {
		w := smallWorld(t, topology.ClusterB(), 2, 1, Config{EagerThreshold: threshold})
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			v := NewVector(Float64, 512)
			if r.Rank() == 0 {
				r.Send(c, 1, 0, v)
			} else {
				r.Recv(c, 0, 0, v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Now()
	}
	eager := run(1 << 20)
	rendezvous := run(1)
	if rendezvous <= eager {
		t.Fatalf("rendezvous (%v) should be slower than eager (%v)", rendezvous, eager)
	}
}

func TestSendRecvIntraNode(t *testing.T) {
	w := smallWorld(t, topology.ClusterA(), 1, 4, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Int64, 100)
		if r.Rank() == 0 {
			v.Fill(9)
			r.Send(c, 1, 0, v)
		} else if r.Rank() == 1 {
			r.Recv(c, 0, 0, v)
			if v.At(0) != 9 {
				t.Error("intra-node payload corrupted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Net.Stats.Messages != 0 {
		t.Fatalf("intra-node send crossed the network: %d msgs", w.Net.Stats.Messages)
	}
	if w.Mem[0].Stats.Copies == 0 {
		t.Fatal("intra-node send did not use the memory channel")
	}
}

func TestCrossSocketCopyCostsMore(t *testing.T) {
	// Ranks 0 and 13 share socket 0 at ppn=28 on cluster A; 0 and 14 do
	// not. The cross-socket message must take longer.
	run := func(dst int) sim.Time {
		w := smallWorld(t, topology.ClusterA(), 1, 28, Config{})
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			v := NewVector(Float64, 1<<14)
			switch r.Rank() {
			case 0:
				r.Send(c, dst, 0, v)
			case dst:
				r.Recv(c, 0, 0, v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Now()
	}
	same := run(13)
	cross := run(14)
	if cross <= same {
		t.Fatalf("cross-socket (%v) should exceed intra-socket (%v)", cross, same)
	}
}

func TestUnexpectedMessageThenRecv(t *testing.T) {
	// Send arrives before the receive is posted: must be buffered and
	// matched later.
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Float64, 8)
		if r.Rank() == 0 {
			v.Fill(5)
			r.Send(c, 1, 3, v)
		} else {
			r.Proc().Sleep(100 * sim.Microsecond) // ensure arrival first
			r.Recv(c, 0, 3, v)
			if v.At(0) != 5 {
				t.Error("unexpected-path payload corrupted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingFIFOPerKey(t *testing.T) {
	// Two same-tag messages must arrive in send order.
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		if r.Rank() == 0 {
			a := NewVector(Int32, 1)
			a.Fill(1)
			r.Send(c, 1, 0, a)
			a.Fill(2)
			r.Send(c, 1, 0, a)
		} else {
			x := NewVector(Int32, 1)
			y := NewVector(Int32, 1)
			r.Recv(c, 0, 0, x)
			r.Recv(c, 0, 0, y)
			if x.At(0) != 1 || y.At(0) != 2 {
				t.Errorf("got (%v,%v), want (1,2)", x.At(0), y.At(0))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsSeparateMessages(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		if r.Rank() == 0 {
			a := NewVector(Int32, 1)
			a.Fill(10)
			r.Send(c, 1, 1, a)
			a.Fill(20)
			r.Send(c, 1, 2, a)
		} else {
			x := NewVector(Int32, 1)
			// Receive tag 2 first even though tag 1 was sent first.
			r.Recv(c, 0, 2, x)
			if x.At(0) != 20 {
				t.Errorf("tag 2 got %v", x.At(0))
			}
			r.Recv(c, 0, 1, x)
			if x.At(0) != 10 {
				t.Errorf("tag 1 got %v", x.At(0))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 2, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		n := c.Size()
		me := r.Rank()
		outs := make([]*Vector, n)
		ins := make([]*Vector, n)
		var reqs []*Request
		for peer := 0; peer < n; peer++ {
			if peer == me {
				continue
			}
			outs[peer] = NewVector(Float64, 32)
			outs[peer].Fill(float64(me*100 + peer))
			ins[peer] = NewVector(Float64, 32)
			reqs = append(reqs, r.Irecv(c, peer, 5, ins[peer]))
			reqs = append(reqs, r.Isend(c, peer, 5, outs[peer]))
		}
		r.WaitAll(reqs...)
		for peer := 0; peer < n; peer++ {
			if peer == me {
				continue
			}
			if ins[peer].At(0) != float64(peer*100+me) {
				t.Errorf("rank %d from %d: got %v", me, peer, ins[peer].At(0))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAny(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 3, 1, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		switch r.Rank() {
		case 1:
			r.Proc().Sleep(50 * sim.Microsecond)
			v := NewVector(Int32, 1)
			v.Fill(1)
			r.Send(c, 0, 0, v)
		case 2:
			v := NewVector(Int32, 1)
			v.Fill(2)
			r.Send(c, 0, 0, v)
		case 0:
			a := NewVector(Int32, 1)
			b := NewVector(Int32, 1)
			reqs := []*Request{r.Irecv(c, 1, 0, a), r.Irecv(c, 2, 0, b)}
			first := r.WaitAny(reqs)
			if first != 1 {
				t.Errorf("WaitAny returned %d, want 1 (rank 2 sends immediately)", first)
			}
			reqs[first] = nil
			second := r.WaitAny(reqs)
			if second != 0 {
				t.Errorf("second WaitAny returned %d, want 0", second)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 1, 1, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Float64, 4)
		v.Fill(8)
		r.Send(c, 0, 0, v)
		got := NewVector(Float64, 4)
		r.Recv(c, 0, 0, got)
		if got.At(0) != 8 {
			t.Errorf("self-send got %v", got.At(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockOnMissingSendReported(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		if r.Rank() == 1 {
			v := NewVector(Float64, 1)
			r.Recv(w.CommWorld(), 0, 0, v) // never sent
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestP2PValidation(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		if r.Rank() != 0 {
			return nil
		}
		c := w.CommWorld()
		v := NewVector(Float64, 1)
		for i, bad := range []func(){
			func() { r.Send(nil, 1, 0, v) },
			func() { r.Send(c, 9, 0, v) },
			func() { r.Send(c, -1, 0, v) },
			func() { r.Send(c, 1, -2, v) },
			func() { r.Send(c, 1, 0, nil) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("case %d: no panic", i)
					}
				}()
				bad()
			}()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPhantomPayloadSameTiming(t *testing.T) {
	// A phantom transfer must take exactly as long as a real one.
	run := func(phantom bool) sim.Time {
		w := smallWorld(t, topology.ClusterC(), 2, 1, Config{})
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			var v *Vector
			if phantom {
				v = NewPhantom(Float32, 4096)
			} else {
				v = NewVector(Float32, 4096)
			}
			if r.Rank() == 0 {
				r.Send(c, 1, 0, v)
			} else {
				r.Recv(c, 0, 0, v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Now()
	}
	if real, ph := run(false), run(true); real != ph {
		t.Fatalf("real %v != phantom %v", real, ph)
	}
}
