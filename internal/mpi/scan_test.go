package mpi

import (
	"testing"

	"dpml/internal/topology"
)

func TestScanInclusive(t *testing.T) {
	for _, shape := range []struct{ nodes, ppn int }{{1, 1}, {2, 1}, {2, 2}, {3, 2}, {5, 1}, {2, 4}} {
		w := smallWorld(t, topology.ClusterB(), shape.nodes, shape.ppn, Config{})
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			me := c.RankOf(r)
			v := NewVector(Int64, 5)
			for i := 0; i < v.Len(); i++ {
				v.Set(i, float64((me+1)*(i+1)))
			}
			r.Scan(c, Sum, v)
			// prefix sum over ranks 0..me of (k+1)*(i+1).
			pre := (me + 1) * (me + 2) / 2
			for i := 0; i < v.Len(); i++ {
				want := float64(pre * (i + 1))
				if v.At(i) != want {
					t.Errorf("p=%d rank %d elem %d: got %v want %v",
						c.Size(), me, i, v.At(i), want)
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestScanMax(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 4, 1, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		me := c.RankOf(r)
		v := NewVector(Float64, 1)
		// Values 3, 1, 4, 1 -> running max 3, 3, 4, 4.
		vals := []float64{3, 1, 4, 1}
		want := []float64{3, 3, 4, 4}
		v.Set(0, vals[me])
		r.Scan(c, Max, v)
		if v.At(0) != want[me] {
			t.Errorf("rank %d scan-max = %v, want %v", me, v.At(0), want[me])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
