package mpi

import (
	"testing"

	"dpml/internal/topology"
)

// TestTransitPoolReusesEagerClones sends a sequence of same-shape eager
// messages and checks the free list actually recycles: after the first
// send/recv pair retires its clone, every later send should draw from
// the pool, so at most one clone per shape is ever allocated.
func TestTransitPoolReusesEagerClones(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 1, 2, Config{})
	const rounds = 16
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Float64, 8)
		for i := 0; i < rounds; i++ {
			if r.Rank() == 0 {
				v.Fill(float64(i))
				r.Send(c, 1, 0, v)
			} else {
				r.Recv(c, 0, 0, v)
				if got := v.At(0); got != float64(i) {
					t.Errorf("round %d: received %v", i, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	key := vecShape{dtype: Float64, n: 8}
	free := w.trans[0][key] // intra-node traffic: node 0's pool
	if len(free) != 1 {
		t.Fatalf("free list holds %d clones after %d sequential sends, want 1 (reuse)", len(free), rounds)
	}
}

// TestTransitPoolIgnoresRendezvous checks that a rendezvous transfer —
// whose envelope carries the sender's own buffer, not a clone — leaves
// nothing in the pool and does not capture the sender's storage.
func TestTransitPoolIgnoresRendezvous(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	const n = 1 << 20 // 8 MB of float64 >> eager threshold
	var sent *Vector
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Float64, n)
		if r.Rank() == 0 {
			v.Fill(7)
			sent = v
			r.Send(c, 1, 0, v)
		} else {
			r.Recv(c, 0, 0, v)
			if v.At(n-1) != 7 {
				t.Errorf("received %v, want 7", v.At(n-1))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for node, pool := range w.trans {
		for _, free := range pool {
			for _, f := range free {
				if f == sent {
					t.Fatal("pool captured the rendezvous sender's buffer")
				}
			}
		}
		if free := pool[vecShape{dtype: Float64, n: n}]; len(free) != 0 {
			t.Fatalf("rendezvous transfer left %d vectors in node %d's pool, want 0", len(free), node)
		}
	}
}

// TestTransitPoolCloneIsIndependent guards the aliasing hazard: a pooled
// clone handed to a new send must not share storage with the user buffer
// it copies, so mutating the source after Isend cannot corrupt the
// in-flight payload.
func TestTransitPoolCloneIsIndependent(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 1, 2, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		if r.Rank() == 0 {
			v := NewVector(Float64, 4)
			// Prime the pool with one retired clone, then check the next
			// send's payload survives the sender scribbling on v.
			v.Fill(1)
			r.Send(c, 1, 0, v)
			v.Fill(2)
			req := r.Isend(c, 1, 0, v)
			v.Fill(99)
			r.Wait(req)
		} else {
			v := NewVector(Float64, 4)
			r.Recv(c, 0, 0, v)
			r.Recv(c, 0, 0, v)
			if got := v.At(0); got != 2 {
				t.Errorf("in-flight payload read %v, want 2 (sender overwrote its buffer)", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
