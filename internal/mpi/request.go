package mpi

import (
	"fmt"

	"dpml/internal/sim"
	"dpml/internal/trace"
)

// Request tracks a non-blocking operation. Requests belong to the rank
// that created them and may only be waited on by that rank (MPI
// semantics), so all state is owned by that rank's node LP.
//
//dpml:owner node
type Request struct {
	owner *Rank
	kind  string // "send" or "recv", for diagnostics
	key   msgKey
	vec   *Vector
	done  bool
	start sim.Time
	peer  int // global rank of the other side (-1 if unknown)
}

func newRequest(owner *Rank, kind string, key msgKey, vec *Vector) *Request {
	return &Request{
		owner: owner, kind: kind, key: key, vec: vec,
		start: owner.k.Now(), peer: -1,
	}
}

// Done reports whether the operation has completed.
func (q *Request) Done() bool { return q.done }

// complete marks the request done and wakes the owner if it is waiting on
// any of its requests. Safe to call from event callbacks.
func (q *Request) complete() {
	if q.done {
		panic(fmt.Sprintf("mpi: double completion of %s request %+v", q.kind, q.key))
	}
	q.done = true
	if rec := q.owner.w.cfg.Trace; rec != nil {
		kind, label := trace.KindSend, fmt.Sprintf("->%d", q.peer)
		if q.kind == "recv" {
			kind, label = trace.KindRecv, fmt.Sprintf("<-%d", q.peer)
		}
		rec.Add(trace.Event{
			Rank: q.owner.rank, Kind: kind, Label: label,
			Start: q.start, End: q.owner.k.Now(), Bytes: q.vec.Bytes(),
		})
	}
	q.owner.anyDone.FireAll()
}

// Wait blocks the owning rank until the request completes.
func (r *Rank) Wait(q *Request) {
	if q.owner != r {
		panic("mpi: Wait on another rank's request")
	}
	for !q.done {
		r.anyDone.Wait(r.proc, fmt.Sprintf("wait %s %+v", q.kind, q.key))
	}
}

// WaitAll blocks until every request completes.
func (r *Rank) WaitAll(reqs ...*Request) {
	for _, q := range reqs {
		r.Wait(q)
	}
}

// WaitAny blocks until at least one incomplete request in reqs completes
// and returns its index. Already-complete requests are returned
// immediately (lowest index first). Nil entries are skipped; all-nil or
// empty input panics, as it would deadlock.
func (r *Rank) WaitAny(reqs []*Request) int {
	for {
		live := false
		for i, q := range reqs {
			if q == nil {
				continue
			}
			if q.owner != r {
				panic("mpi: WaitAny on another rank's request")
			}
			if q.done {
				return i
			}
			live = true
		}
		if !live {
			panic("mpi: WaitAny with no live requests")
		}
		r.anyDone.Wait(r.proc, "waitany")
	}
}
