package mpi

import (
	"fmt"

	"dpml/internal/sim"
)

// msgKey identifies a matching bucket: messages match on (communicator,
// source global rank, tag), FIFO within a bucket (MPI's non-overtaking
// rule).
type msgKey struct {
	comm int
	src  int
	tag  int
}

// envelope is one in-flight message from the receiver's perspective: for
// eager sends it arrives carrying the payload; for rendezvous it is the
// RTS, and the payload moves only after the receiver matches it.
// Matching state lives on the receiver's node LP.
//
//dpml:owner node
type envelope struct {
	key          msgKey
	vec          *Vector
	rendezvous   bool
	sendReq      *Request // rendezvous: completes when the payload lands
	srcRank      *Rank
	recvOverhead sim.Duration // receiver CPU cost charged before completion
	arrived      sim.Time     // instant deliver ran; keys same-instant match shuffling
}

// Isend starts a non-blocking send of vec to comm rank dst with the given
// tag. The returned request completes when the send buffer is reusable:
// immediately after local processing for eager messages, at payload
// delivery for rendezvous messages. Intra-node sends perform the
// shared-memory copy synchronously (the sending core does the memcpy).
func (r *Rank) Isend(c *Comm, dst, tag int, vec *Vector) *Request {
	r.checkP2P(c, dst, tag, vec)
	dstGlobal := c.Global(dst)
	key := msgKey{comm: c.id, src: r.rank, tag: tag}
	req := newRequest(r, "send", key, vec)
	req.peer = dstGlobal
	dstRank := r.w.ranks[dstGlobal]
	prof := r.w.Job.Cluster.Net

	if r.place.Node == dstRank.place.Node {
		// Intra-node: one shared-memory copy by the sender, then the
		// message is visible to the receiver.
		cross := r.place.Socket != dstRank.place.Socket
		r.MemCopy(cross, vec.Bytes())
		dstRank.deliver(&envelope{key: key, vec: r.w.transitClone(r.place.Node, vec), srcRank: r})
		req.complete()
		return req
	}

	if vec.Bytes() <= r.w.EagerThreshold() {
		// Eager: pay CPU overhead and the NIC injection slot, launch the
		// wire transfer, and consider the buffer reusable at once.
		r.proc.Sleep(r.w.stretch(r, prof.SenderOverhead))
		if d := r.ep.InjectDelay(); d > 0 {
			r.proc.Sleep(d)
		}
		env := &envelope{key: key, vec: r.w.transitClone(r.place.Node, vec), srcRank: r, recvOverhead: prof.ReceiverOverhead + r.jitter()}
		r.w.Net.StartTransfer(r.ep, dstRank.ep, int64(vec.Bytes()), func() { dstRank.deliver(env) })
		req.complete()
		return req
	}

	// Rendezvous: an RTS control message travels to the receiver; the
	// payload moves only after the receiver matches and returns a CTS.
	r.proc.Sleep(r.w.stretch(r, prof.SenderOverhead))
	env := &envelope{
		key: key, vec: vec, rendezvous: true, sendReq: req, srcRank: r,
		recvOverhead: prof.ReceiverOverhead + r.jitter(),
	}
	// The RTS fires in the receiver's node context one wire latency out
	// (the lookahead bound makes this legal under any sharding).
	r.k.AfterOn(dstRank.place.Node, prof.WireLatency, func() { dstRank.deliver(env) })
	return req
}

// Irecv posts a non-blocking receive into vec from comm rank src with the
// given tag. The request completes once the payload has landed and the
// receiver-side overhead has elapsed.
func (r *Rank) Irecv(c *Comm, src, tag int, vec *Vector) *Request {
	r.checkP2P(c, src, tag, vec)
	key := msgKey{comm: c.id, src: c.Global(src), tag: tag}
	req := newRequest(r, "recv", key, vec)
	req.peer = c.Global(src)
	if q := r.unexpected[key]; len(q) > 0 {
		env := q[0]
		if len(q) == 1 {
			delete(r.unexpected, key)
		} else {
			r.unexpected[key] = q[1:]
		}
		if env.rendezvous {
			r.startRendezvous(env, req)
		} else {
			r.completeRecv(env, req)
		}
		return req
	}
	r.postRecv(key, req)
	return req
}

// Send is the blocking send: Isend followed by Wait.
func (r *Rank) Send(c *Comm, dst, tag int, vec *Vector) {
	r.Wait(r.Isend(c, dst, tag, vec))
}

// Recv is the blocking receive: Irecv followed by Wait.
func (r *Rank) Recv(c *Comm, src, tag int, vec *Vector) {
	r.Wait(r.Irecv(c, src, tag, vec))
}

// SendRecv posts the receive, runs the send, and waits for both — the
// deadlock-free exchange used by pairwise algorithms.
func (r *Rank) SendRecv(c *Comm, dst, sendTag int, sendVec *Vector, src, recvTag int, recvVec *Vector) {
	rq := r.Irecv(c, src, recvTag, recvVec)
	sq := r.Isend(c, dst, sendTag, sendVec)
	r.WaitAll(rq, sq)
}

// deliver hands an arriving envelope (eager payload or rendezvous RTS) to
// this rank: match a posted receive or park it as unexpected. Runs in
// simulation context (sender proc or event callback).
func (r *Rank) deliver(env *envelope) {
	if q := r.posted[env.key]; len(q) > 0 {
		req := q[0]
		if len(q) == 1 {
			delete(r.posted, env.key)
		} else {
			r.posted[env.key] = q[1:]
		}
		if env.rendezvous {
			r.startRendezvous(env, req)
		} else {
			r.completeRecv(env, req)
		}
		return
	}
	r.parkUnexpected(env)
}

// completeRecv copies the payload into the posted buffer and completes the
// request after the receiver-side overhead.
func (r *Rank) completeRecv(env *envelope, req *Request) {
	if req.vec.Bytes() != env.vec.Bytes() {
		panic(fmt.Sprintf("mpi: recv buffer %d bytes for %d-byte message (key %+v)",
			req.vec.Bytes(), env.vec.Bytes(), env.key))
	}
	req.vec.CopyFrom(env.vec)
	if !env.rendezvous {
		// Eager payloads ride in a transit clone that dies here; recycle
		// it into this node's pool (it was drawn from the sender's).
		// Rendezvous envelopes carry the sender's own buffer, which the
		// pool must never capture.
		r.w.transitRelease(r.place.Node, env.vec)
	}
	env.vec = nil
	if env.recvOverhead > 0 {
		// The receiver's straggler factor applies at landing time, not at
		// the instant the sender stamped the overhead.
		r.k.After(r.w.stretch(r, env.recvOverhead), req.complete)
	} else {
		req.complete()
	}
}

// startRendezvous runs the CTS + data phase of a matched rendezvous
// message entirely in event context: CTS wire latency back to the sender
// (in the sender's node context, where its NIC injection slot is
// reserved), the payload flow, then completion of both requests — the
// receive side in the receiver's context, the send side in the sender's.
func (r *Rank) startRendezvous(env *envelope, req *Request) {
	w := r.w
	prof := w.Job.Cluster.Net
	src := env.srcRank
	r.k.AfterOn(src.place.Node, prof.WireLatency, func() { // CTS reaches the sender
		d := src.ep.InjectDelay()
		src.k.After(d, func() {
			w.Net.StartTransferNotify(src.ep, r.ep, int64(env.vec.Bytes()),
				func() { r.completeRecv(env, req) },
				env.sendReq.complete)
		})
	})
}

func (r *Rank) checkP2P(c *Comm, peer, tag int, vec *Vector) {
	if c == nil {
		panic("mpi: nil communicator")
	}
	if c.RankOf(r) < 0 {
		panic(fmt.Sprintf("mpi: rank %d not in communicator %d", r.rank, c.id))
	}
	if peer < 0 || peer >= c.Size() {
		panic(fmt.Sprintf("mpi: peer %d out of range [0,%d)", peer, c.Size()))
	}
	if tag < 0 {
		panic(fmt.Sprintf("mpi: negative tag %d", tag))
	}
	if vec == nil {
		panic("mpi: nil vector")
	}
}
