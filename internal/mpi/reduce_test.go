package mpi

import (
	"testing"

	"dpml/internal/topology"
)

func TestReduceCollCorrect(t *testing.T) {
	for _, tc := range []struct{ nodes, ppn, root, count int }{
		{2, 1, 0, 10},
		{3, 2, 0, 100},
		{3, 2, 5, 100}, // non-zero root
		{5, 1, 3, 33},  // non-power-of-two
		{1, 1, 0, 5},   // singleton
		{4, 2, 7, 1},
	} {
		w := smallWorld(t, topology.ClusterB(), tc.nodes, tc.ppn, Config{})
		p := w.Job.NumProcs()
		err := w.Run(func(r *Rank) error {
			v := NewVector(Int64, tc.count)
			for i := 0; i < tc.count; i++ {
				v.Set(i, float64((r.Rank()+1)*(i+1)))
			}
			r.ReduceColl(w.CommWorld(), tc.root, Sum, v)
			if r.Rank() == tc.root {
				sumRanks := p * (p + 1) / 2
				for i := 0; i < tc.count; i++ {
					if v.At(i) != float64(sumRanks*(i+1)) {
						t.Errorf("%+v: elem %d = %v, want %d", tc, i, v.At(i), sumRanks*(i+1))
						return nil
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
	}
}

func TestReduceCollBadRootPanics(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("bad root did not panic")
			}
		}()
		r.ReduceColl(w.CommWorld(), 5, Sum, NewVector(Int64, 1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterRecursiveHalving(t *testing.T) {
	for _, shape := range []struct{ nodes, ppn int }{{2, 1}, {2, 2}, {4, 2}} {
		w := smallWorld(t, topology.ClusterB(), shape.nodes, shape.ppn, Config{})
		p := w.Job.NumProcs()
		const bl = 3
		err := w.Run(func(r *Rank) error {
			in := NewVector(Int64, p*bl)
			for i := 0; i < in.Len(); i++ {
				in.Set(i, float64((r.Rank()+1)*(i+1)))
			}
			out := NewVector(Int64, bl)
			r.ReduceScatter(w.CommWorld(), Sum, in, out)
			me := w.CommWorld().RankOf(r)
			sumRanks := p * (p + 1) / 2
			for j := 0; j < bl; j++ {
				want := float64(sumRanks * (me*bl + j + 1))
				if out.At(j) != want {
					t.Errorf("p=%d rank %d elem %d: got %v want %v", p, me, j, out.At(j), want)
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestReduceScatterRejectsNonPowerOfTwo(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 3, 1, Config{})
	err := w.Run(func(r *Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("non-power-of-two size did not panic")
			}
		}()
		r.ReduceScatter(w.CommWorld(), Sum, NewVector(Int64, 3), NewVector(Int64, 1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
