package mpi

// Scan computes an inclusive prefix reduction: comm rank i ends with
// op(vec_0, ..., vec_i). The algorithm is the standard lg(p)-step
// distance-doubling scan: at distance d every rank sends its running
// partial to rank+d and folds the partial received from rank-d into both
// its result and its outgoing partial. Requires a commutative-associative
// op (all predefined ops are).
func (r *Rank) Scan(c *Comm, op *Op, vec *Vector) {
	me := c.mustRank(r)
	p := c.Size()
	base := c.CollTagBase(r)
	if p == 1 {
		return
	}
	// partial carries op(vec_{me-d+1..me}) as d grows; vec accumulates
	// the final prefix.
	partial := vec.Clone()
	tmp := vec.Clone()
	round := 0
	for d := 1; d < p; d <<= 1 {
		var sq, rq *Request
		if me+d < p {
			sq = r.Isend(c, me+d, base+round, partial)
		}
		if me-d >= 0 {
			rq = r.Irecv(c, me-d, base+round, tmp)
		}
		if sq != nil {
			r.Wait(sq)
		}
		if rq != nil {
			r.Wait(rq)
			r.Reduce(op, vec, tmp)
			r.Reduce(op, partial, tmp)
		}
		round++
	}
}
