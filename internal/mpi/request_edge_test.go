package mpi

import (
	"testing"

	"dpml/internal/topology"
)

func TestWaitOnForeignRequestPanics(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	reqs := make(chan *Request, 1)
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Float64, 1)
		switch r.Rank() {
		case 0:
			q := r.Isend(c, 1, 0, v)
			reqs <- q
		case 1:
			r.Recv(c, 0, 0, v)
			q := <-reqs
			defer func() {
				if recover() == nil {
					t.Error("Wait on foreign request did not panic")
				}
			}()
			r.Wait(q)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAnyEdgeCases(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		if r.Rank() != 0 {
			return nil
		}
		// All-nil input must panic (would deadlock otherwise).
		func() {
			defer func() {
				if recover() == nil {
					t.Error("WaitAny with no live requests did not panic")
				}
			}()
			r.WaitAny([]*Request{nil, nil})
		}()
		// Completed request returned immediately, lowest index first.
		c := w.CommWorld()
		v := NewVector(Float64, 1)
		q1 := r.Isend(c, 1, 1, v) // eager: completes inline
		q2 := r.Isend(c, 1, 2, v)
		if got := r.WaitAny([]*Request{nil, q1, q2}); got != 1 {
			t.Errorf("WaitAny = %d, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drain rank 1's unexpected messages to keep the deadlock detector
	// quiet — they were eager sends, so nothing is pending.
}

func TestRequestDoneAccessor(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Float64, 1)
		if r.Rank() == 0 {
			q := r.Isend(c, 1, 0, v)
			if !q.Done() {
				t.Error("eager Isend not complete at return")
			}
		} else {
			q := r.Irecv(c, 0, 0, v)
			r.Wait(q)
			if !q.Done() {
				t.Error("waited request not done")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLinkAccessors(t *testing.T) {
	// Exercise the rank-level accessors that tools rely on.
	w := smallWorld(t, topology.ClusterB(), 2, 2, Config{})
	err := w.Run(func(r *Rank) error {
		if r.World() != w {
			t.Error("World accessor wrong")
		}
		if r.Size() != 4 {
			t.Errorf("Size = %d", r.Size())
		}
		if r.Proc() == nil {
			t.Error("Proc nil inside Run")
		}
		if got := r.Place().Node; got != r.Rank()/2 {
			t.Errorf("Place.Node = %d for rank %d", got, r.Rank())
		}
		if !r.SameSocket(r.Rank()) {
			t.Error("rank does not share its own socket")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
