package mpi

import "fmt"

// Alltoall performs a personalized all-to-all exchange: block i of vec
// (p equal blocks) goes to comm rank i; out collects one block from each
// rank, in comm-rank order. The implementation is the pairwise-exchange
// algorithm (p-1 steps at rotating distances), the standard choice for
// long messages.
func (r *Rank) Alltoall(c *Comm, vec, out *Vector) {
	me := c.mustRank(r)
	p := c.Size()
	if vec.Len()%p != 0 || out.Len() != vec.Len() {
		panic(fmt.Sprintf("mpi: Alltoall shapes: in %d, out %d, p %d", vec.Len(), out.Len(), p))
	}
	base := c.CollTagBase(r)
	bl := vec.Len() / p
	out.Slice(me*bl, (me+1)*bl).CopyFrom(vec.Slice(me*bl, (me+1)*bl))
	for step := 1; step < p; step++ {
		dst := (me + step) % p
		src := (me - step + p) % p
		r.SendRecv(c,
			dst, wrapTag(base, step), vec.Slice(dst*bl, (dst+1)*bl),
			src, wrapTag(base, step), out.Slice(src*bl, (src+1)*bl))
	}
}
