package mpi

import "fmt"

// Barrier synchronizes the communicator with the dissemination algorithm:
// ceil(lg p) rounds of zero-byte exchanges at power-of-two distances.
func (r *Rank) Barrier(c *Comm) {
	me := c.mustRank(r)
	p := c.Size()
	if p == 1 {
		return
	}
	base := c.CollTagBase(r)
	token := NewPhantom(Int32, 0)
	in := NewPhantom(Int32, 0)
	for round, dist := 0, 1; dist < p; round, dist = round+1, dist*2 {
		to := (me + dist) % p
		from := (me - dist + p) % p
		r.SendRecv(c, to, base+round, token, from, base+round, in)
	}
}

// Bcast broadcasts root's vec to every rank using a binomial tree. On
// non-root ranks vec supplies the buffer shape and receives the payload.
func (r *Rank) Bcast(c *Comm, root int, vec *Vector) {
	me := c.mustRank(r)
	p := c.Size()
	base := c.CollTagBase(r)
	if p == 1 {
		return
	}
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mpi: Bcast root %d out of range [0,%d)", root, p))
	}
	rel := (me - root + p) % p
	// Receive from the parent.
	mask := 1
	for mask < p {
		if rel&mask != 0 {
			src := (me - mask + p) % p
			r.Recv(c, src, base, vec)
			break
		}
		mask <<= 1
	}
	// Forward to children.
	mask >>= 1
	for mask > 0 {
		if rel+mask < p {
			dst := (me + mask) % p
			r.Send(c, dst, base, vec)
		}
		mask >>= 1
	}
}

// Gather collects every rank's vec at root. On root, out receives p
// equal-shaped blocks in comm-rank order (out must have p*vec.Len()
// elements); on other ranks out is ignored. The implementation is linear
// (root receives p-1 messages), like small-message gathers in production
// MPI libraries.
func (r *Rank) Gather(c *Comm, root int, vec, out *Vector) {
	me := c.mustRank(r)
	p := c.Size()
	base := c.CollTagBase(r)
	if me != root {
		r.Send(c, root, base, vec)
		return
	}
	if out.Len() != p*vec.Len() {
		panic(fmt.Sprintf("mpi: Gather out has %d elements, want %d", out.Len(), p*vec.Len()))
	}
	reqs := make([]*Request, 0, p-1)
	for i := 0; i < p; i++ {
		blk := out.Slice(i*vec.Len(), (i+1)*vec.Len())
		if i == me {
			blk.CopyFrom(vec)
			continue
		}
		reqs = append(reqs, r.Irecv(c, i, base, blk))
	}
	r.WaitAll(reqs...)
}

// Allgather concatenates every rank's vec into out (p*vec.Len() elements,
// comm-rank order) using the ring algorithm: p-1 steps, each forwarding
// the block received in the previous step.
func (r *Rank) Allgather(c *Comm, vec, out *Vector) {
	me := c.mustRank(r)
	p := c.Size()
	if out.Len() != p*vec.Len() {
		panic(fmt.Sprintf("mpi: Allgather out has %d elements, want %d", out.Len(), p*vec.Len()))
	}
	base := c.CollTagBase(r)
	out.Slice(me*vec.Len(), (me+1)*vec.Len()).CopyFrom(vec)
	if p == 1 {
		return
	}
	right := (me + 1) % p
	left := (me - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendBlk := (me - step + p) % p
		recvBlk := (me - step - 1 + p) % p
		r.SendRecv(c,
			right, wrapTag(base, step), out.Slice(sendBlk*vec.Len(), (sendBlk+1)*vec.Len()),
			left, wrapTag(base, step), out.Slice(recvBlk*vec.Len(), (recvBlk+1)*vec.Len()))
	}
}

// ReduceScatterBlock reduces p equal blocks of vec (p*blockLen elements)
// and leaves this rank's reduced block in out (blockLen elements), using
// the pairwise-exchange algorithm (p-1 steps).
func (r *Rank) ReduceScatterBlock(c *Comm, op *Op, vec, out *Vector) {
	me := c.mustRank(r)
	p := c.Size()
	if vec.Len()%p != 0 || out.Len() != vec.Len()/p {
		panic(fmt.Sprintf("mpi: ReduceScatterBlock shapes: in %d, out %d, p %d", vec.Len(), out.Len(), p))
	}
	base := c.CollTagBase(r)
	bl := out.Len()
	out.CopyFrom(vec.Slice(me*bl, (me+1)*bl))
	if p == 1 {
		return
	}
	tmp := vec.Slice(0, bl).Clone()
	for step := 1; step < p; step++ {
		dst := (me + step) % p
		src := (me - step + p) % p
		r.SendRecv(c,
			dst, wrapTag(base, step), vec.Slice(dst*bl, (dst+1)*bl),
			src, wrapTag(base, step), tmp)
		r.Reduce(op, out, tmp)
	}
}
