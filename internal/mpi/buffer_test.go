package mpi

import (
	"testing"
	"testing/quick"
)

func TestVectorBasics(t *testing.T) {
	for _, d := range []Datatype{Float32, Float64, Int32, Int64} {
		v := NewVector(d, 10)
		if v.Len() != 10 || v.Bytes() != 10*d.Size() || v.Phantom() {
			t.Fatalf("%v: bad shape: len=%d bytes=%d", d, v.Len(), v.Bytes())
		}
		v.Set(3, 7)
		if v.At(3) != 7 {
			t.Fatalf("%v: Set/At roundtrip failed", d)
		}
		v.Fill(2)
		for i := 0; i < v.Len(); i++ {
			if v.At(i) != 2 {
				t.Fatalf("%v: Fill failed at %d", d, i)
			}
		}
	}
}

func TestDatatypeSizes(t *testing.T) {
	cases := map[Datatype]int{Float32: 4, Float64: 8, Int32: 4, Int64: 8}
	for d, want := range cases {
		if d.Size() != want {
			t.Errorf("%v.Size() = %d, want %d", d, d.Size(), want)
		}
		if d.String() == "" {
			t.Errorf("%v has empty String()", d)
		}
	}
}

func TestPhantomVector(t *testing.T) {
	v := NewPhantom(Float64, 100)
	if !v.Phantom() || v.Bytes() != 800 {
		t.Fatal("phantom shape wrong")
	}
	v.Fill(3) // must be a no-op, not a crash
	if v.At(5) != 0 {
		t.Fatal("phantom At should read 0")
	}
	c := v.Clone()
	if !c.Phantom() || c.Len() != 100 {
		t.Fatal("phantom Clone lost shape")
	}
	s := v.Slice(10, 20)
	if !s.Phantom() || s.Len() != 10 {
		t.Fatal("phantom Slice lost shape")
	}
	// Copy between phantoms and mixed phantom/real validates shape only.
	v.CopyFrom(NewPhantom(Float64, 100))
	v.CopyFrom(NewVector(Float64, 100))
	NewVector(Float64, 100).CopyFrom(v)
}

func TestSliceSharesStorage(t *testing.T) {
	v := NewVector(Float64, 8)
	s := v.Slice(2, 5)
	s.Set(0, 42)
	if v.At(2) != 42 {
		t.Fatal("slice does not alias parent")
	}
	if s.Len() != 3 {
		t.Fatalf("slice len %d, want 3", s.Len())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	v := NewVector(Int64, 4)
	v.Fill(1)
	c := v.Clone()
	c.Set(0, 99)
	if v.At(0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	v := NewVector(Float64, 4)
	for _, bad := range []*Vector{NewVector(Float64, 5), NewVector(Float32, 4)} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Error("CopyFrom mismatch did not panic")
				}
			}()
			v.CopyFrom(bad)
		}()
	}
}

func TestEqualWithin(t *testing.T) {
	a := NewVector(Float64, 3)
	b := NewVector(Float64, 3)
	a.Fill(1)
	b.Fill(1)
	if !a.EqualWithin(b, 0) {
		t.Fatal("identical vectors unequal")
	}
	b.Set(1, 1+1e-12)
	if !a.EqualWithin(b, 1e-9) {
		t.Fatal("within-tolerance vectors unequal")
	}
	b.Set(1, 2)
	if a.EqualWithin(b, 1e-9) {
		t.Fatal("different vectors equal")
	}
	if a.EqualWithin(NewVector(Float64, 4), 1) {
		t.Fatal("shape mismatch equal")
	}
	if a.EqualWithin(NewPhantom(Float64, 3), 1) {
		t.Fatal("real equal to phantom")
	}
}

func TestOpsElementwise(t *testing.T) {
	check := func(op *Op, a, b, want float64) {
		t.Helper()
		for _, d := range []Datatype{Float32, Float64, Int32, Int64} {
			x := NewVector(d, 2)
			y := NewVector(d, 2)
			x.Fill(a)
			y.Fill(b)
			op.Apply(x, y)
			if x.At(0) != want || x.At(1) != want {
				t.Errorf("%s on %v: got %v, want %v", op.Name(), d, x.At(0), want)
			}
		}
	}
	check(Sum, 3, 4, 7)
	check(Prod, 3, 4, 12)
	check(Max, 3, 4, 4)
	check(Min, 3, 4, 3)
}

func TestUserOp(t *testing.T) {
	absmax := NewUserOp("absmax", true, func(acc, in float64) float64 {
		if in < 0 {
			in = -in
		}
		if in > acc {
			return in
		}
		return acc
	})
	x := NewVector(Float64, 2)
	y := NewVector(Float64, 2)
	x.Fill(3)
	y.Set(0, -10)
	y.Set(1, 1)
	absmax.Apply(x, y)
	if x.At(0) != 10 || x.At(1) != 3 {
		t.Fatalf("user op got (%v,%v)", x.At(0), x.At(1))
	}
	if absmax.Name() != "absmax" || !absmax.Commutative() {
		t.Fatal("user op metadata wrong")
	}
	// User ops only define float64; other datatypes must panic clearly.
	defer func() {
		if recover() == nil {
			t.Fatal("user op on int32 did not panic")
		}
	}()
	absmax.Apply(NewVector(Int32, 1), NewVector(Int32, 1))
}

func TestOpApplyShapeMismatchPanics(t *testing.T) {
	for i, pair := range [][2]*Vector{
		{NewVector(Float64, 2), NewVector(Float64, 3)},
		{NewVector(Float64, 2), NewVector(Float32, 2)},
	} {
		pair := pair
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			Sum.Apply(pair[0], pair[1])
		}()
	}
}

func TestOpOnPhantomIsNoop(t *testing.T) {
	p := NewPhantom(Float64, 4)
	Sum.Apply(p, NewPhantom(Float64, 4))
	Sum.Apply(p, NewVector(Float64, 4))
}

func TestBlockPartitionProperties(t *testing.T) {
	f := func(nSeed, pSeed uint16) bool {
		n := int(nSeed) % 5000
		p := 1 + int(pSeed)%64
		cnts, displs := BlockPartition(n, p)
		sum, off := 0, 0
		for i := 0; i < p; i++ {
			if cnts[i] < 0 || displs[i] != off {
				return false
			}
			// Sizes differ by at most one, non-increasing.
			if i > 0 && (cnts[i] > cnts[i-1] || cnts[i-1]-cnts[i] > 1) {
				return false
			}
			sum += cnts[i]
			off += cnts[i]
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
