package mpi

import (
	"math/rand"
	"testing"

	"dpml/internal/sim"
	"dpml/internal/topology"
)

// expectedSum computes the reference allreduce(sum) result for inputs
// in[rank][i].
func expectedSum(in [][]float64) []float64 {
	out := make([]float64, len(in[0]))
	for _, v := range in {
		for i, x := range v {
			out[i] += x
		}
	}
	return out
}

// runAllreduce executes one allreduce over random float64 inputs and
// verifies every rank's result against the sequential reduction.
func runAllreduce(t *testing.T, alg Algorithm, nodes, ppn, count int, seed int64) {
	t.Helper()
	w := smallWorld(t, topology.ClusterB(), nodes, ppn, Config{})
	p := w.Job.NumProcs()
	rng := rand.New(rand.NewSource(seed))
	in := make([][]float64, p)
	for k := range in {
		in[k] = make([]float64, count)
		for i := range in[k] {
			in[k][i] = float64(rng.Intn(2000)-1000) / 16 // exactly representable
		}
	}
	want := expectedSum(in)
	err := w.Run(func(r *Rank) error {
		v := NewVector(Float64, count)
		copy(v.Float64s(), in[r.Rank()])
		r.Allreduce(w.CommWorld(), alg, Sum, v)
		for i := 0; i < count; i++ {
			got := v.At(i)
			d := got - want[i]
			if d < 0 {
				d = -d
			}
			if d > 1e-9*float64(p) {
				t.Errorf("alg=%s p=%d n=%d: rank %d elem %d: got %v want %v",
					alg, p, count, r.Rank(), i, got, want[i])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceAllAlgorithmsAllShapes(t *testing.T) {
	shapes := []struct{ nodes, ppn int }{
		{1, 1}, // p=1
		{2, 1}, // p=2
		{3, 1}, // p=3, non-power-of-two
		{2, 2}, // p=4
		{5, 1}, // p=5
		{3, 2}, // p=6
		{7, 1}, // p=7
		{2, 4}, // p=8
		{3, 3}, // p=9
		{4, 4}, // p=16
	}
	counts := []int{1, 2, 7, 64, 1000}
	for _, alg := range FlatAlgorithms() {
		for _, s := range shapes {
			for _, n := range counts {
				runAllreduce(t, alg, s.nodes, s.ppn, n, int64(s.nodes*1000+s.ppn*10+n))
			}
		}
	}
}

func TestAllreduceCountSmallerThanRanks(t *testing.T) {
	// n < p stresses zero-length blocks in ring and Rabenseifner.
	for _, alg := range FlatAlgorithms() {
		runAllreduce(t, alg, 3, 3, 2, 99) // p=9, n=2
		runAllreduce(t, alg, 2, 4, 5, 98) // p=8, n=5
	}
}

func TestAllreduceIntegerExact(t *testing.T) {
	for _, alg := range FlatAlgorithms() {
		w := smallWorld(t, topology.ClusterB(), 3, 2, Config{})
		p := w.Job.NumProcs()
		err := w.Run(func(r *Rank) error {
			v := NewVector(Int64, 33)
			for i := 0; i < v.Len(); i++ {
				v.Set(i, float64((r.Rank()+1)*(i+1)))
			}
			r.Allreduce(w.CommWorld(), alg, Sum, v)
			sumRanks := p * (p + 1) / 2
			for i := 0; i < v.Len(); i++ {
				if v.At(i) != float64(sumRanks*(i+1)) {
					t.Errorf("alg=%s: elem %d = %v, want %d", alg, i, v.At(i), sumRanks*(i+1))
					return nil
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllreduceMaxMinProd(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 2, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Float64, 2)
		v.Set(0, float64(r.Rank()))
		v.Set(1, float64(-r.Rank()))
		r.Allreduce(c, AlgRecursiveDoubling, Max, v)
		if v.At(0) != 3 || v.At(1) != 0 {
			t.Errorf("max got (%v,%v)", v.At(0), v.At(1))
		}
		v.Set(0, float64(r.Rank()))
		v.Set(1, float64(-r.Rank()))
		r.Allreduce(c, AlgRabenseifner, Min, v)
		if v.At(0) != 0 || v.At(1) != -3 {
			t.Errorf("min got (%v,%v)", v.At(0), v.At(1))
		}
		v.Fill(2)
		r.Allreduce(c, AlgRing, Prod, v)
		if v.At(0) != 16 { // 2^4
			t.Errorf("prod got %v", v.At(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceUserOp(t *testing.T) {
	// L1-norm accumulation as a user op: |a| + |b| is commutative and
	// associative (intermediate results are non-negative).
	absSum := NewUserOp("abssum", true, func(acc, in float64) float64 {
		if acc < 0 {
			acc = -acc
		}
		if in < 0 {
			in = -in
		}
		return acc + in
	})
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		v := NewVector(Float64, 1)
		if r.Rank() == 0 {
			v.Set(0, 3)
		} else {
			v.Set(0, -4)
		}
		r.Allreduce(w.CommWorld(), AlgRecursiveDoubling, absSum, v)
		// Note: |3| accumulated with |-4| = 7 regardless of direction.
		if v.At(0) != 7 {
			t.Errorf("user op allreduce got %v, want 7", v.At(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceUnknownAlgorithmPanics(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		defer func() {
			if recover() == nil {
				t.Error("unknown algorithm did not panic")
			}
		}()
		r.Allreduce(w.CommWorld(), Algorithm("nope"), Sum, NewVector(Float64, 1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceDeterministicTiming(t *testing.T) {
	// Identical runs give identical virtual end times.
	run := func() sim.Time {
		w := smallWorld(t, topology.ClusterC(), 4, 4, Config{})
		err := w.Run(func(r *Rank) error {
			v := NewPhantom(Float32, 4096)
			for i := 0; i < 3; i++ {
				r.Allreduce(w.CommWorld(), AlgRabenseifner, Sum, v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic timing: %v vs %v", a, b)
	}
}

func TestAllreduceTimingScalesWithSize(t *testing.T) {
	// Larger payloads must take strictly longer for every algorithm.
	for _, alg := range FlatAlgorithms() {
		timeFor := func(count int) sim.Time {
			w := smallWorld(t, topology.ClusterC(), 4, 2, Config{})
			err := w.Run(func(r *Rank) error {
				v := NewPhantom(Float32, count)
				r.Allreduce(w.CommWorld(), alg, Sum, v)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			return w.Now()
		}
		small, large := timeFor(256), timeFor(256<<10)
		if large <= small {
			t.Errorf("alg=%s: 1MB (%v) not slower than 1KB (%v)", alg, large, small)
		}
	}
}

func TestRecursiveDoublingLatencyScalesLogarithmically(t *testing.T) {
	// Small-message RD time should grow roughly with lg p, not p.
	timeFor := func(nodes int) sim.Time {
		w := smallWorld(t, topology.ClusterB(), nodes, 1, Config{})
		err := w.Run(func(r *Rank) error {
			v := NewPhantom(Float32, 2)
			r.Allreduce(w.CommWorld(), AlgRecursiveDoubling, Sum, v)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Now()
	}
	t4, t16 := timeFor(4), timeFor(16)
	// lg 16 / lg 4 = 2; allow slack but rule out linear growth (4x).
	ratio := float64(t16) / float64(t4)
	if ratio > 3 {
		t.Fatalf("RD latency ratio 16/4 nodes = %.2f, want ~2", ratio)
	}
}

func TestRingCheaperThanRDForLargeMessages(t *testing.T) {
	// Bandwidth-optimal algorithms move 2n per rank vs RD's n*lg p: for
	// big vectors on several nodes, ring must win.
	timeFor := func(alg Algorithm) sim.Time {
		w := smallWorld(t, topology.ClusterB(), 8, 1, Config{})
		err := w.Run(func(r *Rank) error {
			v := NewPhantom(Float32, 1<<20) // 4 MB
			r.Allreduce(w.CommWorld(), alg, Sum, v)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Now()
	}
	ring, rd := timeFor(AlgRing), timeFor(AlgRecursiveDoubling)
	if ring >= rd {
		t.Fatalf("ring (%v) not faster than recursive doubling (%v) at 4MB x 8 nodes", ring, rd)
	}
}
