package mpi

import "dpml/internal/sim"

// Schedule exploration, MPI side: the match-order hook.
//
// The simulator resolves every arrival to an exact virtual instant, so
// the matching queues are normally perfectly FIFO. But two envelopes
// landing at the same instant — or two receives posted at the same
// instant — are concurrent in the model: nothing in the simulated
// physics orders them, only the event tiebreak does. Under an
// exploration salt those ties are re-serialized through per-rank seeded
// streams: an envelope (or posted receive) is inserted at a seeded
// position among the trailing queue entries that carry the same
// instant. Entries at distinct instants are never reordered, so MPI's
// non-overtaking rule is preserved in the only sense the model defines
// it (messages the model actually orders still match in that order).
//
// All queue state is rank-local and only ever touched from the rank's
// node context, and each rank's stream is consumed in an order fixed by
// its own LP's execution — so explored matching is deterministic per
// salt and invariant under shards, netshards, and host parallelism,
// exactly like the jitter streams.

// drawMatch returns a seeded choice in [0, n] from this rank's
// match-order stream (n+1 possible insertion slots).
func (r *Rank) drawMatch(n int) int {
	w := r.w
	w.mrngs[r.rank] += 0x9e3779b97f4a7c15
	z := w.mrngs[r.rank]
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n+1))
}

// parkUnexpected queues an envelope no receive has been posted for,
// inserting it at a seeded position among the same-instant suffix of
// its bucket when match shuffling is on.
func (r *Rank) parkUnexpected(env *envelope) {
	env.arrived = r.k.Now()
	q := r.unexpected[env.key]
	if r.w.mrngs != nil {
		m := 0
		for m < len(q) && q[len(q)-1-m].arrived == env.arrived {
			m++
		}
		if m > 0 {
			j := len(q) - r.drawMatch(m)
			q = append(q, nil)
			copy(q[j+1:], q[j:])
			q[j] = env
			r.unexpected[env.key] = q
			return
		}
	}
	r.unexpected[env.key] = append(q, env)
}

// postRecv queues a receive no envelope has arrived for, inserting it
// at a seeded position among the same-instant suffix of its bucket when
// match shuffling is on (req.start is the posting instant).
func (r *Rank) postRecv(key msgKey, req *Request) {
	q := r.posted[key]
	if r.w.mrngs != nil {
		m := 0
		for m < len(q) && q[len(q)-1-m].start == req.start {
			m++
		}
		if m > 0 {
			j := len(q) - r.drawMatch(m)
			q = append(q, nil)
			copy(q[j+1:], q[j:])
			q[j] = req
			r.posted[key] = q
			return
		}
	}
	r.posted[key] = append(q, req)
}

// ScheduleDigest returns the 64-bit digest of the schedule the run
// executed (see sim.Coordinator.ScheduleDigest): shard-invariant, and
// equal for behaviorally identical schedules. Zero when Config.Explore
// was nil. Call after Run.
func (w *World) ScheduleDigest() uint64 { return w.coord.ScheduleDigest() }

// TiePairs returns the same-LP same-instant commutation points the run
// observed (see sim.Coordinator.TiePairs). Requires Config.Explore with
// RecordTies. Call after Run.
func (w *World) TiePairs() []sim.TiePair { return w.coord.TiePairs() }
