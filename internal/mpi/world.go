// Package mpi implements an MPI-like runtime on top of the virtual-time
// simulator: ranks, communicators, datatypes, reduction operations,
// eager/rendezvous point-to-point messaging, non-blocking requests, and
// the standard collective algorithms (recursive doubling, ring,
// Rabenseifner, binomial trees, single-leader hierarchies) that the paper
// uses as building blocks and baselines.
//
// Every rank is a simulated process (sim.Proc). Data movement is charged
// to the fabric model and — when buffers are real rather than phantom —
// actually performed, so reduction results can be verified bit-for-bit.
//
// A world's simulation can be sharded across OS threads (Config.Shards):
// each node's ranks, memory channel, and NIC state live on the node's
// logical process, fabric-wide state (links, flows, SHArP) on the shared
// network LP, and a conservative time-window coordinator runs the shards
// in parallel. Results are bit-identical for every shard count.
package mpi

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"

	"dpml/internal/fabric"
	"dpml/internal/faults"
	"dpml/internal/sim"
	"dpml/internal/topology"
	"dpml/internal/trace"
)

// Config adjusts runtime behaviour per World.
type Config struct {
	// EagerThreshold overrides the cluster's eager/rendezvous switch
	// point in bytes when positive.
	EagerThreshold int
	// Trace, when non-nil, records every message, copy, and compute
	// event (see the trace package).
	Trace *trace.Recorder
	// Jitter injects deterministic pseudo-random extra latency of up to
	// this much per inter-node message, modelling system noise. Zero
	// disables injection.
	Jitter sim.Duration
	// JitterSeed seeds the noise streams; runs with equal seeds are
	// identical. Each rank draws from its own splitmix64 stream (derived
	// from the seed and the rank), so the noise a message sees does not
	// depend on how the simulation is sharded.
	JitterSeed uint64
	// Faults, when non-nil and non-empty, installs the fault plan into
	// the world before the run starts: straggler windows, link
	// degradation, NIC throttling, SHArP outages (see the faults
	// package). Nil or empty is the healthy fabric, bit-for-bit
	// identical to a build without the fault layer. The plan must be
	// valid for this job's shape.
	Faults *faults.Plan
	// Watchdog, when positive, arms a virtual-time deadline: a run still
	// going at that instant aborts with a *sim.WatchdogError dumping
	// each blocked rank's wait reason and pending-request counts,
	// instead of simulating a wedged collective forever. Zero disables
	// it.
	Watchdog sim.Duration
	// Shards splits the simulation kernel across this many OS threads
	// (clamped to the node count; nodes are partitioned contiguously).
	// Zero uses the process default (DefaultShards); 1 forces the serial
	// kernel. Every shard count produces bit-identical results — this
	// knob trades memory and synchronization overhead for wall-clock
	// speed only.
	Shards int
	// NetShards sets how many OS threads the network LP's flow engine may
	// use to water-fill independent link components concurrently. The
	// fabric's link partition itself is derived from the topology (leaf
	// subtrees), never from this knob, so every netshard count produces
	// bit-identical results — like Shards, it trades coordination
	// overhead for wall-clock speed only. Zero uses the process default
	// (DefaultNetShards); 1 forces the serial fill.
	NetShards int
	// Explore, when non-nil, installs a schedule-perturbation config on
	// the simulation kernel (see sim.Explore and internal/explore): event
	// tiebreaks are permuted per Salt/Swaps, and — when Salt is non-zero
	// — message matching reorders same-instant concurrently-matchable
	// envelopes through per-rank seeded streams. Nil is the canonical
	// schedule, bit-identical to a build without the exploration layer.
	// Like Jitter, every perturbed run is still deterministic and
	// shard-count-invariant for a fixed config.
	Explore *sim.Explore
}

// defaultShards is the process-wide shard count used when Config.Shards
// is zero, initialized from the DPML_SHARDS environment variable (the CLI
// tools' -shards flag overrides it via SetDefaultShards).
var defaultShards = func() int {
	if s := os.Getenv("DPML_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}()

// DefaultShards returns the process-wide default kernel shard count.
func DefaultShards() int { return defaultShards }

// SetDefaultShards sets the process-wide default kernel shard count used
// by worlds whose Config.Shards is zero. n < 1 resets to serial.
func SetDefaultShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultShards = n
}

// defaultNetShards is the process-wide network-shard count used when
// Config.NetShards is zero, initialized from the DPML_NET_SHARDS
// environment variable (the CLI tools' -netshards flag overrides it via
// SetDefaultNetShards).
var defaultNetShards = func() int {
	if s := os.Getenv("DPML_NET_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 1
}()

// DefaultNetShards returns the process-wide default network shard count.
func DefaultNetShards() int { return defaultNetShards }

// SetDefaultNetShards sets the process-wide default network shard count
// used by worlds whose Config.NetShards is zero. n < 1 resets to serial.
func SetDefaultNetShards(n int) {
	if n < 1 {
		n = 1
	}
	defaultNetShards = n
}

// World is one job: the simulated cluster fabric plus one rank per
// process. Create it with NewWorld, then call Run exactly once. The
// world spans every LP: its mutable registry state is mutex-guarded
// (see mu), everything else is fixed before Run.
//
//dpml:owner shared
type World struct {
	Job   *topology.Job
	Flows *fabric.FlowNet // the network LP's flow engine (wire traffic)
	Net   *fabric.Network
	Mem   []*fabric.MemChannel // indexed by node
	Sharp *fabric.Sharp        // nil when the fabric has no SHArP

	coord    *sim.Coordinator
	memFlows []*fabric.FlowNet // per-node flow engines for memory traffic
	cfg      Config
	ranks    []*Rank
	world    *Comm
	rngs     []uint64                 // per-rank jitter stream states
	mrngs    []uint64                 // per-rank match-order streams; nil unless exploring with a salt
	strag    [][]stragWin             // per-rank straggler windows; nil without straggler faults
	trans    []map[vecShape][]*Vector // per-node free lists for in-flight payload clones (see pool.go)

	// mu guards the communicator registry (nextCID, commCache): runtime
	// Split calls can race across shards. Communicator ids only need to
	// be unique — they never influence timing or data, only message
	// matching within a communicator, whose members share the object.
	mu        sync.Mutex
	nextCID   int
	commCache map[string]*Comm
}

// lookahead returns the conservative cross-node latency bound for the
// cluster: no interaction between two nodes — wire message or SHArP
// notification — takes effect sooner than this after it is initiated.
func lookahead(c *topology.Cluster) sim.Duration {
	la := c.Net.WireLatency
	if c.Sharp.Available {
		if w := c.Sharp.OpOverhead + 2*c.Sharp.HopLatency; w < la {
			la = w
		}
	}
	return la
}

// NewWorld builds the simulated job.
func NewWorld(job *topology.Job, cfg Config) *World {
	shards := cfg.Shards
	if shards == 0 {
		shards = defaultShards
	}
	coord := sim.NewCoordinator(job.NodesUsed, shards, lookahead(job.Cluster))
	// Exploration must be installed before any proc or event exists so
	// every key ever minted goes through the same permutation.
	coord.SetExplore(cfg.Explore)
	netK := coord.NetKernel()
	flows := fabric.NewFlowNet(netK)
	netShards := cfg.NetShards
	if netShards == 0 {
		netShards = defaultNetShards
	}
	flows.SetWorkers(netShards)
	w := &World{
		coord: coord,
		Job:   job,
		Flows: flows,
		Net:   fabric.NewNetwork(coord, flows, job.Cluster, job.NodesUsed),
		cfg:   cfg,
	}
	w.Mem = make([]*fabric.MemChannel, job.NodesUsed)
	w.memFlows = make([]*fabric.FlowNet, job.NodesUsed)
	w.trans = make([]map[vecShape][]*Vector, job.NodesUsed)
	for i := range w.Mem {
		mk := coord.KernelFor(i)
		w.memFlows[i] = fabric.NewFlowNet(mk)
		w.Mem[i] = fabric.NewMemChannel(mk, w.memFlows[i], job.Cluster, i)
	}
	if s, err := fabric.NewSharp(netK, job.Cluster); err == nil {
		w.Sharp = s
	}
	n := job.NumProcs()
	w.rngs = make([]uint64, n)
	for i := range w.rngs {
		w.rngs[i] = (cfg.JitterSeed+uint64(i))*2654435761 + 0x9e3779b97f4a7c15
	}
	if cfg.Explore != nil && cfg.Explore.Salt != 0 {
		// Per-rank match-order streams, salted from the exploration seed.
		// Like the jitter streams, each is consumed only from its rank's
		// own simulation context, in an order the shard count cannot
		// change, so explored matching stays shard-invariant.
		w.mrngs = make([]uint64, n)
		for i := range w.mrngs {
			w.mrngs[i] = (cfg.Explore.Salt+uint64(i))*0x9e3779b97f4a7c15 + 0x6a09e667f3bcc909
		}
	}
	cfg.Trace.Reserve(n)
	w.ranks = make([]*Rank, n)
	all := make([]int, n)
	for i := 0; i < n; i++ {
		w.ranks[i] = newRank(w, i)
		all[i] = i
	}
	w.world = w.NewComm(all)
	coord.SetDiagnostic(w.diagnostics)
	if cfg.Watchdog > 0 {
		coord.SetWatchdog(cfg.Watchdog)
	}
	if !cfg.Faults.Empty() {
		w.installFaults(cfg.Faults)
	}
	return w
}

// Coordinator returns the simulation's shard coordinator.
func (w *World) Coordinator() *sim.Coordinator { return w.coord }

// Shards returns the effective kernel shard count in force.
func (w *World) Shards() int { return w.coord.Shards() }

// NetShards returns the effective network shard (water-fill worker)
// count in force. Per-node memory flow engines always fill serially:
// their populations are small and node-local.
func (w *World) NetShards() int { return w.Flows.Workers() }

// Now returns the simulation's current virtual time (after Run: the
// instant the last event fired, identical for every shard count).
func (w *World) Now() sim.Time { return w.coord.Now() }

// SimStats returns the kernel scheduler counters aggregated across all
// shards. Events is shard-invariant; ContextSwitch and HeapHighWater are
// host-side counters that depend on the shard count.
func (w *World) SimStats() sim.KernelStats { return w.coord.Stats() }

// EagerThreshold returns the eager/rendezvous switch point in force.
func (w *World) EagerThreshold() int {
	if w.cfg.EagerThreshold > 0 {
		return w.cfg.EagerThreshold
	}
	return w.Job.Cluster.Net.EagerThreshold
}

// CommWorld returns the communicator containing every rank.
func (w *World) CommWorld() *Comm { return w.world }

// Tracer returns the configured event recorder (nil when tracing is off).
func (w *World) Tracer() *trace.Recorder { return w.cfg.Trace }

// FaultPlan returns the installed fault plan, or nil on a healthy
// fabric. Arrival-pattern-aware designs read it as their (perfect)
// arrival-time predictor: the plan is identical on every rank, so
// schedules derived from it are collectively consistent.
func (w *World) FaultPlan() *faults.Plan {
	if w.cfg.Faults.Empty() {
		return nil
	}
	return w.cfg.Faults
}

// jitter returns the sending rank's next pseudo-random extra latency in
// [0, Jitter] (splitmix64). Each rank owns its stream and only consumes
// it from its own simulation context, in an order the shard count cannot
// change — so jittered runs are bit-identical under any sharding.
func (r *Rank) jitter() sim.Duration {
	w := r.w
	if w.cfg.Jitter <= 0 {
		return 0
	}
	w.rngs[r.rank] += 0x9e3779b97f4a7c15
	z := w.rngs[r.rank]
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return sim.Duration(z % uint64(w.cfg.Jitter+1))
}

// Rank returns the rank object with the given global rank.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// Run spawns one simulated process per rank executing main and drives the
// simulation to completion. It returns the kernel's error (deadlock,
// panic) or the joined errors returned by the rank bodies.
func (w *World) Run(main func(*Rank) error) error {
	errs := make([]error, len(w.ranks))
	for _, rk := range w.ranks {
		rk := rk
		rk.k.SpawnOn(rk.place.Node, fmt.Sprintf("rank%d", rk.rank), func(p *sim.Proc) {
			rk.proc = p
			errs[rk.rank] = main(rk)
		})
	}
	if err := w.coord.Run(); err != nil {
		return err
	}
	return errors.Join(errs...)
}

// Rank is one MPI process; all of its state belongs to the node LP the
// process is placed on.
//
//dpml:owner node
type Rank struct {
	w     *World
	rank  int
	place topology.Placement
	k     *sim.Kernel // the kernel owning this rank's node LP
	proc  *sim.Proc
	ep    *fabric.Endpoint // this process's network attachment

	// Message matching state (only ever touched in this node's
	// simulation context).
	unexpected map[msgKey][]*envelope
	posted     map[msgKey][]*Request
	anyDone    sim.Signal // fired whenever one of this rank's requests completes
}

func newRank(w *World, i int) *Rank {
	place := w.Job.Place(i)
	return &Rank{
		w:          w,
		rank:       i,
		place:      place,
		k:          w.coord.KernelFor(place.Node),
		ep:         w.Net.Endpoint(place.Node, place.HCA),
		unexpected: make(map[msgKey][]*envelope),
		posted:     make(map[msgKey][]*Request),
	}
}

// World returns the owning world.
func (r *Rank) World() *World { return r.w }

// Rank returns the global rank number.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return len(r.w.ranks) }

// Place returns the rank's hardware placement.
func (r *Rank) Place() topology.Placement { return r.place }

// Proc returns the underlying simulated process (valid inside Run).
func (r *Rank) Proc() *sim.Proc { return r.proc }

// Now returns the current virtual time.
func (r *Rank) Now() sim.Time { return r.proc.Now() }

// Compute blocks the rank for the time one core needs to stream a
// reduction over bytes of input (the paper's c per byte).
func (r *Rank) Compute(bytes int) {
	if bytes <= 0 {
		return
	}
	start := r.proc.Now()
	r.proc.Sleep(r.w.stretch(r, sim.TransferTime(int64(bytes), r.w.Job.Cluster.CPU.ReduceRate)))
	r.w.cfg.Trace.Add(trace.Event{
		Rank: r.rank, Kind: trace.KindCompute, Start: start, End: r.proc.Now(), Bytes: bytes,
	})
}

// Reduce applies op to fold src into dst, charging the compute cost.
func (r *Rank) Reduce(op *Op, dst, src *Vector) {
	r.Compute(dst.Bytes())
	op.Apply(dst, src)
}

// MemCopy blocks the rank for one shared-memory copy of bytes on its
// node (startup plus streaming; cross-socket copies cost more).
func (r *Rank) MemCopy(crossSocket bool, bytes int) {
	start := r.proc.Now()
	r.w.Mem[r.place.Node].Copy(r.proc, crossSocket, int64(bytes))
	label := "intra-socket"
	if crossSocket {
		label = "cross-socket"
	}
	r.w.cfg.Trace.Add(trace.Event{
		Rank: r.rank, Kind: trace.KindShmCopy, Label: label,
		Start: start, End: r.proc.Now(), Bytes: bytes,
	})
}

// SameSocket reports whether the given global rank shares this rank's
// node and socket.
func (r *Rank) SameSocket(global int) bool { return r.w.Job.SameSocket(r.rank, global) }
