package mpi

import "fmt"

// ReduceColl reduces vec across the communicator, leaving the result in
// root's vec (other ranks' buffers hold partial garbage afterwards, like
// MPI_Reduce's send buffer semantics). The algorithm is the binomial
// reduction tree production libraries default to for commutative ops.
func (r *Rank) ReduceColl(c *Comm, root int, op *Op, vec *Vector) {
	me := c.mustRank(r)
	p := c.Size()
	base := c.CollTagBase(r)
	if p == 1 {
		return
	}
	if root < 0 || root >= p {
		panic(fmt.Sprintf("mpi: Reduce root %d out of range [0,%d)", root, p))
	}
	// Rotate so the tree is rooted at comm rank 0.
	rel := (me - root + p) % p
	tmp := vec.Clone()
	round := 0
	for mask := 1; mask < p; mask <<= 1 {
		if rel&mask != 0 {
			dst := (((rel ^ mask) + root) % p)
			r.Send(c, dst, base+round, vec)
			return
		}
		if partner := rel | mask; partner < p {
			src := (partner + root) % p
			r.Recv(c, src, base+round, tmp)
			r.Reduce(op, vec, tmp)
		}
		round++
	}
}

// ReduceScatter reduces p equal blocks and scatters them: comm rank i
// ends with the reduced i-th block of vec in out. Unlike
// ReduceScatterBlock's pairwise exchange, this uses recursive halving
// (lg p rounds), the large-message algorithm of Rabenseifner's scheme.
// The communicator size must be a power of two; callers with other sizes
// should use ReduceScatterBlock.
func (r *Rank) ReduceScatter(c *Comm, op *Op, vec, out *Vector) {
	me := c.mustRank(r)
	p := c.Size()
	if p&(p-1) != 0 {
		panic(fmt.Sprintf("mpi: ReduceScatter requires power-of-two size, got %d", p))
	}
	if vec.Len()%p != 0 || out.Len() != vec.Len()/p {
		panic(fmt.Sprintf("mpi: ReduceScatter shapes: in %d, out %d, p %d", vec.Len(), out.Len(), p))
	}
	base := c.CollTagBase(r)
	if p == 1 {
		out.CopyFrom(vec)
		return
	}
	cnts, displs := BlockPartition(vec.Len(), p)
	tmp := vec.Clone()
	lo, hi := 0, p
	round := 0
	// Halve from the largest distance down so that rank i ends owning
	// block i (ascending masks would leave bit-reversed ownership).
	for mask := p / 2; mask >= 1; mask >>= 1 {
		dst := me ^ mask
		mid := (lo + hi) / 2
		var sLo, sHi, kLo, kHi int
		if me < dst {
			sLo, sHi, kLo, kHi = mid, hi, lo, mid
		} else {
			sLo, sHi, kLo, kHi = lo, mid, mid, hi
		}
		recvView := blocks(tmp, cnts, displs, kLo, kHi)
		r.SendRecv(c,
			dst, base+round, blocks(vec, cnts, displs, sLo, sHi),
			dst, base+round, recvView)
		r.Reduce(op, blocks(vec, cnts, displs, kLo, kHi), recvView)
		lo, hi = kLo, kHi
		round++
	}
	out.CopyFrom(blocks(vec, cnts, displs, me, me+1))
}
