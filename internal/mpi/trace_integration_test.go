package mpi

import (
	"testing"

	"dpml/internal/sim"
	"dpml/internal/topology"
	"dpml/internal/trace"
)

func TestTracingRecordsP2PAndCompute(t *testing.T) {
	rec := trace.New(0)
	job := topology.MustJob(topology.ClusterB(), 2, 1)
	w := NewWorld(job, Config{Trace: rec})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewVector(Float64, 128)
		if r.Rank() == 0 {
			r.Send(c, 1, 0, v)
			r.Compute(4096)
		} else {
			r.Recv(c, 0, 0, v)
			r.MemCopy(false, 256)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.Kind]int{}
	for _, e := range rec.Events() {
		kinds[e.Kind]++
	}
	if kinds[trace.KindSend] != 1 || kinds[trace.KindRecv] != 1 {
		t.Fatalf("p2p events = %v", kinds)
	}
	if kinds[trace.KindCompute] != 1 || kinds[trace.KindShmCopy] != 1 {
		t.Fatalf("compute/shm events = %v", kinds)
	}
	m := rec.CommMatrix(2)
	if m[0][1] != 1024 { // 128 float64
		t.Fatalf("CommMatrix[0][1] = %d, want 1024", m[0][1])
	}
	// Event durations must be positive and within the run.
	for _, e := range rec.Events() {
		if e.End < e.Start || e.End > w.Now() {
			t.Fatalf("event out of range: %+v", e)
		}
	}
}

func TestTracingOffByDefault(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	if w.Tracer() != nil {
		t.Fatal("tracer present without config")
	}
	err := w.Run(func(r *Rank) error {
		v := NewVector(Float64, 8)
		if r.Rank() == 0 {
			r.Send(w.CommWorld(), 1, 0, v)
		} else {
			r.Recv(w.CommWorld(), 0, 0, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func runJittered(t *testing.T, jitter sim.Duration, seed uint64) sim.Time {
	t.Helper()
	job := topology.MustJob(topology.ClusterB(), 2, 2)
	w := NewWorld(job, Config{Jitter: jitter, JitterSeed: seed})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewPhantom(Float32, 1024)
		for i := 0; i < 10; i++ {
			r.Allreduce(c, AlgRecursiveDoubling, Sum, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return w.Now()
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	a := runJittered(t, 5*sim.Microsecond, 42)
	b := runJittered(t, 5*sim.Microsecond, 42)
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	c := runJittered(t, 5*sim.Microsecond, 43)
	if a == c {
		t.Fatalf("different seeds identical: %v", a)
	}
}

func TestJitterSlowsThingsDown(t *testing.T) {
	quiet := runJittered(t, 0, 1)
	noisy := runJittered(t, 20*sim.Microsecond, 1)
	if noisy <= quiet {
		t.Fatalf("noise (%v) did not slow the run (quiet %v)", noisy, quiet)
	}
}

func TestZeroJitterMatchesDefault(t *testing.T) {
	a := runJittered(t, 0, 0)
	b := runJittered(t, 0, 999) // seed irrelevant without jitter
	if a != b {
		t.Fatalf("zero jitter not seed-independent: %v vs %v", a, b)
	}
}
