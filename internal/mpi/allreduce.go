package mpi

import "fmt"

// Algorithm selects a flat allreduce implementation. These are the
// standard algorithms production MPI libraries choose between (Thakur et
// al.) and the building blocks of both the paper's baselines and DPML's
// inter-leader phase.
type Algorithm string

// Supported flat allreduce algorithms.
const (
	// AlgRecursiveDoubling: ceil(lg p) rounds exchanging the full
	// vector; latency-optimal, used for small messages.
	AlgRecursiveDoubling Algorithm = "recursive-doubling"
	// AlgRing: ring reduce-scatter + ring allgather; bandwidth-optimal
	// (2n transferred per rank) with 2(p-1) rounds.
	AlgRing Algorithm = "ring"
	// AlgRabenseifner: recursive-halving reduce-scatter + recursive
	// doubling allgather; bandwidth-optimal with 2 lg p rounds.
	AlgRabenseifner Algorithm = "rabenseifner"
	// AlgReduceBcast: binomial reduce to rank 0 followed by binomial
	// broadcast.
	AlgReduceBcast Algorithm = "reduce-bcast"
)

// FlatAlgorithms lists every Algorithm value.
func FlatAlgorithms() []Algorithm {
	return []Algorithm{AlgRecursiveDoubling, AlgRing, AlgRabenseifner, AlgReduceBcast}
}

// Allreduce reduces vec in place across the communicator with the chosen
// algorithm: on return every rank holds the elementwise op-reduction of
// all ranks' inputs.
func (r *Rank) Allreduce(c *Comm, alg Algorithm, op *Op, vec *Vector) {
	base := c.CollTagBase(r)
	if c.Size() == 1 {
		return
	}
	switch alg {
	case AlgRecursiveDoubling:
		r.allreduceRD(c, op, vec, base)
	case AlgRing:
		r.allreduceRing(c, op, vec, base)
	case AlgRabenseifner:
		r.allreduceRab(c, op, vec, base)
	case AlgReduceBcast:
		r.allreduceRedBcast(c, op, vec, base)
	default:
		panic(fmt.Sprintf("mpi: unknown allreduce algorithm %q", alg))
	}
}

// LargestPow2 returns the largest power of two <= p (p >= 1).
func LargestPow2(p int) int {
	k := 1
	for k*2 <= p {
		k *= 2
	}
	return k
}

// FoldRank maps a rank in the folded power-of-two group back to its comm
// rank, given rem = p - pof2 (MPICH's non-power-of-two scheme: the first
// 2*rem ranks fold pairwise onto the odd member).
func FoldRank(newRank, rem int) int {
	if newRank < rem {
		return newRank*2 + 1
	}
	return newRank + rem
}

// FoldIn merges the first 2*rem ranks of c pairwise (even sends to odd)
// and returns this rank's rank within the folded power-of-two group, or
// -1 for ranks that go idle until FoldOut. It uses tag base+0; rem must
// be Size() - LargestPow2(Size()). FoldIn/FoldOut are exported so that
// algorithm extensions (e.g. pipelined inter-leader allreduce) can handle
// non-power-of-two groups the same way the built-in algorithms do.
func (r *Rank) FoldIn(c *Comm, op *Op, vec *Vector, rem, base int) int {
	me := c.mustRank(r)
	if me >= 2*rem {
		return me - rem
	}
	if me%2 == 0 {
		r.Send(c, me+1, base, vec)
		return -1
	}
	tmp := vec.Clone()
	r.Recv(c, me-1, base, tmp)
	r.Reduce(op, vec, tmp)
	return me / 2
}

// FoldOut delivers the final result back to the ranks idled by FoldIn.
// It uses tag base+FoldOutTag.
const FoldOutTag = collSlots - 1

func (r *Rank) FoldOut(c *Comm, vec *Vector, rem, base int) {
	me := c.mustRank(r)
	if me >= 2*rem {
		return
	}
	if me%2 == 1 {
		r.Send(c, me-1, base+FoldOutTag, vec)
	} else {
		r.Recv(c, me+1, base+FoldOutTag, vec)
	}
}

func (r *Rank) allreduceRD(c *Comm, op *Op, vec *Vector, base int) {
	p := c.Size()
	pof2 := LargestPow2(p)
	rem := p - pof2
	newRank := r.FoldIn(c, op, vec, rem, base)
	if newRank >= 0 {
		tmp := vec.Clone()
		round := 1
		for mask := 1; mask < pof2; mask <<= 1 {
			dst := FoldRank(newRank^mask, rem)
			r.SendRecv(c, dst, base+round, vec, dst, base+round, tmp)
			r.Reduce(op, vec, tmp)
			round++
		}
	}
	r.FoldOut(c, vec, rem, base)
}

// BlockPartition splits n elements into p blocks as evenly as possible
// (earlier blocks take the remainder) and returns counts and
// displacements.
func BlockPartition(n, p int) (cnts, displs []int) {
	cnts = make([]int, p)
	displs = make([]int, p)
	q, rem := n/p, n%p
	off := 0
	for i := 0; i < p; i++ {
		cnts[i] = q
		if i < rem {
			cnts[i]++
		}
		displs[i] = off
		off += cnts[i]
	}
	return cnts, displs
}

// wrapTag keeps per-round tags inside one collective's tag window.
// Rounds that collide (collSlots-1 apart) are never simultaneously in
// flight: every algorithm here completes a round's exchange with a
// partner before reusing that distance.
func wrapTag(base, round int) int {
	return base + round%(collSlots-1)
}

// blocks returns the contiguous view of blocks [lo, hi) of v.
func blocks(v *Vector, cnts, displs []int, lo, hi int) *Vector {
	if lo == hi {
		return v.Slice(displs[lo], displs[lo])
	}
	return v.Slice(displs[lo], displs[hi-1]+cnts[hi-1])
}

func (r *Rank) allreduceRing(c *Comm, op *Op, vec *Vector, base int) {
	me := c.mustRank(r)
	p := c.Size()
	cnts, displs := BlockPartition(vec.Len(), p)
	right := (me + 1) % p
	left := (me - 1 + p) % p
	maxCnt := cnts[0]
	tmp := vec.Slice(0, maxCnt).Clone()

	// Ring reduce-scatter: after p-1 steps rank me holds the fully
	// reduced block (me+1) mod p.
	for s := 0; s < p-1; s++ {
		sb := (me - s + p) % p
		rb := (me - s - 1 + p) % p
		recvView := tmp.Slice(0, cnts[rb])
		r.SendRecv(c,
			right, wrapTag(base, s), blocks(vec, cnts, displs, sb, sb+1),
			left, wrapTag(base, s), recvView)
		r.Reduce(op, blocks(vec, cnts, displs, rb, rb+1), recvView)
	}
	// Ring allgather: circulate the completed blocks.
	for s := 0; s < p-1; s++ {
		sb := (me + 1 - s + p) % p
		rb := (me - s + p) % p
		r.SendRecv(c,
			right, wrapTag(base, p+s), blocks(vec, cnts, displs, sb, sb+1),
			left, wrapTag(base, p+s), blocks(vec, cnts, displs, rb, rb+1))
	}
}

func (r *Rank) allreduceRab(c *Comm, op *Op, vec *Vector, base int) {
	p := c.Size()
	pof2 := LargestPow2(p)
	rem := p - pof2
	newRank := r.FoldIn(c, op, vec, rem, base)
	if newRank >= 0 {
		cnts, displs := BlockPartition(vec.Len(), pof2)
		tmp := vec.Clone()
		lo, hi := 0, pof2
		type halving struct {
			dst                          int
			sentLo, sentHi, kepLo, kepHi int
		}
		var steps []halving
		round := 1
		// Recursive-halving reduce-scatter.
		for mask := 1; mask < pof2; mask <<= 1 {
			newDst := newRank ^ mask
			dst := FoldRank(newDst, rem)
			mid := (lo + hi) / 2
			var st halving
			st.dst = dst
			if newRank < newDst {
				st.sentLo, st.sentHi, st.kepLo, st.kepHi = mid, hi, lo, mid
			} else {
				st.sentLo, st.sentHi, st.kepLo, st.kepHi = lo, mid, mid, hi
			}
			recvView := blocks(tmp, cnts, displs, st.kepLo, st.kepHi)
			r.SendRecv(c,
				dst, base+round, blocks(vec, cnts, displs, st.sentLo, st.sentHi),
				dst, base+round, recvView)
			r.Reduce(op, blocks(vec, cnts, displs, st.kepLo, st.kepHi), recvView)
			steps = append(steps, st)
			lo, hi = st.kepLo, st.kepHi
			round++
		}
		// Recursive-doubling allgather: undo the halvings in reverse.
		for i := len(steps) - 1; i >= 0; i-- {
			st := steps[i]
			r.SendRecv(c,
				st.dst, base+round, blocks(vec, cnts, displs, st.kepLo, st.kepHi),
				st.dst, base+round, blocks(vec, cnts, displs, st.sentLo, st.sentHi))
			round++
		}
	}
	r.FoldOut(c, vec, rem, base)
}

func (r *Rank) allreduceRedBcast(c *Comm, op *Op, vec *Vector, base int) {
	me := c.mustRank(r)
	p := c.Size()
	// Binomial reduce to comm rank 0.
	tmp := vec.Clone()
	round := 0
	for mask := 1; mask < p; mask <<= 1 {
		if me&mask != 0 {
			r.Send(c, me^mask, base+round, vec)
			break
		}
		if partner := me | mask; partner < p {
			r.Recv(c, partner, base+round, tmp)
			r.Reduce(op, vec, tmp)
		}
		round++
	}
	// Binomial broadcast of the result (consumes its own tag window).
	r.Bcast(c, 0, vec)
}
