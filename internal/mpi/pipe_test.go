package mpi

import (
	"testing"

	"dpml/internal/sim"
	"dpml/internal/topology"
)

// These tests pin down the per-process pipe model that produces the
// paper's Figure 1 trends: a single process gains nothing from extra
// in-flight messages, while different processes add throughput until the
// NIC link saturates.

func TestWindowOfSendsSharesSenderPipe(t *testing.T) {
	// One sender, window of 4 rendezvous messages: total time must be
	// ~4x one message's flow time (pipe-shared), not ~1x.
	cl := topology.ClusterB()
	elapsed := func(window int) sim.Duration {
		w := smallWorld(t, cl, 2, 1, Config{})
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			const count = 1 << 18 // 1MB of float32
			if r.Rank() == 0 {
				reqs := make([]*Request, window)
				for i := 0; i < window; i++ {
					reqs[i] = r.Isend(c, 1, i, NewPhantom(Float32, count))
				}
				r.WaitAll(reqs...)
			} else {
				reqs := make([]*Request, window)
				for i := 0; i < window; i++ {
					reqs[i] = r.Irecv(c, 0, i, NewPhantom(Float32, count))
				}
				r.WaitAll(reqs...)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Duration(w.Now())
	}
	t1, t4 := elapsed(1), elapsed(4)
	ratio := float64(t4) / float64(t1)
	if ratio < 3.5 {
		t.Fatalf("4-message window only %.2fx one message: pipe not shared", ratio)
	}
}

func TestDistinctSendersScaleUntilLink(t *testing.T) {
	// ppn senders to ppn receivers across two nodes (the DPML phase-3
	// pattern): with per-process caps well under the link, time should
	// stay nearly flat as senders multiply.
	cl := topology.ClusterB()
	elapsed := func(ppn int) sim.Duration {
		w := smallWorld(t, cl, 2, ppn, Config{})
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			const count = 1 << 18
			v := NewPhantom(Float32, count)
			if r.Place().Node == 0 {
				r.Send(c, r.Rank()+ppn, 0, v)
			} else {
				r.Recv(c, r.Rank()-ppn, 0, v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Duration(w.Now())
	}
	t1, t8 := elapsed(1), elapsed(8)
	if float64(t8) > 1.3*float64(t1) {
		t.Fatalf("8 senders took %v vs 1 sender %v: per-process concurrency broken", t8, t1)
	}
}

func TestFullDuplexExchange(t *testing.T) {
	// A symmetric sendrecv exchange must cost about one direction's
	// time, not two (full-duplex pipes).
	cl := topology.ClusterB()
	run := func(bidirectional bool) sim.Duration {
		w := smallWorld(t, cl, 2, 1, Config{})
		err := w.Run(func(r *Rank) error {
			c := w.CommWorld()
			const count = 1 << 18
			v := NewPhantom(Float32, count)
			in := NewPhantom(Float32, count)
			other := 1 - r.Rank()
			if bidirectional {
				r.SendRecv(c, other, 0, v, other, 0, in)
			} else if r.Rank() == 0 {
				r.Send(c, 1, 0, v)
			} else {
				r.Recv(c, 0, 0, in)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Duration(w.Now())
	}
	uni, bi := run(false), run(true)
	if float64(bi) > 1.3*float64(uni) {
		t.Fatalf("bidirectional exchange %v vs unidirectional %v: duplex broken", bi, uni)
	}
}

func TestEagerThresholdConfigOverride(t *testing.T) {
	job := topology.MustJob(topology.ClusterB(), 2, 1)
	w := NewWorld(job, Config{EagerThreshold: 123})
	if w.EagerThreshold() != 123 {
		t.Fatalf("override ignored: %d", w.EagerThreshold())
	}
	w2 := NewWorld(job, Config{})
	if w2.EagerThreshold() != job.Cluster.Net.EagerThreshold {
		t.Fatal("default threshold not taken from cluster")
	}
}

func TestNetworkStatsCountMessages(t *testing.T) {
	w := smallWorld(t, topology.ClusterB(), 2, 1, Config{})
	err := w.Run(func(r *Rank) error {
		c := w.CommWorld()
		v := NewPhantom(Float32, 256)
		if r.Rank() == 0 {
			for i := 0; i < 5; i++ {
				r.Send(c, 1, i, v)
			}
		} else {
			for i := 0; i < 5; i++ {
				r.Recv(c, 0, i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Net.Stats.Messages != 5 {
		t.Fatalf("message count %d, want 5", w.Net.Stats.Messages)
	}
	if w.Net.Stats.Bytes != 5*1024 {
		t.Fatalf("byte count %d, want 5120", w.Net.Stats.Bytes)
	}
}
