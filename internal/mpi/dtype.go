package mpi

import "fmt"

// Datatype identifies the element type of a message buffer, mirroring the
// MPI predefined datatypes the paper's experiments use (MPI_FLOAT with
// MPI_SUM for the microbenchmarks, MPI_DOUBLE for HPCG's DDOT).
type Datatype uint8

// Supported datatypes.
const (
	Float32 Datatype = iota
	Float64
	Int32
	Int64
)

// Size returns the element size in bytes.
func (d Datatype) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case Float64, Int64:
		return 8
	}
	panic(fmt.Sprintf("mpi: unknown datatype %d", d))
}

func (d Datatype) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	}
	return fmt.Sprintf("datatype(%d)", d)
}

// Op is a reduction operation. The predefined ops (Sum, Prod, Max, Min)
// work on every datatype; user-defined ops are built with NewUserOp.
type Op struct {
	name string
	// kernels; nil entries mean "unsupported for this datatype".
	f32 func(dst, src []float32)
	f64 func(dst, src []float64)
	i32 func(dst, src []int32)
	i64 func(dst, src []int64)
	// commutative reports whether the op commutes; all our algorithms
	// require commutativity (like MPI's predefined ops have).
	commutative bool
}

// Name returns the op's label.
func (o *Op) Name() string { return o.name }

// Commutative reports whether the operation is commutative.
func (o *Op) Commutative() bool { return o.commutative }

// NewUserOp builds a user-defined elementwise reduction over float64
// buffers (the only datatype user ops must support, matching how the
// paper's applications use allreduce). f receives the accumulator and the
// incoming element and returns the new accumulator value.
func NewUserOp(name string, commutative bool, f func(acc, in float64) float64) *Op {
	return &Op{
		name:        name,
		commutative: commutative,
		f64: func(dst, src []float64) {
			for i := range dst {
				dst[i] = f(dst[i], src[i])
			}
		},
	}
}

// Predefined reduction operations.
var (
	Sum = &Op{
		name:        "sum",
		commutative: true,
		f32: func(d, s []float32) {
			for i := range d {
				d[i] += s[i]
			}
		},
		f64: func(d, s []float64) {
			for i := range d {
				d[i] += s[i]
			}
		},
		i32: func(d, s []int32) {
			for i := range d {
				d[i] += s[i]
			}
		},
		i64: func(d, s []int64) {
			for i := range d {
				d[i] += s[i]
			}
		},
	}
	Prod = &Op{
		name:        "prod",
		commutative: true,
		f32: func(d, s []float32) {
			for i := range d {
				d[i] *= s[i]
			}
		},
		f64: func(d, s []float64) {
			for i := range d {
				d[i] *= s[i]
			}
		},
		i32: func(d, s []int32) {
			for i := range d {
				d[i] *= s[i]
			}
		},
		i64: func(d, s []int64) {
			for i := range d {
				d[i] *= s[i]
			}
		},
	}
	Max = &Op{
		name:        "max",
		commutative: true,
		f32: func(d, s []float32) {
			for i := range d {
				if s[i] > d[i] {
					d[i] = s[i]
				}
			}
		},
		f64: func(d, s []float64) {
			for i := range d {
				if s[i] > d[i] {
					d[i] = s[i]
				}
			}
		},
		i32: func(d, s []int32) {
			for i := range d {
				if s[i] > d[i] {
					d[i] = s[i]
				}
			}
		},
		i64: func(d, s []int64) {
			for i := range d {
				if s[i] > d[i] {
					d[i] = s[i]
				}
			}
		},
	}
	Min = &Op{
		name:        "min",
		commutative: true,
		f32: func(d, s []float32) {
			for i := range d {
				if s[i] < d[i] {
					d[i] = s[i]
				}
			}
		},
		f64: func(d, s []float64) {
			for i := range d {
				if s[i] < d[i] {
					d[i] = s[i]
				}
			}
		},
		i32: func(d, s []int32) {
			for i := range d {
				if s[i] < d[i] {
					d[i] = s[i]
				}
			}
		},
		i64: func(d, s []int64) {
			for i := range d {
				if s[i] < d[i] {
					d[i] = s[i]
				}
			}
		},
	}
)

// Apply reduces src into dst elementwise without charging any simulated
// compute time — Rank.Reduce is the cost-charging wrapper; Apply alone is
// for places where the arithmetic happens off-host (the SHArP switch
// tree). Both vectors must have the same datatype and length; phantom
// vectors reduce to a no-op.
func (o *Op) Apply(dst, src *Vector) {
	if dst.dtype != src.dtype {
		panic(fmt.Sprintf("mpi: op %s on mismatched datatypes %v and %v", o.name, dst.dtype, src.dtype))
	}
	if dst.n != src.n {
		panic(fmt.Sprintf("mpi: op %s on mismatched lengths %d and %d", o.name, dst.n, src.n))
	}
	if dst.phantom || src.phantom {
		return
	}
	switch dst.dtype {
	case Float32:
		if o.f32 == nil {
			panic(fmt.Sprintf("mpi: op %s unsupported for float32", o.name))
		}
		o.f32(dst.f32, src.f32)
	case Float64:
		if o.f64 == nil {
			panic(fmt.Sprintf("mpi: op %s unsupported for float64", o.name))
		}
		o.f64(dst.f64, src.f64)
	case Int32:
		if o.i32 == nil {
			panic(fmt.Sprintf("mpi: op %s unsupported for int32", o.name))
		}
		o.i32(dst.i32, src.i32)
	case Int64:
		if o.i64 == nil {
			panic(fmt.Sprintf("mpi: op %s unsupported for int64", o.name))
		}
		o.i64(dst.i64, src.i64)
	}
}
