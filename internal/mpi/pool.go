package mpi

// pool.go recycles the Vector clones that carry eager payloads while a
// message is in flight. Every intra-node send and every eager inter-node
// send clones the user's buffer into the envelope and the clone dies as
// soon as the receiver copies it out — at 10k ranks that is one
// short-lived allocation per message, and the allocator (plus the GC
// scans it induces) shows up in simulator profiles. The free lists are
// per-node: clones are drawn in the sending node's context and released
// in the receiving node's, and under a sharded kernel those contexts can
// run on different threads — per-node lists keep every access inside one
// node's LP, so no locking. A world's transit clones are uniform in
// shape (the collective's message size), so keying by exact shape hits
// almost always.

// vecShape is the free-list key. Exact-length matching keeps pooled
// reuse semantically identical to a fresh Clone (same dtype, length,
// phantomness); pooling across lengths would need capacity trimming and
// buys nothing for collective traffic, which is shape-uniform.
type vecShape struct {
	dtype   Datatype
	n       int
	phantom bool
}

// transitClone returns a copy of v for an in-flight eager payload,
// drawing the Vector (and, for real data, its storage) from node's free
// list when a same-shape clone has been released there before. node must
// be the calling context's node. The copy must be balanced by
// transitRelease once the payload has been copied out — or leaked, which
// is only ever a missed reuse, never a bug.
func (w *World) transitClone(node int, v *Vector) *Vector {
	key := vecShape{dtype: v.dtype, n: v.n, phantom: v.phantom}
	free := w.trans[node][key]
	if n := len(free); n > 0 {
		c := free[n-1]
		free[n-1] = nil
		w.trans[node][key] = free[:n-1]
		c.CopyFrom(v) // no-op for phantoms
		return c
	}
	return v.Clone()
}

// transitRelease returns a clone obtained from transitClone to node's
// free list (the node whose context the release happens in — for
// inter-node messages that is the receiver, not the node the clone was
// drawn on). The caller must drop its own reference: the vector's
// storage will back a future in-flight payload.
func (w *World) transitRelease(node int, v *Vector) {
	key := vecShape{dtype: v.dtype, n: v.n, phantom: v.phantom}
	if w.trans[node] == nil {
		w.trans[node] = make(map[vecShape][]*Vector)
	}
	w.trans[node][key] = append(w.trans[node][key], v)
}
