package mpi

import (
	"fmt"
	"math"
)

// Vector is a typed message buffer. A vector either carries real elements
// (tests verify reductions bit-for-bit) or is phantom — it knows only its
// type and length, so large-scale sweeps skip data movement while every
// algorithm runs the identical communication schedule. Sub-vector views
// share storage with their parent, which is how partition-based
// algorithms (reduce-scatter, DPML partitions) address slices of a
// buffer without copies.
//
//dpml:owner shared
type Vector struct {
	dtype   Datatype
	n       int
	phantom bool
	f32     []float32
	f64     []float64
	i32     []int32
	i64     []int64
}

// NewVector allocates a zeroed vector of n real elements.
func NewVector(d Datatype, n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("mpi: NewVector(%d)", n))
	}
	v := &Vector{dtype: d, n: n}
	switch d {
	case Float32:
		v.f32 = make([]float32, n)
	case Float64:
		v.f64 = make([]float64, n)
	case Int32:
		v.i32 = make([]int32, n)
	case Int64:
		v.i64 = make([]int64, n)
	default:
		panic(fmt.Sprintf("mpi: unknown datatype %d", d))
	}
	return v
}

// NewPhantom builds a size-only vector of n elements: communication and
// compute costs are charged normally, but no bytes move.
func NewPhantom(d Datatype, n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("mpi: NewPhantom(%d)", n))
	}
	return &Vector{dtype: d, n: n, phantom: true}
}

// Type returns the element datatype.
func (v *Vector) Type() Datatype { return v.dtype }

// Len returns the element count.
func (v *Vector) Len() int { return v.n }

// Bytes returns the buffer size in bytes.
func (v *Vector) Bytes() int { return v.n * v.dtype.Size() }

// Phantom reports whether the vector is size-only.
func (v *Vector) Phantom() bool { return v.phantom }

// Float64s returns the underlying float64 storage (nil for phantom or
// other datatypes).
func (v *Vector) Float64s() []float64 { return v.f64 }

// Float32s returns the underlying float32 storage.
func (v *Vector) Float32s() []float32 { return v.f32 }

// Int32s returns the underlying int32 storage.
func (v *Vector) Int32s() []int32 { return v.i32 }

// Int64s returns the underlying int64 storage.
func (v *Vector) Int64s() []int64 { return v.i64 }

// Slice returns a view of elements [lo, hi) sharing storage with v.
func (v *Vector) Slice(lo, hi int) *Vector {
	if lo < 0 || hi < lo || hi > v.n {
		panic(fmt.Sprintf("mpi: Slice(%d,%d) of %d elements", lo, hi, v.n))
	}
	s := &Vector{dtype: v.dtype, n: hi - lo, phantom: v.phantom}
	if v.phantom {
		return s
	}
	switch v.dtype {
	case Float32:
		s.f32 = v.f32[lo:hi]
	case Float64:
		s.f64 = v.f64[lo:hi]
	case Int32:
		s.i32 = v.i32[lo:hi]
	case Int64:
		s.i64 = v.i64[lo:hi]
	}
	return s
}

// Clone returns an independent copy of v (phantomness included).
func (v *Vector) Clone() *Vector {
	c := &Vector{dtype: v.dtype, n: v.n, phantom: v.phantom}
	if v.phantom {
		return c
	}
	switch v.dtype {
	case Float32:
		c.f32 = append([]float32(nil), v.f32...)
	case Float64:
		c.f64 = append([]float64(nil), v.f64...)
	case Int32:
		c.i32 = append([]int32(nil), v.i32...)
	case Int64:
		c.i64 = append([]int64(nil), v.i64...)
	}
	return c
}

// CopyFrom copies src's elements into v. Types and lengths must match.
// Copies involving a phantom on either side only validate the shape.
func (v *Vector) CopyFrom(src *Vector) {
	if v.dtype != src.dtype || v.n != src.n {
		panic(fmt.Sprintf("mpi: CopyFrom shape mismatch: %v[%d] <- %v[%d]",
			v.dtype, v.n, src.dtype, src.n))
	}
	if v.phantom || src.phantom {
		return
	}
	switch v.dtype {
	case Float32:
		copy(v.f32, src.f32)
	case Float64:
		copy(v.f64, src.f64)
	case Int32:
		copy(v.i32, src.i32)
	case Int64:
		copy(v.i64, src.i64)
	}
}

// Fill sets every element to x (converted to the datatype); no-op on
// phantoms.
func (v *Vector) Fill(x float64) {
	if v.phantom {
		return
	}
	switch v.dtype {
	case Float32:
		for i := range v.f32 {
			v.f32[i] = float32(x)
		}
	case Float64:
		for i := range v.f64 {
			v.f64[i] = x
		}
	case Int32:
		for i := range v.i32 {
			v.i32[i] = int32(x)
		}
	case Int64:
		for i := range v.i64 {
			v.i64[i] = int64(x)
		}
	}
}

// At returns element i as a float64 (phantoms read as 0).
func (v *Vector) At(i int) float64 {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("mpi: At(%d) of %d elements", i, v.n))
	}
	if v.phantom {
		return 0
	}
	switch v.dtype {
	case Float32:
		return float64(v.f32[i])
	case Float64:
		return v.f64[i]
	case Int32:
		return float64(v.i32[i])
	case Int64:
		return float64(v.i64[i])
	}
	return 0
}

// Set stores x into element i (converted to the datatype); no-op on
// phantoms.
func (v *Vector) Set(i int, x float64) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("mpi: Set(%d) of %d elements", i, v.n))
	}
	if v.phantom {
		return
	}
	switch v.dtype {
	case Float32:
		v.f32[i] = float32(x)
	case Float64:
		v.f64[i] = x
	case Int32:
		v.i32[i] = int32(x)
	case Int64:
		v.i64[i] = int64(x)
	}
}

// EqualWithin reports whether two real vectors agree elementwise within
// tol (absolute or relative, whichever is looser). Phantom vectors compare
// by shape only.
func (v *Vector) EqualWithin(o *Vector, tol float64) bool {
	if v.dtype != o.dtype || v.n != o.n {
		return false
	}
	if v.phantom || o.phantom {
		return v.phantom == o.phantom
	}
	for i := 0; i < v.n; i++ {
		a, b := v.At(i), o.At(i)
		d := math.Abs(a - b)
		if d <= tol {
			continue
		}
		if d <= tol*math.Max(math.Abs(a), math.Abs(b)) {
			continue
		}
		return false
	}
	return true
}
