package mpi

import (
	"fmt"

	"dpml/internal/metrics"
	"dpml/internal/sim"
)

// Metrics snapshots the run's counters — kernel scheduler activity,
// fluid-flow engine stats, per-link and per-NIC fabric activity, per-node
// shared-memory traffic, and (when tracing is on) collective arrival
// skew — into one insertion-ordered registry. Call it after Run returns;
// it only reads, so it cannot perturb the simulation, and it is cheap
// enough to call repeatedly.
func (w *World) Metrics() *metrics.Registry {
	r := metrics.NewRegistry()
	elapsed := w.Now().Sub(0)
	stats := w.SimStats()

	r.Set("job.procs", "", float64(w.Job.NumProcs()))
	r.Set("job.nodes", "", float64(w.Job.NodesUsed))
	r.Set("job.ppn", "", float64(w.Job.PPN))
	r.Set("sim.elapsed", "ns", float64(elapsed))
	r.Set("sim.events", "", float64(stats.Events))
	// Host-side scheduler counters: deterministic for a fixed shard
	// count, but not shard-invariant (see sim.KernelStats) — tools
	// comparing runs across shard counts must skip them.
	r.Set("sim.context_switches", "", float64(stats.ContextSwitch))
	r.Set("sim.heap_high_water", "events", float64(stats.HeapHighWater))

	// Flow-engine counters, aggregated across the network LP's engine
	// and the per-node memory engines (each shard-invariant on its own).
	flows := w.Flows.Stats
	for _, fn := range w.memFlows {
		flows.Started += fn.Stats.Started
		flows.Completed += fn.Stats.Completed
		flows.Recompute += fn.Stats.Recompute
		flows.FastPath += fn.Stats.FastPath
	}
	r.Set("flows.started", "", float64(flows.Started))
	r.Set("flows.completed", "", float64(flows.Completed))
	r.Set("flows.recomputes", "", float64(flows.Recompute))
	r.Set("flows.fast_path", "", float64(flows.FastPath))

	r.Set("net.messages", "", float64(w.Net.Stats.Messages))
	r.Set("net.bytes", "bytes", float64(w.Net.Stats.Bytes))

	// Per-link activity plus fleet aggregates. Utilization is the
	// fraction of link capacity used over the whole run.
	var busiestUtil float64
	busiestName := ""
	var totalBusy sim.Duration
	for _, lr := range w.Net.Report() {
		util := 0.0
		if elapsed > 0 && lr.Capacity > 0 {
			util = float64(lr.Bytes) / (lr.Capacity * elapsed.Seconds())
		}
		totalBusy += lr.Busy
		if util > busiestUtil {
			busiestUtil, busiestName = util, lr.Name
		}
		prefix := "link." + lr.Name
		r.Set(prefix+".bytes", "bytes", float64(lr.Bytes))
		r.Set(prefix+".busy", "ns", float64(lr.Busy))
		r.Set(prefix+".utilization", "", util)
	}
	r.Set("link.total_busy", "ns", float64(totalBusy))
	r.Set("link.max_utilization", "", busiestUtil)
	if busiestName != "" {
		// Encode which link peaked as an index-free marker metric.
		r.Set("link.max_utilization."+busiestName, "", busiestUtil)
	}

	// Per-NIC injection queues: message counts and worst backlog.
	var worstBacklog sim.Duration
	var injected uint64
	for _, ir := range w.Net.InjectReports() {
		injected += ir.Messages
		if ir.MaxBacklog > worstBacklog {
			worstBacklog = ir.MaxBacklog
		}
		prefix := fmt.Sprintf("nic.n%d.h%d", ir.Node, ir.HCA)
		r.Set(prefix+".injected", "", float64(ir.Messages))
		r.Set(prefix+".max_backlog", "ns", float64(ir.MaxBacklog))
	}
	r.Set("nic.injected", "", float64(injected))
	r.Set("nic.max_backlog", "ns", float64(worstBacklog))

	// Per-node shared-memory channels.
	var copies, cross, memBytes uint64
	for node, m := range w.Mem {
		prefix := fmt.Sprintf("mem.n%d", node)
		r.Set(prefix+".copies", "", float64(m.Stats.Copies))
		r.Set(prefix+".cross_socket", "", float64(m.Stats.CrossSocket))
		r.Set(prefix+".bytes", "bytes", float64(m.Stats.Bytes))
		copies += m.Stats.Copies
		cross += m.Stats.CrossSocket
		memBytes += m.Stats.Bytes
	}
	r.Set("mem.copies", "", float64(copies))
	r.Set("mem.cross_socket", "", float64(cross))
	r.Set("mem.bytes", "bytes", float64(memBytes))

	// Collective arrival skew (Proficz's imbalance observable) — only
	// available when a trace recorder captured the collective spans.
	if tr := w.Tracer(); tr != nil {
		if ar := tr.CollectiveArrivals(); ar.Ops > 0 {
			r.Set("coll.ops", "", float64(ar.Ops))
			r.Set("coll.arrival_spread.max", "ns", float64(ar.MaxSpread))
			r.Set("coll.arrival_spread.mean", "ns", float64(ar.MeanSpread))
			r.Set("coll.imbalance.max", "", ar.MaxImbalance)
			r.Set("coll.imbalance.mean", "", ar.MeanImbalance)
		}
	}
	return r
}
