package bench

import (
	"fmt"

	"dpml/internal/mpi"
	"dpml/internal/sweep"
	"dpml/internal/topology"
)

// MBWConfig describes one osu_mbw_mr-style measurement: `pairs` sender/
// receiver pairs exchange windows of messages; the metric is aggregate
// throughput. Intra==true places both ends of every pair on one node
// (Figure 1a); otherwise all senders share node 0 and all receivers node
// 1 (Figures 1b-1d).
type MBWConfig struct {
	Pairs  int
	Intra  bool
	Window int // messages in flight per pair per iteration (osu uses 64)
	Iters  int
}

// MultiPairThroughput returns aggregate throughput in bytes/sec for each
// message size.
func MultiPairThroughput(cl *topology.Cluster, cfg MBWConfig, sizes []int) ([]float64, error) {
	if cfg.Pairs <= 0 || cfg.Window <= 0 || cfg.Iters <= 0 {
		return nil, fmt.Errorf("bench: bad mbw config %+v", cfg)
	}
	var job *topology.Job
	var err error
	if cfg.Intra {
		job, err = topology.NewJob(cl, 1, 2*cfg.Pairs)
	} else {
		job, err = topology.NewJob(cl, 2, cfg.Pairs)
	}
	if err != nil {
		return nil, err
	}
	w := mpi.NewWorld(job, mpi.Config{})
	// Pairing is (i, pairs+i) in both modes. Intra-node, with the block
	// CPU mapping this puts every sender on socket 0 and every receiver
	// on socket 1 (for pairs <= cores/socket), exactly like running
	// osu_mbw_mr with default placement on a dual-socket node — and,
	// importantly, uniformly cross-socket at every pair count, so
	// relative throughput isolates concurrency from placement.
	peer := func(rank int) (other int, sender bool) {
		if rank < cfg.Pairs {
			return rank + cfg.Pairs, true
		}
		return rank - cfg.Pairs, false
	}
	out := make([]float64, len(sizes))
	err = w.Run(func(r *mpi.Rank) error {
		c := w.CommWorld()
		other, sender := peer(r.Rank())
		ack := mpi.NewPhantom(mpi.Int32, 1)
		for si, bytes := range sizes {
			count := bytes / 4
			if count < 1 {
				count = 1
			}
			v := mpi.NewPhantom(mpi.Float32, count)
			r.Barrier(c)
			start := r.Now()
			for it := 0; it < cfg.Iters; it++ {
				if sender {
					reqs := make([]*mpi.Request, cfg.Window)
					for m := 0; m < cfg.Window; m++ {
						reqs[m] = r.Isend(c, other, m, v)
					}
					r.WaitAll(reqs...)
					r.Recv(c, other, 1<<19, ack)
				} else {
					reqs := make([]*mpi.Request, cfg.Window)
					for m := 0; m < cfg.Window; m++ {
						reqs[m] = r.Irecv(c, other, m, v)
					}
					r.WaitAll(reqs...)
					r.Send(c, other, 1<<19, ack)
				}
			}
			elapsed := r.Now().Sub(start)
			r.Barrier(c)
			if r.Rank() == 0 {
				total := float64(cfg.Pairs) * float64(cfg.Window) * float64(cfg.Iters) * float64(count*4)
				out[si] = total / elapsed.Seconds()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RelativeThroughput builds a Figure-1-style table: for each pair count,
// aggregate throughput relative to a single pair, per message size. The
// single-pair baseline and every pair count run as independent sweep jobs
// bounded by `jobs` workers (0 = all cores); the division happens after
// the fan-in, so results match the serial run exactly.
func RelativeThroughput(id, title string, cl *topology.Cluster, intra bool, pairCounts []int, sizes []int, window, iters, jobs int) (*Table, error) {
	counts := append([]int{1}, pairCounts...)
	thrs, err := sweep.Map(jobs, counts, func(_ int, pairs int) ([]float64, error) {
		return MultiPairThroughput(cl, MBWConfig{Pairs: pairs, Intra: intra, Window: window, Iters: iters}, sizes)
	})
	if err != nil {
		return nil, err
	}
	base := thrs[0]
	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "bytes",
		YLabel: "throughput relative to 1 pair",
	}
	for pi, pairs := range pairCounts {
		thr := thrs[pi+1]
		s := Series{Label: fmt.Sprintf("%d pairs", pairs)}
		for i, x := range sizes {
			rel := 0.0
			if base[i] > 0 {
				rel = thr[i] / base[i]
			}
			s.Points = append(s.Points, Point{X: x, Y: rel})
		}
		t.Series = append(t.Series, s)
	}
	return t, nil
}
