package bench

import (
	"strings"
	"testing"
)

// TestLintWallNote runs the in-process lint timing once: the note must
// render, name the tool, and — on a clean tree — report zero findings.
func TestLintWallNote(t *testing.T) {
	note, ok := lintWallNote()
	if !ok {
		t.Fatal("lintWallNote found no module root from the test working directory")
	}
	if !strings.HasPrefix(note, "dpml-lint ./...:") {
		t.Fatalf("note %q does not name the tool", note)
	}
	if !strings.Contains(note, " 0 findings") {
		t.Fatalf("lint run over the real tree is not clean: %s", note)
	}
}
