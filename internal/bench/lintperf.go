package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dpml/internal/lint"
)

// lintWallNote times a full in-process dpml-lint run — loading and
// type-checking every module package from source, building the
// whole-module call graph, and running all ten analyzers — and renders
// it as a report note. The figure of interest is wall time: the
// interprocedural passes must stay well under ~30s on a single-core CI
// runner, and the note keeps that visible in BENCH_sim.json without
// gating (CheckRegression reads Scenarios only). ok is false when the
// module root cannot be found (e.g. an installed binary run outside
// the repo) or loading fails; the perf suite then simply omits the
// note.
func lintWallNote() (string, bool) {
	root, ok := findModuleRoot()
	if !ok {
		return "", false
	}
	start := time.Now()
	loader, err := lint.NewLoader(root)
	if err != nil {
		return "", false
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return "", false
	}
	findings := lint.RunModule(pkgs, loader.Loaded(), lint.Analyzers())
	return fmt.Sprintf("dpml-lint ./...: %.2fs wall, %d packages, %d findings (ten analyzers incl. whole-module call graph; informational, budget ~30s)",
		time.Since(start).Seconds(), len(pkgs), len(findings)), true
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, bool) {
	dir, err := os.Getwd()
	if err != nil {
		return "", false
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, true
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", false
		}
		dir = parent
	}
}
