// Package bench is the measurement harness: an osu_allreduce-style
// latency loop, an osu_mbw_mr-style multi-pair throughput benchmark, and
// one driver per figure of the paper's evaluation section, each returning
// a Table whose rows mirror what the paper plots.
package bench

import (
	"fmt"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/topology"
)

// SpecChooser picks an allreduce configuration for a message size, like a
// library's selection logic. It runs once per (size) on every rank with
// identical results (it must be a pure function of its arguments).
type SpecChooser func(e *core.Engine, bytes int) core.Spec

// FixedSpec adapts a constant Spec to a SpecChooser.
func FixedSpec(s core.Spec) SpecChooser {
	return func(*core.Engine, int) core.Spec { return s }
}

// LibrarySpec adapts a library's decision table to a SpecChooser.
func LibrarySpec(lib core.Library) SpecChooser {
	return func(e *core.Engine, bytes int) core.Spec { return e.SpecFor(lib, bytes) }
}

// AllreduceLatency measures the average allreduce latency (as rank 0 sees
// it, like osu_allreduce) for each message size, running `iters` timed
// iterations after `warmup` untimed ones, all within a single simulated
// job. Payloads are phantom float32 vectors (MPI_FLOAT/MPI_SUM, the
// paper's microbenchmark configuration).
func AllreduceLatency(cl *topology.Cluster, nodes, ppn int, choose SpecChooser, sizes []int, iters, warmup int) ([]sim.Duration, error) {
	return AllreduceLatencyCfg(mpi.Config{}, cl, nodes, ppn, choose, sizes, iters, warmup)
}

// AllreduceLatencyCfg is AllreduceLatency with an explicit world config,
// letting callers inject faults, arm the virtual-time watchdog, or attach
// a tracer. The zero Config reproduces AllreduceLatency bit for bit.
func AllreduceLatencyCfg(cfg mpi.Config, cl *topology.Cluster, nodes, ppn int, choose SpecChooser, sizes []int, iters, warmup int) ([]sim.Duration, error) {
	if iters <= 0 {
		return nil, fmt.Errorf("bench: iters = %d", iters)
	}
	job, err := topology.NewJob(cl, nodes, ppn)
	if err != nil {
		return nil, err
	}
	e := core.NewEngine(mpi.NewWorld(job, cfg))
	out := make([]sim.Duration, len(sizes))
	err = e.W.Run(func(r *mpi.Rank) error {
		world := e.W.CommWorld()
		for si, bytes := range sizes {
			count := bytes / 4
			if count < 1 {
				count = 1
			}
			v := mpi.NewPhantom(mpi.Float32, count)
			spec := choose(e, count*4)
			for i := 0; i < warmup; i++ {
				if err := e.Allreduce(r, spec, mpi.Sum, v); err != nil {
					return err
				}
			}
			r.Barrier(world)
			start := r.Now()
			for i := 0; i < iters; i++ {
				if err := e.Allreduce(r, spec, mpi.Sum, v); err != nil {
					return err
				}
			}
			elapsed := r.Now().Sub(start)
			r.Barrier(world)
			if r.Rank() == 0 {
				out[si] = elapsed / sim.Duration(iters)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LatencySeries runs AllreduceLatency and packages the result as a Series
// with Y in microseconds.
func LatencySeries(label string, cl *topology.Cluster, nodes, ppn int, choose SpecChooser, sizes []int, iters, warmup int) (Series, error) {
	return LatencySeriesCfg(mpi.Config{}, label, cl, nodes, ppn, choose, sizes, iters, warmup)
}

// LatencySeriesCfg is LatencySeries with an explicit world config (see
// AllreduceLatencyCfg).
func LatencySeriesCfg(cfg mpi.Config, label string, cl *topology.Cluster, nodes, ppn int, choose SpecChooser, sizes []int, iters, warmup int) (Series, error) {
	lat, err := AllreduceLatencyCfg(cfg, cl, nodes, ppn, choose, sizes, iters, warmup)
	if err != nil {
		return Series{}, fmt.Errorf("%s: %w", label, err)
	}
	s := Series{Label: label, Points: make([]Point, len(sizes))}
	for i, bytes := range sizes {
		s.Points[i] = Point{X: bytes, Y: lat[i].Micros()}
	}
	return s, nil
}

// Paper-style size sweeps (powers of four, 4B to 1MB).
func sweepSizes(quick bool) []int {
	if quick {
		return []int{4, 256, 4 << 10, 64 << 10, 512 << 10}
	}
	return []int{4, 16, 64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}
}

// smallSizes is the SHArP-relevant range of Figure 8.
func smallSizes(quick bool) []int {
	if quick {
		return []int{8, 256, 2 << 10}
	}
	return []int{4, 8, 16, 32, 64, 128, 256, 512, 1 << 10, 2 << 10, 4 << 10}
}
