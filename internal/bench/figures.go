package bench

import (
	"fmt"

	"dpml/internal/apps/hpcg"
	"dpml/internal/apps/miniamr"
	"dpml/internal/core"
	"dpml/internal/costmodel"
	"dpml/internal/faults"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/sweep"
	"dpml/internal/topology"
)

// Options scales a figure run. Quick shrinks job sizes and sweeps so the
// whole suite runs in seconds (used by tests and `go test -bench`); the
// full setting reproduces the paper's published job shapes.
type Options struct {
	Quick  bool
	Iters  int // timed iterations per point (default 3 quick / 5 full)
	Warmup int // untimed iterations per point (default 1)

	// Jobs bounds how many independent simulated jobs (series, sweep
	// points, grid cells) run concurrently on host threads: 0 uses every
	// core (GOMAXPROCS), 1 runs serially. Simulations are deterministic
	// and share no state, and results are collected in submission order,
	// so output is byte-identical for every value of Jobs.
	Jobs int

	// FaultSpec, when non-nil, injects a deterministic fault plan
	// (instantiated per job shape) into every allreduce-latency figure;
	// the "faults" figure uses its classes in place of the default full
	// set. Nil leaves every run on the healthy fabric, bit-identical to
	// a build without the fault layer.
	FaultSpec *faults.Spec
	// FaultSeed is the base seed the "faults" figure derives its plans
	// from; different seeds draw different ranks, windows, and factors.
	FaultSeed uint64
	// Watchdog, when positive, arms the per-job virtual-time watchdog:
	// a simulated job that has not completed by this virtual deadline
	// aborts with a diagnostic error instead of running forever.
	Watchdog sim.Duration
}

// latencyConfig builds the per-job world config for a latency run on the
// given shape, applying the options' fault spec and watchdog. Default
// options yield the zero config (healthy fabric, no watchdog).
func (o Options) latencyConfig(cl *topology.Cluster, nodes, ppn int) mpi.Config {
	return mpi.Config{
		Watchdog: o.Watchdog,
		Faults: o.FaultSpec.Instantiate(faults.Shape{
			Ranks: nodes * ppn, Nodes: nodes, HCAs: cl.HCAs,
		}),
	}
}

func (o Options) withDefaults() Options {
	if o.Iters <= 0 {
		if o.Quick {
			o.Iters = 3
		} else {
			o.Iters = 5
		}
	}
	if o.Warmup <= 0 {
		o.Warmup = 1
	}
	return o
}

// FigureIDs lists every reproducible figure in paper order.
func FigureIDs() []string {
	return []string{
		"fig1a", "fig1b", "fig1c", "fig1d",
		"fig4", "fig5", "fig6", "fig7",
		"fig8a", "fig8b", "fig8c",
		"fig9a", "fig9b", "fig9c", "fig9d",
		"fig10",
		"fig11a", "fig11b", "fig11c",
		"model", "phases", "pipeline", "noise", "eager", "faults",
		"grandprix",
	}
}

// Figure regenerates one of the paper's figures and returns its table.
func Figure(id string, opt Options) (*Table, error) {
	opt = opt.withDefaults()
	switch id {
	case "fig1a":
		return figure1(id, "Relative throughput, intra-node (Xeon)", topology.ClusterC(), true, opt)
	case "fig1b":
		return figure1(id, "Relative throughput, inter-node Xeon+InfiniBand", topology.ClusterB(), false, opt)
	case "fig1c":
		return figure1(id, "Relative throughput, inter-node Xeon+Omni-Path", topology.ClusterC(), false, opt)
	case "fig1d":
		return figure1(id, "Relative throughput, inter-node KNL+Omni-Path", topology.ClusterD(), false, opt)
	case "fig4":
		// fig4 doubles as the extension showcase: alongside the paper's
		// leader sweep it carries one series per related-work family so
		// the cluster-A panel ranks them against DPML at every size.
		return leaderSweep(id, topology.ClusterA(), 16, 28, true, opt)
	case "fig5":
		return leaderSweep(id, topology.ClusterB(), 64, 28, false, opt)
	case "fig6":
		return leaderSweep(id, topology.ClusterC(), 64, 28, false, opt)
	case "fig7":
		return leaderSweep(id, topology.ClusterD(), 32, 32, false, opt)
	case "fig8a":
		return sharpComparison(id, 1, opt)
	case "fig8b":
		return sharpComparison(id, 4, opt)
	case "fig8c":
		return sharpComparison(id, 28, opt)
	case "fig9a":
		return libraryComparison(id, topology.ClusterA(), 16, 28, false, opt)
	case "fig9b":
		return libraryComparison(id, topology.ClusterB(), 64, 28, false, opt)
	case "fig9c":
		return libraryComparison(id, topology.ClusterC(), 64, 28, true, opt)
	case "fig9d":
		return libraryComparison(id, topology.ClusterD(), 32, 32, true, opt)
	case "fig10":
		return libraryComparison(id, topology.ClusterD(), 160, 64, true, opt)
	case "fig11a":
		return hpcgFigure(id, opt)
	case "fig11b":
		return miniamrFigure(id, topology.ClusterC(), opt)
	case "fig11c":
		return miniamrFigure(id, topology.ClusterD(), opt)
	case "model":
		return modelComparison(id, opt)
	case "phases":
		return phaseBreakdown(id, opt)
	case "pipeline":
		return pipelineAblation(id, opt)
	case "noise":
		return noiseSensitivity(id, opt)
	case "eager":
		return eagerAblation(id, opt)
	case "faults":
		return faultSweep(id, opt)
	case "grandprix":
		return grandPrix(id, opt)
	}
	return nil, fmt.Errorf("bench: unknown figure %q (known: %v)", id, FigureIDs())
}

// figure1 reproduces one panel of Figure 1: relative throughput of
// 2/4/8/16 communicating pairs vs one pair.
func figure1(id, title string, cl *topology.Cluster, intra bool, opt Options) (*Table, error) {
	pairs := []int{2, 4, 8, 16}
	sizes := sweepSizes(opt.Quick)
	window, iters := 64, 2
	if opt.Quick {
		window = 16
	}
	if intra && cl.CoresPerNode() < 32 {
		pairs = []int{2, 4, 8} // 16 intra-node pairs need 32 cores
	}
	t, err := RelativeThroughput(id, title, cl, intra, pairs, sizes, window, iters, opt.Jobs)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper Fig 1: shm and IB scale with pairs at all sizes; Omni-Path scales only in Zone A (small)")
	return t, nil
}

// leaderCandidates is the paper's leader-count sweep, clamped to ppn.
func leaderCandidates(ppn int) []int {
	var out []int
	for _, l := range []int{1, 2, 4, 8, 16} {
		if l <= ppn {
			out = append(out, l)
		}
	}
	return out
}

// gridCell indexes one point of a two-dimensional sweep (series row,
// sweep-point column) so grid figures can fan every cell as its own job.
type gridCell struct{ row, col int }

// gridCells enumerates rows x cols cells in row-major order.
func gridCells(rows, cols int) []gridCell {
	out := make([]gridCell, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out = append(out, gridCell{r, c})
		}
	}
	return out
}

// quickShrink reduces a job to test scale.
func quickShrink(quick bool, nodes, ppn int) (int, int) {
	if !quick {
		return nodes, ppn
	}
	if nodes > 8 {
		nodes = 8
	}
	if ppn > 8 {
		ppn = 8
	}
	return nodes, ppn
}

// designCase pairs a series label with the reduction spec it measures.
type designCase struct {
	label string
	spec  core.Spec
}

// extensionCases lists the related-work families raced against DPML in
// the extended figures (fig4, faults, grandprix): the dual-root
// doubly-pipelined tree, the generalized group allreduce, and both
// arrival-pattern-aware designs.
func extensionCases() []designCase {
	return []designCase{
		{"dualroot-s4", core.DualRoot(4)},
		{"genall-g4", core.GenAll(4)},
		{"pap-sorted", core.PAPSorted()},
		{"pap-ring", core.PAPRing()},
	}
}

// leaderSweep reproduces Figures 4-7: allreduce latency per message size
// for 1, 2, 4, 8, 16 leaders per node. With extended set (fig4 only, so
// figs 5-7 stay byte-identical to the paper-only build) it appends one
// series per related-work family after the leader sweep.
func leaderSweep(id string, cl *topology.Cluster, nodes, ppn int, extended bool, opt Options) (*Table, error) {
	nodes, ppn = quickShrink(opt.Quick, nodes, ppn)
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Impact of number of leaders, %s, %d nodes x %d ppn (%d procs)", cl.Name, nodes, ppn, nodes*ppn),
		XLabel: "bytes",
		YLabel: "latency (us)",
	}
	sizes := sweepSizes(opt.Quick)
	series, err := sweep.Map(opt.Jobs, leaderCandidates(ppn), func(_ int, l int) (Series, error) {
		return LatencySeriesCfg(opt.latencyConfig(cl, nodes, ppn), fmt.Sprintf("%d-leader", l), cl, nodes, ppn,
			FixedSpec(core.DPML(l)), sizes, opt.Iters, opt.Warmup)
	})
	if err != nil {
		return nil, err
	}
	t.Series = series
	leaderCount := len(t.Series)
	if extended {
		ext, err := sweep.Map(opt.Jobs, extensionCases(), func(_ int, cse designCase) (Series, error) {
			return LatencySeriesCfg(opt.latencyConfig(cl, nodes, ppn), cse.label, cl, nodes, ppn,
				FixedSpec(cse.spec), sizes, opt.Iters, opt.Warmup)
		})
		if err != nil {
			return nil, err
		}
		t.Series = append(t.Series, ext...)
	}
	if leaderCount > 1 {
		last := t.Series[leaderCount-1].Label
		t.AddSpeedupNote(last, "1-leader")
		t.Notes = append(t.Notes, "paper: 4.9x (cluster B) / 4.3x (cluster C) at 512KB with 16 vs 1 leaders")
	}
	if extended {
		t.Notes = append(t.Notes, "extension series: dual-root pipelined tree, generalized group allreduce, and arrival-aware designs on the same shape (healthy fabric: pap-ring degenerates to the flat ring)")
	}
	return t, nil
}

// sharpCase pairs a label with a reduction design for the SHArP figures.
type sharpCase struct {
	label string
	spec  core.Spec
}

func sharpCases() []sharpCase {
	return []sharpCase{
		{"host-based", core.HostBased()},
		{"node-leader", core.Spec{Design: core.DesignSharpNode}},
		{"socket-leader", core.Spec{Design: core.DesignSharpSocket}},
	}
}

// sharpComparison reproduces one panel of Figure 8: host-based vs SHArP
// node-leader vs socket-leader on 16 nodes of cluster A.
func sharpComparison(id string, ppn int, opt Options) (*Table, error) {
	cl := topology.ClusterA()
	nodes := 16
	if opt.Quick {
		nodes = 8
		if ppn > 8 {
			ppn = 8
		}
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("SHArP designs, %s, %d nodes x %d ppn", cl.Name, nodes, ppn),
		XLabel: "bytes",
		YLabel: "latency (us)",
	}
	sizes := smallSizes(opt.Quick)
	cases := sharpCases()
	series, err := sweep.Map(opt.Jobs, cases, func(_ int, cse sharpCase) (Series, error) {
		return LatencySeriesCfg(opt.latencyConfig(cl, nodes, ppn), cse.label, cl, nodes, ppn,
			FixedSpec(cse.spec), sizes, opt.Iters, opt.Warmup)
	})
	if err != nil {
		return nil, err
	}
	t.Series = series
	t.AddSpeedupNote("node-leader", "host-based")
	t.AddSpeedupNote("socket-leader", "host-based")
	t.Notes = append(t.Notes, "paper: SHArP up to 2.5x at ppn=1; +80%/+100% (node/socket) at ppn=4; +46%/+73% at ppn=28; host wins by 4KB")
	return t, nil
}

// libraryComparison reproduces Figures 9 and 10: the proposed design's
// best configuration against the MVAPICH2 and Intel MPI baselines.
func libraryComparison(id string, cl *topology.Cluster, nodes, ppn int, withIntel bool, opt Options) (*Table, error) {
	nodes, ppn = quickShrink(opt.Quick, nodes, ppn)
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("MPI_Allreduce vs state-of-the-art, %s, %d nodes x %d ppn (%d procs)", cl.Name, nodes, ppn, nodes*ppn),
		XLabel: "bytes",
		YLabel: "latency (us)",
	}
	libs := []core.Library{core.LibMVAPICH2}
	if withIntel {
		libs = append(libs, core.LibIntelMPI)
	}
	libs = append(libs, core.LibProposed)
	sizes := sweepSizes(opt.Quick)
	series, err := sweep.Map(opt.Jobs, libs, func(_ int, lib core.Library) (Series, error) {
		return LatencySeriesCfg(opt.latencyConfig(cl, nodes, ppn), string(lib), cl, nodes, ppn,
			LibrarySpec(lib), sizes, opt.Iters, opt.Warmup)
	})
	if err != nil {
		return nil, err
	}
	t.Series = series
	t.AddSpeedupNote("proposed", "mvapich2")
	if withIntel {
		t.AddSpeedupNote("proposed", "intelmpi")
	}
	t.Notes = append(t.Notes, "paper Fig 9: proposed up to 3.59x (A) / 3.08x (B) vs MVAPICH2; 2.98x/2.3x vs Intel MPI, 1.4x/3.31x vs MVAPICH2 (C/D); Fig 10: +207% vs MVAPICH2, +48% vs Intel MPI at 10,240 procs")
	return t, nil
}

// hpcgFigure reproduces Figure 11a: HPCG DDOT time under the SHArP
// designs at 56/224/448 processes (28 ppn on cluster A).
func hpcgFigure(id string, opt Options) (*Table, error) {
	cl := topology.ClusterA()
	shapes := []struct{ nodes, ppn int }{{2, 28}, {8, 28}, {16, 28}}
	iters := 30
	if opt.Quick {
		shapes = []struct{ nodes, ppn int }{{2, 8}, {4, 8}}
		iters = 10
	}
	t := &Table{
		ID:     id,
		Title:  "HPCG DDOT time with SHArP designs, " + cl.Name,
		XLabel: "processes",
		YLabel: "DDOT time (us)",
	}
	cases := sharpCases()
	// One job per (design, job shape) grid cell; cells land back in
	// row-major order, so series assembly below is deterministic.
	cells := gridCells(len(cases), len(shapes))
	pts, err := sweep.Map(opt.Jobs, cells, func(_ int, c gridCell) (Point, error) {
		cse, shape := cases[c.row], shapes[c.col]
		job, err := topology.NewJob(cl, shape.nodes, shape.ppn)
		if err != nil {
			return Point{}, err
		}
		e := core.NewEngine(mpi.NewWorld(job, mpi.Config{}))
		res, err := hpcg.Run(e, hpcg.Config{
			Nx: 16, Ny: 16, Nz: 8, Iterations: iters, Spec: cse.spec,
		})
		if err != nil {
			return Point{}, fmt.Errorf("%s at %d procs: %w", cse.label, job.NumProcs(), err)
		}
		return Point{X: job.NumProcs(), Y: res.DDOTTime.Micros()}, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, cse := range cases {
		t.Series = append(t.Series, Series{
			Label:  cse.label,
			Points: pts[ci*len(shapes) : (ci+1)*len(shapes)],
		})
	}
	t.Notes = append(t.Notes, "paper: up to 35% lower DDOT time at 56 procs, ~10% at 224; gain shrinks as local work grows (weak scaling)")
	return t, nil
}

// miniamrFigure reproduces Figure 11b/11c: miniAMR refinement time per
// library.
func miniamrFigure(id string, cl *topology.Cluster, opt Options) (*Table, error) {
	shapes := []struct{ nodes, ppn int }{{8, 16}, {16, 16}}
	steps := 4
	if opt.Quick {
		shapes = []struct{ nodes, ppn int }{{2, 8}, {4, 8}}
		steps = 2
	}
	t := &Table{
		ID:     id,
		Title:  "miniAMR mesh refinement time, " + cl.Name,
		XLabel: "processes",
		YLabel: "refinement time (us)",
	}
	libs := core.Libraries()
	cells := gridCells(len(libs), len(shapes))
	pts, err := sweep.Map(opt.Jobs, cells, func(_ int, c gridCell) (Point, error) {
		lib, shape := libs[c.row], shapes[c.col]
		job, err := topology.NewJob(cl, shape.nodes, shape.ppn)
		if err != nil {
			return Point{}, err
		}
		e := core.NewEngine(mpi.NewWorld(job, mpi.Config{}))
		res, err := miniamr.Run(e, miniamr.Config{
			BlocksPerRank: 32, BlockBytes: 4096, Steps: steps, Library: lib,
		})
		if err != nil {
			return Point{}, fmt.Errorf("%s at %d procs: %w", lib, job.NumProcs(), err)
		}
		return Point{X: job.NumProcs(), Y: res.RefineTime.Micros()}, nil
	})
	if err != nil {
		return nil, err
	}
	for li, lib := range libs {
		t.Series = append(t.Series, Series{
			Label:  string(lib),
			Points: pts[li*len(shapes) : (li+1)*len(shapes)],
		})
	}
	t.Notes = append(t.Notes, "paper: proposed up to 40%/20% over MVAPICH2/Intel MPI on C, 60%/20% on D")
	return t, nil
}

// modelComparison contrasts Section 5's analytic predictions (Eq. 7) with
// simulated DPML latency across leader counts, and reports the optimal
// leader count both ways.
func modelComparison(id string, opt Options) (*Table, error) {
	cl := topology.ClusterB()
	nodes, ppn := 16, 28
	if opt.Quick {
		nodes, ppn = 8, 8
	}
	const bytes = 512 << 10
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Cost model (Eq. 7) vs simulation, %s, %d nodes x %d ppn, 512KB", cl.Name, nodes, ppn),
		XLabel: "leaders",
		YLabel: "latency (us)",
	}
	params := costmodel.FromCluster(cl)
	model := Series{Label: "model"}
	simulated := Series{Label: "simulated"}
	leaders := []int{1, 2, 4, 8, 16}
	cand := leaderCandidates(ppn)
	// The analytic points are arithmetic; only the simulations fan out.
	lats, err := sweep.Map(opt.Jobs, cand, func(_ int, l int) (sim.Duration, error) {
		lat, err := AllreduceLatencyCfg(opt.latencyConfig(cl, nodes, ppn), cl, nodes, ppn,
			FixedSpec(core.DPML(l)), []int{bytes}, opt.Iters, opt.Warmup)
		if err != nil {
			return 0, err
		}
		return lat[0], nil
	})
	if err != nil {
		return nil, err
	}
	for i, l := range cand {
		p := params.With(nodes*ppn, nodes, l, bytes)
		model.Points = append(model.Points, Point{X: l, Y: p.DPML() * 1e6})
		simulated.Points = append(simulated.Points, Point{X: l, Y: lats[i].Micros()})
	}
	t.Series = []Series{model, simulated}
	// Optimal leader count, both ways.
	bestModel := params.With(nodes*ppn, nodes, 1, bytes).OptimalLeaders()
	bestSim, bestY := 0, 0.0
	for _, pt := range simulated.Points {
		if bestSim == 0 || pt.Y < bestY {
			bestSim, bestY = pt.X, pt.Y
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("optimal leaders: model=%d simulated=%d (candidates %v)", bestModel, bestSim, leaders))
	return t, nil
}

// AllFigures regenerates every figure in paper order. Figures run through
// the sweep pool like their inner series do; tables come back in id order
// regardless of completion order.
func AllFigures(opt Options) ([]*Table, error) {
	return sweep.Map(opt.Jobs, FigureIDs(), func(_ int, id string) (*Table, error) {
		tb, err := Figure(id, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		return tb, nil
	})
}
