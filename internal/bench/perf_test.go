package bench

import (
	"os"
	"strings"
	"testing"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/topology"
)

func TestCheckRegressionGomaxprocsMismatch(t *testing.T) {
	mk := func(gomaxprocs int, scenarios ...PerfScenario) *PerfReport {
		return &PerfReport{GoMaxProcs: gomaxprocs, Scenarios: scenarios}
	}
	baseline := mk(1,
		PerfScenario{Name: "serial", Procs: 64, Shards: 1, EventsPerSec: 1000},
		PerfScenario{Name: "sharded", Procs: 64, Shards: 4, EventsPerSec: 1000},
		PerfScenario{Name: "netsharded", Procs: 64, Shards: 1, NetShards: 4, EventsPerSec: 1000},
	)

	// Same gomaxprocs: a slow multi-shard scenario still gates.
	run := mk(1,
		PerfScenario{Name: "serial", Procs: 64, Shards: 1, EventsPerSec: 1000},
		PerfScenario{Name: "sharded", Procs: 64, Shards: 4, EventsPerSec: 100},
	)
	if notes, err := CheckRegression(run, baseline, 0.30); err == nil {
		t.Errorf("same-gomaxprocs multi-shard regression not gated (notes: %v)", notes)
	}

	// Different gomaxprocs: multi-shard scenarios (on either side) are
	// annotated instead of gated...
	run = mk(8,
		PerfScenario{Name: "serial", Procs: 64, Shards: 1, EventsPerSec: 1000},
		PerfScenario{Name: "sharded", Procs: 64, Shards: 4, EventsPerSec: 100},
		PerfScenario{Name: "netsharded", Procs: 64, Shards: 1, NetShards: 4, EventsPerSec: 100},
	)
	notes, err := CheckRegression(run, baseline, 0.30)
	if err != nil {
		t.Errorf("cross-gomaxprocs multi-shard slowdown gated: %v", err)
	}
	if len(notes) < 3 { // mismatch note + one per slow multi-shard scenario
		t.Errorf("notes = %v, want the gomaxprocs mismatch and both skipped scenarios annotated", notes)
	}
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"gomaxprocs", "sharded", "netsharded"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes missing %q:\n%s", want, joined)
		}
	}

	// ...but a single-threaded scenario still gates across gomaxprocs:
	// one kernel on one thread is the same measurement on any host config.
	run = mk(8, PerfScenario{Name: "serial", Procs: 64, Shards: 1, EventsPerSec: 100})
	if _, err := CheckRegression(run, baseline, 0.30); err == nil {
		t.Error("cross-gomaxprocs single-thread regression not gated")
	}
}

// TestExaEventCountInvariance pins the acceptance property of the
// 100k+-rank scenario: the simulated event count is identical for every
// (shards, netshards) combination. By default it runs the cluster E
// workload at a reduced node count (still spanning multiple leaf
// subtrees and the oversubscribed core); DPML_FULL_RESULTS=1 runs the
// full 4096x28 = 114,688-rank shape the BENCH_sim.json scenario uses.
func TestExaEventCountInvariance(t *testing.T) {
	cl := topology.ClusterE()
	nodes := 64 // 2 leaf subtrees of 32
	if os.Getenv("DPML_FULL_RESULTS") == "1" {
		nodes = cl.Nodes
	}
	cl = cl.WithNodes(nodes)
	run := func(shards, netShards int) uint64 {
		job, err := topology.NewJob(cl, nodes, 28)
		if err != nil {
			t.Fatal(err)
		}
		w := mpi.NewWorld(job, mpi.Config{Shards: shards, NetShards: netShards})
		e := core.NewEngine(w)
		err = w.Run(func(r *mpi.Rank) error {
			v := mpi.NewPhantom(mpi.Float32, (64<<10)/4)
			return e.Allreduce(r, core.DPML(14), mpi.Sum, v)
		})
		if err != nil {
			t.Fatalf("shards=%d netshards=%d: %v", shards, netShards, err)
		}
		return w.SimStats().Events
	}
	want := run(1, 1)
	if want == 0 {
		t.Fatal("serial run produced no events")
	}
	for _, cfg := range [][2]int{{2, 1}, {2, 4}, {4, 2}, {8, 3}} {
		if got := run(cfg[0], cfg[1]); got != want {
			t.Errorf("shards=%d netshards=%d: %d events, want %d", cfg[0], cfg[1], got, want)
		}
	}
}
