package bench

import (
	"fmt"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/sweep"
	"dpml/internal/topology"
)

// noiseSensitivity measures how system noise (deterministic per-message
// jitter) inflates allreduce latency for designs with different numbers
// of sequential communication steps. Flat recursive doubling has
// ceil(lg p) dependent inter-node steps per rank; DPML cuts that to
// ceil(lg h) on 1/l of the data, so it absorbs stragglers better — an
// effect the paper's step-count analysis (Section 5.3) implies but never
// plots. This is an extension figure.
func noiseSensitivity(id string, opt Options) (*Table, error) {
	cl := topology.ClusterB()
	nodes, ppn := 16, 28
	if opt.Quick {
		nodes, ppn = 4, 8
	}
	const bytes = 64 << 10
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Noise sensitivity at 64KB, %s, %d nodes x %d ppn", cl.Name, nodes, ppn),
		XLabel: "jitter (us/message)",
		YLabel: "latency (us)",
	}
	jitters := []sim.Duration{0, 2 * sim.Microsecond, 8 * sim.Microsecond, 32 * sim.Microsecond}
	cases := []struct {
		label string
		spec  core.Spec
	}{
		{"flat-rd", core.Flat(mpi.AlgRecursiveDoubling)},
		{"flat-rabenseifner", core.Flat(mpi.AlgRabenseifner)},
		{"dpml-16", core.DPML(minInt(16, ppn))},
	}
	cells := gridCells(len(cases), len(jitters))
	lats, err := sweep.Map(opt.Jobs, cells, func(_ int, c gridCell) (sim.Duration, error) {
		return jitteredLatency(cl, nodes, ppn, cases[c.row].spec, bytes, jitters[c.col], opt.Iters)
	})
	if err != nil {
		return nil, err
	}
	for ci, cse := range cases {
		s := Series{Label: cse.label}
		for ji, j := range jitters {
			s.Points = append(s.Points, Point{X: int(j.Micros()), Y: lats[ci*len(jitters)+ji].Micros()})
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = append(t.Notes, "extension figure: per-message jitter inflates multi-step flat algorithms more than the few-step DPML design")
	return t, nil
}

// jitteredLatency is AllreduceLatency for a single size under noise.
func jitteredLatency(cl *topology.Cluster, nodes, ppn int, spec core.Spec, bytes int, jitter sim.Duration, iters int) (sim.Duration, error) {
	job, err := topology.NewJob(cl, nodes, ppn)
	if err != nil {
		return 0, err
	}
	e := core.NewEngine(mpi.NewWorld(job, mpi.Config{Jitter: jitter, JitterSeed: 7}))
	var out sim.Duration
	err = e.W.Run(func(r *mpi.Rank) error {
		v := mpi.NewPhantom(mpi.Float32, bytes/4)
		if err := e.Allreduce(r, spec, mpi.Sum, v); err != nil {
			return err
		}
		r.Barrier(e.W.CommWorld())
		start := r.Now()
		for i := 0; i < iters; i++ {
			if err := e.Allreduce(r, spec, mpi.Sum, v); err != nil {
				return err
			}
		}
		if r.Rank() == 0 {
			out = r.Now().Sub(start) / sim.Duration(iters)
		}
		return nil
	})
	return out, err
}
