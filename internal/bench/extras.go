package bench

import (
	"fmt"

	"dpml/internal/core"
	"dpml/internal/costmodel"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/sweep"
	"dpml/internal/topology"
)

// The drivers in this file go beyond the paper's figures: ablations for
// design choices the paper motivates but does not plot separately.

// phaseBreakdown measures a leader rank's per-phase DPML times and sets
// them against the cost model's Eq. 2-6 terms.
func phaseBreakdown(id string, opt Options) (*Table, error) {
	cl := topology.ClusterB()
	nodes, ppn := 16, 28
	if opt.Quick {
		nodes, ppn = 4, 8
	}
	const bytes = 512 << 10
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("DPML phase breakdown at 512KB, %s, %d nodes x %d ppn (measured on leader 0 vs Eq. 2-6)", cl.Name, nodes, ppn),
		XLabel: "leaders",
		YLabel: "time (us)",
	}
	measured := map[string]*Series{
		"copy":   {Label: "copy"},
		"reduce": {Label: "reduce"},
		"inter":  {Label: "inter"},
		"bcast":  {Label: "bcast"},
	}
	model := map[string]*Series{
		"model-copy":    {Label: "model-copy"},
		"model-compute": {Label: "model-compute"},
		"model-comm":    {Label: "model-comm"},
	}
	params := costmodel.FromCluster(cl)
	cand := leaderCandidates(ppn)
	times, err := sweep.Map(opt.Jobs, cand, func(_ int, l int) (core.PhaseTimes, error) {
		var pt core.PhaseTimes
		job, err := topology.NewJob(cl, nodes, ppn)
		if err != nil {
			return pt, err
		}
		e := core.NewEngine(mpi.NewWorld(job, mpi.Config{}))
		err = e.W.Run(func(r *mpi.Rank) error {
			v := mpi.NewPhantom(mpi.Float32, bytes/4)
			// Warm up once so phase timings exclude first-op skew.
			if _, err := e.AllreduceProfiled(r, core.DPML(l), mpi.Sum, v); err != nil {
				return err
			}
			r.Barrier(e.W.CommWorld())
			res, err := e.AllreduceProfiled(r, core.DPML(l), mpi.Sum, v)
			if err != nil {
				return err
			}
			if r.Rank() == 0 {
				pt = res
			}
			return nil
		})
		return pt, err
	})
	if err != nil {
		return nil, err
	}
	for i, l := range cand {
		pt := times[i]
		measured["copy"].Points = append(measured["copy"].Points, Point{X: l, Y: pt.Copy.Micros()})
		measured["reduce"].Points = append(measured["reduce"].Points, Point{X: l, Y: pt.Reduce.Micros()})
		measured["inter"].Points = append(measured["inter"].Points, Point{X: l, Y: pt.Inter.Micros()})
		measured["bcast"].Points = append(measured["bcast"].Points, Point{X: l, Y: pt.Bcast.Micros()})
		p := params.With(nodes*ppn, nodes, l, bytes)
		model["model-copy"].Points = append(model["model-copy"].Points, Point{X: l, Y: p.CopyPhase() * 1e6})
		model["model-compute"].Points = append(model["model-compute"].Points, Point{X: l, Y: p.ComputePhase() * 1e6})
		model["model-comm"].Points = append(model["model-comm"].Points, Point{X: l, Y: p.CommPhase() * 1e6})
	}
	for _, k := range []string{"copy", "reduce", "inter", "bcast"} {
		t.Series = append(t.Series, *measured[k])
	}
	for _, k := range []string{"model-copy", "model-compute", "model-comm"} {
		t.Series = append(t.Series, *model[k])
	}
	t.Notes = append(t.Notes, "ablation beyond the paper: simulated phase times vs the Section 5 analytic terms")
	return t, nil
}

// pipelineAblation sweeps the DPML-Pipelined depth k (Section 4.2 / Eq. 5
// trade-off) for a very large message on Omni-Path.
func pipelineAblation(id string, opt Options) (*Table, error) {
	cl := topology.ClusterC()
	nodes, ppn := 16, 28
	if opt.Quick {
		nodes, ppn = 4, 8
	}
	l := 16
	if l > ppn {
		l = ppn
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("DPML-Pipelined depth sweep, %s, %d nodes x %d ppn, %d leaders", cl.Name, nodes, ppn, l),
		XLabel: "bytes",
		YLabel: "latency (us)",
	}
	sizes := []int{1 << 20, 4 << 20}
	if opt.Quick {
		sizes = []int{1 << 20}
	}
	series, err := sweep.Map(opt.Jobs, []int{1, 2, 4, 8, 16, 32}, func(_ int, k int) (Series, error) {
		spec := core.DPMLPipelined(l, k)
		if k == 1 {
			spec = core.DPML(l)
		}
		return LatencySeries(fmt.Sprintf("k=%d", k), cl, nodes, ppn,
			FixedSpec(spec), sizes, opt.Iters, opt.Warmup)
	})
	if err != nil {
		return nil, err
	}
	t.Series = series
	t.Notes = append(t.Notes, "ablation beyond the paper: Eq. 5 predicts k*a extra startup vs overlap gains; the sweet spot is the harness-measured minimum")
	return t, nil
}

// eagerAblation sweeps the eager/rendezvous threshold for the
// inter-leader phase (a DESIGN.md-listed ablation): rendezvous adds a
// handshake round trip per message but avoids copies for large payloads;
// the threshold decides where DPML's per-leader messages land.
func eagerAblation(id string, opt Options) (*Table, error) {
	cl := topology.ClusterB()
	nodes, ppn := 16, 28
	if opt.Quick {
		nodes, ppn = 4, 8
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Eager-threshold sensitivity, DPML-8, %s, %d nodes x %d ppn", cl.Name, nodes, ppn),
		XLabel: "bytes",
		YLabel: "latency (us)",
	}
	sizes := []int{4 << 10, 16 << 10, 64 << 10, 256 << 10}
	if opt.Quick {
		sizes = []int{16 << 10, 64 << 10}
	}
	thrs := []int{1, 4 << 10, 16 << 10, 64 << 10, 1 << 20}
	cells := gridCells(len(thrs), len(sizes))
	lats, err := sweep.Map(opt.Jobs, cells, func(_ int, c gridCell) (sim.Duration, error) {
		return thresholdLatency(cl, nodes, ppn, thrs[c.row], sizes[c.col], opt.Iters)
	})
	if err != nil {
		return nil, err
	}
	for ti, thr := range thrs {
		s := Series{Label: fmt.Sprintf("thr=%s", humanBytes(thr))}
		for si, bytes := range sizes {
			s.Points = append(s.Points, Point{X: bytes, Y: lats[ti*len(sizes)+si].Micros()})
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = append(t.Notes, "ablation: thr=1 forces rendezvous everywhere (handshake per message); thr=1M forces eager (extra copies are not modelled, so large-eager looks optimistic)")
	return t, nil
}

func thresholdLatency(cl *topology.Cluster, nodes, ppn, threshold, bytes, iters int) (sim.Duration, error) {
	job, err := topology.NewJob(cl, nodes, ppn)
	if err != nil {
		return 0, err
	}
	e := core.NewEngine(mpi.NewWorld(job, mpi.Config{EagerThreshold: threshold}))
	var out sim.Duration
	err = e.W.Run(func(r *mpi.Rank) error {
		v := mpi.NewPhantom(mpi.Float32, bytes/4)
		spec := core.DPML(minInt(8, ppn))
		if err := e.Allreduce(r, spec, mpi.Sum, v); err != nil {
			return err
		}
		r.Barrier(e.W.CommWorld())
		start := r.Now()
		for i := 0; i < iters; i++ {
			if err := e.Allreduce(r, spec, mpi.Sum, v); err != nil {
				return err
			}
		}
		if r.Rank() == 0 {
			out = r.Now().Sub(start) / sim.Duration(iters)
		}
		return nil
	})
	return out, err
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
