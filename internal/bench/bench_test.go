package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dpml/internal/core"
	"dpml/internal/topology"
)

func TestAllreduceLatencyBasics(t *testing.T) {
	sizes := []int{4, 4096}
	lat, err := AllreduceLatency(topology.ClusterB(), 2, 2, FixedSpec(core.DPML(1)), sizes, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat) != 2 || lat[0] <= 0 || lat[1] <= lat[0] {
		t.Fatalf("latencies %v: want positive and increasing with size", lat)
	}
	if _, err := AllreduceLatency(topology.ClusterB(), 2, 2, FixedSpec(core.DPML(1)), sizes, 0, 0); err == nil {
		t.Fatal("iters=0 accepted")
	}
}

func TestLatencyDeterministic(t *testing.T) {
	run := func() []float64 {
		s, err := LatencySeries("x", topology.ClusterC(), 2, 4, LibrarySpec(core.LibProposed),
			[]int{64, 64 << 10}, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		return []float64{s.Points[0].Y, s.Points[1].Y}
	}
	a, b := run(), run()
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("nondeterministic latency: %v vs %v", a, b)
	}
}

func TestMultiPairThroughputScalesWithPairsSmall(t *testing.T) {
	// Zone A property on Omni-Path: small-message aggregate throughput
	// grows nearly linearly with pairs.
	sizes := []int{64}
	one, err := MultiPairThroughput(topology.ClusterC(), MBWConfig{Pairs: 1, Window: 16, Iters: 2}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	four, err := MultiPairThroughput(topology.ClusterC(), MBWConfig{Pairs: 4, Window: 16, Iters: 2}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	rel := four[0] / one[0]
	if rel < 3 {
		t.Fatalf("4-pair relative throughput %.2f at 64B, want ~4", rel)
	}
}

func TestMultiPairThroughputFlatOnOmniPathLarge(t *testing.T) {
	sizes := []int{1 << 20}
	one, err := MultiPairThroughput(topology.ClusterC(), MBWConfig{Pairs: 1, Window: 8, Iters: 2}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := MultiPairThroughput(topology.ClusterC(), MBWConfig{Pairs: 8, Window: 8, Iters: 2}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	rel := eight[0] / one[0]
	if rel > 2 {
		t.Fatalf("8-pair relative throughput %.2f at 1MB on Omni-Path, want ~1 (Zone C)", rel)
	}
}

func TestMultiPairThroughputScalesOnIBLarge(t *testing.T) {
	sizes := []int{1 << 20}
	one, err := MultiPairThroughput(topology.ClusterB(), MBWConfig{Pairs: 1, Window: 8, Iters: 2}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := MultiPairThroughput(topology.ClusterB(), MBWConfig{Pairs: 8, Window: 8, Iters: 2}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	rel := eight[0] / one[0]
	if rel < 5 {
		t.Fatalf("8-pair relative throughput %.2f at 1MB on IB, want near 8 (Fig 1b)", rel)
	}
}

func TestIntraNodeThroughputScales(t *testing.T) {
	sizes := []int{64 << 10}
	one, err := MultiPairThroughput(topology.ClusterC(), MBWConfig{Pairs: 1, Intra: true, Window: 8, Iters: 2}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := MultiPairThroughput(topology.ClusterC(), MBWConfig{Pairs: 8, Intra: true, Window: 8, Iters: 2}, sizes)
	if err != nil {
		t.Fatal(err)
	}
	rel := eight[0] / one[0]
	if rel < 5 {
		t.Fatalf("8-pair intra-node relative throughput %.2f, want near 8 (Fig 1a)", rel)
	}
}

func TestMBWConfigValidation(t *testing.T) {
	for _, cfg := range []MBWConfig{{Pairs: 0, Window: 1, Iters: 1}, {Pairs: 1, Window: 0, Iters: 1}, {Pairs: 1, Window: 1, Iters: 0}} {
		if _, err := MultiPairThroughput(topology.ClusterB(), cfg, []int{4}); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestTableRenderAndHelpers(t *testing.T) {
	tab := &Table{
		ID: "t", Title: "demo", XLabel: "bytes", YLabel: "us",
		Series: []Series{
			{Label: "slow", Points: []Point{{4, 10}, {1 << 10, 100}}},
			{Label: "fast", Points: []Point{{4, 8}, {1 << 10, 25}}},
		},
	}
	if got := tab.XValues(); len(got) != 2 || got[0] != 4 || got[1] != 1024 {
		t.Fatalf("XValues = %v", got)
	}
	if tab.Find("fast") == nil || tab.Find("nope") != nil {
		t.Fatal("Find broken")
	}
	if r := tab.AddSpeedupNote("fast", "slow"); r != 4 {
		t.Fatalf("peak speedup %v, want 4 (100/25 at 1K)", r)
	}
	out := tab.String()
	for _, want := range []string{"demo", "slow", "fast", "1K", "4.00x", "note:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if y, ok := tab.Series[0].Y(4); !ok || y != 10 {
		t.Fatal("Series.Y broken")
	}
	if _, ok := tab.Series[0].Y(99); ok {
		t.Fatal("Series.Y invented a point")
	}
}

func TestFigureUnknownID(t *testing.T) {
	if _, err := Figure("fig99", Options{Quick: true}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

// TestEveryFigureRunsQuick is the integration test of the whole harness:
// every figure driver must produce a non-empty table at quick scale.
func TestEveryFigureRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep skipped in -short mode")
	}
	for _, id := range FigureIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab, err := Figure(id, Options{Quick: true, Iters: 2, Warmup: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Series) == 0 {
				t.Fatal("no series")
			}
			for _, s := range tab.Series {
				if len(s.Points) == 0 {
					t.Fatalf("series %q empty", s.Label)
				}
				for _, p := range s.Points {
					if p.Y < 0 {
						t.Fatalf("series %q has negative value at %d", s.Label, p.X)
					}
				}
			}
			if tab.String() == "" {
				t.Fatal("render empty")
			}
		})
	}
}

// TestFigureDeterministicAcrossJobs is the parallel-engine guarantee: a
// figure rendered serially and with an 8-worker sweep pool must be
// byte-identical, because jobs share no state and results are collected
// in submission order.
func TestFigureDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-jobs determinism check skipped in -short mode")
	}
	serial, err := Figure("fig4", Options{Quick: true, Iters: 2, Warmup: 1, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Figure("fig4", Options{Quick: true, Iters: 2, Warmup: 1, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.String(), parallel.String(); s != p {
		t.Fatalf("rendered tables differ between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

// TestFigureMatchesCommittedResults regenerates figures at the exact
// full-scale settings results/README.md documents and compares them
// byte-for-byte against the committed tables. This is the end-to-end
// determinism guarantee the scheduler relies on: any change to event
// ordering, floating-point summation order, or ready-queue FIFO order
// shows up here as a diff, not as a silently different paper artifact.
// fig4 covers the 64x28 multi-leader sweep; fig10 covers the 10,240-rank
// job whose scale exercises the heap and ready-ring hot paths.
func TestFigureMatchesCommittedResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale regeneration skipped in -short mode")
	}
	cases := []struct {
		id    string
		iters int
		slow  bool
	}{
		{"fig4", 2, false},
		// 10,240 procs at -iters 1 (results/README.md): minutes of wall
		// time, so it only runs when explicitly requested — it would blow
		// the default go test timeout in an ordinary ./... sweep.
		{"fig10", 1, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.id, func(t *testing.T) {
			if tc.slow && os.Getenv("DPML_FULL_RESULTS") == "" {
				t.Skip("set DPML_FULL_RESULTS=1 to regenerate the 10,240-rank table")
			}
			want, err := os.ReadFile(filepath.Join("..", "..", "results", tc.id+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			tab, err := Figure(tc.id, Options{Iters: tc.iters, Warmup: 1})
			if err != nil {
				t.Fatal(err)
			}
			// dpml-bench renders each table followed by a blank line.
			got := tab.String() + "\n"
			if got != string(want) {
				t.Fatalf("regenerated %s differs from committed results/%s.txt:\n--- got ---\n%s", tc.id, tc.id, got)
			}
		})
	}
}

func TestLeaderSweepShapeQuick(t *testing.T) {
	// The harness-level check of the paper's core result at quick scale:
	// 8 leaders beat 1 leader at the largest size.
	tab, err := leaderSweep("fig5q", topology.ClusterB(), 8, 8, false, Options{Quick: true, Iters: 2, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	one, eight := tab.Find("1-leader"), tab.Find("8-leader")
	if one == nil || eight == nil {
		t.Fatalf("missing series in %v", tab.Series)
	}
	big := tab.XValues()[len(tab.XValues())-1]
	y1, _ := one.Y(big)
	y8, _ := eight.Y(big)
	if y8 >= y1 {
		t.Fatalf("8-leader (%v us) not faster than 1-leader (%v us) at %d bytes", y8, y1, big)
	}
}

func TestTuneDPML(t *testing.T) {
	res, err := TuneDPML(topology.ClusterB(), 4, 8, []int{1, 4, 8, 16}, []int{64, 256 << 10}, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Series) != 3 { // l=16 > ppn is skipped
		t.Fatalf("series = %d, want 3", len(res.Table.Series))
	}
	if res.Best[64] > 4 {
		t.Fatalf("measured best at 64B = %d leaders, want few", res.Best[64])
	}
	if res.Best[256<<10] < 4 {
		t.Fatalf("measured best at 256KB = %d leaders, want many", res.Best[256<<10])
	}
	if res.Shipped[64] != 1 || res.Predicted[256<<10] < 4 {
		t.Fatalf("table/model lookups wrong: %+v %+v", res.Shipped, res.Predicted)
	}
	if len(res.Table.Notes) != 2 {
		t.Fatalf("notes = %v", res.Table.Notes)
	}
}

func TestTuneDPMLValidation(t *testing.T) {
	if _, err := TuneDPML(topology.ClusterB(), 2, 2, nil, []int{4}, 1, 0, 1); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, err := TuneDPML(topology.ClusterB(), 2, 2, []int{1}, nil, 1, 0, 1); err == nil {
		t.Fatal("empty sizes accepted")
	}
}
