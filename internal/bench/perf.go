package bench

// perf.go is the simulator-throughput suite behind `dpml-bench -perf`:
// it measures how fast the simulator itself runs, as distinct from what
// it predicts. Kernel scenarios report simulated events per wall-clock
// second for representative workloads; the figure section reports the
// wall time of regenerating each figure. The JSON output (committed as
// BENCH_sim.json) makes simulator performance diffable across commits.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/topology"
)

// PerfScenario is one kernel-throughput measurement: a fixed simulated
// workload with its event count and host wall time.
type PerfScenario struct {
	Name  string `json:"name"`
	Procs int    `json:"procs"`
	// Shards is the kernel shard count the scenario ran with (0 in old
	// baselines, meaning 1). Events is identical across shard counts of
	// the same scenario; wall time is what sharding buys.
	Shards int `json:"shards,omitempty"`
	// NetShards is the network kernel's water-fill worker count (0 in
	// old baselines, meaning 1). Like Shards it never changes Events —
	// only wall time.
	NetShards int    `json:"netshards,omitempty"`
	Events    uint64 `json:"events"`
	Switches  uint64 `json:"context_switches"`
	// Rounds is the number of coordinator window rounds the sharded run
	// used (0 for the serial kernel). With adaptive horizons this is the
	// direct measure of barrier batching: fewer rounds per event means
	// wider windows.
	Rounds uint64 `json:"rounds,omitempty"`
	// HeapHighWater is the scheduler's peak pending-event count — the
	// memory-footprint side of throughput. omitempty keeps reports from
	// older baselines comparable (CheckRegression ignores the field).
	HeapHighWater uint64  `json:"heap_high_water,omitempty"`
	WallSec       float64 `json:"wall_sec"`
	EventsPerSec  float64 `json:"events_per_sec"`
}

// PerfFigure is the wall-clock cost of regenerating one figure.
type PerfFigure struct {
	ID      string  `json:"id"`
	WallSec float64 `json:"wall_sec"`
}

// PerfReport is the schema of BENCH_sim.json.
type PerfReport struct {
	GoMaxProcs int            `json:"gomaxprocs"`
	Jobs       int            `json:"jobs"`
	Quick      bool           `json:"quick"`
	Scenarios  []PerfScenario `json:"scenarios"`
	Figures    []PerfFigure   `json:"figures"`
	// Notes are informational annotations (e.g. the dpml-lint wall
	// time): CheckRegression iterates Scenarios only, so notes never
	// gate, and omitempty keeps older baselines comparable.
	Notes        []string `json:"notes,omitempty"`
	TotalWallSec float64  `json:"total_wall_sec"`
}

// perfScenario times `iters` back-to-back allreduces on a fresh world and
// reads the kernel's event counters afterwards.
func perfScenario(name string, cl *topology.Cluster, nodes, ppn, shards, netShards int, spec core.Spec, bytes, iters int) (PerfScenario, error) {
	job, err := topology.NewJob(cl, nodes, ppn)
	if err != nil {
		return PerfScenario{}, err
	}
	w := mpi.NewWorld(job, mpi.Config{Shards: shards, NetShards: netShards})
	e := core.NewEngine(w)
	start := time.Now()
	err = w.Run(func(r *mpi.Rank) error {
		v := mpi.NewPhantom(mpi.Float32, bytes/4)
		for i := 0; i < iters; i++ {
			if err := e.Allreduce(r, spec, mpi.Sum, v); err != nil {
				return err
			}
		}
		return nil
	})
	wall := time.Since(start).Seconds()
	if err != nil {
		return PerfScenario{}, fmt.Errorf("%s: %w", name, err)
	}
	stats := w.SimStats()
	s := PerfScenario{
		Name:          name,
		Procs:         job.NumProcs(),
		Shards:        w.Shards(),
		NetShards:     w.NetShards(),
		Events:        stats.Events,
		Switches:      stats.ContextSwitch,
		Rounds:        w.Coordinator().Rounds(),
		HeapHighWater: stats.HeapHighWater,
		WallSec:       wall,
	}
	if wall > 0 {
		s.EventsPerSec = float64(s.Events) / wall
	}
	return s, nil
}

// SimPerf runs the simulator-throughput suite. Scenarios run serially so
// each wall time measures one world; figure regeneration honours opt.Jobs
// inside each figure but times figures one at a time for the same reason.
func SimPerf(opt Options) (*PerfReport, error) {
	return SimPerfFiltered(opt, "")
}

// SimPerfFiltered is SimPerf restricted to scenarios and figures whose
// name contains match (empty matches everything) — the profiling workflow
// is `dpml-bench -perf -perf-only dpml16 -cpuprofile cpu.pb.gz`, which
// times exactly one workload.
func SimPerfFiltered(opt Options, match string) (*PerfReport, error) {
	opt = opt.withDefaults()
	rep := &PerfReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Jobs:       opt.Jobs,
		Quick:      opt.Quick,
	}
	suiteStart := time.Now()

	type scenario struct {
		name       string
		cl         *topology.Cluster
		nodes, ppn int
		shards     int
		netShards  int
		spec       core.Spec
		bytes      int
		iters      int
	}
	scenarios := []scenario{
		// Iteration counts keep every scenario's wall time well above the
		// sub-50ms regime where one scheduler hiccup on a small host swings
		// events/sec by more than CheckRegression's tolerance.
		{"allreduce-dpml8-64KB-8x8", topology.ClusterB(), 8, 8, 1, 1, core.DPML(8), 64 << 10, 60},
		{"allreduce-flat-rd-64KB-8x8", topology.ClusterB(), 8, 8, 1, 1, core.Flat(mpi.AlgRecursiveDoubling), 64 << 10, 120},
		{"allreduce-dpml8-1MB-8x8", topology.ClusterC(), 8, 8, 1, 1, core.DPML(8), 1 << 20, 40},
		{"allreduce-sharp-node-256B-8x8", topology.ClusterA(), 8, 8, 1, 1, core.Spec{Design: core.DesignSharpNode}, 256, 600},
		// The extension families' representative: the dual-root pipelined
		// tree posts every receive up front, so its event density per
		// allreduce is the highest of the new designs.
		{"allreduce-dualroot-s4-64KB-8x8", topology.ClusterB(), 8, 8, 1, 1, core.DualRoot(4), 64 << 10, 60},
		// The fig10 job shape: 10,240 ranks in one world, the scale at
		// which ready-queue and flow-removal complexity dominates. Runs
		// even with Quick (it is one world, not a figure sweep). The
		// shardsN variants rerun it with the kernel partitioned across
		// that many threads, and the netshardsN variants additionally
		// water-fill independent link components on that many workers:
		// identical Events, shrinking wall time — the suite's single-run
		// parallel-scaling measurement.
		{"allreduce-dpml16-64KB-160x64", topology.ClusterD(), 160, 64, 1, 1, core.DPML(16), 64 << 10, 2},
		{"allreduce-dpml16-64KB-160x64-shards2", topology.ClusterD(), 160, 64, 2, 1, core.DPML(16), 64 << 10, 2},
		{"allreduce-dpml16-64KB-160x64-shards4", topology.ClusterD(), 160, 64, 4, 1, core.DPML(16), 64 << 10, 2},
		{"allreduce-dpml16-64KB-160x64-shards8", topology.ClusterD(), 160, 64, 8, 1, core.DPML(16), 64 << 10, 2},
		{"allreduce-dpml16-64KB-160x64-netshards4", topology.ClusterD(), 160, 64, 1, 4, core.DPML(16), 64 << 10, 2},
		{"allreduce-dpml16-64KB-160x64-shards4-netshards4", topology.ClusterD(), 160, 64, 4, 4, core.DPML(16), 64 << 10, 2},
		// The exascale regime the partitioned NET kernel exists for:
		// 4096 nodes x 28 ppn = 114,688 ranks in one world (cluster E,
		// 128 leaf subtrees, oversubscribed core). One allreduce at this
		// scale exercises every sharded path at once; Events stays
		// identical across shard and netshard counts like every other
		// scenario.
		{"allreduce-dpml14-64KB-4096x28-exa", topology.ClusterE(), 4096, 28, 4, 4, core.DPML(14), 64 << 10, 1},
	}
	for _, sc := range scenarios {
		if match != "" && !strings.Contains(sc.name, match) {
			continue
		}
		s, err := perfScenario(sc.name, sc.cl, sc.nodes, sc.ppn, sc.shards, sc.netShards, sc.spec, sc.bytes, sc.iters)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, s)
	}

	for _, id := range FigureIDs() {
		if match != "" && !strings.Contains(id, match) {
			continue
		}
		start := time.Now()
		if _, err := Figure(id, opt); err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		rep.Figures = append(rep.Figures, PerfFigure{ID: id, WallSec: time.Since(start).Seconds()})
	}
	// Full (unfiltered) runs also record the static-analysis wall time:
	// the whole-module call-graph passes re-type-check the tree from
	// source, and the note keeps that cost visible against its ~30s
	// single-core budget without making it a regression gate.
	if match == "" {
		if note, ok := lintWallNote(); ok {
			rep.Notes = append(rep.Notes, note)
		}
	}
	rep.TotalWallSec = time.Since(suiteStart).Seconds()
	return rep, nil
}

// CheckRegression compares r against a committed baseline report and
// returns an error naming every scenario whose events/sec fell below
// tolerance of the baseline. Small (<= 64-proc) scenarios gate at tol;
// larger scenarios still gate, but at a doubled tolerance (capped at
// 90%), because their wall times are noisier on loaded runners — a
// halving of 10k-rank throughput must fail CI even if a 15% wobble
// should not. Scenarios present on only one side are ignored (adding a
// scenario must not break CI).
//
// When the baseline was recorded at a different GOMAXPROCS than this
// run, wall-clock ratios for multi-threaded scenarios (shards or
// netshards > 1 on either side) compare incommensurable machines: a
// single-core baseline records honest coordination overhead, a
// multi-core run records speedup, and gating one against the other
// mis-fires in both directions. Those scenarios are annotated in the
// returned notes instead of gated; single-threaded scenarios still gate
// normally, and the mismatch itself is always noted.
func CheckRegression(r, baseline *PerfReport, tol float64) (notes []string, err error) {
	crossHost := r.GoMaxProcs != baseline.GoMaxProcs
	if crossHost {
		notes = append(notes, fmt.Sprintf(
			"baseline recorded at gomaxprocs=%d, this run at gomaxprocs=%d: multi-shard scenarios are annotated, not gated",
			baseline.GoMaxProcs, r.GoMaxProcs))
	}
	base := make(map[string]PerfScenario, len(baseline.Scenarios))
	for _, s := range baseline.Scenarios {
		base[s.Name] = s
	}
	var bad []string
	for _, s := range r.Scenarios {
		b, ok := base[s.Name]
		if !ok || b.EventsPerSec <= 0 {
			continue
		}
		scTol := tol
		if b.Procs > 64 {
			scTol = 2 * tol
			if scTol > 0.9 {
				scTol = 0.9
			}
		}
		slow := s.EventsPerSec < (1-scTol)*b.EventsPerSec
		if crossHost && (s.Shards > 1 || s.NetShards > 1 || b.Shards > 1 || b.NetShards > 1) {
			if slow {
				notes = append(notes, fmt.Sprintf("%s: %.0f events/sec vs baseline %.0f (-%.0f%%); not gated, gomaxprocs differs",
					s.Name, s.EventsPerSec, b.EventsPerSec, 100*(1-s.EventsPerSec/b.EventsPerSec)))
			}
			continue
		}
		if slow {
			bad = append(bad, fmt.Sprintf("%s: %.0f events/sec vs baseline %.0f (-%.0f%%, tolerance %.0f%%)",
				s.Name, s.EventsPerSec, b.EventsPerSec, 100*(1-s.EventsPerSec/b.EventsPerSec), 100*scTol))
		}
	}
	if len(bad) > 0 {
		return notes, fmt.Errorf("simulator throughput regression:\n  %s", strings.Join(bad, "\n  "))
	}
	return notes, nil
}

// WriteJSON renders the report as indented JSON.
func (r *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadPerfReport loads a committed BENCH_sim.json.
func ReadPerfReport(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r PerfReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
