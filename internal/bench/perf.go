package bench

// perf.go is the simulator-throughput suite behind `dpml-bench -perf`:
// it measures how fast the simulator itself runs, as distinct from what
// it predicts. Kernel scenarios report simulated events per wall-clock
// second for representative workloads; the figure section reports the
// wall time of regenerating each figure. The JSON output (committed as
// BENCH_sim.json) makes simulator performance diffable across commits.

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/topology"
)

// PerfScenario is one kernel-throughput measurement: a fixed simulated
// workload with its event count and host wall time.
type PerfScenario struct {
	Name         string  `json:"name"`
	Procs        int     `json:"procs"`
	Events       uint64  `json:"events"`
	Switches     uint64  `json:"context_switches"`
	WallSec      float64 `json:"wall_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// PerfFigure is the wall-clock cost of regenerating one figure.
type PerfFigure struct {
	ID      string  `json:"id"`
	WallSec float64 `json:"wall_sec"`
}

// PerfReport is the schema of BENCH_sim.json.
type PerfReport struct {
	GoMaxProcs   int            `json:"gomaxprocs"`
	Jobs         int            `json:"jobs"`
	Quick        bool           `json:"quick"`
	Scenarios    []PerfScenario `json:"scenarios"`
	Figures      []PerfFigure   `json:"figures"`
	TotalWallSec float64        `json:"total_wall_sec"`
}

// perfScenario times `iters` back-to-back allreduces on a fresh world and
// reads the kernel's event counters afterwards.
func perfScenario(name string, cl *topology.Cluster, nodes, ppn int, spec core.Spec, bytes, iters int) (PerfScenario, error) {
	job, err := topology.NewJob(cl, nodes, ppn)
	if err != nil {
		return PerfScenario{}, err
	}
	w := mpi.NewWorld(job, mpi.Config{})
	e := core.NewEngine(w)
	start := time.Now()
	err = w.Run(func(r *mpi.Rank) error {
		v := mpi.NewPhantom(mpi.Float32, bytes/4)
		for i := 0; i < iters; i++ {
			if err := e.Allreduce(r, spec, mpi.Sum, v); err != nil {
				return err
			}
		}
		return nil
	})
	wall := time.Since(start).Seconds()
	if err != nil {
		return PerfScenario{}, fmt.Errorf("%s: %w", name, err)
	}
	s := PerfScenario{
		Name:     name,
		Procs:    job.NumProcs(),
		Events:   w.Kernel.Stats.Events,
		Switches: w.Kernel.Stats.ContextSwitch,
		WallSec:  wall,
	}
	if wall > 0 {
		s.EventsPerSec = float64(s.Events) / wall
	}
	return s, nil
}

// SimPerf runs the simulator-throughput suite. Scenarios run serially so
// each wall time measures one world; figure regeneration honours opt.Jobs
// inside each figure but times figures one at a time for the same reason.
func SimPerf(opt Options) (*PerfReport, error) {
	opt = opt.withDefaults()
	rep := &PerfReport{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Jobs:       opt.Jobs,
		Quick:      opt.Quick,
	}
	suiteStart := time.Now()

	type scenario struct {
		name       string
		cl         *topology.Cluster
		nodes, ppn int
		spec       core.Spec
		bytes      int
		iters      int
	}
	scenarios := []scenario{
		{"allreduce-dpml8-64KB-8x8", topology.ClusterB(), 8, 8, core.DPML(8), 64 << 10, 20},
		{"allreduce-flat-rd-64KB-8x8", topology.ClusterB(), 8, 8, core.Flat(mpi.AlgRecursiveDoubling), 64 << 10, 20},
		{"allreduce-dpml8-1MB-8x8", topology.ClusterC(), 8, 8, core.DPML(8), 1 << 20, 10},
		{"allreduce-sharp-node-256B-8x8", topology.ClusterA(), 8, 8, core.Spec{Design: core.DesignSharpNode}, 256, 50},
		// The fig10 job shape: 10,240 ranks in one world, the scale at
		// which ready-queue and flow-removal complexity dominates. Runs
		// even with Quick (it is one world, not a figure sweep).
		{"allreduce-dpml16-64KB-160x64", topology.ClusterD(), 160, 64, core.DPML(16), 64 << 10, 2},
	}
	for _, sc := range scenarios {
		s, err := perfScenario(sc.name, sc.cl, sc.nodes, sc.ppn, sc.spec, sc.bytes, sc.iters)
		if err != nil {
			return nil, err
		}
		rep.Scenarios = append(rep.Scenarios, s)
	}

	for _, id := range FigureIDs() {
		start := time.Now()
		if _, err := Figure(id, opt); err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		rep.Figures = append(rep.Figures, PerfFigure{ID: id, WallSec: time.Since(start).Seconds()})
	}
	rep.TotalWallSec = time.Since(suiteStart).Seconds()
	return rep, nil
}

// WriteJSON renders the report as indented JSON.
func (r *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
