package bench

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"runtime"
	"testing"

	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/sweep"
	"dpml/internal/topology"
)

// TestCrossDesignDeterminism is the dynamic counterpart of the walltime
// and globalrand analyzers: a mid-scale scenario (cluster A, 16 nodes x
// 28 ppn) must produce byte-identical latencies for every design no
// matter how much host parallelism the run gets — different GOMAXPROCS,
// different sweep -j worker counts, repeated runs.
func TestCrossDesignDeterminism(t *testing.T) {
	designs := []struct {
		name string
		spec core.Spec
	}{
		{"flat-rd", core.Flat(mpi.AlgRecursiveDoubling)},
		{"host-based", core.HostBased()},
		{"dpml-4", core.DPML(4)},
		{"dpml-pipelined", core.DPMLPipelined(4, 4)},
		{"sharp-node", core.Spec{Design: core.DesignSharpNode}},
		{"sharp-socket", core.Spec{Design: core.DesignSharpSocket}},
		{"dualroot-s4", core.DualRoot(4)},
		{"genall-g4", core.GenAll(4)},
		{"pap-sorted", core.PAPSorted()},
		{"pap-ring", core.PAPRing()},
	}
	sizes := []int{8, 4 << 10, 256 << 10}

	digestRun := func(gomaxprocs, workers int) []string {
		old := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(old)
		jobs := make([]sweep.Job[[]sim.Duration], len(designs))
		for i := range designs {
			spec := designs[i].spec
			jobs[i] = func() ([]sim.Duration, error) {
				return AllreduceLatency(topology.ClusterA(), 16, 28, FixedSpec(spec), sizes, 2, 1)
			}
		}
		results, err := sweep.Run(workers, jobs)
		if err != nil {
			t.Fatal(err)
		}
		digests := make([]string, len(results))
		for i, lats := range results {
			h := sha256.New()
			for _, d := range lats {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], uint64(d))
				h.Write(b[:])
			}
			digests[i] = fmt.Sprintf("%x", h.Sum(nil))
		}
		return digests
	}

	configs := []struct{ gomaxprocs, workers int }{
		{1, 1},
		{2, 3},
		{4, 8},
	}
	base := digestRun(configs[0].gomaxprocs, configs[0].workers)
	for _, cfg := range configs[1:] {
		got := digestRun(cfg.gomaxprocs, cfg.workers)
		for i, d := range designs {
			if got[i] != base[i] {
				t.Errorf("%s: digest under GOMAXPROCS=%d -j%d differs from GOMAXPROCS=%d -j%d: %s vs %s",
					d.name, cfg.gomaxprocs, cfg.workers, configs[0].gomaxprocs, configs[0].workers, got[i], base[i])
			}
		}
	}
}

// TestShardDeterminismMatrix is the sharded-kernel analogue: the same
// scenario must digest identically for every combination of kernel shard
// count, network shard count, GOMAXPROCS, and sweep -j worker count.
// Shards partition the event heap itself (intra-run parallelism),
// netshards parallelize the network kernel's water-fill over independent
// link components, -j replicates whole worlds (inter-run parallelism) —
// the three must compose without any of them leaking host scheduling
// into virtual time. Jitter and the rendezvous path are both enabled so
// the per-rank noise streams and the cross-shard RTS/CTS/payload handoff
// are exercised, not just eager traffic.
func TestShardDeterminismMatrix(t *testing.T) {
	designs := []struct {
		name string
		spec core.Spec
	}{
		{"flat-rd", core.Flat(mpi.AlgRecursiveDoubling)},
		{"dpml-4", core.DPML(4)},
		{"sharp-node", core.Spec{Design: core.DesignSharpNode}},
		{"dualroot-s4", core.DualRoot(4)},
		{"genall-g4", core.GenAll(4)},
		{"pap-sorted", core.PAPSorted()},
		{"pap-ring", core.PAPRing()},
	}
	sizes := []int{8, 4 << 10, 1 << 20} // 1 MB forces rendezvous transfers

	digestRun := func(shards, netShards, gomaxprocs, workers int) []string {
		old := runtime.GOMAXPROCS(gomaxprocs)
		defer runtime.GOMAXPROCS(old)
		cfg := mpi.Config{
			Shards:     shards,
			NetShards:  netShards,
			Jitter:     200, // ns of per-message noise, exercising the rank streams
			JitterSeed: 42,
		}
		jobs := make([]sweep.Job[[]sim.Duration], len(designs))
		for i := range designs {
			spec := designs[i].spec
			jobs[i] = func() ([]sim.Duration, error) {
				// Cluster A: the SHArP-capable fabric, so the sharp-node
				// design (whose completion wakeups cross shards) runs too.
				return AllreduceLatencyCfg(cfg, topology.ClusterA(), 8, 8, FixedSpec(spec), sizes, 2, 1)
			}
		}
		results, err := sweep.Run(workers, jobs)
		if err != nil {
			t.Fatal(err)
		}
		digests := make([]string, len(results))
		for i, lats := range results {
			h := sha256.New()
			for _, d := range lats {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], uint64(d))
				h.Write(b[:])
			}
			digests[i] = fmt.Sprintf("%x", h.Sum(nil))
		}
		return digests
	}

	configs := []struct{ shards, netShards, gomaxprocs, workers int }{
		{1, 1, 1, 1}, // serial kernel, serial fill, serial host: the reference
		{2, 1, 1, 2},
		{2, 4, 4, 1}, // parallel fill under a sharded kernel
		{4, 2, 2, 2},
		{1, 8, 2, 1}, // serial kernel, heavily parallel fill
		{8, 3, 4, 3}, // more shards than nodes/2: clamping path
	}
	base := digestRun(configs[0].shards, configs[0].netShards, configs[0].gomaxprocs, configs[0].workers)
	for _, cfg := range configs[1:] {
		got := digestRun(cfg.shards, cfg.netShards, cfg.gomaxprocs, cfg.workers)
		for i, d := range designs {
			if got[i] != base[i] {
				t.Errorf("%s: digest at shards=%d netshards=%d GOMAXPROCS=%d -j%d differs from serial reference: %s vs %s",
					d.name, cfg.shards, cfg.netShards, cfg.gomaxprocs, cfg.workers, got[i], base[i])
			}
		}
	}
}
