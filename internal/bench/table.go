package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Point is one measurement: X is the swept quantity (message bytes,
// process count, ...), Y the metric (latency in microseconds, relative
// throughput, ...).
type Point struct {
	X int
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Y returns the series value at x, or NaN-free (0, false) when absent.
func (s *Series) Y(x int) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Table is one reproduced figure or table: a set of series over a common
// X axis, with presentation metadata and free-form notes (e.g. observed
// speedups to compare against the paper's claims).
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// XValues returns the sorted union of X values across all series.
func (t *Table) XValues() []int {
	seen := map[int]bool{}
	for _, s := range t.Series {
		for _, p := range s.Points {
			seen[p.X] = true
		}
	}
	xs := make([]int, 0, len(seen))
	for x := range seen {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	return xs
}

// Find returns the series with the given label, or nil.
func (t *Table) Find(label string) *Series {
	for i := range t.Series {
		if t.Series[i].Label == label {
			return &t.Series[i]
		}
	}
	return nil
}

// humanBytes renders a byte count the way the paper's axes do.
func humanBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	xs := t.XValues()
	// Header.
	widths := make([]int, len(t.Series)+1)
	header := make([]string, len(t.Series)+1)
	header[0] = t.XLabel
	for i, s := range t.Series {
		header[i+1] = s.Label
	}
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := make([]string, len(t.Series)+1)
		if strings.Contains(strings.ToLower(t.XLabel), "byte") || strings.Contains(strings.ToLower(t.XLabel), "size") {
			row[0] = humanBytes(x)
		} else {
			row[0] = fmt.Sprintf("%d", x)
		}
		for i := range t.Series {
			if y, ok := t.Series[i].Y(x); ok {
				row[i+1] = fmt.Sprintf("%.2f", y)
			} else {
				row[i+1] = "-"
			}
		}
		rows = append(rows, row)
	}
	for c := range header {
		widths[c] = len(header[c])
		for _, row := range rows {
			if len(row[c]) > widths[c] {
				widths[c] = len(row[c])
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for c, cell := range cells {
			parts[c] = fmt.Sprintf("%*s", widths[c], cell)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	fmt.Fprintf(w, "(Y: %s)\n", t.YLabel)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// speedupNote formats "A is X.XXx faster than B at <size>" for the best
// ratio of series b over series a, and returns the peak ratio.
func (t *Table) speedupNote(fast, slow string) (string, float64) {
	f, s := t.Find(fast), t.Find(slow)
	if f == nil || s == nil {
		return "", 0
	}
	best, bestX, found := 0.0, 0, false
	for _, p := range f.Points {
		if sv, ok := s.Y(p.X); ok && p.Y > 0 {
			if r := sv / p.Y; !found || r > best {
				best, bestX, found = r, p.X, true
			}
		}
	}
	if !found {
		return "", 0
	}
	return fmt.Sprintf("%s up to %.2fx faster than %s (at %s)",
		fast, best, slow, humanBytes(bestX)), best
}

// AddSpeedupNote records the peak speedup of series fast over slow in the
// notes and returns it.
func (t *Table) AddSpeedupNote(fast, slow string) float64 {
	note, r := t.speedupNote(fast, slow)
	if note != "" {
		t.Notes = append(t.Notes, note)
	}
	return r
}
