package bench

import (
	"fmt"

	"dpml/internal/core"
	"dpml/internal/faults"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/sweep"
	"dpml/internal/topology"
)

// grandPrix is the cross-family ranking figure: every design family in
// the repo — flat, host-based, multi-leader, pipelined, SHArP, and the
// three related-work extensions — raced over message size x cluster
// shape x fault class on one seeded fabric. Each column is one scenario
// (shape, size, fault spec); each series is one design; every design in
// a column faces the identical plan, so a column is a fair heat and the
// per-column winner in the notes is a ranking, not noise. Cluster A is
// the venue because it is the only SHArP-capable fabric, so no family
// has to sit a heat out.
func grandPrix(id string, opt Options) (*Table, error) {
	cl := topology.ClusterA()
	shapes := []struct{ nodes, ppn int }{{8, 8}, {16, 16}}
	if opt.Quick {
		shapes = []struct{ nodes, ppn int }{{4, 4}}
	}
	sizes := []int{256, 64 << 10}
	// The fault dimension: a healthy fabric, degraded links and NICs
	// (topology-sensitive), stragglers only (the PAP regime), and the
	// full mix including the SHArP outage.
	specStrings := []string{"", "link@0.5,nic@0.5", "straggler@0.8", "all@0.7"}
	specs := make([]*faults.Spec, len(specStrings))
	for i, s := range specStrings {
		sp, err := faults.ParseSpec(s)
		if err != nil {
			return nil, err
		}
		if sp != nil {
			sp.Seed = opt.FaultSeed
		}
		specs[i] = sp
	}

	leaders := 8
	for _, sh := range shapes {
		leaders = minInt(leaders, sh.ppn)
	}
	cases := append([]designCase{
		{"flat-rd", core.Flat(mpi.AlgRecursiveDoubling)},
		{"flat-ring", core.Flat(mpi.AlgRing)},
		{"host-based", core.HostBased()},
		{fmt.Sprintf("dpml-%d", leaders), core.DPML(leaders)},
		{fmt.Sprintf("dpml-pipe-%dx4", leaders), core.DPMLPipelined(leaders, 4)},
		{"sharp-node", core.Spec{Design: core.DesignSharpNode}},
	}, extensionCases()...)

	// Columns in shape-major, then size, then fault order.
	type column struct {
		shape struct{ nodes, ppn int }
		bytes int
		spec  *faults.Spec
		desc  string
	}
	var cols []column
	for _, sh := range shapes {
		for _, bytes := range sizes {
			for fi, sp := range specs {
				desc := specStrings[fi]
				if desc == "" {
					desc = "healthy"
				}
				cols = append(cols, column{
					shape: sh, bytes: bytes, spec: sp,
					desc: fmt.Sprintf("%dx%d %s %s", sh.nodes, sh.ppn, humanBytes(bytes), desc),
				})
			}
		}
	}

	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Design grand prix, %s: all families over shape x size x faults (seed %d)", cl.Name, opt.FaultSeed),
		XLabel: "scenario",
		YLabel: "latency (us)",
	}
	cells := gridCells(len(cases), len(cols))
	lats, err := sweep.Map(opt.Jobs, cells, func(_ int, c gridCell) (sim.Duration, error) {
		cse, col := cases[c.row], cols[c.col]
		cfg := mpi.Config{
			Watchdog: opt.Watchdog,
			Faults: col.spec.Instantiate(faults.Shape{
				Ranks: col.shape.nodes * col.shape.ppn, Nodes: col.shape.nodes, HCAs: cl.HCAs,
			}),
		}
		lat, err := AllreduceLatencyCfg(cfg, cl, col.shape.nodes, col.shape.ppn,
			FixedSpec(cse.spec), []int{col.bytes}, opt.Iters, opt.Warmup)
		if err != nil {
			return 0, fmt.Errorf("%s in scenario %q: %w", cse.label, col.desc, err)
		}
		return lat[0], nil
	})
	if err != nil {
		return nil, err
	}
	for ci, cse := range cases {
		s := Series{Label: cse.label}
		for xi := range cols {
			s.Points = append(s.Points, Point{X: xi, Y: lats[ci*len(cols)+xi].Micros()})
		}
		t.Series = append(t.Series, s)
	}
	// One note per scenario: what the column means and who won the heat.
	for xi, col := range cols {
		best, bestLat := 0, lats[xi]
		for ci := 1; ci < len(cases); ci++ {
			if l := lats[ci*len(cols)+xi]; l < bestLat {
				best, bestLat = ci, l
			}
		}
		t.Notes = append(t.Notes, fmt.Sprintf("scenario %d: %s — winner %s (%.2fus)",
			xi, col.desc, cases[best].label, bestLat.Micros()))
	}
	return t, nil
}
