package bench

// prof.go gives every CLI the same two profiling flags so perf PRs can
// ship pprof evidence instead of guesses: StartProfiles begins a CPU
// profile immediately and the returned stop function writes the heap
// profile at exit. Both paths are no-ops when the corresponding flag is
// empty.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles starts a CPU profile to cpuPath (if non-empty) and
// returns a stop function that ends it and writes an allocation-site
// heap profile to memPath (if non-empty). Callers should defer the stop
// function; it reports any error writing the heap profile.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("mem profile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle allocations so the heap profile is accurate
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("mem profile: %w", err)
		}
		return nil
	}, nil
}
