package bench

import (
	"fmt"

	"dpml/internal/core"
	"dpml/internal/faults"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/sweep"
	"dpml/internal/topology"
)

// faultSweep is the robustness figure: allreduce latency under
// increasing fault intensity for the flat, host-based, multi-leader, and
// SHArP designs. Each (design, intensity) cell runs its own simulated
// job with a plan instantiated from the same seed, so every design faces
// the same stragglers, degraded links, throttled NICs, and SHArP outage.
// Intensity 0 is the healthy fabric and reproduces the fault-free
// latency exactly; the SHArP series shows graceful degradation, not
// failure, once the outage forces it onto the host fallback path.
func faultSweep(id string, opt Options) (*Table, error) {
	cl := topology.ClusterA() // the only SHArP-capable fabric
	nodes, ppn := 16, 28
	if opt.Quick {
		nodes, ppn = 4, 8
	}
	// Small enough that the switch tree beats the host path (Fig 8), so
	// the SHArP series shows a real cost when the outage forces the
	// fallback, not just noise.
	const bytes = 256
	intensities := []float64{0, 0.25, 0.5, 1}
	classes := faults.Classes()
	if opt.FaultSpec != nil && len(opt.FaultSpec.Classes) > 0 {
		classes = opt.FaultSpec.Classes
	}
	leaders := minInt(8, ppn)
	cases := []designCase{
		{"flat-rd", core.Flat(mpi.AlgRecursiveDoubling)},
		{"host-based", core.HostBased()},
		{fmt.Sprintf("dpml-%d", leaders), core.DPML(leaders)},
		{"sharp-node", core.Spec{Design: core.DesignSharpNode}},
	}
	// The related-work families face the same plans: the arrival-aware
	// designs get to read each plan's straggler table, which is exactly
	// the regime they were published for.
	cases = append(cases, extensionCases()...)
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Fault tolerance at 256B, %s, %d nodes x %d ppn (classes: %v)", cl.Name, nodes, ppn, classes),
		XLabel: "intensity (%)",
		YLabel: "latency (us)",
	}
	shape := faults.Shape{Ranks: nodes * ppn, Nodes: nodes, HCAs: cl.HCAs}
	cells := gridCells(len(cases), len(intensities))
	lats, err := sweep.Map(opt.Jobs, cells, func(_ int, c gridCell) (sim.Duration, error) {
		cfg := mpi.Config{Watchdog: opt.Watchdog}
		if in := intensities[c.col]; in > 0 {
			spec := &faults.Spec{Classes: classes, Intensity: in, Seed: opt.FaultSeed}
			cfg.Faults = spec.Instantiate(shape)
		}
		lat, err := AllreduceLatencyCfg(cfg, cl, nodes, ppn,
			FixedSpec(cases[c.row].spec), []int{bytes}, opt.Iters, opt.Warmup)
		if err != nil {
			return 0, fmt.Errorf("%s at intensity %g: %w", cases[c.row].label, intensities[c.col], err)
		}
		return lat[0], nil
	})
	if err != nil {
		return nil, err
	}
	for ci, cse := range cases {
		s := Series{Label: cse.label}
		for ii, in := range intensities {
			s.Points = append(s.Points, Point{X: int(in * 100), Y: lats[ci*len(intensities)+ii].Micros()})
		}
		t.Series = append(t.Series, s)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("extension figure: seeded fault plans (seed %d), identical across designs at each intensity", opt.FaultSeed),
		"sharp-node completes via host fallback whenever the plan's SHArP outage is active")
	return t, nil
}
