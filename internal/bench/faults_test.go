package bench

import (
	"testing"

	"dpml/internal/core"
	"dpml/internal/faults"
	"dpml/internal/mpi"
	"dpml/internal/topology"
	"dpml/internal/trace"
)

// TestFaultsFigureDeterministicAcrossJobs: identical (plan, seed) must
// render byte-identical tables at any worker count — fault plans are
// pure data shared by concurrent worlds, so -j must not leak into the
// output.
func TestFaultsFigureDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("faults determinism check skipped in -short mode")
	}
	opt := Options{Quick: true, Iters: 2, Warmup: 1, FaultSeed: 3}
	opt.Jobs = 1
	serial, err := Figure("faults", opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Jobs = 8
	parallel, err := Figure("faults", opt)
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.String(), parallel.String(); s != p {
		t.Fatalf("faults figure differs between -j 1 and -j 8:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

// TestFaultsFigureSeedPerturbs: a different fault seed draws different
// ranks, windows, and factors, so the rendered table must change; the
// intensity-0 column (healthy fabric) must not.
func TestFaultsFigureSeedPerturbs(t *testing.T) {
	if testing.Short() {
		t.Skip("faults seed check skipped in -short mode")
	}
	run := func(seed uint64) *Table {
		tab, err := Figure("faults", Options{Quick: true, Iters: 2, Warmup: 1, FaultSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return tab
	}
	a, b := run(1), run(2)
	for si := range a.Series {
		if a.Series[si].Points[0] != b.Series[si].Points[0] {
			t.Fatalf("seed changed the healthy (intensity 0) point of %q: %v vs %v",
				a.Series[si].Label, a.Series[si].Points[0], b.Series[si].Points[0])
		}
	}
	if a.String() == b.String() {
		t.Fatal("seeds 1 and 2 rendered identical fault tables")
	}
}

// TestFaultMatrixSmoke runs every fault class against one design each on
// a quick topology: the run must complete (graceful degradation, not
// deadlock or panic) and the perturbing classes must cost virtual time.
func TestFaultMatrixSmoke(t *testing.T) {
	cl := topology.ClusterA()
	const nodes, ppn, bytes = 2, 4, 256
	shape := faults.Shape{Ranks: nodes * ppn, Nodes: nodes, HCAs: cl.HCAs}
	matrix := []struct {
		class faults.Class
		label string
		spec  core.Spec
	}{
		{faults.ClassStraggler, "flat-rd", core.Flat(mpi.AlgRecursiveDoubling)},
		{faults.ClassLink, "host-based", core.HostBased()},
		{faults.ClassNIC, "dpml-4", core.DPML(4)},
		{faults.ClassSharp, "sharp-node", core.Spec{Design: core.DesignSharpNode}},
	}
	for _, m := range matrix {
		m := m
		t.Run(string(m.class)+"/"+m.label, func(t *testing.T) {
			run := func(cfg mpi.Config) float64 {
				lat, err := AllreduceLatencyCfg(cfg, cl, nodes, ppn,
					FixedSpec(m.spec), []int{bytes}, 2, 1)
				if err != nil {
					t.Fatal(err)
				}
				return lat[0].Micros()
			}
			healthy := run(mpi.Config{})
			spec := &faults.Spec{Classes: []faults.Class{m.class}, Intensity: 1, Seed: 5}
			rec := trace.New(0)
			faulted := run(mpi.Config{Faults: spec.Instantiate(shape), Trace: rec})
			if faulted <= 0 {
				t.Fatalf("%s under %s: non-positive latency %v", m.label, m.class, faulted)
			}
			if m.class == faults.ClassSharp {
				// A full outage must show up as host fallbacks, not as a
				// latency ordering: at this tiny scale the host path can
				// legitimately beat the switch tree's fixed costs.
				for _, ev := range rec.Events() {
					if ev.Kind == trace.KindFallback {
						return
					}
				}
				t.Fatal("sharp outage produced no fallback events")
			}
			if faulted < healthy {
				t.Fatalf("%s under %s: faulted latency %vus below healthy %vus", m.label, m.class, faulted, healthy)
			}
		})
	}
}

// TestLatencyConfigDefaultIsZero: default options must produce the zero
// config, the bit-transparency guarantee every committed table relies on.
func TestLatencyConfigDefaultIsZero(t *testing.T) {
	cfg := Options{}.latencyConfig(topology.ClusterB(), 2, 2)
	if cfg != (mpi.Config{}) {
		t.Fatalf("default latencyConfig = %+v, want zero", cfg)
	}
}
