package bench

import (
	"fmt"

	"dpml/internal/core"
	"dpml/internal/costmodel"
	"dpml/internal/sweep"
	"dpml/internal/topology"
)

// TuneResult is the outcome of an empirical DPML tuning sweep: the full
// latency table plus, per message size, the measured best leader count,
// the shipped tuning table's choice, and the cost model's prediction.
type TuneResult struct {
	Table     *Table
	Best      map[int]int // bytes -> measured best leader count
	Shipped   map[int]int // bytes -> core.BestLeaders choice
	Predicted map[int]int // bytes -> Eq. 7 argmin
}

// TuneDPML performs the Section 6.4 procedure: run every candidate
// leader count at every message size on the given job and record the
// winners. This is how the shipped BestLeaders table was derived. Each
// candidate sweep runs as an independent job bounded by `jobs` workers
// (0 = all cores); winners are picked after the fan-in, in candidate
// order, so the result is identical at every worker count.
func TuneDPML(cl *topology.Cluster, nodes, ppn int, leaders, sizes []int, iters, warmup, jobs int) (*TuneResult, error) {
	if len(leaders) == 0 || len(sizes) == 0 {
		return nil, fmt.Errorf("bench: TuneDPML needs candidates and sizes")
	}
	res := &TuneResult{
		Table: &Table{
			ID:     "tune",
			Title:  fmt.Sprintf("DPML tuning sweep, %s, %d nodes x %d ppn", cl.Name, nodes, ppn),
			XLabel: "bytes",
			YLabel: "latency (us)",
		},
		Best:      map[int]int{},
		Shipped:   map[int]int{},
		Predicted: map[int]int{},
	}
	var cand []int
	for _, l := range leaders {
		if l <= ppn {
			cand = append(cand, l)
		}
	}
	series, err := sweep.Map(jobs, cand, func(_ int, l int) (Series, error) {
		return LatencySeries(fmt.Sprintf("l=%d", l), cl, nodes, ppn,
			FixedSpec(core.DPML(l)), sizes, iters, warmup)
	})
	if err != nil {
		return nil, err
	}
	best := map[int]float64{}
	for i, s := range series {
		res.Table.Series = append(res.Table.Series, s)
		for _, p := range s.Points {
			if cur, ok := best[p.X]; !ok || p.Y < cur {
				best[p.X] = p.Y
				res.Best[p.X] = cand[i]
			}
		}
	}
	params := costmodel.FromCluster(cl)
	for _, bytes := range sizes {
		res.Shipped[bytes] = core.BestLeaders(cl.Name, ppn, bytes)
		res.Predicted[bytes] = params.With(nodes*ppn, nodes, 1, bytes).OptimalLeaders()
		res.Table.Notes = append(res.Table.Notes,
			fmt.Sprintf("%s: measured best l=%d, table l=%d, model l=%d",
				humanBytes(bytes), res.Best[bytes], res.Shipped[bytes], res.Predicted[bytes]))
	}
	return res, nil
}
