package sim

import (
	"fmt"
	"testing"
)

// benchmarkYield drives a kernel whose procs do nothing but yield, so the
// measured cost is pure scheduler work: one ready-queue push and pop plus
// a context switch per operation. At high proc counts the queue stays
// full, which is exactly the regime where a shift-based FIFO pays O(n)
// per pop.
func benchmarkYield(b *testing.B, procs int) {
	b.ReportAllocs()
	iters := b.N/procs + 1
	k := NewKernel()
	for i := 0; i < procs; i++ {
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j := 0; j < iters; j++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkReadyQueuePop100Procs(b *testing.B) { benchmarkYield(b, 100) }
func BenchmarkReadyQueuePop1kProcs(b *testing.B)  { benchmarkYield(b, 1000) }
func BenchmarkReadyQueuePop10kProcs(b *testing.B) { benchmarkYield(b, 10000) }

// BenchmarkEventSchedule measures Kernel.At/After plus heap and
// allocation costs: a single proc sleeping b.N times schedules and fires
// one event per iteration.
func BenchmarkEventSchedule(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	k.Spawn("timer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEventScheduleFanout measures the event path with a populated
// heap: 64 procs sleeping concurrently keep ~64 events live, so every
// push and pop pays a real heap traversal.
func BenchmarkEventScheduleFanout(b *testing.B) {
	b.ReportAllocs()
	const procs = 64
	iters := b.N/procs + 1
	k := NewKernel()
	for i := 0; i < procs; i++ {
		d := Duration(i + 1)
		k.Spawn(fmt.Sprintf("t%d", i), func(p *Proc) {
			for j := 0; j < iters; j++ {
				p.Sleep(d * Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
