package sim

import "testing"

func TestSpawnAfterRunPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Spawn after Run did not panic")
		}
	}()
	k.Spawn("late", func(p *Proc) {})
}

func TestRunTwicePanics(t *testing.T) {
	k := NewKernel()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	_ = k.Run()
}

func TestEmptyKernelRuns(t *testing.T) {
	k := NewKernel()
	if err := k.Run(); err != nil {
		t.Fatalf("empty kernel: %v", err)
	}
	if k.Now() != 0 {
		t.Fatal("clock moved with no work")
	}
}

func TestNegativeSemaphorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative permits accepted")
		}
	}()
	NewSemaphore("bad", -1)
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative WaitGroup accepted")
		}
	}()
	var wg WaitGroup
	wg.Done()
}

func TestDeadlockCleansUpAllProcStates(t *testing.T) {
	// After a deadlock, ready-but-never-run procs and parked procs must
	// all unwind (no goroutine leaks / no hangs); this test passing at
	// all proves the shutdown path completed.
	k := NewKernel()
	var sig Signal
	for i := 0; i < 10; i++ {
		k.Spawn("stuck", func(p *Proc) { sig.Wait(p, "never") })
	}
	if err := k.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
}

func TestPanicDuringEventCleanup(t *testing.T) {
	// One proc panics while others hold pending events and parked
	// states; shutdown must cancel everything cleanly.
	k := NewKernel()
	var sig Signal
	k.Spawn("sleeper", func(p *Proc) { p.Sleep(Second) })
	k.Spawn("waiter", func(p *Proc) { sig.Wait(p, "forever") })
	k.Spawn("bomb", func(p *Proc) { panic("kaboom") })
	err := k.Run()
	if err == nil {
		t.Fatal("expected panic error")
	}
}

func TestEventsWithoutProcs(t *testing.T) {
	// Pure event-driven usage: chained events advance the clock.
	k := NewKernel()
	var fired []Time
	k.Spawn("seed", func(p *Proc) {
		k.After(10, func() {
			fired = append(fired, k.Now())
			k.After(20, func() { fired = append(fired, k.Now()) })
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 30 {
		t.Fatalf("event chain fired at %v", fired)
	}
}

func TestStatsCount(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats.Events < 5 {
		t.Fatalf("events = %d, want >= 5", k.Stats.Events)
	}
	// A lone sleeper is the zero-handoff fast path: the only goroutine
	// switch is the bootstrap handoff from Run.
	if k.Stats.ContextSwitch != 1 {
		t.Fatalf("context switches = %d, want 1 (sleep fast path)", k.Stats.ContextSwitch)
	}
}

func TestProcAccessors(t *testing.T) {
	k := NewKernel()
	k.Spawn("zero", func(p *Proc) {
		if p.ID() != 0 || p.Name() != "zero" || p.Kernel() != k {
			t.Error("proc accessors wrong")
		}
	})
	if k.NumProcs() != 1 {
		t.Fatal("NumProcs wrong")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
