package sim

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"
)

// splitmix64 is the test's deterministic PRNG step: all randomness in the
// scenario below derives from fixed seeds through this function, never
// from the host, so every run — at any shard count — sees the same
// workload.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// shardScenarioDigest runs a randomized 16-node scenario on a coordinator
// with the given shard count and returns a digest of everything
// observable: each node's message log (arrival time, sender, payload tag,
// in arrival order), the final clock, and the event count. The workload
// deliberately mixes the behaviours sharding has to get right:
//
//   - same-instant events from different origins (coarse durations force
//     timestamp collisions, so the (at, prio) tie-break decides order);
//   - direct node→node messages at exactly the lookahead bound;
//   - messages hopping through the NET LP (the fabric's path), which in
//     sharded mode lives on its own kernel;
//   - reply chains, where a cross-shard arrival schedules further
//     cross-shard events from inside an event callback;
//   - sleeping procs interleaved with event delivery.
//
// x optionally installs a schedule-exploration config (see explore.go);
// the extra returns are the run's schedule digest and recorded tie
// pairs, both zero when x is nil.
func shardScenarioDigest(t *testing.T, shards int, x *Explore) ([sha256.Size]byte, uint64, []TiePair) {
	t.Helper()
	const (
		nodes     = 16
		rounds    = 12
		lookahead = Duration(100)
	)
	co := NewCoordinator(nodes, shards, lookahead)
	co.SetExplore(x)

	type rec struct {
		at  Time
		src int
		tag uint64
	}
	// logs[n] is appended only from node n's LP context, so no locking:
	// within a window each LP's events run on exactly one goroutine, and
	// windows are separated by barriers.
	logs := make([][]rec, nodes)

	// deliver records the arrival at dst and, while depth remains, sends
	// a reply straight back — an event callback scheduling further
	// cross-shard events, the pattern rendezvous and SHArP completion use.
	var deliver func(dst, src int, tag uint64, depth int) func()
	deliver = func(dst, src int, tag uint64, depth int) func() {
		return func() {
			k := co.KernelFor(dst)
			logs[dst] = append(logs[dst], rec{k.Now(), src, tag})
			if depth > 0 {
				d := lookahead + Duration(splitmix64(tag)%23)*10
				k.AfterOn(src, d, deliver(src, dst, splitmix64(tag+1), depth-1))
			}
		}
	}

	for n := 0; n < nodes; n++ {
		n := n
		k := co.KernelFor(n)
		k.SpawnOn(n, fmt.Sprintf("rank%d", n), func(p *Proc) {
			rng := uint64(n)
			next := func(mod uint64) uint64 {
				rng = splitmix64(rng)
				return rng % mod
			}
			for r := 0; r < rounds; r++ {
				// Coarse sleep granularity manufactures same-instant
				// collisions across nodes.
				p.Sleep(Duration(next(30)) * 10)
				dst := int(next(nodes - 1))
				if dst >= n {
					dst++ // any peer but self
				}
				tag := uint64(n)<<32 | uint64(r)
				switch next(3) {
				case 0:
					// Direct wire message at the minimum legal distance:
					// exactly the lookahead bound, the tightest event a
					// shard may aim at a neighbour.
					k.AfterOn(dst, lookahead, deliver(dst, n, tag, 2))
				case 1:
					// Longer direct message with a reply chain.
					d := lookahead + Duration(next(23))*10
					k.AfterOn(dst, d, deliver(dst, n, tag, 1))
				default:
					// Through the NET LP, like fabric transfers: the hop
					// into the net is immediate (exempt from lookahead);
					// the hop out is a wire delay >= lookahead.
					k.AfterNet(0, func() {
						net := co.NetKernel()
						d := lookahead + Duration(splitmix64(tag+2)%23)*10
						net.AfterOn(dst, d, deliver(dst, n, tag, 2))
					})
				}
			}
		})
	}
	if err := co.Run(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}

	h := sha256.New()
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	for n := 0; n < nodes; n++ {
		u64(uint64(len(logs[n])))
		for _, r := range logs[n] {
			u64(uint64(r.at))
			u64(uint64(r.src))
			u64(r.tag)
		}
	}
	u64(uint64(co.Now()))
	u64(co.Stats().Events)
	var sum [sha256.Size]byte
	copy(sum[:], h.Sum(nil))
	return sum, co.ScheduleDigest(), co.TiePairs()
}

// TestShardCountInvariance is the kernel-level determinism property: the
// randomized scenario above must digest identically for every shard
// count, including counts that do not divide the node count and counts
// the coordinator clamps. This pins down the whole contract — globally
// consistent (at, prio) keys, conservative windows, outbox merge order
// irrelevance — with no MPI layer in between.
func TestShardCountInvariance(t *testing.T) {
	base, _, _ := shardScenarioDigest(t, 1, nil)
	for _, shards := range []int{2, 3, 4, 5, 8, 16, 64} {
		if got, _, _ := shardScenarioDigest(t, shards, nil); got != base {
			t.Errorf("shards=%d: digest %x differs from serial %x", shards, got, base)
		}
	}
}
