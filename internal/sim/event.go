package sim

// Event is a scheduled callback in virtual time. Events are created with
// Kernel.At and may be cancelled or rescheduled before they fire. The
// callback runs in kernel context: it must not block, but it may schedule
// further events, ready parked procs, and mutate simulation state freely
// (each kernel is single-threaded with respect to its own shard's state).
//
// Event objects are pooled by the kernel: a handle is only valid until
// the event fires (or, once cancelled, until the kernel discards it).
// Retaining a handle past that point and calling Cancel on it may affect
// an unrelated, recycled event.
type Event struct {
	at Time
	// prio breaks ties among events at the same instant. It packs the
	// creating LP (origin+1, so the watchdog's origin -1 sorts first) in
	// the top bits and that LP's private creation counter in the low 44
	// bits. Because every LP executes in the same order under any shard
	// count, the key (at, prio) is a globally consistent total order:
	// serial and sharded runs pop events identically.
	prio uint64
	// raw is the unperturbed (origin, counter) key. It equals prio
	// except under a schedule-exploration config (see explore.go), when
	// prio holds the perturbed heap key and raw feeds the schedule
	// digest so behaviorally identical schedules hash equal.
	raw uint64
	// born is the kernel's fire sequence number at the instant the event
	// entered the heap, maintained only under exploration. Tie recording
	// uses it to tell genuine commutation points (both events pending
	// together) from causal same-instant pairs (the second event created
	// by the first one's callback), whose inversion is a no-op; see
	// Kernel.noteFire.
	born      uint64
	exec      int32 // LP the callback runs as (kernel's curLP during fn)
	fn        func()
	cancelled bool
	index     int32 // current heap slot; -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancellation is lazy: the event
// stays in the heap until it surfaces, so heavy cancel/re-add traffic
// should use Kernel.Reschedule instead.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
		e.fn = nil
	}
}

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e == nil || e.cancelled }

// When returns the instant the event is scheduled to fire at.
func (e *Event) When() Time { return e.at }

// eventEntry is one heap slot. The ordering key (at, prio) is stored by
// value so comparisons stay inside the backing array: with ~10k pending
// events (one per rank of a large collective), a pointer-chasing
// comparator made the heap the simulator's single hottest path — every
// sift dereferenced two cold *Event allocations per level.
type eventEntry struct {
	at   Time
	prio uint64
	ev   *Event
}

// eventHeap is a 4-ary min-heap ordered by (at, prio). prio is unique
// within a kernel (LP id + per-LP counter), so the order is a strict
// total order and pop order is identical for any correct heap — switching
// arity or sift strategy cannot perturb simulation behavior. 4-ary halves
// the depth of a binary heap and its children share cache lines, which
// matters at 10k+ pending events. Sifts move a hole instead of swapping,
// writing each slot once, and maintain each event's index so update can
// re-key it in place.
type eventHeap struct {
	a []eventEntry
}

func (h *eventHeap) len() int { return len(h.a) }

func entryLess(x, y eventEntry) bool {
	return x.at < y.at || (x.at == y.at && x.prio < y.prio)
}

func (h *eventHeap) push(e *Event) {
	h.a = append(h.a, eventEntry{at: e.at, prio: e.prio, ev: e})
	h.siftUp(len(h.a) - 1)
}

// pop removes and returns the earliest event. Callers must check len
// first.
func (h *eventHeap) pop() *Event {
	a := h.a
	top := a[0].ev
	top.index = -1
	n := len(a) - 1
	x := a[n]
	a[n] = eventEntry{}
	h.a = a[:n]
	if n > 0 {
		a[0] = x
		x.ev.index = 0
		h.siftDown(0)
	}
	return top
}

// update re-keys the event at heap slot e.index to (at, prio) and
// restores heap order, without allocating or leaving a tombstone behind.
func (h *eventHeap) update(e *Event, at Time, prio uint64) {
	i := int(e.index)
	e.at, e.prio = at, prio
	h.a[i].at, h.a[i].prio = at, prio
	if !h.siftUp(i) {
		h.siftDown(i)
	}
}

func (h *eventHeap) siftUp(i int) bool {
	a := h.a
	x := a[i]
	moved := false
	for i > 0 {
		parent := (i - 1) >> 2
		if !entryLess(x, a[parent]) {
			break
		}
		a[i] = a[parent]
		a[i].ev.index = int32(i)
		i = parent
		moved = true
	}
	a[i] = x
	x.ev.index = int32(i)
	return moved
}

func (h *eventHeap) siftDown(i int) {
	a := h.a
	n := len(a)
	x := a[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(a[j], a[m]) {
				m = j
			}
		}
		if !entryLess(a[m], x) {
			break
		}
		a[i] = a[m]
		a[i].ev.index = int32(i)
		i = m
	}
	a[i] = x
	x.ev.index = int32(i)
}

// peekAt returns the at of the earliest pending event without removing
// it. The entry may be cancelled; fast-path callers must treat that
// conservatively (a cancelled top only ever delays a fast path).
func (h *eventHeap) peekAt() (Time, bool) {
	if len(h.a) == 0 {
		return 0, false
	}
	return h.a[0].at, true
}
