package sim

// Event is a scheduled callback in virtual time. Events are created with
// Kernel.At and may be cancelled before they fire. The callback runs in
// kernel context: it must not block, but it may schedule further events,
// ready parked procs, and mutate simulation state freely (the kernel is
// single-threaded with respect to simulation state).
//
// Event objects are pooled by the kernel: a handle is only valid until
// the event fires (or, once cancelled, until the kernel discards it).
// Retaining a handle past that point and calling Cancel on it may affect
// an unrelated, recycled event.
type Event struct {
	at        Time
	seq       uint64 // tiebreaker: FIFO among events at the same instant
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
		e.fn = nil
	}
}

// Cancelled reports whether Cancel was called before the event fired.
func (e *Event) Cancelled() bool { return e == nil || e.cancelled }

// When returns the instant the event is scheduled to fire at.
func (e *Event) When() Time { return e.at }

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
