package sim

// Schedule-space exploration.
//
// The kernel's event order is a strict total order over (at, prio) keys,
// where prio packs (origin LP, per-LP creation counter). Among events at
// the *same instant* the tiebreak component is an arbitrary — but fixed —
// convention; any injective remapping of the tiebreaks at one instant
// yields another legal schedule of the same simulation:
//
//   - Causality is preserved: an event's effects (events it creates,
//     procs it readies) always carry instants >= its own, and an event
//     created at its own instant cannot fire before the event that
//     created it (it does not exist in the heap until the cause has
//     fired), so a cause still precedes its consequences whatever the
//     same-instant permutation does. The permutation only reorders
//     events none of which is an ancestor of another.
//   - The lookahead bound is untouched: perm changes prio, never at, so
//     cross-LP events still land >= now+L and the window protocol's
//     safety argument is unchanged.
//   - Shard-count invariance is preserved for node LPs: perm is a pure
//     function of (at, raw key) applied identically by every kernel,
//     raw keys are already globally consistent across shard counts, and
//     a node LP's pending set evolves identically in serial and sharded
//     runs — its same-instant creations come only from its own
//     execution (the lookahead assertion forbids zero-delay cross-LP
//     events into a node), and remote arrivals are always pushed before
//     the window containing their instant opens. The network LP is the
//     exception: zero-delay cross-kernel injection into it is legal
//     (AfterNet), so which net events are pending at an instant depends
//     on how node and net execution interleave — serial interleaves by
//     key, sharded batches all node work of the instant before any net
//     work (the window protocol's phase structure). Canonical keys
//     tolerate the difference because a zero-delay consequence's key
//     always exceeds its cause's; an arbitrary permutation does not.
//     Exploration therefore *phase-normalizes* the explored order
//     itself: a net-LP event's heap key gets bit 63 set, making it sort
//     after every node-LP event of the same instant in every mode —
//     which is a legal causal order, since same-instant dependencies
//     only ever flow node->net (net callbacks cannot create node events
//     below the lookahead) — while keeping the canonical key within the
//     net range. Net events are exempt from tie recording (their
//     internal order is not perturbed); the explorer still perturbs
//     everything that executes on node LPs — wakeups, deliveries,
//     completions — plus the MPI matching layer, which is where
//     arrival-order races live.
//
// Explore turns that freedom into a search space: a splitmix64-salted
// bijection perturbs every same-instant tiebreak (seeded random
// schedules), and targeted TieSwap transpositions invert exactly one
// observed same-LP tie (systematic DPOR-lite schedules). Cross-LP
// same-instant events commute — LP state is disjoint and a callback may
// only touch its own LP's state — so only same-LP reorderings are
// behaviorally meaningful; the kernel records those as TiePairs for the
// systematic frontier, and folds a per-LP digest of the *raw* keys
// actually fired so behaviorally identical schedules hash equal at every
// (shards, netshards, GOMAXPROCS) combination.

// Explore configures schedule perturbation for one run. The zero value
// (and a nil *Explore) means the canonical schedule. Install it with
// Coordinator.SetExplore before any proc or event is created.
type Explore struct {
	// Salt seeds the tiebreak permutation: every same-instant tiebreak
	// is remapped through a splitmix64-style bijection mixed with the
	// instant and this salt. Salt 0 leaves the canonical order (useful
	// to record ties or digest the baseline schedule).
	Salt uint64

	// Swaps inverts specific same-instant tiebreak pairs, composed left
	// to right as transpositions (so the map stays a bijection even if
	// swaps share a key). Applied before Salt. Used by the systematic
	// explorer to flip exactly one commutation point per schedule.
	Swaps []TieSwap

	// RecordTies makes the kernel record same-LP same-instant adjacent
	// fire pairs (the schedule-relevant commutation points) for the
	// systematic frontier.
	RecordTies bool

	// MaxTies caps recorded ties per LP (0 = 64). A per-LP cap keeps
	// the recorded set shard-count-invariant.
	MaxTies int
}

// TieSwap names one same-instant tiebreak transposition: at instant At,
// the events whose raw keys are A and B trade places in the total order.
type TieSwap struct {
	At   Time
	A, B uint64
}

// TiePair is an observed commutation point: two events of the same LP
// fired back to back at the same instant. Inverting the pair (as a
// TieSwap) yields a distinct legal schedule; cross-LP pairs are not
// reported because disjoint LP state makes them commute.
type TiePair struct {
	At   Time
	LP   int
	A, B uint64
}

// swapKey indexes a transposition endpoint.
type swapKey struct {
	at  Time
	raw uint64
}

// exploreState is the compiled, kernel-shared form of an Explore config.
// It is built once before the run and never mutated afterwards, so shard
// kernels may consult it concurrently.
type exploreState struct {
	salt       uint64
	swaps      map[swapKey]uint64
	recordTies bool
	maxTies    int
}

// compile builds the shared state, composing Swaps into a bijection.
func (x *Explore) compile() *exploreState {
	st := &exploreState{salt: x.Salt, recordTies: x.RecordTies, maxTies: x.MaxTies}
	if st.maxTies <= 0 {
		st.maxTies = 64
	}
	if len(x.Swaps) > 0 {
		st.swaps = make(map[swapKey]uint64, 2*len(x.Swaps))
		get := func(at Time, r uint64) uint64 {
			if v, ok := st.swaps[swapKey{at, r}]; ok {
				return v
			}
			return r
		}
		for _, s := range x.Swaps {
			va, vb := get(s.At, s.A), get(s.At, s.B)
			st.swaps[swapKey{s.At, s.A}], st.swaps[swapKey{s.At, s.B}] = vb, va
		}
	}
	return st
}

// mix64 is the splitmix64 output mixer: a fixed bijection on uint64 used
// for the salted tiebreak permutation and the schedule digest.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// perm maps a raw node-LP tiebreak to its perturbed heap key. For a
// fixed instant this is a bijection on [0, 2^63): transposition
// composition, then an XOR with an instant-derived constant pushed
// through the mix64 bijection, cycle-walked back into the 63-bit
// domain (iterating a bijection until it re-enters a closed subdomain
// is itself a bijection on that subdomain). Staying below 2^63 keeps
// perturbed node keys disjoint from the net LP's bit-63 range (see
// Kernel.permKey). Keys at different instants never compare on prio —
// (at, prio) order is lexicographic — so instant-dependence is
// harmless.
func (st *exploreState) perm(at Time, raw uint64) uint64 {
	if st.swaps != nil {
		if key, ok := st.swaps[swapKey{at, raw}]; ok {
			raw = key
		}
	}
	if st.salt == 0 {
		return raw
	}
	c := mix64(uint64(at) ^ st.salt)
	v := raw
	for {
		v = mix64(v ^ c)
		if v < 1<<63 {
			return v
		}
	}
}

// setExplore installs the compiled state on one kernel and sizes its
// per-LP digest and tie-recording arrays.
func (k *Kernel) setExplore(st *exploreState) {
	k.explore = st
	k.digest = make([]uint64, k.lpCount)
	k.lastAt = make([]Time, k.lpCount)
	k.lastRaw = make([]uint64, k.lpCount)
	k.lastSeq = make([]uint64, k.lpCount)
	if st.recordTies {
		k.ties = make([][]TiePair, k.lpCount)
	}
}

// noteFire folds a fired event into its LP's schedule digest and, when
// recording, collects same-LP same-instant adjacent pairs. Keys are
// folded in *raw* (pre-perturbation) form: two runs that fire the same
// per-LP event sequences digest equal whatever their salts were, so the
// digest counts behaviorally distinct schedules, not salt values. Raw
// keys are never zero (origin+1 occupies the high bits), so lastRaw==0
// doubles as "no event fired on this LP yet".
//
// A pair is recorded only when both events were pending together —
// born < lastSeq[i] means this event entered the heap before the
// previous one fired. An event created *during* the previous event's
// callback (or by a proc that callback readied) is causally ordered
// after it: inverting such a pair's keys cannot reorder them, because
// the second event is not in the heap when the first is popped, so
// recording it would both waste the systematic frontier's budget on
// no-op schedules and crowd genuine commutation points out of the
// per-LP maxTies cap. The predicate is shard-count-invariant: an LP's
// same-instant creations come only from its own execution (the
// lookahead bound forbids zero-delay cross-LP events into a node), so
// "pending before the previous fire" is a property of the causal order,
// not of the kernel interleaving.
func (k *Kernel) noteFire(at Time, raw, born uint64, exec int32) {
	k.fireSeq++
	i := exec - k.lpBase
	d := k.digest[i]
	d = mix64(d ^ uint64(at))
	d = mix64(d ^ raw)
	k.digest[i] = d
	st := k.explore
	if st.recordTies && exec != k.netLP {
		if k.lastRaw[i] != 0 && k.lastAt[i] == at && born < k.lastSeq[i] && len(k.ties[i]) < st.maxTies {
			k.ties[i] = append(k.ties[i], TiePair{At: at, LP: int(exec), A: k.lastRaw[i], B: raw})
		}
	}
	k.lastAt[i], k.lastRaw[i], k.lastSeq[i] = at, raw, k.fireSeq
}

// SetExplore installs a schedule-perturbation config on every kernel of
// the simulation. A nil config is a no-op (canonical schedule, no
// digest). Must be called before Run and before any proc or event is
// created, so every key minted anywhere in the run goes through the
// same permutation.
func (c *Coordinator) SetExplore(x *Explore) {
	if c.started {
		panic("sim: SetExplore after Run")
	}
	if x == nil {
		return
	}
	// Raw keys must stay below bit 63 so the net LP's phase-normalized
	// range (bit 63 set) cannot collide with perturbed node keys. The
	// origin block starts at bit 44, leaving 63-44 = 19 bits of origin
	// headroom — this only excludes simulations with >= 2^19-2 nodes,
	// far past any explorable scale.
	if c.nodes+2 >= 1<<19 {
		panic("sim: SetExplore on a simulation too large for 63-bit event keys")
	}
	st := x.compile()
	for _, k := range c.kernels {
		if len(k.procs) > 0 || k.events.len() > 0 {
			panic("sim: SetExplore after procs or events were created")
		}
		k.setExplore(st)
	}
	if c.sharded {
		c.netK.setExplore(st)
	}
}

// Exploring reports whether SetExplore installed a perturbation config.
func (c *Coordinator) Exploring() bool { return c.kernels[0].explore != nil }

// ScheduleDigest returns a 64-bit digest of the schedule the run
// actually executed: each LP's fired (at, raw key) sequence folded in
// order, combined across LPs in LP-id order. It is invariant under
// shard count, net workers, and host parallelism, and — because it
// folds raw keys — equal for runs that fired identical per-LP sequences
// under different salts. Zero when exploration is off. Call after Run.
func (c *Coordinator) ScheduleDigest() uint64 {
	if !c.Exploring() {
		return 0
	}
	h := uint64(0x9e3779b97f4a7c15)
	for lp := 0; lp <= c.nodes; lp++ {
		k := c.ownerOf(int32(lp))
		h = mix64(h ^ uint64(lp) ^ k.digest[int32(lp)-k.lpBase])
	}
	return h
}

// TiePairs returns the commutation points observed by a RecordTies run:
// same-LP same-instant adjacent fire pairs, in LP-id order then fire
// order, capped per LP. The set is shard-count-invariant because each
// LP's fire sequence is. Call after Run.
func (c *Coordinator) TiePairs() []TiePair {
	var out []TiePair
	for lp := 0; lp <= c.nodes; lp++ {
		k := c.ownerOf(int32(lp))
		if k.ties == nil {
			continue
		}
		out = append(out, k.ties[int32(lp)-k.lpBase]...)
	}
	return out
}

// ownerOf returns the kernel owning an LP (including the network LP).
func (c *Coordinator) ownerOf(lp int32) *Kernel {
	if !c.sharded {
		return c.kernels[0]
	}
	if lp == int32(c.nodes) {
		return c.netK
	}
	return c.kernels[c.shardOf[lp]]
}
