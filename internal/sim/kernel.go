// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel runs simulated processes ("procs") as goroutines but executes
// exactly one of them at a time, passing a single run token around. All
// simulation state is therefore mutated without data races and every run
// is bit-for-bit reproducible: scheduling is decided only by the virtual
// clock, a FIFO ready queue, and an event heap with a (LP, counter)
// tiebreaker.
//
// Scheduling is direct handoff ("hot potato"): there is no resident
// scheduler goroutine. The scheduler step — ready-queue pop, event-heap
// pop, clock advance, deadlock detection — executes inline in whichever
// proc is currently giving up the token, which then hands the token
// straight to the next proc (one goroutine switch per decision, not two).
// When the parking proc turns out to be the next to run — in particular
// when it sleeps and its own wakeup is the earliest live event — it
// continues without any switch at all.
//
// Procs interact with the kernel through blocking primitives (Sleep,
// Signal.Wait, Semaphore.Acquire, Queue.Recv). When every proc is parked,
// the inline scheduler pops the earliest event, advances the virtual clock
// to it, and fires its callback, which typically readies one or more
// procs. If the ready queue and event heap are both empty while procs
// remain parked, the run ends with a deadlock report naming each blocked
// proc.
//
// # Logical processes and sharding
//
// Every proc and event belongs to a logical process (LP). A standalone
// kernel (NewKernel) has a single LP and behaves exactly as described
// above. A Coordinator (see sync.go) partitions the LPs of one simulation
// across several kernels — one per shard plus one for the shared network
// — and runs them in parallel under a conservative time-window protocol.
// Event keys are (at, origin LP, per-LP counter) in every mode, so the
// pop order, and therefore the simulation's entire behavior, is identical
// for every shard count.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// maxTime is the sentinel "never" instant for horizons and deadlines.
const maxTime = Time(1 << 62)

type procState uint8

const (
	stateReady procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Proc is a simulated process. A Proc handle is only valid inside the
// function passed to Kernel.Spawn, and all of its methods must be called
// from that function's goroutine.
type Proc struct {
	k         *Kernel
	id        int
	lp        int32 // owning logical process (shard-local state domain)
	name      string
	run       chan struct{}
	state     procState
	blockedOn string
	killed    bool
	wake      func() // cached Sleep callback: one closure per proc, not per call
}

// ID returns the proc's dense index in spawn order.
func (p *Proc) ID() int { return p.id }

// Name returns the label given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this proc belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// LP returns the logical process (node) the proc belongs to.
func (p *Proc) LP() int { return int(p.lp) }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// errKilled is panicked inside proc goroutines that are parked when the
// kernel shuts down (deadlock or abort), so their stacks unwind cleanly.
type errKilled struct{}

// DeadlockError is returned by Kernel.Run when no event can advance the
// simulation while procs remain blocked.
type DeadlockError struct {
	At      Time
	Blocked []string // "name: reason" for each parked proc
	Diag    string   // optional workload diagnostic (see SetDiagnostic)
}

func (e *DeadlockError) Error() string {
	msg := fmt.Sprintf("sim: deadlock at t=%v; blocked procs:\n  %s",
		e.At, strings.Join(e.Blocked, "\n  "))
	if e.Diag != "" {
		msg += "\n" + e.Diag
	}
	return msg
}

// WatchdogError is returned by Kernel.Run when a watchdog deadline (see
// SetWatchdog) expires with procs still alive: the run is aborted with a
// dump of every parked proc's wait reason, the pending event-heap head,
// and any workload diagnostic, instead of simulating a wedged collective
// forever (or until global deadlock, which a stuck-but-still-ticking
// scenario never reaches).
type WatchdogError struct {
	Deadline  Time
	Blocked   []string // "name: reason" for each parked proc
	NextEvent string   // event-heap head past the deadline, "none" if dry
	Diag      string   // optional workload diagnostic (see SetDiagnostic)
}

func (e *WatchdogError) Error() string {
	msg := fmt.Sprintf("sim: watchdog expired at t=%v; blocked procs:\n  %s\nnext pending event: %s",
		e.Deadline, strings.Join(e.Blocked, "\n  "), e.NextEvent)
	if e.Diag != "" {
		msg += "\n" + e.Diag
	}
	return msg
}

// PanicError wraps a panic raised inside a proc.
type PanicError struct {
	Proc  string
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: proc %q panicked: %v", e.Proc, e.Value)
}

// KernelStats counts scheduler activity; useful in tests and reports.
// Events and HeapHighWater are identical for every shard count of the
// same simulation; ContextSwitch depends on how procs interleave within
// one kernel and is therefore deterministic per shard count but not
// shard-invariant.
type KernelStats struct {
	Events uint64
	// ContextSwitch counts actual goroutine handoffs of the run token.
	// The previous two-hop scheduler (proc -> kernel goroutine -> proc)
	// paid two switches per scheduling decision and reported one;
	// direct handoff pays one, and zero when a proc resumes itself
	// (sleep/yield fast paths), so the reported count now matches what
	// the host actually pays.
	ContextSwitch uint64
	// HeapHighWater is the largest number of events pending at once —
	// the scheduler's memory footprint peak. A host-side counter only;
	// tracking it cannot affect virtual time.
	HeapHighWater uint64
}

// add accumulates other into s (used by Coordinator.Stats).
func (s *KernelStats) add(o KernelStats) {
	s.Events += o.Events
	s.ContextSwitch += o.ContextSwitch
	s.HeapHighWater += o.HeapHighWater
}

// outEvent is a cross-shard event creation buffered in the source
// kernel's per-destination outbox until the next window barrier. The key
// (at, prio) was fixed at creation time by the source LP, so the order
// outboxes are drained in cannot affect where the event sorts.
type outEvent struct {
	at   Time
	prio uint64
	exec int32
	fn   func()
}

// Kernel owns a virtual clock, an event heap, and a proc scheduler for
// one shard's worth of logical processes. The zero value is not usable;
// call NewKernel (standalone, single LP) or build a Coordinator.
type Kernel struct {
	now    Time
	events eventHeap
	epool  []*Event // dead events recycled by At (see Event doc)

	// LP bookkeeping. The kernel owns the contiguous LP range
	// [lpBase, lpBase+lpCount); curLP tracks which LP's code is
	// executing (the running proc's LP, or a firing event's exec LP) and
	// keys every event the code creates. oseq holds one creation counter
	// per owned LP: each LP executes identically under any shard count,
	// so the counters — and with them every event key — are globally
	// consistent.
	lpBase, lpCount int32
	netLP           int32
	curLP           int32
	oseq            []uint64

	procs []*Proc
	ready procRing // FIFO
	alive int

	// Sharding. A standalone kernel has coord == nil and runs the legacy
	// single-heap loop. Under a sharded Coordinator, windowed is true for
	// shard kernels: schedule stops at horizon and reports the window's
	// end on winDone instead of terminating, and cross-shard AtOn calls
	// buffer into outbox (drained by the coordinator at barriers).
	coord     *Coordinator
	kidx      int
	windowed  bool
	horizon   Time
	lookahead Duration
	outbox    [][]outEvent
	winDone   chan int

	// watchdogAt aborts the run when the next live event would fire at
	// or past it while procs are still alive (see SetWatchdog).
	watchdogAt Time

	// Schedule exploration (see explore.go). explore == nil means the
	// canonical schedule with zero overhead on the hot paths. When set,
	// push perturbs same-instant tiebreaks through explore.perm, and the
	// fire loops fold each LP's executed (at, raw) sequence into digest
	// (plus, when recording, adjacent same-instant pairs into ties). All
	// arrays are indexed by lp - lpBase.
	explore *exploreState
	digest  []uint64
	lastAt  []Time
	lastRaw []uint64
	lastSeq []uint64
	fireSeq uint64
	ties    [][]TiePair

	// mainWake resumes Kernel.Run when the simulation terminates
	// (completion, deadlock, or proc panic), and serves as the unwind
	// handshake during shutdown. Buffered so the terminating token
	// holder never blocks on it.
	mainWake     chan struct{}
	started      bool
	shuttingDown bool  // exit paths hand back to shutdown(), not schedule()
	termErr      error // deadlock error, nil on clean completion
	failure      error // first proc panic, aborts the run
	diag         func() string

	Stats KernelStats
}

// newKernel builds a kernel owning LPs [lpBase, lpBase+lpCount) in a
// simulation whose shared network LP is netLP.
func newKernel(lpBase, lpCount, netLP int) *Kernel {
	return &Kernel{
		mainWake:   make(chan struct{}, 1),
		lpBase:     int32(lpBase),
		lpCount:    int32(lpCount),
		netLP:      int32(netLP),
		curLP:      int32(lpBase),
		oseq:       make([]uint64, lpCount),
		horizon:    maxTime,
		watchdogAt: maxTime,
	}
}

// NewKernel returns an empty standalone kernel at virtual time zero, with
// a single logical process.
func NewKernel() *Kernel {
	return newKernel(0, 1, 0)
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// NumProcs returns the number of spawned procs.
func (k *Kernel) NumProcs() int { return len(k.procs) }

// Started reports whether Run (or the owning coordinator's Run) has
// begun.
func (k *Kernel) Started() bool { return k.started }

// NetLP returns the LP id of the simulation's shared network domain (the
// kernel's own LP for standalone kernels).
func (k *Kernel) NetLP() int { return int(k.netLP) }

// Lookahead returns the conservative cross-LP latency bound the owning
// coordinator synchronizes with (0 for standalone kernels).
func (k *Kernel) Lookahead() Duration { return k.lookahead }

func (k *Kernel) owns(lp int32) bool {
	return lp >= k.lpBase && lp < k.lpBase+k.lpCount
}

// nextPrio assigns the next event key tiebreaker for events created by
// origin: the LP id in the high bits (offset by one so that a
// coordinator-issued key with origin -1 would sort before everything at
// its instant) and the LP's private creation counter below.
func (k *Kernel) nextPrio(origin int32) uint64 {
	i := origin - k.lpBase
	k.oseq[i]++
	return uint64(origin+1)<<44 | k.oseq[i]
}

// permKey maps an event's raw (origin, counter) key to its heap key:
// the identity normally, the exploration transform under a config. The
// explored order is phase-normalized: a network-LP event sorts after
// every node-LP event at the same instant (bit 63), mirroring the
// sharded window protocol's node-phase-then-net-phase execution, and
// keeps its canonical key within the net range; node-LP keys are
// perturbed through a 63-bit bijection. See the soundness note in
// explore.go for why both halves are required for shard invariance.
func (k *Kernel) permKey(at Time, raw uint64, exec int32) uint64 {
	if k.explore == nil {
		return raw
	}
	if exec == k.netLP {
		return raw | 1<<63
	}
	return k.explore.perm(at, raw)
}

// push allocates (or recycles) an event and inserts it into the heap.
// prio is the raw (origin, counter) key minted by nextPrio; under an
// exploration config the heap key is its perturbed image while raw is
// kept on the event for digesting (see explore.go).
func (k *Kernel) push(at Time, prio uint64, exec int32, fn func()) *Event {
	key := k.permKey(at, prio, exec)
	var born uint64
	if k.explore != nil {
		born = k.fireSeq
	}
	var e *Event
	if n := len(k.epool); n > 0 {
		e = k.epool[n-1]
		k.epool[n-1] = nil
		k.epool = k.epool[:n-1]
		*e = Event{at: at, prio: key, raw: prio, born: born, exec: exec, fn: fn}
	} else {
		e = &Event{at: at, prio: key, raw: prio, born: born, exec: exec, fn: fn}
	}
	k.events.push(e)
	if n := uint64(k.events.len()); n > k.Stats.HeapHighWater {
		k.Stats.HeapHighWater = n
	}
	return e
}

// inject merges a cross-shard event (drained from a source kernel's
// outbox) into this kernel's heap. Called only by the coordinator at
// window barriers, when no shard is executing. An event landing below the
// destination's clock would mean the window protocol let the destination
// run past an instant another kernel could still populate — with adaptive
// horizons that is exactly the invariant route's shrinking maintains, so
// it is checked here rather than silently clamped.
func (k *Kernel) inject(o outEvent) {
	if o.at < k.now {
		panic(fmt.Sprintf("sim: cross-shard event at t=%v delivered to kernel already at t=%v", o.at, k.now))
	}
	k.push(o.at, o.prio, o.exec, o.fn)
}

// At schedules fn to run in kernel context when the virtual clock reaches
// t, on the current LP. Scheduling in the past (t < Now) is clamped to
// Now, which makes the event fire before any later-scheduled work. The
// returned Event may be cancelled.
//
// Event objects are pooled: a handle is valid until the event fires or,
// if cancelled, until the kernel discards it, after which the object may
// back a different scheduled event. Holders must drop their reference
// once the callback has run (as the flow scheduler does by nil-ing its
// handle inside the callback).
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		t = k.now
	}
	return k.push(t, k.nextPrio(k.curLP), k.curLP, fn)
}

// AtOn schedules fn to run at t as LP lp, which may live on another
// shard. No Event handle is returned: a cross-shard event cannot be
// cancelled or rescheduled by its creator.
//
// Before Run, lp must be owned by this kernel and the event is keyed by
// the target LP itself, so pre-run setup (fault plans, watchdogs)
// produces identical event keys under every shard count. During the run,
// a cross-LP event whose target is not the network LP must fire at least
// the coordinator's lookahead into the future — that bound is what lets
// shards run a whole time window without observing each other.
func (k *Kernel) AtOn(lp int, t Time, fn func()) {
	l := int32(lp)
	if t < k.now {
		t = k.now
	}
	if !k.started {
		if !k.owns(l) {
			panic(fmt.Sprintf("sim: pre-run AtOn(%d) on kernel owning [%d,%d)", lp, k.lpBase, k.lpBase+k.lpCount))
		}
		k.push(t, k.nextPrio(l), l, fn)
		return
	}
	if k.lookahead > 0 && l != k.curLP && l != k.netLP && t < k.now.Add(k.lookahead) {
		panic(fmt.Sprintf("sim: cross-LP event %d->%d at t=%v violates lookahead %v (now %v)",
			k.curLP, l, t, k.lookahead, k.now))
	}
	if k.owns(l) {
		k.push(t, k.nextPrio(k.curLP), l, fn)
		return
	}
	k.coord.route(k, outEvent{at: t, prio: k.nextPrio(k.curLP), exec: l, fn: fn})
}

// AfterOn schedules fn to run d from now as LP lp (see AtOn). Negative d
// is treated as zero.
func (k *Kernel) AfterOn(lp int, d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.AtOn(lp, k.now.Add(d), fn)
}

// AfterNet schedules fn to run d from now on the shared network LP.
// Zero-delay injection into the network domain is always legal: the
// network phase of every time window runs after all shard phases.
func (k *Kernel) AfterNet(d Duration, fn func()) {
	k.AfterOn(int(k.netLP), d, fn)
}

// recycle returns a dead (fired or discarded-cancelled) event to the
// allocation pool.
func (k *Kernel) recycle(e *Event) {
	e.fn = nil
	k.epool = append(k.epool, e)
}

// popEventBefore removes and returns the earliest live event firing
// before limit, discarding (and recycling) cancelled ones. Returns nil
// when no live event remains below the limit.
func (k *Kernel) popEventBefore(limit Time) *Event {
	for k.events.len() > 0 {
		if k.events.a[0].at >= limit {
			return nil
		}
		e := k.events.pop()
		if !e.cancelled {
			return e
		}
		k.recycle(e)
	}
	return nil
}

// nextLiveAt discards cancelled events from the top of the heap and
// returns the first live event's instant without removing it.
func (k *Kernel) nextLiveAt() (Time, bool) {
	for k.events.len() > 0 {
		e := k.events.a[0].ev
		if !e.cancelled {
			return e.at, true
		}
		k.recycle(k.events.pop())
	}
	return 0, false
}

// Reschedule moves a pending event to fire at t instead, keeping its
// callback. It is exactly equivalent to cancelling e and scheduling a
// fresh event with At — the event is re-keyed with the current LP's next
// creation counter, so its ordering relative to every other event is
// identical — but it updates the heap in place instead of leaving a
// cancelled tombstone behind. Callers that adjust event times in bulk
// (the flow scheduler re-fits completion times after every rate change)
// must use this: with 10k concurrent flows, cancel-and-replace made five
// of every six heap entries garbage and tripled the heap's depth.
//
// e must be pending: not nil, not cancelled, not yet fired.
func (k *Kernel) Reschedule(e *Event, t Time) {
	if e == nil || e.cancelled || e.index < 0 {
		panic("sim: Reschedule of a dead event")
	}
	if t < k.now {
		t = k.now
	}
	raw := k.nextPrio(k.curLP)
	e.raw = raw
	if k.explore != nil {
		e.born = k.fireSeq // re-keying is a re-creation for tie purposes
	}
	k.events.update(e, t, k.permKey(t, raw, e.exec))
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// SetDiagnostic installs a workload-level dump (per-rank pending
// requests, say) that is appended to deadlock and watchdog reports. The
// callback runs in kernel context at fault time and must not block.
func (k *Kernel) SetDiagnostic(fn func() string) { k.diag = fn }

// SetWatchdog arms a virtual-time deadline: if any proc is still alive
// when the next live event would fire at or past it, the run aborts with
// a *WatchdogError naming every blocked proc instead of simulating a
// wedged workload forever. A run that completes before the deadline is
// unaffected, and a genuine global deadlock before the deadline is also
// reported as a WatchdogError (the deadline is the verdict the caller
// asked for). The deadline is a bound checked at event pops, not a
// pending event, so it never advances the clock. d <= 0 is a no-op; the
// watchdog is off by default. Must be called before Run.
func (k *Kernel) SetWatchdog(d Duration) {
	if k.started {
		panic("sim: SetWatchdog after Run")
	}
	if d <= 0 {
		return
	}
	k.watchdogAt = k.now.Add(d)
}

// watchdogErr builds the abort verdict for an expired watchdog.
func (k *Kernel) watchdogErr(next string) *WatchdogError {
	e := &WatchdogError{Deadline: k.watchdogAt, Blocked: k.blockedDump(), NextEvent: next}
	if k.diag != nil {
		e.Diag = k.diag()
	}
	return e
}

// Spawn registers a new proc running body on the kernel's first LP. It
// must be called before Run (procs spawning procs is not supported;
// MPI-style workloads spawn the whole world up front).
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	return k.SpawnOn(int(k.lpBase), name, body)
}

// SpawnOn registers a new proc running body as LP lp, which must be
// owned by this kernel.
func (k *Kernel) SpawnOn(lp int, name string, body func(*Proc)) *Proc {
	if k.started {
		panic("sim: Spawn after Run")
	}
	if !k.owns(int32(lp)) {
		panic(fmt.Sprintf("sim: SpawnOn(%d) on kernel owning [%d,%d)", lp, k.lpBase, k.lpBase+k.lpCount))
	}
	p := &Proc{
		k:    k,
		id:   len(k.procs),
		lp:   int32(lp),
		name: name,
		// Buffered: the handing-off goroutine deposits the token and
		// returns to its own wait without rendezvousing, so a wakeup
		// can never block the waker.
		run:   make(chan struct{}, 1),
		state: stateReady,
	}
	p.wake = func() { k.readyProc(p) }
	k.procs = append(k.procs, p)
	k.ready.push(p)
	k.alive++
	go func() {
		<-p.run // wait for the first token
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(errKilled); ok {
					// Unwound by kernel shutdown: hand the token back to
					// the shutdown loop without touching failure state.
					p.state = stateDone
					k.alive--
					k.mainWake <- struct{}{}
					return
				}
				if k.failure == nil {
					k.failure = &PanicError{Proc: p.name, Value: r}
				}
			}
			p.state = stateDone
			k.alive--
			if k.shuttingDown {
				// A killed proc recovered errKilled itself (or finished
				// while unwinding); still hand back to the shutdown loop.
				k.mainWake <- struct{}{}
				return
			}
			// Direct handoff: the exiting proc runs the scheduler and
			// passes the token to the next proc (or ends the run/window).
			k.schedule(nil)
		}()
		if p.killed {
			panic(errKilled{})
		}
		body(p)
	}()
	return p
}

// Run drives the simulation until every proc has finished and no live
// events remain. It returns a *DeadlockError if procs are stuck, a
// *WatchdogError if the armed deadline expired, or a *PanicError if a
// proc panicked. Run may only be called once, and not on a kernel owned
// by a sharded Coordinator (use Coordinator.Run).
//
// Run is only a bootstrap/teardown shell: it hands the token to the first
// proc and sleeps until a token holder declares the run over; scheduling
// decisions happen inline in the procs themselves (see schedule).
func (k *Kernel) Run() error {
	if k.started {
		panic("sim: Run called twice")
	}
	if k.windowed {
		panic("sim: Run on a sharded kernel; use Coordinator.Run")
	}
	k.started = true
	k.schedule(nil)
	<-k.mainWake
	if k.failure != nil {
		k.shutdown()
		return k.failure
	}
	if k.termErr != nil {
		k.shutdown()
		return k.termErr
	}
	return nil
}

// schedule is the scheduler step, executed inline by the current token
// holder when it gives up the token: a parking proc, an exiting proc
// (self == nil), a window-driving goroutine, or Run at bootstrap
// (self == nil). It fires due events until a proc is runnable, then
// hands the token over. It returns true if self was selected to keep
// running — the caller continues without any goroutine switch — and
// false if the token went elsewhere (or the run/window ended), in which
// case a parking caller must wait on its own run channel.
//
// After the `p.run <-` send the caller may execute a few more
// instructions before blocking, concurrently with the woken proc; it
// must touch no simulation state in that window (the send is the last
// shared-state operation on every path).
func (k *Kernel) schedule(self *Proc) bool {
	for {
		if k.failure != nil {
			if k.windowed {
				k.endWindow()
			} else {
				k.terminate(nil)
			}
			return false
		}
		if k.ready.len() > 0 {
			p := k.ready.pop()
			if p.state == stateDone {
				continue
			}
			p.state = stateRunning
			k.curLP = p.lp
			if p == self {
				return true
			}
			k.Stats.ContextSwitch++
			p.run <- struct{}{}
			return false
		}
		e := k.popEventBefore(k.horizon)
		if e == nil {
			if k.windowed {
				// The window is exhausted; the coordinator decides what
				// happens next (another window, termination, a verdict).
				k.endWindow()
				return false
			}
			switch {
			case k.alive == 0:
				k.terminate(nil) // clean completion
			case k.watchdogAt < maxTime:
				k.terminate(k.watchdogErr("none"))
			default:
				k.terminate(k.deadlock())
			}
			return false
		}
		if e.at >= k.watchdogAt {
			if k.alive > 0 {
				k.terminate(k.watchdogErr(fmt.Sprintf("t=%v", e.at)))
				return false
			}
			// Everything finished before the deadline: disarm and drain.
			k.watchdogAt = maxTime
		}
		if e.at > k.now {
			k.now = e.at
		}
		k.Stats.Events++
		k.curLP = e.exec
		if k.explore != nil {
			k.noteFire(e.at, e.raw, e.born, e.exec)
		}
		fn := e.fn
		k.recycle(e)
		fn()
	}
}

// endWindow reports this shard's window as exhausted to the coordinator.
// Called exactly once per window, by whichever token holder runs out of
// work below the horizon.
func (k *Kernel) endWindow() {
	k.winDone <- k.kidx
}

// runWindow executes this kernel's events below the horizon inline on
// the calling goroutine. Used by the coordinator for the network kernel,
// which has events but no procs.
func (k *Kernel) runWindow() {
	for {
		e := k.popEventBefore(k.horizon)
		if e == nil {
			return
		}
		if e.at > k.now {
			k.now = e.at
		}
		k.Stats.Events++
		k.curLP = e.exec
		if k.explore != nil {
			k.noteFire(e.at, e.raw, e.born, e.exec)
		}
		fn := e.fn
		k.recycle(e)
		fn()
	}
}

// terminate ends the run: it records the verdict and wakes Run, which
// owns teardown. Called exactly once per run, by whichever token holder
// discovers termination. The deadlocked/parked procs (including, for a
// deadlock, the very proc that detected it) are unwound by shutdown.
func (k *Kernel) terminate(err error) {
	k.termErr = err
	k.mainWake <- struct{}{}
}

// deadlock builds the error naming every parked proc.
func (k *Kernel) deadlock() *DeadlockError {
	e := &DeadlockError{At: k.now, Blocked: k.blockedDump()}
	if k.diag != nil {
		e.Diag = k.diag()
	}
	return e
}

// blockedDump lists every parked proc as "name: reason", sorted for
// stable reports.
func (k *Kernel) blockedDump() []string {
	var blocked []string
	for _, p := range k.procs {
		if p.state == stateBlocked {
			blocked = append(blocked, fmt.Sprintf("%s: %s", p.name, p.blockedOn))
		}
	}
	sort.Strings(blocked)
	return blocked
}

// shutdown unwinds every parked proc so no goroutines leak after a failed
// run. It runs on the Run goroutine (or the coordinator), which holds the
// token once the run is over; unwinding procs hand back via mainWake, not
// the scheduler.
func (k *Kernel) shutdown() {
	k.shuttingDown = true
	for _, p := range k.procs {
		if p.state == stateBlocked || p.state == stateReady {
			p.killed = true
		}
	}
	// Wake parked procs one at a time; each unwinds via errKilled and
	// hands back. Ready-but-never-run procs are woken the same way.
	for _, p := range k.procs {
		if p.state == stateBlocked || p.state == stateReady {
			p.state = stateRunning
			p.run <- struct{}{}
			<-k.mainWake
		}
	}
	k.ready.reset()
}

// readyProc appends p to the ready queue. Kernel-internal; called from
// event callbacks and from the currently running proc.
func (k *Kernel) readyProc(p *Proc) {
	if p.state != stateBlocked {
		panic(fmt.Sprintf("sim: readying proc %q in state %d", p.name, p.state))
	}
	p.state = stateReady
	k.ready.push(p)
}

// park blocks the calling proc until something readies it. why is shown in
// deadlock reports. The parking proc runs the scheduler inline; if it
// readies itself before anything else becomes runnable (firing its own
// wakeup event, say), it resumes with zero goroutine switches.
func (p *Proc) park(why string) {
	if p.killed {
		panic(errKilled{})
	}
	p.state = stateBlocked
	p.blockedOn = why
	if !p.k.schedule(p) {
		<-p.run
		if p.killed {
			panic(errKilled{})
		}
	}
	p.blockedOn = ""
}

// yieldNow gives other ready procs a chance to run at the same instant.
// With an empty ready queue nothing could interleave, so it returns
// immediately without touching the scheduler.
func (p *Proc) yieldNow(why string) {
	if p.killed {
		panic(errKilled{})
	}
	k := p.k
	if k.ready.len() == 0 {
		return
	}
	p.state = stateBlocked
	p.blockedOn = why
	k.readyProc(p)
	if !k.schedule(p) {
		<-p.run
		if p.killed {
			panic(errKilled{})
		}
	}
	p.blockedOn = ""
}

// Yield lets all other currently-ready procs run before continuing.
// Virtual time does not advance.
func (p *Proc) Yield() { p.yieldNow("yield") }

// Sleep blocks the proc for d of virtual time. Negative d is treated as 0
// but still yields.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	k := p.k
	// Zero-handoff fast path: if no proc is ready, no event precedes
	// this proc's own wakeup, and the wakeup lands inside the current
	// window and watchdog deadline, the wakeup is by construction the
	// next thing to happen (it would carry the highest creation counter,
	// so any event at the same instant fires first — hence the strict >).
	// Advance the clock and keep running: no event scheduled, no park,
	// no goroutine switch. Common in per-hop pipelined loops where one
	// rank repeatedly sleeps for transfer or overhead durations. Events
	// merged from other shards always fire at or past the horizon, so
	// skipping the heap cannot skip over them.
	//
	// Disabled under exploration: whether the fast path is taken depends
	// on this kernel's heap and ready queue — shard-local state — and a
	// taken fast path skips minting a creation counter. Canonically that
	// is sound (a per-LP counter shift preserves order: same-LP relative
	// order is untouched and cross-LP keys compare on the origin bits
	// first), but a salted permutation scrambles relative counter order,
	// so skipped counters would make the schedule depend on the shard
	// count. Exploration therefore always schedules the real wakeup.
	if k.ready.len() == 0 && k.explore == nil {
		wakeAt := k.now.Add(d)
		if wakeAt < k.horizon && wakeAt < k.watchdogAt {
			if at, ok := k.events.peekAt(); !ok || at > wakeAt {
				k.now = wakeAt
				k.Stats.Events++ // stands in for the skipped wakeup event
				return
			}
		}
	}
	k.After(d, p.wake)
	// A static reason: a sleeping proc always has a live wakeup event, so
	// it can never appear in a deadlock report, and formatting the target
	// time here put a fmt.Sprintf on the simulator's hottest path.
	p.park("sleep")
}

// SleepUntil blocks the proc until virtual time t (no-op if already past).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.k.now {
		p.Yield()
		return
	}
	p.Sleep(t.Sub(p.k.now))
}

// procRing is the ready queue: a FIFO over a power-of-two ring buffer
// with O(1) push and pop. The previous slice-based FIFO shifted every
// remaining element on each pop, which made a single scheduling decision
// O(n) once thousands of procs were ready at the same instant (the
// steady state of a 10k-rank collective).
type procRing struct {
	buf  []*Proc
	head int
	n    int
}

func (r *procRing) len() int { return r.n }

func (r *procRing) push(p *Proc) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

// pop removes the oldest proc. Callers must check len first.
func (r *procRing) pop() *Proc {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *procRing) reset() { *r = procRing{} }

func (r *procRing) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 64
	}
	buf := make([]*Proc, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}
