// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel runs simulated processes ("procs") as goroutines but executes
// exactly one of them at a time, handing a run token back and forth. All
// simulation state is therefore mutated without data races and every run
// is bit-for-bit reproducible: scheduling is decided only by the virtual
// clock, a FIFO ready queue, and an event heap with a sequence-number
// tiebreaker.
//
// Procs interact with the kernel through blocking primitives (Sleep,
// Signal.Wait, Semaphore.Acquire, Queue.Recv). When every proc is parked,
// the kernel pops the earliest event, advances the virtual clock to it,
// and fires its callback, which typically readies one or more procs. If
// the ready queue and event heap are both empty while procs remain parked,
// the kernel reports a deadlock naming each blocked proc.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

type procState uint8

const (
	stateReady procState = iota
	stateRunning
	stateBlocked
	stateDone
)

// Proc is a simulated process. A Proc handle is only valid inside the
// function passed to Kernel.Spawn, and all of its methods must be called
// from that function's goroutine.
type Proc struct {
	k         *Kernel
	id        int
	name      string
	run       chan struct{}
	state     procState
	blockedOn string
	killed    bool
	wake      func() // cached Sleep callback: one closure per proc, not per call
}

// ID returns the proc's dense index in spawn order.
func (p *Proc) ID() int { return p.id }

// Name returns the label given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this proc belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// errKilled is panicked inside proc goroutines that are parked when the
// kernel shuts down (deadlock or abort), so their stacks unwind cleanly.
type errKilled struct{}

// DeadlockError is returned by Kernel.Run when no event can advance the
// simulation while procs remain blocked.
type DeadlockError struct {
	At      Time
	Blocked []string // "name: reason" for each parked proc
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v; blocked procs:\n  %s",
		e.At, strings.Join(e.Blocked, "\n  "))
}

// PanicError wraps a panic raised inside a proc.
type PanicError struct {
	Proc  string
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sim: proc %q panicked: %v", e.Proc, e.Value)
}

// Kernel owns the virtual clock, the event heap, and the proc scheduler.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	epool  []*Event // dead events recycled by At (see Event doc)

	procs []*Proc
	ready procRing // FIFO
	alive int

	yield   chan struct{} // proc -> kernel: I parked/finished
	started bool
	failure error // first proc panic, aborts the run

	// Stats counts scheduler activity; useful in tests and reports.
	Stats struct {
		Events        uint64
		ContextSwitch uint64
	}
}

// NewKernel returns an empty kernel at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// NumProcs returns the number of spawned procs.
func (k *Kernel) NumProcs() int { return len(k.procs) }

// At schedules fn to run in kernel context when the virtual clock reaches
// t. Scheduling in the past (t < Now) is clamped to Now, which makes the
// event fire before any later-scheduled work. The returned Event may be
// cancelled.
//
// Event objects are pooled: a handle is valid until the event fires or,
// if cancelled, until the kernel discards it, after which the object may
// back a different scheduled event. Holders must drop their reference
// once the callback has run (as the flow scheduler does by nil-ing its
// handle inside the callback).
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		t = k.now
	}
	k.seq++
	var e *Event
	if n := len(k.epool); n > 0 {
		e = k.epool[n-1]
		k.epool[n-1] = nil
		k.epool = k.epool[:n-1]
		*e = Event{at: t, seq: k.seq, fn: fn}
	} else {
		e = &Event{at: t, seq: k.seq, fn: fn}
	}
	heap.Push(&k.events, e)
	return e
}

// recycle returns a dead (fired or discarded-cancelled) event to the
// allocation pool.
func (k *Kernel) recycle(e *Event) {
	e.fn = nil
	k.epool = append(k.epool, e)
}

// popEvent removes and returns the earliest live event, discarding (and
// recycling) cancelled ones. Returns nil when no live event remains.
func (k *Kernel) popEvent() *Event {
	for k.events.Len() > 0 {
		e := heap.Pop(&k.events).(*Event)
		if !e.cancelled {
			return e
		}
		k.recycle(e)
	}
	return nil
}

// After schedules fn to run d from now. Negative d is treated as zero.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Spawn registers a new proc running body. It must be called before Run
// (procs spawning procs is not supported; MPI-style workloads spawn the
// whole world up front).
func (k *Kernel) Spawn(name string, body func(*Proc)) *Proc {
	if k.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		k:     k,
		id:    len(k.procs),
		name:  name,
		run:   make(chan struct{}),
		state: stateReady,
	}
	p.wake = func() { k.readyProc(p) }
	k.procs = append(k.procs, p)
	k.ready.push(p)
	k.alive++
	go func() {
		<-p.run // wait for the first token
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(errKilled); ok {
					// Unwound by kernel shutdown: hand the token back
					// without touching failure state.
					p.state = stateDone
					k.alive--
					k.yield <- struct{}{}
					return
				}
				if k.failure == nil {
					k.failure = &PanicError{Proc: p.name, Value: r}
				}
			}
			p.state = stateDone
			k.alive--
			k.yield <- struct{}{}
		}()
		if p.killed {
			panic(errKilled{})
		}
		body(p)
	}()
	return p
}

// Run drives the simulation until every proc has finished and no live
// events remain. It returns a *DeadlockError if procs are stuck, or a
// *PanicError if a proc panicked. Run may only be called once.
func (k *Kernel) Run() error {
	if k.started {
		panic("sim: Run called twice")
	}
	k.started = true
	for {
		if k.failure != nil {
			k.shutdown()
			return k.failure
		}
		if k.ready.len() > 0 {
			p := k.ready.pop()
			if p.state == stateDone {
				continue
			}
			p.state = stateRunning
			k.Stats.ContextSwitch++
			p.run <- struct{}{}
			<-k.yield
			continue
		}
		e := k.popEvent()
		if e == nil {
			if k.alive == 0 {
				return nil
			}
			err := k.deadlock()
			k.shutdown()
			return err
		}
		if e.at > k.now {
			k.now = e.at
		}
		k.Stats.Events++
		fn := e.fn
		k.recycle(e)
		fn()
	}
}

// deadlock builds the error naming every parked proc.
func (k *Kernel) deadlock() *DeadlockError {
	var blocked []string
	for _, p := range k.procs {
		if p.state == stateBlocked {
			blocked = append(blocked, fmt.Sprintf("%s: %s", p.name, p.blockedOn))
		}
	}
	sort.Strings(blocked)
	return &DeadlockError{At: k.now, Blocked: blocked}
}

// shutdown unwinds every parked proc so no goroutines leak after a failed
// run.
func (k *Kernel) shutdown() {
	for _, p := range k.procs {
		if p.state == stateBlocked || p.state == stateReady {
			p.killed = true
		}
	}
	// Wake parked procs one at a time; each unwinds via errKilled and
	// yields back. Ready-but-never-run procs are woken the same way.
	for _, p := range k.procs {
		if p.state == stateBlocked || p.state == stateReady {
			p.state = stateRunning
			p.run <- struct{}{}
			<-k.yield
		}
	}
	k.ready.reset()
}

// readyProc appends p to the ready queue. Kernel-internal; called from
// event callbacks and from the currently running proc.
func (k *Kernel) readyProc(p *Proc) {
	if p.state != stateBlocked {
		panic(fmt.Sprintf("sim: readying proc %q in state %d", p.name, p.state))
	}
	p.state = stateReady
	k.ready.push(p)
}

// park blocks the calling proc until something readies it. why is shown in
// deadlock reports.
func (p *Proc) park(why string) {
	p.state = stateBlocked
	p.blockedOn = why
	p.k.yield <- struct{}{}
	<-p.run
	if p.killed {
		panic(errKilled{})
	}
	p.blockedOn = ""
}

// yieldNow gives other ready procs a chance to run at the same instant.
func (p *Proc) yieldNow(why string) {
	k := p.k
	p.state = stateBlocked
	p.blockedOn = why
	k.readyProc(p)
	k.yield <- struct{}{}
	<-p.run
	if p.killed {
		panic(errKilled{})
	}
}

// Yield lets all other currently-ready procs run before continuing.
// Virtual time does not advance.
func (p *Proc) Yield() { p.yieldNow("yield") }

// Sleep blocks the proc for d of virtual time. Negative d is treated as 0
// but still yields.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.k.After(d, p.wake)
	// A static reason: a sleeping proc always has a live wakeup event, so
	// it can never appear in a deadlock report, and formatting the target
	// time here put a fmt.Sprintf on the simulator's hottest path.
	p.park("sleep")
}

// SleepUntil blocks the proc until virtual time t (no-op if already past).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.k.now {
		p.Yield()
		return
	}
	p.Sleep(t.Sub(p.k.now))
}

// procRing is the ready queue: a FIFO over a power-of-two ring buffer
// with O(1) push and pop. The previous slice-based FIFO shifted every
// remaining element on each pop, which made a single scheduling decision
// O(n) once thousands of procs were ready at the same instant (the
// steady state of a 10k-rank collective).
type procRing struct {
	buf  []*Proc
	head int
	n    int
}

func (r *procRing) len() int { return r.n }

func (r *procRing) push(p *Proc) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

// pop removes the oldest proc. Callers must check len first.
func (r *procRing) pop() *Proc {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *procRing) reset() { *r = procRing{} }

func (r *procRing) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 64
	}
	buf := make([]*Proc, size)
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = buf, 0
}
