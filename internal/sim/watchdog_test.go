package sim

import (
	"errors"
	"strings"
	"testing"
)

// TestWatchdogAbortsWedgedRun: a proc that keeps the clock ticking with
// live events never reaches the kernel's global deadlock detection, so
// the watchdog deadline is the only thing that can turn the wedge into
// a diagnostic error.
func TestWatchdogAbortsWedgedRun(t *testing.T) {
	k := NewKernel()
	k.SetWatchdog(100 * Microsecond)
	var sig Signal
	k.Spawn("stuck-a", func(p *Proc) { sig.Wait(p, "waiting on a signal nobody fires") })
	k.Spawn("ticker", func(p *Proc) {
		for {
			p.Sleep(Microsecond) // live events forever: no global deadlock
		}
	})
	err := k.Run()
	var wd *WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("got %v, want WatchdogError", err)
	}
	if wd.Deadline != Time(100*Microsecond) {
		t.Fatalf("deadline %v, want 100us", wd.Deadline)
	}
	msg := err.Error()
	for _, want := range []string{"stuck-a", "waiting on a signal nobody fires", "next pending event"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("watchdog report missing %q:\n%s", want, msg)
		}
	}
	// The ticker's wakeup was pending when the watchdog fired.
	if !strings.Contains(wd.NextEvent, "t=") {
		t.Fatalf("NextEvent = %q, want a pending event time", wd.NextEvent)
	}
}

// TestWatchdogNoopOnCleanRun: a run that finishes before the deadline
// must complete exactly as if the watchdog were never armed.
func TestWatchdogNoopOnCleanRun(t *testing.T) {
	k := NewKernel()
	k.SetWatchdog(Second)
	var end Time
	k.Spawn("quick", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(5*Microsecond) {
		t.Fatalf("proc finished at %v, want 5us", end)
	}
}

// TestWatchdogReportsDeadlockAtDeadline: with the watchdog armed, a
// genuine deadlock is surfaced when the deadline fires (the armed
// watchdog is itself a live event, so instant detection is off).
func TestWatchdogReportsDeadlockAtDeadline(t *testing.T) {
	k := NewKernel()
	k.SetWatchdog(50 * Microsecond)
	var sig Signal
	k.Spawn("stuck", func(p *Proc) { sig.Wait(p, "forever") })
	err := k.Run()
	var wd *WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("got %v, want WatchdogError", err)
	}
	if len(wd.Blocked) != 1 || !strings.Contains(wd.Blocked[0], "stuck") {
		t.Fatalf("blocked dump %v", wd.Blocked)
	}
	if wd.NextEvent != "none" {
		t.Fatalf("NextEvent = %q, want none", wd.NextEvent)
	}
}

// TestDiagnosticInReports: a workload diagnostic is appended to both
// deadlock and watchdog errors.
func TestDiagnosticInReports(t *testing.T) {
	k := NewKernel()
	k.SetDiagnostic(func() string { return "pending requests: 3" })
	var sig Signal
	k.Spawn("stuck", func(p *Proc) { sig.Wait(p, "forever") })
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if dl.Diag != "pending requests: 3" || !strings.Contains(err.Error(), "pending requests: 3") {
		t.Fatalf("diagnostic missing from deadlock report: %v", err)
	}

	k2 := NewKernel()
	k2.SetWatchdog(10 * Microsecond)
	k2.SetDiagnostic(func() string { return "rank 1: 2 posted recvs" })
	var sig2 Signal
	k2.Spawn("stuck", func(p *Proc) { sig2.Wait(p, "forever") })
	err = k2.Run()
	var wd *WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("got %v, want WatchdogError", err)
	}
	if !strings.Contains(err.Error(), "rank 1: 2 posted recvs") {
		t.Fatalf("diagnostic missing from watchdog report: %v", err)
	}
}

// TestWatchdogZeroIsOff: SetWatchdog(0) arms nothing — the run keeps the
// instant deadlock detection and terminates with a DeadlockError.
func TestWatchdogZeroIsOff(t *testing.T) {
	k := NewKernel()
	k.SetWatchdog(0)
	var sig Signal
	k.Spawn("stuck", func(p *Proc) { sig.Wait(p, "forever") })
	var dl *DeadlockError
	if err := k.Run(); !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
}
