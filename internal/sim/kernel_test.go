package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSingleProcSleepAdvancesClock(t *testing.T) {
	k := NewKernel()
	var woke Time
	k.Spawn("p0", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(5*Microsecond) {
		t.Fatalf("woke at %v, want 5us", woke)
	}
	if k.Now() != Time(5*Microsecond) {
		t.Fatalf("kernel clock %v, want 5us", k.Now())
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	k := NewKernel()
	order := []string{}
	k.Spawn("a", func(p *Proc) {
		p.Sleep(0)
		order = append(order, "a")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(-10)
		order = append(order, "b")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 0 {
		t.Fatalf("clock advanced to %v on zero sleeps", k.Now())
	}
	if len(order) != 2 {
		t.Fatalf("got order %v", order)
	}
}

func TestEventOrderingIsDeterministicFIFO(t *testing.T) {
	// Events at the same instant fire in scheduling order.
	k := NewKernel()
	var got []int
	k.Spawn("driver", func(p *Proc) {
		for i := 0; i < 10; i++ {
			i := i
			k.After(3*Microsecond, func() { got = append(got, i) })
		}
		p.Sleep(10 * Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("event order %v, want ascending", got)
		}
	}
}

func TestEventCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	k.Spawn("p", func(p *Proc) {
		e := k.After(Microsecond, func() { fired = true })
		e.Cancel()
		if !e.Cancelled() {
			t.Error("event not marked cancelled")
		}
		p.Sleep(5 * Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	k := NewKernel()
	var firedAt Time
	k.Spawn("p", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		k.At(Time(3*Microsecond), func() { firedAt = k.Now() })
		p.Sleep(Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if firedAt != Time(10*Microsecond) {
		t.Fatalf("past event fired at %v, want clamp to 10us", firedAt)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	var sig Signal
	k.Spawn("stuck-a", func(p *Proc) { sig.Wait(p, "waiting for nothing") })
	k.Spawn("stuck-b", func(p *Proc) { sig.Wait(p, "also waiting") })
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("blocked list %v, want 2 entries", dl.Blocked)
	}
	if !strings.Contains(err.Error(), "stuck-a") || !strings.Contains(err.Error(), "waiting for nothing") {
		t.Fatalf("deadlock report missing detail: %v", err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel()
	var sig Signal
	k.Spawn("victim", func(p *Proc) { sig.Wait(p, "parked forever") })
	k.Spawn("bomber", func(p *Proc) {
		p.Sleep(Microsecond)
		panic("boom")
	})
	err := k.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want PanicError", err)
	}
	if pe.Proc != "bomber" || fmt.Sprint(pe.Value) != "boom" {
		t.Fatalf("wrong panic detail: %+v", pe)
	}
}

func TestSignalFIFOOrder(t *testing.T) {
	k := NewKernel()
	var sig Signal
	var got []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("w%d", i)
		k.Spawn(name, func(p *Proc) {
			sig.Wait(p, "test")
			got = append(got, p.Name())
		})
	}
	k.Spawn("firer", func(p *Proc) {
		p.Sleep(Microsecond) // let all waiters park
		for i := 0; i < 5; i++ {
			if !sig.Fire() {
				t.Error("Fire found no waiter")
			}
		}
		if sig.Fire() {
			t.Error("Fire released a phantom waiter")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, name := range got {
		if name != fmt.Sprintf("w%d", i) {
			t.Fatalf("wake order %v, want FIFO", got)
		}
	}
}

func TestSignalFireAll(t *testing.T) {
	k := NewKernel()
	var sig Signal
	released := 0
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			sig.Wait(p, "test")
			released++
		})
	}
	k.Spawn("firer", func(p *Proc) {
		p.Sleep(Microsecond)
		if n := sig.FireAll(); n != 4 {
			t.Errorf("FireAll released %d, want 4", n)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if released != 4 {
		t.Fatalf("released %d, want 4", released)
	}
}

func TestSemaphoreSerializes(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore("nic", 1)
	var maxConc, conc int
	for i := 0; i < 8; i++ {
		k.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			sem.Acquire(p)
			conc++
			if conc > maxConc {
				maxConc = conc
			}
			p.Sleep(Microsecond)
			conc--
			sem.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxConc != 1 {
		t.Fatalf("max concurrency %d, want 1", maxConc)
	}
	if k.Now() != Time(8*Microsecond) {
		t.Fatalf("serialized time %v, want 8us", k.Now())
	}
}

func TestSemaphoreCounted(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore("slots", 3)
	var maxConc, conc int
	for i := 0; i < 9; i++ {
		k.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			sem.Acquire(p)
			conc++
			if conc > maxConc {
				maxConc = conc
			}
			p.Sleep(Microsecond)
			conc--
			sem.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxConc != 3 {
		t.Fatalf("max concurrency %d, want 3", maxConc)
	}
	if k.Now() != Time(3*Microsecond) {
		t.Fatalf("took %v, want 3us with 3 slots", k.Now())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore("s", 1)
	k.Spawn("p", func(p *Proc) {
		if !sem.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		if sem.TryAcquire() {
			t.Error("second TryAcquire succeeded with 0 permits")
		}
		sem.Release()
		if !sem.TryAcquire() {
			t.Error("TryAcquire after Release failed")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestQueueSendRecv(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int]("mbox")
	var got []int
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Recv(p))
		}
	})
	k.Spawn("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(Microsecond)
			q.Send(i * 10)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestQueueTryRecv(t *testing.T) {
	k := NewKernel()
	q := NewQueue[string]("m")
	k.Spawn("p", func(p *Proc) {
		if _, ok := q.TryRecv(); ok {
			t.Error("TryRecv on empty queue succeeded")
		}
		q.Send("x")
		q.Send("y")
		if q.Len() != 2 {
			t.Errorf("Len = %d, want 2", q.Len())
		}
		v, ok := q.TryRecv()
		if !ok || v != "x" {
			t.Errorf("TryRecv = %q,%v want x,true", v, ok)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroup(t *testing.T) {
	k := NewKernel()
	var wg WaitGroup
	wg.Add(3)
	doneAt := Time(-1)
	for i := 1; i <= 3; i++ {
		d := Duration(i) * Microsecond
		k.Spawn(fmt.Sprintf("worker%d", i), func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p, "join workers")
		doneAt = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != Time(3*Microsecond) {
		t.Fatalf("waiter released at %v, want 3us", doneAt)
	}
}

func TestYieldInterleaves(t *testing.T) {
	k := NewKernel()
	var got []string
	k.Spawn("a", func(p *Proc) {
		got = append(got, "a1")
		p.Yield()
		got = append(got, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		got = append(got, "b1")
		p.Yield()
		got = append(got, "b2")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a1 b1 a2 b2"
	if strings.Join(got, " ") != want {
		t.Fatalf("got %v, want %q", got, want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	trace := func() []string {
		k := NewKernel()
		var tr []string
		var sig Signal
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("p%d", i)
			d := Duration((i*7)%5) * Microsecond
			k.Spawn(name, func(p *Proc) {
				p.Sleep(d)
				tr = append(tr, fmt.Sprintf("%s@%v", name, p.Now()))
				if p.ID()%2 == 0 {
					sig.Wait(p, "pair up")
				} else {
					sig.Fire()
				}
			})
		}
		k.Spawn("sweeper", func(p *Proc) {
			p.Sleep(100 * Microsecond)
			for sig.Fire() {
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := trace(), trace()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("nondeterministic runs:\n%v\n%v", a, b)
	}
}

func TestTransferTime(t *testing.T) {
	cases := []struct {
		n    int64
		rate float64
		want Duration
	}{
		{0, 1e9, 0},
		{-5, 1e9, 0},
		{1000, 1e9, Microsecond}, // 1000 B at 1 GB/s = 1us
		{1, 12.5e9, 1},           // sub-ns clamps to 1ns
		{1 << 20, 12.5e9, 83886}, // 1MiB at 100Gbps
	}
	for _, c := range cases {
		if got := TransferTime(c.n, c.rate); got != c.want {
			t.Errorf("TransferTime(%d,%g) = %v, want %v", c.n, c.rate, got, c.want)
		}
	}
	if d := TransferTime(100, 0); d < Duration(1<<60) {
		t.Errorf("zero rate should stall, got %v", d)
	}
}

func TestDurationHelpers(t *testing.T) {
	if DurationOfSeconds(-1) != 0 {
		t.Error("negative seconds should clamp to 0")
	}
	if DurationOfSeconds(1e-9) != 1 {
		t.Error("1ns round trip failed")
	}
	d := 1500 * Nanosecond
	if d.Micros() != 1.5 {
		t.Errorf("Micros = %v, want 1.5", d.Micros())
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Error("Seconds conversion wrong")
	}
	t0 := Time(1000)
	if t0.Add(500).Sub(t0) != 500 {
		t.Error("Add/Sub roundtrip failed")
	}
}

func TestManyProcsStress(t *testing.T) {
	// 2000 procs ping-ponging through a queue should finish and stay
	// deterministic.
	k := NewKernel()
	q := NewQueue[int]("ring")
	const n = 2000
	var sum int
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Duration(i) * Nanosecond)
			q.Send(i)
		})
	}
	k.Spawn("collector", func(p *Proc) {
		for i := 0; i < n; i++ {
			sum += q.Recv(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != n*(n-1)/2 {
		t.Fatalf("sum %d, want %d", sum, n*(n-1)/2)
	}
}
