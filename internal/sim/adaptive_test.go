package sim

import "testing"

// TestAdaptiveHorizonSkipsBarriers pins the point of per-kernel horizons:
// when only one kernel has pending work, it must run arbitrarily far
// without barriering once per lookahead. Node 0 sleeps 1000 steps of one
// lookahead each while every other node is idle; the fixed base+L
// protocol would pay ~1000 window rounds, the adaptive one a handful.
func TestAdaptiveHorizonSkipsBarriers(t *testing.T) {
	const (
		nodes     = 4
		steps     = 1000
		lookahead = Duration(100)
	)
	co := NewCoordinator(nodes, 2, lookahead)
	co.KernelFor(0).SpawnOn(0, "worker", func(p *Proc) {
		for i := 0; i < steps; i++ {
			p.Sleep(lookahead)
		}
	})
	if err := co.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := co.Now(), Time(0).Add(lookahead*steps); got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	if r := co.Rounds(); r > 10 {
		t.Errorf("adaptive run took %d window rounds; a lone active kernel should need a handful, not ~%d", r, steps)
	}
}

// TestAdaptiveHorizonCrossShardAfterRunahead exercises the dangerous case
// the route-time horizon shrink exists for: a kernel that has run far
// past every other kernel's clock emits a cross-shard event, and the
// reply chain must still land in its future. The arrival times must match
// the serial kernel exactly at every shard count.
func TestAdaptiveHorizonCrossShardAfterRunahead(t *testing.T) {
	const (
		nodes     = 4
		lookahead = Duration(100)
	)
	type rec struct {
		node int
		at   Time
	}
	run := func(shards int) []rec {
		co := NewCoordinator(nodes, shards, lookahead)
		var log []rec
		// Node 0 runs 500 lookaheads into the future on its own, then
		// pings node 3 (a different shard at shards>1); node 3 replies.
		co.KernelFor(0).SpawnOn(0, "runahead", func(p *Proc) {
			k := co.KernelFor(0)
			for i := 0; i < 500; i++ {
				p.Sleep(lookahead)
			}
			k.AfterOn(3, lookahead, func() {
				k3 := co.KernelFor(3)
				log = append(log, rec{3, k3.Now()})
				k3.AfterOn(0, lookahead, func() {
					log = append(log, rec{0, co.KernelFor(0).Now()})
				})
			})
		})
		if err := co.Run(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return log
	}
	want := run(1)
	if len(want) != 2 {
		t.Fatalf("serial run logged %d records, want 2", len(want))
	}
	for _, shards := range []int{2, 4} {
		got := run(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d records, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("shards=%d: record %d = %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}
}

// TestAdaptiveHorizonNetDrain checks the network kernel's widened phase:
// once every shard is idle, a chain of net-internal events (the shape of
// a flow engine draining completions) must finish without one barrier
// round per lookahead.
func TestAdaptiveHorizonNetDrain(t *testing.T) {
	const (
		nodes     = 4
		links     = 200
		lookahead = Duration(100)
	)
	co := NewCoordinator(nodes, 2, lookahead)
	net := co.NetKernel()
	var fired int
	var chain func(left int) func()
	chain = func(left int) func() {
		return func() {
			fired++
			if left > 0 {
				net.After(lookahead*3, chain(left-1))
			}
		}
	}
	co.KernelFor(0).SpawnOn(0, "kick", func(p *Proc) {
		co.KernelFor(0).AfterNet(0, chain(links))
	})
	if err := co.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != links+1 {
		t.Fatalf("fired %d net events, want %d", fired, links+1)
	}
	if r := co.Rounds(); r > 10 {
		t.Errorf("net-internal chain took %d rounds; the net phase should drain it in a handful, not ~%d", r, links)
	}
}
