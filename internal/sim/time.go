package sim

import "fmt"

// Time is an instant of virtual time, in integer nanoseconds since the
// start of the simulation. Virtual time has no relation to wall-clock
// time: it only advances when the kernel fires an event.
type Time int64

// Duration is a span of virtual time in integer nanoseconds.
type Duration int64

// Handy duration units, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from earlier to t.
func (t Time) Sub(earlier Time) Duration { return Duration(t - earlier) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros reports the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// DurationOfSeconds converts floating-point seconds to a Duration,
// rounding to the nearest nanosecond and never returning a negative
// value for a non-negative input.
func DurationOfSeconds(s float64) Duration {
	if s <= 0 {
		return 0
	}
	return Duration(s*1e9 + 0.5)
}

// TransferTime returns the time needed to move n bytes at rate bytes/sec.
// A non-positive rate yields the maximum representable duration, which the
// flow scheduler treats as "stalled".
func TransferTime(n int64, rate float64) Duration {
	if n <= 0 {
		return 0
	}
	if rate <= 0 {
		return Duration(1<<62 - 1)
	}
	d := DurationOfSeconds(float64(n) / rate)
	if d <= 0 {
		d = 1 // guarantee forward progress
	}
	return d
}

func (t Time) String() string     { return fmt.Sprintf("%.3fus", float64(t)/1e3) }
func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e3) }
