package sim

import "fmt"

// Signal is a broadcast/wakeup primitive for procs, analogous to a
// condition variable. Waiters are released in FIFO order, which keeps
// simulations deterministic.
type Signal struct {
	waiters []*Proc
}

// Wait parks the calling proc until Fire or FireAll releases it. why is
// included in deadlock reports.
func (s *Signal) Wait(p *Proc, why string) {
	s.waiters = append(s.waiters, p)
	p.park(why)
}

// Fire readies the oldest waiter, if any, and reports whether one was
// released. May be called from a running proc or an event callback.
func (s *Signal) Fire() bool {
	if len(s.waiters) == 0 {
		return false
	}
	p := s.waiters[0]
	copy(s.waiters, s.waiters[1:])
	s.waiters = s.waiters[:len(s.waiters)-1]
	p.k.readyProc(p)
	return true
}

// FireAll readies every waiter (FIFO order) and returns how many were
// released.
func (s *Signal) FireAll() int {
	n := len(s.waiters)
	for _, p := range s.waiters {
		p.k.readyProc(p)
	}
	s.waiters = s.waiters[:0]
	return n
}

// Pending returns the number of parked waiters.
func (s *Signal) Pending() int { return len(s.waiters) }

// Semaphore is a counted semaphore with FIFO handoff, used to model
// serialized resources (e.g. a NIC injector or a SHArP operation slot).
type Semaphore struct {
	name    string
	permits int
	queue   []*Proc
}

// NewSemaphore returns a semaphore with the given initial permit count.
func NewSemaphore(name string, permits int) *Semaphore {
	if permits < 0 {
		panic("sim: negative semaphore permits")
	}
	return &Semaphore{name: name, permits: permits}
}

// Acquire takes one permit, parking the proc until one is available.
// Handoff is FIFO: a released permit goes to the oldest waiter even if a
// later proc calls Acquire at the same instant.
func (s *Semaphore) Acquire(p *Proc) {
	if s.permits > 0 && len(s.queue) == 0 {
		s.permits--
		return
	}
	s.queue = append(s.queue, p)
	p.park(fmt.Sprintf("semaphore %q", s.name))
}

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	if s.permits > 0 && len(s.queue) == 0 {
		s.permits--
		return true
	}
	return false
}

// Release returns one permit, waking the oldest waiter if any. Safe to
// call from event callbacks.
func (s *Semaphore) Release() {
	if len(s.queue) > 0 {
		p := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		p.k.readyProc(p)
		return
	}
	s.permits++
}

// Queued returns the number of procs waiting for a permit.
func (s *Semaphore) Queued() int { return len(s.queue) }

// Queue is an unbounded FIFO mailbox carrying values of type T between
// procs. Send never blocks; Recv parks until a value is available.
type Queue[T any] struct {
	name  string
	items []T
	sig   Signal
}

// NewQueue returns an empty queue labeled name for deadlock reports.
func NewQueue[T any](name string) *Queue[T] {
	return &Queue[T]{name: name}
}

// Send enqueues v and wakes one receiver if any is parked. Callable from
// procs and event callbacks.
func (q *Queue[T]) Send(v T) {
	q.items = append(q.items, v)
	q.sig.Fire()
}

// Recv dequeues the oldest value, parking the proc while the queue is
// empty.
func (q *Queue[T]) Recv(p *Proc) T {
	for len(q.items) == 0 {
		q.sig.Wait(p, fmt.Sprintf("queue %q recv", q.name))
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return v
}

// TryRecv dequeues without blocking, reporting whether a value was
// available.
func (q *Queue[T]) TryRecv() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return v, true
}

// Len returns the number of queued values.
func (q *Queue[T]) Len() int { return len(q.items) }

// WaitGroup tracks completion of a known number of proc-side tasks in
// virtual time.
type WaitGroup struct {
	n   int
	sig Signal
}

// Add increases the outstanding-task count.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.sig.FireAll()
	}
}

// Done decrements the counter, waking waiters when it reaches zero.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait parks p until the counter is zero.
func (w *WaitGroup) Wait(p *Proc, why string) {
	for w.n > 0 {
		w.sig.Wait(p, why)
	}
}
