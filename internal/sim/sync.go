package sim

import (
	"fmt"
	"sort"
)

// Signal is a broadcast/wakeup primitive for procs, analogous to a
// condition variable. Waiters are released in FIFO order, which keeps
// simulations deterministic.
type Signal struct {
	waiters []*Proc
}

// Wait parks the calling proc until Fire or FireAll releases it. why is
// included in deadlock reports.
func (s *Signal) Wait(p *Proc, why string) {
	s.waiters = append(s.waiters, p)
	p.park(why)
}

// Fire readies the oldest waiter, if any, and reports whether one was
// released. May be called from a running proc or an event callback.
func (s *Signal) Fire() bool {
	if len(s.waiters) == 0 {
		return false
	}
	p := s.waiters[0]
	copy(s.waiters, s.waiters[1:])
	s.waiters = s.waiters[:len(s.waiters)-1]
	p.k.readyProc(p)
	return true
}

// FireAll readies every waiter (FIFO order) and returns how many were
// released.
func (s *Signal) FireAll() int {
	n := len(s.waiters)
	for _, p := range s.waiters {
		p.k.readyProc(p)
	}
	s.waiters = s.waiters[:0]
	return n
}

// Pending returns the number of parked waiters.
func (s *Signal) Pending() int { return len(s.waiters) }

// Semaphore is a counted semaphore with FIFO handoff, used to model
// serialized resources (e.g. a NIC injector or a SHArP operation slot).
type Semaphore struct {
	name    string
	permits int
	queue   []*Proc
}

// NewSemaphore returns a semaphore with the given initial permit count.
func NewSemaphore(name string, permits int) *Semaphore {
	if permits < 0 {
		panic("sim: negative semaphore permits")
	}
	return &Semaphore{name: name, permits: permits}
}

// Acquire takes one permit, parking the proc until one is available.
// Handoff is FIFO: a released permit goes to the oldest waiter even if a
// later proc calls Acquire at the same instant.
func (s *Semaphore) Acquire(p *Proc) {
	if s.permits > 0 && len(s.queue) == 0 {
		s.permits--
		return
	}
	s.queue = append(s.queue, p)
	p.park(fmt.Sprintf("semaphore %q", s.name))
}

// TryAcquire takes a permit without blocking, reporting success.
func (s *Semaphore) TryAcquire() bool {
	if s.permits > 0 && len(s.queue) == 0 {
		s.permits--
		return true
	}
	return false
}

// Release returns one permit, waking the oldest waiter if any. Safe to
// call from event callbacks.
func (s *Semaphore) Release() {
	if len(s.queue) > 0 {
		p := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		p.k.readyProc(p)
		return
	}
	s.permits++
}

// Queued returns the number of procs waiting for a permit.
func (s *Semaphore) Queued() int { return len(s.queue) }

// Queue is an unbounded FIFO mailbox carrying values of type T between
// procs. Send never blocks; Recv parks until a value is available.
type Queue[T any] struct {
	name  string
	items []T
	sig   Signal
}

// NewQueue returns an empty queue labeled name for deadlock reports.
func NewQueue[T any](name string) *Queue[T] {
	return &Queue[T]{name: name}
}

// Send enqueues v and wakes one receiver if any is parked. Callable from
// procs and event callbacks.
func (q *Queue[T]) Send(v T) {
	q.items = append(q.items, v)
	q.sig.Fire()
}

// Recv dequeues the oldest value, parking the proc while the queue is
// empty.
func (q *Queue[T]) Recv(p *Proc) T {
	for len(q.items) == 0 {
		q.sig.Wait(p, fmt.Sprintf("queue %q recv", q.name))
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return v
}

// TryRecv dequeues without blocking, reporting whether a value was
// available.
func (q *Queue[T]) TryRecv() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items[0] = zero
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return v, true
}

// Len returns the number of queued values.
func (q *Queue[T]) Len() int { return len(q.items) }

// WaitGroup tracks completion of a known number of proc-side tasks in
// virtual time.
type WaitGroup struct {
	n   int
	sig Signal
}

// Add increases the outstanding-task count.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.sig.FireAll()
	}
}

// Done decrements the counter, waking waiters when it reaches zero.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait parks p until the counter is zero.
func (w *WaitGroup) Wait(p *Proc, why string) {
	for w.n > 0 {
		w.sig.Wait(p, why)
	}
}

// Coordinator partitions one simulation's logical processes — one LP per
// node plus one for the shared network — across shard kernels and runs
// them in parallel under a conservative time-window protocol. With
// shards=1 it degenerates to a single kernel running the classic serial
// loop; with shards>1 each shard kernel runs its window on its own
// goroutine. Either way the simulation's behavior is bit-identical: event
// keys are (at, origin LP, per-LP counter) in both modes, LP state is
// disjoint, and no callback may touch another LP's state, so pop order —
// and therefore every simulated outcome — does not depend on the shard
// count.
//
// The synchronization scheme is the textbook conservative one: no shard
// may execute past the earliest instant at which another shard could
// still send it work. Cross-shard events (other than into the network LP)
// must fire at least `lookahead` after their creation — in this codebase
// the inter-node wire latency, which every cross-node interaction pays —
// so all kernels can safely run windows before exchanging outboxes at a
// barrier. The network LP runs single-threaded between shard phases:
// zero-delay injection into it is always legal because its window fires
// after every shard's.
//
// Window horizons are adaptive, per kernel. Kernel j's window opens at
// horizon h_j = min over the other kernels' earliest pending instant t_i,
// plus the lookahead: nothing another kernel does this window can land in
// j below that. When j itself emits a cross-kernel event mid-window, its
// horizon shrinks to the earliest instant a reaction to that event could
// reach back (route): the event's time plus the lookahead for shard
// kernels, the event's time itself for the network kernel, whose
// recipients may inject back with zero delay. A kernel whose peers are
// all idle therefore runs arbitrarily far between barriers — the fixed
// base+L horizon barriered ~once per wire latency even when every event
// was shard-local — while dense cross-shard phases degrade to exactly
// the fixed-window behavior. The executed prefix of each LP's event
// sequence is horizon-independent (keys are assigned at creation), so
// results stay bit-identical; only the barrier count changes.
type Coordinator struct {
	nodes     int
	shards    int
	lookahead Duration
	sharded   bool

	kernels []*Kernel // shard kernels; single mode: exactly one, == netK
	netK    *Kernel
	shardOf []int32 // node LP -> shard index (sharded mode only)

	// watchdogAt and diag mirror Kernel.SetWatchdog/SetDiagnostic at the
	// coordinator level for sharded runs (the verdict is reached at a
	// window barrier, where only the coordinator has the global view).
	watchdogAt Time
	diag       func() string

	winStart []chan Time // per-shard window-open signal (carries horizon)
	winDone  chan int    // shard -> coordinator window-exhausted signal

	tbuf   []Time // per-round scratch: each kernel's earliest pending instant
	rounds uint64 // window barriers executed (see Rounds)

	started bool
}

// NewCoordinator builds the kernels for a simulation with the given
// number of node LPs, split across shards. lookahead is the conservative
// bound on cross-node latency (the inter-node wire latency): a
// non-positive lookahead admits no safe window, so shards is forced to 1.
// shards is clamped to [1, nodes].
func NewCoordinator(nodes, shards int, lookahead Duration) *Coordinator {
	if nodes < 1 {
		nodes = 1
	}
	if shards < 1 || lookahead <= 0 {
		shards = 1
	}
	if shards > nodes {
		shards = nodes
	}
	c := &Coordinator{nodes: nodes, shards: shards, lookahead: lookahead, watchdogAt: maxTime}
	netLP := nodes
	if shards == 1 {
		// Single-kernel mode: one kernel owns every node LP and the
		// network LP, and runs the classic serial loop. The lookahead is
		// still recorded so that code paths parameterized by it (and the
		// cross-LP timing assertion) behave identically to sharded runs.
		k := newKernel(0, nodes+1, netLP)
		k.lookahead = lookahead
		c.kernels = []*Kernel{k}
		c.netK = k
		return c
	}
	c.sharded = true
	c.shardOf = make([]int32, nodes)
	c.winStart = make([]chan Time, shards)
	c.winDone = make(chan int, shards)
	c.kernels = make([]*Kernel, shards)
	for i := 0; i < shards; i++ {
		base := i * nodes / shards
		end := (i + 1) * nodes / shards
		k := newKernel(base, end-base, netLP)
		k.lookahead = lookahead
		k.coord = c
		k.kidx = i
		k.windowed = true
		k.winDone = c.winDone
		k.outbox = make([][]outEvent, shards+1)
		c.kernels[i] = k
		c.winStart[i] = make(chan Time, 1)
		for n := base; n < end; n++ {
			c.shardOf[n] = int32(i)
		}
	}
	c.netK = newKernel(netLP, 1, netLP)
	c.netK.lookahead = lookahead
	c.netK.coord = c
	c.netK.kidx = shards
	c.netK.outbox = make([][]outEvent, shards+1)
	c.tbuf = make([]Time, shards+1)
	return c
}

// Nodes returns the number of node LPs.
func (c *Coordinator) Nodes() int { return c.nodes }

// Shards returns the effective shard count (after clamping).
func (c *Coordinator) Shards() int { return c.shards }

// Lookahead returns the conservative cross-node latency bound.
func (c *Coordinator) Lookahead() Duration { return c.lookahead }

// KernelFor returns the kernel owning the given node LP.
func (c *Coordinator) KernelFor(node int) *Kernel {
	if !c.sharded {
		return c.kernels[0]
	}
	return c.kernels[c.shardOf[node]]
}

// NetKernel returns the kernel owning the shared network LP (the single
// kernel itself when not sharded).
func (c *Coordinator) NetKernel() *Kernel { return c.netK }

// ownerIdx maps an LP to its owner's index in the drain order: shard
// index for node LPs, shards for the network LP.
func (c *Coordinator) ownerIdx(lp int32) int {
	if lp == int32(c.nodes) {
		return c.shards
	}
	return int(c.shardOf[lp])
}

// route buffers a cross-kernel event into the source kernel's
// per-destination outbox. The event's key was already assigned by the
// source LP, so drain order cannot affect where it sorts.
//
// Routing also shrinks the source's own horizon: once src has emitted an
// event at o.at, a chain of reactions to it can reach back into src as
// early as o.at + lookahead (the recipient acts at o.at; anything it aims
// back at src pays the wire). The network kernel's recipients may inject
// back into it with zero delay, so its bound is o.at itself. Shrinking at
// emission time is what makes the adaptively widened horizons of Run
// safe: the static per-window horizon only accounts for events that
// existed at the barrier, not for consequences of this window's own
// sends.
func (c *Coordinator) route(src *Kernel, o outEvent) {
	i := c.ownerIdx(o.exec)
	src.outbox[i] = append(src.outbox[i], o)
	bound := o.at
	if src != c.netK {
		bound = o.at.Add(c.lookahead)
		if bound < o.at {
			bound = maxTime // overflow guard
		}
	}
	if bound < src.horizon {
		src.horizon = bound
	}
}

// drain merges a kernel's buffered cross-shard events into their
// destination heaps. Called only at window barriers, when no shard is
// executing.
func (c *Coordinator) drain(k *Kernel) {
	for idx, list := range k.outbox {
		if len(list) == 0 {
			continue
		}
		dst := c.netK
		if idx < c.shards {
			dst = c.kernels[idx]
		}
		for i := range list {
			dst.inject(list[i])
			list[i].fn = nil
		}
		k.outbox[idx] = list[:0]
	}
}

// SetWatchdog arms a virtual-time deadline for the whole simulation (see
// Kernel.SetWatchdog). Must be called before Run.
func (c *Coordinator) SetWatchdog(d Duration) {
	if c.started {
		panic("sim: SetWatchdog after Run")
	}
	if !c.sharded {
		c.kernels[0].SetWatchdog(d)
		return
	}
	if d <= 0 {
		return
	}
	c.watchdogAt = Time(0).Add(d)
}

// SetDiagnostic installs a workload-level dump appended to deadlock and
// watchdog reports (see Kernel.SetDiagnostic).
func (c *Coordinator) SetDiagnostic(fn func() string) {
	if !c.sharded {
		c.kernels[0].SetDiagnostic(fn)
		return
	}
	c.diag = fn
}

// Now returns the simulation's current virtual time: the furthest any
// kernel has advanced. After Run returns it is the instant the last
// event fired, matching the serial kernel's clock.
func (c *Coordinator) Now() Time {
	t := c.netK.now
	for _, k := range c.kernels {
		if k.now > t {
			t = k.now
		}
	}
	return t
}

// Stats returns scheduler counters aggregated across all kernels. Events
// is identical for every shard count of the same simulation;
// ContextSwitch and HeapHighWater depend on the partitioning (but are
// deterministic for a fixed shard count).
func (c *Coordinator) Stats() KernelStats {
	var s KernelStats
	for _, k := range c.kernels {
		s.add(k.Stats)
	}
	if c.sharded {
		s.add(c.netK.Stats)
	}
	return s
}

// NumProcs returns the number of spawned procs across all kernels.
func (c *Coordinator) NumProcs() int {
	n := 0
	for _, k := range c.kernels {
		n += len(k.procs)
	}
	return n
}

// Run drives the simulation to completion and returns what Kernel.Run
// would: nil, *DeadlockError, *WatchdogError, or *PanicError. In sharded
// mode it executes the window protocol: give every shard kernel its own
// horizon (the earliest pending instant of any *other* kernel plus the
// lookahead, capped at the watchdog deadline — see the type comment for
// why that is safe), let the shards run their events and procs below it
// in parallel, exchange cross-shard events at the barrier, run the
// network LP's window inline up to the earliest instant any shard could
// still inject, repeat.
func (c *Coordinator) Run() error {
	if c.started {
		panic("sim: Coordinator.Run called twice")
	}
	c.started = true
	if !c.sharded {
		return c.kernels[0].Run()
	}
	for _, k := range c.kernels {
		k.started = true
	}
	c.netK.started = true
	for i := range c.kernels {
		k, ch := c.kernels[i], c.winStart[i]
		go func() {
			for h := range ch {
				k.horizon = h
				k.schedule(nil)
			}
		}()
	}
	defer func() {
		for _, ch := range c.winStart {
			close(ch)
		}
	}()
	for {
		// Per-kernel earliest pending instant: the earliest live event, or
		// the clock of a kernel that still has ready procs (only possible
		// before the first window; windows end with empty ready queues).
		// The window base — the earliest instant anything can happen
		// anywhere — drives termination and the watchdog exactly as in the
		// fixed-horizon protocol.
		ts := c.tbuf
		alive := 0
		for i, k := range c.kernels {
			t := maxTime
			if at, ok := k.nextLiveAt(); ok {
				t = at
			}
			if k.ready.len() > 0 && k.now < t {
				t = k.now
			}
			ts[i] = t
			alive += k.alive
		}
		ts[c.shards] = maxTime
		if at, ok := c.netK.nextLiveAt(); ok {
			ts[c.shards] = at
		}
		// min1/min2: smallest and second-smallest pending instants, so
		// each kernel's "earliest other" is min1 — or min2 for the unique
		// holder of min1.
		min1, min2 := maxTime, maxTime
		cnt1 := 0
		for _, t := range ts {
			switch {
			case t < min1:
				min2, min1, cnt1 = min1, t, 1
			case t == min1:
				cnt1++
			case t < min2:
				min2 = t
			}
		}
		base := min1
		if base == maxTime {
			switch {
			case alive == 0:
				return nil // clean completion
			case c.watchdogAt < maxTime:
				return c.fail(c.watchdogErr("none"))
			default:
				return c.fail(c.deadlockErr())
			}
		}
		if base >= c.watchdogAt {
			if alive > 0 {
				return c.fail(c.watchdogErr(fmt.Sprintf("t=%v", base)))
			}
			c.watchdogAt = maxTime // all procs finished; drain freely
		}
		c.rounds++
		// Phase 1: every shard runs its window in parallel, each up to its
		// own horizon (dynamically shrunk by route as it emits).
		for i, ch := range c.winStart {
			m := min1
			if ts[i] == min1 && cnt1 == 1 {
				m = min2
			}
			h := m.Add(c.lookahead)
			if h <= m {
				h = maxTime // overflow guard (m may be the maxTime sentinel)
			}
			if h > c.watchdogAt {
				h = c.watchdogAt
			}
			ch <- h
		}
		for range c.kernels {
			<-c.winDone
		}
		for _, k := range c.kernels {
			if k.failure != nil {
				return c.fail(k.failure)
			}
		}
		for _, k := range c.kernels {
			c.drain(k)
		}
		// Phase 2: the network LP's window, single-threaded. Runs after
		// the shard phase so zero-delay shard->net injection is legal. Its
		// horizon is the earliest instant any shard (with this barrier's
		// deliveries merged) could still act — and therefore still inject
		// into the network zero-delay; route shrinks it further if the
		// network itself emits, since its wire events wake nodes that may
		// inject back at their arrival instant.
		hn := maxTime
		for _, k := range c.kernels {
			if at, ok := k.nextLiveAt(); ok && at < hn {
				hn = at
			}
			if k.ready.len() > 0 && k.now < hn {
				hn = k.now
			}
		}
		if hn > c.watchdogAt {
			hn = c.watchdogAt
		}
		c.netK.horizon = hn
		c.netK.runWindow()
		c.drain(c.netK)
	}
}

// Rounds returns the number of window barriers a sharded run has
// executed — the adaptive-batching effectiveness metric (fixed horizons
// pay roughly one barrier per lookahead of simulated time; adaptive ones
// skip barriers whenever cross-shard traffic is sparse). Always 0 in
// single-kernel mode, which has no barriers.
func (c *Coordinator) Rounds() uint64 { return c.rounds }

// fail tears down every shard kernel's parked procs and returns err.
func (c *Coordinator) fail(err error) error {
	for _, k := range c.kernels {
		k.shutdown()
	}
	return err
}

// blockedAll merges every shard's blocked-proc dump, sorted for stable
// reports.
func (c *Coordinator) blockedAll() []string {
	var blocked []string
	for _, k := range c.kernels {
		blocked = append(blocked, k.blockedDump()...)
	}
	sort.Strings(blocked)
	return blocked
}

func (c *Coordinator) watchdogErr(next string) *WatchdogError {
	e := &WatchdogError{Deadline: c.watchdogAt, Blocked: c.blockedAll(), NextEvent: next}
	if c.diag != nil {
		e.Diag = c.diag()
	}
	return e
}

func (c *Coordinator) deadlockErr() *DeadlockError {
	e := &DeadlockError{At: c.Now(), Blocked: c.blockedAll()}
	if c.diag != nil {
		e.Diag = c.diag()
	}
	return e
}
