package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// The direct-handoff scheduler runs scheduling decisions inline in the
// parking proc and hands the token straight to the next proc. These tests
// pin down the tricky corners: unwinding when the failing/reporting proc
// itself holds the token, context-switch accounting, and the zero-handoff
// fast paths.

// TestPingPongHalvesContextSwitches is the headline accounting check: two
// procs exchanging n messages park once per receive, so the run makes
// 2n+2 scheduling decisions (two bootstrap dispatches plus 2n receive
// wakeups). The retired two-hop scheduler paid two goroutine switches per
// decision (proc -> kernel -> proc); direct handoff pays at most one, so
// Stats.ContextSwitch must come out at no more than half the event-driven
// handoff count.
func TestPingPongHalvesContextSwitches(t *testing.T) {
	const n = 1000
	k := NewKernel()
	ab := NewQueue[int]("a->b")
	ba := NewQueue[int]("b->a")
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < n; i++ {
			ab.Send(i)
			if got := ba.Recv(p); got != i {
				t.Errorf("a got %d, want %d", got, i)
			}
		}
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < n; i++ {
			if got := ab.Recv(p); got != i {
				t.Errorf("b got %d, want %d", got, i)
			}
			ba.Send(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	decisions := uint64(2*n + 2)
	eventDriven := 2 * decisions // what the two-hop scheduler would pay
	if k.Stats.ContextSwitch > eventDriven/2 {
		t.Fatalf("context switches = %d, want <= %d (half of %d event-driven handoffs)",
			k.Stats.ContextSwitch, eventDriven/2, eventDriven)
	}
	if k.Stats.ContextSwitch < decisions/2 {
		t.Fatalf("context switches = %d suspiciously low for %d decisions",
			k.Stats.ContextSwitch, decisions)
	}
}

// TestSleepFastPathZeroHandoffs: a solo proc's sleeps must advance the
// clock without scheduling events or switching goroutines, while a proc
// whose wakeup races an earlier event must take the slow path and see the
// event fire first.
func TestSleepFastPathZeroHandoffs(t *testing.T) {
	k := NewKernel()
	k.Spawn("solo", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats.ContextSwitch != 1 {
		t.Fatalf("switches = %d, want 1 (bootstrap only)", k.Stats.ContextSwitch)
	}
	if k.Now() != Time(100*Microsecond) {
		t.Fatalf("clock = %v, want 100us", k.Now())
	}
	if k.Stats.Events != 100 {
		t.Fatalf("events = %d, want 100 (fast-path sleeps still count)", k.Stats.Events)
	}
}

func TestSleepFastPathYieldsToEarlierEvent(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("p", func(p *Proc) {
		k.After(2*Microsecond, func() { order = append(order, "event@2") })
		p.Sleep(5 * Microsecond) // slow path: the 2us event precedes the wakeup
		order = append(order, fmt.Sprintf("wake@%v", p.Now()))
		p.Sleep(3 * Microsecond) // fast path: heap is empty again
		order = append(order, fmt.Sprintf("wake@%v", p.Now()))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "event@2,wake@5.000us,wake@8.000us"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

// TestSleepSameInstantEventOrdering: an event already scheduled at the
// exact wakeup instant has a smaller sequence number, so it must fire
// before the sleeper resumes — the fast path may not swallow it.
func TestSleepSameInstantEventOrdering(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("p", func(p *Proc) {
		k.After(4*Microsecond, func() { order = append(order, "event") })
		p.Sleep(4 * Microsecond)
		order = append(order, "sleeper")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "event,sleeper" {
		t.Fatalf("order = %q, want event before sleeper", got)
	}
}

// TestYieldFastPathEmptyQueue: yielding with nothing else ready is free —
// no switches beyond bootstrap, and execution order is unchanged.
func TestYieldFastPathEmptyQueue(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Yield()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats.ContextSwitch != 1 {
		t.Fatalf("switches = %d, want 1", k.Stats.ContextSwitch)
	}
}

// TestPanicMidRunWithReadyProcs: a proc panics while other procs are
// ready (not just parked); the ready-but-never-run ones must unwind too
// and the panic must surface. Under direct handoff the panicking proc's
// own exit path discovers the failure and hands the token to Run.
func TestPanicMidRunWithReadyProcs(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.Spawn("bomb", func(p *Proc) { panic("early") })
	for i := 0; i < 5; i++ {
		k.Spawn(fmt.Sprintf("never%d", i), func(p *Proc) { ran++ })
	}
	err := k.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want PanicError", err)
	}
	if pe.Proc != "bomb" {
		t.Fatalf("wrong proc: %+v", pe)
	}
	if ran != 0 {
		t.Fatalf("%d ready procs ran after the failure; old scheduler aborted before dispatching them", ran)
	}
}

// TestPanicInsideEventCallback: an event callback fires inline in
// whichever proc holds the token; a panic there is attributed to the
// token holder and still aborts the run cleanly.
func TestPanicInsideEventCallback(t *testing.T) {
	k := NewKernel()
	var sig Signal
	k.Spawn("bystander", func(p *Proc) { sig.Wait(p, "forever") })
	k.Spawn("scheduler-host", func(p *Proc) {
		k.After(Microsecond, func() { panic("callback boom") })
		p.Sleep(5 * Microsecond)
	})
	err := k.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want PanicError", err)
	}
	if pe.Proc != "scheduler-host" {
		t.Fatalf("panic attributed to %q, want the token holder", pe.Proc)
	}
}

// TestDeadlockReportedByTokenHolder: the last proc to park is the one
// that runs the scheduler, finds nothing runnable, and must report a
// deadlock that includes *itself*, then unwind cleanly even though it was
// holding the token when it found out.
func TestDeadlockReportedByTokenHolder(t *testing.T) {
	k := NewKernel()
	var sig Signal
	k.Spawn("first", func(p *Proc) { sig.Wait(p, "first reason") })
	k.Spawn("last", func(p *Proc) {
		p.Sleep(Microsecond) // guarantee it parks after "first"
		sig.Wait(p, "last reason")
	})
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 2 {
		t.Fatalf("blocked = %v, want both procs", dl.Blocked)
	}
	if !strings.Contains(err.Error(), "last reason") {
		t.Fatalf("report omits the detecting proc: %v", err)
	}
	if dl.At != Time(Microsecond) {
		t.Fatalf("deadlock at %v, want 1us", dl.At)
	}
}

// TestDeadlockDetectedByExitingProc: the run can also dead-end when a
// finishing proc's exit path finds only parked procs left; the survivors
// are reported and unwound.
func TestDeadlockDetectedByExitingProc(t *testing.T) {
	k := NewKernel()
	var sig Signal
	k.Spawn("stuck", func(p *Proc) { sig.Wait(p, "abandoned") })
	k.Spawn("quitter", func(p *Proc) { p.Sleep(Microsecond) })
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || !strings.Contains(dl.Blocked[0], "stuck") {
		t.Fatalf("blocked = %v, want only the parked proc", dl.Blocked)
	}
}

// TestShutdownUnwindsMixedStates: on abort the kernel must unwind parked
// procs, ready procs that have run before, and ready procs that have
// never run, without leaking goroutines (completion of Run proves the
// handshakes all happened).
func TestShutdownUnwindsMixedStates(t *testing.T) {
	// Spawn order matters: "parked" parks, "ran-then-ready" yields behind
	// "bomb" in the FIFO, so when bomb panics the kernel must unwind one
	// blocked proc, one ready proc that has run, and one ready proc that
	// never ran.
	k := NewKernel()
	var sig Signal
	k.Spawn("parked", func(p *Proc) { sig.Wait(p, "never fired") })
	k.Spawn("ran-then-ready", func(p *Proc) {
		p.Yield() // parks behind bomb in the ready queue
		t.Error("ran-then-ready resumed after failure")
	})
	k.Spawn("bomb", func(p *Proc) { panic("abort") })
	k.Spawn("never-ran", func(p *Proc) { t.Error("never-ran was dispatched") })
	err := k.Run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want PanicError", err)
	}
	if pe.Proc != "bomb" {
		t.Fatalf("panic attributed to %q, want bomb", pe.Proc)
	}
}

// TestSelfHandoffSkipsChannels: when a proc yields while being the only
// ready proc (after readying itself), it must resume inline. Regression
// guard for the self-handoff branch of schedule().
func TestSelfHandoffSkipsChannels(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int]("loop")
	k.Spawn("self", func(p *Proc) {
		for i := 0; i < 100; i++ {
			q.Send(i) // readies nobody; queue already has data for Recv
			if got := q.Recv(p); got != i {
				t.Errorf("got %d, want %d", got, i)
			}
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Stats.ContextSwitch != 1 {
		t.Fatalf("switches = %d, want 1 (all recvs hit data)", k.Stats.ContextSwitch)
	}
}

// TestHandoffSchedulingOrderMatchesFIFO re-pins the global ordering
// contract: spawn order, ready FIFO, and event seq tiebreaks must be
// exactly what the two-hop scheduler produced (the committed results/
// tables depend on it).
func TestHandoffSchedulingOrderMatchesFIFO(t *testing.T) {
	k := NewKernel()
	var got []string
	var sig Signal
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("w%d", i)
		k.Spawn(name, func(p *Proc) {
			got = append(got, name+":start")
			sig.Wait(p, "gate")
			got = append(got, name+":released")
		})
	}
	k.Spawn("driver", func(p *Proc) {
		p.Sleep(Microsecond)
		sig.FireAll()
		got = append(got, "driver:fired")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "w0:start w1:start w2:start w3:start driver:fired " +
		"w0:released w1:released w2:released w3:released"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("order:\n got %s\nwant %s", s, want)
	}
}
