package sim

import "testing"

// TestExploreZeroValueBitTransparent pins down that installing a
// zero-value Explore config (salt 0, no swaps) reproduces the canonical
// schedule exactly: the behavior digest — message logs, final clock,
// event count — matches the nil-explore run even though the Sleep fast
// path is disabled and every wakeup becomes a real event.
func TestExploreZeroValueBitTransparent(t *testing.T) {
	base, _, _ := shardScenarioDigest(t, 1, nil)
	got, sched, _ := shardScenarioDigest(t, 1, &Explore{})
	if got != base {
		t.Errorf("zero-value Explore changed behavior: %x vs %x", got, base)
	}
	if sched == 0 {
		t.Errorf("exploring run reported zero schedule digest")
	}
}

// TestExploreShardInvariance is the exploration analogue of
// TestShardCountInvariance: for a fixed salt, the perturbed schedule —
// behavior digest, schedule digest, and recorded tie pairs — must be
// identical at every shard count. This is the property the Sleep
// fast-path gate exists for.
func TestExploreShardInvariance(t *testing.T) {
	for _, salt := range []uint64{0, 1, 0x5eed} {
		x := func() *Explore { return &Explore{Salt: salt, RecordTies: true} }
		base, sched, ties := shardScenarioDigest(t, 1, x())
		for _, shards := range []int{2, 3, 4, 8, 16} {
			got, gs, gt := shardScenarioDigest(t, shards, x())
			if got != base {
				t.Errorf("salt=%#x shards=%d: behavior digest differs from serial", salt, shards)
			}
			if gs != sched {
				t.Errorf("salt=%#x shards=%d: schedule digest %#x != serial %#x", salt, shards, gs, sched)
			}
			if len(gt) != len(ties) {
				t.Fatalf("salt=%#x shards=%d: %d tie pairs != serial %d", salt, shards, len(gt), len(ties))
			}
			for i := range gt {
				if gt[i] != ties[i] {
					t.Fatalf("salt=%#x shards=%d: tie[%d] = %+v != serial %+v", salt, shards, i, gt[i], ties[i])
				}
			}
		}
	}
}

// TestExploreSaltsVarySchedule checks the perturbation actually
// explores: distinct salts must reach behaviorally distinct schedules
// (the scenario is built to collide timestamps), and the schedule
// digest must distinguish them.
func TestExploreSaltsVarySchedule(t *testing.T) {
	sums := make(map[[32]byte][]uint64)
	scheds := make(map[uint64]bool)
	for _, salt := range []uint64{0, 1, 2, 3} {
		sum, sched, _ := shardScenarioDigest(t, 1, &Explore{Salt: salt})
		sums[sum] = append(sums[sum], salt)
		scheds[sched] = true
	}
	if len(sums) < 2 {
		t.Errorf("4 salts reached only %d distinct behaviors", len(sums))
	}
	if len(scheds) != len(sums) {
		t.Errorf("%d distinct behaviors but %d distinct schedule digests", len(sums), len(scheds))
	}
	// Same salt twice: exploration is itself deterministic.
	a, sa, _ := shardScenarioDigest(t, 1, &Explore{Salt: 7})
	b, sb, _ := shardScenarioDigest(t, 1, &Explore{Salt: 7})
	if a != b || sa != sb {
		t.Errorf("same salt produced different schedules")
	}
}

// tieOrderScenario runs two same-instant events on one LP and reports
// the order they fired in, plus the run's tie pairs and digest.
func tieOrderScenario(t *testing.T, x *Explore) (order []int, sched uint64, ties []TiePair) {
	t.Helper()
	co := NewCoordinator(1, 1, 10)
	co.SetExplore(x)
	k := co.KernelFor(0)
	k.AtOn(0, 50, func() { order = append(order, 1) })
	k.AtOn(0, 50, func() { order = append(order, 2) })
	if err := co.Run(); err != nil {
		t.Fatal(err)
	}
	return order, co.ScheduleDigest(), co.TiePairs()
}

// TestExploreTieSwapInvertsPair drives the systematic explorer's core
// move end to end: record a same-LP same-instant tie from a canonical
// run, re-run with that pair as a TieSwap, and observe the two events
// fire in the opposite order with a different schedule digest.
func TestExploreTieSwapInvertsPair(t *testing.T) {
	order, sched, ties := tieOrderScenario(t, &Explore{RecordTies: true})
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("canonical order = %v, want [1 2]", order)
	}
	if len(ties) != 1 {
		t.Fatalf("recorded %d tie pairs, want 1: %+v", len(ties), ties)
	}
	swapped, sched2, _ := tieOrderScenario(t, &Explore{Swaps: []TieSwap{{At: ties[0].At, A: ties[0].A, B: ties[0].B}}})
	if len(swapped) != 2 || swapped[0] != 2 || swapped[1] != 1 {
		t.Fatalf("swapped order = %v, want [2 1]", swapped)
	}
	if sched2 == sched {
		t.Errorf("swap left schedule digest unchanged (%#x)", sched)
	}
	// Swapping a pair twice composes to the identity.
	s := ties[0]
	again, sched3, _ := tieOrderScenario(t, &Explore{Swaps: []TieSwap{{At: s.At, A: s.A, B: s.B}, {At: s.At, A: s.A, B: s.B}}})
	if len(again) != 2 || again[0] != 1 || again[1] != 2 {
		t.Fatalf("double swap order = %v, want [1 2]", again)
	}
	if sched3 != sched {
		t.Errorf("double swap digest %#x != canonical %#x", sched3, sched)
	}
}

// TestExploreSaltReachesBothOrders: over a handful of salts, a two-event
// tie must be observed in both orders — the salted bijection is not
// order-preserving.
func TestExploreSaltReachesBothOrders(t *testing.T) {
	seen := make(map[int]bool)
	for salt := uint64(0); salt < 8; salt++ {
		order, _, _ := tieOrderScenario(t, &Explore{Salt: salt})
		seen[order[0]] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("8 salts never inverted the tie: observed first-firers %v", seen)
	}
}
