package shmseg

import (
	"fmt"
	"testing"

	"dpml/internal/mpi"
	"dpml/internal/sim"
)

func TestRegionFullGatherPublishDrain(t *testing.T) {
	const ppn, leaders = 4, 2
	rg := NewRegion(ppn)
	k := sim.NewKernel()
	results := make([][]float64, ppn)
	for local := 0; local < ppn; local++ {
		local := local
		k.Spawn(fmt.Sprintf("p%d", local), func(p *sim.Proc) {
			// Phase 1: deposit one partition per leader.
			for j := 0; j < leaders; j++ {
				v := mpi.NewVector(mpi.Float64, 2)
				v.Fill(float64(10*local + j))
				rg.Put(0, leaders, j, local, v)
			}
			// Phase 2+3 (leaders only): reduce slots, publish sum.
			if local < leaders {
				slots := rg.GatherWait(p, 0, leaders, local, ppn)
				acc := slots[0].Clone()
				for i := 1; i < ppn; i++ {
					mpi.Sum.Apply(acc, slots[i])
				}
				rg.Publish(0, leaders, local, acc)
			}
			// Phase 4: read both results back.
			out := make([]float64, 0, 2*leaders)
			for j := 0; j < leaders; j++ {
				res := rg.ResultWait(p, 0, leaders, j)
				out = append(out, res.At(0), res.At(1))
			}
			results[local] = out
			rg.DoneCopy(0)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Leader j's sum over locals of (10*local + j): 60 + 4j.
	for local, out := range results {
		for j := 0; j < leaders; j++ {
			want := float64(60 + 4*j)
			if out[2*j] != want || out[2*j+1] != want {
				t.Fatalf("local %d leader %d: got %v, want %v", local, j, out[2*j], want)
			}
		}
	}
	if rg.PendingOps() != 0 {
		t.Fatalf("op state leaked: %d pending", rg.PendingOps())
	}
}

func TestRegionPartialGatherForSocketLeaders(t *testing.T) {
	// 4 local ranks, 2 socket leaders; each rank deposits only with its
	// socket's leader, which waits for exactly its 2 ranks.
	const ppn = 4
	rg := NewRegion(ppn)
	k := sim.NewKernel()
	socketOf := []int{0, 0, 1, 1}
	leaderOf := []int{0, 0, 1, 1} // leader index == socket
	var sums [2]float64
	for local := 0; local < ppn; local++ {
		local := local
		k.Spawn(fmt.Sprintf("p%d", local), func(p *sim.Proc) {
			v := mpi.NewVector(mpi.Float64, 1)
			v.Fill(float64(local + 1))
			rg.Put(7, 2, leaderOf[local], local, v)
			if local == 0 || local == 2 {
				lead := socketOf[local]
				slots := rg.GatherWait(p, 7, 2, lead, 2)
				var acc *mpi.Vector
				for _, s := range slots {
					if s == nil {
						continue
					}
					if acc == nil {
						acc = s.Clone()
					} else {
						mpi.Sum.Apply(acc, s)
					}
				}
				sums[lead] = acc.At(0)
				rg.Publish(7, 2, lead, acc)
			}
			rg.ResultWait(p, 7, 2, leaderOf[local])
			rg.DoneCopy(7)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sums[0] != 3 || sums[1] != 7 { // 1+2 and 3+4
		t.Fatalf("socket sums %v, want [3 7]", sums)
	}
	if rg.PendingOps() != 0 {
		t.Fatal("op state leaked")
	}
}

func TestRegionConcurrentOpsDoNotAlias(t *testing.T) {
	// Two back-to-back operations with different sequence numbers stay
	// separate even when their lifetimes overlap.
	rg := NewRegion(2)
	k := sim.NewKernel()
	var got [2][2]float64
	for local := 0; local < 2; local++ {
		local := local
		k.Spawn(fmt.Sprintf("p%d", local), func(p *sim.Proc) {
			for seq := uint64(0); seq < 2; seq++ {
				v := mpi.NewVector(mpi.Float64, 1)
				v.Fill(float64(100*(seq+1) + uint64(local)))
				rg.Put(seq, 1, 0, local, v)
				if local == 0 {
					slots := rg.GatherWait(p, seq, 1, 0, 2)
					acc := slots[0].Clone()
					mpi.Sum.Apply(acc, slots[1])
					rg.Publish(seq, 1, 0, acc)
				}
				res := rg.ResultWait(p, seq, 1, 0)
				got[local][seq] = res.At(0)
				rg.DoneCopy(seq)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for local := 0; local < 2; local++ {
		if got[local][0] != 201 || got[local][1] != 401 {
			t.Fatalf("local %d results %v, want [201 401]", local, got[local])
		}
	}
}

func TestRegionMisusePanics(t *testing.T) {
	rg := NewRegion(2)
	v := mpi.NewVector(mpi.Float64, 1)
	cases := []func(){
		func() { NewRegion(0) },
		func() { rg.Put(0, 1, 1, 0, v) },  // leader out of range
		func() { rg.Put(0, 1, 0, 2, v) },  // local rank out of range
		func() { rg.Put(0, 1, -1, 0, v) }, // negative leader
		func() {
			rg.Put(1, 1, 0, 0, v)
			rg.Put(1, 1, 0, 0, v) // double write
		},
		func() {
			rg.Put(2, 1, 0, 0, v)
			rg.Put(2, 2, 1, 0, v) // leader count disagreement
		},
		func() {
			rg.Publish(3, 1, 0, v)
			rg.Publish(3, 1, 0, v) // double publish
		},
		func() { rg.DoneCopy(99) }, // unknown op
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestGatherWaitWantValidation(t *testing.T) {
	rg := NewRegion(2)
	k := sim.NewKernel()
	k.Spawn("p", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("GatherWait(want=3) with ppn=2 did not panic")
			}
		}()
		rg.GatherWait(p, 0, 1, 0, 3)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
