// Package shmseg models the per-node shared-memory regions the DPML
// algorithm communicates through: each leader owns a segment with one
// slot per local rank (Phase 1 gathers partitions into the slots) and a
// result slot (Phase 3's reduced value, read back by every local rank in
// Phase 4).
//
// The region carries data and synchronization only; the *cost* of each
// copy is charged separately through the fabric's memory channel by the
// caller. Operations are identified by a sequence number that all local
// ranks advance in lockstep (one per collective call), so back-to-back
// collectives can overlap without aliasing.
package shmseg

import (
	"fmt"

	"dpml/internal/mpi"
	"dpml/internal/sim"
)

// Region is one node's shared-memory scratch space.
type Region struct {
	ppn int
	ops map[uint64]*opState
}

type opState struct {
	leaders int
	// slots[j][i] is local rank i's partition for leader j.
	slots   [][]*mpi.Vector
	filled  []int         // per leader, how many slots are written
	gather  []sim.Signal  // per leader, fired when its segment is full
	results []*mpi.Vector // per leader, the fully reduced partition
	ready   []sim.Signal  // per leader, fired when the result lands
	drained int           // ranks that finished copying out
}

// NewRegion builds the region for a node with ppn local ranks.
func NewRegion(ppn int) *Region {
	if ppn <= 0 {
		panic(fmt.Sprintf("shmseg: NewRegion(%d)", ppn))
	}
	return &Region{ppn: ppn, ops: make(map[uint64]*opState)}
}

// PPN returns the number of local ranks the region serves.
func (rg *Region) PPN() int { return rg.ppn }

// PendingOps returns the number of in-flight operations (useful for leak
// checks in tests).
func (rg *Region) PendingOps() int { return len(rg.ops) }

func (rg *Region) op(seq uint64, leaders int) *opState {
	st, ok := rg.ops[seq]
	if !ok {
		st = &opState{
			leaders: leaders,
			slots:   make([][]*mpi.Vector, leaders),
			filled:  make([]int, leaders),
			gather:  make([]sim.Signal, leaders),
			results: make([]*mpi.Vector, leaders),
			ready:   make([]sim.Signal, leaders),
		}
		for j := range st.slots {
			st.slots[j] = make([]*mpi.Vector, rg.ppn)
		}
		rg.ops[seq] = st
	}
	if st.leaders != leaders {
		panic(fmt.Sprintf("shmseg: op %d leader count disagreement: %d vs %d", seq, st.leaders, leaders))
	}
	return st
}

// Put deposits local rank localRank's partition for leader into operation
// seq. The vector is stored by reference: callers pass a snapshot that is
// now "in shared memory". The copy cost must already have been charged.
func (rg *Region) Put(seq uint64, leaders, leader, localRank int, part *mpi.Vector) {
	if leader < 0 || leader >= leaders {
		panic(fmt.Sprintf("shmseg: Put leader %d of %d", leader, leaders))
	}
	if localRank < 0 || localRank >= rg.ppn {
		panic(fmt.Sprintf("shmseg: Put local rank %d of %d", localRank, rg.ppn))
	}
	st := rg.op(seq, leaders)
	if st.slots[leader][localRank] != nil {
		panic(fmt.Sprintf("shmseg: op %d slot (%d,%d) written twice", seq, leader, localRank))
	}
	st.slots[leader][localRank] = part
	st.filled[leader]++
	st.gather[leader].FireAll()
}

// GatherWait parks the leader's proc until want slots of its segment are
// written, then returns the slot array in local-rank order (entries of
// ranks that did not contribute are nil). DPML leaders wait for all ppn
// local ranks; socket leaders wait only for the ranks of their socket.
func (rg *Region) GatherWait(p *sim.Proc, seq uint64, leaders, leader, want int) []*mpi.Vector {
	if want <= 0 || want > rg.ppn {
		panic(fmt.Sprintf("shmseg: GatherWait want %d of %d", want, rg.ppn))
	}
	st := rg.op(seq, leaders)
	for st.filled[leader] < want {
		st.gather[leader].Wait(p, fmt.Sprintf("shm gather op=%d leader=%d", seq, leader))
	}
	return st.slots[leader]
}

// Publish stores leader's fully reduced partition and wakes the local
// ranks waiting to copy it out.
func (rg *Region) Publish(seq uint64, leaders, leader int, result *mpi.Vector) {
	st := rg.op(seq, leaders)
	if st.results[leader] != nil {
		panic(fmt.Sprintf("shmseg: op %d leader %d published twice", seq, leader))
	}
	st.results[leader] = result
	st.ready[leader].FireAll()
}

// ResultWait parks the proc until leader's result is published and
// returns it. The caller charges its own copy-out cost.
func (rg *Region) ResultWait(p *sim.Proc, seq uint64, leaders, leader int) *mpi.Vector {
	st := rg.op(seq, leaders)
	for st.results[leader] == nil {
		st.ready[leader].Wait(p, fmt.Sprintf("shm result op=%d leader=%d", seq, leader))
	}
	return st.results[leader]
}

// DoneCopy signals that one local rank has copied every result out of
// operation seq; the last call releases the operation's storage.
func (rg *Region) DoneCopy(seq uint64) {
	st, ok := rg.ops[seq]
	if !ok {
		panic(fmt.Sprintf("shmseg: DoneCopy on unknown op %d", seq))
	}
	st.drained++
	if st.drained == rg.ppn {
		delete(rg.ops, seq)
	}
}
