package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MaprangeAnalyzer guards the determinism of everything the tools emit:
// Go randomizes map iteration order, so a range over a map may not feed
// an order-sensitive sink — writing to an io.Writer (fmt.Fprint*,
// Write* methods), inserting into the insertion-ordered metrics
// registry, or appending to a slice the function returns — unless the
// collected slice is sorted before it escapes. Aggregations that are
// order-insensitive (integer sums, min/max) pass untouched.
var MaprangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc:  "map iteration feeding emitted output (Fprint*/Write*/metrics.Set/returned slices) must be sorted first",
	Run:  runMaprange,
}

func runMaprange(p *Pass) {
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMaprangeFunc(p, fd)
		}
	}
}

func checkMaprangeFunc(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	returned := returnedObjects(info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapLoop(p, fd, rng, returned)
		return true
	})
}

// checkMapLoop looks for order-sensitive sinks inside one map-range body.
func checkMapLoop(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, returned map[types.Object]bool) {
	info := p.Pkg.Info
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Sink 1: direct prints and writes.
		if fn := calleeFunc(info, call); fn != nil {
			if pk := fn.Pkg(); pk != nil && pk.Path() == "fmt" &&
				(fn.Name() == "Fprint" || fn.Name() == "Fprintf" || fn.Name() == "Fprintln" ||
					fn.Name() == "Print" || fn.Name() == "Printf" || fn.Name() == "Println") {
				p.Reportf(call.Pos(), "fmt.%s inside map iteration emits in map order; iterate over sorted keys", fn.Name())
				return true
			}
			if sig, okSig := fn.Type().(*types.Signature); okSig && sig.Recv() != nil {
				name := fn.Name()
				if len(name) >= 5 && name[:5] == "Write" {
					p.Reportf(call.Pos(), "%s inside map iteration writes in map order; iterate over sorted keys", name)
					return true
				}
				// Sink 2: the insertion-ordered metrics registry.
				if (name == "Set" || name == "Add") && recvIsMetricsRegistry(sig) {
					p.Reportf(call.Pos(), "metrics.Registry.%s inside map iteration fixes registry order by map order; iterate over sorted keys", name)
					return true
				}
			}
		}
		// Sink 3: append to a slice the function returns, unless it is
		// sorted after the loop and before it escapes.
		if id, okID := ast.Unparen(call.Fun).(*ast.Ident); okID && id.Name == "append" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin || len(call.Args) == 0 {
				return true
			}
			target, okT := ast.Unparen(call.Args[0]).(*ast.Ident)
			if !okT {
				return true
			}
			obj := objOf(info, target)
			if obj == nil || !returned[obj] {
				return true
			}
			if !sortedAfter(info, fd, rng, obj) {
				p.Reportf(call.Pos(), "append to returned slice %q inside map iteration leaks map order; sort it before returning or iterate over sorted keys", target.Name)
			}
		}
		return true
	})
}

// recvIsMetricsRegistry reports whether a method's receiver is the
// dpml/internal/metrics Registry.
func recvIsMetricsRegistry(sig *types.Signature) bool {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == "dpml/internal/metrics"
}

// returnedObjects collects the objects a function's return statements
// mention, plus its named results — the values whose order a caller can
// observe.
func returnedObjects(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fd.Type.Results != nil {
		for _, fld := range fd.Type.Results.List {
			for _, name := range fld.Names {
				if o := info.Defs[name]; o != nil {
					out[o] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, okID := ast.Unparen(res).(*ast.Ident); okID {
				if o := objOf(info, id); o != nil {
					out[o] = true
				}
			}
		}
		return true
	})
	return out
}

// sortedAfter reports whether obj is passed to a sort.*/slices.Sort*
// call positioned after the range statement — the "collect keys, sort,
// then emit" idiom.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg, name := fn.Pkg().Path(), fn.Name()
		isSort := (pkg == "sort" && (name == "Sort" || name == "Stable" || name == "Slice" ||
			name == "SliceStable" || name == "Ints" || name == "Strings" || name == "Float64s")) ||
			(pkg == "slices" && token.IsIdentifier(name) && len(name) >= 4 && name[:4] == "Sort")
		if !isSort || len(call.Args) == 0 {
			return true
		}
		if id, okID := ast.Unparen(call.Args[0]).(*ast.Ident); okID && objOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
