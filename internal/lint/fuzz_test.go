package lint

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzAllowDirective drives arbitrary comment text through the
// //dpml:allow parser. The parser must never panic; when it rejects a
// text the text must genuinely not be an allow directive (wrong prefix,
// or a longer //dpml:allowXyz marker); when it accepts, the parsed
// fields must come from the text, carry no surrounding whitespace, and
// a well-formed directive rebuilt from them must re-parse to the same
// fields.
func FuzzAllowDirective(f *testing.F) {
	f.Add("//dpml:allow walltime -- replay harness timestamps its log")
	f.Add("//dpml:allow lpown -- fixture: prove suppression works")
	f.Add("//dpml:allow")
	f.Add("//dpml:allow ")
	f.Add("//dpml:allow floateq")
	f.Add("//dpml:allow floateq --")
	f.Add("//dpml:allow floateq -- ")
	f.Add("//dpml:allowance denied")
	f.Add("//dpml:owner node")
	f.Add("// dpml:allow walltime -- leading space")
	f.Add("//dpml:allow\tglobalrand\t--\ttabs everywhere")
	f.Add("//dpml:allow maprange -- reason with -- a second dash pair")
	f.Add("/*dpml:allow walltime -- block*/")
	f.Add("")
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := parseAllowDirective(text)
		if !ok {
			if d != (allowDirective{}) {
				t.Fatalf("rejected %q but returned fields %+v", text, d)
			}
			rest, found := strings.CutPrefix(text, suppressPrefix)
			if found && (rest == "" || rest[0] == ' ' || rest[0] == '\t') &&
				!strings.ContainsAny(rest, "\n\r") {
				t.Fatalf("rejected well-prefixed directive %q", text)
			}
			return
		}
		if !strings.HasPrefix(text, suppressPrefix) {
			t.Fatalf("accepted %q without the %s prefix", text, suppressPrefix)
		}
		for name, v := range map[string]string{"analyzer": d.Analyzer, "reason": d.Reason} {
			if v != strings.TrimSpace(v) {
				t.Fatalf("%s of %q has surrounding whitespace: %q", name, text, v)
			}
			if strings.ContainsAny(v, "\n\r") {
				t.Fatalf("%s of %q spans lines: %q", name, text, v)
			}
		}
		if d.Analyzer != "" && !strings.Contains(text, d.Analyzer) {
			t.Fatalf("analyzer %q of %q not present in the text", d.Analyzer, text)
		}
		if d.Analyzer == "" || d.Reason == "" {
			return // malformed directive: the caller reports it
		}
		if strings.IndexFunc(d.Analyzer, unicode.IsSpace) >= 0 {
			t.Fatalf("analyzer %q of %q contains whitespace", d.Analyzer, text)
		}
		rebuilt := suppressPrefix + " " + d.Analyzer + " -- " + d.Reason
		back, okBack := parseAllowDirective(rebuilt)
		if !okBack || back.Analyzer != d.Analyzer || back.Reason != d.Reason {
			t.Fatalf("rebuilt %q from %q does not round-trip: %+v ok=%v", rebuilt, text, back, okBack)
		}
	})
}
