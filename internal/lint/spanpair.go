package lint

import (
	"go/ast"
	"go/types"
)

// SpanpairAnalyzer enforces the PR 4 tiling invariant's structural
// precondition: every trace.BeginCollective/BeginSpan must be End-ed on
// every path through the function, either by a dominating End call or by
// a defer. A leaked span corrupts the per-rank phase stack — later leaf
// events get stamped with a phase that never closed, and the
// "per-rank Σ phase == Σ collective" property test can no longer hold.
//
// The analysis is a lightweight statement-level path walk: from each
// Begin, every path to the function's exit (or to a reassignment of the
// span variable) must pass an End. Spans that escape — passed to another
// function, stored, returned, or captured by a non-End closure — are
// assumed tracked by their new owner. An End inside a function-literal
// call argument also discharges the obligation: that is the sharded
// kernel's handoff pattern, where a span begun on one shard is End-ed by
// an event callback firing in another LP's context.
var SpanpairAnalyzer = &Analyzer{
	Name: "spanpair",
	Doc:  "every trace.BeginCollective/BeginSpan must be End-ed (or deferred) on all paths",
	Run:  runSpanpair,
}

func runSpanpair(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					spanpairBody(p, fn.Body)
				}
			case *ast.FuncLit:
				spanpairBody(p, fn.Body)
			}
			return true
		})
	}
}

// isBeginCall reports whether call is trace.(*Recorder).BeginSpan or
// BeginCollective.
func isBeginCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "dpml/internal/trace" {
		return false
	}
	return fn.Name() == "BeginSpan" || fn.Name() == "BeginCollective"
}

// spanpairBody finds Begin obligations directly inside body (nested
// function literals are their own scopes and analyzed separately).
func spanpairBody(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isBeginCall(info, call) {
				p.Reportf(call.Pos(), "span discarded: the result of %s must be End-ed", beginName(info, call))
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				break
			}
			for i, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBeginCall(info, call) {
					continue
				}
				id, okID := s.Lhs[i].(*ast.Ident)
				if !okID {
					continue // stored into a field or element: escapes
				}
				if id.Name == "_" {
					p.Reportf(call.Pos(), "span assigned to _ is never End-ed")
					continue
				}
				obj := objOf(info, id)
				if obj == nil {
					continue
				}
				if !endedOnAllPaths(info, body, s, obj) {
					p.Reportf(call.Pos(), "span %q from %s is not End-ed on every path (add a dominating End or a defer)",
						id.Name, beginName(info, call))
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

func beginName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.Name()
	}
	return "Begin"
}

// path statuses for the statement walk.
const (
	stFall    = iota // fell off the statement list, obligation still open
	stEnded          // End reached (or the span escaped) on all paths here
	stMissing        // some path exits the function without End
)

// endedOnAllPaths checks the statements after the Begin assignment.
// The chain from the function body to the assignment lets the scan fall
// through nested blocks outward, matching Go's sequential execution.
func endedOnAllPaths(info *types.Info, body *ast.BlockStmt, begin ast.Stmt, v types.Object) bool {
	chain := stmtChain(body, begin)
	if chain == nil {
		return true // not directly in this body (inside a nested literal)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		switch scanStmts(info, chain[i].list, chain[i].idx+1, v) {
		case stEnded:
			return true
		case stMissing:
			return false
		}
	}
	return false // fell off the function's end without an End
}

type chainFrame struct {
	list []ast.Stmt
	idx  int
}

// stmtChain locates target within body's nested statement lists (not
// crossing function-literal boundaries), outermost frame first.
func stmtChain(body *ast.BlockStmt, target ast.Stmt) []chainFrame {
	var find func(list []ast.Stmt) []chainFrame
	find = func(list []ast.Stmt) []chainFrame {
		for i, s := range list {
			if s == target {
				return []chainFrame{{list, i}}
			}
			if s.Pos() > target.Pos() || s.End() < target.Pos() {
				continue
			}
			for _, inner := range childStmtLists(s) {
				if sub := find(inner); sub != nil {
					return append([]chainFrame{{list, i}}, sub...)
				}
			}
		}
		return nil
	}
	return find(body.List)
}

// childStmtLists returns the statement lists nested one level inside s,
// never descending into function literals.
func childStmtLists(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := s.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			out = append(out, e.List)
		case *ast.IfStmt:
			out = append(out, childStmtLists(e)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, childStmtLists(s.Stmt)...)
	}
	return out
}

// scanStmts walks list[from:] sequentially, deciding the obligation's
// fate for the span object v.
func scanStmts(info *types.Info, list []ast.Stmt, from int, v types.Object) int {
	for i := from; i < len(list); i++ {
		switch st := scanStmt(info, list[i], v); st {
		case stEnded, stMissing:
			return st
		case stStop:
			return stFall // break/continue/goto: rest of the list is unreachable
		}
	}
	return stFall
}

// stStop is an internal status: control left this statement list
// sideways (break/continue/goto), so scanning it further is meaningless.
const stStop = 3

func scanStmt(info *types.Info, s ast.Stmt, v types.Object) int {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if isEndCall(info, call, v) {
				return stEnded
			}
			if isPanic(info, call) {
				return stEnded // path diverges
			}
			if closureEnds(info, call, v) {
				return stEnded // an event callback carries the End
			}
		}
	case *ast.DeferStmt:
		if deferEnds(info, s.Call, v) {
			return stEnded
		}
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && objOf(info, id) == v {
				return stMissing // reassigned before End: the old span leaks
			}
		}
	case *ast.ReturnStmt:
		if valueUse(info, s, v) {
			return stEnded // span escapes to the caller
		}
		return stMissing
	case *ast.IfStmt:
		b := scanStmts(info, s.Body.List, 0, v)
		e := stFall
		switch el := s.Else.(type) {
		case *ast.BlockStmt:
			e = scanStmts(info, el.List, 0, v)
		case *ast.IfStmt:
			e = scanStmt(info, el, v)
		}
		if b == stMissing || e == stMissing {
			return stMissing
		}
		if b == stEnded && e == stEnded {
			return stEnded
		}
		return stFall
	case *ast.ForStmt:
		if inner := scanStmts(info, s.Body.List, 0, v); inner == stMissing {
			return stMissing
		}
		return stFall // a loop may run zero times: End inside it does not dominate
	case *ast.RangeStmt:
		if inner := scanStmts(info, s.Body.List, 0, v); inner == stMissing {
			return stMissing
		}
		return stFall
	case *ast.SwitchStmt:
		return scanCases(info, s.Body.List, v)
	case *ast.TypeSwitchStmt:
		return scanCases(info, s.Body.List, v)
	case *ast.SelectStmt:
		return scanCases(info, s.Body.List, v)
	case *ast.BlockStmt:
		return scanStmts(info, s.List, 0, v)
	case *ast.LabeledStmt:
		return scanStmt(info, s.Stmt, v)
	case *ast.BranchStmt:
		return stStop
	}
	// Any other value use of v (call argument, closure capture, store)
	// transfers responsibility; assume the new owner Ends it.
	if valueUse(info, s, v) {
		return stEnded
	}
	return stFall
}

// scanCases combines switch/select clause bodies: every clause must End
// (with a default present) for the switch to discharge the obligation;
// any clause that exits without End is a leak.
func scanCases(info *types.Info, clauses []ast.Stmt, v types.Object) int {
	hasDefault := false
	allEnded := len(clauses) > 0
	for _, c := range clauses {
		var bodyList []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			bodyList = cc.Body
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			bodyList = cc.Body
			if cc.Comm == nil {
				hasDefault = true
			}
		default:
			continue
		}
		switch scanStmts(info, bodyList, 0, v) {
		case stMissing:
			return stMissing
		case stEnded:
		default:
			allEnded = false
		}
	}
	if allEnded && hasDefault {
		return stEnded
	}
	return stFall
}

func isEndCall(info *types.Info, call *ast.CallExpr, v types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && objOf(info, id) == v
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// deferEnds reports whether a deferred call Ends v: either directly
// (defer v.End(t)) or through a literal (defer func() { v.End(...) }()).
func deferEnds(info *types.Info, call *ast.CallExpr, v types.Object) bool {
	if isEndCall(info, call, v) {
		return true
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isEndCall(info, c, v) {
			found = true
		}
		return !found
	})
	return found
}

// closureEnds reports whether a function-literal argument of call Ends
// v at any nesting depth. This is the sharded kernel's span-handoff
// pattern: a span begun in one LP's context is End-ed inside an event
// callback scheduled on another LP — under a sharded coordinator, on a
// different goroutine entirely (k.AfterOn(dst, d, func() { sp.End(t) })).
// The End runs when the event fires in the destination's context, so the
// obligation is discharged here: the event owns it from this point on.
func closureEnds(info *types.Info, call *ast.CallExpr, v types.Object) bool {
	found := false
	for _, arg := range call.Args {
		lit, ok := arg.(*ast.FuncLit)
		if !ok {
			continue
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && isEndCall(info, c, v) {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// valueUse reports whether v is used as a value inside n: any mention
// that is not the receiver of a method call / field access. Receiver
// uses (v.End, v.SetBytes) keep the obligation local; value uses hand
// the span to someone else.
func valueUse(info *types.Info, n ast.Node, v types.Object) bool {
	recv := map[*ast.Ident]bool{}
	ast.Inspect(n, func(c ast.Node) bool {
		if sel, ok := c.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				recv[id] = true
			}
		}
		return true
	})
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && !recv[id] && objOf(info, id) == v {
			found = true
		}
		return !found
	})
	return found
}
