package lint

import (
	"go/ast"
	"go/types"
)

// SendpathAnalyzer enforces the outbox discipline for cross-shard
// communication: code running under one LP class may not schedule
// events (Kernel.At/After/Reschedule) on a kernel owned by a different
// class, nor wake (Signal.Fire/FireAll) a signal owned by a different
// class. Crossing the shard boundary must go through the coordinator
// outboxes — AfterOn/AfterNet — which stamp the event with a
// lookahead-respecting timestamp and route it via the per-window
// exchange; direct pushes bypass the null-message protocol and are
// exactly the class of bug that breaks bit-identical replay at other
// (shards, netshards) combinations. Kernel and signal ownership comes
// from the //dpml:owner model (owner.go); receivers the model cannot
// resolve are left to the kernel's runtime cross-LP assertions.
var SendpathAnalyzer = &Analyzer{
	Name:      "sendpath",
	Doc:       "cross-LP communication goes through AfterOn/AfterNet outboxes, never direct scheduling or wakes on another class's kernel",
	RunModule: runSendpath,
}

func runSendpath(p *ModulePass) {
	o := p.ownership()
	for _, u := range o.units {
		if len(u.classes) == 0 || u.ctor {
			continue
		}
		if !p.TargetPkg(u.pkg) || !lpCheckedPkg(u.pkg.Path, "sendpath") || u.pkg.Path == "dpml/internal/sim" {
			continue
		}
		uu := u
		info := uu.pkg.Info
		classes := sortedClasses(uu)
		o.inspectUnit(uu, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			recv := recvOf(fn)
			if recv == nil {
				return true
			}
			tn := baseTypeName(recv.Type())
			sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !okSel {
				return true
			}
			switch {
			case isSimType(tn, "Kernel") && (fn.Name() == "At" || fn.Name() == "After" || fn.Name() == "Reschedule"):
				kc := o.kernelClass(uu.pkg, sel.X, 8)
				if kc != classNode && kc != classNet {
					return true
				}
				for _, c := range classes {
					if c == kc {
						continue
					}
					p.Reportf(call.Pos(), "Kernel.%s schedules directly on a %s-LP kernel from a %s-LP context: %s; route cross-LP events through AfterOn/AfterNet so the coordinator outbox carries them",
						fn.Name(), kc, c, o.chain(uu, c))
				}
			case isSimType(tn, "Signal") && (fn.Name() == "Fire" || fn.Name() == "FireAll"):
				fsel, okF := ast.Unparen(sel.X).(*ast.SelectorExpr)
				if !okF {
					return true
				}
				s := info.Selections[fsel]
				if s == nil || s.Kind() != types.FieldVal {
					return true
				}
				v, okV := s.Obj().(*types.Var)
				if !okV {
					return true
				}
				own := o.fieldClass[v]
				if own != classNode && own != classNet {
					return true
				}
				for _, c := range classes {
					if c == own {
						continue
					}
					p.Reportf(call.Pos(), "Signal.%s wakes the %s-owned signal %s.%s from a %s-LP context: %s; hand the wake through the coordinator outbox instead",
						fn.Name(), own, o.fieldOwner[v], v.Name(), c, o.chain(uu, c))
				}
			}
			return true
		})
	}
}
