package lint

import (
	"go/ast"
	"strings"
)

// WalltimeAnalyzer enforces virtual-time purity: the simulator's results
// are bit-reproducible only because nothing on the sim/fabric/mpi/core
// path can observe the host clock. Wall-clock reads are confined to the
// measurement harness (internal/bench), the job pool (internal/sweep,
// whose wall timeouts never feed back into virtual time), and the CLI
// drivers under cmd/.
var WalltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc:  "forbid wall-clock reads (time.Now/Since/Sleep/After/...) outside internal/bench, internal/sweep, and cmd",
	Run:  runWalltime,
}

// walltimeExempt lists import-path prefixes allowed to touch the host
// clock.
var walltimeExempt = []string{
	"dpml/internal/bench",
	"dpml/internal/sweep",
	"dpml/cmd/",
}

// walltimeBanned are the package time functions that observe or wait on
// the host clock. Pure constructors and conversions (time.Duration,
// time.Unix, ParseDuration) stay legal everywhere.
var walltimeBanned = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runWalltime(p *Pass) {
	for _, prefix := range walltimeExempt {
		if p.Pkg.Path == strings.TrimSuffix(prefix, "/") || strings.HasPrefix(p.Pkg.Path, prefix) {
			return
		}
	}
	p.inspect(func(n ast.Node) bool {
		sel, okSel := n.(*ast.SelectorExpr)
		if !okSel {
			return true
		}
		path, name, ok := pkgSelector(p.Pkg.Info, sel)
		if ok && path == "time" && walltimeBanned[name] {
			p.Reportf(n.Pos(), "time.%s reads the host clock; virtual-time packages must stay wall-clock-free (only internal/bench, internal/sweep, and cmd may)", name)
		}
		return true
	})
}
