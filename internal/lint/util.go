package lint

import (
	"go/ast"
	"go/types"
)

// pkgSelector reports whether expr is a selector on an imported package
// (like time.Now), returning the package path and selected name.
func pkgSelector(info *types.Info, expr ast.Expr) (path, name string, ok bool) {
	sel, okSel := expr.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// calleeFunc resolves a call's static callee to a *types.Func (package
// function or method), or nil for builtins, conversions, and indirect
// calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isFloat reports whether t's core type is a floating-point (or complex)
// basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// objOf returns the object an identifier resolves to, whether it is a
// use or a definition.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// usesObj reports whether any identifier under n resolves to obj.
func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && objOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}
