package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module.
type Package struct {
	Path  string // import path ("dpml/internal/sim")
	Dir   string // directory, relative to the module root
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Src maps each file's fset name to its source, for suppression
	// comments that need the raw line text.
	Src map[string][]byte
}

// Loader parses and type-checks the module's packages without the go
// toolchain: module-local imports are resolved recursively from the
// module root, everything else (the standard library) goes through
// go/importer's source importer. Load order is deterministic, and file
// positions are recorded relative to the module root so findings and
// golden files are machine-independent.
type Loader struct {
	Root    string // absolute module root (directory of go.mod)
	ModPath string
	Fset    *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader opens the module rooted at root (a directory containing
// go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: not a module root: %w", err)
	}
	path := ""
	for _, line := range strings.Split(string(mod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			path = strings.TrimSpace(rest)
			break
		}
	}
	if path == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		ModPath: path,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// LoadAll loads every package of the module (the "./..." set: testdata
// and hidden directories are skipped, as the go tool does), sorted by
// import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	out := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		ip := l.ModPath
		if rel != "." {
			ip = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// Load loads the module package with the given import path.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if importPath != l.ModPath && !strings.HasPrefix(importPath, l.ModPath+"/") {
		return nil, fmt.Errorf("lint: %q is not a module package", importPath)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModPath), "/")
	dir := l.Root
	if rel != "" {
		dir = filepath.Join(l.Root, filepath.FromSlash(rel))
	}
	return l.LoadDir(dir, importPath)
}

// LoadDir loads the package in dir under the given import path. It is
// the entry point for testdata fixture packages, which live outside the
// "./..." set but still import module packages.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Fset: l.Fset, Src: map[string][]byte{}}
	if rel, err := filepath.Rel(l.Root, dir); err == nil {
		pkg.Dir = filepath.ToSlash(rel)
	}
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		full := filepath.Join(dir, n)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		// Positions are recorded relative to the module root so output is
		// stable whatever directory the driver runs from.
		name := full
		if rel, err := filepath.Rel(l.Root, full); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		f, err := parser.ParseFile(l.Fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Src[name] = src
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	conf := types.Config{Importer: l}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(importPath, l.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Loaded returns every module package this loader has type-checked —
// the requested ones plus their module-local dependency closure —
// sorted by import path. Module analyzers build their call graph over
// this set so helper bodies outside the requested packages stay
// visible.
func (l *Loader) Loaded() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.pkgs[p])
	}
	return out
}

// Import implements types.Importer for the type-checker: module-local
// paths load recursively, the rest goes to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
