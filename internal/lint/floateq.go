package lint

import (
	"go/ast"
	"go/token"
)

// FloateqAnalyzer bans == and != on floating-point operands in non-test
// code. The simulator's determinism argument permits exact float
// comparison only in test oracles (where bit-identity is the point);
// production code comparing floats exactly is either a latent epsilon
// bug or an integer property in disguise — both deserve to be written
// down. Deliberate exact comparisons carry a //dpml:allow floateq
// justification.
var FloateqAnalyzer = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on floating-point operands outside test oracles",
	Run:  runFloateq,
}

func runFloateq(p *Pass) {
	info := p.Pkg.Info
	p.inspect(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		xt, yt := info.TypeOf(be.X), info.TypeOf(be.Y)
		if (xt != nil && isFloat(xt)) || (yt != nil && isFloat(yt)) {
			p.Reportf(be.OpPos, "%s on floating-point operands; compare with a tolerance or restate as an integer property", be.Op)
		}
		return true
	})
}
