package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The mutation tests prove the interprocedural analyzers are not
// trivially green: a clean baseline package produces zero findings,
// then a single injected violation — hidden behind helper hops — must
// be caught, with the full call path in the message. The packages load
// under testdata/src/<analyzer>_mut import paths so the analyzers'
// package gating treats them exactly like the real fixtures.

// loadMutant writes src into a temp directory and loads it under
// importPath with the shared fixture loader.
func loadMutant(t *testing.T, importPath, src string) *Package {
	t.Helper()
	l := fixtureLoader(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "mut.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func mutantFindings(t *testing.T, pkg *Package, analyzer string) []Finding {
	t.Helper()
	return RunModule([]*Package{pkg}, fixtureLoader(t).Loaded(), one(t, analyzer))
}

// TestMutationTaintflow injects a host-clock read two helper hops below
// an entry point and requires taintflow to spell out the whole chain.
func TestMutationTaintflow(t *testing.T) {
	const clean = `package taintmut

// Step advances deterministically through two helpers.
func Step() int64 { return hop1() }

func hop1() int64 { return hop2() }

func hop2() int64 { return 42 }
`
	base := loadMutant(t, "dpml/internal/lint/testdata/src/taintflow_mut/base", clean)
	if fs := mutantFindings(t, base, "taintflow"); len(fs) != 0 {
		t.Fatalf("clean baseline produced findings: %v", fs)
	}

	mutated := strings.Replace(clean,
		"func hop2() int64 { return 42 }",
		"func hop2() int64 { return time.Now().UnixNano() }", 1)
	mutated = strings.Replace(mutated, "package taintmut\n",
		"package taintmut\n\nimport \"time\"\n", 1)
	hot := loadMutant(t, "dpml/internal/lint/testdata/src/taintflow_mut/hot", mutated)
	fs := mutantFindings(t, hot, "taintflow")
	// Step (three hops) and hop1 (two) are reported; hop2's direct call
	// is walltime's finding, not taintflow's.
	if len(fs) != 2 {
		t.Fatalf("want 2 findings for the injected clock read, got %d: %v", len(fs), fs)
	}
	const wantPath = "taintmut.Step → taintmut.hop1 → taintmut.hop2 → time.Now"
	found := false
	for _, f := range fs {
		if f.Analyzer == "taintflow" && strings.Contains(f.Message, wantPath) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no finding carries the full call path %q: %v", wantPath, fs)
	}
}

// TestMutationLpown flips a node-LP callback registration to the net
// LP and requires lpown to trace the wrong-class write through the
// helper, from registration site to field access.
func TestMutationLpown(t *testing.T) {
	const clean = `package lpownmut

import "dpml/internal/sim"

// box is per-node progress state.
//
//dpml:owner node
type box struct{ pending int }

// arm registers the bump on the owning LP.
func arm(k *sim.Kernel, b *box) {
	k.Spawn("bump", func(p *sim.Proc) { poke(b) })
}

func poke(b *box) { b.pending = 1 }
`
	base := loadMutant(t, "dpml/internal/lint/testdata/src/lpown_mut/base", clean)
	if fs := mutantFindings(t, base, "lpown"); len(fs) != 0 {
		t.Fatalf("clean baseline produced findings: %v", fs)
	}

	mutated := strings.Replace(clean,
		`k.Spawn("bump", func(p *sim.Proc) { poke(b) })`,
		`k.AfterNet(0, func() { poke(b) })`, 1)
	hot := loadMutant(t, "dpml/internal/lint/testdata/src/lpown_mut/hot", mutated)
	fs := mutantFindings(t, hot, "lpown")
	if len(fs) != 1 {
		t.Fatalf("want 1 finding for the injected cross-LP write, got %d: %v", len(fs), fs)
	}
	msg := fs[0].Message
	for _, part := range []string{
		"field lpownmut.box.pending is node-owned but written from a net-LP context",
		"(registered on the net LP via AfterNet) → lpownmut.poke",
	} {
		if !strings.Contains(msg, part) {
			t.Fatalf("finding lacks %q: %s", part, msg)
		}
	}
}
