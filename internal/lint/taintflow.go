package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// TaintflowAnalyzer generalizes walltime and globalrand from "no
// direct call in a marked package" to "no *transitive* call path":
// nothing reachable from dpml/internal/{sim,fabric,mpi,core} may hit
// the host clock, the process-global random generators, or a function
// that emits in map-iteration order — even when the forbidden call
// hides behind a chain of helpers in other packages. Findings carry
// the full witness path. Direct stdlib calls (path length 1) are left
// to walltime/globalrand, which already report them with tailored
// messages; taintflow owns everything deeper.
var TaintflowAnalyzer = &Analyzer{
	Name:      "taintflow",
	Doc:       "no transitive call path from sim/fabric/mpi/core into time.Now, global math/rand, or map-ordered emission",
	RunModule: runTaintflow,
}

// taintflowMarked are the virtual-time packages whose whole transitive
// call tree must stay deterministic.
var taintflowMarked = []string{
	"dpml/internal/core",
	"dpml/internal/fabric",
	"dpml/internal/mpi",
	"dpml/internal/sim",
}

func taintflowMarkedPkg(path string) bool {
	for _, m := range taintflowMarked {
		if path == m || strings.HasPrefix(path, m+"/") {
			return true
		}
	}
	// Fixture (and mutation-copy) packages; their helper subpackage
	// plays the out-of-tree accomplice and is deliberately unmarked.
	return strings.Contains(path, "testdata/src/taintflow") && !strings.Contains(path, "helper")
}

func runTaintflow(p *ModulePass) {
	g := p.Graph
	sinks := map[*CGNode]string{}
	for _, n := range g.Nodes() {
		if n.Decl == nil {
			fn := n.Fn
			pk := fn.Pkg()
			if pk == nil {
				continue
			}
			switch {
			case pk.Path() == "time" && recvOf(fn) == nil && walltimeBanned[fn.Name()]:
				sinks[n] = "time." + fn.Name() + " (the host clock)"
			case (pk.Path() == "math/rand" || pk.Path() == "math/rand/v2") && recvOf(fn) == nil && globalrandBanned[fn.Name()]:
				sinks[n] = "rand." + fn.Name() + " (process-global randomness)"
			}
			continue
		}
		if emitsInMapRange(n.Pkg, n.Decl) {
			sinks[n] = "map-order-dependent emission in " + n.Name()
		}
	}
	if len(sinks) == 0 {
		return
	}
	next := reachSinks(g, sinks)
	ordered := make([]*CGNode, 0, len(sinks))
	for s := range sinks {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if sinks[ordered[i]] != sinks[ordered[j]] {
			return sinks[ordered[i]] < sinks[ordered[j]]
		}
		return ordered[i].Name() < ordered[j].Name()
	})
	for _, n := range g.Nodes() {
		if n.Decl == nil || !taintflowMarkedPkg(n.Pkg.Path) || !p.TargetPkg(n.Pkg) {
			continue
		}
		reach := next[n]
		if reach == nil {
			continue
		}
		for _, sink := range ordered {
			if sink == n || reach[sink] == nil {
				continue
			}
			path := witnessPath(next, n, sink)
			if len(path) == 0 {
				continue
			}
			if len(path) == 1 && sink.Decl == nil {
				continue // direct stdlib call: walltime/globalrand report it
			}
			p.Reportf(path[0].Call.Pos(), "%s transitively reaches %s: %s; virtual-time code must stay deterministic through every helper",
				n.Name(), sinks[sink], pathString(n, path))
		}
	}
}

// emitsInMapRange reports whether fd writes output from inside a range
// over a map — the emission subset of maprange's sinks (fmt prints,
// Write* methods, the insertion-ordered metrics registry). Such a
// function is a determinism sink for every caller.
func emitsInMapRange(pkg *Package, fd *ast.FuncDecl) bool {
	info := pkg.Info
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			if pk := fn.Pkg(); pk != nil && pk.Path() == "fmt" {
				switch fn.Name() {
				case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
					found = true
					return false
				}
			}
			if sig, okSig := fn.Type().(*types.Signature); okSig && sig.Recv() != nil {
				if strings.HasPrefix(fn.Name(), "Write") {
					found = true
					return false
				}
				if (fn.Name() == "Set" || fn.Name() == "Add") && recvIsMetricsRegistry(sig) {
					found = true
					return false
				}
			}
			return true
		})
		return !found
	})
	return found
}
