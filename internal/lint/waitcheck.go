package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// WaitcheckAnalyzer is errcheck-lite over non-blocking MPI requests: a
// *mpi.Request returned by Isend/Irecv (or anything else producing one)
// must be waited on or explicitly discarded with _. A silently dropped
// request is the MUST-style request-lifecycle bug — the operation's
// completion is unobservable, buffer reuse races become possible, and on
// the simulator the rank can deadlock with no wait reason for the
// watchdog to name.
var WaitcheckAnalyzer = &Analyzer{
	Name: "waitcheck",
	Doc:  "every non-blocking *mpi.Request must be waited on or explicitly discarded with _",
	Run:  runWaitcheck,
}

// returnsRequest reports whether the call's (single) result is
// *dpml/internal/mpi.Request.
func returnsRequest(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "dpml/internal/mpi"
}

func runWaitcheck(p *Pass) {
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					waitcheckBody(p, fn.Body)
				}
			case *ast.FuncLit:
				waitcheckBody(p, fn.Body)
			}
			return true
		})
	}
}

func waitcheckBody(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	writes := writeIdents(info, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && returnsRequest(info, call) {
				p.Reportf(call.Pos(), "request dropped: Wait it, or assign to _ to discard explicitly")
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				break
			}
			for i, rhs := range s.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !returnsRequest(info, call) {
					continue
				}
				id, okID := s.Lhs[i].(*ast.Ident)
				if !okID || id.Name == "_" {
					continue // stored elsewhere, or explicitly discarded
				}
				obj := objOf(info, id)
				if obj == nil {
					continue
				}
				if !requestRead(info, body, s, obj, writes) {
					p.Reportf(call.Pos(), "request assigned to %q is never waited on before being overwritten or going out of scope", id.Name)
				}
			}
		}
		return true
	})
}

// writeIdents collects identifiers appearing as plain-assignment targets
// — the positions where a variable is overwritten rather than read.
func writeIdents(info *types.Info, body *ast.BlockStmt) map[*ast.Ident]bool {
	out := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, okID := lhs.(*ast.Ident); okID {
					out[id] = true
				}
			}
		}
		return true
	})
	return out
}

// requestRead reports whether obj's first mention after the producing
// assignment is a read (Wait call, append, comparison, ...) rather than
// an overwrite or nothing at all. Position order approximates control
// flow; the repo's request lifecycles are straight-line, and anything
// cleverer should hold the requests in a slice.
func requestRead(info *types.Info, body *ast.BlockStmt, assign *ast.AssignStmt, obj types.Object, writes map[*ast.Ident]bool) bool {
	var mentions []*ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Pos() > assign.End() && objOf(info, id) == obj {
			mentions = append(mentions, id)
		}
		return true
	})
	if len(mentions) == 0 {
		return false
	}
	sort.Slice(mentions, func(i, j int) bool { return mentions[i].Pos() < mentions[j].Pos() })
	first := mentions[0]
	return !writes[first]
}
