package lint

import "go/ast"

// GlobalrandAnalyzer enforces the seeded-randomness discipline from the
// fault-injection subsystem: every random draw must flow from an
// explicitly seeded source (rand.New(rand.NewSource(seed)), or the
// faults package's salted splitmix64 streams), never from math/rand's
// process-global generator, whose sequence depends on whatever else has
// drawn from it — the death of reproducible fault plans.
var GlobalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand global functions; randomness must come from an explicitly seeded source",
	Run:  runGlobalrand,
}

// globalrandBanned are the top-level math/rand (and v2) functions backed
// by the shared global source. Constructors (New, NewSource, NewZipf,
// NewPCG, NewChaCha8) remain legal: they are how seeded sources are made.
var globalrandBanned = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

func runGlobalrand(p *Pass) {
	p.inspect(func(n ast.Node) bool {
		sel, okSel := n.(*ast.SelectorExpr)
		if !okSel {
			return true
		}
		path, name, ok := pkgSelector(p.Pkg.Info, sel)
		if ok && (path == "math/rand" || path == "math/rand/v2") && globalrandBanned[name] {
			p.Reportf(n.Pos(), "rand.%s draws from the process-global source; use rand.New(rand.NewSource(seed)) or a faults stream", name)
		}
		return true
	})
}
