package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// owner.go is the LP-ownership model shared by the lpown and sendpath
// analyzers: the //dpml:owner annotation index, the field-mutability
// scan, and the context-classification engine that decides, for every
// function and registered event callback in the module, which LP class
// (node or net) it can execute under and why.
//
// Ownership is declared next to the data it protects:
//
//	//dpml:owner net
//	type Network struct {
//		...
//		failed bool //dpml:owner shared  (field-level override)
//	}
//
// A struct annotation assigns every field (including fields of inline
// anonymous structs) to the class; a field comment overrides it.
// "shared" means cross-class access is deliberate and externally
// synchronized — those fields are exempt from the access checks.
// //dpml:minlookahead marks a function, method, constant, variable, or
// field whose value is guaranteed ≥ the coordinator lookahead; the
// lpown delay prover accepts exactly these quantities (and sums
// containing them) as cross-LP AfterOn delays.
//
// Execution contexts are classified from roots the kernel API makes
// explicit: a func literal passed to AfterNet runs on the net LP; one
// passed to Spawn/SpawnOn runs as a proc on a node LP; AfterOn/AtOn
// callbacks run on the LP their first argument names (treated as net
// when the expression mentions the net LP, node otherwise). Declared
// functions are seeded node when they take a *sim.Proc parameter
// (procs exist only on node LPs) or are methods on a node-owned
// struct. Classes then propagate along static call edges — literal
// bodies are boundaries, so a callback's class never leaks into its
// registering function or vice versa. Each classification keeps a
// witness chain back to its root so findings can print the full
// interprocedural path.

// LP ownership classes.
const (
	classNode   = "node"
	classNet    = "net"
	classShared = "shared"
)

// Directive prefixes (suppressPrefix, the third //dpml: marker, lives
// in suppress.go).
const (
	ownerPrefix = "//dpml:owner"
	minLAPrefix = "//dpml:minlookahead"
)

// annotBad is a malformed or misplaced annotation; lpown reports these
// in target packages so a typo is a finding, never silence.
type annotBad struct {
	pkg *Package
	pos token.Pos
	msg string
}

// ctxStep records how a unit acquired a class: a seed (reason set) or
// propagation from a caller (from set).
type ctxStep struct {
	reason string
	from   *unit
}

type unitEdge struct {
	to  *unit
	pos token.Pos
}

// unit is one classification subject: a declared function, or a func
// literal rooted by a kernel registration call.
type unit struct {
	fn      *types.Func  // declared functions
	lit     *ast.FuncLit // rooted literals
	body    *ast.BlockStmt
	pkg     *Package
	name    string
	ctor    bool
	classes map[string]*ctxStep
	out     []unitEdge
}

func (u *unit) seed(class, reason string) {
	if u.classes[class] == nil {
		u.classes[class] = &ctxStep{reason: reason}
	}
}

// sortedClasses returns the unit's classes in deterministic order.
func sortedClasses(u *unit) []string {
	out := make([]string, 0, len(u.classes))
	for c := range u.classes {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ownership is the full model, built once per Module and shared by the
// analyzers that need it.
type ownership struct {
	fset        *token.FileSet
	fieldClass  map[*types.Var]string // annotated field -> owning class
	fieldOwner  map[*types.Var]string // annotated field -> struct display name
	structClass map[*types.TypeName]string
	minLA       map[types.Object]bool
	mutable     map[*types.Var]bool // fields assigned outside constructors
	bad         []annotBad

	units   []*unit
	unitOf  map[*types.Func]*unit
	litUnit map[*ast.FuncLit]*unit
}

func buildOwnership(m *Module) *ownership {
	o := &ownership{
		fieldClass:  map[*types.Var]string{},
		fieldOwner:  map[*types.Var]string{},
		structClass: map[*types.TypeName]string{},
		minLA:       map[types.Object]bool{},
		mutable:     map[*types.Var]bool{},
		unitOf:      map[*types.Func]*unit{},
		litUnit:     map[*ast.FuncLit]*unit{},
	}
	if len(m.All) > 0 {
		o.fset = m.All[0].Fset
	}
	for _, pkg := range m.All {
		o.indexAnnotations(pkg)
	}
	for _, pkg := range m.All {
		o.scanMutability(pkg)
	}
	o.buildUnits(m)
	o.propagate()
	return o
}

func (o *ownership) badf(pkg *Package, pos token.Pos, format string, args ...any) {
	o.bad = append(o.bad, annotBad{pkg: pkg, pos: pos, msg: fmt.Sprintf(format, args...)})
}

// directiveText matches a //dpml: marker exactly: the prefix must be
// followed by nothing or whitespace, so //dpml:ownership is not
// //dpml:owner. It returns the trimmed remainder.
func directiveText(text, prefix string) (string, bool) {
	rest, found := strings.CutPrefix(text, prefix)
	if !found {
		return "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// directive scans comment groups in order for the first matching
// marker, returning its remainder and the comment that carried it.
func directive(prefix string, groups ...*ast.CommentGroup) (string, *ast.Comment) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if rest, ok := directiveText(c.Text, prefix); ok {
				return rest, c
			}
		}
	}
	return "", nil
}

// parseOwnerClass extracts the LP class from a directive remainder; the
// first word must be node, net, or shared (free text may follow).
func parseOwnerClass(rest string) (string, bool) {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	switch fields[0] {
	case classNode, classNet, classShared:
		return fields[0], true
	}
	return fields[0], false
}

// indexAnnotations collects //dpml:owner and //dpml:minlookahead
// markers from one package, recording malformed and misplaced ones.
func (o *ownership) indexAnnotations(pkg *Package) {
	for _, f := range pkg.Files {
		consumed := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if _, c := directive(minLAPrefix, d.Doc); c != nil {
					consumed[c] = true
					if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
						o.minLA[fn] = true
					}
				}
				if _, c := directive(ownerPrefix, d.Doc); c != nil {
					consumed[c] = true
					o.badf(pkg, c.Pos(), "//dpml:owner belongs on a struct type or field, not a function")
				}
			case *ast.GenDecl:
				o.indexGenDecl(pkg, d, consumed)
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if consumed[c] {
					continue
				}
				if _, ok := directiveText(c.Text, ownerPrefix); ok {
					o.badf(pkg, c.Pos(), "misplaced //dpml:owner: it must be the doc or line comment of a struct type or one of its fields")
				} else if _, ok := directiveText(c.Text, minLAPrefix); ok {
					o.badf(pkg, c.Pos(), "misplaced //dpml:minlookahead: it must annotate a function, constant, variable, or struct field")
				}
			}
		}
	}
}

func (o *ownership) indexGenDecl(pkg *Package, d *ast.GenDecl, consumed map[*ast.Comment]bool) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			groups := []*ast.CommentGroup{s.Doc, s.Comment}
			if len(d.Specs) == 1 {
				groups = append(groups, d.Doc)
			}
			class := ""
			if rest, c := directive(ownerPrefix, groups...); c != nil {
				consumed[c] = true
				cl, ok := parseOwnerClass(rest)
				switch {
				case !ok && cl == "":
					o.badf(pkg, c.Pos(), "//dpml:owner without an LP class (want node, net, or shared)")
				case !ok:
					o.badf(pkg, c.Pos(), "//dpml:owner %s: unknown LP class (want node, net, or shared)", cl)
				default:
					if _, isStruct := s.Type.(*ast.StructType); !isStruct {
						o.badf(pkg, c.Pos(), "//dpml:owner on non-struct type %s", s.Name.Name)
					} else {
						class = cl
					}
				}
			}
			if _, c := directive(minLAPrefix, groups...); c != nil {
				consumed[c] = true
				o.badf(pkg, c.Pos(), "misplaced //dpml:minlookahead on a type; annotate the field or function instead")
			}
			if st, isStruct := s.Type.(*ast.StructType); isStruct {
				if class != "" {
					if tn, ok := pkg.Info.Defs[s.Name].(*types.TypeName); ok {
						o.structClass[tn] = class
					}
				}
				owner := pkg.Types.Name() + "." + s.Name.Name
				o.walkStructFields(pkg, st, class, owner, consumed)
			}
		case *ast.ValueSpec:
			groups := []*ast.CommentGroup{s.Doc, s.Comment}
			if len(d.Specs) == 1 {
				groups = append(groups, d.Doc)
			}
			if _, c := directive(minLAPrefix, groups...); c != nil {
				consumed[c] = true
				for _, name := range s.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						o.minLA[obj] = true
					}
				}
			}
			if _, c := directive(ownerPrefix, groups...); c != nil {
				consumed[c] = true
				o.badf(pkg, c.Pos(), "//dpml:owner belongs on a struct type or field, not a value")
			}
		}
	}
}

// walkStructFields assigns class to every named field (class may be ""
// for unannotated structs — field markers still apply), honours
// field-level overrides, and recurses into inline anonymous structs.
// Embedded fields are skipped: ownership does not flow through
// embedding (a documented limitation; none of the annotated types
// embed).
func (o *ownership) walkStructFields(pkg *Package, st *ast.StructType, class, owner string, consumed map[*ast.Comment]bool) {
	for _, fld := range st.Fields.List {
		fclass := class
		if rest, c := directive(ownerPrefix, fld.Doc, fld.Comment); c != nil {
			consumed[c] = true
			cl, ok := parseOwnerClass(rest)
			switch {
			case !ok && cl == "":
				o.badf(pkg, c.Pos(), "//dpml:owner without an LP class (want node, net, or shared)")
			case !ok:
				o.badf(pkg, c.Pos(), "//dpml:owner %s: unknown LP class (want node, net, or shared)", cl)
			default:
				fclass = cl
			}
		}
		if _, c := directive(minLAPrefix, fld.Doc, fld.Comment); c != nil {
			consumed[c] = true
			for _, name := range fld.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					o.minLA[v] = true
				}
			}
		}
		for _, name := range fld.Names {
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok && fclass != "" {
				o.fieldClass[v] = fclass
				o.fieldOwner[v] = owner
			}
		}
		if inner, ok := fld.Type.(*ast.StructType); ok {
			o.walkStructFields(pkg, inner, fclass, owner, consumed)
		}
	}
}

// scanMutability records every field assigned through a selector
// outside constructor-shaped functions (New*/new*/init). Fields only
// ever set by composite literals or inside constructors are immutable
// at run time, so cross-class reads of them are harmless; writes are
// always checked. Aliasing through &x.f is not modelled.
func (o *ownership) scanMutability(pkg *Package) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctor := isConstructorName(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					if st.Tok == token.DEFINE {
						return true
					}
					for _, lhs := range st.Lhs {
						o.markFieldWrite(pkg, lhs, ctor)
					}
				case *ast.IncDecStmt:
					o.markFieldWrite(pkg, st.X, ctor)
				}
				return true
			})
		}
	}
}

func (o *ownership) markFieldWrite(pkg *Package, lhs ast.Expr, ctor bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	s := pkg.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return
	}
	if v, ok := s.Obj().(*types.Var); ok && !ctor {
		o.mutable[v] = true
	}
}

// buildUnits creates a unit per declared function (from the call
// graph, so order is deterministic) and per rooted callback literal,
// seeds classes, then wires literal-boundary-aware call edges.
func (o *ownership) buildUnits(m *Module) {
	g := m.Graph
	for _, n := range g.Nodes() {
		if n.Decl == nil {
			continue
		}
		u := &unit{
			fn: n.Fn, body: n.Decl.Body, pkg: n.Pkg, name: n.Name(),
			ctor:    isConstructorName(n.Fn.Name()),
			classes: map[string]*ctxStep{},
		}
		o.unitOf[n.Fn] = u
		o.units = append(o.units, u)
	}
	for _, n := range g.Nodes() {
		if n.Decl == nil {
			continue
		}
		u := o.unitOf[n.Fn]
		if hasProcParam(n.Fn) {
			u.seed(classNode, "runs as a proc body: *sim.Proc parameter")
		}
		if recv := recvOf(n.Fn); recv != nil {
			if tn := baseTypeName(recv.Type()); tn != nil && o.structClass[tn] == classNode {
				u.seed(classNode, "method on node-owned "+tn.Name())
			}
		}
	}
	for _, pkg := range m.All {
		p := pkg
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				lit, class, how := o.registration(p, call)
				if lit == nil || o.litUnit[lit] != nil {
					return true
				}
				pos := o.fset.Position(call.Pos())
				u := &unit{
					lit: lit, body: lit.Body, pkg: p,
					name:    fmt.Sprintf("the callback at %s:%d", pos.Filename, pos.Line),
					classes: map[string]*ctxStep{},
				}
				u.seed(class, fmt.Sprintf("registered on the %s LP via %s", class, how))
				o.litUnit[lit] = u
				o.units = append(o.units, u)
				return true
			})
		}
	}
	for _, u := range o.units {
		uu := u
		o.inspectUnit(uu, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(uu.pkg.Info, call)
			if fn == nil {
				return true
			}
			if to := o.unitOf[fn.Origin()]; to != nil {
				uu.out = append(uu.out, unitEdge{to: to, pos: call.Pos()})
			}
			return true
		})
	}
}

// inspectUnit walks a unit's body without descending into rooted
// literals — those are units of their own, with their own classes.
func (o *ownership) inspectUnit(u *unit, f func(ast.Node) bool) {
	ast.Inspect(u.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && o.litUnit[lit] != nil {
			return false
		}
		return f(n)
	})
}

// registration recognizes kernel calls that root a callback literal on
// a known LP class, returning the literal, its class, and the method
// name for the witness message.
func (o *ownership) registration(pkg *Package, call *ast.CallExpr) (*ast.FuncLit, string, string) {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil {
		return nil, "", ""
	}
	recv := recvOf(fn)
	if recv == nil || !isSimType(baseTypeName(recv.Type()), "Kernel") {
		return nil, "", ""
	}
	argIdx, class := 0, classNode
	switch fn.Name() {
	case "AfterNet":
		argIdx, class = 1, classNet
	case "AfterOn", "AtOn":
		argIdx = 2
		if len(call.Args) > 0 && exprMentionsNet(call.Args[0]) {
			class = classNet
		}
	case "Spawn":
		argIdx = 1
	case "SpawnOn":
		argIdx = 2
	default:
		return nil, "", ""
	}
	if argIdx >= len(call.Args) {
		return nil, "", ""
	}
	lit, ok := ast.Unparen(call.Args[argIdx]).(*ast.FuncLit)
	if !ok {
		return nil, "", ""
	}
	return lit, class, fn.Name()
}

// propagate pushes classes along call edges to a fixpoint, recording
// the predecessor so witness chains can be reconstructed.
func (o *ownership) propagate() {
	for changed := true; changed; {
		changed = false
		for _, u := range o.units {
			for _, class := range sortedClasses(u) {
				for _, e := range u.out {
					if e.to.classes[class] == nil {
						e.to.classes[class] = &ctxStep{from: u}
						changed = true
					}
				}
			}
		}
	}
}

// chain renders the witness path explaining why u carries class:
// "root (reason) → a → b → u".
func (o *ownership) chain(u *unit, class string) string {
	var rev []*unit
	cur := u
	for cur.classes[class] != nil && cur.classes[class].from != nil {
		rev = append(rev, cur)
		cur = cur.classes[class].from
		if len(rev) > 1024 { // cannot cycle: from-chains point at earlier fixpoint states
			break
		}
	}
	s := cur.name
	if step := cur.classes[class]; step != nil && step.reason != "" {
		s += " (" + step.reason + ")"
	}
	for i := len(rev) - 1; i >= 0; i-- {
		s += " → " + rev[i].name
	}
	return s
}

// exprMentionsNet reports whether an LP-index expression names the net
// LP (NetLP()/netLP/NetKernel in any position).
func exprMentionsNet(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			switch id.Name {
			case "NetLP", "netLP", "netlp", "NetKernel":
				found = true
			}
		}
		return !found
	})
	return found
}

func isConstructorName(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") || name == "init"
}

// baseTypeName returns the named type behind t (derefing one pointer),
// or nil.
func baseTypeName(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// isSimType reports whether tn is the named type sim.<name> of the
// simulation kernel package.
func isSimType(tn *types.TypeName, name string) bool {
	return tn != nil && tn.Name() == name && tn.Pkg() != nil && tn.Pkg().Path() == "dpml/internal/sim"
}

func hasProcParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isSimType(baseTypeName(params.At(i).Type()), "Proc") {
			return true
		}
	}
	return false
}

// lpCheckedPkg gates the ownership and send-path access checks to the
// packages that carry the LP discipline (the kernel package itself is
// trusted — it is the mechanism being protected) plus the analyzer's
// own fixtures.
func lpCheckedPkg(path, fixture string) bool {
	for _, m := range []string{"dpml/internal/core", "dpml/internal/fabric", "dpml/internal/mpi"} {
		if path == m || strings.HasPrefix(path, m+"/") {
			return true
		}
	}
	return strings.Contains(path, "testdata/src/"+fixture)
}

// kernelClass resolves which LP class owns the kernel an expression
// evaluates to: NetKernel() is the net kernel, KernelFor(...) and
// (*sim.Proc).Kernel() are node kernels, a Kernel method on an
// annotated struct follows the struct, an annotated field follows the
// field, and a local variable follows its single defining assignment.
// "" means unknown (and is never reported on).
func (o *ownership) kernelClass(pkg *Package, e ast.Expr, depth int) string {
	if depth == 0 {
		return ""
	}
	e = ast.Unparen(e)
	info := pkg.Info
	switch x := e.(type) {
	case *ast.CallExpr:
		fn := calleeFunc(info, x)
		if fn == nil {
			return ""
		}
		switch fn.Name() {
		case "NetKernel":
			return classNet
		case "KernelFor":
			return classNode
		case "Kernel":
			recv := recvOf(fn)
			if recv == nil {
				return ""
			}
			tn := baseTypeName(recv.Type())
			if isSimType(tn, "Proc") {
				return classNode
			}
			if tn != nil {
				return o.structClass[tn]
			}
		}
		return ""
	case *ast.SelectorExpr:
		if s := info.Selections[x]; s != nil && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return o.fieldClass[v]
			}
		}
		return ""
	case *ast.Ident:
		v, ok := objOf(info, x).(*types.Var)
		if !ok {
			return ""
		}
		if rhs := singleDefine(pkg, v); rhs != nil {
			return o.kernelClass(pkg, rhs, depth-1)
		}
	}
	return ""
}

// singleDefine finds the unique := right-hand side defining v in its
// package, or nil when there is none or more than one assignment.
func singleDefine(pkg *Package, v *types.Var) ast.Expr {
	var rhs ast.Expr
	count := 0
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, okID := lhs.(*ast.Ident)
				if !okID || pkg.Info.Defs[id] != v && objOf(pkg.Info, id) != v {
					continue
				}
				count++
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else {
					rhs = nil
				}
			}
			return true
		})
	}
	if count != 1 {
		return nil
	}
	return rhs
}
