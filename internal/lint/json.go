package lint

import (
	"encoding/json"
	"io"
)

// jsonFinding is the -json wire form of one finding. File paths are
// module-root-relative, so output is stable across machines.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

type jsonReport struct {
	Findings []jsonFinding `json:"findings"`
}

// WriteJSON renders findings as the driver's -json output: one object
// with a "findings" array (empty array, not null, when clean), indented
// and newline-terminated.
func WriteJSON(w io.Writer, findings []Finding) error {
	rep := jsonReport{Findings: make([]jsonFinding, 0, len(findings))}
	for _, f := range findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Analyzer: f.Analyzer, Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
