package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LpownAnalyzer enforces the LP-ownership discipline the sharded
// kernel's determinism rests on, using the model in owner.go:
//
//  1. A field of a //dpml:owner node|net struct may only be written
//     from execution contexts of that class, and only read from other
//     classes when it is immutable after construction. "shared" fields
//     (externally synchronized, e.g. mutex-guarded registries) are
//     exempt. Contexts are classified interprocedurally, so a wrong-
//     class access through any helper chain is found, with the
//     registration-to-access witness path in the message.
//  2. A cross-LP AfterOn delay must be provably ≥ the coordinator
//     lookahead: the expression has to be built from
//     //dpml:minlookahead-annotated quantities (directly, via sums, via
//     locals, or via parameters — in which case the proof obligation
//     propagates to every call site). Hops to the net LP are exempt:
//     the node→net direction is the outbox itself.
//  3. Malformed, misplaced, or typo'd annotations are findings, never
//     silence.
//
// What lpown cannot prove it does not report: contexts it cannot
// classify (setup code, bench harnesses) and function-value
// indirection are unchecked — the kernel's runtime cross-LP assertions
// remain the backstop there.
var LpownAnalyzer = &Analyzer{
	Name:      "lpown",
	Doc:       "//dpml:owner state is touched only by its LP class; cross-LP AfterOn delays provably ≥ the lookahead",
	RunModule: runLpown,
}

func runLpown(p *ModulePass) {
	o := p.ownership()
	for _, b := range o.bad {
		if p.TargetPkg(b.pkg) {
			p.Reportf(b.pos, "%s", b.msg)
		}
	}
	checkOwnership(p, o)
	checkDelays(p, o)
}

// checkOwnership flags wrong-class field accesses in every classified
// unit. Constructor-shaped functions are exempt: they run before the
// object is published to its LP.
func checkOwnership(p *ModulePass, o *ownership) {
	for _, u := range o.units {
		if len(u.classes) == 0 || u.ctor {
			continue
		}
		if !p.TargetPkg(u.pkg) || !lpCheckedPkg(u.pkg.Path, "lpown") || u.pkg.Path == "dpml/internal/sim" {
			continue
		}
		uu := u
		info := uu.pkg.Info
		writes := map[*ast.SelectorExpr]bool{}
		o.inspectUnit(uu, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if st.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range st.Lhs {
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
						writes[sel] = true
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := ast.Unparen(st.X).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
			return true
		})
		classes := sortedClasses(uu)
		o.inspectUnit(uu, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			own := o.fieldClass[v]
			if own != classNode && own != classNet {
				return true
			}
			isWrite := writes[sel]
			if !isWrite && !o.mutable[v] {
				return true // immutable after construction: safe to read anywhere
			}
			for _, c := range classes {
				if c == own {
					continue
				}
				verb := "read"
				if isWrite {
					verb = "written"
				}
				p.Reportf(sel.Sel.Pos(), "field %s.%s is %s-owned but %s from a %s-LP context: %s",
					o.fieldOwner[v], v.Name(), own, verb, c, o.chain(uu, c))
			}
			return true
		})
	}
}

// checkDelays proves every cross-LP AfterOn delay is lookahead-shaped.
func checkDelays(p *ModulePass, o *ownership) {
	g := p.Graph
	reported := map[token.Pos]bool{}
	for _, n := range g.Nodes() {
		if n.Decl == nil || !p.TargetPkg(n.Pkg) {
			continue
		}
		if !lpCheckedPkg(n.Pkg.Path, "lpown") || n.Pkg.Path == "dpml/internal/sim" {
			continue
		}
		nd := n
		ast.Inspect(nd.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(nd.Pkg.Info, call)
			if fn == nil || fn.Name() != "AfterOn" || len(call.Args) < 3 {
				return true
			}
			recv := recvOf(fn)
			if recv == nil || !isSimType(baseTypeName(recv.Type()), "Kernel") {
				return true
			}
			if exprMentionsNet(call.Args[0]) {
				return true // node→net hop is the outbox itself; any delay is legal
			}
			dp := &delayProver{o: o, g: g}
			if dp.shaped(nd.Pkg, nd.Decl, call.Args[1], map[*types.Func]bool{}, 32) {
				return true
			}
			afterPos := p.Position(call.Args[1].Pos())
			any := false
			for _, fl := range dp.fails {
				if !p.TargetPkg(fl.pkg) || reported[fl.pos] {
					continue
				}
				reported[fl.pos] = true
				any = true
				p.Reportf(fl.pos, "delay flows into the cross-LP AfterOn at %s:%d via %s but cannot be proven ≥ the lookahead; derive it from a //dpml:minlookahead quantity",
					afterPos.Filename, afterPos.Line, fl.via)
			}
			if !any && !reported[call.Args[1].Pos()] {
				reported[call.Args[1].Pos()] = true
				p.Reportf(call.Args[1].Pos(), "cross-LP AfterOn delay cannot be proven ≥ the coordinator lookahead; derive it from a //dpml:minlookahead-annotated quantity")
			}
			return true
		})
	}
}

// delayFail is one call site whose argument breaks a parameter-
// propagated delay proof.
type delayFail struct {
	pos token.Pos
	pkg *Package
	via string
}

type delayProver struct {
	o     *ownership
	g     *CallGraph
	fails []delayFail
}

// shaped reports whether e is provably ≥ the lookahead: a
// //dpml:minlookahead call, field, constant, or variable; a sum with a
// shaped operand; a local whose every assignment is shaped; or a
// parameter every in-scope call site feeds a shaped argument.
func (dp *delayProver) shaped(pkg *Package, fd *ast.FuncDecl, e ast.Expr, seen map[*types.Func]bool, depth int) bool {
	if depth == 0 {
		return false
	}
	e = ast.Unparen(e)
	info := pkg.Info
	switch x := e.(type) {
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			return dp.shaped(pkg, fd, x.X, seen, depth-1) || dp.shaped(pkg, fd, x.Y, seen, depth-1)
		}
		return false
	case *ast.CallExpr:
		fn := calleeFunc(info, x)
		return fn != nil && dp.o.minLA[fn]
	case *ast.SelectorExpr:
		if s := info.Selections[x]; s != nil {
			return dp.o.minLA[s.Obj()]
		}
		if obj := info.Uses[x.Sel]; obj != nil {
			return dp.o.minLA[obj]
		}
		return false
	case *ast.Ident:
		obj := objOf(info, x)
		if obj == nil {
			return false
		}
		if dp.o.minLA[obj] {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		if idx := paramIndex(info, fd, v); idx >= 0 {
			fn, _ := info.Defs[fd.Name].(*types.Func)
			return dp.paramShaped(fn, idx, v.Name(), seen, depth-1)
		}
		return dp.localShaped(pkg, fd, v, seen, depth-1)
	}
	return false
}

// localShaped requires at least one assignment to v inside fd and
// every one of them to be shaped.
func (dp *delayProver) localShaped(pkg *Package, fd *ast.FuncDecl, v *types.Var, seen map[*types.Func]bool, depth int) bool {
	info := pkg.Info
	found, all := false, true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			for _, lhs := range as.Lhs {
				if id, okID := lhs.(*ast.Ident); okID && objOf(info, id) == v {
					found, all = true, false // tuple assignment: unprovable
				}
			}
			return true
		}
		for i, lhs := range as.Lhs {
			id, okID := lhs.(*ast.Ident)
			if !okID || objOf(info, id) != v {
				continue
			}
			found = true
			if !dp.shaped(pkg, fd, as.Rhs[i], seen, depth) {
				all = false
			}
		}
		return true
	})
	return found && all
}

// paramShaped propagates the proof obligation for parameter idx of fn
// to every call site in the graph, recording failing arguments for
// call-site reporting. A cycle (recursive pass-through) is treated as
// proven — the chain must bottom out at some non-parameter argument,
// which is checked on its own edge.
func (dp *delayProver) paramShaped(fn *types.Func, idx int, pname string, seen map[*types.Func]bool, depth int) bool {
	if fn == nil || depth == 0 {
		return false
	}
	fn = fn.Origin()
	if seen[fn] {
		return true
	}
	seen[fn] = true
	defer delete(seen, fn)
	node := dp.g.Node(fn)
	if node == nil || len(node.In) == 0 {
		return false
	}
	ok := true
	for _, e := range node.In {
		if e.Caller.Decl == nil || idx >= len(e.Call.Args) || e.Call.Ellipsis.IsValid() {
			ok = false
			continue
		}
		if dp.shaped(e.Caller.Pkg, e.Caller.Decl, e.Call.Args[idx], seen, depth-1) {
			continue
		}
		ok = false
		dp.fails = append(dp.fails, delayFail{
			pos: e.Call.Args[idx].Pos(),
			pkg: e.Caller.Pkg,
			via: fmt.Sprintf("parameter %q of %s", pname, node.Name()),
		})
	}
	return ok
}

// paramIndex returns v's position in fd's parameter list, or -1.
func paramIndex(info *types.Info, fd *ast.FuncDecl, v *types.Var) int {
	if fd.Type.Params == nil {
		return -1
	}
	idx := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			idx++
			continue
		}
		for _, name := range f.Names {
			if info.Defs[name] == v {
				return idx
			}
			idx++
		}
	}
	return -1
}
