// Package lpown exercises the LP-ownership analyzer: //dpml:owner
// state touched from the wrong execution context (directly or through
// helper chains, with the witness path in the message), cross-LP
// AfterOn delays that cannot be proven ≥ the lookahead, and malformed
// or misplaced annotations.
package lpown

import "dpml/internal/sim"

// netBox is coordinator-side state.
//
//dpml:owner net
type netBox struct {
	k     *sim.Kernel
	count int
	ready sim.Signal
}

// nodeBox is node-LP state; mixed is a deliberate handoff cell.
//
//dpml:owner node
type nodeBox struct {
	k       *sim.Kernel
	pending int
	mixed   int //dpml:owner shared -- externally synchronized handoff

	// frozen is set only at construction, so cross-class reads are
	// harmless.
	frozen int
}

func newNodeBox(k *sim.Kernel) *nodeBox {
	nb := &nodeBox{k: k}
	nb.frozen = 7 // constructor writes do not make a field mutable
	return nb
}

// A net-registered callback writing node state is the canonical
// violation.
func crossWrite(k *sim.Kernel, nb *nodeBox) {
	k.AfterNet(0, func() {
		nb.pending = 1 // want `lpown: field lpown\.nodeBox\.pending is node-owned but written from a net-LP context: the callback at .*registered on the net LP via AfterNet`
	})
}

// The same violation through a helper chain: the finding lands in the
// helper, with the registration-to-access path spelled out.
func crossWriteDeep(k *sim.Kernel, nb *nodeBox) {
	k.AfterNet(0, func() { bump(nb) })
}

func bump(nb *nodeBox) {
	nb.pending++ // want `node-owned but written from a net-LP context: the callback at .*AfterNet\) → lpown\.bump`
}

// Reading a mutable node field from the net context is also a finding.
func crossRead(k *sim.Kernel, nb *nodeBox) {
	k.AfterNet(0, func() {
		_ = nb.pending // want `field lpown\.nodeBox\.pending is node-owned but read from a net-LP context`
	})
}

// Reads of construction-frozen fields are fine anywhere.
func crossReadFrozen(k *sim.Kernel, nb *nodeBox) {
	k.AfterNet(0, func() { _ = nb.frozen })
}

// The shared override exempts the handoff cell.
func sharedOK(k *sim.Kernel, nb *nodeBox) {
	k.AfterNet(0, func() { nb.mixed = 3 })
}

// A proc body runs on a node LP: touching net state from it is the
// reverse violation.
func procTouch(p *sim.Proc, b *netBox) {
	b.count = 2 // want `field lpown\.netBox\.count is net-owned but written from a node-LP context: lpown\.procTouch \(runs as a proc body: \*sim\.Proc parameter\)`
}

// Same-class accesses are fine: a method on a node-owned struct writes
// its own field, and a net callback bumps net state.
func (nb *nodeBox) local() { nb.pending = 4 }

func netOK(b *netBox) {
	b.k.AfterNet(0, func() { b.count++ })
}

// A suppressed violation: the allowance silences the finding and is
// counted as used.
func suppressed(k *sim.Kernel, nb *nodeBox) {
	k.AfterNet(0, func() {
		nb.pending = 9 //dpml:allow lpown -- fixture: prove module findings honor allowances
	})
}
