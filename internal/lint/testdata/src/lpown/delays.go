package lpown

import "dpml/internal/sim"

// prof carries the lookahead floor the shaped-delay cases draw from.
//
//dpml:owner shared
type prof struct {
	// wire is the modelled link latency; the coordinator lookahead is
	// derived from it.
	//
	//dpml:minlookahead
	wire sim.Duration
}

// baseLat is a package-level floor.
//
//dpml:minlookahead
const baseLat sim.Duration = 4

// floor returns an annotated quantity.
//
//dpml:minlookahead
func floor() sim.Duration { return 5 }

// Provable shapes: an annotated field, a sum containing one, a local
// built from one, an annotated constant, an annotated call.
func delayField(k *sim.Kernel, p *prof, lp int) { k.AfterOn(lp, p.wire, func() {}) }
func delaySum(k *sim.Kernel, p *prof, lp int)   { k.AfterOn(lp, p.wire+5, func() {}) }
func delayConst(k *sim.Kernel, lp int)          { k.AfterOn(lp, baseLat, func() {}) }
func delayCall(k *sim.Kernel, lp int)           { k.AfterOn(lp, floor(), func() {}) }

func delayLocal(k *sim.Kernel, p *prof, lp int) {
	d := p.wire
	k.AfterOn(lp, d, func() {})
}

// A bare constant proves nothing: lookahead is a run-time quantity.
func delayBad(k *sim.Kernel, lp int) {
	k.AfterOn(lp, 3, func() {}) // want `lpown: cross-LP AfterOn delay cannot be proven ≥ the coordinator lookahead`
}

// A parameter delay pushes the proof obligation to every call site:
// the shaped caller is fine, the bare-constant one is the finding —
// reported at its argument, naming the AfterOn it feeds.
func delayParam(k *sim.Kernel, lp int, d sim.Duration) {
	k.AfterOn(lp, d, func() {})
}

func callsDelayParam(k *sim.Kernel, p *prof, lp int) {
	delayParam(k, lp, p.wire)
	delayParam(k, lp, 7) // want `delay flows into the cross-LP AfterOn at .*delays\.go:\d+ via parameter "d" of lpown\.delayParam but cannot be proven`
}

// Hops to the net LP are the outbox itself: any delay is legal.
func delayNet(k *sim.Kernel) {
	k.AfterOn(k.NetLP(), 1, func() {})
}
