package lpown

// A typo'd class is a finding, never silence.
//
//dpml:owner netwrk // want `lpown: //dpml:owner netwrk: unknown LP class \(want node, net, or shared\)`
type typoBox struct{ n int }

// Owner markers belong on structs and fields only.
//
//dpml:owner node // want `//dpml:owner on non-struct type numeric`
type numeric int

//dpml:owner node // want `//dpml:owner belongs on a struct type or field, not a function`
func annotatedFunc() {}

//dpml:owner node // want `//dpml:owner belongs on a struct type or field, not a value`
var strayValue = 0

// A free-floating marker attached to no declaration is misplaced.

//dpml:owner node // want `misplaced //dpml:owner`

// (the comment above is detached; this one keeps it that way)

//dpml:minlookahead // want `misplaced //dpml:minlookahead on a type; annotate the field or function instead`
type notADuration struct{ v int }
