// Fixture for the globalrand analyzer: global math/rand draws are
// flagged, explicitly seeded sources are not.
package globalrand

import "math/rand"

func global() (int, float64) {
	n := rand.Intn(10)                 // want `rand\.Intn draws from the process-global source`
	f := rand.Float64()                // want `rand\.Float64 draws from the process-global source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	return n, f
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
