// Fixture for the waitcheck analyzer: a non-blocking request must be
// waited on or explicitly discarded; silently dropping or overwriting
// one is flagged.
package waitcheck

import "dpml/internal/mpi"

func dropped(r *mpi.Rank, c *mpi.Comm, v *mpi.Vector) {
	r.Isend(c, 1, 0, v) // want `request dropped: Wait it, or assign to _ to discard explicitly`
}

func discarded(r *mpi.Rank, c *mpi.Comm, v *mpi.Vector) {
	_ = r.Isend(c, 1, 0, v)
}

func waited(r *mpi.Rank, c *mpi.Comm, v *mpi.Vector) {
	req := r.Irecv(c, 1, 0, v)
	r.Wait(req)
}

func overwritten(r *mpi.Rank, c *mpi.Comm, v *mpi.Vector) {
	req := r.Irecv(c, 1, 0, v) // want `request assigned to "req" is never waited on`
	req = r.Irecv(c, 2, 0, v)
	r.Wait(req)
}

func collected(r *mpi.Rank, c *mpi.Comm, v *mpi.Vector) {
	var reqs []*mpi.Request
	for dst := 1; dst < 4; dst++ {
		reqs = append(reqs, r.Isend(c, dst, 0, v))
	}
	r.WaitAll(reqs...)
}
