// Package helper is the taintflow fixture's out-of-tree accomplice: it
// is deliberately unmarked, so nothing here is reported directly — the
// violations exist only as transitive paths from the marked fixture
// package.
package helper

import (
	"fmt"
	"sort"
	"time"
)

// TimeHop reads the host clock one call away from the marked package.
func TimeHop() int64 { return time.Now().UnixNano() }

// DoubleHop hides the clock behind a second hop.
func DoubleHop() int64 { return TimeHop() + 1 }

// Emit prints a map in iteration order: a determinism sink for every
// caller.
func Emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// EmitSorted is the clean counterpart: iteration feeds a sort, and the
// emission happens outside the range.
func EmitSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// Pure is a harmless helper.
func Pure(x int) int { return x * 2 }
