// Package taintflow exercises the transitive determinism-taint
// analyzer. This package path is marked (it stands in for
// dpml/internal/{sim,fabric,mpi,core}); the helper subpackage is not,
// so a forbidden call reached only through helpers must still be
// reported here, with the full witness path. Direct stdlib calls are
// walltime/globalrand territory and must NOT be duplicated by
// taintflow.
package taintflow

import (
	"math/rand"
	"time"

	"dpml/internal/lint/testdata/src/taintflow/helper"
)

// One hop: the clock hides behind helper.TimeHop.
func viaOneHop() int64 {
	return helper.TimeHop() // want `taintflow: taintflow\.viaOneHop transitively reaches time\.Now \(the host clock\)`
}

// Two hops: the witness path spells out the whole chain.
func viaTwoHops() int64 {
	return helper.DoubleHop() // want `transitively reaches time\.Now.*helper\.DoubleHop → helper\.TimeHop → time\.Now`
}

// Global randomness through a package-local hop: the path is length
// two, so taintflow (not globalrand) owns it.
func viaLocalHop() int {
	return roll() // want `taintflow\.viaLocalHop transitively reaches rand\.Intn \(process-global randomness\)`
}

// roll calls the global generator directly; that is globalrand's
// finding, not taintflow's (path length one is skipped).
func roll() int { return rand.Intn(6) }

// Map-ordered emission in a helper is a sink with a body, so even the
// direct call is a taintflow finding.
func emits(m map[string]int) {
	helper.Emit(m) // want `taintflow\.emits transitively reaches map-order-dependent emission in helper\.Emit`
}

// Direct clock read: walltime's finding, not taintflow's.
func direct() time.Time { return time.Now() }

// A seeded source is fine — only the process-global functions are
// sinks.
func seeded(r *rand.Rand) int { return r.Intn(6) }

// Sorted emission and pure helpers reach no sink.
func clean(m map[string]int) int {
	helper.EmitSorted(m)
	return helper.Pure(len(m))
}
