// Fixture for the spanpair analyzer: every Begin must be End-ed on all
// paths, by a dominating End or a defer; escapes transfer ownership.
package spanpair

import (
	"dpml/internal/sim"
	"dpml/internal/trace"
)

func work() {}

func deferred(t *trace.Recorder, now sim.Time) {
	sp := t.BeginSpan(0, "reduce", now)
	defer sp.End(now)
	work()
}

func deferredClosure(t *trace.Recorder, now sim.Time) {
	coll := t.BeginCollective(0, "allreduce", 1024, now)
	defer func() { coll.End(now) }()
	work()
}

func straightLine(t *trace.Recorder, now sim.Time) {
	sp := t.BeginSpan(0, "reduce", now)
	work()
	sp.End(now)
}

func bothBranches(t *trace.Recorder, now sim.Time, ok bool) {
	sp := t.BeginSpan(0, "reduce", now)
	if ok {
		sp.End(now)
	} else {
		sp.End(now)
	}
}

func escapes(t *trace.Recorder, now sim.Time) *trace.Span {
	sp := t.BeginSpan(0, "reduce", now)
	return sp
}

func discarded(t *trace.Recorder, now sim.Time) {
	t.BeginSpan(0, "reduce", now) // want `span discarded: the result of BeginSpan must be End-ed`
}

func blank(t *trace.Recorder, now sim.Time) {
	_ = t.BeginCollective(0, "allreduce", 1024, now) // want `span assigned to _ is never End-ed`
}

func oneBranch(t *trace.Recorder, now sim.Time, ok bool) {
	sp := t.BeginSpan(0, "reduce", now) // want `span "sp" from BeginSpan is not End-ed on every path`
	if ok {
		sp.End(now)
	}
}

func reassigned(t *trace.Recorder, now sim.Time) {
	sp := t.BeginSpan(0, "reduce", now) // want `span "sp" from BeginSpan is not End-ed on every path`
	sp = t.BeginSpan(0, "gather", now)
	sp.End(now)
}

func loopOnly(t *trace.Recorder, now sim.Time, n int) {
	sp := t.BeginSpan(0, "reduce", now) // want `span "sp" from BeginSpan is not End-ed on every path`
	for i := 0; i < n; i++ {
		sp.End(now)
	}
}

// crossShardEnd is the sharded-kernel handoff pattern: the span begins
// in the caller's LP context and is End-ed inside an event callback
// scheduled on a different LP — under a sharded coordinator, a different
// kernel goroutine (rendezvous completions and SHArP wakeups do exactly
// this). Capturing the span in the event closure transfers ownership to
// the destination context, so no finding: the obligation moves with the
// event, it does not leak.
func crossShardEnd(t *trace.Recorder, k *sim.Kernel, now sim.Time) {
	sp := t.BeginSpan(0, "rendezvous", now)
	k.AfterOn(1, 100, func() { sp.End(now + 100) })
}

// crossShardBeginInCallback: the event closure is its own scope, so a
// Begin inside it carries its own obligation even though the closure
// runs on another shard — discarding it there is still a leak.
func crossShardBeginInCallback(t *trace.Recorder, k *sim.Kernel, now sim.Time) {
	k.AfterOn(1, 100, func() {
		t.BeginSpan(0, "reduce", now) // want `span discarded: the result of BeginSpan must be End-ed`
	})
}

// crossShardChained: begin on the source, hop through the NET LP, End on
// the destination — the full two-hop fabric path. Each capture hands the
// span to the next context; the final owner Ends it.
func crossShardChained(t *trace.Recorder, k *sim.Kernel, now sim.Time) {
	sp := t.BeginSpan(0, "wire", now)
	k.AfterNet(0, func() {
		k.AfterOn(2, 200, func() { sp.End(now + 200) })
	})
}
