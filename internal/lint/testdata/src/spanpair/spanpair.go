// Fixture for the spanpair analyzer: every Begin must be End-ed on all
// paths, by a dominating End or a defer; escapes transfer ownership.
package spanpair

import (
	"dpml/internal/sim"
	"dpml/internal/trace"
)

func work() {}

func deferred(t *trace.Recorder, now sim.Time) {
	sp := t.BeginSpan(0, "reduce", now)
	defer sp.End(now)
	work()
}

func deferredClosure(t *trace.Recorder, now sim.Time) {
	coll := t.BeginCollective(0, "allreduce", 1024, now)
	defer func() { coll.End(now) }()
	work()
}

func straightLine(t *trace.Recorder, now sim.Time) {
	sp := t.BeginSpan(0, "reduce", now)
	work()
	sp.End(now)
}

func bothBranches(t *trace.Recorder, now sim.Time, ok bool) {
	sp := t.BeginSpan(0, "reduce", now)
	if ok {
		sp.End(now)
	} else {
		sp.End(now)
	}
}

func escapes(t *trace.Recorder, now sim.Time) *trace.Span {
	sp := t.BeginSpan(0, "reduce", now)
	return sp
}

func discarded(t *trace.Recorder, now sim.Time) {
	t.BeginSpan(0, "reduce", now) // want `span discarded: the result of BeginSpan must be End-ed`
}

func blank(t *trace.Recorder, now sim.Time) {
	_ = t.BeginCollective(0, "allreduce", 1024, now) // want `span assigned to _ is never End-ed`
}

func oneBranch(t *trace.Recorder, now sim.Time, ok bool) {
	sp := t.BeginSpan(0, "reduce", now) // want `span "sp" from BeginSpan is not End-ed on every path`
	if ok {
		sp.End(now)
	}
}

func reassigned(t *trace.Recorder, now sim.Time) {
	sp := t.BeginSpan(0, "reduce", now) // want `span "sp" from BeginSpan is not End-ed on every path`
	sp = t.BeginSpan(0, "gather", now)
	sp.End(now)
}

func loopOnly(t *trace.Recorder, now sim.Time, n int) {
	sp := t.BeginSpan(0, "reduce", now) // want `span "sp" from BeginSpan is not End-ed on every path`
	for i := 0; i < n; i++ {
		sp.End(now)
	}
}
