// Package sendpath exercises the outbox-discipline analyzer: code in
// one LP class may not schedule directly on another class's kernel
// (Kernel.At/After/Reschedule) or wake another class's signal
// (Signal.Fire/FireAll); crossing the shard boundary must go through
// the AfterOn/AfterNet outboxes.
package sendpath

import "dpml/internal/sim"

// netSide is coordinator-side state.
//
//dpml:owner net
type netSide struct {
	k    *sim.Kernel
	done sim.Signal
}

// nodeSide is node-LP state.
//
//dpml:owner node
type nodeSide struct {
	k     *sim.Kernel
	ready sim.Signal
}

// A proc body scheduling directly on the net kernel bypasses the
// outbox.
func badAfter(p *sim.Proc, ns *netSide) {
	ns.k.After(5, func() {}) // want `sendpath: Kernel\.After schedules directly on a net-LP kernel from a node-LP context: sendpath\.badAfter \(runs as a proc body`
}

func badAt(p *sim.Proc, ns *netSide) {
	ns.k.At(0, func() {}) // want `Kernel\.At schedules directly on a net-LP kernel from a node-LP context`
}

func badReschedule(p *sim.Proc, ns *netSide, e *sim.Event) {
	ns.k.Reschedule(e, 10) // want `Kernel\.Reschedule schedules directly on a net-LP kernel`
}

// The class is traced through locals and through NetKernel().
func badLocal(p *sim.Proc, ns *netSide) {
	nk := ns.k
	nk.After(5, func() {}) // want `Kernel\.After schedules directly on a net-LP kernel`
}

func badNetKernel(p *sim.Proc, c *sim.Coordinator) {
	c.NetKernel().After(1, func() {}) // want `schedules directly on a net-LP kernel from a node-LP context`
}

// The reverse direction: a net callback poking a node kernel or waking
// a node-owned signal, directly or through a helper.
func badNetToNode(ns *netSide, nb *nodeSide) {
	ns.k.AfterNet(0, func() {
		nb.k.After(2, func() {}) // want `schedules directly on a node-LP kernel from a net-LP context: the callback at .*AfterNet`
	})
}

func badWakeDeep(ns *netSide, nb *nodeSide) {
	ns.k.AfterNet(0, func() { wakeNode(nb) })
}

func wakeNode(nb *nodeSide) {
	nb.ready.Fire() // want `Signal\.Fire wakes the node-owned signal sendpath\.nodeSide\.ready from a net-LP context: the callback at .*AfterNet\) → sendpath\.wakeNode`
}

// Legal patterns: same-class scheduling and wakes, and the outbox
// routing itself.
func okOwnKernel(p *sim.Proc, nb *nodeSide) {
	nb.k.After(3, func() {})
	nb.ready.FireAll()
}

func okOutbox(p *sim.Proc, ns *netSide) {
	p.Kernel().AfterNet(0, func() { ns.done.Fire() })
}

func okNetOwn(ns *netSide) {
	ns.k.AfterNet(0, func() { ns.done.Fire() })
}
