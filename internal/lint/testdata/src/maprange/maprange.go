// Fixture for the maprange analyzer: map iteration feeding an
// order-sensitive sink (prints, Write* methods, the metrics registry,
// returned slices) is flagged; the collect-sort-emit idiom and
// order-insensitive aggregations are not.
package maprange

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dpml/internal/metrics"
)

func printed(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside map iteration emits in map order`
	}
}

func written(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString inside map iteration writes in map order`
	}
	return b.String()
}

func registered(reg *metrics.Registry, m map[string]float64) {
	for k, v := range m {
		reg.Set(k, "count", v) // want `metrics\.Registry\.Set inside map iteration fixes registry order`
	}
}

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to returned slice "out" inside map iteration leaks map order`
	}
	return out
}

func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
