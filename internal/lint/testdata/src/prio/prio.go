// Fixture for the prio analyzer: a miniature of the kernel's event-key
// discipline. Keys may be minted only in nextPrio, and the prio/raw
// slots may only be fed existing keys or nextPrio/permKey results.
package prio

type Time int64

type Event struct {
	at   Time
	prio uint64
	raw  uint64
}

type Kernel struct {
	oseq []uint64
}

// nextPrio is the one sanctioned minting site: the <<44 packing is
// legal here and nowhere else.
func (k *Kernel) nextPrio(origin int32) uint64 {
	i := int(origin)
	k.oseq[i]++
	return uint64(origin+1)<<44 | k.oseq[i]
}

func (k *Kernel) permKey(at Time, raw uint64, exec int32) uint64 {
	_ = at
	_ = exec
	return raw
}

func (k *Kernel) push(at Time, prio uint64, exec int32) *Event {
	key := k.permKey(at, prio, exec)
	return &Event{at: at, prio: key, raw: prio} // existing keys flow freely
}

func (k *Kernel) update(e *Event, at Time, prio uint64) {
	e.at, e.prio = at, prio // moving a key between slots is legal
}

func (k *Kernel) reschedule(e *Event, t Time) {
	raw := k.nextPrio(0)
	e.raw = raw // freshly minted key is legal
	k.update(e, t, k.permKey(t, raw, 0))
}

const originBlock = 1 << 44 // want `origin-block packing \(<<44\) outside Kernel\.nextPrio`

func (k *Kernel) forge(origin int32) uint64 {
	return uint64(origin+1)<<44 | 7 // want `origin-block packing \(<<44\) outside Kernel\.nextPrio`
}

func (k *Kernel) stampLiteral(e *Event) {
	e.prio = 99 // want `event key slot "prio" assigned from a non-key expression`
}

func (k *Kernel) stampArithmetic(e *Event, a, b uint64) {
	e.raw = a | b // want `event key slot "raw" assigned from a non-key expression`
}

func (k *Kernel) buildForged(at Time) *Event {
	return &Event{
		at:   at,
		prio: uint64(at) * 3, // want `event key slot "prio" initialized from a non-key expression`
		raw:  0,              // want `event key slot "raw" initialized from a non-key expression`
	}
}

func (k *Kernel) pushForged(at Time) {
	k.push(at, uint64(at)+1, 0)   // want `uint64 argument to push is not a minted key`
	k.update(&Event{}, at, 12345) // want `uint64 argument to update is not a minted key`
	k.push(at, k.nextPrio(0), 0)  // minted at the call site: legal
	e := k.push(at, k.oseq[0], 0) // want `uint64 argument to push is not a minted key`
	k.update(e, at, e.prio)       // moving an existing key: legal
}
