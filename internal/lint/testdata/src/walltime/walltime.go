// Fixture for the walltime analyzer. This package's import path is not
// on the exempt list, so every host-clock read must be flagged; pure
// constructors and conversions must not be.
package walltime

import "time"

func leak() time.Duration {
	start := time.Now()          // want `time\.Now reads the host clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the host clock`
	return time.Since(start)     // want `time\.Since reads the host clock`
}

func wait(done chan struct{}) {
	select {
	case <-done:
	case <-time.After(time.Second): // want `time\.After reads the host clock`
	}
}

func pure() time.Duration {
	d, err := time.ParseDuration("3ms")
	if err != nil {
		return 2 * time.Millisecond
	}
	return d
}
