// Fixture for the floateq analyzer: exact float comparison is flagged,
// ordered comparison and integer comparison are not.
package floateq

func eq(a, b float64) bool {
	return a == b // want `== on floating-point operands`
}

func neq(a float32, b float64) bool {
	return float64(a) != b // want `!= on floating-point operands`
}

func mixed(a float64, b int) bool {
	return a == float64(b) // want `== on floating-point operands`
}

func ordered(a, b float64) bool { return a < b }

func ints(a, b int) bool { return a == b }
