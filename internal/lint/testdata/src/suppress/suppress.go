// Fixture for the suppression machinery: a used allowance silences its
// finding, an unused one is itself a finding, and malformed or unknown
// allowances are reported.
package suppress

func used(a, b float64) bool {
	return a == b //dpml:allow floateq -- oracle: exactness is the point here
}

func ownLine(a float64) bool {
	//dpml:allow floateq -- sentinel: zero is assigned, never computed
	return a == 0
}

func unusedAllowance(a, b int) bool {
	return a == b //dpml:allow floateq -- int compare needs no allowance // want `unused suppression: no floateq finding on the allowed line`
}

func unknownAnalyzer(a, b float64) bool {
	return a < b //dpml:allow speling -- no such analyzer // want `suppression names unknown analyzer "speling"`
}

func missingReason(a, b float64) bool {
	return a != b //dpml:allow floateq // want `suppression without a reason` `!= on floating-point operands`
}
