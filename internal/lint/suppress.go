package lint

import (
	"bytes"
	"go/token"
	"strings"
	"unicode"
)

// suppressPrefix starts an inline allowance: a finding of the named
// analyzer on the suppression's target line is dropped. A suppression
// trailing code applies to its own line; one on a line of its own
// applies to the next line. The " -- reason" is mandatory: an allowance
// without a recorded justification is a finding in itself.
const suppressPrefix = "//dpml:allow"

type suppression struct {
	analyzer string
	reason   string
	file     string
	line     int // target line findings must be on
	pos      token.Position
	used     bool
}

// allowDirective is the parsed form of one //dpml:allow comment.
type allowDirective struct {
	Analyzer string
	Reason   string
}

// parseAllowDirective parses a raw comment text. ok is false when the
// text is not an allow directive at all (wrong prefix, or a longer
// //dpml:allowXyz marker). A directive with a missing analyzer name or
// reason parses with the corresponding field empty — the caller turns
// that into a malformed-suppression finding.
func parseAllowDirective(text string) (allowDirective, bool) {
	rest, found := strings.CutPrefix(text, suppressPrefix)
	if !found {
		return allowDirective{}, false
	}
	if rest == "" {
		return allowDirective{}, true
	}
	if rest[0] != ' ' && rest[0] != '\t' {
		return allowDirective{}, false // some other //dpml:allowXyz marker
	}
	if strings.ContainsAny(rest, "\n\r") {
		return allowDirective{}, false // not a line comment
	}
	// The analyzer name is the first whitespace-separated token; the
	// reason is whatever follows " -- ". Anything else after the name
	// (including nothing) counts as a missing reason.
	rest = strings.TrimSpace(rest)
	name, tail := rest, ""
	if i := strings.IndexFunc(rest, unicode.IsSpace); i >= 0 {
		name, tail = rest[:i], rest[i:]
	}
	reason, okReason := strings.CutPrefix(strings.TrimSpace(tail), "-- ")
	if !okReason {
		reason = ""
	}
	return allowDirective{Analyzer: name, Reason: strings.TrimSpace(reason)}, true
}

// Suppression is one //dpml:allow site, for the -suppressions audit
// table: where it is, which analyzer it silences, and why.
type Suppression struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// Suppressions lists every //dpml:allow comment in pkgs (including
// malformed ones, whose Analyzer or Reason may be empty) in file
// order, so the whole suppression budget is reviewable at a glance.
func Suppressions(pkgs []*Package) []Suppression {
	var out []Suppression
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseAllowDirective(c.Text)
					if !ok {
						continue
					}
					out = append(out, Suppression{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: d.Analyzer,
						Reason:   d.Reason,
					})
				}
			}
		}
	}
	return out
}

// applySuppressions drops findings covered by a used //dpml:allow
// comment and appends findings for malformed, unknown, or unused
// suppressions (analyzer name "suppress", so they are themselves
// governed by the same reporting pipeline).
func applySuppressions(pkgs []*Package, analyzers []*Analyzer, findings []Finding) []Finding {
	known := map[string]bool{"suppress": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	active := map[string]bool{}
	for _, a := range analyzers {
		active[a.Name] = true
	}

	// out must not alias findings: suppress-findings are appended while
	// the original slice is still being read below.
	var sups []*suppression
	out := make([]Finding, 0, len(findings))
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, okD := parseAllowDirective(c.Text)
					if !okD {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					switch {
					case d.Analyzer == "":
						out = append(out, Finding{Analyzer: "suppress", Pos: pos,
							Message: "malformed suppression: missing analyzer name"})
						continue
					case !known[d.Analyzer]:
						out = append(out, Finding{Analyzer: "suppress", Pos: pos,
							Message: "suppression names unknown analyzer " + strconvQuote(d.Analyzer)})
						continue
					case d.Reason == "":
						out = append(out, Finding{Analyzer: "suppress", Pos: pos,
							Message: "suppression without a reason: write //dpml:allow " + d.Analyzer + " -- <why>"})
						continue
					}
					if !active[d.Analyzer] {
						continue // analyzer not in this run; leave it alone
					}
					sups = append(sups, &suppression{
						analyzer: d.Analyzer, reason: d.Reason,
						file: pos.Filename, line: targetLine(pkg, pos), pos: pos,
					})
				}
			}
		}
	}

	for _, f := range findings {
		suppressed := false
		for _, s := range sups {
			if s.analyzer == f.Analyzer && s.file == f.Pos.Filename && s.line == f.Pos.Line {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, s := range sups {
		if !s.used {
			out = append(out, Finding{Analyzer: "suppress", Pos: s.pos,
				Message: "unused suppression: no " + s.analyzer + " finding on the allowed line"})
		}
	}
	return out
}

// targetLine decides which line a suppression covers: its own line when
// code precedes the comment, the next line otherwise.
func targetLine(pkg *Package, pos token.Position) int {
	src, ok := pkg.Src[pos.Filename]
	if !ok {
		return pos.Line
	}
	lineStart := 0
	if pos.Offset <= len(src) {
		if i := bytes.LastIndexByte(src[:pos.Offset], '\n'); i >= 0 {
			lineStart = i + 1
		}
	}
	if len(bytes.TrimSpace(src[lineStart:pos.Offset])) == 0 {
		return pos.Line + 1
	}
	return pos.Line
}

func strconvQuote(s string) string { return `"` + s + `"` }
