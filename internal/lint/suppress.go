package lint

import (
	"bytes"
	"go/token"
	"strings"
)

// suppressPrefix starts an inline allowance: a finding of the named
// analyzer on the suppression's target line is dropped. A suppression
// trailing code applies to its own line; one on a line of its own
// applies to the next line. The " -- reason" is mandatory: an allowance
// without a recorded justification is a finding in itself.
const suppressPrefix = "//dpml:allow"

type suppression struct {
	analyzer string
	reason   string
	file     string
	line     int // target line findings must be on
	pos      token.Position
	used     bool
}

// applySuppressions drops findings covered by a used //dpml:allow
// comment and appends findings for malformed, unknown, or unused
// suppressions (analyzer name "suppress", so they are themselves
// governed by the same reporting pipeline).
func applySuppressions(pkgs []*Package, analyzers []*Analyzer, findings []Finding) []Finding {
	known := map[string]bool{"suppress": true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	active := map[string]bool{}
	for _, a := range analyzers {
		active[a.Name] = true
	}

	// out must not alias findings: suppress-findings are appended while
	// the original slice is still being read below.
	var sups []*suppression
	out := make([]Finding, 0, len(findings))
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, suppressPrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, suppressPrefix)
					if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
						continue // some other //dpml:allowXyz marker
					}
					// The analyzer name is the first token; the reason is
					// whatever follows " -- ". Anything else after the name
					// (including nothing) counts as a missing reason.
					name, tail, _ := strings.Cut(strings.TrimSpace(rest), " ")
					reason, okReason := strings.CutPrefix(strings.TrimSpace(tail), "-- ")
					switch {
					case name == "":
						out = append(out, Finding{Analyzer: "suppress", Pos: pos,
							Message: "malformed suppression: missing analyzer name"})
						continue
					case !known[name]:
						out = append(out, Finding{Analyzer: "suppress", Pos: pos,
							Message: "suppression names unknown analyzer " + strconvQuote(name)})
						continue
					case !okReason || strings.TrimSpace(reason) == "":
						out = append(out, Finding{Analyzer: "suppress", Pos: pos,
							Message: "suppression without a reason: write //dpml:allow " + name + " -- <why>"})
						continue
					}
					if !active[name] {
						continue // analyzer not in this run; leave it alone
					}
					sups = append(sups, &suppression{
						analyzer: name, reason: strings.TrimSpace(reason),
						file: pos.Filename, line: targetLine(pkg, pos), pos: pos,
					})
				}
			}
		}
	}

	for _, f := range findings {
		suppressed := false
		for _, s := range sups {
			if s.analyzer == f.Analyzer && s.file == f.Pos.Filename && s.line == f.Pos.Line {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, s := range sups {
		if !s.used {
			out = append(out, Finding{Analyzer: "suppress", Pos: s.pos,
				Message: "unused suppression: no " + s.analyzer + " finding on the allowed line"})
		}
	}
	return out
}

// targetLine decides which line a suppression covers: its own line when
// code precedes the comment, the next line otherwise.
func targetLine(pkg *Package, pos token.Position) int {
	src, ok := pkg.Src[pos.Filename]
	if !ok {
		return pos.Line
	}
	lineStart := 0
	if pos.Offset <= len(src) {
		if i := bytes.LastIndexByte(src[:pos.Offset], '\n'); i >= 0 {
			lineStart = i + 1
		}
	}
	if len(bytes.TrimSpace(src[lineStart:pos.Offset])) == 0 {
		return pos.Line + 1
	}
	return pos.Line
}

func strconvQuote(s string) string { return `"` + s + `"` }
