package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// callgraph.go builds the module-wide call graph the interprocedural
// analyzers (taintflow, lpown, sendpath) walk. Resolution is CHA-style
// (class hierarchy analysis): static calls resolve to their one callee,
// and calls through an interface method resolve to that method on every
// named type in scope whose method set satisfies the interface — sound
// for the repo's small interface surface, over-approximate in general.
// Two indirections are not modelled, by design: calls through function
// values (closures stored in fields, callback parameters invoked as
// fn()) produce no edge, and function literals are attributed to their
// enclosing declared function. Both choices are documented in DESIGN.md
// §10; the kernel's runtime assertions remain the backstop for what the
// graph cannot see.

// CGNode is one function in the call graph. Fn is the canonical
// *types.Func (generic instantiations are folded into their origin).
// Decl and Pkg are set only for functions whose bodies are in scope;
// out-of-scope callees (the standard library) appear as body-less leaf
// nodes so sinks like time.Now are still addressable.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []*CGEdge
	In   []*CGEdge
}

// Name returns the node's qualified display name: "pkg.Func" or
// "pkg.(*T).Method", with the package's base name, matching how a
// reader would write the call in a finding message.
func (n *CGNode) Name() string {
	fn := n.Fn
	name := fn.Name()
	if recv := recvOf(fn); recv != nil {
		name = types.TypeString(recv.Type(), func(p *types.Package) string { return "" }) + "." + name
	}
	if p := fn.Pkg(); p != nil {
		return p.Name() + "." + name
	}
	return name
}

// CGEdge is one call site: Caller invokes Callee at Call. Iface marks
// edges added by interface-method (CHA) resolution rather than a static
// callee.
type CGEdge struct {
	Caller *CGNode
	Callee *CGNode
	Call   *ast.CallExpr
	Iface  bool
}

// CallGraph is the module-wide graph over every function declared in
// the packages it was built from, plus leaf nodes for external callees.
type CallGraph struct {
	nodes map[*types.Func]*CGNode
	order []*CGNode // insertion order: deterministic given package order
}

// Node returns the graph node for fn (folding generic instantiations),
// or nil if fn was never seen.
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Nodes returns every node in deterministic build order.
func (g *CallGraph) Nodes() []*CGNode { return g.order }

func (g *CallGraph) intern(fn *types.Func) *CGNode {
	fn = fn.Origin()
	if n, ok := g.nodes[fn]; ok {
		return n
	}
	n := &CGNode{Fn: fn}
	g.nodes[fn] = n
	g.order = append(g.order, n)
	return n
}

// BuildCallGraph constructs the graph over pkgs (already sorted by
// import path by the loader, which makes node and edge order — and
// therefore every path reported from the graph — deterministic).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: map[*types.Func]*CGNode{}}
	concrete := concreteTypes(pkgs)

	// First pass: intern every declared function so In/Out edges attach
	// to nodes that know their body and package.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.intern(fn)
				n.Decl, n.Pkg = fd, pkg
			}
		}
	}

	// Second pass: edges. Function literals belong to the enclosing
	// declared function; calls at package scope (var initializers) have
	// no enclosing declaration and are skipped.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				caller := g.intern(fn)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					g.addCall(pkg, caller, call, concrete)
					return true
				})
			}
		}
	}
	return g
}

func (g *CallGraph) addCall(pkg *Package, caller *CGNode, call *ast.CallExpr, concrete []types.Type) {
	callee := calleeFunc(pkg.Info, call)
	if callee == nil {
		return // builtin, conversion, or call through a function value
	}
	recv := recvOf(callee)
	if recv == nil || !types.IsInterface(recv.Type()) {
		g.edge(caller, g.intern(callee), call, false)
		return
	}
	// Interface method: CHA resolution against every concrete named
	// type in scope that implements the receiver interface.
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, t := range concrete {
		impl := t
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(t)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, callee.Pkg(), callee.Name())
		if m, ok := obj.(*types.Func); ok {
			g.edge(caller, g.intern(m), call, true)
		}
	}
}

func (g *CallGraph) edge(caller, callee *CGNode, call *ast.CallExpr, iface bool) {
	for _, e := range caller.Out {
		if e.Callee == callee && e.Call == call {
			return
		}
	}
	e := &CGEdge{Caller: caller, Callee: callee, Call: call, Iface: iface}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// recvOf returns fn's receiver variable, or nil for package functions.
func recvOf(fn *types.Func) *types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	return sig.Recv()
}

// concreteTypes collects every non-interface named type declared in
// pkgs, sorted by package path then name, as the CHA candidate set.
func concreteTypes(pkgs []*Package) []types.Type {
	var out []types.Type
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if types.IsInterface(tn.Type()) {
				continue
			}
			out = append(out, tn.Type())
		}
	}
	return out
}

// reachSinks computes, for every node that can reach a sink through
// call edges, the first edge of a shortest witness path toward each
// sink. Sinks are identified by the sink map (node -> label); the
// result maps node -> sink node -> next edge. Traversal is reverse BFS
// from each sink in sorted label order, visiting In edges in build
// order, so witness paths are deterministic.
func reachSinks(g *CallGraph, sinks map[*CGNode]string) map[*CGNode]map[*CGNode]*CGEdge {
	next := map[*CGNode]map[*CGNode]*CGEdge{}
	ordered := make([]*CGNode, 0, len(sinks))
	for s := range sinks {
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if sinks[ordered[i]] != sinks[ordered[j]] {
			return sinks[ordered[i]] < sinks[ordered[j]]
		}
		return ordered[i].Name() < ordered[j].Name()
	})
	for _, sink := range ordered {
		frontier := []*CGNode{sink}
		for len(frontier) > 0 {
			var nextFrontier []*CGNode
			for _, n := range frontier {
				for _, e := range n.In {
					m := next[e.Caller]
					if m == nil {
						m = map[*CGNode]*CGEdge{}
						next[e.Caller] = m
					}
					if _, seen := m[sink]; seen {
						continue
					}
					if e.Caller == sink {
						continue
					}
					m[sink] = e
					nextFrontier = append(nextFrontier, e.Caller)
				}
			}
			frontier = nextFrontier
		}
	}
	return next
}

// witnessPath reconstructs the call path from n to sink using the next
// map, returning the chain of edges. The first edge's position is where
// the finding is reported; the names along the path go in the message.
func witnessPath(next map[*CGNode]map[*CGNode]*CGEdge, n, sink *CGNode) []*CGEdge {
	var path []*CGEdge
	for n != sink {
		m := next[n]
		if m == nil {
			return path
		}
		e := m[sink]
		if e == nil {
			return path
		}
		path = append(path, e)
		n = e.Callee
		if len(path) > 1024 { // cycle safety; cannot happen with BFS next-edges
			return path
		}
	}
	return path
}

// pathString renders "a → b → c" for a witness path starting at start.
func pathString(start *CGNode, path []*CGEdge) string {
	s := start.Name()
	for _, e := range path {
		s += " → " + e.Callee.Name()
	}
	return s
}
