package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PrioAnalyzer enforces the kernel's tiebreak-minting discipline: every
// event priority key is minted by Kernel.nextPrio (the only place the
// (origin+1)<<44 | counter packing may appear) and only ever moves
// between events, heap slots, and the exploration permutation — never
// recomputed ad hoc. The schedule-exploration layer depends on this
// totally: the salted permutation, the TieSwap transpositions, and the
// schedule digest all treat raw keys as opaque stable identities, so a
// key fabricated outside nextPrio would silently break shard-count
// invariance and systematic replay. The analyzer flags, inside
// internal/sim: the <<44 packing outside nextPrio, assignments or
// composite-literal fields writing the prio/raw key slots from
// non-key expressions, and uint64 arguments to push/update that are
// not minted keys.
var PrioAnalyzer = &Analyzer{
	Name: "prio",
	Doc:  "event tiebreak keys are minted only by Kernel.nextPrio and flow opaquely afterwards",
	Run:  runPrio,
}

func runPrio(p *Pass) {
	if p.Pkg.Path != "dpml/internal/sim" && !strings.HasSuffix(p.Pkg.Path, "testdata/src/prio") {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				prioWalk(p, fd.Name.Name, fd.Body)
				continue
			}
			prioWalk(p, "", decl)
		}
	}
}

// prioWalk checks one declaration's body with its enclosing function
// name ("" for package-level declarations).
func prioWalk(p *Pass, fn string, root ast.Node) {
	if root == nil {
		return
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BinaryExpr:
			if v.Op == token.SHL && isIntLit(v.Y, "44") && fn != "nextPrio" {
				p.Reportf(v.OpPos, "origin-block packing (<<44) outside Kernel.nextPrio; mint event keys with nextPrio")
			}
		case *ast.AssignStmt:
			if len(v.Lhs) != len(v.Rhs) {
				return true
			}
			for i, lhs := range v.Lhs {
				name, ok := slotName(lhs)
				if !ok || !isKeySlot(name) {
					continue
				}
				if !keyShaped(v.Rhs[i]) {
					p.Reportf(v.Rhs[i].Pos(), "event key slot %q assigned from a non-key expression; keys originate in Kernel.nextPrio and may only pass through permKey", name)
				}
			}
		case *ast.CompositeLit:
			for _, el := range v.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				id, ok := kv.Key.(*ast.Ident)
				if !ok || !isKeySlot(id.Name) {
					continue
				}
				if !keyShaped(kv.Value) {
					p.Reportf(kv.Value.Pos(), "event key slot %q initialized from a non-key expression; keys originate in Kernel.nextPrio and may only pass through permKey", id.Name)
				}
			}
		case *ast.CallExpr:
			callee, ok := slotName(v.Fun)
			if !ok || (callee != "push" && callee != "update") {
				return true
			}
			for _, arg := range v.Args {
				if !isUint64(p.Pkg.Info, arg) || keyShaped(arg) {
					continue
				}
				p.Reportf(arg.Pos(), "uint64 argument to %s is not a minted key; pass a value from nextPrio or permKey", callee)
			}
		}
		return true
	})
}

// slotName extracts the terminal identifier of an lvalue or callee
// (x, s.x, pkg.f all yield the final name).
func slotName(e ast.Expr) (string, bool) {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name, true
	case *ast.SelectorExpr:
		return v.Sel.Name, true
	}
	return "", false
}

// isKeySlot reports whether a name is one of the event-key slots.
func isKeySlot(name string) bool { return name == "prio" || name == "raw" }

// keyShaped reports whether an expression is a legal source of key
// material: an existing key (an identifier or field named prio, raw, or
// key) or a fresh mint / perturbation (a nextPrio or permKey call).
func keyShaped(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return keyShaped(v.X)
	case *ast.Ident:
		return isKeySlot(v.Name) || v.Name == "key"
	case *ast.SelectorExpr:
		return isKeySlot(v.Sel.Name) || v.Sel.Name == "key"
	case *ast.CallExpr:
		name, ok := slotName(v.Fun)
		return ok && (name == "nextPrio" || name == "permKey")
	}
	return false
}

// isIntLit reports whether e is the integer literal lit.
func isIntLit(e ast.Expr, lit string) bool {
	bl, ok := e.(*ast.BasicLit)
	return ok && bl.Kind == token.INT && bl.Value == lit
}

// isUint64 reports whether e's static type is uint64 (the key type; the
// instant and LP arguments of push/update are distinct types, so only
// key positions match).
func isUint64(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}
