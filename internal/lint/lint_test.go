package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture loader is shared across tests: the stdlib and module
// packages the fixtures import only need to be type-checked once.
var (
	loaderOnce sync.Once
	testLoader *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			loaderErr = err
			return
		}
		testLoader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return testLoader
}

// runFixture analyzes testdata/src/<name> and diffs the findings
// against the fixture's "// want `regex` [`regex` ...]" comments: every
// finding must match a want on its line, every want must be hit.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	l := fixtureLoader(t)
	dir := filepath.Join(l.Root, "internal", "lint", "testdata", "src", name)
	pkg, err := l.LoadDir(dir, "dpml/internal/lint/testdata/src/"+name)
	if err != nil {
		t.Fatal(err)
	}
	findings := RunModule([]*Package{pkg}, l.Loaded(), analyzers)
	wants := parseWants(t, pkg)

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		text := f.Analyzer + ": " + f.Message
		matched := false
		for _, w := range wants[key] {
			if !w.hit && w.re.MatchString(text) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.hit {
				t.Errorf("%s: no finding matched want `%s`", key, w.re)
			}
		}
	}
}

type want struct {
	re  *regexp.Regexp
	hit bool
}

var wantRE = regexp.MustCompile("`([^`]+)`")

// parseWants scans the raw fixture sources for want comments; the
// expectations are backtick-quoted regexes matched (unanchored) against
// "analyzer: message".
func parseWants(t *testing.T, pkg *Package) map[string][]*want {
	t.Helper()
	out := map[string][]*want{}
	for file, src := range pkg.Src {
		for i, line := range strings.Split(string(src), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			ms := wantRE.FindAllStringSubmatch(line[idx:], -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed want comment (no backtick-quoted regex)", file, i+1)
			}
			key := fmt.Sprintf("%s:%d", file, i+1)
			for _, m := range ms {
				out[key] = append(out[key], &want{re: regexp.MustCompile(m[1])})
			}
		}
	}
	return out
}

func one(t *testing.T, name string) []*Analyzer {
	t.Helper()
	as, err := ByName([]string{name})
	if err != nil {
		t.Fatal(err)
	}
	return as
}

func TestWalltimeFixture(t *testing.T)   { runFixture(t, "walltime", one(t, "walltime")) }
func TestGlobalrandFixture(t *testing.T) { runFixture(t, "globalrand", one(t, "globalrand")) }
func TestMaprangeFixture(t *testing.T)   { runFixture(t, "maprange", one(t, "maprange")) }
func TestSpanpairFixture(t *testing.T)   { runFixture(t, "spanpair", one(t, "spanpair")) }
func TestWaitcheckFixture(t *testing.T)  { runFixture(t, "waitcheck", one(t, "waitcheck")) }
func TestFloateqFixture(t *testing.T)    { runFixture(t, "floateq", one(t, "floateq")) }
func TestPrioFixture(t *testing.T)       { runFixture(t, "prio", one(t, "prio")) }

// The module-analyzer fixtures exercise the interprocedural passes;
// runFixture hands them the loader's full package closure so chains
// through the fixtures' helper subpackages are followed.
func TestTaintflowFixture(t *testing.T) { runFixture(t, "taintflow", one(t, "taintflow")) }
func TestLpownFixture(t *testing.T)     { runFixture(t, "lpown", one(t, "lpown")) }
func TestSendpathFixture(t *testing.T)  { runFixture(t, "sendpath", one(t, "sendpath")) }

// The suppress fixture runs with floateq active: used allowances silence
// their findings, and unused/unknown/reason-less allowances surface as
// "suppress" findings alongside the uncovered floateq one.
func TestSuppressFixture(t *testing.T) { runFixture(t, "suppress", one(t, "floateq")) }

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}
