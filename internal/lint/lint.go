// Package lint is the repo's static-analysis framework: a small harness
// over the standard library's go/ast and go/types (the module is
// dependency-free, so no x/tools) plus seven repo-specific analyzers that
// prove the simulator's determinism and protocol invariants at compile
// time. The dynamic counterparts of these invariants — byte-identical
// results at any worker count, seeded fault plans, the span tiling
// property — are only as strong as the last test run; the analyzers make
// the underlying disciplines unskippable:
//
//   - walltime: virtual-time packages never read the host clock
//   - globalrand: randomness flows from explicitly seeded sources only
//   - maprange: map iteration order never reaches emitted output
//   - spanpair: every trace span Begin is End-ed on all paths
//   - waitcheck: every non-blocking MPI request is waited or discarded
//   - floateq: no ==/!= on floating-point operands in non-test code
//   - prio: event tiebreak keys are minted only by Kernel.nextPrio
//
// Findings can be suppressed, one line at a time, with a
// "//dpml:allow <analyzer> -- reason" comment; the driver verifies every
// suppression is actually used, so stale allowances become findings
// themselves.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Finding is one reported violation, printed as "file:line: analyzer:
// message".
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in its canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WalltimeAnalyzer,
		GlobalrandAnalyzer,
		MaprangeAnalyzer,
		SpanpairAnalyzer,
		WaitcheckAnalyzer,
		FloateqAnalyzer,
		PrioAnalyzer,
	}
}

// ByName resolves analyzer names to analyzers, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Run executes the analyzers over the packages, applies //dpml:allow
// suppressions, appends findings for unused or malformed suppressions,
// and returns everything sorted by position then analyzer name.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Pkg: pkg, analyzer: a, findings: &findings})
		}
	}
	findings = applySuppressions(pkgs, analyzers, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// inspect walks every file of the pass's package.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
