// Package lint is the repo's static-analysis framework: a small harness
// over the standard library's go/ast and go/types (the module is
// dependency-free, so no x/tools) plus ten repo-specific analyzers that
// prove the simulator's determinism and protocol invariants at compile
// time. The dynamic counterparts of these invariants — byte-identical
// results at any worker count, seeded fault plans, the span tiling
// property — are only as strong as the last test run; the analyzers make
// the underlying disciplines unskippable:
//
//   - walltime: virtual-time packages never read the host clock
//   - globalrand: randomness flows from explicitly seeded sources only
//   - maprange: map iteration order never reaches emitted output
//   - spanpair: every trace span Begin is End-ed on all paths
//   - waitcheck: every non-blocking MPI request is waited or discarded
//   - floateq: no ==/!= on floating-point operands in non-test code
//   - prio: event tiebreak keys are minted only by Kernel.nextPrio
//   - taintflow: no transitive call path from the virtual-time packages
//     into the host clock, global randomness, or map-ordered emission
//   - lpown: //dpml:owner-annotated state is touched only by its owning
//     LP class, and cross-LP delays are provably ≥ the lookahead
//   - sendpath: cross-LP communication uses AfterOn/AfterNet outbox
//     routing, never direct scheduling or wakes on another LP's kernel
//
// The first seven run one package at a time; the last three are module
// passes over a CHA call graph (callgraph.go) so a violation hidden
// behind any chain of helpers in any package is still found, with the
// full call path in the finding.
//
// Findings can be suppressed, one line at a time, with a
// "//dpml:allow <analyzer> -- reason" comment; the driver verifies every
// suppression is actually used, so stale allowances become findings
// themselves.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Finding is one reported violation, printed as "file:line: analyzer:
// message".
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named check. Per-package analyzers set Run; whole-
// module analyzers (which need the call graph or cross-package bodies)
// set RunModule instead and are invoked once per driver run.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(p *Pass)
	RunModule func(p *ModulePass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Module carries the whole-module context the interprocedural analyzers
// run against: the packages findings may be reported in (Targets), the
// full set of loaded module packages whose bodies are visible (All, a
// superset of Targets), and the call graph over All.
type Module struct {
	Targets []*Package
	All     []*Package
	Graph   *CallGraph

	own *ownership // lazily built, shared by lpown and sendpath
}

// ownership builds (once) the LP-ownership model over the module.
func (m *Module) ownership() *ownership {
	if m.own == nil {
		m.own = buildOwnership(m)
	}
	return m.own
}

// TargetPkg reports whether findings may be reported in pkg (module
// analyzers see every loaded package but only report in the requested
// ones, like per-package analyzers only run on requested packages).
func (m *Module) TargetPkg(pkg *Package) bool {
	for _, t := range m.Targets {
		if t == pkg {
			return true
		}
	}
	return false
}

// ModulePass carries one module analyzer's run.
type ModulePass struct {
	*Module
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos. Every loaded package shares the
// loader's FileSet, so any target package's resolves positions.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Targets[0].Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves a token.Pos for use inside finding messages
// (call-path steps, registration sites).
func (p *ModulePass) Position(pos token.Pos) token.Position {
	return p.Targets[0].Fset.Position(pos)
}

// Analyzers returns the full suite in its canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WalltimeAnalyzer,
		GlobalrandAnalyzer,
		MaprangeAnalyzer,
		SpanpairAnalyzer,
		WaitcheckAnalyzer,
		FloateqAnalyzer,
		PrioAnalyzer,
		TaintflowAnalyzer,
		LpownAnalyzer,
		SendpathAnalyzer,
	}
}

// ByName resolves analyzer names to analyzers, erroring on unknown names.
func ByName(names []string) ([]*Analyzer, error) {
	all := Analyzers()
	var out []*Analyzer
	for _, n := range names {
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Run executes the analyzers over the packages, applies //dpml:allow
// suppressions, appends findings for unused or malformed suppressions,
// and returns everything sorted by position then analyzer name. Module
// analyzers see only pkgs; use RunModule to hand them dependency bodies.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return RunModule(pkgs, pkgs, analyzers)
}

// RunModule is Run with an explicit whole-module package set: findings
// are reported in targets only, but module analyzers (taintflow, lpown,
// sendpath) build their call graph over all, so chains through helper
// packages outside the target set are still followed. all may be any
// superset of the targets' module-local dependency closure; the loader's
// Loaded method provides it.
func RunModule(targets, all []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range targets {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			a.Run(&Pass{Pkg: pkg, analyzer: a, findings: &findings})
		}
	}
	var mod *Module
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if mod == nil {
			mod = buildModule(targets, all)
		}
		a.RunModule(&ModulePass{Module: mod, analyzer: a, findings: &findings})
	}
	findings = applySuppressions(targets, analyzers, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// buildModule assembles the module context: the union of targets and
// all (deduplicated, sorted by import path for deterministic graph
// order) and the call graph over it.
func buildModule(targets, all []*Package) *Module {
	seen := map[string]*Package{}
	for _, p := range targets {
		seen[p.Path] = p
	}
	for _, p := range all {
		if _, ok := seen[p.Path]; !ok {
			seen[p.Path] = p
		}
	}
	union := make([]*Package, 0, len(seen))
	for _, p := range seen {
		union = append(union, p)
	}
	sort.Slice(union, func(i, j int) bool { return union[i].Path < union[j].Path })
	return &Module{Targets: targets, All: union, Graph: BuildCallGraph(union)}
}

// inspect walks every file of the pass's package.
func (p *Pass) inspect(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
