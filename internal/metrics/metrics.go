// Package metrics is a minimal insertion-ordered metrics registry: named
// float64 gauges/counters snapshotted from the simulator at the end of a
// run. It exists so every layer (kernel, fabric, MPI runtime, trace) can
// export its counters through one structured surface instead of ad-hoc
// report structs, and so tools can render or diff them uniformly.
//
// The registry is write-mostly and tiny; it is not a hot-path object.
// Nothing in the simulation reads it, so filling it cannot perturb
// virtual time.
package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Metric is one named value with an optional unit ("ns", "bytes",
// "events/s", "" for dimensionless).
type Metric struct {
	Name  string
	Unit  string
	Value float64
}

// Registry holds metrics in insertion order (so reports group naturally
// by the subsystem that registered them).
type Registry struct {
	metrics []Metric
	index   map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]int{}}
}

// Set records value under name, creating the metric on first use and
// overwriting on repeats (the unit from the first Set wins).
func (r *Registry) Set(name, unit string, value float64) {
	if i, ok := r.index[name]; ok {
		r.metrics[i].Value = value
		return
	}
	r.index[name] = len(r.metrics)
	r.metrics = append(r.metrics, Metric{Name: name, Unit: unit, Value: value})
}

// Add increments name by delta, creating it at delta on first use.
func (r *Registry) Add(name, unit string, delta float64) {
	if i, ok := r.index[name]; ok {
		r.metrics[i].Value += delta
		return
	}
	r.Set(name, unit, delta)
}

// Get returns the value of name and whether it exists.
func (r *Registry) Get(name string) (float64, bool) {
	i, ok := r.index[name]
	if !ok {
		return 0, false
	}
	return r.metrics[i].Value, true
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.metrics) }

// Snapshot returns a copy of the metrics in insertion order.
func (r *Registry) Snapshot() []Metric {
	out := make([]Metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

// WriteText renders the registry as aligned "name value unit" lines in
// insertion order. Values that are whole numbers print without a
// fractional part.
func (r *Registry) WriteText(w io.Writer) {
	width := 0
	for _, m := range r.metrics {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range r.metrics {
		val := formatValue(m.Value)
		if m.Unit != "" {
			fmt.Fprintf(w, "%-*s  %s %s\n", width, m.Name, val, m.Unit)
		} else {
			fmt.Fprintf(w, "%-*s  %s\n", width, m.Name, val)
		}
	}
}

func formatValue(v float64) string {
	if v == float64(int64(v)) { //dpml:allow floateq -- exact integer-representability test, tolerance would be wrong
		return fmt.Sprintf("%d", int64(v))
	}
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}
