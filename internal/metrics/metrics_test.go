package metrics

import (
	"strings"
	"testing"
)

func TestSetAddGet(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Get("missing"); ok {
		t.Error("Get on empty registry reported a metric")
	}
	r.Set("a", "bytes", 10)
	r.Set("a", "events", 20) // overwrite value; first unit wins
	r.Add("b", "", 1)
	r.Add("b", "", 2.5)
	if v, ok := r.Get("a"); !ok || v != 20 {
		t.Errorf("a = %g, %v; want 20, true", v, ok)
	}
	if v, ok := r.Get("b"); !ok || v != 3.5 {
		t.Errorf("b = %g, %v; want 3.5, true", v, ok)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	snap := r.Snapshot()
	if snap[0].Name != "a" || snap[0].Unit != "bytes" || snap[1].Name != "b" {
		t.Errorf("snapshot order/units wrong: %+v", snap)
	}
	snap[0].Value = 99
	if v, _ := r.Get("a"); v != 20 {
		t.Error("Snapshot aliases registry storage")
	}
}

func TestInsertionOrderSurvivesOverwrite(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"z", "m", "a"} {
		r.Set(n, "", 1)
	}
	r.Set("z", "", 2)
	got := r.Snapshot()
	for i, want := range []string{"z", "m", "a"} {
		if got[i].Name != want {
			t.Fatalf("order[%d] = %q, want %q", i, got[i].Name, want)
		}
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Set("sim.events", "", 1234)
	r.Set("link.util", "", 0.25)
	r.Set("net.bytes", "bytes", 1e6)
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	for _, want := range []string{"sim.events  1234\n", "link.util   0.25\n", "net.bytes   1000000 bytes\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {42, "42"}, {-3, "-3"},
		{0.5, "0.5"}, {0.1234, "0.1234"}, {0.12345, "0.1235"}, {1.50, "1.5"},
	}
	for _, c := range cases {
		if got := formatValue(c.in); got != c.want {
			t.Errorf("formatValue(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}
