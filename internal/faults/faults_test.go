package faults

import (
	"reflect"
	"testing"

	"dpml/internal/sim"
)

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec("straggler@0.25,link")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec.Classes, []Class{ClassStraggler, ClassLink}) {
		t.Fatalf("classes = %v", spec.Classes)
	}
	if want := (0.25 + DefaultIntensity) / 2; spec.Intensity != want {
		t.Fatalf("intensity = %g, want %g", spec.Intensity, want)
	}

	all, err := ParseSpec("all@0.8")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all.Classes, Classes()) || all.Intensity != 0.8 {
		t.Fatalf("all = %+v", all)
	}

	if s, err := ParseSpec(""); err != nil || s != nil {
		t.Fatalf("empty spec: %v %v", s, err)
	}

	for _, bad := range []string{"bogus", "straggler@0", "straggler@1.5", "link@x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}

	// Duplicate classes collapse.
	dup, err := ParseSpec("link,all")
	if err != nil {
		t.Fatal(err)
	}
	if len(dup.Classes) != len(Classes()) {
		t.Fatalf("dup classes = %v", dup.Classes)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec, err := ParseSpec("straggler,nic@0.5")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("round trip %+v -> %q -> %+v", spec, spec.String(), again)
	}
}

func TestInstantiateDeterministic(t *testing.T) {
	sh := Shape{Ranks: 64, Nodes: 8, HCAs: 1}
	spec := &Spec{Classes: Classes(), Intensity: 0.5, Seed: 42}
	a, b := spec.Instantiate(sh), spec.Instantiate(sh)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec gave different plans:\n%+v\n%+v", a, b)
	}
	other := &Spec{Classes: Classes(), Intensity: 0.5, Seed: 43}
	if reflect.DeepEqual(a, other.Instantiate(sh)) {
		t.Fatal("different seeds gave identical plans")
	}
}

func TestInstantiateClassIndependence(t *testing.T) {
	// Enabling a second class must not shift the first class's draw.
	sh := Shape{Ranks: 64, Nodes: 8, HCAs: 1}
	solo := (&Spec{Classes: []Class{ClassStraggler}, Intensity: 0.5, Seed: 7}).Instantiate(sh)
	both := (&Spec{Classes: []Class{ClassStraggler, ClassLink}, Intensity: 0.5, Seed: 7}).Instantiate(sh)
	if !reflect.DeepEqual(solo.Stragglers, both.Stragglers) {
		t.Fatalf("straggler draw shifted when links were enabled:\n%+v\n%+v", solo.Stragglers, both.Stragglers)
	}
	if len(both.Links) == 0 {
		t.Fatal("no link faults generated")
	}
}

func TestInstantiateShapesAndValidity(t *testing.T) {
	for _, sh := range []Shape{
		{Ranks: 2, Nodes: 1, HCAs: 1},
		{Ranks: 448, Nodes: 16, HCAs: 2},
	} {
		for _, intensity := range []float64{0.1, 0.5, 1.0} {
			spec := &Spec{Classes: Classes(), Intensity: intensity, Seed: 1}
			p := spec.Instantiate(sh)
			if p.Empty() {
				t.Fatalf("empty plan for %+v @ %g", sh, intensity)
			}
			if err := p.Validate(sh); err != nil {
				t.Fatalf("%+v @ %g: %v", sh, intensity, err)
			}
		}
	}
}

func TestInstantiateHorizonBoundsWindows(t *testing.T) {
	h := sim.DurationOfSeconds(1)
	spec := &Spec{Classes: Classes(), Intensity: 1, Seed: 3, Horizon: h}
	p := spec.Instantiate(Shape{Ranks: 16, Nodes: 4, HCAs: 1})
	check := func(start, end sim.Time) {
		t.Helper()
		if end == 0 {
			t.Fatalf("open-ended window with horizon set: [%v, 0)", start)
		}
		if end <= start {
			t.Fatalf("empty window [%v, %v)", start, end)
		}
	}
	for _, s := range p.Stragglers {
		check(s.Start, s.End)
	}
	for _, l := range p.Links {
		check(l.Start, l.End)
	}
	for _, n := range p.NICs {
		check(n.Start, n.End)
	}
	for _, o := range p.Sharp {
		check(o.Start, o.End)
	}

	// No horizon: single open-ended window from t=0.
	open := (&Spec{Classes: []Class{ClassStraggler}, Intensity: 0.5, Seed: 3}).Instantiate(Shape{Ranks: 16, Nodes: 4, HCAs: 1})
	for _, s := range open.Stragglers {
		if s.Start != 0 || s.End != 0 {
			t.Fatalf("open-ended plan has bounded window %+v", s)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	sh := Shape{Ranks: 4, Nodes: 2, HCAs: 1}
	bad := []*Plan{
		{Stragglers: []Straggler{{Rank: 9, Factor: 2}}},
		{Stragglers: []Straggler{{Rank: 0, Factor: 0.5}}},
		{Stragglers: []Straggler{{Rank: 0, Factor: 2, Start: 10, End: 5}}},
		{Links: []LinkFault{{Node: 5, Factor: 0.5}}},
		{Links: []LinkFault{{Node: 0, Factor: 0}}},
		{Links: []LinkFault{{Node: 0, HCA: 3, Factor: 0.5}}},
		{NICs: []NICThrottle{{Node: 0, Factor: 0.1}}},
		{Sharp: []SharpOutage{{Start: 4, End: 4}}},
	}
	for i, p := range bad {
		if err := p.Validate(sh); err == nil {
			t.Errorf("plan %d accepted: %+v", i, p)
		}
	}
	if err := (*Plan)(nil).Validate(sh); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
	if !(*Plan)(nil).Empty() {
		t.Error("nil plan not empty")
	}
}
