package faults

import (
	"testing"
)

// FuzzParseSpec drives arbitrary flag strings through ParseSpec. The
// parser must never panic; on acceptance the spec must be well-formed
// (known classes, no duplicates, intensity in (0,1]), render back through
// String into a string it re-parses identically, and instantiate into a
// plan that passes Validate.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("straggler")
	f.Add("straggler@0.25,link")
	f.Add("all@0.8")
	f.Add("all,straggler@1")
	f.Add("nic@0,link")
	f.Add("sharp@1.5")
	f.Add("link@")
	f.Add("@0.5")
	f.Add(",,,")
	f.Add("straggler@0.3,straggler@0.9")
	f.Add("all@NaN")
	f.Add(" link @ 0.5 ")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		if spec == nil {
			return // empty input: faults off
		}
		if len(spec.Classes) == 0 {
			t.Fatalf("accepted %q with no classes", s)
		}
		known := map[Class]bool{}
		for _, c := range Classes() {
			known[c] = true
		}
		seen := map[Class]bool{}
		for _, c := range spec.Classes {
			if !known[c] {
				t.Fatalf("accepted %q with unknown class %q", s, c)
			}
			if seen[c] {
				t.Fatalf("accepted %q with duplicate class %q", s, c)
			}
			seen[c] = true
		}
		if !(spec.Intensity > 0 && spec.Intensity <= 1) {
			t.Fatalf("accepted %q with intensity %g", s, spec.Intensity)
		}
		// String must re-parse to the identical spec: same classes in the
		// same order, bit-identical intensity (%g round-trips float64).
		back, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("String %q of accepted %q does not re-parse: %v", spec.String(), s, err)
		}
		if back == nil || len(back.Classes) != len(spec.Classes) || back.Intensity != spec.Intensity {
			t.Fatalf("round trip %q -> %q -> %+v, want %+v", s, spec.String(), back, spec)
		}
		for i := range back.Classes {
			if back.Classes[i] != spec.Classes[i] {
				t.Fatalf("round trip reordered classes: %v vs %v", back.Classes, spec.Classes)
			}
		}
		// An accepted spec must instantiate into a valid plan on a
		// representative shape.
		sh := Shape{Ranks: 12, Nodes: 3, HCAs: 2}
		plan := spec.Instantiate(sh)
		if err := plan.Validate(sh); err != nil {
			t.Fatalf("plan from %q fails validation: %v", s, err)
		}
	})
}
