// Package faults defines deterministic, seeded fault plans that perturb a
// simulated job without touching the healthy-path results: per-rank
// straggler windows (compute and per-message CPU slowdown), link
// degradation and flapping (time-varying link capacity), per-NIC
// message-rate throttling, and SHArP offload outages.
//
// A Plan is pure data. The mpi layer installs it into a World (see
// mpi.Config.Faults): straggler windows are consulted on the perturbed
// rank's hot paths, while link, NIC, and SHArP events are scheduled as
// ordinary kernel events at their window boundaries. Plans are immutable
// once built, so one Plan may be shared by many concurrent worlds (the
// sweep pool does exactly that). A nil or empty Plan is the healthy
// fabric, bit-for-bit identical to a run with no fault layer at all.
//
// Plans are usually generated from a Spec: a compact description (fault
// classes, an intensity knob, a seed) that is instantiated for a concrete
// job shape. Identical (Spec, seed, shape) always yield identical Plans;
// different seeds draw different ranks, windows, and factors.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"dpml/internal/sim"
)

// Straggler slows one rank down by Factor during [Start, End): its
// reduction compute and its per-message CPU overheads (sender and
// receiver side) take Factor times as long. This generalizes the
// per-message jitter knob: instead of uniform noise on every message, a
// chosen rank is coherently slow for a window of virtual time. End == 0
// means the window never closes. Overlapping windows take the largest
// factor.
type Straggler struct {
	Rank   int
	Start  sim.Time
	End    sim.Time // 0 = until the end of the run
	Factor float64  // >= 1: how many times slower the rank runs
}

// LinkFault degrades both directions of one node's HCA to Factor of the
// nominal capacity during [Start, End): in-flight flows are re-water-
// filled at the boundary, so a congested link slows every flow crossing
// it mid-transfer. Multiple disjoint windows on the same link model a
// flapping link. End == 0 means the degradation is permanent.
type LinkFault struct {
	Node   int
	HCA    int
	Start  sim.Time
	End    sim.Time // 0 = until the end of the run
	Factor float64  // (0, 1]: remaining fraction of nominal capacity
}

// NICThrottle multiplies the injection gap (the inverse message rate) of
// one node's HCA by Factor during [Start, End), modelling a NIC whose
// doorbell path is degraded. End == 0 means permanent.
type NICThrottle struct {
	Node   int
	HCA    int
	Start  sim.Time
	End    sim.Time // 0 = until the end of the run
	Factor float64  // >= 1: message-gap multiplier
}

// SharpOutage marks the fabric's SHArP offload unavailable during
// [Start, End): operations that would start inside the window fail with
// fabric.ErrSharpOffline and the core designs fall back to host-based
// reduction. Operations already in the switch tree complete (failure is
// detected at operation start, as a production library's completion
// timeout would). End == 0 means the offload never recovers.
type SharpOutage struct {
	Start sim.Time
	End   sim.Time // 0 = until the end of the run
}

// Plan is one deterministic set of fault events in virtual time.
type Plan struct {
	Stragglers []Straggler
	Links      []LinkFault
	NICs       []NICThrottle
	Sharp      []SharpOutage
}

// Empty reports whether the plan perturbs anything at all.
func (p *Plan) Empty() bool {
	return p == nil ||
		len(p.Stragglers) == 0 && len(p.Links) == 0 && len(p.NICs) == 0 && len(p.Sharp) == 0
}

// Shape describes the job a plan is validated against (and generated
// for): global rank count, nodes in use, and HCAs per node.
type Shape struct {
	Ranks int
	Nodes int
	HCAs  int
}

func window(start, end sim.Time) error {
	if start < 0 {
		return fmt.Errorf("negative start %v", start)
	}
	if end != 0 && end <= start {
		return fmt.Errorf("window [%v, %v) is empty", start, end)
	}
	return nil
}

// Validate checks every event against the job shape and returns the
// first problem found.
func (p *Plan) Validate(sh Shape) error {
	if p == nil {
		return nil
	}
	for i, s := range p.Stragglers {
		if s.Rank < 0 || s.Rank >= sh.Ranks {
			return fmt.Errorf("faults: straggler %d: rank %d out of range [0,%d)", i, s.Rank, sh.Ranks)
		}
		if s.Factor < 1 {
			return fmt.Errorf("faults: straggler %d: factor %g < 1", i, s.Factor)
		}
		if err := window(s.Start, s.End); err != nil {
			return fmt.Errorf("faults: straggler %d: %w", i, err)
		}
	}
	for i, l := range p.Links {
		if l.Node < 0 || l.Node >= sh.Nodes {
			return fmt.Errorf("faults: link fault %d: node %d out of range [0,%d)", i, l.Node, sh.Nodes)
		}
		if l.HCA < 0 || l.HCA >= sh.HCAs {
			return fmt.Errorf("faults: link fault %d: hca %d out of range [0,%d)", i, l.HCA, sh.HCAs)
		}
		if l.Factor <= 0 || l.Factor > 1 {
			return fmt.Errorf("faults: link fault %d: factor %g outside (0,1]", i, l.Factor)
		}
		if err := window(l.Start, l.End); err != nil {
			return fmt.Errorf("faults: link fault %d: %w", i, err)
		}
	}
	for i, n := range p.NICs {
		if n.Node < 0 || n.Node >= sh.Nodes {
			return fmt.Errorf("faults: nic throttle %d: node %d out of range [0,%d)", i, n.Node, sh.Nodes)
		}
		if n.HCA < 0 || n.HCA >= sh.HCAs {
			return fmt.Errorf("faults: nic throttle %d: hca %d out of range [0,%d)", i, n.HCA, sh.HCAs)
		}
		if n.Factor < 1 {
			return fmt.Errorf("faults: nic throttle %d: factor %g < 1", i, n.Factor)
		}
		if err := window(n.Start, n.End); err != nil {
			return fmt.Errorf("faults: nic throttle %d: %w", i, err)
		}
	}
	for i, o := range p.Sharp {
		if err := window(o.Start, o.End); err != nil {
			return fmt.Errorf("faults: sharp outage %d: %w", i, err)
		}
	}
	return nil
}

// Class names one fault category a Spec can generate.
type Class string

// Generated fault classes.
const (
	ClassStraggler Class = "straggler"
	ClassLink      Class = "link"
	ClassNIC       Class = "nic"
	ClassSharp     Class = "sharp"
)

// Classes lists every generatable class in canonical order.
func Classes() []Class {
	return []Class{ClassStraggler, ClassLink, ClassNIC, ClassSharp}
}

// DefaultIntensity is used when a spec string names a class without an
// explicit @intensity.
const DefaultIntensity = 0.5

// Spec compactly describes a family of plans: which fault classes to
// generate, how hard to push (Intensity in (0,1] scales both the number
// of faulted components and the severity of each fault), and the seed
// that makes the draw deterministic. Horizon > 0 confines fault windows
// to [0, Horizon) with flapping sub-windows; Horizon == 0 generates
// open-ended faults active from t=0, which perturb a run of any length.
type Spec struct {
	Classes   []Class
	Intensity float64
	Seed      uint64
	Horizon   sim.Duration
}

// ParseSpec parses a -faults style flag value: a comma-separated list of
// classes, each with an optional @intensity, e.g.
// "straggler", "straggler@0.25,link", or "all@0.8" for every class.
// The empty string yields nil (faults off). Per-class intensities are
// averaged into the spec's single knob after "all" expansion.
func ParseSpec(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	known := map[Class]bool{}
	for _, c := range Classes() {
		known[c] = true
	}
	spec := &Spec{}
	var sum float64
	var terms int
	for _, term := range strings.Split(s, ",") {
		name, val := term, ""
		if i := strings.IndexByte(term, '@'); i >= 0 {
			name, val = term[:i], term[i+1:]
		}
		name = strings.TrimSpace(name)
		intensity := DefaultIntensity
		if val != "" {
			f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			// The inverted comparison also rejects NaN, which satisfies
			// neither f <= 0 nor f > 1.
			if err != nil || !(f > 0 && f <= 1) {
				return nil, fmt.Errorf("faults: bad intensity %q in %q (want a number in (0,1])", val, term)
			}
			intensity = f
		}
		var add []Class
		if name == "all" {
			add = Classes()
		} else if known[Class(name)] {
			add = []Class{Class(name)}
		} else {
			return nil, fmt.Errorf("faults: unknown fault class %q (known: %v, or \"all\")", name, Classes())
		}
		for _, c := range add {
			dup := false
			for _, have := range spec.Classes {
				if have == c {
					dup = true
				}
			}
			if dup {
				continue
			}
			spec.Classes = append(spec.Classes, c)
			sum += intensity
			terms++
		}
	}
	spec.Intensity = sum / float64(terms)
	return spec, nil
}

// String renders the spec in ParseSpec's syntax. Every class carries the
// intensity explicitly — a trailing "@i" would bind only to the last
// class on re-parse, averaging the rest at the default and silently
// changing the spec.
func (s *Spec) String() string {
	if s == nil || len(s.Classes) == 0 {
		return ""
	}
	parts := make([]string, len(s.Classes))
	for i, c := range s.Classes {
		parts[i] = fmt.Sprintf("%s@%g", c, s.Intensity)
	}
	return strings.Join(parts, ",")
}

// splitmix64 is the generator behind plan instantiation: tiny, seedable,
// and identical on every platform, so a (Spec, Shape) pair maps to one
// plan forever.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix64) intn(n int) int {
	return int(r.next() % uint64(n))
}

// float returns a uniform draw in [0, 1).
func (r *splitmix64) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

func (r *splitmix64) duration(lo, hi sim.Duration) sim.Duration {
	if hi <= lo {
		return lo
	}
	return lo + sim.Duration(r.next()%uint64(hi-lo))
}

// Instantiate draws a concrete plan for the given job shape. The draw is
// a pure function of (spec, shape); each class consumes an independent
// seeded stream, so enabling one class never shifts another's draw. An
// intensity i in (0, 1] faults roughly i/4 of the relevant components
// and scales each fault's severity linearly with i.
func (s *Spec) Instantiate(sh Shape) *Plan {
	if s == nil || len(s.Classes) == 0 || s.Intensity <= 0 {
		return nil
	}
	if sh.Ranks <= 0 || sh.Nodes <= 0 || sh.HCAs <= 0 {
		panic(fmt.Sprintf("faults: Instantiate with shape %+v", sh))
	}
	i := math.Min(s.Intensity, 1)
	p := &Plan{}
	for _, c := range s.Classes {
		rng := &splitmix64{s: s.Seed<<8 + classSalt(c)}
		switch c {
		case ClassStraggler:
			for _, rank := range s.pick(rng, sh.Ranks, i) {
				factor := 1 + 7*i*(0.5+rng.float()) // up to ~8x slower at full intensity
				for _, w := range s.windows(rng) {
					p.Stragglers = append(p.Stragglers, Straggler{
						Rank: rank, Start: w[0], End: w[1], Factor: factor,
					})
				}
			}
		case ClassLink:
			for _, node := range s.pick(rng, sh.Nodes, i) {
				hca := rng.intn(sh.HCAs)
				factor := math.Max(0.05, 1-0.9*i*(0.5+rng.float()))
				for _, w := range s.windows(rng) {
					p.Links = append(p.Links, LinkFault{
						Node: node, HCA: hca, Start: w[0], End: w[1], Factor: factor,
					})
				}
			}
		case ClassNIC:
			for _, node := range s.pick(rng, sh.Nodes, i) {
				hca := rng.intn(sh.HCAs)
				factor := 1 + 15*i*(0.5+rng.float())
				for _, w := range s.windows(rng) {
					p.NICs = append(p.NICs, NICThrottle{
						Node: node, HCA: hca, Start: w[0], End: w[1], Factor: factor,
					})
				}
			}
		case ClassSharp:
			w := s.windows(rng)[0]
			p.Sharp = append(p.Sharp, SharpOutage{Start: w[0], End: w[1]})
		}
	}
	if err := p.Validate(sh); err != nil {
		panic(err) // the generator produced an invalid plan: a bug here
	}
	return p
}

// classSalt decorrelates the per-class rng streams.
func classSalt(c Class) uint64 {
	switch c {
	case ClassStraggler:
		return 0x51
	case ClassLink:
		return 0x11
	case ClassNIC:
		return 0xa1
	case ClassSharp:
		return 0x5a
	}
	return 0xff
}

// pick draws max(1, round(i*n/4)) distinct indices from [0, n), sorted
// for stable plan layout.
func (s *Spec) pick(rng *splitmix64, n int, i float64) []int {
	count := int(i*float64(n)/4 + 0.5)
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	chosen := map[int]bool{}
	for len(chosen) < count {
		chosen[rng.intn(n)] = true
	}
	out := make([]int, 0, count)
	for idx := range chosen {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// windows draws the fault windows for one component: a single open-ended
// window starting at 0 when the spec has no horizon, or 1-3 flapping
// windows inside [0, Horizon) otherwise.
func (s *Spec) windows(rng *splitmix64) [][2]sim.Time {
	if s.Horizon <= 0 {
		return [][2]sim.Time{{0, 0}}
	}
	h := s.Horizon
	n := 1 + rng.intn(3)
	out := make([][2]sim.Time, 0, n)
	at := sim.Time(0)
	for k := 0; k < n; k++ {
		start := at.Add(rng.duration(0, h/sim.Duration(2*n)))
		end := start.Add(rng.duration(h/sim.Duration(4*n), h/sim.Duration(2*n)) + 1)
		out = append(out, [2]sim.Time{start, end})
		at = end
	}
	return out
}
