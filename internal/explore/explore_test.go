package explore

import (
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"

	"dpml/internal/core"
	"dpml/internal/mpi"
)

// TestSeededExploreAllDesigns runs every explorable design under a
// handful of seeded schedules on the healthy fabric: every schedule
// must pass the full invariant battery, and the salts must actually
// reach schedules the canonical order does not.
func TestSeededExploreAllDesigns(t *testing.T) {
	for _, d := range Designs() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Scenario{Design: d.Name}, Options{Schedules: 4, Seed: 1})
			if err != nil {
				t.Fatalf("exploration failed:\n%v", err)
			}
			if rep.Schedules != 5 { // canonical + 4 seeded
				t.Fatalf("ran %d schedules, want 5", rep.Schedules)
			}
			if rep.Distinct < 2 {
				t.Errorf("salts reached only %d distinct schedule(s); perturbation is not biting", rep.Distinct)
			}
		})
	}
}

// TestSeededExploreUnderFaults layers the exploration on a faulted
// fabric: every perturbed schedule of a degraded run must still
// reduce exactly and keep its trace accounting consistent.
func TestSeededExploreUnderFaults(t *testing.T) {
	for _, spec := range []string{"all@0.7", "straggler@1.0"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Scenario{Design: "dpml-3", Faults: spec, FaultSeed: 7},
				Options{Schedules: 4, Seed: 3})
			if err != nil {
				t.Fatalf("exploration failed:\n%v", err)
			}
			if rep.Distinct < 2 {
				t.Errorf("only %d distinct schedules under faults", rep.Distinct)
			}
		})
	}
}

// TestSystematicSmall explores a 2x2 job systematically and checks the
// frontier actually branches: distinct behaviors well beyond the
// canonical one, all passing the battery, and the whole run
// reproducible — two invocations produce identical reports.
func TestSystematicSmall(t *testing.T) {
	sc := Scenario{Nodes: 2, PPN: 2, Count: 9, Design: "flat"}
	opts := Options{Systematic: true, MaxSchedules: 40}
	rep1, err := Run(sc, opts)
	if err != nil {
		t.Fatalf("systematic exploration failed:\n%v", err)
	}
	if rep1.Distinct < 5 {
		t.Errorf("systematic frontier reached only %d distinct schedules", rep1.Distinct)
	}
	rep2, err := Run(sc, opts)
	if err != nil {
		t.Fatalf("second run failed:\n%v", err)
	}
	if !reflect.DeepEqual(rep1.Results, rep2.Results) {
		t.Errorf("systematic exploration is not reproducible:\nrun1: %+v\nrun2: %+v", rep1.Results, rep2.Results)
	}
}

// TestSystematicCoverage16 is the acceptance floor: at 16 ranks the
// systematic frontier must reach at least 100 behaviorally distinct
// schedules, every one passing the invariants.
func TestSystematicCoverage16(t *testing.T) {
	if testing.Short() {
		t.Skip("systematic 16-rank coverage is explorecheck-scale; skipped in -short")
	}
	rep, err := Run(Scenario{Design: "dpml-3"},
		Options{Systematic: true, MaxSchedules: 200, MinDistinct: 100, Workers: 4})
	if err != nil {
		t.Fatalf("exploration failed:\n%v", err)
	}
	if rep.Distinct < 100 {
		t.Fatalf("reached %d distinct schedules, want >= 100", rep.Distinct)
	}
}

// TestExploreDeterminismAcrossEnvironment fixes the exploration seed
// and varies everything the host is allowed to vary — kernel shards,
// net shards, sweep workers, GOMAXPROCS — and requires bit-identical
// reports: same digests, same events, same failures (none).
func TestExploreDeterminismAcrossEnvironment(t *testing.T) {
	base := Scenario{Nodes: 2, PPN: 2, Count: 13, Design: "dpml-pipe-2x3"}
	opts := Options{Schedules: 3, Seed: 42}
	ref, err := Run(base, opts)
	if err != nil {
		t.Fatalf("reference run failed:\n%v", err)
	}
	check := func(name string, rep *Report, err error) {
		if err != nil {
			t.Fatalf("%s: exploration failed:\n%v", name, err)
		}
		if rep.Canonical != ref.Canonical || !reflect.DeepEqual(rep.Results, ref.Results) {
			t.Errorf("%s: report diverged from reference\nref: %+v\ngot: %+v", name, ref.Results, rep.Results)
		}
	}
	for _, shards := range []int{2, 4} {
		sc := base
		sc.Shards = shards
		sc.NetShards = 2
		rep, err := Run(sc, opts)
		check("shards", rep, err)
	}
	o := opts
	o.Workers = 4
	rep, err := Run(base, o)
	check("workers", rep, err)

	prev := runtime.GOMAXPROCS(2)
	rep, err = Run(base, opts)
	runtime.GOMAXPROCS(prev)
	check("gomaxprocs", rep, err)
}

// TestReproSaltRerunsExactSchedule checks the repro path: rerunning a
// seeded schedule by its explicit salt reproduces the same digest.
func TestReproSaltRerunsExactSchedule(t *testing.T) {
	sc := Scenario{Nodes: 2, PPN: 2, Count: 9, Design: "flat"}
	rep, err := Run(sc, Options{Schedules: 2, Seed: 9})
	if err != nil {
		t.Fatalf("exploration failed:\n%v", err)
	}
	seeded := rep.Results[1] // results[0] is canonical
	salt := mix64(9 + 1)
	again, err := Run(sc, Options{Salts: []uint64{salt}})
	if err != nil {
		t.Fatalf("repro run failed:\n%v", err)
	}
	if got := again.Results[1].Digest; got != seeded.Digest {
		t.Errorf("repro digest %s != original %s", got, seeded.Digest)
	}
}

// orderBugWorkload plants a deliberate arrival-order bug: each rank,
// after an identical compute block, folds into a node-shared cell with
// a non-commutative update and reports its own snapshot. The fold
// order is exactly the same-instant wakeup order on the node's LP —
// legal for the kernel to permute — so the result is schedule-
// dependent: the classic bug the explorer exists to catch. Per-world
// state lives in a map so concurrent explored schedules stay isolated.
func orderBugWorkload(nodes int) func(e *core.Engine, r *mpi.Rank) (*mpi.Vector, error) {
	var mu sync.Mutex
	cells := map[*mpi.World][]float64{}
	return func(e *core.Engine, r *mpi.Rank) (*mpi.Vector, error) {
		w := r.World()
		mu.Lock()
		c, ok := cells[w]
		if !ok {
			c = make([]float64, nodes)
			cells[w] = c
		}
		mu.Unlock()
		r.Compute(1 << 14)
		node := r.Place().Node
		c[node] = c[node]*2 + float64(r.Rank()+1)
		v := mpi.NewVector(mpi.Float64, 1)
		v.Set(0, c[node])
		return v, nil
	}
}

// TestMutationOrderBugCaught is the mutation test: the explorer must
// flag the planted order-sensitive workload via the result-invariance
// check, with a self-contained repro line, while still completing the
// full exploration (errors.Join, not fail-fast).
func TestMutationOrderBugCaught(t *testing.T) {
	sc := Scenario{Nodes: 2, PPN: 4, Workload: orderBugWorkload(2)}
	rep, err := Run(sc, Options{Schedules: 6, Seed: 11})
	if err == nil {
		t.Fatal("explorer missed the planted ordering bug")
	}
	msg := err.Error()
	if !strings.Contains(msg, "result invariance") {
		t.Errorf("failure not attributed to result invariance:\n%v", msg)
	}
	if !strings.Contains(msg, "repro: dpml-verify") || !strings.Contains(msg, "-salt") {
		t.Errorf("failure lacks a self-contained repro line:\n%v", msg)
	}
	if rep.Schedules != 7 {
		t.Errorf("exploration stopped early: %d schedules, want 7", rep.Schedules)
	}

	// Systematic mode must catch it too — deterministically, via a
	// single targeted tie inversion.
	_, err = Run(sc, Options{Systematic: true, MaxSchedules: 20})
	if err == nil {
		t.Fatal("systematic explorer missed the planted ordering bug")
	}
	if !strings.Contains(err.Error(), "-swaps") {
		t.Errorf("systematic failure lacks a swap-set repro line:\n%v", err)
	}
}
