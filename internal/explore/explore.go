// Package explore drives schedule-space exploration: it runs one
// simulated collective scenario under many legal event schedules and
// asserts the full invariant battery on every one.
//
// The simulator's canonical schedule is a single point in a much larger
// space: events at the same virtual instant, and messages matchable at
// the same instant, are concurrent in the model — nothing in the
// simulated physics orders them, only the kernel's tiebreak convention.
// A design that is only correct under the canonical tiebreak is a
// design with a latent arrival-order bug. This package perturbs the
// tiebreaks (sim.Explore) and the message matching (mpi match shuffle)
// to visit other points of that space, two ways:
//
//   - Seeded mode: N schedules, each under a salt derived from one
//     exploration seed. Cheap, covers the space statistically, scales
//     to any rank count.
//   - Systematic mode (DPOR-lite): starting from the canonical
//     schedule, enumerate targeted inversions of observed commutation
//     points — same-LP same-instant adjacent event pairs — breadth
//     first with digest-based deduplication, under a schedule budget.
//     Bounded and only practical at small rank counts, but it explores
//     *structurally distinct* schedules rather than random ones.
//
// Every explored schedule must pass: the conformance oracle (exact
// element-wise equality against a serial reduction), the trace span
// tiling invariant, critical-path accounting (busy+wait == makespan ==
// last event end), watchdog/deadlock cleanliness, and cross-schedule
// result invariance against the canonical baseline. Event counts and
// makespans are recorded per schedule but not required to converge
// across schedules: resource contention is order-dependent by design
// (e.g. which of two same-instant senders wins the NIC injection slot
// decides whether the other pays a delay event), so only the *results*
// are theory-required invariants — a given (scenario, schedule) still
// reproduces its counts exactly, which the determinism tests pin. A
// failure produces a self-contained repro line naming the scenario,
// seed or swap set, and fault spec; exploration continues and all
// failures are aggregated with errors.Join.
package explore

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"

	"dpml/internal/core"
	"dpml/internal/faults"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/sweep"
	"dpml/internal/topology"
	"dpml/internal/trace"
)

// Scenario describes one simulated collective to explore. The zero
// value is usable: cluster A, 4 nodes x 4 ppn, a 61-element float32
// sum (the paper's MPI_FLOAT microbenchmark shape) under the dpml-3
// design on a healthy fabric.
type Scenario struct {
	Cluster string // topology.ByName key ("" = "A")
	Nodes   int    // 0 = 4
	PPN     int    // 0 = 4
	Count   int    // elements per rank; 0 = 61
	Dtype   mpi.Datatype
	Op      *mpi.Op // nil = mpi.Sum
	Design  string  // name from Designs(); "" = "dpml-3"

	// Faults is a faults.ParseSpec string ("" = healthy fabric); the
	// plan is instantiated for the job shape with FaultSeed.
	Faults    string
	FaultSeed uint64

	// Watchdog bounds each run in virtual time (0 = 1 virtual second;
	// negative disables). A wedged schedule is an invariant failure,
	// not a hang.
	Watchdog sim.Duration

	Shards    int // kernel shards per run (0 = process default)
	NetShards int // net workers per run (0 = process default)

	// Workload, when non-nil, replaces the built-in allreduce+oracle
	// workload: it runs on every rank and returns the rank's result
	// vector, which feeds the cross-schedule result-invariance check.
	// The conformance oracle is skipped (the driver cannot know a
	// custom workload's answer). This is the seam the mutation tests
	// use to plant deliberately order-sensitive bugs.
	Workload func(e *core.Engine, r *mpi.Rank) (*mpi.Vector, error)
}

// Options selects the exploration mode and budget.
type Options struct {
	// Schedules is the number of seeded schedules to run beyond the
	// canonical baseline.
	Schedules int
	// Seed derives the per-schedule salts (schedule i runs under
	// mix64(Seed+i+1)). Two explorations with equal seeds visit
	// identical schedules at every shard count and worker count.
	Seed uint64
	// Salts, when non-nil, overrides Schedules/Seed with explicit
	// salts — the repro path for a failing seeded schedule.
	Salts []uint64
	// Swaps, when non-nil, runs exactly one schedule with these
	// tiebreak transpositions — the repro path for a failing
	// systematic schedule.
	Swaps []sim.TieSwap
	// Systematic enables the DPOR-lite frontier instead of (or on top
	// of) seeded schedules.
	Systematic bool
	// MaxSchedules bounds the systematic frontier (0 = 192).
	MaxSchedules int
	// MinDistinct, when positive, makes the systematic pass fail
	// unless it visited at least this many behaviorally distinct
	// schedules — a coverage floor for CI.
	MinDistinct int
	// Workers is the host parallelism for independent schedules
	// (0 = sweep default).
	Workers int
}

// ScheduleResult summarizes one explored schedule.
type ScheduleResult struct {
	Label    string   `json:"label"`
	Salt     string   `json:"salt,omitempty"`
	Swaps    int      `json:"swaps,omitempty"`
	Digest   string   `json:"digest"`
	Events   uint64   `json:"events,omitempty"`
	Makespan string   `json:"makespan,omitempty"`
	Failures []string `json:"failures,omitempty"`
}

// Report is the JSON-serializable outcome of one exploration.
type Report struct {
	Scenario  string           `json:"scenario"`
	Mode      string           `json:"mode"`
	Schedules int              `json:"schedules"`
	Distinct  int              `json:"distinct"`
	Canonical string           `json:"canonical_digest"`
	Failures  []string         `json:"failures,omitempty"`
	Results   []ScheduleResult `json:"results"`
}

// NamedDesign pairs a CLI-stable name with its core spec.
type NamedDesign struct {
	Name string
	Spec core.Spec
}

// Designs lists the explorable designs: every reduction path the
// conformance suite covers, under its CLI name.
func Designs() []NamedDesign {
	return []NamedDesign{
		{"flat", core.Flat(mpi.AlgRecursiveDoubling)},
		{"host-based", core.HostBased()},
		{"dpml-3", core.DPML(3)},
		{"dpml-pipe-2x3", core.DPMLPipelined(2, 3)},
		{"sharp-node", core.Spec{Design: core.DesignSharpNode}},
		{"sharp-socket", core.Spec{Design: core.DesignSharpSocket}},
		// Extension families (PR 9). Parameters are chosen so the
		// standard 16-rank exploration shapes exercise the interesting
		// structure: 3 segments pipeline unevenly over a 61-element
		// half, group size 4 leaves a ragged last group on 15-rank
		// conformance shapes.
		{"dualroot-s3", core.DualRoot(3)},
		{"genall-g4", core.GenAll(4)},
		{"pap-sorted", core.PAPSorted()},
		{"pap-ring", core.PAPRing()},
	}
}

// DesignByName resolves a design name: the curated Designs list first,
// then any parameterized form core.ParseDesign understands (so
// -design dualroot-s8 or dpml-7 work without a registry entry).
func DesignByName(name string) (core.Spec, bool) {
	for _, d := range Designs() {
		if d.Name == name {
			return d.Spec, true
		}
	}
	if spec, err := core.ParseDesign(name); err == nil {
		return spec, true
	}
	return core.Spec{}, false
}

// DatatypeByName resolves the CLI datatype names (the Datatype.String
// forms, plus the short f32/f64/i32/i64 aliases).
func DatatypeByName(name string) (mpi.Datatype, bool) {
	switch name {
	case "float32", "f32":
		return mpi.Float32, true
	case "float64", "f64":
		return mpi.Float64, true
	case "int32", "i32":
		return mpi.Int32, true
	case "int64", "i64":
		return mpi.Int64, true
	}
	return 0, false
}

// OpByName resolves the predefined reduction ops by Op.Name.
func OpByName(name string) (*mpi.Op, bool) {
	for _, op := range []*mpi.Op{mpi.Sum, mpi.Prod, mpi.Max, mpi.Min} {
		if op.Name() == name {
			return op, true
		}
	}
	return nil, false
}

// mix64 is the splitmix64 output mixer (the same bijection the kernel
// uses), used here to derive per-schedule salts from one seed.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// resolved is a Scenario with defaults applied and the fault plan
// instantiated — everything runOnce needs, immutable across schedules.
type resolved struct {
	sc     Scenario
	cl     *topology.Cluster
	spec   core.Spec
	plan   *faults.Plan
	oracle *mpi.Vector // nil for custom workloads
}

// resolve applies Scenario defaults and builds the shared immutable
// pieces (cluster, design spec, fault plan, conformance oracle).
func resolve(sc Scenario) (*resolved, error) {
	if sc.Cluster == "" {
		sc.Cluster = "A"
	}
	if sc.Nodes == 0 {
		sc.Nodes = 4
	}
	if sc.PPN == 0 {
		sc.PPN = 4
	}
	if sc.Count == 0 {
		sc.Count = 61
	}
	if sc.Op == nil {
		sc.Op = mpi.Sum
	}
	if sc.Design == "" {
		sc.Design = "dpml-3"
	}
	if sc.Watchdog == 0 {
		sc.Watchdog = sim.Duration(1e9) // 1 virtual second
	} else if sc.Watchdog < 0 {
		sc.Watchdog = 0
	}
	cl := topology.ByName(sc.Cluster)
	if cl == nil {
		return nil, fmt.Errorf("explore: unknown cluster %q", sc.Cluster)
	}
	spec, ok := DesignByName(sc.Design)
	if !ok {
		return nil, fmt.Errorf("explore: unknown design %q", sc.Design)
	}
	rs := &resolved{sc: sc, cl: cl, spec: spec}
	if sc.Faults != "" {
		fspec, err := faults.ParseSpec(sc.Faults)
		if err != nil {
			return nil, fmt.Errorf("explore: %w", err)
		}
		fspec.Seed = sc.FaultSeed
		shape := faults.Shape{Ranks: sc.Nodes * sc.PPN, Nodes: sc.Nodes, HCAs: cl.HCAs}
		rs.plan = fspec.Instantiate(shape)
		if err := rs.plan.Validate(shape); err != nil {
			return nil, fmt.Errorf("explore: %w", err)
		}
	}
	if sc.Workload == nil {
		n := sc.Nodes * sc.PPN
		want := seedVector(sc.Dtype, sc.Count, 0)
		for k := 1; k < n; k++ {
			sc.Op.Apply(want, seedVector(sc.Dtype, sc.Count, k))
		}
		rs.oracle = want
	}
	return rs, nil
}

// seedValue is the rank-seeded element pattern shared with the
// conformance suite: small integers, exact in every datatype and under
// every predefined op.
func seedValue(k, i int) float64 { return float64((k*31+i*7)%17 - 8) }

func seedVector(dt mpi.Datatype, count, rank int) *mpi.Vector {
	v := mpi.NewVector(dt, count)
	for i := 0; i < count; i++ {
		v.Set(i, seedValue(rank, i))
	}
	return v
}

// String renders the scenario in repro-line form.
func (rs *resolved) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-cluster %s -nodes %d -ppn %d -count %d -dtype %s -op %s -design %s",
		rs.sc.Cluster, rs.sc.Nodes, rs.sc.PPN, rs.sc.Count, rs.sc.Dtype, rs.sc.Op.Name(), rs.sc.Design)
	if rs.sc.Faults != "" {
		fmt.Fprintf(&b, " -faults %q -fault-seed %d", rs.sc.Faults, rs.sc.FaultSeed)
	}
	return b.String()
}

// reproLine builds the self-contained dpml-verify invocation that
// reruns exactly one explored schedule.
func (rs *resolved) reproLine(x *sim.Explore) string {
	var b strings.Builder
	b.WriteString("dpml-verify ")
	b.WriteString(rs.String())
	if x != nil && x.Salt != 0 {
		fmt.Fprintf(&b, " -salt %#x", x.Salt)
	}
	if x != nil && len(x.Swaps) > 0 {
		parts := make([]string, len(x.Swaps))
		for i, s := range x.Swaps {
			parts[i] = fmt.Sprintf("%d:%#x:%#x", s.At, s.A, s.B)
		}
		fmt.Fprintf(&b, " -swaps %s", strings.Join(parts, ","))
	}
	return b.String()
}

// outcome is what one explored schedule produced.
type outcome struct {
	explore  *sim.Explore
	digest   uint64
	events   uint64
	makespan sim.Duration
	sum      [sha256.Size]byte // hash of every rank's result vector
	ties     []sim.TiePair
	failures []string // invariant violations (no repro prefix)
}

// runOnce executes the scenario under one schedule-perturbation config
// and applies the per-schedule invariant battery. An error return is an
// infrastructure failure (bad job shape), not an invariant violation.
func (rs *resolved) runOnce(x *sim.Explore) (*outcome, error) {
	job, err := topology.NewJob(rs.cl, rs.sc.Nodes, rs.sc.PPN)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	rec := trace.New(0)
	w := mpi.NewWorld(job, mpi.Config{
		Trace:     rec,
		Faults:    rs.plan,
		Watchdog:  rs.sc.Watchdog,
		Shards:    rs.sc.Shards,
		NetShards: rs.sc.NetShards,
		Explore:   x,
	})
	e := core.NewEngine(w)
	n := rs.sc.Nodes * rs.sc.PPN
	results := make([]*mpi.Vector, n)
	runErr := w.Run(func(r *mpi.Rank) error {
		if rs.sc.Workload != nil {
			v, err := rs.sc.Workload(e, r)
			if err != nil {
				return err
			}
			results[r.Rank()] = v
			return nil
		}
		v := seedVector(rs.sc.Dtype, rs.sc.Count, r.Rank())
		if err := e.Allreduce(r, rs.spec, rs.sc.Op, v); err != nil {
			return err
		}
		results[r.Rank()] = v
		return nil
	})

	out := &outcome{
		explore: x,
		digest:  w.ScheduleDigest(),
		ties:    w.TiePairs(),
	}
	if runErr != nil {
		// Watchdog fires, deadlock detection, or a workload error: the
		// schedule wedged or failed outright.
		out.failures = append(out.failures, fmt.Sprintf("run failed: %v", runErr))
		return out, nil
	}
	out.events = w.SimStats().Events
	out.makespan = w.Now().Sub(0)

	// Conformance oracle: exact element-wise equality against the
	// serial rank-order reduction.
	if rs.oracle != nil {
		for k := 0; k < n; k++ {
			v := results[k]
			if v == nil {
				out.failures = append(out.failures, fmt.Sprintf("conformance: rank %d returned no result", k))
				continue
			}
			for i := 0; i < rs.sc.Count; i++ {
				// Bit-identity, stated on the bits: the oracle demands
				// exactness, not tolerance.
				if got, want := v.At(i), rs.oracle.At(i); math.Float64bits(got) != math.Float64bits(want) {
					out.failures = append(out.failures,
						fmt.Sprintf("conformance: rank %d elem %d = %v, oracle %v", k, i, got, want))
					break
				}
			}
		}
	}
	out.sum = hashResults(results)

	// Span tiling: per rank, collective spans must be exactly tiled by
	// their phase spans.
	phase := make(map[int]sim.Duration)
	coll := make(map[int]sim.Duration)
	for _, ev := range rec.Events() {
		switch ev.Kind {
		case trace.KindPhase:
			phase[ev.Rank] += ev.Duration()
		case trace.KindCollective:
			coll[ev.Rank] += ev.Duration()
		}
	}
	for k := 0; k < n; k++ {
		if phase[k] != coll[k] {
			out.failures = append(out.failures,
				fmt.Sprintf("span tiling: rank %d phases %v != collectives %v", k, phase[k], coll[k]))
		}
	}

	// Critical path: busy+wait must tile the makespan exactly, and the
	// makespan must be the last recorded event end.
	if rec.Len() > 0 {
		cp := rec.CriticalPath()
		var acc sim.Duration
		for _, st := range cp.Steps {
			acc += st.Busy + st.Wait
		}
		if acc != cp.Total {
			out.failures = append(out.failures,
				fmt.Sprintf("critical path: busy+wait %v != makespan %v", acc, cp.Total))
		}
		var last sim.Time
		for _, ev := range rec.Events() {
			if ev.End > last {
				last = ev.End
			}
		}
		if cp.Total != last.Sub(0) {
			out.failures = append(out.failures,
				fmt.Sprintf("critical path: makespan %v != last event end %v", cp.Total, last.Sub(0)))
		}
	}
	return out, nil
}

// hashResults folds every rank's result vector (in rank order) into one
// digest for cross-schedule result-invariance comparison.
func hashResults(results []*mpi.Vector) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	for _, v := range results {
		if v == nil {
			h.Write([]byte{0})
			continue
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(v.Len()))
		h.Write(buf[:])
		for i := 0; i < v.Len(); i++ {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.At(i)))
			h.Write(buf[:])
		}
	}
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

// record appends one schedule's result to the report and folds its
// failures — each prefixed with the schedule's repro line — into errs.
// It also applies the cross-schedule invariance checks against the
// canonical baseline.
func (rs *resolved) record(rep *Report, errs *[]error, label string, out, canonical *outcome) {
	res := ScheduleResult{
		Label:    label,
		Digest:   fmt.Sprintf("%#016x", out.digest),
		Events:   out.events,
		Makespan: out.makespan.String(),
	}
	if out.explore != nil && out.explore.Salt != 0 {
		res.Salt = fmt.Sprintf("%#x", out.explore.Salt)
	}
	if out.explore != nil {
		res.Swaps = len(out.explore.Swaps)
	}
	fails := out.failures
	if canonical != nil && out != canonical && len(out.failures) == 0 {
		if out.sum != canonical.sum {
			fails = append(fails, "result invariance: results differ from the canonical schedule")
		}
	}
	repro := rs.reproLine(out.explore)
	for _, f := range fails {
		res.Failures = append(res.Failures, f)
		*errs = append(*errs, fmt.Errorf("%s [repro: %s]", f, repro))
	}
	rep.Results = append(rep.Results, res)
	rep.Schedules++
}

// Run explores the scenario's schedule space per the options and
// returns the report. The returned error aggregates (errors.Join)
// every invariant failure across every explored schedule — exploration
// never stops at the first failure — or reports a scenario setup
// problem.
func Run(sc Scenario, opts Options) (*Report, error) {
	rs, err := resolve(sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{Scenario: rs.String(), Mode: "seeded"}
	if opts.Systematic {
		rep.Mode = "systematic"
	}
	var errs []error

	// Canonical baseline: salt 0, no swaps. Records ties (the
	// systematic frontier's roots) and anchors the invariance checks.
	canonical, err := rs.runOnce(&sim.Explore{RecordTies: true})
	if err != nil {
		return nil, err
	}
	rep.Canonical = fmt.Sprintf("%#016x", canonical.digest)
	rs.record(rep, &errs, "canonical", canonical, canonical)
	distinct := map[uint64]bool{canonical.digest: true}

	// Explicit swap-set repro run.
	if len(opts.Swaps) > 0 {
		out, err := rs.runOnce(&sim.Explore{Swaps: opts.Swaps, RecordTies: true})
		if err != nil {
			return nil, err
		}
		rs.record(rep, &errs, fmt.Sprintf("swaps[%d]", len(opts.Swaps)), out, canonical)
		distinct[out.digest] = true
	}

	// Seeded schedules: independent, so they fan across host workers.
	salts := opts.Salts
	if salts == nil {
		for i := 0; i < opts.Schedules; i++ {
			s := mix64(opts.Seed + uint64(i) + 1)
			if s == 0 {
				s = 1
			}
			salts = append(salts, s)
		}
	}
	if len(salts) > 0 {
		outs, err := sweep.Map(opts.Workers, salts, func(_ int, salt uint64) (*outcome, error) {
			return rs.runOnce(&sim.Explore{Salt: salt})
		})
		if err != nil {
			return nil, err
		}
		for i, out := range outs {
			rs.record(rep, &errs, fmt.Sprintf("seed[%d]", i), out, canonical)
			distinct[out.digest] = true
		}
	}

	if opts.Systematic {
		rs.systematic(opts, rep, &errs, canonical, distinct)
	}

	rep.Distinct = len(distinct)
	if opts.Systematic && opts.MinDistinct > 0 && rep.Distinct < opts.MinDistinct {
		errs = append(errs, fmt.Errorf("coverage: %d distinct schedules, need >= %d [scenario: %s]",
			rep.Distinct, opts.MinDistinct, rs.String()))
	}
	rep.Failures = nil
	for _, e := range errs {
		rep.Failures = append(rep.Failures, e.Error())
	}
	return rep, errors.Join(errs...)
}
