package explore

import (
	"fmt"
	"sort"
	"strings"

	"dpml/internal/sim"
	"dpml/internal/sweep"
)

// Systematic exploration, DPOR-lite.
//
// Cross-LP same-instant events commute (LP state is disjoint), so the
// only schedule choices that can change behavior are same-LP
// same-instant orderings — exactly what the kernel records as TiePairs.
// The frontier starts from the canonical schedule's observed ties and
// explores breadth first: each child schedule inverts one additional
// tie pair (as a TieSwap transposition) on top of its parent's swap
// set. Each explored schedule reports the ties *it* observed, so swaps
// compose down the tree and the frontier reaches orders no single
// inversion of the canonical schedule produces.
//
// Two bounds keep it tractable: a schedule budget (runs executed), and
// swap-set deduplication (a child identical to an already-tried swap
// set is not rerun). Distinct *behaviors* are counted separately via
// the schedule digest — two swap sets that produce the same fired
// order digest equal and count once.

// swapSetKey canonically encodes a swap set: each swap normalized to
// A < B, the set sorted. Swap order never matters behaviorally for
// disjoint pairs, and for overlapping pairs distinct compositions
// reach distinct keys through their sorted multiset anyway — the key
// only needs to dedupe, not to be a perfect behavioral quotient.
func swapSetKey(swaps []sim.TieSwap) string {
	norm := make([]sim.TieSwap, len(swaps))
	for i, s := range swaps {
		if s.A > s.B {
			s.A, s.B = s.B, s.A
		}
		norm[i] = s
	}
	sort.Slice(norm, func(i, j int) bool {
		a, b := norm[i], norm[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	var b strings.Builder
	for _, s := range norm {
		fmt.Fprintf(&b, "%d:%x:%x;", s.At, s.A, s.B)
	}
	return b.String()
}

// children generates the next-level swap sets from one outcome: the
// parent's swap set extended by each tie pair the schedule observed,
// skipping pairs already swapped (re-inverting an adjacent pair undoes
// it — that schedule is the parent, already visited).
func children(parent []sim.TieSwap, out *outcome, tried map[string]bool) [][]sim.TieSwap {
	var next [][]sim.TieSwap
	for _, p := range out.ties {
		s := sim.TieSwap{At: p.At, A: p.A, B: p.B}
		if s.A > s.B {
			s.A, s.B = s.B, s.A
		}
		dup := false
		for _, have := range parent {
			if have == s {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		child := make([]sim.TieSwap, len(parent)+1)
		copy(child, parent)
		child[len(parent)] = s
		key := swapSetKey(child)
		if tried[key] {
			continue
		}
		tried[key] = true
		next = append(next, child)
	}
	return next
}

// systematic runs the bounded BFS frontier. The canonical schedule
// (already run, with ties recorded) is the root; results, failures,
// and distinct digests accumulate into the caller's report state.
// Each wave runs its schedules across host workers; wave composition
// is deterministic, so reports are identical at every worker count.
func (rs *resolved) systematic(opts Options, rep *Report, errs *[]error, canonical *outcome, distinct map[uint64]bool) {
	budget := opts.MaxSchedules
	if budget <= 0 {
		budget = 192
	}
	tried := map[string]bool{swapSetKey(nil): true}
	frontier := children(nil, canonical, tried)
	runs := 0
	for len(frontier) > 0 && runs < budget {
		if rem := budget - runs; len(frontier) > rem {
			frontier = frontier[:rem]
		}
		outs, err := sweep.Map(opts.Workers, frontier, func(_ int, swaps []sim.TieSwap) (*outcome, error) {
			return rs.runOnce(&sim.Explore{Swaps: swaps, RecordTies: true})
		})
		if err != nil {
			*errs = append(*errs, err)
			return
		}
		var next [][]sim.TieSwap
		for i, out := range outs {
			runs++
			rs.record(rep, errs, fmt.Sprintf("swap[%d]", runs), out, canonical)
			distinct[out.digest] = true
			next = append(next, children(frontier[i], out, tried)...)
		}
		frontier = next
	}
}
