package fabric

import (
	"errors"
	"fmt"
	"math"

	"dpml/internal/sim"
	"dpml/internal/topology"
)

// Errors reported by the SHArP model.
var (
	// ErrSharpUnavailable is returned when the cluster's fabric has no
	// aggregation support.
	ErrSharpUnavailable = errors.New("fabric: SHArP not available on this fabric")
	// ErrSharpGroups is returned when MaxGroups SHArP communicators
	// already exist.
	ErrSharpGroups = errors.New("fabric: SHArP group limit reached")
	// ErrSharpPayload is returned when an operation exceeds MaxPayload.
	ErrSharpPayload = errors.New("fabric: SHArP payload too large")
	// ErrSharpOffline is returned while the offload is marked failed (see
	// Sharp.SetFailed): the operation never enters the switch tree, and
	// callers are expected to fall back to a host-based algorithm.
	ErrSharpOffline = errors.New("fabric: SHArP offload offline")
)

// Sharp models the fabric-wide SHArP capability: a bounded pool of
// aggregation groups and, per group, a bounded number of outstanding
// operations (the paper: "SHArP can support only a small number of
// concurrent operations and SHArP communicators").
//
// The switch tree is fabric state, so the whole model runs as the
// network LP: callers inject their arrival into the network domain, the
// last arrival launches (or queues) the operation, and completion wakes
// every caller through per-node events that pay at least the tree's
// first-hop latency — which is what makes the model safe under a sharded
// kernel without any shard observing another.
//
//dpml:owner net
type Sharp struct {
	k         *sim.Kernel // the network LP's kernel
	prof      topology.SharpProfile
	link      float64 // leaf injection rate, bytes/sec
	leafRadix int     // fabric leaf radix; shards each group's fold tree
	groups    int
	slots     int        // free outstanding-operation slots (fabric-wide)
	waitq     []*sharpOp // operations waiting for a slot, FIFO
	failed    bool       //dpml:owner shared -- SetFailed documents cross-context toggling
}

// NewSharp builds the SHArP model for a cluster, or returns
// ErrSharpUnavailable when the fabric has none. k must be the network
// LP's kernel.
func NewSharp(k *sim.Kernel, c *topology.Cluster) (*Sharp, error) {
	if !c.Sharp.Available {
		return nil, ErrSharpUnavailable
	}
	return &Sharp{
		k:         k,
		prof:      c.Sharp,
		link:      c.Net.LinkBandwidth,
		leafRadix: c.Net.LeafRadix,
		slots:     c.Sharp.MaxOutstanding,
	}, nil
}

// Profile returns the SHArP parameters in force.
func (s *Sharp) Profile() topology.SharpProfile { return s.prof }

// SetFailed marks the offload unavailable (true) or restores it (false).
// While failed, every operation that would *start* — decided when its
// last caller's arrival reaches the tree — fails with ErrSharpOffline for
// all callers of that operation; operations already in the switch tree
// complete, as they would under a real completion-timeout failure model.
// The fault layer toggles this from network-LP events at outage-window
// boundaries. Runtime callers outside the network LP (a rank reacting to
// a fallback) may also toggle it, but only between their own operations:
// the flag is a plain field whose cross-shard visibility is ordered by
// the window barriers, so a toggle concurrent with an unrelated
// operation's launch would be a determinism bug in the workload, not in
// the model.
func (s *Sharp) SetFailed(v bool) { s.failed = v }

// Failed reports whether the offload is currently marked unavailable.
func (s *Sharp) Failed() bool { return s.failed }

// MaxPayload returns the largest message one operation may carry.
func (s *Sharp) MaxPayload() int { return s.prof.MaxPayload }

// TreeDepth returns the aggregation tree depth for the given number of
// participating nodes: ceil(log_radix(nodes)), minimum 1.
func (s *Sharp) TreeDepth(nodes int) int {
	if nodes <= 1 {
		return 1
	}
	d := int(math.Ceil(math.Log(float64(nodes)) / math.Log(float64(s.prof.Radix))))
	if d < 1 {
		d = 1
	}
	return d
}

// OpLatency returns the modelled time for one in-network allreduce of
// bytes across nodes leaves, measured from the moment the last leaf's
// data reaches its switch: injection of the payload, per-level switch
// reduction on the way up, and the latency of traversing the tree up and
// down.
//
//dpml:minlookahead
func (s *Sharp) OpLatency(nodes int, bytes int) sim.Duration {
	depth := s.TreeDepth(nodes)
	d := s.prof.OpOverhead + sim.Duration(2*depth)*s.prof.HopLatency
	d += sim.TransferTime(int64(bytes), s.link)                                        // leaf injection
	d += sim.Duration(depth) * sim.TransferTime(int64(bytes), s.prof.SwitchReduceRate) // per-level reduce
	return d
}

// WakeLatency returns the smallest delay after which the model ever
// notifies a caller's node: the tree overhead plus one round trip to the
// nearest switch (the NACK path; completed operations take at least
// OpLatency, which is larger). The sharded kernel's lookahead must not
// exceed it.
//
//dpml:minlookahead
func (s *Sharp) WakeLatency() sim.Duration {
	return s.prof.OpOverhead + 2*s.prof.HopLatency
}

// nackLatency is the delay before a caller learns its operation was
// refused (offload offline, or leaves disagreeing on the payload): one
// control round trip through the edge of the tree. Bounded below by the
// kernel's lookahead by construction (see WakeLatency).
//
//dpml:minlookahead
func (s *Sharp) nackLatency() sim.Duration {
	return s.WakeLatency()
}

// NewGroup allocates a SHArP communicator spanning the given compute
// nodes with leadersPerNode calling leaders on each (node-leader designs
// use 1, socket-leader designs one per socket), or returns ErrSharpGroups
// when the fabric-wide group budget is exhausted. The aggregation tree's
// depth is set by the node count — co-located leaders attach to the same
// leaf switch. Groups are allocated before the run starts (matching how
// MPI communicators hold them for the job lifetime); Release exists for
// completeness.
func (s *Sharp) NewGroup(nodes, leadersPerNode int) (*SharpGroup, error) {
	if s.groups >= s.prof.MaxGroups {
		return nil, ErrSharpGroups
	}
	if nodes <= 0 || leadersPerNode <= 0 {
		return nil, fmt.Errorf("fabric: SHArP group with %d nodes x %d leaders", nodes, leadersPerNode)
	}
	s.groups++
	return &SharpGroup{
		sharp:   s,
		nodes:   nodes,
		members: nodes * leadersPerNode,
		sub:     topology.LeafSubtrees(nodes, s.leafRadix),
	}, nil
}

// Groups returns the number of live SHArP groups.
func (s *Sharp) Groups() int { return s.groups }

// SharpGroup is one SHArP communicator: the set of leaf nodes plus the
// arrival-collection state for the operation currently forming.
//
//dpml:owner net
type SharpGroup struct {
	sharp   *Sharp
	nodes   int
	members int
	sub     *topology.SubtreeMap // leaf subtrees sharding the fold tree
	cur     *sharpOp             // operation currently collecting arrivals (network LP)

	// Stats counts operations through this group. Owned by the network
	// LP (incremented at launch).
	Stats struct {
		Ops uint64
	}
}

// sharpCall is one caller's side of one operation: where to deliver the
// verdict and the parked proc's wakeup. It is the node/net handoff
// cell: the net LP fills it and fires done with a lookahead-respecting
// delay, the caller's proc reads it after the wake.
//
//dpml:owner shared
type sharpCall struct {
	lp     int // caller's node LP
	result any
	err    error
	done   sim.Signal
}

// sharpOp is one collective operation's state, owned by the network LP.
//
// The fold tree is sharded by leaf subtree, matching the switch hardware:
// each leaf switch reduces its own nodes' contributions first (parts[s],
// folded in arrival-event order — a canonical order of virtual time, then
// arriving node, then creation sequence), and the upper tree combines the
// per-subtree partials in subtree-id order at launch. Both orders are
// independent of the shard and netshard counts, so the floating-point
// fold is identical across every execution configuration.
//
//dpml:owner net
type sharpOp struct {
	group   *SharpGroup
	bytes   int
	arrived int
	parts   []any // per-subtree partial accumulators
	reduce  func(acc, x any) any
	calls   []*sharpCall
}

// Nodes returns the number of leaf nodes in the group.
func (g *SharpGroup) Nodes() int { return g.nodes }

// Members returns the number of calling leaders across all nodes.
func (g *SharpGroup) Members() int { return g.members }

// Release frees the group's slot in the fabric-wide budget.
func (g *SharpGroup) Release() {
	if g.sharp.groups > 0 {
		g.sharp.groups--
	}
}

// Allreduce performs one in-network reduction of bytes. Every leaf's
// calling proc (one leader per leaf) must call it; all callers return at
// the operation's completion time with the reduced result. The operation
// occupies one outstanding-operation slot from when the last caller
// arrives until completion, so concurrent operations beyond
// MaxOutstanding serialize — this is the scalability ceiling that rules
// out per-DPML-leader SHArP (Section 4.3).
//
// contrib is this leaf's payload; reduce folds two payloads (the
// switch's arithmetic, applied in the network, so no host compute time
// is charged). Both may be nil for timing-only (phantom) runs, in which
// case the returned result is nil. The contribution buffer must not be
// touched while the call is blocked: the fold reads it in network
// context.
func (g *SharpGroup) Allreduce(p *sim.Proc, bytes int, contrib any, reduce func(acc, x any) any) (any, error) {
	if bytes > g.sharp.prof.MaxPayload {
		return nil, ErrSharpPayload
	}
	call := &sharpCall{lp: p.LP()}
	p.Kernel().AfterNet(0, func() { g.arrive(call, bytes, contrib, reduce) })
	call.done.Wait(p, "sharp allreduce")
	return call.result, call.err
}

// arrive folds one caller's contribution into the forming operation and,
// on the last arrival, launches it (or refuses it while the offload is
// failed). Runs in network-LP context.
func (g *SharpGroup) arrive(call *sharpCall, bytes int, contrib any, reduce func(acc, x any) any) {
	s := g.sharp
	if g.cur == nil {
		g.cur = &sharpOp{group: g, bytes: bytes, parts: make([]any, g.sub.Count)}
	}
	op := g.cur
	if bytes != op.bytes {
		// Leaves disagree on the payload: refuse this caller (the
		// operation keeps waiting for a conforming arrival — a
		// programming error surfaced exactly as a real tree would, with
		// a NACK after the control round trip).
		call.err = fmt.Errorf("fabric: SHArP leaves disagree on payload (%d vs %d bytes)", bytes, op.bytes)
		s.notify(call)
		return
	}
	if reduce != nil && contrib != nil {
		op.reduce = reduce
		st := 0
		if call.lp >= 0 && call.lp < len(g.sub.Of) {
			st = int(g.sub.Of[call.lp])
		}
		if op.parts[st] == nil {
			op.parts[st] = contrib
		} else {
			op.parts[st] = reduce(op.parts[st], contrib)
		}
	}
	op.calls = append(op.calls, call)
	op.arrived++
	if op.arrived < g.members {
		return
	}
	// Last arrival: detach the operation so the group's next one can
	// start collecting while this one runs.
	g.cur = nil
	if s.failed {
		// The offload outage is observed here, and only here, so every
		// caller of this operation sees the same verdict — per-caller
		// checks would diverge, since members arrive at different
		// virtual times.
		op.parts, op.reduce = nil, nil
		for _, c := range op.calls {
			c.err = ErrSharpOffline
			s.notify(c)
		}
		return
	}
	if s.slots > 0 {
		s.slots--
		s.begin(op)
		return
	}
	s.waitq = append(s.waitq, op)
}

// begin starts a launched operation: the upper tree combines the
// per-subtree partials in subtree-id order, every caller learns the
// result at +OpLatency, and the slot frees at the same instant (releasing
// the next queued operation, if any). Runs in network-LP context.
func (s *Sharp) begin(op *sharpOp) {
	op.group.Stats.Ops++
	d := s.OpLatency(op.group.nodes, op.bytes)
	var result any
	if op.reduce != nil {
		for _, part := range op.parts {
			if part == nil {
				continue
			}
			if result == nil {
				result = part
			} else {
				result = op.reduce(result, part)
			}
		}
	}
	op.parts, op.reduce = nil, nil
	for _, c := range op.calls {
		c.result = result
		c.lpWake(s, d)
	}
	s.k.After(d, func() {
		s.slots++
		if len(s.waitq) > 0 {
			next := s.waitq[0]
			copy(s.waitq, s.waitq[1:])
			s.waitq = s.waitq[:len(s.waitq)-1]
			s.slots--
			s.begin(next)
		}
	})
}

// notify delivers a refusal to one caller after the NACK round trip.
func (s *Sharp) notify(c *sharpCall) {
	c.lpWake(s, s.nackLatency())
}

// lpWake schedules the caller's wakeup on its own node, d from now. Every
// wake delay is at least the kernel lookahead (see WakeLatency), so the
// cross-LP event is always legal.
func (c *sharpCall) lpWake(s *Sharp, d sim.Duration) {
	s.k.AfterOn(c.lp, d, func() { c.done.Fire() })
}
