package fabric

import (
	"errors"
	"fmt"
	"math"

	"dpml/internal/sim"
	"dpml/internal/topology"
)

// Errors reported by the SHArP model.
var (
	// ErrSharpUnavailable is returned when the cluster's fabric has no
	// aggregation support.
	ErrSharpUnavailable = errors.New("fabric: SHArP not available on this fabric")
	// ErrSharpGroups is returned when MaxGroups SHArP communicators
	// already exist.
	ErrSharpGroups = errors.New("fabric: SHArP group limit reached")
	// ErrSharpPayload is returned when an operation exceeds MaxPayload.
	ErrSharpPayload = errors.New("fabric: SHArP payload too large")
	// ErrSharpOffline is returned while the offload is marked failed (see
	// Sharp.SetFailed): the operation never enters the switch tree, and
	// callers are expected to fall back to a host-based algorithm.
	ErrSharpOffline = errors.New("fabric: SHArP offload offline")
)

// Sharp models the fabric-wide SHArP capability: a bounded pool of
// aggregation groups and, per group, a bounded number of outstanding
// operations (the paper: "SHArP can support only a small number of
// concurrent operations and SHArP communicators").
type Sharp struct {
	k      *sim.Kernel
	prof   topology.SharpProfile
	link   float64 // leaf injection rate, bytes/sec
	groups int
	ost    *sim.Semaphore // fabric-wide outstanding-operation slots
	failed bool           // offload outage in force (see SetFailed)
}

// NewSharp builds the SHArP model for a cluster, or returns
// ErrSharpUnavailable when the fabric has none.
func NewSharp(k *sim.Kernel, c *topology.Cluster) (*Sharp, error) {
	if !c.Sharp.Available {
		return nil, ErrSharpUnavailable
	}
	return &Sharp{
		k:    k,
		prof: c.Sharp,
		link: c.Net.LinkBandwidth,
		ost:  sim.NewSemaphore("sharp-ost", c.Sharp.MaxOutstanding),
	}, nil
}

// Profile returns the SHArP parameters in force.
func (s *Sharp) Profile() topology.SharpProfile { return s.prof }

// SetFailed marks the offload unavailable (true) or restores it (false).
// While failed, every operation that would *start* — decided when its
// last caller arrives — fails with ErrSharpOffline for all callers of
// that operation; operations already in the switch tree complete, as they
// would under a real completion-timeout failure model. The fault layer
// toggles this at outage-window boundaries.
func (s *Sharp) SetFailed(v bool) { s.failed = v }

// Failed reports whether the offload is currently marked unavailable.
func (s *Sharp) Failed() bool { return s.failed }

// MaxPayload returns the largest message one operation may carry.
func (s *Sharp) MaxPayload() int { return s.prof.MaxPayload }

// TreeDepth returns the aggregation tree depth for the given number of
// participating nodes: ceil(log_radix(nodes)), minimum 1.
func (s *Sharp) TreeDepth(nodes int) int {
	if nodes <= 1 {
		return 1
	}
	d := int(math.Ceil(math.Log(float64(nodes)) / math.Log(float64(s.prof.Radix))))
	if d < 1 {
		d = 1
	}
	return d
}

// OpLatency returns the modelled time for one in-network allreduce of
// bytes across nodes leaves, measured from the moment the last leaf's
// data reaches its switch: injection of the payload, per-level switch
// reduction on the way up, and the latency of traversing the tree up and
// down.
func (s *Sharp) OpLatency(nodes int, bytes int) sim.Duration {
	depth := s.TreeDepth(nodes)
	d := s.prof.OpOverhead + sim.Duration(2*depth)*s.prof.HopLatency
	d += sim.TransferTime(int64(bytes), s.link)                                        // leaf injection
	d += sim.Duration(depth) * sim.TransferTime(int64(bytes), s.prof.SwitchReduceRate) // per-level reduce
	return d
}

// NewGroup allocates a SHArP communicator spanning the given compute
// nodes with leadersPerNode calling leaders on each (node-leader designs
// use 1, socket-leader designs one per socket), or returns ErrSharpGroups
// when the fabric-wide group budget is exhausted. The aggregation tree's
// depth is set by the node count — co-located leaders attach to the same
// leaf switch. Groups are never freed in our experiments (matching how
// MPI communicators hold them for the job lifetime); Release exists for
// completeness.
func (s *Sharp) NewGroup(nodes, leadersPerNode int) (*SharpGroup, error) {
	if s.groups >= s.prof.MaxGroups {
		return nil, ErrSharpGroups
	}
	if nodes <= 0 || leadersPerNode <= 0 {
		return nil, fmt.Errorf("fabric: SHArP group with %d nodes x %d leaders", nodes, leadersPerNode)
	}
	s.groups++
	return &SharpGroup{sharp: s, nodes: nodes, members: nodes * leadersPerNode}, nil
}

// Groups returns the number of live SHArP groups.
func (s *Sharp) Groups() int { return s.groups }

// SharpGroup is one SHArP communicator: the set of leaf nodes plus the
// operation-slot semaphore bounding concurrency.
type SharpGroup struct {
	sharp   *Sharp
	nodes   int
	members int
	cur     *sharpOp // operation currently collecting arrivals

	// Stats counts operations through this group.
	Stats struct {
		Ops uint64
	}
}

// sharpOp is one collective operation's state. It is separate from the
// group so that a subsequent operation can begin collecting arrivals
// while earlier waiters are still being rescheduled.
type sharpOp struct {
	bytes   int
	arrived int
	acc     any
	result  any
	err     error // set by the last arriver; seen by every caller
	waiters sim.Signal
}

// Nodes returns the number of leaf nodes in the group.
func (g *SharpGroup) Nodes() int { return g.nodes }

// Members returns the number of calling leaders across all nodes.
func (g *SharpGroup) Members() int { return g.members }

// Release frees the group's slot in the fabric-wide budget.
func (g *SharpGroup) Release() {
	if g.sharp.groups > 0 {
		g.sharp.groups--
	}
}

// Allreduce performs one in-network reduction of bytes. Every leaf's
// calling proc (one leader per leaf) must call it; all callers return at
// the operation's completion time with the reduced result. The operation
// occupies one outstanding-operation slot from when the last caller
// arrives until completion, so concurrent operations beyond MaxOutstanding
// serialize — this is the scalability ceiling that rules out
// per-DPML-leader SHArP (Section 4.3).
//
// contrib is this leaf's payload; reduce folds two payloads (the switch's
// arithmetic). Both may be nil for timing-only (phantom) runs, in which
// case the returned result is nil. Because the reduction happens in the
// switches, no host compute time is charged.
func (g *SharpGroup) Allreduce(p *sim.Proc, bytes int, contrib any, reduce func(acc, x any) any) (any, error) {
	if bytes > g.sharp.prof.MaxPayload {
		return nil, ErrSharpPayload
	}
	if g.cur == nil {
		g.cur = &sharpOp{bytes: bytes, acc: contrib}
	} else {
		op := g.cur
		if bytes != op.bytes {
			return nil, fmt.Errorf("fabric: SHArP leaves disagree on payload (%d vs %d bytes)", bytes, op.bytes)
		}
		if reduce != nil && contrib != nil {
			if op.acc == nil {
				op.acc = contrib
			} else {
				op.acc = reduce(op.acc, contrib)
			}
		}
	}
	op := g.cur
	op.arrived++
	if op.arrived < g.members {
		op.waiters.Wait(p, "sharp allreduce")
		return op.result, op.err
	}
	// Last arriver drives the operation; detach it so the next one can
	// start collecting while this one runs. The slot is fabric-wide:
	// concurrent operations from other groups contend for it.
	g.cur = nil
	if g.sharp.failed {
		// The offload outage is observed here, and only here, so every
		// caller of this operation sees the same verdict — per-caller
		// checks would diverge, since members reach the call at different
		// virtual times.
		op.acc = nil
		op.err = ErrSharpOffline
		op.waiters.FireAll()
		return nil, op.err
	}
	g.sharp.ost.Acquire(p)
	g.Stats.Ops++
	p.Sleep(g.sharp.OpLatency(g.nodes, bytes))
	g.sharp.ost.Release()
	op.result = op.acc
	op.acc = nil
	op.waiters.FireAll()
	return op.result, nil
}
