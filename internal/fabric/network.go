package fabric

import (
	"fmt"

	"dpml/internal/sim"
	"dpml/internal/topology"
)

// hca is one host channel adapter: an uplink, a downlink, and an injection
// serializer enforcing the NIC message rate. The injector state is
// owned by the HCA's node LP; the links themselves are flow-net state
// and immutable after construction.
//
//dpml:owner node
type hca struct {
	up       *Link
	down     *Link
	nextFree sim.Time
	gapScale float64 // injection-gap multiplier; 0 or 1 = nominal rate

	// Injection-queue observability (host-side counters; never read by
	// the simulation): total slots reserved, and the deepest backlog a
	// message ever saw — how far behind its arrival the injector clock
	// was when the slot was reserved.
	injections uint64
	maxBacklog sim.Duration
}

// Network models the inter-node interconnect of one job: per-node HCAs
// with capacity-limited links and message-rate-limited injectors, an
// optional oversubscribed fat-tree core stage, and fluid flows in between.
//
// Every communicating process owns an Endpoint whose private pipe link
// models its per-process protocol-processing rate (PSM onload / per-QP
// driving): however many messages the process has in flight, their total
// rate cannot exceed the pipe. This is what makes concurrency from
// *different* processes profitable (Figure 1) while extra in-flight
// messages from one process are not.
//
//dpml:owner net
type Network struct {
	coord *sim.Coordinator
	k     *sim.Kernel // the network LP's kernel: owns links, flows, Stats
	flows *FlowNet
	prof  topology.NetProfile
	nodes [][]*hca // [node][hca]

	// The oversubscribed core is modelled per leaf subtree: each subtree
	// owns an uplink/downlink pair into the core sized by its node count
	// and the oversubscription ratio. Traffic between nodes under the
	// same leaf never crosses the core (it turns around at the leaf
	// switch), so single-subtree jobs see no core stage at all. Both
	// slices are nil when the core is not a modelled bottleneck
	// (Oversubscription <= 1).
	sub    *topology.SubtreeMap
	coreUp []*Link // [subtree] uplink into the core
	coreDn []*Link // [subtree] downlink out of the core

	// Stats counts message-level activity. Owned by the network LP.
	Stats struct {
		Messages uint64
		Bytes    uint64
	}
}

// Endpoint is one process's attachment to the network. The pipes are
// full-duplex (matching the cost model's assumption): sending and
// receiving each have their own per-process processing rate. All
// fields are immutable after construction; the attachment belongs to
// its node's LP.
//
//dpml:owner node
type Endpoint struct {
	net  *Network
	k    *sim.Kernel // the owning node's kernel
	node int
	hca  int
	tx   *Link
	rx   *Link
}

// Node returns the endpoint's node index.
func (ep *Endpoint) Node() int { return ep.node }

// unlimited is the per-flow rate cap used now that rate limiting happens
// through per-process pipe links.
const unlimited = 1e18

// NewNetwork builds the interconnect for nodes compute nodes of the given
// cluster. Link and flow state belongs to the coordinator's network LP;
// flows must be a FlowNet bound to the network LP's kernel.
func NewNetwork(coord *sim.Coordinator, flows *FlowNet, c *topology.Cluster, nodes int) *Network {
	if nodes <= 0 || nodes > c.Nodes {
		panic(fmt.Sprintf("fabric: NewNetwork with %d nodes on %s", nodes, c.Name))
	}
	n := &Network{coord: coord, k: coord.NetKernel(), flows: flows, prof: c.Net}
	n.nodes = make([][]*hca, nodes)
	for i := range n.nodes {
		hcas := make([]*hca, c.HCAs)
		for h := range hcas {
			hcas[h] = &hca{
				up:   NewLink(fmt.Sprintf("n%d.h%d.up", i, h), c.Net.LinkBandwidth),
				down: NewLink(fmt.Sprintf("n%d.h%d.down", i, h), c.Net.LinkBandwidth),
			}
		}
		n.nodes[i] = hcas
	}
	n.sub = topology.LeafSubtrees(nodes, c.Net.LeafRadix)
	if over := c.Net.Oversubscription; over > 1 {
		n.coreUp = make([]*Link, n.sub.Count)
		n.coreDn = make([]*Link, n.sub.Count)
		for s := 0; s < n.sub.Count; s++ {
			agg := c.Net.LinkBandwidth * float64(n.sub.Size(s)*c.HCAs) / over
			n.coreUp[s] = NewLink(fmt.Sprintf("sub%d.core.up", s), agg)
			n.coreDn[s] = NewLink(fmt.Sprintf("sub%d.core.down", s), agg)
		}
	}
	return n
}

// Subtrees returns the leaf-subtree partition the network was built with.
func (n *Network) Subtrees() *topology.SubtreeMap { return n.sub }

// Profile returns the interconnect parameters in force.
func (n *Network) Profile() topology.NetProfile { return n.prof }

// NumNodes returns the number of nodes wired into this network.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Endpoint creates a fresh process attachment on the given node and HCA,
// with its own per-process pipe at the profile's PerFlowCap rate.
func (n *Network) Endpoint(node, hcaIdx int) *Endpoint {
	n.hcaAt(node, hcaIdx) // validate
	return &Endpoint{
		net:  n,
		k:    n.coord.KernelFor(node),
		node: node,
		hca:  hcaIdx,
		tx:   NewLink(fmt.Sprintf("n%d.h%d.tx", node, hcaIdx), n.prof.PerFlowCap),
		rx:   NewLink(fmt.Sprintf("n%d.h%d.rx", node, hcaIdx), n.prof.PerFlowCap),
	}
}

// Kernel returns the kernel owning the endpoint's node.
func (ep *Endpoint) Kernel() *sim.Kernel { return ep.k }

// InjectDelay reserves the next injection slot on the endpoint's HCA and
// returns how long the caller must wait before the message enters the
// wire. It advances the injector clock, so callers must sleep the
// returned duration (the MPI layer does). The HCA's injector state is
// node-local: it must only be touched from its own node's context.
func (ep *Endpoint) InjectDelay() sim.Duration {
	h := ep.net.hcaAt(ep.node, ep.hca)
	now := ep.k.Now()
	start := now
	if h.nextFree > start {
		start = h.nextFree
	}
	gap := ep.net.prof.MsgGap
	if h.gapScale > 0 && h.gapScale != 1 { //dpml:allow floateq -- 1.0 is an exact sentinel, never computed
		gap = sim.Duration(float64(gap) * h.gapScale)
	}
	h.nextFree = start.Add(gap)
	wait := start.Sub(now)
	h.injections++
	if wait > h.maxBacklog {
		h.maxBacklog = wait
	}
	return wait
}

// HCALinks exposes the uplink and downlink of one node's HCA, so the
// fault layer can degrade their capacity through FlowNet.SetLinkCapacity.
func (n *Network) HCALinks(node, hcaIdx int) (up, down *Link) {
	h := n.hcaAt(node, hcaIdx)
	return h.up, h.down
}

// SetInjectScale throttles one HCA's message rate: subsequent injections
// reserve scale times the profile's nominal gap. scale 1 (or 0) restores
// the nominal rate; already-reserved slots are not revisited. This is the
// fault layer's NIC-throttling hook.
func (n *Network) SetInjectScale(node, hcaIdx int, scale float64) {
	if scale < 0 {
		panic(fmt.Sprintf("fabric: SetInjectScale(%d, %d, %g)", node, hcaIdx, scale))
	}
	n.hcaAt(node, hcaIdx).gapScale = scale
}

// StartTransfer launches the wire part of one message between two
// endpoints on different nodes. The flow traverses the sender's pipe, the
// sender's uplink, the (optional) core stage, the receiver's downlink,
// and the receiver's pipe; onArrive fires in the destination node's
// context when the last byte has crossed the wire latency. The caller
// (in the source node's context) is responsible for charging CPU
// overheads and injection delay first.
func (n *Network) StartTransfer(src, dst *Endpoint, bytes int64, onArrive func()) {
	n.StartTransferNotify(src, dst, bytes, onArrive, nil)
}

// StartTransferNotify is StartTransfer with an additional sender-side
// completion: onSent, when non-nil, fires in the source node's context at
// the same instant onArrive fires at the destination (rendezvous sends
// complete the sender's request then). The two callbacks run on
// different nodes, so they must not share unsynchronized state.
func (n *Network) StartTransferNotify(src, dst *Endpoint, bytes int64, onArrive, onSent func()) {
	if src.node == dst.node {
		panic("fabric: StartTransfer within a node; use MemChannel")
	}
	// The flow's links and the message counters are network-LP state;
	// hop into it with a zero-delay injection (the network phase of each
	// time window runs after every node's, so the flow still starts at
	// the current instant).
	src.k.AfterNet(0, func() { n.launch(src, dst, bytes, onArrive, onSent) })
}

// launch starts the flow. Runs in network-LP context.
func (n *Network) launch(src, dst *Endpoint, bytes int64, onArrive, onSent func()) {
	su := n.hcaAt(src.node, src.hca)
	dd := n.hcaAt(dst.node, dst.hca)
	n.Stats.Messages++
	if bytes > 0 {
		n.Stats.Bytes += uint64(bytes)
	}
	wire := n.prof.WireLatency
	done := func() {
		n.k.AfterOn(dst.node, wire, onArrive)
		if onSent != nil {
			n.k.AfterOn(src.node, wire, onSent)
		}
	}
	if n.coreUp != nil {
		ss, ds := n.sub.Of[src.node], n.sub.Of[dst.node]
		if ss != ds {
			n.flows.Start(bytes, unlimited, done,
				src.tx, su.up, n.coreUp[ss], n.coreDn[ds], dd.down, dst.rx)
			return
		}
	}
	n.flows.Start(bytes, unlimited, done, src.tx, su.up, dd.down, dst.rx)
}

func (n *Network) hcaAt(node, h int) *hca {
	if node < 0 || node >= len(n.nodes) {
		panic(fmt.Sprintf("fabric: node %d out of range [0,%d)", node, len(n.nodes)))
	}
	hcas := n.nodes[node]
	if h < 0 || h >= len(hcas) {
		panic(fmt.Sprintf("fabric: hca %d out of range [0,%d)", h, len(hcas)))
	}
	return hcas[h]
}

// MemChannel models one node's shared-memory communication: every copy is
// a flow over the node's aggregate memory bandwidth with a per-flow
// streaming cap that depends on whether the copy crosses sockets.
//
//dpml:owner node
type MemChannel struct {
	k     *sim.Kernel
	flows *FlowNet
	prof  topology.MemProfile
	link  *Link

	// Stats counts copies.
	Stats struct {
		Copies      uint64
		CrossSocket uint64
		Bytes       uint64
	}
}

// NewMemChannel builds the memory channel for one node.
func NewMemChannel(k *sim.Kernel, flows *FlowNet, c *topology.Cluster, node int) *MemChannel {
	return &MemChannel{
		k:     k,
		flows: flows,
		prof:  c.Mem,
		link:  NewLink(fmt.Sprintf("n%d.mem", node), c.Mem.AggregateBW),
	}
}

// Profile returns the memory parameters in force.
func (m *MemChannel) Profile() topology.MemProfile { return m.prof }

// Copy blocks the calling proc for the duration of a shared-memory copy of
// bytes: the fixed startup cost (the paper's a'), then a flow across the
// node's memory system at the intra- or cross-socket streaming rate. The
// proc is busy for the whole copy (memcpy is CPU work).
func (m *MemChannel) Copy(p *sim.Proc, crossSocket bool, bytes int64) {
	startup := m.prof.CopyStartup
	rate := m.prof.CopyRate
	if crossSocket {
		startup += m.prof.CrossSocketExtra
		rate = m.prof.CrossSocketRate
		m.Stats.CrossSocket++
	}
	m.Stats.Copies++
	if bytes > 0 {
		m.Stats.Bytes += uint64(bytes)
	}
	p.Sleep(startup)
	if bytes <= 0 {
		return
	}
	var done sim.Signal
	m.flows.Start(bytes, rate, func() { done.Fire() }, m.link)
	done.Wait(p, "shm copy")
}

// StartTransfer is the asynchronous variant used for intra-node
// point-to-point messages: the payload drains through the memory system
// and onArrive fires when it lands. The caller charges startup costs.
func (m *MemChannel) StartTransfer(crossSocket bool, bytes int64, onArrive func()) {
	rate := m.prof.CopyRate
	if crossSocket {
		rate = m.prof.CrossSocketRate
		m.Stats.CrossSocket++
	}
	m.Stats.Copies++
	if bytes > 0 {
		m.Stats.Bytes += uint64(bytes)
	}
	m.flows.Start(bytes, rate, onArrive, m.link)
}

// LinkReport summarizes one link's lifetime activity for observability
// tools.
type LinkReport struct {
	Name     string
	Capacity float64 // bytes/sec
	Bytes    int64   // total carried
	Busy     sim.Duration
}

func report(l *Link) LinkReport {
	return LinkReport{Name: l.Name(), Capacity: l.Capacity(), Bytes: l.BytesMoved(), Busy: l.BusyTime()}
}

// InjectReport summarizes one HCA's injection-queue activity: how many
// messages reserved slots and the deepest backlog any of them waited
// behind.
type InjectReport struct {
	Node       int
	HCA        int
	Messages   uint64
	MaxBacklog sim.Duration
}

// InjectReports returns per-HCA injection-queue activity in node/HCA
// order.
func (n *Network) InjectReports() []InjectReport {
	var out []InjectReport
	for node, hcas := range n.nodes {
		for idx, h := range hcas {
			out = append(out, InjectReport{
				Node: node, HCA: idx,
				Messages: h.injections, MaxBacklog: h.maxBacklog,
			})
		}
	}
	return out
}

// Report returns per-link activity for every NIC link (and the
// per-subtree core stage, if modelled), in node/HCA then subtree order.
func (n *Network) Report() []LinkReport {
	var out []LinkReport
	for _, hcas := range n.nodes {
		for _, h := range hcas {
			out = append(out, report(h.up), report(h.down))
		}
	}
	for s := range n.coreUp {
		out = append(out, report(n.coreUp[s]), report(n.coreDn[s]))
	}
	return out
}

// Report returns the memory system's activity.
func (m *MemChannel) Report() LinkReport { return report(m.link) }
