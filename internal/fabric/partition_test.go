package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"dpml/internal/sim"
)

// refFill is an independent reimplementation of the canonical max-min
// water-fill on plain slices, always run as ONE global fill with every
// flow and link together, in global order. It exists so the production
// per-component fill can be checked against the mathematical definition
// it claims to decompose: partitioning into connected components must
// not change a single bit of any rate.
//
// caps[i] is flow i's rate ceiling; routes[i] lists the link indices
// flow i crosses; capacity[l] is link l's capacity. Returns the max-min
// fair rates.
func refFill(caps []float64, routes [][]int, capacity []float64) []float64 {
	nf, nl := len(caps), len(capacity)
	rates := make([]float64, nf)
	frozen := make([]bool, nf)
	// Per-link flow lists in global flow order, like Link.flows.
	flowsOn := make([][]int, nl)
	unfrozen := make([]int, nl)
	for i, r := range routes {
		for _, l := range r {
			flowsOn[l] = append(flowsOn[l], i)
			unfrozen[l]++
		}
	}
	share := make([]float64, nl)
	binds := make([]bool, nl)
	left := nf
	const eps = 1e-9
	for left > 0 {
		min := math.Inf(1)
		for l := 0; l < nl; l++ {
			if unfrozen[l] == 0 {
				continue
			}
			used := 0.0
			for _, i := range flowsOn[l] {
				if frozen[i] {
					used += rates[i]
				}
			}
			r := capacity[l] - used
			if r < 0 {
				r = 0
			}
			share[l] = r / float64(unfrozen[l])
			if share[l] < min {
				min = share[l]
			}
		}
		capFroze := false
		for i := 0; i < nf; i++ {
			if !frozen[i] && caps[i] <= min+eps {
				frozen[i] = true
				rates[i] = caps[i]
				for _, l := range routes[i] {
					unfrozen[l]--
				}
				left--
				capFroze = true
			}
		}
		if capFroze {
			continue
		}
		for l := 0; l < nl; l++ {
			binds[l] = unfrozen[l] > 0 && share[l] <= min*(1+1e-9)+eps
		}
		froze := false
		for l := 0; l < nl; l++ {
			if !binds[l] {
				continue
			}
			for _, i := range flowsOn[l] {
				if !frozen[i] {
					frozen[i] = true
					rates[i] = share[l]
					for _, ll := range routes[i] {
						unfrozen[ll]--
					}
					left--
					froze = true
				}
			}
		}
		if !froze {
			panic("refFill: no binding constraint")
		}
	}
	return rates
}

// TestPartitionedFillMatchesGlobalFill generates randomized topologies —
// many links of random capacity, flows crossing random link subsets with
// random caps — and checks that the production component-partitioned fill
// produces rates EXACTLY equal (==, not approximately) to the single
// global reference fill. Random populations fragment into many
// components, so this directly exercises the decomposition the netshards
// parallelism relies on.
func TestPartitionedFillMatchesGlobalFill(t *testing.T) {
	k := sim.NewKernel()
	n := NewFlowNet(k)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(mod int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng>>33) % mod
	}
	maxComps := 0
	for trial := 0; trial < 80; trial++ {
		nLinks := 2 + next(30)
		capacity := make([]float64, nLinks)
		links := make([]*Link, nLinks)
		for l := range links {
			capacity[l] = float64(1+next(40)) * 0.25e9
			links[l] = NewLink(fmt.Sprintf("t%d.l%d", trial, l), capacity[l])
		}
		nFlows := 1 + next(120)
		caps := make([]float64, nFlows)
		routes := make([][]int, nFlows)
		n.active = n.active[:0]
		n.live = 0
		for i := 0; i < nFlows; i++ {
			caps[i] = float64(1+next(16)) * 0.125e9
			f := &flow{cap: caps[i], remaining: 1e6}
			used := map[int]bool{}
			for j := 0; j <= next(3); j++ {
				li := next(nLinks)
				if used[li] {
					continue
				}
				used[li] = true
				f.links = append(f.links, links[li])
				routes[i] = append(routes[i], li)
			}
			if len(f.links) == 0 {
				f.links = append(f.links, links[i%nLinks])
				routes[i] = append(routes[i], i%nLinks)
			}
			for _, l := range f.links {
				l.addFlow(f)
			}
			n.active = append(n.active, f)
			n.live++
		}

		comps := n.findComponents()
		if comps > maxComps {
			maxComps = comps
		}
		for ci := 0; ci < comps; ci++ {
			n.waterFill(&n.comps[ci])
		}
		want := refFill(caps, routes, capacity)
		for i, f := range n.active {
			// The decomposition claim is bitwise equality, not tolerance.
			if math.Float64bits(f.rate) != math.Float64bits(want[i]) {
				t.Fatalf("trial %d (%d comps): flow %d rate %v, want %v (diff %g)",
					trial, comps, i, f.rate, want[i], f.rate-want[i])
			}
		}
	}
	if maxComps < 4 {
		t.Fatalf("largest trial had %d components; generator must produce fragmented topologies", maxComps)
	}
}

// TestFillWorkerCountInvariance runs a full simulation — hundreds of
// flows started and completing across virtual time, enough to engage the
// parallel fill path — and digests every completion instant. The digest
// must be identical for every worker count: netshards is wall-clock-only
// by construction, and this pins it end to end through recompute,
// reschedule, and the completion fast path.
func TestFillWorkerCountInvariance(t *testing.T) {
	digest := func(workers int) string {
		rng := uint64(7)
		next := func(mod int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int(rng>>33) % mod
		}
		k := sim.NewKernel()
		n := NewFlowNet(k)
		n.SetWorkers(workers)
		const nLinks = 40
		links := make([]*Link, nLinks)
		for l := range links {
			links[l] = NewLink(fmt.Sprintf("l%d", l), float64(1+next(8))*1e9)
		}
		h := sha256.New()
		k.Spawn("driver", func(p *sim.Proc) {
			var wg sim.WaitGroup
			const nFlows = 300
			wg.Add(nFlows)
			for i := 0; i < nFlows; i++ {
				route := []*Link{links[next(nLinks)]}
				if extra := next(nLinks); extra != 0 && links[extra] != route[0] {
					route = append(route, links[extra])
				}
				id := uint64(i)
				n.Start(int64(1+next(1<<22)), float64(1+next(10))*0.5e9, func() {
					var b [16]byte
					binary.LittleEndian.PutUint64(b[:8], id)
					binary.LittleEndian.PutUint64(b[8:], uint64(k.Now()))
					h.Write(b[:])
					wg.Done()
				}, route...)
				// Stagger start instants so flows overlap in shifting sets.
				if i%7 == 0 {
					p.Sleep(sim.Duration(1 + next(50_000)))
				}
			}
			wg.Wait(p, "flows")
		})
		if err := k.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n.Stats.MaxComponents < 2 {
			t.Fatalf("workers=%d: MaxComponents=%d, workload must fragment", workers, n.Stats.MaxComponents)
		}
		return fmt.Sprintf("%x", h.Sum(nil))
	}
	want := digest(1)
	for _, w := range []int{2, 3, 8} {
		if got := digest(w); got != want {
			t.Errorf("workers=%d digest %s != serial %s", w, got, want)
		}
	}
}
