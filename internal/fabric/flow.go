// Package fabric implements the communication substrate of the simulated
// clusters: a flow-level model of the inter-node interconnect (links with
// max-min fair sharing, per-flow rate caps, NIC injection gaps, wire
// latency), an intra-node shared-memory channel, and a SHArP in-network
// aggregation tree.
//
// The model is fluid: a transfer is a flow with a remaining byte count
// that drains at a rate decided by water-filling across the links it
// traverses. Whenever the flow population changes, rates are recomputed
// and completion events rescheduled. This reproduces, from first
// principles, the three throughput regimes the paper measures in Figure 1:
// overhead-bound (aggregate rate grows with concurrency), transition, and
// bandwidth-bound (aggregate rate flat).
package fabric

import (
	"fmt"
	"math"
	"sync"

	"dpml/internal/sim"
)

// Link is a capacity-constrained resource (one direction of a NIC port, a
// fat-tree core stage, or a node's memory system). A link belongs to
// whichever kernel's FlowNet drives it — the network LP for wire
// links, a node LP for memory links — so class ownership is per
// instance, not per type.
//
//dpml:owner shared
type Link struct {
	name      string
	capacity  float64 // bytes/sec
	flows     []*flow // live flows plus tombstones awaiting compaction
	live      int     // live entries in flows
	moved     float64 // total bytes carried (for utilization reports)
	busy      sim.Duration
	busyUntil sim.Time // high-water mark of charged busy time

	// bottleneck records whether the link was saturated by the last
	// water-fill; it gates the incremental completion fast path.
	bottleneck bool

	// water-filling scratch state, valid only within one recompute
	mark     uint64
	share    float64 // this iteration's fair share (residual / unfrozen)
	unfrozen int
	comp     int32 // component id during discovery (provisional, then dense)
	binds    bool  // marked binding in the current fill iteration
}

// NewLink returns a link with the given capacity in bytes/sec.
func NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("fabric: link %q capacity %g", name, capacity))
	}
	return &Link{name: name, capacity: capacity}
}

// Name returns the link's label.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's capacity in bytes/sec.
func (l *Link) Capacity() float64 { return l.capacity }

// ActiveFlows returns the number of flows currently crossing the link.
func (l *Link) ActiveFlows() int { return l.live }

// BytesMoved returns the total bytes the link has carried.
func (l *Link) BytesMoved() int64 { return int64(l.moved) }

// BusyTime returns the total virtual time the link spent with at least
// one active flow (accumulated at recompute granularity).
func (l *Link) BusyTime() sim.Duration { return l.busy }

// chargeBusy extends the link's busy accounting through [from, to),
// clipping against the high-water mark so overlapping charges (multiple
// flows settling over the same span) count once.
func (l *Link) chargeBusy(from, to sim.Time) {
	if to <= l.busyUntil {
		return
	}
	if from < l.busyUntil {
		from = l.busyUntil
	}
	l.busy += to.Sub(from)
	l.busyUntil = to
}

// Utilization returns BytesMoved / (capacity * elapsed), the fraction of
// the link's capacity used over the given span.
func (l *Link) Utilization(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return l.moved / (l.capacity * elapsed.Seconds())
}

func (l *Link) addFlow(f *flow) {
	l.flows = append(l.flows, f)
	l.live++
}

// compact drops tombstoned (completed) flows, preserving the insertion
// order of the survivors. Completion marks a flow done in O(1) instead of
// linearly scanning every link it crossed; the next water-fill — which
// walks these lists anyway — compacts them here, so removal is O(1)
// amortized while iteration order (and therefore every downstream
// floating-point sum and event sequence number) stays bit-identical to
// eager ordered removal.
func (l *Link) compact() {
	if len(l.flows) == l.live {
		return
	}
	flows := l.flows[:0]
	for _, f := range l.flows {
		if !f.done {
			flows = append(flows, f)
		}
	}
	for i := len(flows); i < len(l.flows); i++ {
		l.flows[i] = nil
	}
	l.flows = flows
}

// flow is one transfer in flight; like Link, it is owned by whichever
// kernel's FlowNet it runs under.
//
//dpml:owner shared
type flow struct {
	links      []*Link
	cap        float64 // per-flow rate ceiling, bytes/sec
	remaining  float64 // bytes left to move
	rate       float64
	prevRate   float64 // rate before the current recompute
	lastSettle sim.Time
	onDone     func()
	event      *sim.Event
	frozen     bool  // scratch state for water-filling
	done       bool  // completed; awaiting compaction
	comp       int32 // component id during discovery (provisional, then dense)
}

// component is one connected component of the flow-link bipartite graph:
// a set of flows and the links they (transitively) share. Max-min fair
// rates in one component are independent of every other component — the
// only exact decomposition of the fill — so components are the unit of
// parallel recomputation. Flow and link lists preserve the canonical
// global orders (n.active order; first-touch link order), so the fill's
// floating-point arithmetic does not depend on how components are grouped
// or which worker computes them.
type component struct {
	flows []*flow
	links []*Link
}

// FlowNet owns the set of active flows and keeps their rates max-min fair.
// All methods must be called from simulation context (a running proc or an
// event callback) of the kernel it was built with — the network LP for
// the wire FlowNet, a node LP for each memory FlowNet.
//
//dpml:owner shared
type FlowNet struct {
	k       *sim.Kernel
	workers int     // host goroutines for the component fill (see SetWorkers)
	active  []*flow // live flows plus tombstones awaiting compaction
	live    int     // live entries in active
	dirty   bool
	gen     uint64      // water-filling generation stamp
	uf      []int32     // scratch: union-find over provisional component ids
	comps   []component // scratch: per-component flow/link buckets, reused
	// Stats counts scheduler work for tests and reports.
	Stats struct {
		Started   uint64
		Completed uint64
		Recompute uint64
		// FastPath counts completions that skipped the settle-and-refill
		// recompute because no link the flow crossed was a bottleneck.
		FastPath uint64
		// MaxComponents is the largest number of independent link
		// components any single recompute saw — the available water-fill
		// parallelism (1 means the whole net is one coupled component).
		MaxComponents uint64
	}
}

// NewFlowNet returns an empty flow scheduler bound to the kernel.
func NewFlowNet(k *sim.Kernel) *FlowNet {
	return &FlowNet{k: k, workers: 1}
}

// SetWorkers sets how many host goroutines recompute may use to
// water-fill independent link components concurrently (the -netshards
// knob). Components share no state and their arithmetic is canonical, so
// the results are bit-identical at every worker count — w only decides
// wall-clock parallelism. w < 1 is clamped to 1 (serial).
func (n *FlowNet) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	n.workers = w
}

// Workers returns the configured water-fill worker count.
func (n *FlowNet) Workers() int { return n.workers }

// Active returns the number of in-flight flows.
func (n *FlowNet) Active() int { return n.live }

// Start launches a flow of bytes over the given links with a per-flow rate
// ceiling, invoking onDone in kernel context when the last byte drains.
// Zero-byte flows complete immediately (still asynchronously, at the
// current instant). Rate recomputation is batched: flows started at the
// same instant trigger one water-filling pass.
func (n *FlowNet) Start(bytes int64, rateCap float64, onDone func(), links ...*Link) {
	if rateCap <= 0 {
		panic("fabric: flow rate cap must be positive")
	}
	if len(links) == 0 {
		panic("fabric: flow needs at least one link")
	}
	if bytes <= 0 {
		n.k.After(0, onDone)
		return
	}
	f := &flow{
		links:      links,
		cap:        rateCap,
		remaining:  float64(bytes),
		lastSettle: n.k.Now(),
		onDone:     onDone,
	}
	for _, l := range links {
		l.addFlow(f)
	}
	n.active = append(n.active, f)
	n.live++
	n.Stats.Started++
	n.markDirty()
}

// SetLinkCapacity changes l's capacity in place and re-water-fills every
// in-flight flow (batched with any other changes at this instant, like a
// Start). This is the fault layer's link-degradation hook: a congested or
// flapping link slows flows already crossing it mid-transfer, exactly as
// a real capacity change would. Must be called from simulation context.
// The completion fast path stays sound: the net is dirty until the refill
// event fires, so no completion trusts the stale bottleneck flags.
func (n *FlowNet) SetLinkCapacity(l *Link, capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("fabric: SetLinkCapacity(%q, %g)", l.name, capacity))
	}
	if capacity == l.capacity { //dpml:allow floateq -- no-op guard: any real change re-waterfills
		return
	}
	l.capacity = capacity
	n.markDirty()
}

func (n *FlowNet) markDirty() {
	if n.dirty {
		return
	}
	n.dirty = true
	n.k.After(0, func() {
		n.dirty = false
		n.recompute()
	})
}

func (n *FlowNet) complete(f *flow) {
	// Credit the final, not-yet-settled leg of the transfer.
	now := n.k.Now()
	fast := !n.dirty
	for _, l := range f.links {
		l.moved += f.remaining
		l.chargeBusy(f.lastSettle, now)
		l.live--
		if l.bottleneck {
			fast = false
		}
	}
	f.remaining = 0
	f.event = nil
	// O(1) removal: tombstone the flow; the next water-fill compacts it
	// out of n.active and each link's list in order-preserving passes.
	f.done = true
	n.live--
	n.Stats.Completed++
	done := f.onDone
	f.onDone = nil
	if fast {
		// Incremental fast path: every link this flow crossed had spare
		// capacity after the last water-fill, so no surviving flow was
		// throttled by them — the departure cannot raise anyone's rate,
		// and the full settle-and-refill pass is skipped. (Link capacity
		// in use only decreases between fills, so the flags can only be
		// conservatively stale: a flagged bottleneck forces a recompute
		// it might not strictly need, never the reverse.)
		n.Stats.FastPath++
	} else {
		n.markDirty()
	}
	if done != nil {
		done()
	}
}

// parallelFillMin is the flow-population floor below which recompute
// stays serial even when workers > 1: goroutine handoff costs more than
// a small fill, and tiny populations rarely split into many components.
const parallelFillMin = 48

// recompute settles progress, water-fills rates, and reschedules
// completion events for every active flow. The settle and fill run per
// connected component of the flow-link graph — components share no state
// and use canonical arithmetic (see fillComponent), so striding them
// across workers changes wall-clock only, never a single bit of output.
func (n *FlowNet) recompute() {
	n.Stats.Recompute++
	n.compact()
	if n.live == 0 {
		return
	}
	now := n.k.Now()
	count := n.findComponents()
	if uint64(count) > n.Stats.MaxComponents {
		n.Stats.MaxComponents = uint64(count)
	}
	w := n.workers
	if w > count {
		w = count
	}
	if w > 1 && n.live >= parallelFillMin {
		var wg sync.WaitGroup
		for i := 1; i < w; i++ {
			wg.Add(1)
			go func(start int) {
				defer wg.Done()
				for j := start; j < count; j += w {
					n.fillComponent(&n.comps[j], now)
				}
			}(i)
		}
		for j := 0; j < count; j += w {
			n.fillComponent(&n.comps[j], now)
		}
		wg.Wait()
	} else {
		for i := 0; i < count; i++ {
			n.fillComponent(&n.comps[i], now)
		}
	}
	n.reschedule(now)
}

// compact drops tombstoned flows from the active list, preserving the
// insertion order of survivors (see Link.compact for why order matters).
func (n *FlowNet) compact() {
	if len(n.active) == n.live {
		return
	}
	active := n.active[:0]
	for _, f := range n.active {
		if !f.done {
			active = append(active, f)
		}
	}
	for i := len(active); i < len(n.active); i++ {
		n.active[i] = nil
	}
	n.active = active
}

// reschedule refreshes completion events after a water-fill. A flow's
// event is pending from the first fill after Start until complete nils
// it, so re-fitting is an in-place Kernel.Reschedule — no cancelled
// tombstones pile up in the event heap and the completion closure is
// allocated once per flow, not once per rate change.
func (n *FlowNet) reschedule(now sim.Time) {
	for _, f := range n.active {
		// An unchanged rate means the previously scheduled completion
		// time is still exact (fluid drain is linear); skipping the
		// reschedule avoids re-keying thousands of events when a
		// recompute leaves most flows untouched.
		if f.event != nil && f.rate == f.prevRate { //dpml:allow floateq -- bit-identical rate keeps the scheduled completion exact
			continue
		}
		d := sim.TransferTime(int64(math.Ceil(f.remaining)), f.rate)
		at := now.Add(d)
		if f.event != nil {
			if f.event.When() != at {
				n.k.Reschedule(f.event, at)
			}
			continue
		}
		ff := f
		f.event = n.k.At(at, func() { n.complete(ff) })
	}
}

// ufFind resolves a provisional component id to its root with path
// halving. Entries may hold ^denseID (negative) once the root has been
// claimed during the remap pass; those stop the walk and carry the dense
// id forward, so halving across them is still sound.
func ufFind(uf []int32, x int32) int32 {
	for uf[x] >= 0 && uf[x] != x {
		if p := uf[uf[x]]; p >= 0 {
			uf[x] = p
		}
		x = uf[x]
	}
	return x
}

// findComponents partitions the live flows and their links into connected
// components of the flow-link bipartite graph and buckets them into
// n.comps, returning the component count. Two flows land in the same
// component iff they transitively share a link — exactly the set whose
// max-min fair rates are coupled — so filling components independently is
// an exact decomposition, not an approximation.
//
// Numbering and bucket order are canonical: dense component ids are
// assigned in first-appearance order over n.active, each component's
// flows preserve n.active order, and its links preserve global
// first-touch order. Every downstream float sum therefore runs in the
// same order regardless of how many components exist or which worker
// fills them.
func (n *FlowNet) findComponents() int {
	// Pass 1: union-find over provisional ids. Links are stamped, then
	// compacted once per recompute here (see Link.compact).
	n.gen++
	uf := n.uf[:0]
	for _, f := range n.active {
		root := int32(-1)
		for _, l := range f.links {
			if l.mark != n.gen {
				l.mark = n.gen
				l.compact()
				l.comp = -1
			}
			if l.comp < 0 {
				continue
			}
			r := ufFind(uf, l.comp)
			if root < 0 || r == root {
				root = r
			} else if r < root {
				uf[root] = r
				root = r
			} else {
				uf[r] = root
			}
		}
		if root < 0 {
			root = int32(len(uf))
			uf = append(uf, root)
		}
		f.comp = root
		for _, l := range f.links {
			if l.comp < 0 {
				l.comp = root
			}
		}
	}

	// Pass 2: resolve roots to dense ids (claimed roots store ^denseID in
	// place) and bucket flows and links per component.
	n.gen++
	count := int32(0)
	for _, f := range n.active {
		r := ufFind(uf, f.comp)
		var id int32
		if uf[r] < 0 {
			id = ^uf[r]
		} else {
			id = count
			uf[r] = ^count
			count++
			if int(id) == len(n.comps) {
				n.comps = append(n.comps, component{})
			}
			n.comps[id].flows = n.comps[id].flows[:0]
			n.comps[id].links = n.comps[id].links[:0]
		}
		f.comp = id
		c := &n.comps[id]
		c.flows = append(c.flows, f)
		for _, l := range f.links {
			if l.mark != n.gen {
				l.mark = n.gen
				l.unfrozen = 0
				l.comp = id
				c.links = append(c.links, l)
			}
			l.unfrozen++
		}
	}
	n.uf = uf
	return int(count)
}

// fillComponent settles elapsed progress, water-fills rates, and refreshes
// bottleneck flags for one component. Safe to run concurrently with other
// components: every flow belongs to exactly one component and every link's
// flows all share that component, so the touched state is disjoint.
func (n *FlowNet) fillComponent(c *component, now sim.Time) {
	for _, f := range c.flows {
		if dt := now.Sub(f.lastSettle); dt > 0 {
			moved := f.rate * dt.Seconds()
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			for _, l := range f.links {
				l.moved += moved
				l.chargeBusy(f.lastSettle, now)
			}
		}
		f.lastSettle = now
		f.frozen = false
		f.prevRate = f.rate
		f.rate = 0
	}

	n.waterFill(c)

	// Record which links this fill saturated. Completions on links with
	// spare capacity take the incremental fast path (see complete). The
	// tolerance errs toward "bottleneck": misflagging a saturated link as
	// free would skip a required recompute, while the reverse only costs
	// a redundant one.
	for _, l := range c.links {
		used := 0.0
		for _, f := range l.flows {
			used += f.rate
		}
		l.bottleneck = l.capacity-used <= l.capacity*1e-6
	}
}

// waterFill assigns max-min fair rates within one component. Each
// iteration recomputes every link's fair share from scratch — residual
// capacity summed over the link's frozen flows in list order, divided by
// its unfrozen count — then freezes the tightest constraint: flows whose
// own cap binds first, otherwise the flows of every link whose share sits
// at the minimum, each frozen at its own link's share.
//
// The from-scratch share and freeze-at-own-share rules are what make the
// fill canonical: a frozen rate is always either f.cap or a share computed
// purely from that link's flow list, never a value imported from another
// link or component. The minimum share only decides *when* a flow freezes,
// not the value it freezes at, so running a component alone produces
// bit-identical rates to running it inside a global fill (up to exact-tie
// grouping, which the tolerances below make consistent either way).
// Symmetric collective traffic typically converges in one or two
// iterations.
func (n *FlowNet) waterFill(c *component) {
	unfrozen := len(c.flows)
	const eps = 1e-9
	for unfrozen > 0 {
		// Recompute each link's fair share and find the tightest.
		share := math.Inf(1)
		for _, l := range c.links {
			if l.unfrozen == 0 {
				continue
			}
			used := 0.0
			for _, f := range l.flows {
				if f.frozen {
					used += f.rate
				}
			}
			r := l.capacity - used
			if r < 0 {
				r = 0
			}
			l.share = r / float64(l.unfrozen)
			if l.share < share {
				share = l.share
			}
		}
		// Flows whose own cap binds before the link share freeze at
		// their cap, freeing capacity for the rest.
		capFroze := false
		for _, f := range c.flows {
			if !f.frozen && f.cap <= share+eps {
				f.frozen = true
				f.rate = f.cap
				for _, l := range f.links {
					l.unfrozen--
				}
				unfrozen--
				capFroze = true
			}
		}
		if capFroze {
			continue
		}
		// Otherwise bottleneck links bind. Snapshot the binding set
		// before freezing anything — freezing mutates unfrozen counts,
		// and membership must not depend on within-pass order — then
		// freeze each binding link's flows at that link's own share.
		for _, l := range c.links {
			l.binds = l.unfrozen > 0 && l.share <= share*(1+1e-9)+eps
		}
		froze := false
		for _, l := range c.links {
			if !l.binds {
				continue
			}
			for _, f := range l.flows {
				if !f.frozen {
					f.frozen = true
					f.rate = l.share
					for _, fl := range f.links {
						fl.unfrozen--
					}
					unfrozen--
					froze = true
				}
			}
		}
		if !froze {
			// Numerically impossible, but never spin.
			panic("fabric: water-filling found no binding constraint")
		}
	}
}
