// Package fabric implements the communication substrate of the simulated
// clusters: a flow-level model of the inter-node interconnect (links with
// max-min fair sharing, per-flow rate caps, NIC injection gaps, wire
// latency), an intra-node shared-memory channel, and a SHArP in-network
// aggregation tree.
//
// The model is fluid: a transfer is a flow with a remaining byte count
// that drains at a rate decided by water-filling across the links it
// traverses. Whenever the flow population changes, rates are recomputed
// and completion events rescheduled. This reproduces, from first
// principles, the three throughput regimes the paper measures in Figure 1:
// overhead-bound (aggregate rate grows with concurrency), transition, and
// bandwidth-bound (aggregate rate flat).
package fabric

import (
	"fmt"
	"math"

	"dpml/internal/sim"
)

// Link is a capacity-constrained resource (one direction of a NIC port, a
// fat-tree core stage, or a node's memory system).
type Link struct {
	name      string
	capacity  float64 // bytes/sec
	flows     []*flow // live flows plus tombstones awaiting compaction
	live      int     // live entries in flows
	moved     float64 // total bytes carried (for utilization reports)
	busy      sim.Duration
	busyUntil sim.Time // high-water mark of charged busy time

	// bottleneck records whether the link was saturated by the last
	// water-fill; it gates the incremental completion fast path.
	bottleneck bool

	// water-filling scratch state, valid only within one recompute
	mark     uint64
	residual float64
	unfrozen int
}

// NewLink returns a link with the given capacity in bytes/sec.
func NewLink(name string, capacity float64) *Link {
	if capacity <= 0 {
		panic(fmt.Sprintf("fabric: link %q capacity %g", name, capacity))
	}
	return &Link{name: name, capacity: capacity}
}

// Name returns the link's label.
func (l *Link) Name() string { return l.name }

// Capacity returns the link's capacity in bytes/sec.
func (l *Link) Capacity() float64 { return l.capacity }

// ActiveFlows returns the number of flows currently crossing the link.
func (l *Link) ActiveFlows() int { return l.live }

// BytesMoved returns the total bytes the link has carried.
func (l *Link) BytesMoved() int64 { return int64(l.moved) }

// BusyTime returns the total virtual time the link spent with at least
// one active flow (accumulated at recompute granularity).
func (l *Link) BusyTime() sim.Duration { return l.busy }

// chargeBusy extends the link's busy accounting through [from, to),
// clipping against the high-water mark so overlapping charges (multiple
// flows settling over the same span) count once.
func (l *Link) chargeBusy(from, to sim.Time) {
	if to <= l.busyUntil {
		return
	}
	if from < l.busyUntil {
		from = l.busyUntil
	}
	l.busy += to.Sub(from)
	l.busyUntil = to
}

// Utilization returns BytesMoved / (capacity * elapsed), the fraction of
// the link's capacity used over the given span.
func (l *Link) Utilization(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return l.moved / (l.capacity * elapsed.Seconds())
}

func (l *Link) addFlow(f *flow) {
	l.flows = append(l.flows, f)
	l.live++
}

// compact drops tombstoned (completed) flows, preserving the insertion
// order of the survivors. Completion marks a flow done in O(1) instead of
// linearly scanning every link it crossed; the next water-fill — which
// walks these lists anyway — compacts them here, so removal is O(1)
// amortized while iteration order (and therefore every downstream
// floating-point sum and event sequence number) stays bit-identical to
// eager ordered removal.
func (l *Link) compact() {
	if len(l.flows) == l.live {
		return
	}
	flows := l.flows[:0]
	for _, f := range l.flows {
		if !f.done {
			flows = append(flows, f)
		}
	}
	for i := len(flows); i < len(l.flows); i++ {
		l.flows[i] = nil
	}
	l.flows = flows
}

type flow struct {
	links      []*Link
	cap        float64 // per-flow rate ceiling, bytes/sec
	remaining  float64 // bytes left to move
	rate       float64
	prevRate   float64 // rate before the current recompute
	lastSettle sim.Time
	onDone     func()
	event      *sim.Event
	frozen     bool // scratch state for water-filling
	done       bool // completed; awaiting compaction
}

// FlowNet owns the set of active flows and keeps their rates max-min fair.
// All methods must be called from simulation context (a running proc or an
// event callback).
type FlowNet struct {
	k      *sim.Kernel
	active []*flow // live flows plus tombstones awaiting compaction
	live   int     // live entries in active
	dirty  bool
	gen    uint64  // water-filling generation stamp
	lbuf   []*Link // scratch: links touched by the current fill
	// Stats counts scheduler work for tests and reports.
	Stats struct {
		Started   uint64
		Completed uint64
		Recompute uint64
		// FastPath counts completions that skipped the settle-and-refill
		// recompute because no link the flow crossed was a bottleneck.
		FastPath uint64
	}
}

// NewFlowNet returns an empty flow scheduler bound to the kernel.
func NewFlowNet(k *sim.Kernel) *FlowNet {
	return &FlowNet{k: k}
}

// Active returns the number of in-flight flows.
func (n *FlowNet) Active() int { return n.live }

// Start launches a flow of bytes over the given links with a per-flow rate
// ceiling, invoking onDone in kernel context when the last byte drains.
// Zero-byte flows complete immediately (still asynchronously, at the
// current instant). Rate recomputation is batched: flows started at the
// same instant trigger one water-filling pass.
func (n *FlowNet) Start(bytes int64, rateCap float64, onDone func(), links ...*Link) {
	if rateCap <= 0 {
		panic("fabric: flow rate cap must be positive")
	}
	if len(links) == 0 {
		panic("fabric: flow needs at least one link")
	}
	if bytes <= 0 {
		n.k.After(0, onDone)
		return
	}
	f := &flow{
		links:      links,
		cap:        rateCap,
		remaining:  float64(bytes),
		lastSettle: n.k.Now(),
		onDone:     onDone,
	}
	for _, l := range links {
		l.addFlow(f)
	}
	n.active = append(n.active, f)
	n.live++
	n.Stats.Started++
	n.markDirty()
}

// SetLinkCapacity changes l's capacity in place and re-water-fills every
// in-flight flow (batched with any other changes at this instant, like a
// Start). This is the fault layer's link-degradation hook: a congested or
// flapping link slows flows already crossing it mid-transfer, exactly as
// a real capacity change would. Must be called from simulation context.
// The completion fast path stays sound: the net is dirty until the refill
// event fires, so no completion trusts the stale bottleneck flags.
func (n *FlowNet) SetLinkCapacity(l *Link, capacity float64) {
	if capacity <= 0 {
		panic(fmt.Sprintf("fabric: SetLinkCapacity(%q, %g)", l.name, capacity))
	}
	if capacity == l.capacity { //dpml:allow floateq -- no-op guard: any real change re-waterfills
		return
	}
	l.capacity = capacity
	n.markDirty()
}

func (n *FlowNet) markDirty() {
	if n.dirty {
		return
	}
	n.dirty = true
	n.k.After(0, func() {
		n.dirty = false
		n.recompute()
	})
}

func (n *FlowNet) complete(f *flow) {
	// Credit the final, not-yet-settled leg of the transfer.
	now := n.k.Now()
	fast := !n.dirty
	for _, l := range f.links {
		l.moved += f.remaining
		l.chargeBusy(f.lastSettle, now)
		l.live--
		if l.bottleneck {
			fast = false
		}
	}
	f.remaining = 0
	f.event = nil
	// O(1) removal: tombstone the flow; the next water-fill compacts it
	// out of n.active and each link's list in order-preserving passes.
	f.done = true
	n.live--
	n.Stats.Completed++
	done := f.onDone
	f.onDone = nil
	if fast {
		// Incremental fast path: every link this flow crossed had spare
		// capacity after the last water-fill, so no surviving flow was
		// throttled by them — the departure cannot raise anyone's rate,
		// and the full settle-and-refill pass is skipped. (Link capacity
		// in use only decreases between fills, so the flags can only be
		// conservatively stale: a flagged bottleneck forces a recompute
		// it might not strictly need, never the reverse.)
		n.Stats.FastPath++
	} else {
		n.markDirty()
	}
	if done != nil {
		done()
	}
}

// recompute settles progress, water-fills rates, and reschedules
// completion events for every active flow.
func (n *FlowNet) recompute() {
	n.Stats.Recompute++
	n.compact()
	now := n.k.Now()
	for _, f := range n.active {
		if dt := now.Sub(f.lastSettle); dt > 0 {
			moved := f.rate * dt.Seconds()
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			for _, l := range f.links {
				l.moved += moved
				l.chargeBusy(f.lastSettle, now)
			}
		}
		f.lastSettle = now
		f.frozen = false
		f.prevRate = f.rate
		f.rate = 0
	}

	n.waterFill()

	n.reschedule(now)
}

// compact drops tombstoned flows from the active list, preserving the
// insertion order of survivors (see Link.compact for why order matters).
func (n *FlowNet) compact() {
	if len(n.active) == n.live {
		return
	}
	active := n.active[:0]
	for _, f := range n.active {
		if !f.done {
			active = append(active, f)
		}
	}
	for i := len(active); i < len(n.active); i++ {
		n.active[i] = nil
	}
	n.active = active
}

// reschedule refreshes completion events after a water-fill. A flow's
// event is pending from the first fill after Start until complete nils
// it, so re-fitting is an in-place Kernel.Reschedule — no cancelled
// tombstones pile up in the event heap and the completion closure is
// allocated once per flow, not once per rate change.
func (n *FlowNet) reschedule(now sim.Time) {
	for _, f := range n.active {
		// An unchanged rate means the previously scheduled completion
		// time is still exact (fluid drain is linear); skipping the
		// reschedule avoids re-keying thousands of events when a
		// recompute leaves most flows untouched.
		if f.event != nil && f.rate == f.prevRate { //dpml:allow floateq -- bit-identical rate keeps the scheduled completion exact
			continue
		}
		d := sim.TransferTime(int64(math.Ceil(f.remaining)), f.rate)
		at := now.Add(d)
		if f.event != nil {
			if f.event.When() != at {
				n.k.Reschedule(f.event, at)
			}
			continue
		}
		ff := f
		f.event = n.k.At(at, func() { n.complete(ff) })
	}
}

// waterFill assigns max-min fair rates. Each iteration finds the tightest
// constraint — a link's fair share or a flow's own cap — and freezes every
// flow bound by it; symmetric collective traffic typically converges in
// one or two iterations. Link-resident scratch state (stamped by a
// generation counter) keeps the fill allocation-free and linear per
// iteration.
func (n *FlowNet) waterFill() {
	if len(n.active) == 0 {
		return
	}
	n.gen++
	links := n.lbuf[:0]
	for _, f := range n.active {
		for _, l := range f.links {
			if l.mark != n.gen {
				l.mark = n.gen
				l.residual = l.capacity
				l.unfrozen = 0
				l.compact()
				links = append(links, l)
			}
			l.unfrozen++
		}
	}
	n.lbuf = links

	freeze := func(f *flow, rate float64) {
		f.frozen = true
		f.rate = rate
		for _, l := range f.links {
			l.residual -= rate
			if l.residual < 0 {
				l.residual = 0
			}
			l.unfrozen--
		}
	}

	unfrozen := len(n.active)
	const eps = 1e-9
	for unfrozen > 0 {
		// Tightest link fair share.
		share := math.Inf(1)
		for _, l := range links {
			if l.unfrozen == 0 {
				continue
			}
			if s := l.residual / float64(l.unfrozen); s < share {
				share = s
			}
		}
		// Flows whose own cap binds before the link share freeze at
		// their cap, freeing capacity for the rest.
		capFroze := false
		for _, f := range n.active {
			if !f.frozen && f.cap <= share+eps {
				freeze(f, f.cap)
				unfrozen--
				capFroze = true
			}
		}
		if capFroze {
			continue
		}
		// Otherwise bottleneck links bind. Every link whose fair share
		// sits at the minimum freezes its flows at that share in one
		// pass — consistent because they all bind at the same value
		// (freezing shared flows at exactly the share preserves the
		// remaining links' shares).
		froze := false
		for _, l := range links {
			if l.unfrozen == 0 {
				continue
			}
			if l.residual/float64(l.unfrozen) <= share*(1+1e-9)+eps {
				for _, f := range l.flows {
					if !f.frozen {
						freeze(f, share)
						unfrozen--
						froze = true
					}
				}
			}
		}
		if !froze {
			// Numerically impossible, but never spin.
			panic("fabric: water-filling found no binding constraint")
		}
	}

	// Record which links this fill saturated. Completions on links with
	// spare capacity take the incremental fast path (see complete). The
	// tolerance errs toward "bottleneck": misflagging a saturated link as
	// free would skip a required recompute, while the reverse only costs
	// a redundant one.
	for _, l := range links {
		l.bottleneck = l.residual <= l.capacity*1e-6
	}
}
