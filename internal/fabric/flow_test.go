package fabric

import (
	"fmt"
	"math"
	"testing"

	"dpml/internal/sim"
)

// runFlows drives a kernel with a single proc that starts flows and waits
// for them all.
func runFlows(t *testing.T, body func(k *sim.Kernel, n *FlowNet, p *sim.Proc)) sim.Time {
	t.Helper()
	k := sim.NewKernel()
	n := NewFlowNet(k)
	k.Spawn("driver", func(p *sim.Proc) { body(k, n, p) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return k.Now()
}

func waitFlows(p *sim.Proc, count int, start func(done func())) {
	var wg sim.WaitGroup
	wg.Add(count)
	start(func() { wg.Done() })
	wg.Wait(p, "flows")
}

func TestSingleFlowUncontended(t *testing.T) {
	// 1 MB at a 1 GB/s cap over a 10 GB/s link: exactly 1 ms.
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l := NewLink("l", 10e9)
		waitFlows(p, 1, func(done func()) {
			n.Start(1_000_000, 1e9, done, l)
		})
	})
	if end != sim.Time(sim.Millisecond) {
		t.Fatalf("flow finished at %v, want 1ms", end)
	}
}

func TestLinkSharingFairly(t *testing.T) {
	// Two identical flows on a 2 GB/s link with 10 GB/s caps each get
	// 1 GB/s: 1 MB takes 1 ms.
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l := NewLink("l", 2e9)
		waitFlows(p, 2, func(done func()) {
			n.Start(1_000_000, 10e9, done, l)
			n.Start(1_000_000, 10e9, done, l)
		})
	})
	if end != sim.Time(sim.Millisecond) {
		t.Fatalf("flows finished at %v, want 1ms", end)
	}
}

func TestPerFlowCapBinds(t *testing.T) {
	// A single flow on a fat link but capped at 0.5 GB/s: 1 MB takes 2 ms.
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l := NewLink("l", 100e9)
		waitFlows(p, 1, func(done func()) {
			n.Start(1_000_000, 0.5e9, done, l)
		})
	})
	if end != sim.Time(2*sim.Millisecond) {
		t.Fatalf("flow finished at %v, want 2ms", end)
	}
}

func TestCapFreesBandwidthForOthers(t *testing.T) {
	// On a 3 GB/s link: flow X capped at 1 GB/s, flow Y capped at 10
	// GB/s. Max-min: X gets 1, Y gets 2. X moves 1 MB (1 ms), Y moves
	// 2 MB (1 ms). Both end at 1 ms.
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l := NewLink("l", 3e9)
		waitFlows(p, 2, func(done func()) {
			n.Start(1_000_000, 1e9, done, l)
			n.Start(2_000_000, 10e9, done, l)
		})
	})
	if end != sim.Time(sim.Millisecond) {
		t.Fatalf("flows finished at %v, want 1ms", end)
	}
}

func TestRateReallocatedOnDeparture(t *testing.T) {
	// 2 GB/s link, two 10GB/s-capped flows: A has 1 MB, B has 2 MB.
	// Phase 1: both at 1 GB/s until A finishes at 1 ms (B has 1 MB
	// left). Phase 2: B alone at 2 GB/s, 0.5 ms more. B ends at 1.5 ms.
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l := NewLink("l", 2e9)
		waitFlows(p, 2, func(done func()) {
			n.Start(1_000_000, 10e9, done, l)
			n.Start(2_000_000, 10e9, done, l)
		})
	})
	want := sim.Time(1500 * sim.Microsecond)
	if end != want {
		t.Fatalf("last flow finished at %v, want %v", end, want)
	}
}

func TestRateReallocatedOnArrival(t *testing.T) {
	// 2 GB/s link. Flow A (4 MB) starts alone at t=0: 2 GB/s. At t=1ms
	// (2 MB left) flow B (1 MB) arrives: both at 1 GB/s. B done at 2ms,
	// A has 1 MB left, finishes at 2.5 ms.
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l := NewLink("l", 2e9)
		var wg sim.WaitGroup
		wg.Add(2)
		n.Start(4_000_000, 10e9, func() { wg.Done() }, l)
		p.Sleep(sim.Millisecond)
		n.Start(1_000_000, 10e9, func() { wg.Done() }, l)
		wg.Wait(p, "flows")
	})
	want := sim.Time(2500 * sim.Microsecond)
	if end != want {
		t.Fatalf("last flow finished at %v, want %v", end, want)
	}
}

func TestMultiLinkPathBottleneck(t *testing.T) {
	// Path through a 10 GB/s uplink and a 1 GB/s downlink: the narrow
	// link binds. 1 MB takes 1 ms.
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		up := NewLink("up", 10e9)
		down := NewLink("down", 1e9)
		waitFlows(p, 1, func(done func()) {
			n.Start(1_000_000, 100e9, done, up, down)
		})
	})
	if end != sim.Time(sim.Millisecond) {
		t.Fatalf("flow finished at %v, want 1ms", end)
	}
}

func TestCrossTrafficMaxMin(t *testing.T) {
	// Links L1 (1 GB/s) and L2 (2 GB/s). Flow A crosses both, flow B
	// only L2. Max-min: A limited by L1 share; A and B both unfrozen on
	// L2 share 1 each; L1 gives A 1. So A=1 on L1... water-fill: first
	// bottleneck is L1 (1/1=1) vs L2 (2/2=1): both tie at 1. A=1, B=1.
	// With 1 MB each both end at 1 ms.
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l1 := NewLink("l1", 1e9)
		l2 := NewLink("l2", 2e9)
		waitFlows(p, 2, func(done func()) {
			n.Start(1_000_000, 10e9, done, l1, l2)
			n.Start(1_000_000, 10e9, done, l2)
		})
	})
	if end != sim.Time(sim.Millisecond) {
		t.Fatalf("flows finished at %v, want 1ms", end)
	}
}

func TestCrossTrafficAsymmetric(t *testing.T) {
	// L1 = 1 GB/s carries A only; L2 = 3 GB/s carries A and B.
	// Max-min: A bound by L1 at 1; B then gets 2 on L2.
	// A: 1 MB at 1 GB/s = 1 ms. B: 2 MB at 2 GB/s = 1 ms.
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l1 := NewLink("l1", 1e9)
		l2 := NewLink("l2", 3e9)
		waitFlows(p, 2, func(done func()) {
			n.Start(1_000_000, 10e9, done, l1, l2)
			n.Start(2_000_000, 10e9, done, l2)
		})
	})
	if end != sim.Time(sim.Millisecond) {
		t.Fatalf("flows finished at %v, want 1ms", end)
	}
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l := NewLink("l", 1e9)
		waitFlows(p, 1, func(done func()) {
			n.Start(0, 1e9, done, l)
		})
	})
	if end != 0 {
		t.Fatalf("zero-byte flow took %v", end)
	}
}

func TestManyFlowsAggregateThroughputConserved(t *testing.T) {
	// 16 equal flows over one 8 GB/s link, caps 1 GB/s each: each runs
	// at 0.5 GB/s; 1 MB each finishes at 2 ms; the link never exceeds
	// capacity (implied by finish time: 16 MB / 8 GB/s = 2 ms exactly).
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l := NewLink("l", 8e9)
		waitFlows(p, 16, func(done func()) {
			for i := 0; i < 16; i++ {
				n.Start(1_000_000, 1e9, done, l)
			}
		})
	})
	if end != sim.Time(2*sim.Millisecond) {
		t.Fatalf("flows finished at %v, want 2ms", end)
	}
}

func TestStaggeredFlowsConserveWork(t *testing.T) {
	// Random-ish staggered starts: total bytes / capacity lower-bounds
	// the makespan; per-flow caps upper-bound it. Verifies no bytes are
	// lost or duplicated across reallocation events.
	var totalBytes int64
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l := NewLink("l", 4e9)
		var wg sim.WaitGroup
		sizes := []int64{100_000, 2_000_000, 350_000, 1_200_000, 900_000, 50_000, 777_000}
		wg.Add(len(sizes))
		for i, s := range sizes {
			totalBytes += s
			n.Start(s, 1.5e9, func() { wg.Done() }, l)
			p.Sleep(sim.Duration(i*137) * sim.Microsecond)
		}
		wg.Wait(p, "flows")
	})
	minTime := sim.DurationOfSeconds(float64(totalBytes) / 4e9)
	if sim.Duration(end) < minTime {
		t.Fatalf("finished at %v, faster than link capacity allows (%v)", end, minTime)
	}
	// Generous upper bound: serial at the slowest per-flow rate plus all
	// stagger delays.
	maxTime := sim.DurationOfSeconds(float64(totalBytes)/1.5e9) + 5*sim.Millisecond
	if sim.Duration(end) > maxTime {
		t.Fatalf("finished at %v, slower than worst case %v", end, maxTime)
	}
}

func TestFlowNetStats(t *testing.T) {
	k := sim.NewKernel()
	n := NewFlowNet(k)
	k.Spawn("driver", func(p *sim.Proc) {
		l := NewLink("l", 1e9)
		waitFlows(p, 3, func(done func()) {
			for i := 0; i < 3; i++ {
				n.Start(1000, 1e9, done, l)
			}
		})
		if n.Active() != 0 {
			t.Errorf("Active = %d after completion", n.Active())
		}
		if l.ActiveFlows() != 0 {
			t.Errorf("link still has %d flows", l.ActiveFlows())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.Started != 3 || n.Stats.Completed != 3 {
		t.Fatalf("stats %+v, want 3 started/completed", n.Stats)
	}
}

func TestCompletionFastPathSkipsRecompute(t *testing.T) {
	// Two cap-bound flows share one fat link (2 GB/s of demand on 100
	// GB/s): the link is never a bottleneck, so each completion must take
	// the incremental fast path instead of scheduling a full
	// settle-and-refill recompute.
	k := sim.NewKernel()
	n := NewFlowNet(k)
	k.Spawn("driver", func(p *sim.Proc) {
		l := NewLink("fat", 100e9)
		waitFlows(p, 2, func(done func()) {
			n.Start(1_000_000, 1e9, done, l) // finishes at 1 ms
			n.Start(2_000_000, 1e9, done, l) // finishes at 2 ms
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.Recompute != 1 {
		t.Errorf("Recompute = %d, want 1 (only the start batch)", n.Stats.Recompute)
	}
	if n.Stats.FastPath != 2 {
		t.Errorf("FastPath = %d, want 2 (both completions skip the refill)", n.Stats.FastPath)
	}
	// Kernel event budget: one batched recompute plus two completion
	// events — the fast path must not schedule anything extra.
	if k.Stats.Events != 3 {
		t.Errorf("kernel events = %d, want 3 (1 recompute + 2 completions)", k.Stats.Events)
	}
	if n.Active() != 0 {
		t.Errorf("Active = %d after completion", n.Active())
	}
}

func TestCompletionOnBottleneckLinkRecomputes(t *testing.T) {
	// Contrast case: the shared link is saturated, so a departure frees
	// bandwidth the survivor must pick up — every completion must trigger
	// a full recompute (and the survivor must actually speed up: see
	// TestRateReallocatedOnDeparture for the timing assertion).
	k := sim.NewKernel()
	n := NewFlowNet(k)
	k.Spawn("driver", func(p *sim.Proc) {
		l := NewLink("narrow", 2e9)
		waitFlows(p, 2, func(done func()) {
			n.Start(1_000_000, 10e9, done, l)
			n.Start(2_000_000, 10e9, done, l)
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.FastPath != 0 {
		t.Errorf("FastPath = %d, want 0 (bottleneck departures must refill)", n.Stats.FastPath)
	}
	if n.Stats.Recompute != 3 {
		t.Errorf("Recompute = %d, want 3 (start batch + one per departure)", n.Stats.Recompute)
	}
	// 1 start-batch recompute + 2 completions + 2 departure recomputes.
	if k.Stats.Events != 5 {
		t.Errorf("kernel events = %d, want 5", k.Stats.Events)
	}
}

func TestFastPathPreservesLinkAccounting(t *testing.T) {
	// Skipping the settle pass must not lose byte or busy accounting:
	// the final-leg credit in complete covers the unsettled span.
	k := sim.NewKernel()
	n := NewFlowNet(k)
	l := NewLink("fat", 100e9)
	k.Spawn("driver", func(p *sim.Proc) {
		waitFlows(p, 2, func(done func()) {
			n.Start(1_000_000, 1e9, done, l)
			n.Start(2_000_000, 1e9, done, l)
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Stats.FastPath != 2 {
		t.Fatalf("FastPath = %d, want 2", n.Stats.FastPath)
	}
	if got := l.BytesMoved(); got != 3_000_000 {
		t.Errorf("BytesMoved = %d, want 3000000", got)
	}
	if busy := l.BusyTime(); busy != 2*sim.Millisecond {
		t.Errorf("BusyTime = %v, want 2ms (flows span [0,1ms] and [0,2ms])", busy)
	}
	if l.ActiveFlows() != 0 {
		t.Errorf("ActiveFlows = %d after completion", l.ActiveFlows())
	}
}

func TestWaterFillInvariants(t *testing.T) {
	// Property-style check on the water-filler directly: random flow
	// populations must never oversubscribe a link, never exceed a flow
	// cap, and leave no slack when a flow could go faster.
	k := sim.NewKernel()
	n := NewFlowNet(k)
	rng := uint64(12345)
	next := func(mod int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng>>33) % mod
	}
	for trial := 0; trial < 50; trial++ {
		nLinks := 1 + next(5)
		links := make([]*Link, nLinks)
		for i := range links {
			links[i] = NewLink(fmt.Sprintf("t%d.l%d", trial, i), float64(1+next(10))*1e9)
		}
		nFlows := 1 + next(20)
		n.active = n.active[:0]
		for i := 0; i < nFlows; i++ {
			f := &flow{cap: float64(1+next(8)) * 0.5e9, remaining: 1e6}
			used := map[int]bool{}
			for j := 0; j <= next(nLinks); j++ {
				li := next(nLinks)
				if used[li] {
					continue
				}
				used[li] = true
				f.links = append(f.links, links[li])
				links[li].addFlow(f)
			}
			if len(f.links) == 0 {
				f.links = append(f.links, links[0])
				links[0].addFlow(f)
			}
			n.active = append(n.active, f)
		}
		comps := n.findComponents()
		for ci := 0; ci < comps; ci++ {
			n.waterFill(&n.comps[ci])
		}
		const eps = 1e-3
		for _, l := range links {
			sum := 0.0
			for _, f := range l.flows {
				sum += f.rate
			}
			if sum > l.capacity*(1+eps) {
				t.Fatalf("trial %d: link %s oversubscribed: %g > %g", trial, l.name, sum, l.capacity)
			}
		}
		for fi, f := range n.active {
			if f.rate > f.cap*(1+eps) {
				t.Fatalf("trial %d: flow %d rate %g exceeds cap %g", trial, fi, f.rate, f.cap)
			}
			if f.rate <= 0 {
				t.Fatalf("trial %d: flow %d starved", trial, fi)
			}
			// Max-min: if the flow is below its cap, at least one of its
			// links must be (nearly) saturated.
			if f.rate < f.cap*(1-eps) {
				saturated := false
				for _, l := range f.links {
					sum := 0.0
					for _, g := range l.flows {
						sum += g.rate
					}
					if sum >= l.capacity*(1-eps) {
						saturated = true
						break
					}
				}
				if !saturated {
					t.Fatalf("trial %d: flow %d below cap with slack everywhere", trial, fi)
				}
			}
		}
		// Detach flows for the next trial.
		for _, l := range links {
			l.flows = nil
		}
	}
}

func TestTransferTimeMatchesFluidModel(t *testing.T) {
	// Cross-check: end-to-end completion of one flow equals
	// TransferTime for a spread of sizes.
	for _, bytes := range []int64{1, 100, 4096, 1 << 20, 64 << 20} {
		bytes := bytes
		end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
			l := NewLink("l", 12.5e9)
			waitFlows(p, 1, func(done func()) {
				n.Start(bytes, 12.5e9, done, l)
			})
		})
		want := sim.TransferTime(bytes, 12.5e9)
		got := sim.Duration(end)
		if d := math.Abs(float64(got - want)); d > 2 {
			t.Errorf("bytes=%d: completion %v, want %v", bytes, got, want)
		}
	}
}

func TestLinkAccountingConservation(t *testing.T) {
	// Bytes moved through each link must equal the payloads carried, and
	// busy time must match the active span (not multiplied by the flow
	// count).
	k := sim.NewKernel()
	n := NewFlowNet(k)
	l := NewLink("l", 2e9)
	k.Spawn("driver", func(p *sim.Proc) {
		var wg sim.WaitGroup
		wg.Add(2)
		// Two 1 MB flows sharing the link: 1 GB/s each, both end at 1ms.
		n.Start(1_000_000, 10e9, func() { wg.Done() }, l)
		n.Start(1_000_000, 10e9, func() { wg.Done() }, l)
		wg.Wait(p, "flows")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := l.BytesMoved(); got != 2_000_000 {
		t.Fatalf("BytesMoved = %d, want 2000000", got)
	}
	busy := l.BusyTime()
	if busy != sim.Millisecond {
		t.Fatalf("BusyTime = %v, want 1ms (not double-counted)", busy)
	}
	if u := l.Utilization(sim.Millisecond); u < 0.99 || u > 1.01 {
		t.Fatalf("Utilization = %v, want ~1.0", u)
	}
	if l.Utilization(0) != 0 {
		t.Fatal("Utilization over zero span must be 0")
	}
}

func TestLinkAccessors(t *testing.T) {
	l := NewLink("x", 5e9)
	if l.Name() != "x" || l.Capacity() != 5e9 || l.ActiveFlows() != 0 {
		t.Fatal("accessors wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-capacity link accepted")
		}
	}()
	NewLink("bad", 0)
}
