package fabric

import (
	"errors"
	"testing"

	"dpml/internal/sim"
	"dpml/internal/topology"
)

// TestSetLinkCapacityReWaterFills: degrading a link mid-transfer slows
// the flow already crossing it. 1 MB at 2 GB/s; after 0.25 ms (500 KB
// moved) the link drops to 1 GB/s, so the rest takes 0.5 ms more.
func TestSetLinkCapacityReWaterFills(t *testing.T) {
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l := NewLink("l", 2e9)
		k.At(sim.Time(250*sim.Microsecond), func() { n.SetLinkCapacity(l, 1e9) })
		waitFlows(p, 1, func(done func()) {
			n.Start(1_000_000, 10e9, done, l)
		})
	})
	if end != sim.Time(750*sim.Microsecond) {
		t.Fatalf("flow finished at %v, want 750us", end)
	}
}

// TestSetLinkCapacityRestore: a flapping link that recovers mid-transfer
// speeds the flow back up: 0.25 ms at 2 GB/s (500 KB), 0.25 ms at 1 GB/s
// (250 KB), then the remaining 250 KB at 2 GB/s (0.125 ms).
func TestSetLinkCapacityRestore(t *testing.T) {
	end := runFlows(t, func(k *sim.Kernel, n *FlowNet, p *sim.Proc) {
		l := NewLink("l", 2e9)
		k.At(sim.Time(250*sim.Microsecond), func() { n.SetLinkCapacity(l, 1e9) })
		k.At(sim.Time(500*sim.Microsecond), func() { n.SetLinkCapacity(l, 2e9) })
		waitFlows(p, 1, func(done func()) {
			n.Start(1_000_000, 10e9, done, l)
		})
	})
	if end != sim.Time(625*sim.Microsecond) {
		t.Fatalf("flow finished at %v, want 625us", end)
	}
}

// TestSetInjectScaleThrottlesGap: a throttled HCA reserves scaled
// injection slots; restoring scale 1 returns to the nominal gap.
func TestSetInjectScaleThrottlesGap(t *testing.T) {
	c := topology.ClusterB()
	k, _, net := newTestNet(c, 2)
	ep := net.Endpoint(0, 0)
	gap := c.Net.MsgGap
	k.Spawn("sender", func(p *sim.Proc) {
		d1 := ep.InjectDelay() // reserves [0, gap)
		d2 := ep.InjectDelay() // reserves [gap, 2*gap)
		net.SetInjectScale(0, 0, 3)
		d3 := ep.InjectDelay() // reserves [2*gap, 5*gap)
		d4 := ep.InjectDelay() // reserves [5*gap, 8*gap)
		net.SetInjectScale(0, 0, 1)
		d5 := ep.InjectDelay() // reserves [8*gap, 9*gap)
		d6 := ep.InjectDelay()
		if d1 != 0 || d2 != sim.Duration(gap) {
			t.Errorf("nominal delays %v %v, want 0 and %v", d1, d2, gap)
		}
		if d4-d3 != 3*gap {
			t.Errorf("throttled gap %v, want %v", d4-d3, 3*gap)
		}
		if d6-d5 != gap {
			t.Errorf("restored gap %v, want %v", d6-d5, gap)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestSharpOfflineSeenByAllMembers: an outage beginning while an
// operation is in the switch tree lets that operation complete, and the
// decision for the next operation is made once — by its last arriver —
// so every member of the failed operation gets ErrSharpOffline, and the
// group works again after recovery.
func TestSharpOfflineSeenByAllMembers(t *testing.T) {
	k := sim.NewKernel()
	s, err := NewSharp(k, topology.ClusterA())
	if err != nil {
		t.Fatal(err)
	}
	const nodes = 4
	g, err := s.NewGroup(nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fail mid-flight of the first op; it must still complete.
	k.At(sim.Time(0).Add(s.OpLatency(nodes, 256)/2), func() { s.SetFailed(true) })
	errs := make([][3]error, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		k.Spawn("leaf", func(p *sim.Proc) {
			_, errs[i][0] = g.Allreduce(p, 256, nil, nil)
			_, errs[i][1] = g.Allreduce(p, 256, nil, nil)
			if i == 0 {
				s.SetFailed(false) // recovery before the third op's last arriver
			}
			_, errs[i][2] = g.Allreduce(p, 256, nil, nil)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e[0] != nil {
			t.Errorf("leaf %d: in-flight op failed: %v", i, e[0])
		}
		if !errors.Is(e[1], ErrSharpOffline) {
			t.Errorf("leaf %d: op during outage: err = %v, want ErrSharpOffline", i, e[1])
		}
		if e[2] != nil {
			t.Errorf("leaf %d: op after recovery failed: %v", i, e[2])
		}
	}
	if g.Stats.Ops != 2 {
		t.Fatalf("ops = %d, want 2 (the failed op never entered the tree)", g.Stats.Ops)
	}
	if s.Failed() {
		t.Fatal("Failed() = true after recovery")
	}
}
