package fabric

import (
	"errors"
	"testing"

	"dpml/internal/sim"
	"dpml/internal/topology"
)

// newTestNet builds a single-shard coordinator, its network-LP flow
// scheduler, and a network for nodes compute nodes of c. The returned
// kernel owns every LP, so tests can Spawn and Run on it directly.
func newTestNet(c *topology.Cluster, nodes int) (*sim.Kernel, *FlowNet, *Network) {
	coord := sim.NewCoordinator(nodes, 1, c.Net.WireLatency)
	k := coord.NetKernel()
	fn := NewFlowNet(k)
	return k, fn, NewNetwork(coord, fn, c, nodes)
}

func TestNetworkTransferBasics(t *testing.T) {
	c := topology.ClusterB()
	k, _, net := newTestNet(c, 2)
	var arrived sim.Time
	src, dst := net.Endpoint(0, 0), net.Endpoint(1, 0)
	k.Spawn("sender", func(p *sim.Proc) {
		var done sim.Signal
		net.StartTransfer(src, dst, 1<<20, func() { arrived = k.Now(); done.Fire() })
		done.Wait(p, "arrive")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Duration(sim.TransferTime(1<<20, c.Net.PerFlowCap)) + c.Net.WireLatency
	if got := sim.Duration(arrived); got != want {
		t.Fatalf("arrival at %v, want %v", got, want)
	}
	if net.Stats.Messages != 1 || net.Stats.Bytes != 1<<20 {
		t.Fatalf("stats %+v", net.Stats)
	}
}

func TestNetworkConcurrencyScalesOnIB(t *testing.T) {
	// The Fig 1b property: k concurrent pairs on IB move k MB in barely
	// more than one pair moves 1 MB, because per-flow caps (not the
	// link) bind.
	c := topology.ClusterB()
	elapsed := func(pairs int) sim.Duration {
		k, _, net := newTestNet(c, 2)
		k.Spawn("driver", func(p *sim.Proc) {
			var wg sim.WaitGroup
			wg.Add(pairs)
			for i := 0; i < pairs; i++ {
				net.StartTransfer(net.Endpoint(0, 0), net.Endpoint(1, 0), 1<<20, func() { wg.Done() })
			}
			wg.Wait(p, "transfers")
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.Duration(k.Now())
	}
	t1, t8 := elapsed(1), elapsed(8)
	// 8 pairs move 8x the data; with per-flow caps binding, time should
	// stay within 25% of a single pair.
	if float64(t8) > float64(t1)*1.25 {
		t.Fatalf("8-pair time %v vs 1-pair %v: IB concurrency not scaling", t8, t1)
	}
}

func TestNetworkConcurrencyFlatOnOmniPathLarge(t *testing.T) {
	// The Fig 1c Zone C property: on Omni-Path one flow nearly saturates
	// the link, so 8 concurrent 1 MB transfers take ~8x one transfer.
	c := topology.ClusterC()
	elapsed := func(pairs int) sim.Duration {
		k, _, net := newTestNet(c, 2)
		k.Spawn("driver", func(p *sim.Proc) {
			var wg sim.WaitGroup
			wg.Add(pairs)
			for i := 0; i < pairs; i++ {
				net.StartTransfer(net.Endpoint(0, 0), net.Endpoint(1, 0), 1<<20, func() { wg.Done() })
			}
			wg.Wait(p, "transfers")
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.Duration(k.Now())
	}
	t1, t8 := elapsed(1), elapsed(8)
	ratio := float64(t8) / float64(t1)
	if ratio < 6 {
		t.Fatalf("8-pair/1-pair time ratio %.2f, want ~8 (link-bound)", ratio)
	}
}

func TestInjectDelayEnforcesMessageGap(t *testing.T) {
	c := topology.ClusterC()
	k, _, net := newTestNet(c, 2)
	ep0 := net.Endpoint(0, 0)
	ep0b := net.Endpoint(0, 0) // second process on the same HCA
	ep1 := net.Endpoint(1, 0)
	k.Spawn("driver", func(p *sim.Proc) {
		// Back-to-back injections at the same instant must space out by
		// MsgGap each, and the HCA injector is shared between the node's
		// processes.
		if d := ep0.InjectDelay(); d != 0 {
			t.Errorf("first injection delayed %v", d)
		}
		if d := ep0.InjectDelay(); d != c.Net.MsgGap {
			t.Errorf("second injection delayed %v, want %v", d, c.Net.MsgGap)
		}
		if d := ep0b.InjectDelay(); d != 2*c.Net.MsgGap {
			t.Errorf("third injection (other process) delayed %v, want %v", d, 2*c.Net.MsgGap)
		}
		// A different node's HCA is independent.
		if d := ep1.InjectDelay(); d != 0 {
			t.Errorf("other node injection delayed %v", d)
		}
		// After the gap has passed, no delay.
		p.Sleep(sim.Second)
		if d := ep0.InjectDelay(); d != 0 {
			t.Errorf("injection after idle delayed %v", d)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOversubscribedCoreBottleneck(t *testing.T) {
	// Cluster D has a 5/4 oversubscribed core. With every node blasting
	// full-rate traffic at the opposite leaf subtree, the aggregate must
	// be limited by the per-subtree core capacity. (The leaf radix is
	// pinned to half the job so all traffic crosses the core; same-leaf
	// traffic legitimately never sees it.)
	c := topology.ClusterD()
	const nodes = 8
	c.Net.LeafRadix = nodes / 2
	k, _, net := newTestNet(c, nodes)
	if net.coreUp == nil {
		t.Fatal("cluster D network must model an oversubscribed core")
	}
	if got := net.Subtrees().Count; got != 2 {
		t.Fatalf("subtrees = %d, want 2", got)
	}
	const bytes = 4 << 20
	k.Spawn("driver", func(p *sim.Proc) {
		var wg sim.WaitGroup
		// node i -> node (i+nodes/2)%nodes, 2 sender processes each, so
		// every flow crosses both subtrees' core links
		for i := 0; i < nodes; i++ {
			for j := 0; j < 2; j++ {
				wg.Add(1)
				net.StartTransfer(net.Endpoint(i, 0), net.Endpoint((i+nodes/2)%nodes, 0), bytes, func() { wg.Done() })
			}
		}
		wg.Wait(p, "transfers")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Each subtree's core uplink carries half the total at capacity
	// LinkBandwidth * (nodes/2) / over, so the whole exchange cannot beat
	// total / (LinkBandwidth * nodes / over) — the same aggregate bound
	// the lumped-core model enforced.
	total := float64(nodes * 2 * bytes)
	coreCap := c.Net.LinkBandwidth * float64(nodes) / c.Net.Oversubscription
	minTime := sim.DurationOfSeconds(total / coreCap)
	if sim.Duration(k.Now()) < minTime-sim.Microsecond {
		t.Fatalf("finished at %v, faster than core capacity permits (%v)", k.Now(), minTime)
	}
}

func TestNetworkPanicsOnBadEndpoints(t *testing.T) {
	_, _, net := newTestNet(topology.ClusterB(), 2)
	cases := []func(){
		func() { net.StartTransfer(net.Endpoint(0, 0), net.Endpoint(0, 0), 10, func() {}) }, // same node
		func() { net.Endpoint(5, 0) }, // bad node
		func() { net.Endpoint(0, 3) }, // bad hca
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestMemChannelCopyCosts(t *testing.T) {
	c := topology.ClusterA()
	elapsed := func(cross bool, bytes int64) sim.Duration {
		k := sim.NewKernel()
		fn := NewFlowNet(k)
		m := NewMemChannel(k, fn, c, 0)
		k.Spawn("copier", func(p *sim.Proc) { m.Copy(p, cross, bytes) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.Duration(k.Now())
	}
	// Intra-socket: startup + bytes/CopyRate.
	got := elapsed(false, 1<<20)
	want := c.Mem.CopyStartup + sim.TransferTime(1<<20, c.Mem.CopyRate)
	if got != want {
		t.Fatalf("intra-socket copy %v, want %v", got, want)
	}
	// Cross-socket pays the extra latency and the slower rate.
	gotX := elapsed(true, 1<<20)
	wantX := c.Mem.CopyStartup + c.Mem.CrossSocketExtra + sim.TransferTime(1<<20, c.Mem.CrossSocketRate)
	if gotX != wantX {
		t.Fatalf("cross-socket copy %v, want %v", gotX, wantX)
	}
	if gotX <= got {
		t.Fatal("cross-socket copy must cost more than intra-socket")
	}
	// Zero bytes: just the startup.
	if z := elapsed(false, 0); z != sim.Duration(c.Mem.CopyStartup) {
		t.Fatalf("zero-byte copy %v, want startup %v", z, c.Mem.CopyStartup)
	}
}

func TestMemChannelConcurrentCopiesScale(t *testing.T) {
	// Fig 1a property: many concurrent intra-node copies proceed nearly
	// in parallel because aggregate memory bandwidth far exceeds one
	// core's streaming rate.
	c := topology.ClusterA()
	elapsed := func(copiers int) sim.Duration {
		k := sim.NewKernel()
		fn := NewFlowNet(k)
		m := NewMemChannel(k, fn, c, 0)
		for i := 0; i < copiers; i++ {
			k.Spawn("copier", func(p *sim.Proc) { m.Copy(p, false, 1<<20) })
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return sim.Duration(k.Now())
	}
	t1, t14 := elapsed(1), elapsed(14)
	if float64(t14) > float64(t1)*1.2 {
		t.Fatalf("14 concurrent copies took %v vs single %v: shm concurrency broken", t14, t1)
	}
}

func TestMemChannelAggregateBandwidthBinds(t *testing.T) {
	// Enough concurrent copiers must eventually saturate the node's
	// aggregate memory bandwidth.
	c := topology.ClusterA()
	copiers := int(c.Mem.AggregateBW/c.Mem.CopyRate) * 2 // 2x oversubscribed
	k := sim.NewKernel()
	fn := NewFlowNet(k)
	m := NewMemChannel(k, fn, c, 0)
	const bytes = 1 << 20
	for i := 0; i < copiers; i++ {
		k.Spawn("copier", func(p *sim.Proc) { m.Copy(p, false, bytes) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	minTime := sim.DurationOfSeconds(float64(copiers*bytes)/c.Mem.AggregateBW) + c.Mem.CopyStartup
	if sim.Duration(k.Now()) < minTime-sim.Microsecond {
		t.Fatalf("%d copies finished at %v, faster than memory bandwidth allows (%v)",
			copiers, k.Now(), minTime)
	}
}

func TestSharpUnavailableOnNonMellanox(t *testing.T) {
	k := sim.NewKernel()
	for _, c := range []*topology.Cluster{topology.ClusterB(), topology.ClusterC(), topology.ClusterD()} {
		if _, err := NewSharp(k, c); !errors.Is(err, ErrSharpUnavailable) {
			t.Errorf("%s: NewSharp err = %v, want ErrSharpUnavailable", c.Name, err)
		}
	}
}

func TestSharpTreeDepth(t *testing.T) {
	k := sim.NewKernel()
	s, err := NewSharp(k, topology.ClusterA())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ nodes, depth int }{
		{1, 1}, {2, 1}, {16, 1}, {17, 2}, {256, 2}, {257, 3},
	}
	for _, c := range cases {
		if got := s.TreeDepth(c.nodes); got != c.depth {
			t.Errorf("TreeDepth(%d) = %d, want %d", c.nodes, got, c.depth)
		}
	}
}

func TestSharpGroupLimits(t *testing.T) {
	k := sim.NewKernel()
	s, err := NewSharp(k, topology.ClusterA())
	if err != nil {
		t.Fatal(err)
	}
	max := s.Profile().MaxGroups
	groups := make([]*SharpGroup, 0, max)
	for i := 0; i < max; i++ {
		g, err := s.NewGroup(16, 1)
		if err != nil {
			t.Fatalf("group %d: %v", i, err)
		}
		groups = append(groups, g)
	}
	if _, err := s.NewGroup(16, 1); !errors.Is(err, ErrSharpGroups) {
		t.Fatalf("over-limit NewGroup err = %v, want ErrSharpGroups", err)
	}
	groups[0].Release()
	if _, err := s.NewGroup(16, 1); err != nil {
		t.Fatalf("NewGroup after Release: %v", err)
	}
	if _, err := s.NewGroup(0, 1); err == nil {
		t.Fatal("NewGroup(0 nodes) accepted")
	}
}

func TestSharpAllreduceCompletesAllLeaves(t *testing.T) {
	k := sim.NewKernel()
	s, err := NewSharp(k, topology.ClusterA())
	if err != nil {
		t.Fatal(err)
	}
	const nodes = 16
	g, err := s.NewGroup(nodes, 1)
	if err != nil {
		t.Fatal(err)
	}
	finish := make([]sim.Time, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		k.Spawn("leaf", func(p *sim.Proc) {
			p.Sleep(sim.Duration(i) * sim.Microsecond) // staggered arrival
			if _, err := g.Allreduce(p, 256, nil, nil); err != nil {
				t.Error(err)
			}
			finish[i] = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// All leaves complete at the same instant: last arrival (15us) plus
	// the op latency.
	want := sim.Time(15 * sim.Microsecond).Add(s.OpLatency(nodes, 256))
	for i, f := range finish {
		if f != want {
			t.Fatalf("leaf %d finished at %v, want %v", i, f, want)
		}
	}
	if g.Stats.Ops != 1 {
		t.Fatalf("ops = %d, want 1", g.Stats.Ops)
	}
}

func TestSharpPayloadLimit(t *testing.T) {
	k := sim.NewKernel()
	s, _ := NewSharp(k, topology.ClusterA())
	g, _ := s.NewGroup(2, 1)
	var gotErr error
	k.Spawn("leaf0", func(p *sim.Proc) {
		_, gotErr = g.Allreduce(p, s.MaxPayload()+1, nil, nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrSharpPayload) {
		t.Fatalf("err = %v, want ErrSharpPayload", gotErr)
	}
}

func TestSharpOutstandingOpsSerialize(t *testing.T) {
	// More concurrent groups than MaxOutstanding: operations must
	// serialize, so total time grows past a single op's latency.
	k := sim.NewKernel()
	s, _ := NewSharp(k, topology.ClusterA())
	maxOps := s.Profile().MaxOutstanding
	groups := maxOps * 3
	const nodes = 4
	opLat := s.OpLatency(nodes, 1024)
	for gi := 0; gi < groups; gi++ {
		g, err := s.NewGroup(nodes, 1)
		if err != nil {
			t.Fatal(err)
		}
		for leaf := 0; leaf < nodes; leaf++ {
			k.Spawn("leaf", func(p *sim.Proc) {
				if _, err := g.Allreduce(p, 1024, nil, nil); err != nil {
					t.Error(err)
				}
			})
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	rounds := groups / maxOps
	want := sim.Time(sim.Duration(rounds) * opLat)
	if k.Now() != want {
		t.Fatalf("finished at %v, want %v (%d serialized rounds)", k.Now(), want, rounds)
	}
}

func TestSharpSmallBeatsLargeScaling(t *testing.T) {
	// OpLatency must grow superlinearly enough with payload that the
	// host-based design wins past a few KB (Fig 8 crossover).
	k := sim.NewKernel()
	s, _ := NewSharp(k, topology.ClusterA())
	l8 := s.OpLatency(16, 8)
	l4k := s.OpLatency(16, 4096)
	if l4k < 3*l8 {
		t.Fatalf("4KB op (%v) should cost much more than 8B op (%v)", l4k, l8)
	}
}

func TestNetworkReport(t *testing.T) {
	c := topology.ClusterB()
	k, _, net := newTestNet(c, 2)
	src, dst := net.Endpoint(0, 0), net.Endpoint(1, 0)
	k.Spawn("driver", func(p *sim.Proc) {
		var done sim.Signal
		net.StartTransfer(src, dst, 1<<20, func() { done.Fire() })
		done.Wait(p, "arrive")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	rep := net.Report()
	if len(rep) != 4 { // 2 nodes x (up, down), no core on IB
		t.Fatalf("report has %d links, want 4", len(rep))
	}
	var upBytes, downBytes int64
	for _, lr := range rep {
		switch lr.Name {
		case "n0.h0.up":
			upBytes = lr.Bytes
		case "n1.h0.down":
			downBytes = lr.Bytes
		}
	}
	if upBytes != 1<<20 || downBytes != 1<<20 {
		t.Fatalf("up %d / down %d bytes, want 1MiB each", upBytes, downBytes)
	}
	// Cluster D has a core stage: one up/down pair per leaf subtree (2
	// nodes under one 16-port leaf is a single subtree).
	_, _, netD := newTestNet(topology.ClusterD(), 2)
	if got := len(netD.Report()); got != 6 {
		t.Fatalf("cluster D report has %d links, want 6 (incl. subtree core pair)", got)
	}
}

func TestMemChannelReport(t *testing.T) {
	k := sim.NewKernel()
	fn := NewFlowNet(k)
	m := NewMemChannel(k, fn, topology.ClusterA(), 0)
	k.Spawn("copier", func(p *sim.Proc) { m.Copy(p, false, 4096) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	lr := m.Report()
	if lr.Bytes != 4096 || lr.Busy <= 0 {
		t.Fatalf("mem report %+v", lr)
	}
}
