// Package sweep fans independent simulation jobs across host cores.
//
// Every figure in the paper's evaluation is a sweep of deterministic,
// mutually independent simulated jobs (one virtual cluster per series or
// sweep point), so the reproduction pipeline parallelises trivially: jobs
// share no mutable state, and results are collected in submission order,
// which keeps every rendered table byte-identical whatever the worker
// count. A panicking job is captured and reported as an error rather
// than tearing down the process, and errors from all jobs are aggregated
// so one failed cell does not hide another.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// A Job computes one independent result.
type Job[T any] func() (T, error)

// Workers clamps a -j style request: n <= 0 selects GOMAXPROCS, anything
// else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes jobs on up to workers goroutines (clamped by Workers and
// by the number of jobs) and returns the results in submission order:
// out[i] is the value produced by jobs[i] regardless of which worker ran
// it or when it finished. All jobs are attempted even after a failure;
// the returned error aggregates every job error, each prefixed with its
// index. A panic inside a job is recovered and reported as that job's
// error.
func Run[T any](workers int, jobs []Job[T]) ([]T, error) {
	out := make([]T, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}
	workers = Workers(workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	if workers == 1 {
		// Serial fast path: no goroutines, deterministic stack traces.
		for i, job := range jobs {
			out[i], errs[i] = runOne(i, job)
		}
		return out, errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				out[i], errs[i] = runOne(i, jobs[i])
			}
		}()
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// runOne invokes one job with panic capture.
func runOne[T any](i int, job Job[T]) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: job %d panicked: %v", i, r)
		}
	}()
	out, err = job()
	if err != nil {
		err = fmt.Errorf("job %d: %w", i, err)
	}
	return out, err
}

// Map runs fn over items through the pool, preserving item order.
func Map[In, Out any](workers int, items []In, fn func(int, In) (Out, error)) ([]Out, error) {
	jobs := make([]Job[Out], len(items))
	for i, item := range items {
		i, item := i, item
		jobs[i] = func() (Out, error) { return fn(i, item) }
	}
	return Run(workers, jobs)
}
