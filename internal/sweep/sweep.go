// Package sweep fans independent simulation jobs across host cores.
//
// Every figure in the paper's evaluation is a sweep of deterministic,
// mutually independent simulated jobs (one virtual cluster per series or
// sweep point), so the reproduction pipeline parallelises trivially: jobs
// share no mutable state, and results are collected in submission order,
// which keeps every rendered table byte-identical whatever the worker
// count. A panicking job is captured and reported as an error rather
// than tearing down the process, and errors from all jobs are aggregated
// so one failed cell does not hide another.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// A Job computes one independent result.
type Job[T any] func() (T, error)

// Workers clamps a -j style request: n <= 0 selects GOMAXPROCS, anything
// else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes jobs on up to workers goroutines (clamped by Workers and
// by the number of jobs) and returns the results in submission order:
// out[i] is the value produced by jobs[i] regardless of which worker ran
// it or when it finished. All jobs are attempted even after a failure;
// the returned error aggregates every job error, each prefixed with its
// index. A panic inside a job is recovered and reported as that job's
// error.
func Run[T any](workers int, jobs []Job[T]) ([]T, error) {
	out := make([]T, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}
	workers = Workers(workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	if workers == 1 {
		// Serial fast path: no goroutines, deterministic stack traces.
		for i, job := range jobs {
			out[i], errs[i] = runOne(i, job)
		}
		return out, errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				out[i], errs[i] = runOne(i, jobs[i])
			}
		}()
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// runOne invokes one job with panic capture.
func runOne[T any](i int, job Job[T]) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: job %d panicked: %v", i, r)
		}
	}()
	out, err = job()
	if err != nil {
		err = fmt.Errorf("job %d: %w", i, err)
	}
	return out, err
}

// JobLimits bounds individual jobs so one hung or flaky scenario cannot
// stall a whole sweep. The zero value imposes no limits, making
// RunLimited behave exactly like Run.
type JobLimits struct {
	// Timeout is the wall-clock budget per job attempt. Zero means no
	// deadline. A timed-out attempt counts as a failed attempt; the
	// abandoned goroutine's eventual result is discarded and never
	// reaches the output slice.
	Timeout time.Duration
	// Retries is how many additional attempts a failed (erroring,
	// panicking, or timed-out) job gets. Zero means one attempt only.
	Retries int
}

// ErrJobTimeout marks a job attempt that exceeded JobLimits.Timeout.
// Timeout errors wrap it, so callers can test with errors.Is.
var ErrJobTimeout = errors.New("sweep: job timed out")

// RunLimited is Run with per-job limits: each job gets up to
// 1+limits.Retries attempts, each bounded by limits.Timeout. The first
// successful attempt wins; if all attempts fail, the job's error is the
// last attempt's error annotated with the attempt count. Results are in
// submission order and all errors are aggregated, exactly as in Run.
//
// Jobs in this package are deterministic simulations, so retries only
// help against environmental flakiness (and are therefore opt-in); the
// timeout is the backstop that turns a wedged simulation into an error
// instead of a hung sweep.
func RunLimited[T any](workers int, limits JobLimits, jobs []Job[T]) ([]T, error) {
	if limits == (JobLimits{}) {
		return Run(workers, jobs)
	}
	wrapped := make([]Job[T], len(jobs))
	for i, job := range jobs {
		i, job := i, job
		wrapped[i] = func() (T, error) { return attemptsOne(i, job, limits) }
	}
	// The attempt loop owns panic capture and error annotation, so the
	// wrapped jobs go through the raw pool rather than Run's runOne
	// (which would add a second "job %d:" prefix).
	return runPool(workers, wrapped)
}

// runPool is Run's pool without runOne's error prefixing; used by
// RunLimited, whose attempt loop produces already-annotated errors.
func runPool[T any](workers int, jobs []Job[T]) ([]T, error) {
	out := make([]T, len(jobs))
	if len(jobs) == 0 {
		return out, nil
	}
	workers = Workers(workers)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	if workers == 1 {
		for i, job := range jobs {
			out[i], errs[i] = job()
		}
		return out, errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				out[i], errs[i] = jobs[i]()
			}
		}()
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// attemptsOne runs one job through the retry loop.
func attemptsOne[T any](i int, job Job[T], limits JobLimits) (T, error) {
	var zero T
	var err error
	for attempt := 0; attempt <= limits.Retries; attempt++ {
		var out T
		out, err = attemptOne(i, job, limits.Timeout)
		if err == nil {
			return out, nil
		}
	}
	if limits.Retries > 0 {
		err = fmt.Errorf("%w (after %d attempts)", err, limits.Retries+1)
	}
	return zero, err
}

// attemptOne runs one attempt, bounded by timeout when non-zero. The
// job runs in a child goroutine either way (a deadline can only be
// enforced from outside the job); on timeout the attempt is abandoned —
// its goroutine keeps running until the job returns, but its result is
// discarded and cannot race with a later attempt's.
func attemptOne[T any](i int, job Job[T], timeout time.Duration) (T, error) {
	type result struct {
		out T
		err error
	}
	ch := make(chan result, 1) // buffered: an abandoned attempt must not leak a blocked goroutine
	go func() {
		var res result
		defer func() {
			if r := recover(); r != nil {
				res.err = fmt.Errorf("job %d: panicked: %v", i, r)
			}
			ch <- res
		}()
		res.out, res.err = job()
		if res.err != nil {
			res.err = fmt.Errorf("job %d: %w", i, res.err)
		}
	}()
	if timeout <= 0 {
		res := <-ch
		return res.out, res.err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.out, res.err
	case <-timer.C:
		var zero T
		return zero, fmt.Errorf("job %d: %w after %v", i, ErrJobTimeout, timeout)
	}
}

// MapLimited runs fn over items through the pool with per-job limits,
// preserving item order.
func MapLimited[In, Out any](workers int, limits JobLimits, items []In, fn func(int, In) (Out, error)) ([]Out, error) {
	jobs := make([]Job[Out], len(items))
	for i, item := range items {
		i, item := i, item
		jobs[i] = func() (Out, error) { return fn(i, item) }
	}
	return RunLimited(workers, limits, jobs)
}

// Map runs fn over items through the pool, preserving item order.
func Map[In, Out any](workers int, items []In, fn func(int, In) (Out, error)) ([]Out, error) {
	jobs := make([]Job[Out], len(items))
	for i, item := range items {
		i, item := i, item
		jobs[i] = func() (Out, error) { return fn(i, item) }
	}
	return Run(workers, jobs)
}
