package sweep

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunLimitedZeroLimitsMatchesRun(t *testing.T) {
	jobs := make([]Job[int], 20)
	for i := range jobs {
		i := i
		jobs[i] = func() (int, error) { return i + 100, nil }
	}
	out, err := RunLimited(4, JobLimits{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+100 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i+100)
		}
	}
}

func TestRunLimitedTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	jobs := []Job[int]{
		func() (int, error) { return 1, nil },
		func() (int, error) { <-release; return 2, nil }, // hangs past the deadline
		func() (int, error) { return 3, nil },
	}
	out, err := RunLimited(4, JobLimits{Timeout: 20 * time.Millisecond}, jobs)
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("err = %v, want ErrJobTimeout", err)
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("timeout not attributed to job 1: %v", err)
	}
	// Siblings still deliver; the timed-out slot stays zero.
	if out[0] != 1 || out[1] != 0 || out[2] != 3 {
		t.Fatalf("out = %v, want [1 0 3]", out)
	}
}

// TestRunLimitedAbandonedResultDiscarded: a job that finishes after its
// deadline must never write its late result into the output slice, even
// once it eventually completes.
func TestRunLimitedAbandonedResultDiscarded(t *testing.T) {
	done := make(chan struct{})
	jobs := []Job[int]{
		func() (int, error) {
			time.Sleep(60 * time.Millisecond)
			close(done)
			return 42, nil
		},
	}
	out, err := RunLimited(1, JobLimits{Timeout: 10 * time.Millisecond}, jobs)
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("err = %v, want ErrJobTimeout", err)
	}
	<-done // the abandoned goroutine ran to completion...
	if out[0] != 0 {
		t.Fatalf("late result leaked into output: %d", out[0]) // ...but its value went nowhere
	}
}

func TestRunLimitedRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job[string]{
		func() (string, error) {
			if calls.Add(1) < 3 {
				return "", errors.New("transient")
			}
			return "ok", nil
		},
	}
	out, err := RunLimited(1, JobLimits{Retries: 2}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != "ok" || calls.Load() != 3 {
		t.Fatalf("out=%q calls=%d, want ok after 3 attempts", out[0], calls.Load())
	}
}

func TestRunLimitedRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	boom := errors.New("boom")
	jobs := []Job[int]{
		func() (int, error) { calls.Add(1); return 0, boom },
	}
	_, err := RunLimited(1, JobLimits{Retries: 2}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3 (1 + 2 retries)", calls.Load())
	}
	for _, want := range []string{"job 0", "after 3 attempts"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestRunLimitedRetriesPanic(t *testing.T) {
	var calls atomic.Int32
	jobs := []Job[int]{
		func() (int, error) {
			if calls.Add(1) == 1 {
				panic("first attempt explodes")
			}
			return 7, nil
		},
	}
	out, err := RunLimited(1, JobLimits{Retries: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 {
		t.Fatalf("out = %v, want [7]", out)
	}
}

func TestRunLimitedAggregatesAcrossJobs(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	jobs := []Job[int]{
		func() (int, error) { return 0, errors.New("plain failure") },
		func() (int, error) { <-hang; return 0, nil },
		func() (int, error) { return 9, nil },
	}
	out, err := RunLimited(4, JobLimits{Timeout: 20 * time.Millisecond}, jobs)
	if err == nil {
		t.Fatal("want aggregated error")
	}
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("timeout lost in aggregation: %v", err)
	}
	for _, want := range []string{"job 0", "plain failure", "job 1"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	if out[2] != 9 {
		t.Fatalf("successful sibling lost: %v", out)
	}
}

func TestMapLimited(t *testing.T) {
	items := []int{5, 6, 7}
	out, err := MapLimited(2, JobLimits{Timeout: time.Second, Retries: 1}, items,
		func(i, v int) (int, error) { return i * v, nil })
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 6, 14}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

// TestRunLimitedTimeoutThenRetrySucceeds: a timed-out attempt counts as
// a failed attempt, and a retry that finishes inside the deadline
// delivers its result normally.
func TestRunLimitedTimeoutThenRetrySucceeds(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var calls atomic.Int32
	jobs := []Job[int]{
		func() (int, error) {
			if calls.Add(1) == 1 {
				<-release // first attempt hangs past the deadline
			}
			return 33, nil
		},
	}
	out, err := RunLimited(1, JobLimits{Timeout: 20 * time.Millisecond, Retries: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 33 || calls.Load() != 2 {
		t.Fatalf("out=%v calls=%d, want [33] after 2 attempts", out, calls.Load())
	}
}

// TestRunLimitedLateAttemptCannotOverwriteRetry: an abandoned attempt
// that completes *after* a later attempt already won must not clobber
// the winning result.
func TestRunLimitedLateAttemptCannotOverwriteRetry(t *testing.T) {
	var calls atomic.Int32
	firstDone := make(chan struct{})
	jobs := []Job[int]{
		func() (int, error) {
			if calls.Add(1) == 1 {
				time.Sleep(60 * time.Millisecond)
				close(firstDone)
				return 111, nil // late result of the abandoned attempt
			}
			return 222, nil
		},
	}
	out, err := RunLimited(1, JobLimits{Timeout: 10 * time.Millisecond, Retries: 1}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	<-firstDone // let the abandoned attempt finish before judging
	if out[0] != 222 {
		t.Fatalf("out[0] = %d, want the retry's 222 (late 111 must be discarded)", out[0])
	}
}

// TestMapLimitedTimeout: the timeout path through MapLimited attributes
// the failure to the right item and still delivers the siblings.
func TestMapLimitedTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	items := []string{"a", "b", "c"}
	out, err := MapLimited(4, JobLimits{Timeout: 20 * time.Millisecond}, items,
		func(i int, s string) (string, error) {
			if i == 1 {
				<-release
			}
			return s + "!", nil
		})
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("err = %v, want ErrJobTimeout", err)
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("timeout not attributed to item 1: %v", err)
	}
	if out[0] != "a!" || out[1] != "" || out[2] != "c!" {
		t.Fatalf("out = %q, want [a! <empty> c!]", out)
	}
}

// TestMapLimitedRetriesExhausted: every attempt fails; the aggregated
// error carries the attempt count and the last attempt's cause.
func TestMapLimitedRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	flaky := errors.New("flaky item")
	_, err := MapLimited(1, JobLimits{Retries: 3}, []int{0},
		func(int, int) (int, error) { calls.Add(1); return 0, flaky })
	if !errors.Is(err, flaky) {
		t.Fatalf("err = %v, want flaky", err)
	}
	if calls.Load() != 4 {
		t.Fatalf("calls = %d, want 4 (1 + 3 retries)", calls.Load())
	}
	if !strings.Contains(err.Error(), "after 4 attempts") {
		t.Fatalf("error %q missing attempt count", err)
	}
}

// TestMapLimitedPanicRetried: a panicking fn invocation is captured and
// retried through MapLimited just like an erroring one.
func TestMapLimitedPanicRetried(t *testing.T) {
	var calls atomic.Int32
	out, err := MapLimited(1, JobLimits{Retries: 1}, []int{10},
		func(_, v int) (int, error) {
			if calls.Add(1) == 1 {
				panic("first attempt explodes")
			}
			return v * 2, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 20 {
		t.Fatalf("out = %v, want [20]", out)
	}
}
