package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunPreservesSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		jobs := make([]Job[int], 50)
		for i := range jobs {
			i := i
			jobs[i] = func() (int, error) { return i * i, nil }
		}
		out, err := Run(workers, jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	out, err := Run[int](4, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty run: %v, %v", out, err)
	}
}

func TestRunAggregatesErrors(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job[int]{
		func() (int, error) { return 1, nil },
		func() (int, error) { return 0, fmt.Errorf("first: %w", boom) },
		func() (int, error) { return 3, nil },
		func() (int, error) { return 0, errors.New("second") },
	}
	out, err := Run(4, jobs)
	if err == nil {
		t.Fatal("want aggregated error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("errors.Is lost the cause: %v", err)
	}
	for _, want := range []string{"job 1", "first", "job 3", "second"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	// Successful jobs still deliver their results.
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("successful results lost: %v", out)
	}
}

func TestRunCapturesPanics(t *testing.T) {
	jobs := []Job[string]{
		func() (string, error) { return "ok", nil },
		func() (string, error) { panic("kaboom") },
	}
	for _, workers := range []int{1, 4} {
		out, err := Run(workers, jobs)
		if err == nil || !strings.Contains(err.Error(), "job 1 panicked: kaboom") {
			t.Fatalf("workers=%d: panic not captured: %v", workers, err)
		}
		if out[0] != "ok" {
			t.Fatalf("workers=%d: sibling result lost: %v", workers, out)
		}
	}
}

func TestRunActuallyRunsConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		// Still verifies the multi-worker code path completes; overlap
		// cannot be observed on one CPU.
		t.Log("single CPU: overlap not observable")
	}
	var peak, cur atomic.Int32
	jobs := make([]Job[struct{}], 16)
	gate := make(chan struct{})
	for i := range jobs {
		jobs[i] = func() (struct{}, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			<-gate
			cur.Add(-1)
			return struct{}{}, nil
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(4, jobs)
		done <- err
	}()
	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 1 {
		t.Fatal("no job ran")
	}
}

func TestWorkersClamp(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestMap(t *testing.T) {
	items := []string{"a", "bb", "ccc"}
	out, err := Map(2, items, func(i int, s string) (int, error) {
		return i * len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 6}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map(2, []int{1, 2}, func(i, v int) (int, error) {
		if v == 2 {
			return 0, errors.New("nope")
		}
		return v, nil
	})
	if err == nil || !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("err = %v", err)
	}
}
