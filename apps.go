package dpml

import (
	"dpml/internal/apps/dnn"
	"dpml/internal/apps/hpcg"
	"dpml/internal/apps/miniamr"
)

// Application kernels with the communication signatures of the paper's
// two evaluation workloads (Section 6.5, 6.6).
type (
	// HPCGConfig sizes a conjugate-gradient run (DDOT-dominated tiny
	// allreduces).
	HPCGConfig = hpcg.Config
	// HPCGResult reports DDOT and total time plus convergence.
	HPCGResult = hpcg.Result
	// MiniAMRConfig sizes a mesh-refinement run (medium/large
	// allreduces).
	MiniAMRConfig = miniamr.Config
	// MiniAMRResult reports the refinement time.
	MiniAMRResult = miniamr.Result
	// DNNConfig sizes a data-parallel training run (gradient
	// averaging, optionally bucketed).
	DNNConfig = dnn.Config
	// DNNLayer describes one parameter tensor.
	DNNLayer = dnn.Layer
	// DNNResult reports per-step and communication time.
	DNNResult = dnn.Result
)

var (
	// RunHPCG executes the CG kernel on an engine's world.
	RunHPCG = hpcg.Run
	// RunMiniAMR executes the refinement kernel on an engine's world.
	RunMiniAMR = miniamr.Run
	// RunDNN executes the training kernel on an engine's world.
	RunDNN = dnn.Run
	// ResNet50ish returns a CNN-like layer mix for RunDNN.
	ResNet50ish = dnn.ResNet50ish
)
