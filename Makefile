GO ?= go

.PHONY: all build test race vet lint lintfix-check ci perfcheck racecheck faultsmoke explorecheck grandprixsmoke fuzz cover bench results perf

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repo's ten invariant analyzers — seven per-package
# passes (walltime, globalrand, maprange, spanpair, waitcheck, floateq,
# prio) and three whole-module call-graph passes (taintflow, lpown,
# sendpath) — over the module; it exits non-zero on any finding,
# including unused //dpml:allow suppressions.
lint:
	$(GO) run ./cmd/dpml-lint ./...

# lintfix-check audits the annotation and suppression hygiene: the full
# analyzer run makes unused //dpml:allow lines and malformed or typo'd
# //dpml:owner classes findings (never silence), and the -suppressions
# table puts every remaining allowance with its recorded reason on the
# CI log for review.
lintfix-check:
	$(GO) run ./cmd/dpml-lint -suppressions ./...
	$(GO) run ./cmd/dpml-lint ./...

# The bench package's determinism matrices now cover ten designs; under
# the race detector on a small host that exceeds go test's default
# 10-minute per-package timeout, so give the suite an explicit budget.
race:
	$(GO) test -race -timeout 45m ./...

# ci is the gate: the invariant analyzers and go vet, the full test suite under the race
# detector (the sweep pool runs simulations on multiple goroutines, so
# -race exercises the parallel paths, not just the serial ones), the
# sharded-kernel race pass, the simulator-throughput check (the quick
# perf suite must stay within 30% of the committed BENCH_sim.json on the
# 64-rank scenarios), the fault-matrix smoke pass, the schedule-space
# exploration pass, a short fuzz pass over the text parsers, and the
# coverage summary.
ci: lint lintfix-check vet race racecheck perfcheck faultsmoke explorecheck grandprixsmoke fuzz cover

perfcheck:
	$(GO) run ./cmd/dpml-bench -perf -quick -baseline BENCH_sim.json -o /dev/null

# racecheck reruns the kernel, fabric, and MPI test packages under the
# race detector with the event kernel split across four shards and the
# network kernel's water-fill on two workers. Plain `race` covers
# host-side parallelism (the sweep pool); this covers sim-side
# parallelism — window barriers, cross-shard outboxes, the net kernel,
# the component-parallel fill — where a missing happens-before edge
# would corrupt virtual time itself.
racecheck:
	DPML_SHARDS=4 DPML_NET_SHARDS=2 $(GO) test -race -count=1 ./internal/sim/ ./internal/fabric/ ./internal/mpi/

# faultsmoke runs the fault-injection and watchdog tests twice (-count=2):
# every fault class against a design (bench fault matrix), graceful SHArP
# degradation, watchdog diagnostics, and sweep job limits. The second run
# must reproduce the first bit for bit — seeded plans are deterministic.
faultsmoke:
	$(GO) test -count=2 -run 'Fault|Watchdog|Straggler|Sharp|Spec|Instantiate|Validate|Limited' \
		./internal/faults/ ./internal/fabric/ ./internal/mpi/ ./internal/core/ ./internal/bench/ ./internal/sweep/

# explorecheck asserts every invariant on every reachable schedule, for
# every design on both the healthy and a faulted fabric: a systematic
# (DPOR-lite) pass at 16 ranks that must visit at least 100 distinct
# schedules per combination, a 32-schedule seeded pass, and a -race
# rerun of the exploration suite with the event kernel split across
# four shards (perturbed schedules must stay shard-invariant even under
# the race detector's scheduling noise).
explorecheck:
	$(GO) run ./cmd/dpml-verify -designs all -faults ';all@0.7' -fault-seed 7 \
		-systematic -max-schedules 200 -min-distinct 100 -o /dev/null
	$(GO) run ./cmd/dpml-verify -designs all -faults ';all@0.7' -fault-seed 7 \
		-schedules 32 -explore-seed 1 -o /dev/null
	DPML_SHARDS=4 DPML_NET_SHARDS=2 $(GO) test -race -count=1 ./internal/explore/

# grandprixsmoke runs the cross-family ranking figure at reduced scale
# (one 4x4 shape instead of 8x8 + 16x16): every design family must
# complete every (size, fault-class) heat on the seeded fabric.
grandprixsmoke:
	$(GO) run ./cmd/dpml-bench -figure grandprix -quick -iters 2 -warmup 1 -o /dev/null

# fuzz gives each fuzz target a short budget. Go runs one fuzz function
# per invocation, so each gets its own line; seeds in testdata/corpus
# still run under plain `go test`.
FUZZTIME ?= 5s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzCommMatrixLabel -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzWriteCSVRoundTrip -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzSpanStamping -fuzztime=$(FUZZTIME) ./internal/trace/
	$(GO) test -run=NONE -fuzz=FuzzParseSpec -fuzztime=$(FUZZTIME) ./internal/faults/
	$(GO) test -run=NONE -fuzz=FuzzParseDesign -fuzztime=$(FUZZTIME) ./internal/core/
	$(GO) test -run=NONE -fuzz=FuzzAllowDirective -fuzztime=$(FUZZTIME) ./internal/lint/

# cover runs the suite with coverage and prints the per-package and total
# statement coverage summary.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

# bench runs the simulator micro-benchmarks (kernel + fabric hot paths).
bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/sim/ ./internal/fabric/

# results regenerates every committed table in results/ (see results/README.md).
results:
	for f in fig1a fig1b fig1c fig1d fig4 fig5 fig6 fig7 fig8a fig8b fig8c \
	         fig9a fig9b fig9c fig9d fig11a fig11b fig11c model phases pipeline noise faults \
	         grandprix; do \
		$(GO) run ./cmd/dpml-bench -figure $$f -iters 2 -warmup 1 -o results/$$f.txt || exit 1; \
	done
	$(GO) run ./cmd/dpml-bench -figure fig10 -iters 1 -warmup 1 -o results/fig10.txt

# perf emits the simulator-throughput report committed as BENCH_sim.json.
perf:
	$(GO) run ./cmd/dpml-bench -perf -quick -o BENCH_sim.json
