module dpml

go 1.22
