// Command dpml-apps runs the application kernels (HPCG-like CG,
// miniAMR-like refinement, DNN training) on a chosen cluster and prints
// their headline metrics — the command-line face of Figure 11's
// workloads.
//
// Usage:
//
//	dpml-apps -app hpcg -cluster A -nodes 16 -ppn 28 -lib proposed
//	dpml-apps -app miniamr -cluster C -nodes 16 -ppn 16
//	dpml-apps -app dnn -cluster D -nodes 8 -ppn 16 -bucket 1048576
package main

import (
	"flag"
	"fmt"
	"os"

	"dpml/internal/apps/dnn"
	"dpml/internal/apps/hpcg"
	"dpml/internal/apps/miniamr"
	"dpml/internal/core"
	"dpml/internal/mpi"
	"dpml/internal/topology"
)

func main() {
	var (
		app         = flag.String("app", "hpcg", "workload: hpcg, miniamr, or dnn")
		clusterName = flag.String("cluster", "A", "cluster: A, B, C, or D")
		nodes       = flag.Int("nodes", 4, "number of nodes")
		ppn         = flag.Int("ppn", 8, "processes per node")
		lib         = flag.String("lib", "proposed", "library for miniamr/dnn: mvapich2, intelmpi, proposed")
		design      = flag.String("design", "host", "hpcg DDOT design: host, sharp-node, sharp-socket")
		iters       = flag.Int("iters", 20, "CG iterations (hpcg)")
		steps       = flag.Int("steps", 3, "refinement/training steps (miniamr, dnn)")
		bucket      = flag.Int("bucket", 0, "gradient bucket bytes (dnn; 0 = per layer)")
	)
	flag.Parse()

	cl := topology.ByName(*clusterName)
	if cl == nil {
		fatal(fmt.Errorf("unknown cluster %q", *clusterName))
	}
	job, err := topology.NewJob(cl, *nodes, *ppn)
	if err != nil {
		fatal(err)
	}
	e := core.NewEngine(mpi.NewWorld(job, mpi.Config{}))
	fmt.Printf("%s on %s, %d nodes x %d ppn (%d procs)\n", *app, cl.Name, *nodes, *ppn, job.NumProcs())

	switch *app {
	case "hpcg":
		spec := core.HostBased()
		switch *design {
		case "host":
		case "sharp-node":
			spec = core.Spec{Design: core.DesignSharpNode}
		case "sharp-socket":
			spec = core.Spec{Design: core.DesignSharpSocket}
		default:
			fatal(fmt.Errorf("unknown design %q", *design))
		}
		res, err := hpcg.Run(e, hpcg.Config{Nx: 16, Ny: 16, Nz: 8, Iterations: *iters, Real: true, Spec: spec})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  DDOT time  %v\n  total time %v\n  residual drop %.2e over %d iterations\n",
			res.DDOTTime, res.TotalTime, res.ResidualDrop, res.Iterations)
	case "miniamr":
		res, err := miniamr.Run(e, miniamr.Config{
			BlocksPerRank: 32, BlockBytes: 4096, Steps: *steps, Library: core.Library(*lib),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  refinement time %v over %d steps (library %s)\n", res.RefineTime, res.Steps, *lib)
	case "dnn":
		res, err := dnn.Run(e, dnn.Config{
			Layers: dnn.ResNet50ish(), Steps: *steps, BucketBytes: *bucket, Library: core.Library(*lib),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  step time %v, gradient averaging %v (%d allreduces/step, library %s)\n",
			res.StepTime, res.CommTime, res.Allreduces, *lib)
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpml-apps:", err)
	os.Exit(1)
}
