// Command dpml-osu is the osu_allreduce equivalent: it sweeps message
// sizes and prints the average allreduce latency for a chosen design or
// library on a chosen cluster.
//
// Usage:
//
//	dpml-osu -cluster B -nodes 16 -ppn 28 -design dpml -leaders 8
//	dpml-osu -cluster D -nodes 32 -ppn 64 -lib proposed
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dpml/internal/bench"
	"dpml/internal/core"
	"dpml/internal/faults"
	"dpml/internal/mpi"
	"dpml/internal/sim"
	"dpml/internal/sweep"
	"dpml/internal/topology"
)

func main() {
	var (
		clusterName = flag.String("cluster", "B", "cluster: A, B, C, or D")
		nodes       = flag.Int("nodes", 4, "number of nodes")
		ppn         = flag.Int("ppn", 8, "processes per node")
		design      = flag.String("design", "dpml", "design: flat, dpml, dpml-pipelined, sharp-node-leader, sharp-socket-leader, dualroot, genall, pap-sorted, pap-ring")
		leaders     = flag.Int("leaders", 1, "DPML leaders per node")
		chunks      = flag.Int("chunks", 4, "pipeline depth for dpml-pipelined")
		segments    = flag.Int("segments", 0, "pipeline segments per half for dualroot (0 = size-driven)")
		groups      = flag.Int("groups", 0, "group size for genall (0 = size-driven)")
		alg         = flag.String("alg", "", "flat algorithm / inter-leader override")
		lib         = flag.String("lib", "", "library selector instead of -design: mvapich2, intelmpi, proposed")
		sizesFlag   = flag.String("sizes", "4,64,1024,16384,262144,1048576", "comma-separated message sizes in bytes")
		iters       = flag.Int("iters", 5, "timed iterations per size")
		warmup      = flag.Int("warmup", 1, "warmup iterations per size")
		jobs        = flag.Int("j", 0, "parallel simulation jobs (0 = all cores, 1 = serial); each size runs its own simulated job, so output is identical for every value")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file on exit")
		faultSpec   = flag.String("faults", "", "inject a seeded fault plan: comma-separated classes with optional @intensity, e.g. 'straggler@0.25,link' or 'all@0.8' (empty = healthy fabric)")
		faultSeed   = flag.Uint64("fault-seed", 0, "seed for fault-plan instantiation")
		watchdog    = flag.Duration("watchdog", 0, "virtual-time deadline per simulated job; a job not finished by then aborts with a diagnostic naming the blocked ranks (0 = off)")
		shards      = flag.Int("shards", 0, "kernel shards per simulated job (parallelize one run across threads; 0 = DPML_SHARDS env or 1); output is bit-identical for every value")
		netShards   = flag.Int("netshards", 0, "water-fill workers for the network kernel's independent link components (0 = DPML_NET_SHARDS env or 1); output is bit-identical for every value")
	)
	flag.Parse()
	if *shards > 0 {
		mpi.SetDefaultShards(*shards)
	}
	if *netShards > 0 {
		mpi.SetDefaultNetShards(*netShards)
	}

	stopProf, err := bench.StartProfiles(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	cl := topology.ByName(*clusterName)
	if cl == nil {
		fatal(fmt.Errorf("unknown cluster %q", *clusterName))
	}
	spec, err := faults.ParseSpec(*faultSpec)
	if err != nil {
		fatal(err)
	}
	if spec != nil {
		spec.Seed = *faultSeed
	}
	cfg := mpi.Config{
		Watchdog: sim.Duration(*watchdog / time.Nanosecond),
		Faults: spec.Instantiate(faults.Shape{
			Ranks: *nodes * *ppn, Nodes: *nodes, HCAs: cl.HCAs,
		}),
	}
	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fatal(fmt.Errorf("bad size %q", s))
		}
		sizes = append(sizes, n)
	}

	var choose bench.SpecChooser
	label := ""
	if *lib != "" {
		choose = bench.LibrarySpec(core.Library(*lib))
		label = *lib
	} else {
		spec := core.Spec{
			Design:   core.Design(*design),
			Leaders:  *leaders,
			Chunks:   *chunks,
			Segments: *segments,
			Groups:   *groups,
			InterAlg: mpi.Algorithm(*alg),
		}
		if spec.Design == core.DesignFlat {
			spec.FlatAlg = mpi.Algorithm(*alg)
		}
		choose = bench.FixedSpec(spec)
		label = spec.String()
	}

	// Each size is an independent simulated job (with its own warmup, so
	// per-size results match the one-world sweep bit for bit), fanned
	// across -j workers and printed in request order.
	lat, err := sweep.Map(*jobs, sizes, func(_ int, bytes int) (sim.Duration, error) {
		one, err := bench.AllreduceLatencyCfg(cfg, cl, *nodes, *ppn, choose, []int{bytes}, *iters, *warmup)
		if err != nil {
			return 0, err
		}
		return one[0], nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("# MPI_Allreduce latency, %s, %d nodes x %d ppn (%d procs), %s\n",
		cl.Name, *nodes, *ppn, *nodes**ppn, label)
	fmt.Printf("%12s %16s\n", "bytes", "latency(us)")
	for i, n := range sizes {
		fmt.Printf("%12d %16.2f\n", n, lat[i].Micros())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpml-osu:", err)
	os.Exit(1)
}
