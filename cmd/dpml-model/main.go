// Command dpml-model explores the Section 5 cost model: per-phase cost
// breakdowns (Eqs. 2-6), the total (Eq. 7), the flat recursive-doubling
// reference (Eq. 1), and the model's optimal leader count per message
// size.
//
// Usage:
//
//	dpml-model -cluster B -nodes 16 -ppn 28
//	dpml-model -cluster C -nodes 64 -ppn 28 -leaders 8 -bytes 524288
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dpml/internal/costmodel"
	"dpml/internal/topology"
)

func main() {
	var (
		clusterName = flag.String("cluster", "B", "cluster: A, B, C, or D")
		nodes       = flag.Int("nodes", 16, "number of nodes")
		ppn         = flag.Int("ppn", 28, "processes per node")
		leaders     = flag.Int("leaders", 0, "leader count for the breakdown (0 = model optimum)")
		k           = flag.Int("k", 1, "pipeline sub-partitions (Eq. 5, and dual-root segments)")
		groupSize   = flag.Int("g", 0, "generalized-allreduce group size (0 = ceil(sqrt(p)))")
		stragglers  = flag.Int("stragglers", 2, "predicted straggler count for the PAP estimates")
		delta       = flag.Float64("delta", 10e-6, "predicted arrival spread in seconds for the PAP estimates")
		sizesFlag   = flag.String("sizes", "4,256,4096,65536,524288,4194304", "comma-separated message sizes in bytes")
	)
	flag.Parse()

	cl := topology.ByName(*clusterName)
	if cl == nil {
		fatal(fmt.Errorf("unknown cluster %q", *clusterName))
	}
	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 0 {
			fatal(fmt.Errorf("bad size %q", s))
		}
		sizes = append(sizes, n)
	}

	base := costmodel.FromCluster(cl)
	base.K = *k
	fmt.Printf("# Cost model (Section 5), %s, %d nodes x %d ppn\n", cl.Name, *nodes, *ppn)
	fmt.Printf("# a=%.3gus b=%.3gns/B a'=%.3gus b'=%.3gns/B c=%.3gns/B k=%d\n",
		base.A*1e6, base.B*1e9, base.APrime*1e6, base.BPrime*1e9, base.C*1e9, *k)
	fmt.Printf("%10s %8s %12s %12s | %10s %10s %10s %10s | %12s\n",
		"bytes", "opt-l", "Eq7(us)", "Eq1-RD(us)", "copy", "compute", "comm", "bcast", "pipe-Eq5")
	for _, n := range sizes {
		p := base.With(*nodes**ppn, *nodes, 1, n)
		if err := p.Validate(); err != nil {
			fatal(err)
		}
		opt := p.OptimalLeaders()
		l := *leaders
		if l <= 0 {
			l = opt
		}
		p = p.With(p.P, p.H, l, n)
		br := p.PhaseBreakdown()
		fmt.Printf("%10d %8d %12.2f %12.2f | %10.2f %10.2f %10.2f %10.2f | %12.2f\n",
			n, opt, p.DPML()*1e6, p.RecursiveDoubling()*1e6,
			br[0]*1e6, br[1]*1e6, br[2]*1e6, br[3]*1e6, p.DPMLPipelined()*1e6)
	}

	// Extension families: the related-work designs in the same a/b/c
	// vocabulary, for ranking against Eq. 7.
	procs := *nodes * *ppn
	g := *groupSize
	if g <= 0 {
		for g = 1; g*g < procs; g++ {
		}
	}
	fmt.Printf("\n# Extension families: k=%d g=%d stragglers=%d delta=%.3gus\n",
		*k, g, *stragglers, *delta*1e6)
	fmt.Printf("%10s %12s %12s %12s %12s\n",
		"bytes", "dualroot(us)", "genall(us)", "pap-sort(us)", "pap-ring(us)")
	for _, n := range sizes {
		p := base.With(procs, *nodes, 1, n)
		p.G, p.S, p.Delta = g, *stragglers, *delta
		if err := p.Validate(); err != nil {
			fatal(err)
		}
		fmt.Printf("%10d %12.2f %12.2f %12.2f %12.2f\n",
			n, p.DualRoot()*1e6, p.GenAll()*1e6, p.PAPSorted()*1e6, p.PAPRing()*1e6)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpml-model:", err)
	os.Exit(1)
}
