// Command dpml-mbw is the osu_mbw_mr equivalent: aggregate multi-pair
// throughput and the relative-throughput curves of Figure 1.
//
// Usage:
//
//	dpml-mbw -cluster C                 # inter-node, Omni-Path
//	dpml-mbw -cluster C -intra          # intra-node shared memory
//	dpml-mbw -cluster B -pairs 1,4,16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dpml/internal/bench"
	"dpml/internal/sweep"
	"dpml/internal/topology"
)

func main() {
	var (
		clusterName = flag.String("cluster", "C", "cluster: A, B, C, or D")
		intra       = flag.Bool("intra", false, "place both ends of each pair on one node")
		pairsFlag   = flag.String("pairs", "1,2,4,8,16", "comma-separated pair counts")
		sizesFlag   = flag.String("sizes", "4,64,1024,16384,262144,1048576", "comma-separated message sizes in bytes")
		window      = flag.Int("window", 64, "messages in flight per pair")
		iters       = flag.Int("iters", 2, "iterations per size")
		relative    = flag.Bool("relative", true, "print throughput relative to 1 pair (Figure 1 style)")
		jobs        = flag.Int("j", 0, "parallel simulation jobs (0 = all cores, 1 = serial); output is identical for every value")
	)
	flag.Parse()

	cl := topology.ByName(*clusterName)
	if cl == nil {
		fatal(fmt.Errorf("unknown cluster %q", *clusterName))
	}
	parse := func(s string) []int {
		var out []int
		for _, f := range strings.Split(s, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				fatal(fmt.Errorf("bad value %q", f))
			}
			out = append(out, n)
		}
		return out
	}
	pairs := parse(*pairsFlag)
	sizes := parse(*sizesFlag)

	mode := "inter-node"
	if *intra {
		mode = "intra-node"
	}
	if *relative {
		tb, err := bench.RelativeThroughput("mbw",
			fmt.Sprintf("Relative throughput, %s, %s", mode, cl.Name),
			cl, *intra, pairs, sizes, *window, *iters, *jobs)
		if err != nil {
			fatal(err)
		}
		tb.Render(os.Stdout)
		return
	}
	fmt.Printf("# Aggregate throughput (MB/s), %s, %s\n", mode, cl.Name)
	fmt.Printf("%12s", "bytes")
	for _, p := range pairs {
		fmt.Printf(" %10dp", p)
	}
	fmt.Println()
	cols, err := sweep.Map(*jobs, pairs, func(_ int, p int) ([]float64, error) {
		return bench.MultiPairThroughput(cl, bench.MBWConfig{
			Pairs: p, Intra: *intra, Window: *window, Iters: *iters,
		}, sizes)
	})
	if err != nil {
		fatal(err)
	}
	for si, n := range sizes {
		fmt.Printf("%12d", n)
		for pi := range pairs {
			fmt.Printf(" %11.1f", cols[pi][si]/1e6)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpml-mbw:", err)
	os.Exit(1)
}
