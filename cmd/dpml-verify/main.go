// Command dpml-verify explores the schedule space of the simulated
// collectives and asserts the full invariant battery on every reachable
// schedule: conformance against a serial reduction oracle, trace span
// tiling, critical-path accounting, watchdog cleanliness, and
// cross-schedule result invariance.
//
// Usage:
//
//	dpml-verify -schedules 32 -explore-seed 1        # 32 seeded schedules
//	dpml-verify -systematic -min-distinct 100        # DPOR-lite frontier
//	dpml-verify -designs all -faults ';all@0.7'      # whole design/fault matrix
//	dpml-verify -design dpml-3 -salt 0x1badf00d      # rerun one seeded schedule
//	dpml-verify -design flat -swaps 1200:0x1001:0x1002  # rerun one swap set
//
// The report is JSON (one entry per design x fault-spec combination);
// the exit status is non-zero if any explored schedule violated any
// invariant. Failures carry self-contained repro lines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dpml/internal/explore"
	"dpml/internal/sim"
)

func main() {
	var (
		designs   = flag.String("designs", "", "comma-separated design names, or 'all' (see internal/explore.Designs)")
		design    = flag.String("design", "dpml-3", "single design to explore when -designs is empty")
		cluster   = flag.String("cluster", "A", "cluster profile (A..E)")
		nodes     = flag.Int("nodes", 4, "nodes in the job")
		ppn       = flag.Int("ppn", 4, "ranks per node")
		count     = flag.Int("count", 61, "elements per rank")
		dtype     = flag.String("dtype", "float32", "element type: float32|float64|int32|int64")
		opName    = flag.String("op", "sum", "reduction op: sum|prod|max|min")
		faultList = flag.String("faults", "", "semicolon-separated fault specs to explore under (each a faults.ParseSpec string; empty entry = healthy fabric)")
		faultSeed = flag.Uint64("fault-seed", 0, "seed for fault-plan instantiation")
		watchdog  = flag.Duration("watchdog", 0, "virtual-time deadline per schedule (0 = 1 virtual second)")
		schedules = flag.Int("schedules", 0, "seeded schedules per combination (beyond the canonical baseline)")
		seed      = flag.Uint64("explore-seed", 0, "exploration seed; per-schedule salts derive from it")
		saltList  = flag.String("salt", "", "comma-separated explicit salts (repro of seeded schedules); overrides -schedules")
		swapSpec  = flag.String("swaps", "", "comma-separated tiebreak transpositions at:rawA:rawB (repro of one systematic schedule)")
		sysMode   = flag.Bool("systematic", false, "enumerate tiebreak inversions at commutation points (DPOR-lite), <=16 ranks recommended")
		maxSched  = flag.Int("max-schedules", 0, "systematic schedule budget (0 = 192)")
		minDist   = flag.Int("min-distinct", 0, "fail unless the systematic pass visits at least this many distinct schedules")
		shards    = flag.Int("shards", 0, "kernel shards per schedule (0 = DPML_SHARDS env or 1); reports are identical for every value")
		netShards = flag.Int("netshards", 0, "network water-fill workers per schedule (0 = DPML_NET_SHARDS env or 1); reports are identical for every value")
		jobs      = flag.Int("j", 0, "parallel schedules across host cores (0 = all cores); reports are identical for every value")
		out       = flag.String("o", "", "write the JSON report to file instead of stdout")
	)
	flag.Parse()

	dt, ok := explore.DatatypeByName(*dtype)
	if !ok {
		fatal(fmt.Errorf("unknown dtype %q", *dtype))
	}
	op, ok := explore.OpByName(*opName)
	if !ok {
		fatal(fmt.Errorf("unknown op %q", *opName))
	}
	names := designNames(*designs, *design)
	specs := strings.Split(*faultList, ";")
	salts, err := parseSalts(*saltList)
	if err != nil {
		fatal(err)
	}
	swaps, err := parseSwaps(*swapSpec)
	if err != nil {
		fatal(err)
	}

	opts := explore.Options{
		Schedules:    *schedules,
		Seed:         *seed,
		Salts:        salts,
		Swaps:        swaps,
		Systematic:   *sysMode,
		MaxSchedules: *maxSched,
		MinDistinct:  *minDist,
		Workers:      *jobs,
	}

	var reports []*explore.Report
	failed := false
	for _, name := range names {
		for _, fs := range specs {
			sc := explore.Scenario{
				Cluster:   *cluster,
				Nodes:     *nodes,
				PPN:       *ppn,
				Count:     *count,
				Dtype:     dt,
				Op:        op,
				Design:    name,
				Faults:    fs,
				FaultSeed: *faultSeed,
				Watchdog:  sim.Duration(*watchdog),
				Shards:    *shards,
				NetShards: *netShards,
			}
			rep, err := explore.Run(sc, opts)
			if err != nil {
				failed = true
				fmt.Fprintln(os.Stderr, err)
			}
			if rep != nil {
				reports = append(reports, rep)
			}
			if rep == nil && err != nil {
				// Scenario setup error, not an invariant failure: stop
				// rather than repeat it for every combination.
				os.Exit(2)
			}
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reports); err != nil {
		fatal(err)
	}
	if failed {
		os.Exit(1)
	}
}

// designNames resolves -designs/-design into the list to explore.
func designNames(list, single string) []string {
	if list == "" {
		return []string{single}
	}
	if list == "all" {
		var names []string
		for _, d := range explore.Designs() {
			names = append(names, d.Name)
		}
		return names
	}
	return strings.Split(list, ",")
}

// parseSalts parses a comma-separated salt list (decimal or 0x hex).
func parseSalts(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -salt entry %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseSwaps parses at:rawA:rawB transposition triples.
func parseSwaps(s string) ([]sim.TieSwap, error) {
	if s == "" {
		return nil, nil
	}
	var out []sim.TieSwap
	for _, part := range strings.Split(s, ",") {
		f := strings.Split(part, ":")
		if len(f) != 3 {
			return nil, fmt.Errorf("bad -swaps entry %q: want at:rawA:rawB", part)
		}
		at, err := strconv.ParseInt(f[0], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -swaps instant %q: %w", f[0], err)
		}
		a, err := strconv.ParseUint(f[1], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -swaps key %q: %w", f[1], err)
		}
		b, err := strconv.ParseUint(f[2], 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -swaps key %q: %w", f[2], err)
		}
		out = append(out, sim.TieSwap{At: sim.Time(at), A: a, B: b})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpml-verify:", err)
	os.Exit(2)
}
