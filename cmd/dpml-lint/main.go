// dpml-lint runs the repo's ten invariant analyzers — seven
// per-package (walltime, globalrand, maprange, spanpair, waitcheck,
// floateq, prio) and three whole-module call-graph passes (taintflow,
// lpown, sendpath) — over the module and exits non-zero on findings,
// so CI fails loudly. See internal/lint for what each analyzer proves
// and CONTRIBUTING.md for the //dpml:allow suppression syntax and the
// //dpml:owner annotation discipline.
//
// Usage:
//
//	dpml-lint [-json] [-run a,b,...] [-list] [-suppressions] [packages]
//
// With no package arguments (or "./..."), the whole module is analyzed.
// Explicit arguments name module directories ("internal/sim", "./cmd/...").
// -suppressions prints the audit table of every //dpml:allow site
// (file:line, analyzer, reason) instead of running analyzers.
// Exit status: 0 clean, 1 findings, 2 usage or load/type-check errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dpml/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dpml-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	runList := fs.String("run", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	sups := fs.Bool("suppressions", false, "print the //dpml:allow audit table and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dpml-lint [-json] [-run a,b,...] [-list] [-suppressions] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.Analyzers()
	if *runList != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*runList, ","))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "dpml-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "dpml-lint:", err)
		return 2
	}

	var pkgs []*lint.Package
	rest := fs.Args()
	if len(rest) == 0 || (len(rest) == 1 && (rest[0] == "./..." || rest[0] == "...")) {
		pkgs, err = loader.LoadAll()
		if err != nil {
			fmt.Fprintln(stderr, "dpml-lint:", err)
			return 2
		}
	} else {
		for _, arg := range rest {
			ip, err := argToImportPath(root, loader.ModPath, arg)
			if err != nil {
				fmt.Fprintln(stderr, "dpml-lint:", err)
				return 2
			}
			pkg, err := loader.Load(ip)
			if err != nil {
				fmt.Fprintln(stderr, "dpml-lint:", err)
				return 2
			}
			pkgs = append(pkgs, pkg)
		}
	}

	if *sups {
		for _, sup := range lint.Suppressions(pkgs) {
			analyzer := sup.Analyzer
			if analyzer == "" {
				analyzer = "(malformed)"
			}
			reason := sup.Reason
			if reason == "" {
				reason = "(no reason)"
			}
			fmt.Fprintf(stdout, "%s:%d\t%s\t%s\n", sup.Pos.Filename, sup.Pos.Line, analyzer, reason)
		}
		return 0
	}

	findings := lint.RunModule(pkgs, loader.Loaded(), analyzers)
	if *jsonOut {
		if err := lint.WriteJSON(stdout, findings); err != nil {
			fmt.Fprintln(stderr, "dpml-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(stderr, "dpml-lint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// argToImportPath maps a package argument (import path or directory,
// optionally with a /... suffix that is treated as the directory itself)
// to a module import path.
func argToImportPath(root, modPath, arg string) (string, error) {
	arg = strings.TrimSuffix(strings.TrimSuffix(arg, "/..."), "/")
	if arg == "." || arg == "" {
		return modPath, nil
	}
	if arg == modPath || strings.HasPrefix(arg, modPath+"/") {
		return arg, nil
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("package %q is outside the module", arg)
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}
